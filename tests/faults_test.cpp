// Tests for the fault & perturbation injection subsystem: spec grammar,
// the bit-identity contract when faults are off, per-seed determinism
// (independent of study parallelism), mechanism effects, and how fault
// activity surfaces in metrics and reports.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/expect.hpp"
#include "dimemas/replay.hpp"
#include "faults/injector.hpp"
#include "faults/model.hpp"
#include "faults/spec.hpp"
#include "metrics/attribution.hpp"
#include "pipeline/context.hpp"
#include "pipeline/report.hpp"
#include "pipeline/scenario.hpp"
#include "pipeline/study.hpp"
#include "trace/trace.hpp"

namespace osim {
namespace {

/// Fixed 4-rank ring workload: the same construction that produced the
/// golden constants below on the pre-fault-injection build.
trace::Trace golden_trace() {
  trace::TraceBuilder b(4, 1000.0, "golden");
  for (int round = 0; round < 3; ++round) {
    for (trace::Rank r = 0; r < 4; ++r) {
      b.compute(r, 50'000 + 1000 * r);
      const auto to = static_cast<trace::Rank>((r + 1) % 4);
      const auto from = static_cast<trace::Rank>((r + 3) % 4);
      const trace::ReqId req = round * 4 + r;
      b.irecv(r, from, round, 32 * 1024, req);
      b.send(r, to, round, 32 * 1024);
      b.wait(r, {req});
    }
  }
  return std::move(b).build();
}

dimemas::Platform golden_platform() {
  dimemas::Platform p;
  p.num_nodes = 4;
  p.bandwidth_MBps = 250.0;
  p.latency_us = 4.0;
  p.num_buses = 2;
  return p;
}

pipeline::ReplayContext faulted_context(const std::string& spec,
                                        bool collect_metrics = false) {
  dimemas::ReplayOptions options;
  options.collect_metrics = collect_metrics;
  options.faults = faults::parse_spec(spec);
  return pipeline::ReplayContext(golden_trace(), golden_platform(), options);
}

// --- spec grammar -----------------------------------------------------------

TEST(FaultSpec, RoundTripsCanonicalForm) {
  const char* specs[] = {
      "seed=42",
      "loss=0.02",
      "seed=7;loss=0.02,timeout=50us,backoff=3,retries=4",
      "noise=0.25,prob=0.5",
      "degrade=0-1,from=0.001s,until=0.002s,bw=0.5,lat=10us",
      "degrade=any-any,bw=0.25;straggler=2,from=1ms,until=2ms,cpu=0.5",
  };
  for (const char* spec : specs) {
    const faults::FaultModel model = faults::parse_spec(spec);
    const std::string canonical = faults::to_spec(model);
    // Canonical form is a fixed point: parse(canon(parse(s))) == canon.
    EXPECT_EQ(faults::to_spec(faults::parse_spec(canonical)), canonical)
        << "spec: " << spec;
  }
}

TEST(FaultSpec, InertModelHasEmptySpec) {
  EXPECT_EQ(faults::to_spec(faults::FaultModel{}), "");
  EXPECT_FALSE(faults::FaultModel{}.enabled());
  EXPECT_FALSE(faults::parse_spec("seed=99").enabled());
}

TEST(FaultSpec, DurationUnits) {
  const faults::FaultModel model =
      faults::parse_spec("loss=0.1,timeout=2ms");
  EXPECT_DOUBLE_EQ(model.loss.timeout_us, 2000.0);
}

TEST(FaultSpec, MalformedSpecsThrowNamingTheClause) {
  const char* bad[] = {
      "loss=2.0",                 // probability out of range
      "loss=nope",                // not a number
      "warp=0.5",                 // unknown mechanism
      "degrade=0,bw=0.5",         // missing -dst
      "degrade=0-1,bw=0",         // scale must be > 0
      "straggler=0,cpu=1.5",      // scale must be <= 1
      "loss=0.1,timeout=-1us",    // negative duration
      "seed=abc",
  };
  for (const char* spec : bad) {
    EXPECT_THROW(faults::parse_spec(spec), Error) << "spec: " << spec;
  }
}

// --- bit-identity when off --------------------------------------------------

TEST(FaultsOff, GoldenFingerprintAndMakespan) {
  // Constants captured on the build immediately before fault injection was
  // added. Exact equality is the point: a faults-off replay (and its cache
  // fingerprint) must be bit-identical to the pre-fault engine.
  const pipeline::ReplayContext context(golden_trace(), golden_platform());
  EXPECT_EQ(context.fingerprint().lo, 0x74c0e995af9cbdb9ull);
  EXPECT_EQ(context.fingerprint().hi, 0x16a56852733e68eaull);
  const dimemas::SimResult result = pipeline::run_scenario(context);
  EXPECT_EQ(result.makespan, 0.00095243199999999991);
  EXPECT_FALSE(result.fault_counts.enabled);
}

TEST(FaultsOff, InertModelKeepsFingerprint) {
  const pipeline::ReplayContext base(golden_trace(), golden_platform());
  faults::FaultModel inert;
  inert.seed = 1234;  // seed alone enables nothing
  const pipeline::ReplayContext derived = base.with_faults(inert);
  EXPECT_EQ(derived.fingerprint().lo, base.fingerprint().lo);
  EXPECT_EQ(derived.fingerprint().hi, base.fingerprint().hi);
}

TEST(FaultsOn, EnabledModelChangesFingerprint) {
  const pipeline::ReplayContext base(golden_trace(), golden_platform());
  const pipeline::ReplayContext lossy =
      base.with_faults(faults::parse_spec("loss=0.02"));
  EXPECT_FALSE(lossy.fingerprint().lo == base.fingerprint().lo &&
               lossy.fingerprint().hi == base.fingerprint().hi);
  // Different seeds are different cache keys.
  const pipeline::ReplayContext lossy7 =
      base.with_faults(faults::parse_spec("seed=7;loss=0.02"));
  EXPECT_FALSE(lossy7.fingerprint().lo == lossy.fingerprint().lo &&
               lossy7.fingerprint().hi == lossy.fingerprint().hi);
}

// --- determinism ------------------------------------------------------------

TEST(FaultDeterminism, SameSeedSameResultAcrossJobs) {
  const char* spec =
      "seed=11;loss=0.05,timeout=20us;noise=0.2;degrade=any-any,bw=0.5;"
      "straggler=1,until=1s,cpu=0.5";
  std::vector<pipeline::ReplayContext> contexts;
  for (int i = 0; i < 6; ++i) contexts.push_back(faulted_context(spec));
  std::vector<double> reference;
  faults::Counts reference_counts;
  for (const int jobs : {1, 2, 8}) {
    pipeline::StudyOptions options;
    options.jobs = jobs;
    options.cache_replays = false;  // force every replay to really run
    pipeline::Study study(options);
    const std::vector<double> times = study.map(
        contexts,
        [&study](const pipeline::ReplayContext& c) {
          return study.makespan(c);
        });
    const dimemas::SimResult result = study.run(contexts[0]);
    for (const double t : times) {
      EXPECT_EQ(t, times[0]) << "jobs=" << jobs;
    }
    if (reference.empty()) {
      reference = times;
      reference_counts = result.fault_counts;
    } else {
      EXPECT_EQ(times, reference) << "jobs=" << jobs;
      EXPECT_EQ(result.fault_counts, reference_counts) << "jobs=" << jobs;
    }
  }
}

TEST(FaultDeterminism, DifferentSeedsDiffer) {
  const double a =
      pipeline::run_scenario(faulted_context("seed=1;loss=0.2")).makespan;
  double max_delta = 0.0;
  for (const int seed : {2, 3, 4, 5}) {
    const std::string spec = "seed=" + std::to_string(seed) + ";loss=0.2";
    const double b = pipeline::run_scenario(faulted_context(spec)).makespan;
    max_delta = std::max(max_delta, std::abs(a - b));
  }
  EXPECT_GT(max_delta, 0.0) << "five seeds produced identical makespans";
}

// --- mechanism effects ------------------------------------------------------

TEST(FaultEffects, LossDelaysAndCounts) {
  const double clean =
      pipeline::run_scenario(
          pipeline::ReplayContext(golden_trace(), golden_platform()))
          .makespan;
  const dimemas::SimResult lossy =
      pipeline::run_scenario(faulted_context("seed=3;loss=0.3"));
  EXPECT_GT(lossy.makespan, clean);
  EXPECT_TRUE(lossy.fault_counts.enabled);
  EXPECT_EQ(lossy.fault_counts.seed, 3u);
  EXPECT_GT(lossy.fault_counts.messages_dropped, 0u);
  EXPECT_GT(lossy.fault_counts.retransmits +
                lossy.fault_counts.handshake_reissues,
            0u);
  EXPECT_GT(lossy.fault_counts.injected_delay_s, 0.0);
}

TEST(FaultEffects, HardStallsTerminate) {
  // Extreme loss with a tiny retry budget: every message hard-stalls, yet
  // the replay must still terminate with finite makespan.
  const dimemas::SimResult result = pipeline::run_scenario(
      faulted_context("seed=5;loss=0.99,retries=2,timeout=10us"));
  EXPECT_GT(result.fault_counts.hard_stalls, 0u);
  EXPECT_TRUE(std::isfinite(result.makespan));
}

TEST(FaultEffects, DegradationSlowsTransfers) {
  const double clean =
      pipeline::run_scenario(
          pipeline::ReplayContext(golden_trace(), golden_platform()))
          .makespan;
  const dimemas::SimResult degraded = pipeline::run_scenario(
      faulted_context("degrade=any-any,bw=0.25,lat=50us"));
  EXPECT_GT(degraded.makespan, clean);
  EXPECT_GT(degraded.fault_counts.degraded_transfers, 0u);
  EXPECT_EQ(degraded.fault_counts.messages_dropped, 0u);
}

TEST(FaultEffects, StragglerSlowsItsRankOnly) {
  const dimemas::SimResult straggled = pipeline::run_scenario(
      faulted_context("straggler=0,until=1s,cpu=0.25"));
  const double clean =
      pipeline::run_scenario(
          pipeline::ReplayContext(golden_trace(), golden_platform()))
          .makespan;
  EXPECT_GT(straggled.makespan, clean);
  EXPECT_GT(straggled.fault_counts.straggled_bursts, 0u);
  EXPECT_GT(straggled.fault_counts.injected_compute_s, 0.0);
}

TEST(FaultEffects, NoisePerturbsCompute) {
  const dimemas::SimResult noisy =
      pipeline::run_scenario(faulted_context("seed=9;noise=0.5"));
  const double clean =
      pipeline::run_scenario(
          pipeline::ReplayContext(golden_trace(), golden_platform()))
          .makespan;
  EXPECT_GE(noisy.makespan, clean);
  EXPECT_GT(noisy.fault_counts.perturbed_bursts, 0u);
}

// --- metrics & reports ------------------------------------------------------

TEST(FaultMetrics, WaitAttributionCarriesFaultComponent) {
  const dimemas::SimResult result = pipeline::run_scenario(
      faulted_context("seed=3;loss=0.3", /*collect_metrics=*/true));
  ASSERT_NE(result.metrics, nullptr);
  double fault_wait = 0.0;
  for (const metrics::RankWaitAttribution& rank :
       result.metrics->rank_waits) {
    const metrics::WaitComponents total = rank.total();
    fault_wait += total.fault_s;
    // The fault component is part of the decomposition, never extra time.
    EXPECT_LE(total.fault_s, total.total_s() + 1e-12);
  }
  EXPECT_GT(fault_wait, 0.0);
}

TEST(FaultReports, ReplayReportGatesFaultSection) {
  const pipeline::ReplayContext clean_context(
      golden_trace(), golden_platform());
  const std::string clean_json = pipeline::replay_report_json(
      pipeline::run_scenario(clean_context), golden_platform(), "golden");
  EXPECT_EQ(clean_json.find("\"faults\""), std::string::npos);
  EXPECT_EQ(clean_json.find("fault_s"), std::string::npos);

  const std::string lossy_json = pipeline::replay_report_json(
      pipeline::run_scenario(
          faulted_context("seed=3;loss=0.3", /*collect_metrics=*/true)),
      golden_platform(), "golden");
  EXPECT_NE(lossy_json.find("\"faults\""), std::string::npos);
  EXPECT_NE(lossy_json.find("\"retransmits\""), std::string::npos);
  EXPECT_NE(lossy_json.find("\"fault_s\""), std::string::npos);
}

TEST(FaultReports, StudyReportCarriesCounters) {
  pipeline::StudyOptions options;
  options.record_scenarios = true;
  pipeline::Study study(options);
  const pipeline::ReplayContext lossy =
      faulted_context("seed=3;loss=0.3", /*collect_metrics=*/true);
  study.makespan(lossy, "lossy");
  study.makespan(lossy, "lossy-again");  // cache hit keeps its counters
  const std::string json = pipeline::study_report_json(study);
  EXPECT_NE(json.find("\"faults\""), std::string::npos);
  EXPECT_NE(json.find("\"fault_wait_s\""), std::string::npos);
  const std::vector<pipeline::ScenarioRecord> records = study.scenarios();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_TRUE(records[0].fault_counts.enabled);
  EXPECT_TRUE(records[1].fault_counts.enabled);
  EXPECT_EQ(records[0].fault_counts.retransmits,
            records[1].fault_counts.retransmits);
  EXPECT_EQ(records[0].fault_wait_s, records[1].fault_wait_s);
}

// --- scenario axis ----------------------------------------------------------

TEST(FaultScenarios, CrossFaultsDerivesContexts) {
  const pipeline::ReplayContext base(golden_trace(), golden_platform());
  const std::vector<pipeline::FaultScenario> axis = {
      {"clean", faults::FaultModel{}},
      {"lossy", faults::parse_spec("loss=0.1")},
      {"degraded", faults::parse_spec("degrade=any-any,bw=0.5")},
  };
  const std::vector<pipeline::ReplayContext> derived =
      pipeline::cross_faults(base, axis);
  ASSERT_EQ(derived.size(), 3u);
  EXPECT_EQ(derived[0].fingerprint().lo, base.fingerprint().lo);
  EXPECT_FALSE(derived[1].fingerprint().lo == base.fingerprint().lo &&
               derived[1].fingerprint().hi == base.fingerprint().hi);
  EXPECT_FALSE(derived[2].fingerprint().lo == derived[1].fingerprint().lo &&
               derived[2].fingerprint().hi == derived[1].fingerprint().hi);
}

}  // namespace
}  // namespace osim
