// Unit tests for the DES core: event queue, max-min fair allocation, and
// the two network models driven directly (no replay on top).
#include <gtest/gtest.h>

#include <vector>

#include "dimemas/events.hpp"
#include "dimemas/fairshare.hpp"
#include "dimemas/network.hpp"
#include "dimemas/platform.hpp"

namespace osim::dimemas {
namespace {

// --- EventQueue -----------------------------------------------------------

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  q.run_until_empty();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
  EXPECT_EQ(q.events_processed(), 3u);
}

TEST(EventQueue, FifoAmongSimultaneous) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  q.run_until_empty();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, SameTimestampGrowRebuildKeepsFifo) {
  EventQueue q;
  std::vector<int> order;
  // 200 simultaneous events: the 129th insert triggers a grow rebuild
  // whose observed time span is empty (hi == lo). Pop order must stay
  // exact (time, seq) FIFO through the degenerate rebuild.
  for (int i = 0; i < 200; ++i) {
    q.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  q.schedule(2.0, [&order] { order.push_back(200); });
  q.run_until_empty();
  ASSERT_EQ(order.size(), 201u);
  for (int i = 0; i <= 200; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
}

TEST(EventQueue, DegenerateWidthIsResampledNotSticky) {
  EventQueue q;
  // Drive the bucket width to the denormal guard: >128 events packed into
  // a ~1.6e-304 span make the grow rebuild resample the width down to the
  // 1e-308 floor.
  int tiny = 0;
  for (int i = 0; i < 160; ++i) {
    q.schedule(static_cast<double>(i) * 1e-306, [&tiny] { ++tiny; });
  }
  q.run_until_empty();
  EXPECT_EQ(tiny, 160);
  // Refill at a single ordinary timestamp. This rebuild sees hi == lo and
  // must resample back to the construction default rather than keep the
  // near-denormal width (which would clamp every later year_of() and turn
  // each pop into a full bucket walk). Order must stay exact FIFO.
  std::vector<int> order;
  for (int i = 0; i < 200; ++i) {
    q.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  for (int i = 200; i < 210; ++i) {
    q.schedule(1.0 + static_cast<double>(i - 199) * 0.001,
               [&order, i] { order.push_back(i); });
  }
  q.run_until_empty();
  ASSERT_EQ(order.size(), 210u);
  for (int i = 0; i < 210; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(EventQueue, HandlersMayScheduleMore) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&] {
    ++fired;
    q.schedule_after(1.0, [&] { ++fired; });
  });
  q.run_until_empty();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
}

TEST(EventQueueDeathTest, PastSchedulingAborts) {
  EventQueue q;
  q.schedule(5.0, [] {});
  q.run_one();
  EXPECT_DEATH(q.schedule(1.0, [] {}), "scheduled in the past");
}

// --- max-min fair allocation ----------------------------------------------

FairShareCaps caps(std::int32_t nodes, double link, double fabric = 0.0) {
  return FairShareCaps{nodes, link, link, fabric};
}

TEST(MaxMin, SingleFlowGetsLinkRate) {
  const auto rates = maxmin_rates({{0, 1}}, caps(2, 100.0));
  ASSERT_EQ(rates.size(), 1u);
  EXPECT_DOUBLE_EQ(rates[0], 100.0);
}

TEST(MaxMin, TwoFlowsShareOutLink) {
  const auto rates = maxmin_rates({{0, 1}, {0, 2}}, caps(3, 100.0));
  EXPECT_DOUBLE_EQ(rates[0], 50.0);
  EXPECT_DOUBLE_EQ(rates[1], 50.0);
}

TEST(MaxMin, IndependentFlowsUnaffected) {
  const auto rates = maxmin_rates({{0, 1}, {2, 3}}, caps(4, 100.0));
  EXPECT_DOUBLE_EQ(rates[0], 100.0);
  EXPECT_DOUBLE_EQ(rates[1], 100.0);
}

TEST(MaxMin, ClassicThreeFlowExample) {
  // Flows: A 0->1, B 0->2, C 3->2. Out-link 0 shared by A,B; in-link 2
  // shared by B,C. Max-min: A=50, B=50, C=50 (all bottlenecked at 50).
  const auto rates = maxmin_rates({{0, 1}, {0, 2}, {3, 2}}, caps(4, 100.0));
  EXPECT_DOUBLE_EQ(rates[0], 50.0);
  EXPECT_DOUBLE_EQ(rates[1], 50.0);
  EXPECT_DOUBLE_EQ(rates[2], 50.0);
}

TEST(MaxMin, UnfrozenFlowGrabsSlack) {
  // Flows: A 0->1, B 0->1, C 2->3. A,B bottleneck at out-link 0 (50 each);
  // C gets the full independent link.
  const auto rates = maxmin_rates({{0, 1}, {0, 1}, {2, 3}}, caps(4, 100.0));
  EXPECT_DOUBLE_EQ(rates[0], 50.0);
  EXPECT_DOUBLE_EQ(rates[1], 50.0);
  EXPECT_DOUBLE_EQ(rates[2], 100.0);
}

TEST(MaxMin, FabricCapsAggregate) {
  // Two independent flows, but the fabric only carries 120 total.
  const auto rates = maxmin_rates({{0, 1}, {2, 3}}, caps(4, 100.0, 120.0));
  EXPECT_DOUBLE_EQ(rates[0], 60.0);
  EXPECT_DOUBLE_EQ(rates[1], 60.0);
}

TEST(MaxMin, FabricAsymmetricFill) {
  // Flow A shares its out-link with B; fabric 150 total.
  // Round 1: fair share = 50 (link 0). A,B freeze at 50.
  // C continues until fabric (150 - 100 = 50 left) ... C gets 50.
  const auto rates =
      maxmin_rates({{0, 1}, {0, 2}, {3, 4}}, caps(5, 100.0, 150.0));
  EXPECT_DOUBLE_EQ(rates[0], 50.0);
  EXPECT_DOUBLE_EQ(rates[1], 50.0);
  EXPECT_DOUBLE_EQ(rates[2], 50.0);
}

TEST(MaxMin, EmptyFlowsOk) {
  EXPECT_TRUE(maxmin_rates({}, caps(2, 100.0)).empty());
}

TEST(MaxMin, ManyFlowsConservation) {
  // Property: aggregate rate through each resource never exceeds capacity,
  // and every flow has a positive rate.
  std::vector<FlowSpec> flows;
  for (int i = 0; i < 16; ++i) {
    flows.push_back(FlowSpec{i % 4, (i * 3 + 1) % 4});
  }
  // Avoid self-flows for realism.
  for (auto& f : flows) {
    if (f.src_node == f.dst_node) f.dst_node = (f.dst_node + 1) % 4;
  }
  const auto rates = maxmin_rates(flows, caps(4, 100.0, 250.0));
  double total = 0.0;
  std::vector<double> out(4, 0.0), in(4, 0.0);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    EXPECT_GT(rates[i], 0.0);
    out[static_cast<std::size_t>(flows[i].src_node)] += rates[i];
    in[static_cast<std::size_t>(flows[i].dst_node)] += rates[i];
    total += rates[i];
  }
  for (int n = 0; n < 4; ++n) {
    EXPECT_LE(out[static_cast<std::size_t>(n)], 100.0 + 1e-9);
    EXPECT_LE(in[static_cast<std::size_t>(n)], 100.0 + 1e-9);
  }
  EXPECT_LE(total, 250.0 + 1e-9);
}

// --- BusNetwork -----------------------------------------------------------

Platform bus_platform(std::int32_t nodes, std::int32_t buses) {
  Platform p;
  p.num_nodes = nodes;
  p.model = NetworkModelKind::kBus;
  p.bandwidth_MBps = 100.0;  // 1e8 B/s → 10 ns per byte
  p.latency_us = 10.0;
  p.num_buses = buses;
  return p;
}

TEST(BusNetwork, SingleTransferTiming) {
  EventQueue q;
  BusNetwork net(q, bus_platform(2, 0));
  double arrival = -1.0;
  double start = -1.0;
  net.submit(Transfer{0, 1, 1'000'000}, [&](double t) { arrival = t; },
             [&](double t) { start = t; });
  q.run_until_empty();
  EXPECT_DOUBLE_EQ(start, 0.0);
  // 1 MB at 100 MB/s = 10 ms, plus 10 us latency.
  EXPECT_DOUBLE_EQ(arrival, 0.01 + 10e-6);
}

TEST(BusNetwork, ZeroByteTakesLatencyOnly) {
  EventQueue q;
  BusNetwork net(q, bus_platform(2, 0));
  double arrival = -1.0;
  net.submit(Transfer{0, 1, 0}, [&](double t) { arrival = t; });
  q.run_until_empty();
  EXPECT_DOUBLE_EQ(arrival, 10e-6);
}

TEST(BusNetwork, OutputPortSerializes) {
  EventQueue q;
  BusNetwork net(q, bus_platform(3, 0));
  std::vector<double> arrivals;
  // Two messages from node 0: they serialize on the single output port,
  // but latency pipelines (paid once per message after its serialization).
  net.submit(Transfer{0, 1, 1'000'000},
             [&](double t) { arrivals.push_back(t); });
  net.submit(Transfer{0, 2, 1'000'000},
             [&](double t) { arrivals.push_back(t); });
  q.run_until_empty();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_DOUBLE_EQ(arrivals[0], 0.01 + 10e-6);
  EXPECT_DOUBLE_EQ(arrivals[1], 0.02 + 10e-6);
}

TEST(BusNetwork, InputPortSerializes) {
  EventQueue q;
  BusNetwork net(q, bus_platform(3, 0));
  std::vector<double> arrivals;
  net.submit(Transfer{0, 2, 1'000'000},
             [&](double t) { arrivals.push_back(t); });
  net.submit(Transfer{1, 2, 1'000'000},
             [&](double t) { arrivals.push_back(t); });
  q.run_until_empty();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_DOUBLE_EQ(arrivals[0], 0.01 + 10e-6);
  EXPECT_DOUBLE_EQ(arrivals[1], 0.02 + 10e-6);
}

TEST(BusNetwork, DisjointPairsRunConcurrently) {
  EventQueue q;
  BusNetwork net(q, bus_platform(4, 0));
  std::vector<double> arrivals;
  net.submit(Transfer{0, 1, 1'000'000},
             [&](double t) { arrivals.push_back(t); });
  net.submit(Transfer{2, 3, 1'000'000},
             [&](double t) { arrivals.push_back(t); });
  q.run_until_empty();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_DOUBLE_EQ(arrivals[0], 0.01 + 10e-6);
  EXPECT_DOUBLE_EQ(arrivals[1], 0.01 + 10e-6);
}

TEST(BusNetwork, BusLimitSerializesDisjointPairs) {
  EventQueue q;
  BusNetwork net(q, bus_platform(4, 1));  // one global bus
  std::vector<double> arrivals;
  net.submit(Transfer{0, 1, 1'000'000},
             [&](double t) { arrivals.push_back(t); });
  net.submit(Transfer{2, 3, 1'000'000},
             [&](double t) { arrivals.push_back(t); });
  q.run_until_empty();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_DOUBLE_EQ(arrivals[0], 0.01 + 10e-6);
  EXPECT_DOUBLE_EQ(arrivals[1], 0.02 + 10e-6);
}

TEST(BusNetwork, FirstFitSkipsBlockedHead) {
  EventQueue q;
  Platform p = bus_platform(4, 0);
  BusNetwork net(q, p);
  std::vector<int> order;
  // Fill node 1's input port, then queue another message to node 1 and one
  // to node 3; the node-3 message must not wait behind the blocked head.
  net.submit(Transfer{0, 1, 1'000'000}, [&](double) { order.push_back(0); });
  net.submit(Transfer{2, 1, 1'000'000}, [&](double) { order.push_back(1); });
  net.submit(Transfer{2, 3, 1'000'000}, [&](double) { order.push_back(2); });
  q.run_until_empty();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 2);  // overtook the blocked transfer to node 1
  EXPECT_EQ(order[2], 1);
}

TEST(BusNetwork, MultiplePortsAllowConcurrency) {
  EventQueue q;
  Platform p = bus_platform(3, 0);
  p.output_ports = 2;
  BusNetwork net(q, p);
  std::vector<double> arrivals;
  net.submit(Transfer{0, 1, 1'000'000},
             [&](double t) { arrivals.push_back(t); });
  net.submit(Transfer{0, 2, 1'000'000},
             [&](double t) { arrivals.push_back(t); });
  q.run_until_empty();
  EXPECT_DOUBLE_EQ(arrivals[0], 0.01 + 10e-6);
  EXPECT_DOUBLE_EQ(arrivals[1], 0.01 + 10e-6);
}

// --- FairShareNetwork -------------------------------------------------------

Platform fs_platform(std::int32_t nodes, double fabric_links = 0.0) {
  Platform p;
  p.num_nodes = nodes;
  p.model = NetworkModelKind::kFairShare;
  p.bandwidth_MBps = 100.0;
  p.latency_us = 10.0;
  p.fabric_capacity_links = fabric_links;
  return p;
}

TEST(FairShareNetwork, SingleTransferTiming) {
  EventQueue q;
  FairShareNetwork net(q, fs_platform(2));
  double arrival = -1.0;
  net.submit(Transfer{0, 1, 1'000'000}, [&](double t) { arrival = t; });
  q.run_until_empty();
  EXPECT_NEAR(arrival, 0.01 + 10e-6, 1e-12);
}

TEST(FairShareNetwork, TwoFlowsShareBandwidth) {
  EventQueue q;
  FairShareNetwork net(q, fs_platform(3));
  std::vector<double> arrivals;
  // Same source: each gets 50 MB/s; both finish at ~20 ms (plus latency).
  net.submit(Transfer{0, 1, 1'000'000},
             [&](double t) { arrivals.push_back(t); });
  net.submit(Transfer{0, 2, 1'000'000},
             [&](double t) { arrivals.push_back(t); });
  q.run_until_empty();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_NEAR(arrivals[0], 0.02 + 10e-6, 1e-9);
  EXPECT_NEAR(arrivals[1], 0.02 + 10e-6, 1e-9);
}

TEST(FairShareNetwork, RateRebalancesAfterCompletion) {
  EventQueue q;
  FairShareNetwork net(q, fs_platform(3));
  double big_arrival = -1.0;
  // A short and a long flow share the source link. After the short one
  // finishes, the long one speeds up:
  //   both at 50 MB/s until t = 10us + 20ms (short done; long has 0.5 MB
  //   left), then the long one runs at 100 MB/s for another 5 ms.
  net.submit(Transfer{0, 1, 1'000'000}, [&](double) {});
  net.submit(Transfer{0, 2, 1'500'000}, [&](double t) { big_arrival = t; });
  q.run_until_empty();
  EXPECT_NEAR(big_arrival, 10e-6 + 0.020 + 0.005, 1e-7);
}

TEST(FairShareNetwork, ZeroByteTakesLatencyOnly) {
  EventQueue q;
  FairShareNetwork net(q, fs_platform(2));
  double arrival = -1.0;
  net.submit(Transfer{0, 1, 0}, [&](double t) { arrival = t; });
  q.run_until_empty();
  EXPECT_DOUBLE_EQ(arrival, 10e-6);
}

TEST(FairShareNetwork, FabricLimitsAggregate) {
  EventQueue q;
  FairShareNetwork net(q, fs_platform(4, 1.0));  // fabric = 1 link = 100 MB/s
  std::vector<double> arrivals;
  net.submit(Transfer{0, 1, 1'000'000},
             [&](double t) { arrivals.push_back(t); });
  net.submit(Transfer{2, 3, 1'000'000},
             [&](double t) { arrivals.push_back(t); });
  q.run_until_empty();
  // Disjoint pairs, but the shared fabric halves both rates: 20 ms each.
  EXPECT_NEAR(arrivals[0], 0.02 + 10e-6, 1e-9);
  EXPECT_NEAR(arrivals[1], 0.02 + 10e-6, 1e-9);
}

TEST(FairShareNetwork, ManyFlowsAllComplete) {
  EventQueue q;
  FairShareNetwork net(q, fs_platform(8, 2.0));
  int completed = 0;
  for (int i = 0; i < 64; ++i) {
    net.submit(Transfer{i % 8, (i + 3) % 8, 100'000 + 1000u * i},
               [&](double) { ++completed; });
  }
  q.run_until_empty();
  EXPECT_EQ(completed, 64);
  EXPECT_EQ(net.in_flight(), 0u);
}

TEST(NetworkFactory, DispatchesOnModel) {
  EventQueue q;
  EXPECT_NE(dynamic_cast<BusNetwork*>(
                make_network(q, bus_platform(2, 0)).get()),
            nullptr);
  EXPECT_NE(dynamic_cast<FairShareNetwork*>(
                make_network(q, fs_platform(2)).get()),
            nullptr);
}

}  // namespace
}  // namespace osim::dimemas
