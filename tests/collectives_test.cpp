// Unit tests for the collective-expansion pre-pass: tree shapes, payload
// sizes, tag uniqueness, and structural validity of the expanded traces.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "dimemas/collectives.hpp"
#include "dimemas/replay.hpp"
#include "trace/trace.hpp"

namespace osim::dimemas {
namespace {

using trace::CollectiveKind;
using trace::Rank;
using trace::Record;
using trace::Recv;
using trace::Send;
using trace::Trace;
using trace::TraceBuilder;

Trace single_collective(Rank ranks, CollectiveKind kind, Rank root,
                        std::uint64_t bytes) {
  TraceBuilder b(ranks, 1000.0);
  for (Rank r = 0; r < ranks; ++r) b.global(r, kind, root, bytes, 0);
  return std::move(b).build();
}

struct Counts {
  std::size_t sends = 0;
  std::size_t recvs = 0;
  std::uint64_t bytes_sent = 0;
};

Counts count_p2p(const Trace& t) {
  Counts c;
  for (const auto& stream : t.ranks) {
    for (const Record& rec : stream) {
      if (const auto* send = std::get_if<Send>(&rec)) {
        ++c.sends;
        c.bytes_sent += send->bytes;
      } else if (std::holds_alternative<Recv>(rec)) {
        ++c.recvs;
      }
    }
  }
  return c;
}

TEST(Collectives, HasCollectivesDetects) {
  EXPECT_TRUE(
      has_collectives(single_collective(2, CollectiveKind::kBarrier, 0, 0)));
  TraceBuilder b(2, 1000.0);
  b.compute(0, 5);
  EXPECT_FALSE(has_collectives(std::move(b).build()));
}

TEST(Collectives, ExpansionValidates) {
  for (const CollectiveKind kind :
       {CollectiveKind::kBarrier, CollectiveKind::kBcast,
        CollectiveKind::kReduce, CollectiveKind::kAllreduce,
        CollectiveKind::kGather, CollectiveKind::kScatter,
        CollectiveKind::kAllgather, CollectiveKind::kAlltoall}) {
    for (const Rank ranks : {2, 3, 4, 5, 8, 13}) {
      const Trace expanded =
          expand_collectives(single_collective(ranks, kind, 0, 64));
      EXPECT_NO_THROW(trace::validate(expanded))
          << collective_name(kind) << " over " << ranks << " ranks";
      EXPECT_FALSE(has_collectives(expanded));
    }
  }
}

TEST(Collectives, NonZeroRootValidates) {
  for (const CollectiveKind kind :
       {CollectiveKind::kBcast, CollectiveKind::kReduce,
        CollectiveKind::kGather, CollectiveKind::kScatter}) {
    for (const Rank root : {1, 2, 4}) {
      const Trace expanded =
          expand_collectives(single_collective(5, kind, root, 32));
      EXPECT_NO_THROW(trace::validate(expanded))
          << collective_name(kind) << " root " << root;
    }
  }
}

TEST(Collectives, BcastMessageCount) {
  // A broadcast tree over P ranks has exactly P-1 edges.
  for (const Rank ranks : {2, 4, 7, 16}) {
    const Counts c = count_p2p(
        expand_collectives(single_collective(ranks, CollectiveKind::kBcast,
                                             0, 100)));
    EXPECT_EQ(c.sends, static_cast<std::size_t>(ranks - 1));
    EXPECT_EQ(c.recvs, static_cast<std::size_t>(ranks - 1));
    EXPECT_EQ(c.bytes_sent, 100u * static_cast<std::uint64_t>(ranks - 1));
  }
}

TEST(Collectives, BarrierHasUpAndDownPhases) {
  const Counts c = count_p2p(
      expand_collectives(single_collective(8, CollectiveKind::kBarrier, 0, 0)));
  EXPECT_EQ(c.sends, 14u);  // 7 up + 7 down
  EXPECT_EQ(c.bytes_sent, 0u);
}

TEST(Collectives, GatherMovesAllPayloadToRoot) {
  // Total bytes crossing the tree: every rank's payload travels once per
  // tree level it ascends; with subtree aggregation the root receives
  // exactly (P-1) * bytes in total across its incoming edges.
  const Rank ranks = 8;
  const Trace expanded = expand_collectives(
      single_collective(ranks, CollectiveKind::kGather, 0, 10));
  std::uint64_t into_root = 0;
  for (const Record& rec : expanded.ranks[0]) {
    if (const auto* recv = std::get_if<Recv>(&rec)) into_root += recv->bytes;
  }
  EXPECT_EQ(into_root, 70u);  // 7 other ranks x 10 bytes
}

TEST(Collectives, ScatterMirrorsGather) {
  const Rank ranks = 8;
  const Trace expanded = expand_collectives(
      single_collective(ranks, CollectiveKind::kScatter, 0, 10));
  std::uint64_t out_of_root = 0;
  for (const Record& rec : expanded.ranks[0]) {
    if (const auto* send = std::get_if<Send>(&rec)) out_of_root += send->bytes;
  }
  EXPECT_EQ(out_of_root, 70u);
}

TEST(Collectives, AlltoallFullExchange) {
  const Rank ranks = 5;
  const Trace expanded = expand_collectives(
      single_collective(ranks, CollectiveKind::kAlltoall, 0, 16));
  // Every ordered pair exchanges one block.
  const Counts c = count_p2p(expanded);
  EXPECT_EQ(c.sends, static_cast<std::size_t>(ranks * (ranks - 1)));
  EXPECT_EQ(c.bytes_sent,
            16u * static_cast<std::uint64_t>(ranks * (ranks - 1)));
}

TEST(Collectives, ScanIsAChain) {
  const Rank ranks = 6;
  const Trace expanded = expand_collectives(
      single_collective(ranks, CollectiveKind::kScan, 0, 24));
  EXPECT_NO_THROW(trace::validate(expanded));
  // Interior ranks relay once; the ends send or receive only.
  const Counts c = count_p2p(expanded);
  EXPECT_EQ(c.sends, static_cast<std::size_t>(ranks - 1));
  EXPECT_EQ(c.bytes_sent, 24u * static_cast<std::uint64_t>(ranks - 1));
}

TEST(Collectives, InternalTagsAreNegativeAndUnique) {
  EXPECT_LT(collective_tag(0, 0), 0);
  std::set<trace::Tag> seen;
  for (std::int64_t seq = 0; seq < 10; ++seq) {
    for (int phase = 0; phase < 3; ++phase) {
      EXPECT_TRUE(seen.insert(collective_tag(seq, phase)).second);
    }
  }
}

TEST(Collectives, SequencesKeepOpsApart) {
  // Two back-to-back allreduces must not cross-match.
  TraceBuilder b(4, 1000.0);
  for (Rank r = 0; r < 4; ++r) {
    b.global(r, CollectiveKind::kAllreduce, 0, 8, 0);
    b.global(r, CollectiveKind::kAllreduce, 0, 8, 1);
  }
  const Trace expanded = expand_collectives(std::move(b).build());
  EXPECT_NO_THROW(trace::validate(expanded));
  // All tags from op 0 differ from all tags of op 1.
  std::set<trace::Tag> op_tags[2];
  for (const auto& stream : expanded.ranks) {
    for (const Record& rec : stream) {
      if (const auto* send = std::get_if<Send>(&rec)) {
        // Tag encodes the sequence; segregate by magnitude.
        op_tags[(-send->tag - 1) / 16].insert(send->tag);
      }
    }
  }
  for (const trace::Tag t : op_tags[0]) {
    EXPECT_EQ(op_tags[1].count(t), 0u);
  }
}

TEST(Collectives, RequestIdsAvoidAppIds) {
  // A rank already using request id 7 must not have it reused by the
  // alltoall expansion.
  TraceBuilder b(3, 1000.0);
  b.irecv(0, 1, 5, 8, 7);
  b.send(1, 0, 5, 8);
  b.wait(0, {7});
  for (Rank r = 0; r < 3; ++r) {
    b.global(r, CollectiveKind::kAlltoall, 0, 8, 0);
  }
  const Trace expanded = expand_collectives(std::move(b).build());
  EXPECT_NO_THROW(trace::validate(expanded));
}

TEST(Collectives, SingleRankIsNoOp) {
  const Trace expanded = expand_collectives(
      single_collective(1, CollectiveKind::kAllreduce, 0, 64));
  EXPECT_EQ(expanded.total_records(), 0u);
}

TEST(Collectives, PreservesSurroundingRecords) {
  TraceBuilder b(2, 1000.0);
  for (Rank r = 0; r < 2; ++r) {
    b.compute(r, 100).global(r, CollectiveKind::kBarrier, 0, 0, 0).compute(
        r, 200);
  }
  const Trace expanded = expand_collectives(std::move(b).build());
  EXPECT_EQ(expanded.total_instructions(0), 300u);
  EXPECT_EQ(expanded.total_instructions(1), 300u);
}

// --- alternative algorithms --------------------------------------------------

TEST(CollectiveAlgos, Names) {
  EXPECT_STREQ(collective_algo_name(CollectiveAlgo::kBinomialTree),
               "binomial-tree");
  EXPECT_STREQ(collective_algo_name(CollectiveAlgo::kLinear), "linear");
  EXPECT_STREQ(collective_algo_name(CollectiveAlgo::kRecursiveDoubling),
               "recursive-doubling");
}

TEST(CollectiveAlgos, AllAlgorithmsValidate) {
  for (const CollectiveAlgo algo :
       {CollectiveAlgo::kBinomialTree, CollectiveAlgo::kLinear,
        CollectiveAlgo::kRecursiveDoubling}) {
    for (const CollectiveKind kind :
         {CollectiveKind::kBarrier, CollectiveKind::kBcast,
          CollectiveKind::kReduce, CollectiveKind::kAllreduce,
          CollectiveKind::kGather, CollectiveKind::kScatter,
          CollectiveKind::kAllgather, CollectiveKind::kAlltoall}) {
      for (const Rank ranks : {2, 3, 4, 7, 8, 16}) {
        const Trace expanded = expand_collectives(
            single_collective(ranks, kind, ranks > 2 ? 1 : 0, 64), algo);
        EXPECT_NO_THROW(trace::validate(expanded))
            << collective_algo_name(algo) << " " << collective_name(kind)
            << " over " << ranks << " ranks";
      }
    }
  }
}

TEST(CollectiveAlgos, LinearBcastIsAStar) {
  const Trace expanded = expand_collectives(
      single_collective(8, CollectiveKind::kBcast, 2, 100),
      CollectiveAlgo::kLinear);
  // The root sends 7 messages; every other rank sends none.
  std::size_t root_sends = 0;
  for (const Record& rec : expanded.ranks[2]) {
    root_sends += std::holds_alternative<Send>(rec);
  }
  EXPECT_EQ(root_sends, 7u);
  for (const Rank r : {0, 1, 3, 4, 5, 6, 7}) {
    for (const Record& rec : expanded.ranks[static_cast<std::size_t>(r)]) {
      EXPECT_FALSE(std::holds_alternative<Send>(rec));
    }
  }
}

TEST(CollectiveAlgos, LinearGatherCarriesOwnPayloadOnly) {
  const Trace expanded = expand_collectives(
      single_collective(8, CollectiveKind::kGather, 0, 10),
      CollectiveAlgo::kLinear);
  // Every non-root rank sends exactly its own 10 bytes straight to the root.
  for (Rank r = 1; r < 8; ++r) {
    std::uint64_t sent = 0;
    for (const Record& rec : expanded.ranks[static_cast<std::size_t>(r)]) {
      if (const auto* send = std::get_if<Send>(&rec)) sent += send->bytes;
    }
    EXPECT_EQ(sent, 10u);
  }
}

TEST(CollectiveAlgos, DisseminationBarrierRounds) {
  // 8 ranks: each rank sends exactly ceil(log2(8)) = 3 messages.
  const Trace expanded = expand_collectives(
      single_collective(8, CollectiveKind::kBarrier, 0, 0),
      CollectiveAlgo::kRecursiveDoubling);
  for (const auto& stream : expanded.ranks) {
    std::size_t sends = 0;
    for (const Record& rec : stream) {
      sends += std::holds_alternative<Send>(rec);
    }
    EXPECT_EQ(sends, 3u);
  }
}

TEST(CollectiveAlgos, RecursiveDoublingAllgatherDoublesBlocks) {
  const Trace expanded = expand_collectives(
      single_collective(8, CollectiveKind::kAllgather, 0, 16),
      CollectiveAlgo::kRecursiveDoubling);
  // Round payloads per rank: 16, 32, 64 (1, 2, 4 blocks).
  std::vector<std::uint64_t> sizes;
  for (const Record& rec : expanded.ranks[0]) {
    if (const auto* send = std::get_if<Send>(&rec)) {
      sizes.push_back(send->bytes);
    }
  }
  EXPECT_EQ(sizes, (std::vector<std::uint64_t>{16, 32, 64}));
}

TEST(CollectiveAlgos, TwoRankDissemination) {
  // P = 2 is the degenerate case where src == dst for the single round.
  const Trace expanded = expand_collectives(
      single_collective(2, CollectiveKind::kAllreduce, 0, 8),
      CollectiveAlgo::kRecursiveDoubling);
  EXPECT_NO_THROW(trace::validate(expanded));
}

TEST(CollectiveAlgos, ReplayTimingOrder) {
  // Barrier cost depends on the endpoint model. With zero per-message
  // overhead (pure linear model), the flat star costs 2 latencies total
  // and beats everything; with a realistic LogGP-style overhead the root
  // serializes P-1 messages and the log-round algorithms win. Both
  // regimes are checked.
  const Rank ranks = 16;
  trace::TraceBuilder b(ranks, 1000.0);
  for (Rank r = 0; r < ranks; ++r) {
    for (int i = 0; i < 4; ++i) {
      b.global(r, CollectiveKind::kBarrier, 0, 0, i);
    }
  }
  const Trace t = std::move(b).build();
  Platform p;
  p.num_nodes = ranks;
  p.bandwidth_MBps = 100.0;
  p.latency_us = 20.0;
  auto time_with = [&](CollectiveAlgo algo) {
    ReplayOptions options;
    options.collective_algo = algo;
    return replay(t, p, options).makespan;
  };
  // Zero-overhead regime: star = 2L per barrier, dissemination = log2(P)*L,
  // tree = 2*log2(P)*L.
  const double linear0 = time_with(CollectiveAlgo::kLinear);
  const double dissemination0 =
      time_with(CollectiveAlgo::kRecursiveDoubling);
  EXPECT_LT(linear0, dissemination0);

  // Substantial endpoint overhead: the star's root serializes 15 sends
  // and 15 receives at 20 us each; the log-round algorithms now win
  // clearly.
  p.per_message_overhead_us = 20.0;
  const double tree = time_with(CollectiveAlgo::kBinomialTree);
  const double linear = time_with(CollectiveAlgo::kLinear);
  const double dissemination =
      time_with(CollectiveAlgo::kRecursiveDoubling);
  EXPECT_LT(tree, linear);
  EXPECT_LT(dissemination, linear);
}

}  // namespace
}  // namespace osim::dimemas
