// Unit tests for the common utilities: strings, units, rng, stats, tables,
// CSV, flags, logging.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#if defined(__unix__) || defined(__APPLE__)
#include <cerrno>
#include <csignal>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "common/csv.hpp"
#include "common/expect.hpp"
#include "common/flags.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/signals.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace osim {
namespace {

// --- strings ---------------------------------------------------------------

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitSingleToken) {
  const auto parts = split("hello", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "hello");
}

TEST(Strings, SplitWsDropsRuns) {
  const auto parts = split_ws("  a \t b\n c  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitWsEmpty) { EXPECT_TRUE(split_ws("   \t\n").empty()); }

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t\n "), "");
  EXPECT_EQ(trim("no-trim"), "no-trim");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("--flag", "--"));
  EXPECT_FALSE(starts_with("-", "--"));
  EXPECT_TRUE(starts_with("abc", ""));
}

TEST(Strings, ParseI64) {
  EXPECT_EQ(parse_i64("42"), 42);
  EXPECT_EQ(parse_i64("-17"), -17);
  EXPECT_EQ(parse_i64(" 3 "), 3);
  EXPECT_FALSE(parse_i64("3x"));
  EXPECT_FALSE(parse_i64(""));
  EXPECT_FALSE(parse_i64("1.5"));
}

TEST(Strings, ParseU64RejectsNegative) {
  EXPECT_EQ(parse_u64("18446744073709551615"),
            std::numeric_limits<std::uint64_t>::max());
  EXPECT_FALSE(parse_u64("-1"));
}

TEST(Strings, ParseF64) {
  EXPECT_DOUBLE_EQ(*parse_f64("2.5e3"), 2500.0);
  EXPECT_FALSE(parse_f64("abc"));
  EXPECT_FALSE(parse_f64("1.0 trailing"));
}

TEST(Strings, Strprintf) {
  EXPECT_EQ(strprintf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(strprintf("empty"), "empty");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, FormatSeconds) {
  EXPECT_EQ(format_seconds(0.0), "0 s");
  EXPECT_NE(format_seconds(1.5e-6).find("us"), std::string::npos);
  EXPECT_NE(format_seconds(2.5e-3).find("ms"), std::string::npos);
  EXPECT_NE(format_seconds(3.0).find(" s"), std::string::npos);
  EXPECT_NE(format_seconds(5e-9).find("ns"), std::string::npos);
}

TEST(Strings, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_NE(format_bytes(2.5e6).find("MB"), std::string::npos);
}

// --- units -------------------------------------------------------------------

TEST(Units, BandwidthRoundTrip) {
  EXPECT_DOUBLE_EQ(mbps_to_bytes_per_s(250.0), 250.0e6);
  EXPECT_DOUBLE_EQ(bytes_per_s_to_mbps(mbps_to_bytes_per_s(42.0)), 42.0);
}

TEST(Units, LatencyRoundTrip) {
  EXPECT_DOUBLE_EQ(us_to_s(8.0), 8.0e-6);
  EXPECT_DOUBLE_EQ(s_to_us(us_to_s(3.5)), 3.5);
}

TEST(Units, InstructionsToSeconds) {
  // 2300 MIPS: 2.3e9 instructions per second.
  EXPECT_DOUBLE_EQ(instructions_to_s(2'300'000'000ull, 2300.0), 1.0);
  EXPECT_EQ(s_to_instructions(1.0, 2300.0), 2'300'000'000ull);
  EXPECT_EQ(s_to_instructions(-1.0, 2300.0), 0ull);
}

// --- rng ---------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, UniformMeanReasonable) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, BelowBounds) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.below(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values hit
}

// --- stats ---------------------------------------------------------------------

TEST(Stats, MeanVariance) {
  const double xs[] = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(variance(xs), 1.25);
  EXPECT_DOUBLE_EQ(stddev(xs), std::sqrt(1.25));
  EXPECT_DOUBLE_EQ(min_of(xs), 1.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 4.0);
}

TEST(Stats, PercentileInterpolates) {
  const double xs[] = {10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 50.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 30.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 20.0);
  EXPECT_DOUBLE_EQ(median(xs), 30.0);
}

TEST(Stats, PercentileSingleElement) {
  const double xs[] = {7.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 90), 7.0);
}

TEST(Stats, Geomean) {
  const double xs[] = {1.0, 4.0};
  EXPECT_DOUBLE_EQ(geomean(xs), 2.0);
}

TEST(Stats, RunningStatsMatchesBatch) {
  RunningStats rs;
  const double xs[] = {3.0, -1.0, 4.0, 1.5};
  for (const double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), 4u);
  EXPECT_DOUBLE_EQ(rs.mean(), mean(xs));
  EXPECT_NEAR(rs.variance(), variance(xs), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), -1.0);
  EXPECT_DOUBLE_EQ(rs.max(), 4.0);
}

// --- table -----------------------------------------------------------------------

TEST(Table, RendersAlignedCells) {
  TextTable table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22"});
  const std::string out = table.render();
  EXPECT_NE(out.find("| alpha |"), std::string::npos);
  // "value" is 5 wide, so "1" is right-aligned with 4 spaces of padding.
  EXPECT_NE(out.find("|     1 |"), std::string::npos);
  EXPECT_NE(out.find("+"), std::string::npos);
}

TEST(Table, TitleShown) {
  TextTable table({"x"});
  table.set_title("My Title");
  EXPECT_EQ(table.render().rfind("My Title", 0), 0u);
}

TEST(Table, CellFormatting) {
  EXPECT_EQ(cell(3.14159, 3), "3.14");
  EXPECT_EQ(cell_percent(0.663, 1), "66.3%");
  EXPECT_EQ(cell_percent(1.0, 2), "100.00%");
}

// --- csv ---------------------------------------------------------------------------

TEST(Csv, InMemoryEscaping) {
  CsvWriter csv({"a", "b"});
  csv.add_row({"plain", "with,comma"});
  csv.add_row({"quote\"inside", "multi\nline"});
  const std::string out = csv.str();
  EXPECT_NE(out.find("a,b\n"), std::string::npos);
  EXPECT_NE(out.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"quote\"\"inside\""), std::string::npos);
}

// Regression: a bare carriage return must be quoted like \n, or a cell
// containing CRLF text splits the row in readers that treat \r as a line
// ending.
TEST(Csv, CarriageReturnIsQuoted) {
  CsvWriter csv({"a"});
  csv.add_row({"line\r\nbreak"});
  csv.add_row({"bare\rreturn"});
  const std::string out = csv.str();
  EXPECT_NE(out.find("\"line\r\nbreak\""), std::string::npos);
  EXPECT_NE(out.find("\"bare\rreturn\""), std::string::npos);
}

TEST(Csv, FileMode) {
  const std::string path = ::testing::TempDir() + "/osim_csv_test.csv";
  {
    CsvWriter csv(path, {"h"});
    csv.add_row({"v"});
  }
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "h");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "v");
}

// --- flags -----------------------------------------------------------------------

TEST(Flags, ParsesAllKinds) {
  std::string name = "default";
  std::int64_t count = 1;
  double rate = 0.5;
  bool enabled = false;
  Flags flags("test");
  flags.add("name", &name, "a string");
  flags.add("count", &count, "an int");
  flags.add("rate", &rate, "a double");
  flags.add("enabled", &enabled, "a bool");
  const char* argv[] = {"prog", "--name=zed", "--count", "42",
                        "--rate=2.5", "--enabled"};
  EXPECT_TRUE(flags.parse(6, argv));
  EXPECT_EQ(name, "zed");
  EXPECT_EQ(count, 42);
  EXPECT_DOUBLE_EQ(rate, 2.5);
  EXPECT_TRUE(enabled);
}

TEST(Flags, UnknownFlagThrows) {
  Flags flags("test");
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_THROW(flags.parse(2, argv), Error);
}

TEST(Flags, UnknownFlagIsUsageErrorNamingTheFlag) {
  Flags flags("test");
  const char* argv[] = {"prog", "--bogus=1"};
  try {
    flags.parse(2, argv);
    FAIL() << "expected UsageError";
  } catch (const UsageError& e) {
    EXPECT_NE(std::string(e.what()).find("--bogus"), std::string::npos);
  }
}

TEST(Flags, UnknownFlagSuggestsNearestRegistered) {
  std::string trace;
  std::int64_t jobs = 1;
  Flags flags("test");
  flags.add("trace", &trace, "trace file");
  flags.add("jobs", &jobs, "jobs");
  // One edit away ("trce") and two edits away ("tarce" via transpose =
  // two single-char edits) both get a suggestion.
  for (const char* wrong : {"--trce=x", "--tarce=x", "--job=2"}) {
    const char* argv[] = {"prog", wrong};
    try {
      flags.parse(2, argv);
      FAIL() << wrong << ": expected UsageError";
    } catch (const UsageError& e) {
      EXPECT_NE(std::string(e.what()).find("did you mean"),
                std::string::npos)
          << wrong << " -> " << e.what();
    }
  }
  // Nothing within distance 2: no suggestion, but still a usage error.
  const char* argv[] = {"prog", "--frobnicate=1"};
  try {
    flags.parse(2, argv);
    FAIL() << "expected UsageError";
  } catch (const UsageError& e) {
    EXPECT_EQ(std::string(e.what()).find("did you mean"), std::string::npos);
  }
}

TEST(Flags, SuggestionApi) {
  std::string trace;
  Flags flags("test");
  flags.add("trace", &trace, "trace file");
  EXPECT_EQ(flags.suggestion("trace"), "trace");   // distance 0
  EXPECT_EQ(flags.suggestion("trqce"), "trace");   // substitution
  EXPECT_EQ(flags.suggestion("trac"), "trace");    // deletion
  EXPECT_EQ(flags.suggestion("xtrace"), "trace");  // insertion
  EXPECT_EQ(flags.suggestion("completely-different"), "");
}

TEST(Flags, BadValueIsUsageErrorNamingTheFlag) {
  std::int64_t count = 0;
  double rate = 0.0;
  bool flag = false;
  Flags flags("test");
  flags.add("count", &count, "int");
  flags.add("rate", &rate, "double");
  flags.add("flag", &flag, "bool");
  const struct {
    const char* arg;
    const char* named;
  } cases[] = {{"--count=abc", "--count"},
               {"--rate=xyz", "--rate"},
               {"--flag=maybe", "--flag"}};
  for (const auto& c : cases) {
    const char* argv[] = {"prog", c.arg};
    try {
      flags.parse(2, argv);
      FAIL() << c.arg << ": expected UsageError";
    } catch (const UsageError& e) {
      EXPECT_NE(std::string(e.what()).find(c.named), std::string::npos)
          << c.arg << " -> " << e.what();
    }
  }
}

TEST(Flags, MissingValueIsUsageError) {
  std::int64_t count = 0;
  Flags flags("test");
  flags.add("count", &count, "int");
  const char* argv[] = {"prog", "--count"};
  EXPECT_THROW(flags.parse(2, argv), UsageError);
}

TEST(Flags, BadValueThrows) {
  std::int64_t count = 0;
  Flags flags("test");
  flags.add("count", &count, "int");
  const char* argv[] = {"prog", "--count=abc"};
  EXPECT_THROW(flags.parse(2, argv), Error);
}

TEST(Flags, BoolExplicitFalse) {
  bool enabled = true;
  Flags flags("test");
  flags.add("enabled", &enabled, "bool");
  const char* argv[] = {"prog", "--enabled=false"};
  EXPECT_TRUE(flags.parse(2, argv));
  EXPECT_FALSE(enabled);
}

TEST(Flags, EmptyValueAfterEqualsSetsEmptyString) {
  std::string name = "default";
  Flags flags("test");
  flags.add("name", &name, "a string");
  const char* argv[] = {"prog", "--name="};
  EXPECT_TRUE(flags.parse(2, argv));
  EXPECT_EQ(name, "");
}

TEST(Flags, BoolExplicitValues) {
  bool enabled = false;
  Flags flags("test");
  flags.add("enabled", &enabled, "bool");

  const char* on_1[] = {"prog", "--enabled=1"};
  EXPECT_TRUE(flags.parse(2, on_1));
  EXPECT_TRUE(enabled);

  const char* off_0[] = {"prog", "--enabled=0"};
  EXPECT_TRUE(flags.parse(2, off_0));
  EXPECT_FALSE(enabled);

  const char* on_true[] = {"prog", "--enabled=true"};
  EXPECT_TRUE(flags.parse(2, on_true));
  EXPECT_TRUE(enabled);

  enabled = false;
  const char* on_bare_eq[] = {"prog", "--enabled="};
  EXPECT_TRUE(flags.parse(2, on_bare_eq));
  EXPECT_TRUE(enabled);  // --enabled= behaves like bare --enabled
}

TEST(Flags, RepeatedFlagLastOccurrenceWins) {
  std::string name = "default";
  std::int64_t count = 0;
  Flags flags("test");
  flags.add("name", &name, "a string");
  flags.add("count", &count, "an int");
  const char* argv[] = {"prog", "--name=first", "--count=1", "--name=second",
                        "--count", "2"};
  EXPECT_TRUE(flags.parse(6, argv));
  EXPECT_EQ(name, "second");
  EXPECT_EQ(count, 2);
}

TEST(Flags, PositionalArgumentRejected) {
  Flags flags("test");
  const char* argv[] = {"prog", "stray"};
  EXPECT_THROW(flags.parse(2, argv), Error);
}

// --- log --------------------------------------------------------------------------

TEST(Log, CaptureAndLevels) {
  std::string captured;
  log::set_capture(&captured);
  const log::Level old = log::level();
  log::set_level(log::Level::kInfo);
  log::info("value is {} and {}", 42, "text");
  log::debug("should not appear");
  log::set_level(old);
  log::set_capture(nullptr);
  EXPECT_NE(captured.find("value is 42 and text"), std::string::npos);
  EXPECT_EQ(captured.find("should not appear"), std::string::npos);
}

// --- signals: the daemon-side child reaper ----------------------------------

#if defined(__unix__) || defined(__APPLE__)

// A worker killed with SIGKILL must surface through the reaper: SIGCHLD
// wakes the self-pipe, and reap_children() returns the pid with the
// signal-death status — the exact path osim_serve uses to requeue a dead
// worker's scenarios.
TEST(Signals, ReaperCollectsSigkilledChild) {
  install_child_reaper();
  const int wake_fd = signal_wake_fd();
  ASSERT_GE(wake_fd, 0);
  drain_signal_wake_fd();

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: wait to be killed; exit abnormally if the kill never lands.
    for (int i = 0; i < 1000; ++i) usleep(10 * 1000);
    _exit(99);
  }
  ASSERT_EQ(kill(pid, SIGKILL), 0);

  // The wake fd must become readable without polling flags in a loop.
  // SIGCHLD landing *during* poll interrupts it with EINTR (the reaper is
  // installed without SA_RESTART so blocking calls wake) — retry, the
  // handler's wake byte is already in the pipe by then.
  struct pollfd pfd = {};
  pfd.fd = wake_fd;
  pfd.events = POLLIN;
  int ready = -1;
  do {
    ready = poll(&pfd, 1, 5000 /* ms */);
  } while (ready < 0 && errno == EINTR);
  ASSERT_EQ(ready, 1) << "SIGCHLD did not wake the self-pipe";
  drain_signal_wake_fd();

  EXPECT_TRUE(child_exit_pending());
  std::vector<ReapedChild> reaped = reap_children();
  // Collect stragglers (the signal may beat the zombie transition).
  for (int i = 0; reaped.empty() && i < 500; ++i) {
    usleep(10 * 1000);
    reaped = reap_children();
  }
  ASSERT_EQ(reaped.size(), 1u);
  EXPECT_EQ(reaped[0].pid, static_cast<int>(pid));
  ASSERT_TRUE(WIFSIGNALED(reaped[0].status));
  EXPECT_EQ(WTERMSIG(reaped[0].status), SIGKILL);
  EXPECT_FALSE(child_exit_pending());
  // Nothing left to reap afterwards.
  EXPECT_TRUE(reap_children().empty());
}

TEST(Signals, IgnoreSigpipeSurvivesClosedPipeWrite) {
  ignore_sigpipe();
  int fds[2] = {-1, -1};
  ASSERT_EQ(pipe(fds), 0);
  close(fds[0]);
  const char byte = 'x';
  // Without SIG_IGN this write would kill the process, not return -1.
  EXPECT_EQ(write(fds[1], &byte, 1), -1);
  EXPECT_EQ(errno, EPIPE);
  close(fds[1]);
}

#endif

}  // namespace
}  // namespace osim
