// Canonical replay-identity lines shared by perf_identity_test and the
// golden generator.
//
// Every hot-path optimization (calendar queue, arena allocation, SoA
// record streams, mmap ingestion) must keep replay results bit-identical.
// This header reduces "the results" to a deterministic list of text lines
// — one per (bundled app, trace variant) with the context fingerprint, the
// makespan printed as exact bits (%a) and the DES event count, plus one
// line per app with a CRC over the full JSON run report. The committed
// golden under tests/golden/ was generated from the pre-optimization tree
// with exactly this code; the test regenerates the lines and diffs them.
#pragma once

#include <string>
#include <vector>

#include "apps/app.hpp"
#include "common/crc32.hpp"
#include "common/strings.hpp"
#include "dimemas/platform.hpp"
#include "overlap/options.hpp"
#include "pipeline/context.hpp"
#include "pipeline/report.hpp"
#include "pipeline/scenario.hpp"
#include "pipeline/study.hpp"

namespace osim::identity {

/// The small, fast configuration the identity lines are pinned to.
inline apps::AppConfig identity_config(const apps::MiniApp& app) {
  apps::AppConfig config;
  config.ranks = 8;
  config.iterations = 3;
  config.scale = 1;
  while (!app.supports_ranks(config.ranks)) ++config.ranks;
  return config;
}

inline overlap::OverlapOptions identity_overlap() {
  overlap::OverlapOptions options;
  options.chunks = 2;
  return options;
}

/// The three per-variant contexts for one app, in variant order.
inline std::vector<pipeline::ReplayContext> identity_contexts(
    const apps::MiniApp& app, const tracer::TracedRun& traced) {
  const apps::AppConfig config = identity_config(app);
  const dimemas::Platform platform =
      dimemas::Platform::marenostrum(config.ranks, app.paper_buses());
  std::vector<pipeline::ReplayContext> contexts;
  for (const pipeline::TraceVariant variant :
       {pipeline::TraceVariant::kOriginal,
        pipeline::TraceVariant::kOverlapMeasured,
        pipeline::TraceVariant::kOverlapIdeal}) {
    contexts.push_back(pipeline::make_context(traced.annotated, variant,
                                              identity_overlap(), platform));
  }
  return contexts;
}

/// Computes the canonical lines through `study` (any jobs count and cache
/// temperature must produce identical lines — that is the point).
inline std::vector<std::string> identity_lines(pipeline::Study& study) {
  std::vector<std::string> lines;
  for (const apps::MiniApp* app : apps::registry()) {
    const apps::AppConfig config = identity_config(*app);
    const tracer::TracedRun traced = apps::trace_app(*app, config, {});
    const dimemas::Platform platform =
        dimemas::Platform::marenostrum(config.ranks, app->paper_buses());
    const std::vector<pipeline::ReplayContext> contexts =
        identity_contexts(*app, traced);
    const char* names[] = {"original", "overlap_real", "overlap_ideal"};
    for (std::size_t v = 0; v < contexts.size(); ++v) {
      const dimemas::SimResult result = study.run(contexts[v]);
      lines.push_back(strprintf(
          "%s %s fp=%s makespan=%a events=%llu", app->name().c_str(),
          names[v], pipeline::to_hex(contexts[v].fingerprint()).c_str(),
          result.makespan,
          static_cast<unsigned long long>(result.des_events)));
    }
    // Full JSON run report (metrics on) for the original variant, reduced
    // to a CRC + byte count: any drift in attribution, occupancy or
    // protocol counters shows up as a golden mismatch.
    dimemas::ReplayOptions metrics_options;
    metrics_options.collect_metrics = true;
    const pipeline::ReplayContext with_metrics = pipeline::make_context(
        traced.annotated, pipeline::TraceVariant::kOriginal,
        identity_overlap(), platform, metrics_options);
    const std::string report = pipeline::replay_report_json(
        study.run(with_metrics), platform, app->name());
    Crc32 crc;
    crc.update(report.data(), report.size());
    lines.push_back(strprintf("%s report crc32=%08x bytes=%zu",
                              app->name().c_str(), crc.value(),
                              report.size()));
  }
  return lines;
}

}  // namespace osim::identity
