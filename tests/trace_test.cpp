// Unit tests for the trace IR: records, builder, structural validation and
// text (de)serialization.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "common/expect.hpp"
#include "trace/annotated.hpp"
#include "trace/annotated_io.hpp"
#include "trace/binary_io.hpp"
#include "trace/io.hpp"
#include "trace/trace.hpp"

namespace osim::trace {
namespace {

Trace pingpong() {
  TraceBuilder b(2, 2300.0, "pingpong");
  b.compute(0, 1000).send(0, 1, 7, 4096).recv(0, 1, 8, 4096);
  b.compute(1, 500).recv(1, 0, 7, 4096).compute(1, 200).send(1, 0, 8, 4096);
  return std::move(b).build();
}

// --- record formatting ------------------------------------------------------

TEST(Record, ToString) {
  EXPECT_EQ(to_string(CpuBurst{42}), "compute(42)");
  EXPECT_EQ(to_string(Send{3, 7, 64, false, kNoRequest}),
            "send(dest=3, tag=7, bytes=64)");
  EXPECT_EQ(to_string(Send{3, 7, 64, true, 5}),
            "isend(dest=3, tag=7, bytes=64, req=5)");
  EXPECT_EQ(to_string(Send{3, 7, 64, false, kNoRequest, true}),
            "send!(dest=3, tag=7, bytes=64)");
  EXPECT_EQ(to_string(Recv{1, 2, 8, true, 9}),
            "irecv(src=1, tag=2, bytes=8, req=9)");
  EXPECT_EQ(to_string(Wait{{1, 2}}), "wait(1, 2)");
  EXPECT_EQ(to_string(GlobalOp{CollectiveKind::kAllreduce, 0, 8, 3}),
            "allreduce(root=0, bytes=8, seq=3)");
}

TEST(Record, CollectiveNames) {
  EXPECT_STREQ(collective_name(CollectiveKind::kBarrier), "barrier");
  EXPECT_STREQ(collective_name(CollectiveKind::kAlltoall), "alltoall");
}

// --- builder / accessors ------------------------------------------------------

TEST(Trace, MakeAndTotals) {
  const Trace t = pingpong();
  EXPECT_EQ(t.num_ranks, 2);
  EXPECT_EQ(t.total_records(), 7u);
  EXPECT_EQ(t.total_instructions(0), 1000u);
  EXPECT_EQ(t.total_instructions(1), 700u);
  EXPECT_EQ(t.total_p2p_bytes_sent(0), 4096u);
  EXPECT_EQ(t.total_p2p_bytes_sent(1), 4096u);
}

TEST(Trace, BuilderSkipsZeroBursts) {
  TraceBuilder b(1, 1000.0);
  b.compute(0, 0);
  EXPECT_EQ(std::move(b).build().total_records(), 0u);
}

// --- validation ------------------------------------------------------------------

TEST(Validate, AcceptsWellFormedTrace) {
  EXPECT_NO_THROW(validate(pingpong()));
}

TEST(Validate, RejectsSelfSend) {
  TraceBuilder b(2, 1000.0);
  b.send(0, 0, 1, 8);
  EXPECT_THROW(validate(std::move(b).build()), Error);
}

TEST(Validate, RejectsOutOfRangeDest) {
  TraceBuilder b(2, 1000.0);
  b.send(0, 5, 1, 8);
  EXPECT_THROW(validate(std::move(b).build()), Error);
}

TEST(Validate, RejectsUnmatchedSend) {
  TraceBuilder b(2, 1000.0);
  b.send(0, 1, 1, 8);  // no matching recv
  EXPECT_THROW(validate(std::move(b).build()), Error);
}

TEST(Validate, RejectsSizeMismatch) {
  TraceBuilder b(2, 1000.0);
  b.send(0, 1, 1, 8);
  b.recv(1, 0, 1, 16);
  EXPECT_THROW(validate(std::move(b).build()), Error);
}

TEST(Validate, RejectsWaitOnUnknownRequest) {
  TraceBuilder b(2, 1000.0);
  b.wait(0, {99});
  EXPECT_THROW(validate(std::move(b).build()), Error);
}

TEST(Validate, RejectsDoubleWait) {
  TraceBuilder b(2, 1000.0);
  b.isend(0, 1, 1, 8, 5).wait(0, {5}).wait(0, {5});
  b.recv(1, 0, 1, 8);
  EXPECT_THROW(validate(std::move(b).build()), Error);
}

TEST(Validate, RejectsDanglingRequest) {
  TraceBuilder b(2, 1000.0);
  b.isend(0, 1, 1, 8, 5);  // never waited
  b.recv(1, 0, 1, 8);
  EXPECT_THROW(validate(std::move(b).build()), Error);
}

TEST(Validate, RejectsReusedRequestId) {
  TraceBuilder b(2, 1000.0);
  b.isend(0, 1, 1, 8, 5).wait(0, {5}).isend(0, 1, 1, 8, 5).wait(0, {5});
  b.recv(1, 0, 1, 8).recv(1, 0, 1, 8);
  EXPECT_THROW(validate(std::move(b).build()), Error);
}

TEST(Validate, RejectsCollectiveDisagreement) {
  TraceBuilder b(2, 1000.0);
  b.global(0, CollectiveKind::kBarrier, 0, 0, 0);
  b.global(1, CollectiveKind::kAllreduce, 0, 8, 0);
  EXPECT_THROW(validate(std::move(b).build()), Error);
}

TEST(Validate, RejectsMissingCollective) {
  TraceBuilder b(2, 1000.0);
  b.global(0, CollectiveKind::kBarrier, 0, 0, 0);
  EXPECT_THROW(validate(std::move(b).build()), Error);
}

TEST(Validate, AcceptsImmediateOps) {
  TraceBuilder b(2, 1000.0);
  b.irecv(0, 1, 3, 8, 1).wait(0, {1});
  b.isend(1, 0, 3, 8, 1).wait(1, {1});
  EXPECT_NO_THROW(validate(std::move(b).build()));
}

TEST(Validate, WildcardSkipsPairwiseCheck) {
  TraceBuilder b(2, 1000.0);
  b.recv(0, kAnyRank, kAnyTag, 8);
  b.send(1, 0, 42, 8);
  EXPECT_NO_THROW(validate(std::move(b).build()));
}

// --- serialization round trips -----------------------------------------------------

TEST(Io, RoundTripPreservesEverything) {
  TraceBuilder b(3, 2300.0, "roundtrip");
  b.compute(0, 12345)
      .send(0, 1, 7, 100)
      .isend(0, 2, 8, 200, 11)
      .wait(0, {11})
      .global(0, CollectiveKind::kAllreduce, 0, 8, 0);
  b.recv(1, 0, 7, 100)
      .compute(1, 9)
      .global(1, CollectiveKind::kAllreduce, 0, 8, 0);
  b.irecv(2, 0, 8, 200, 4)
      .wait(2, {4})
      .global(2, CollectiveKind::kAllreduce, 0, 8, 0);
  const Trace original = std::move(b).build();

  const Trace parsed = read_text(write_text(original));
  EXPECT_EQ(parsed.num_ranks, original.num_ranks);
  EXPECT_DOUBLE_EQ(parsed.mips, original.mips);
  EXPECT_EQ(parsed.app, original.app);
  ASSERT_EQ(parsed.total_records(), original.total_records());
  for (Rank r = 0; r < original.num_ranks; ++r) {
    const auto& a = original.ranks[static_cast<std::size_t>(r)];
    const auto& c = parsed.ranks[static_cast<std::size_t>(r)];
    ASSERT_EQ(a.size(), c.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(to_string(a[i]), to_string(c[i]));
    }
  }
}

TEST(Io, RoundTripSynchronousSend) {
  TraceBuilder b(2, 1000.0);
  b.isend(0, 1, 3, 64, 1);
  std::get<Send>(b.peek().ranks[0][0]);  // sanity: record exists
  Trace t = std::move(b).build();
  std::get<Send>(t.ranks[0][0]).synchronous = true;
  t.ranks[1].push_back(Recv{0, 3, 64, false, kNoRequest});
  t.ranks[0].push_back(Wait{{1}});
  const Trace parsed = read_text(write_text(t));
  EXPECT_TRUE(std::get<Send>(parsed.ranks[0][0]).synchronous);
}

TEST(Io, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/osim_trace_test.trace";
  const Trace t = pingpong();
  write_text_file(t, path);
  const Trace parsed = read_text_file(path);
  EXPECT_EQ(parsed.total_records(), t.total_records());
}

TEST(Io, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "#OSIM-TRACE v1\n"
      "meta ranks 1\n"
      "\n"
      "# a comment\n"
      "rank 0\n"
      "c 5  # trailing comment\n";
  const Trace t = read_text(text);
  EXPECT_EQ(t.total_instructions(0), 5u);
}

// --- parser error cases ----------------------------------------------------------

TEST(Io, MissingHeaderThrows) {
  EXPECT_THROW(read_text("meta ranks 1\n"), Error);
}

TEST(Io, MissingRanksThrows) {
  EXPECT_THROW(read_text("#OSIM-TRACE v1\nrank 0\nc 5\n"), Error);
}

TEST(Io, RecordBeforeRankThrows) {
  EXPECT_THROW(read_text("#OSIM-TRACE v1\nmeta ranks 1\nc 5\n"), Error);
}

TEST(Io, UnknownRecordThrows) {
  EXPECT_THROW(read_text("#OSIM-TRACE v1\nmeta ranks 1\nrank 0\nz 5\n"),
               Error);
}

TEST(Io, BadArityThrows) {
  EXPECT_THROW(read_text("#OSIM-TRACE v1\nmeta ranks 2\nrank 0\ns 1 2\n"),
               Error);
}

TEST(Io, RankOutOfRangeThrows) {
  EXPECT_THROW(read_text("#OSIM-TRACE v1\nmeta ranks 1\nrank 3\n"), Error);
}

TEST(Io, UnknownCollectiveThrows) {
  EXPECT_THROW(
      read_text("#OSIM-TRACE v1\nmeta ranks 1\nrank 0\ng bogus 0 8 0\n"),
      Error);
}

TEST(Io, MissingFileThrows) {
  EXPECT_THROW(read_text_file("/nonexistent/path/x.trace"), Error);
}

// --- binary serialization ---------------------------------------------------------

TEST(BinaryIo, RoundTripMatchesTextRendering) {
  TraceBuilder b(3, 2300.0, "binary");
  b.compute(0, 987654321)
      .send(0, 1, 7, 100)
      .isend(0, 2, 8, 200, 11)
      .wait(0, {11})
      .global(0, CollectiveKind::kAllreduce, 0, 8, 0);
  b.recv(1, 0, 7, 100).global(1, CollectiveKind::kAllreduce, 0, 8, 0);
  b.irecv(2, 0, 8, 200, 4)
      .wait(2, {4})
      .global(2, CollectiveKind::kAllreduce, 0, 8, 0);
  Trace original = std::move(b).build();
  std::get<Send>(original.ranks[0][1]).synchronous = true;

  std::ostringstream os;
  write_binary(original, os);
  std::istringstream is(os.str());
  const Trace parsed = read_binary(is);
  EXPECT_EQ(write_text(parsed), write_text(original));
}

TEST(BinaryIo, FileRoundTripAndSniffing) {
  const std::string bin_path = ::testing::TempDir() + "/osim_bin.btrace";
  const std::string txt_path = ::testing::TempDir() + "/osim_txt.trace";
  const Trace t = pingpong();
  write_binary_file(t, bin_path);
  write_text_file(t, txt_path);
  // read_any_file dispatches on the magic for both formats.
  EXPECT_EQ(write_text(read_any_file(bin_path)), write_text(t));
  EXPECT_EQ(write_text(read_any_file(txt_path)), write_text(t));
}

TEST(BinaryIo, BinarySmallerThanText) {
  TraceBuilder b(2, 1000.0);
  for (int i = 0; i < 200; ++i) {
    b.compute(0, 123456).send(0, 1, i, 8192);
    b.compute(1, 123456).recv(1, 0, i, 8192);
  }
  const Trace t = std::move(b).build();
  std::ostringstream bin;
  write_binary(t, bin);
  EXPECT_LT(bin.str().size(), write_text(t).size());
}

TEST(BinaryIo, TruncatedInputThrows) {
  TraceBuilder b(1, 1000.0);
  b.compute(0, 42);
  std::ostringstream os;
  write_binary(std::move(b).build(), os);
  const std::string full = os.str();
  for (const std::size_t cut : {4ul, 9ul, full.size() - 1}) {
    std::istringstream is(full.substr(0, cut));
    EXPECT_THROW(read_binary(is), Error) << "cut at " << cut;
  }
}

TEST(BinaryIo, BadMagicThrows) {
  std::istringstream is("definitely not a trace");
  EXPECT_THROW(read_binary(is), Error);
}

// The integrity footer is 8 magic bytes + one u32 CRC per rank.
constexpr std::size_t footer_size(std::size_t num_ranks) {
  return 8 + 4 * num_ranks;
}

TEST(BinaryIo, CorruptKindThrows) {
  TraceBuilder b(1, 1000.0);
  b.compute(0, 42);
  std::ostringstream os;
  write_binary(std::move(b).build(), os);
  std::string bytes = os.str();
  // The record-kind byte directly follows the rank-0 record count; the
  // single compute record is kind + varint(42) = 2 bytes before the footer.
  bytes[bytes.size() - footer_size(1) - 2] = 99;
  std::istringstream is(bytes);
  EXPECT_THROW(read_binary(is), Error);
}

TEST(BinaryIo, CorruptFooterCrcThrows) {
  const Trace t = pingpong();
  std::ostringstream os;
  write_binary(t, os);
  std::string bytes = os.str();
  bytes.back() = static_cast<char>(bytes.back() ^ 0x40);  // rank-1 CRC byte
  std::istringstream is(bytes);
  EXPECT_THROW(read_binary(is), Error);
}

TEST(BinaryIo, CorruptPayloadFailsCrc) {
  const Trace t = pingpong();
  std::ostringstream os;
  write_binary(t, os);
  std::string bytes = os.str();
  // Flip a low bit inside rank 1's last record (a payload byte whose
  // corruption still parses: it only changes a value, not the framing).
  bytes[bytes.size() - footer_size(2) - 1] =
      static_cast<char>(bytes[bytes.size() - footer_size(2) - 1] ^ 0x01);
  std::istringstream is(bytes);
  EXPECT_THROW(read_binary(is), Error);
}

TEST(BinaryIo, LegacyTraceWithoutFooterLoads) {
  const Trace t = pingpong();
  std::ostringstream os;
  write_binary(t, os);
  std::string bytes = os.str();
  bytes.resize(bytes.size() - footer_size(2));  // pre-footer writer output
  std::istringstream is(bytes);
  EXPECT_EQ(write_text(read_binary(is)), write_text(t));
  std::istringstream is2(bytes);
  const RecoveredTrace recovered = read_binary_recover(is2);
  EXPECT_TRUE(recovered.damage.clean());
  EXPECT_TRUE(recovered.damage.missing_footer);
}

TEST(BinaryIo, RecoverCleanInput) {
  const Trace t = pingpong();
  std::ostringstream os;
  write_binary(t, os);
  std::istringstream is(os.str());
  const RecoveredTrace recovered = read_binary_recover(is);
  EXPECT_TRUE(recovered.damage.clean());
  EXPECT_FALSE(recovered.damage.missing_footer);
  EXPECT_EQ(recovered.damage.records_salvaged, 7u);
  EXPECT_EQ(write_text(recovered.trace), write_text(t));
}

TEST(BinaryIo, RecoverSalvagesTruncatedPrefix) {
  const Trace t = pingpong();
  std::ostringstream os;
  write_binary(t, os);
  const std::string full = os.str();
  // Cut inside rank 1's stream: rank 0 must survive intact.
  std::istringstream is(full.substr(0, full.size() - footer_size(2) - 3));
  const RecoveredTrace recovered = read_binary_recover(is);
  EXPECT_FALSE(recovered.damage.clean());
  EXPECT_TRUE(recovered.damage.truncated);
  EXPECT_FALSE(recovered.damage.unusable);
  EXPECT_GT(recovered.damage.records_dropped, 0u);
  ASSERT_EQ(recovered.trace.num_ranks, 2);
  EXPECT_EQ(recovered.trace.ranks[0].size(), t.ranks[0].size());
  EXPECT_LT(recovered.trace.ranks[1].size(), t.ranks[1].size());
  ASSERT_FALSE(recovered.damage.issues.empty());
  EXPECT_GT(recovered.damage.issues[0].offset, 0u);
  EXPECT_FALSE(recovered.damage.render_text().empty());
}

TEST(BinaryIo, RecoverCrcMismatchKeepsRecords) {
  const Trace t = pingpong();
  std::ostringstream os;
  write_binary(t, os);
  std::string bytes = os.str();
  bytes.back() = static_cast<char>(bytes.back() ^ 0x40);
  std::istringstream is(bytes);
  const RecoveredTrace recovered = read_binary_recover(is);
  EXPECT_FALSE(recovered.damage.clean());
  EXPECT_EQ(recovered.damage.crc_mismatches, 1u);
  EXPECT_EQ(recovered.damage.records_dropped, 0u);
  EXPECT_EQ(write_text(recovered.trace), write_text(t));
}

TEST(BinaryIo, RecoverBadMagicIsUnusable) {
  std::istringstream is("definitely not a trace");
  const RecoveredTrace recovered = read_binary_recover(is);
  EXPECT_TRUE(recovered.damage.unusable);
  EXPECT_FALSE(recovered.damage.clean());
  EXPECT_EQ(recovered.trace.num_ranks, 0);
}

TEST(BinaryIo, RecoverAnyFileHandlesBrokenText) {
  const std::string path = ::testing::TempDir() + "/osim_broken.trace";
  {
    std::ofstream out(path);
    out << "#OSIM-TRACE v1\nmeta ranks 1\nrank 0\ng bogus 0 8 0\n";
  }
  const RecoveredTrace recovered = read_any_file_recover(path);
  EXPECT_TRUE(recovered.damage.unusable);
  ASSERT_EQ(recovered.damage.issues.size(), 1u);
}

// --- annotated trace validation ---------------------------------------------------

AnnEvent make_send(std::uint64_t vclock, std::uint64_t interval_start,
                   std::uint64_t elems) {
  AnnEvent ev;
  ev.kind = AnnEvent::Kind::kSend;
  ev.vclock = vclock;
  ev.peer = 1;
  ev.tag = 0;
  ev.elem_bytes = 8;
  ev.bytes = elems * 8;
  ev.buffer_id = 0;
  ev.chunkable = elems > 1;
  ev.interval_start = interval_start;
  ev.elem_last_store.assign(elems, interval_start);
  return ev;
}

TEST(Annotated, AcceptsWellFormed) {
  AnnotatedTrace t = AnnotatedTrace::make(2, 2300.0, "x");
  t.ranks[0].events.push_back(make_send(100, 0, 4));
  t.ranks[0].final_vclock = 100;
  EXPECT_NO_THROW(validate(t));
}

TEST(Annotated, RejectsBackwardsClock) {
  AnnotatedTrace t = AnnotatedTrace::make(1, 1000.0);
  t.ranks[0].events.push_back(make_send(100, 0, 2));
  t.ranks[0].events.push_back(make_send(50, 0, 2));
  t.ranks[0].final_vclock = 100;
  EXPECT_THROW(validate(t), Error);
}

TEST(Annotated, RejectsAnnotationOutsideInterval) {
  AnnotatedTrace t = AnnotatedTrace::make(1, 1000.0);
  AnnEvent ev = make_send(100, 50, 2);
  ev.elem_last_store[0] = 10;  // before the interval start
  t.ranks[0].events.push_back(ev);
  t.ranks[0].final_vclock = 100;
  EXPECT_THROW(validate(t), Error);
}

TEST(Annotated, RejectsWrongAnnotationLength) {
  AnnotatedTrace t = AnnotatedTrace::make(1, 1000.0);
  AnnEvent ev = make_send(100, 0, 4);
  ev.elem_last_store.resize(3);
  t.ranks[0].events.push_back(ev);
  t.ranks[0].final_vclock = 100;
  EXPECT_THROW(validate(t), Error);
}

TEST(Annotated, RejectsChunkableWithoutAnnotations) {
  AnnotatedTrace t = AnnotatedTrace::make(1, 1000.0);
  AnnEvent ev = make_send(100, 0, 4);
  ev.elem_last_store.clear();
  t.ranks[0].events.push_back(ev);
  t.ranks[0].final_vclock = 100;
  EXPECT_THROW(validate(t), Error);
}

TEST(Annotated, RejectsFinalClockBeforeLastEvent) {
  AnnotatedTrace t = AnnotatedTrace::make(1, 1000.0);
  t.ranks[0].events.push_back(make_send(100, 0, 2));
  t.ranks[0].final_vclock = 50;
  EXPECT_THROW(validate(t), Error);
}

// --- annotated trace serialization -------------------------------------------------

AnnotatedTrace sample_annotated() {
  AnnotatedTrace t = AnnotatedTrace::make(2, 2300.0, "ann");
  AnnEvent send = make_send(100, 0, 4);
  send.elem_last_store[1] = kNeverAccessed;
  send.elem_last_store[2] = 42;
  t.ranks[0].events.push_back(send);
  AnnEvent isend = make_send(150, 100, 2);
  isend.kind = AnnEvent::Kind::kIsend;
  isend.request = 7;
  isend.tag = 3;
  t.ranks[0].events.push_back(isend);
  AnnEvent wait;
  wait.kind = AnnEvent::Kind::kWait;
  wait.vclock = 160;
  wait.wait_requests = {7};
  t.ranks[0].events.push_back(wait);
  AnnEvent global;
  global.kind = AnnEvent::Kind::kGlobalOp;
  global.vclock = 170;
  global.coll = CollectiveKind::kAllreduce;
  global.bytes = 8;
  global.coll_sequence = 0;
  t.ranks[0].events.push_back(global);
  t.ranks[0].final_vclock = 200;

  AnnEvent irecv;
  irecv.kind = AnnEvent::Kind::kIrecv;
  irecv.vclock = 10;
  irecv.request = 2;
  irecv.peer = 0;
  irecv.tag = 0;
  irecv.elem_bytes = 8;
  irecv.bytes = 32;
  irecv.buffer_id = 1;
  irecv.chunkable = true;
  irecv.interval_end = 300;
  irecv.elem_first_load = {20, kNeverAccessed, 50, 60};
  irecv.wait_event_index = 1;
  t.ranks[1].events.push_back(irecv);
  AnnEvent wait2;
  wait2.kind = AnnEvent::Kind::kWait;
  wait2.vclock = 15;
  wait2.wait_requests = {2};
  t.ranks[1].events.push_back(wait2);
  // An untracked receive (no per-element trailer).
  AnnEvent raw;
  raw.kind = AnnEvent::Kind::kRecv;
  raw.vclock = 100;
  raw.peer = 0;
  raw.tag = 3;
  raw.elem_bytes = 8;
  raw.bytes = 16;
  raw.buffer_id = -1;
  t.ranks[1].events.push_back(raw);
  t.ranks[1].final_vclock = 300;
  return t;
}

TEST(AnnotatedIo, RoundTripExact) {
  const AnnotatedTrace t = sample_annotated();
  const std::string text = write_annotated(t);
  const AnnotatedTrace parsed = read_annotated(text);
  EXPECT_EQ(write_annotated(parsed), text);
  EXPECT_EQ(parsed.num_ranks, 2);
  EXPECT_EQ(parsed.app, "ann");
  ASSERT_EQ(parsed.ranks[0].events.size(), 4u);
  ASSERT_EQ(parsed.ranks[1].events.size(), 3u);
  const AnnEvent& send = parsed.ranks[0].events[0];
  EXPECT_EQ(send.elem_last_store[1], kNeverAccessed);
  EXPECT_EQ(send.elem_last_store[2], 42u);
  const AnnEvent& irecv = parsed.ranks[1].events[0];
  EXPECT_EQ(irecv.wait_event_index, 1);
  EXPECT_EQ(irecv.elem_first_load[1], kNeverAccessed);
  EXPECT_TRUE(parsed.ranks[1].events[2].elem_first_load.empty());
}

TEST(AnnotatedIo, FileRoundTripAndTransformStable) {
  const std::string path = ::testing::TempDir() + "/osim_ann_test.ann";
  const AnnotatedTrace t = sample_annotated();
  write_annotated_file(t, path);
  const AnnotatedTrace parsed = read_annotated_file(path);
  EXPECT_EQ(write_annotated(parsed), write_annotated(t));
}

TEST(AnnotatedIo, ParserErrors) {
  EXPECT_THROW(read_annotated("not a header\n"), Error);
  EXPECT_THROW(read_annotated("#OSIM-ANNTRACE v1\nmeta ranks 0\n"), Error);
  EXPECT_THROW(
      read_annotated(
          "#OSIM-ANNTRACE v1\nmeta ranks 1\ns 5 0 0 8 1 0 1 0\n"),
      Error);  // event before rank directive
  EXPECT_THROW(read_annotated("#OSIM-ANNTRACE v1\nmeta ranks 1\n"
                              "rank 0 final 10\nz 1\n"),
               Error);
  // Wrong per-element count.
  EXPECT_THROW(read_annotated("#OSIM-ANNTRACE v1\nmeta ranks 2\n"
                              "rank 0 final 10\n"
                              "s 5 1 0 8 4 0 1 0 1 2\n"),
               Error);
}

}  // namespace
}  // namespace osim::trace
