// Tests for the Paraver output stage: .prv/.pcf/.row bundles, ASCII
// rendering, and communication summaries.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "common/expect.hpp"
#include "dimemas/replay.hpp"
#include "paraver/paraver.hpp"
#include "trace/trace.hpp"

namespace osim::paraver {
namespace {

dimemas::SimResult sample_result() {
  trace::TraceBuilder b(2, 1000.0);
  b.compute(0, 50'000).send(0, 1, 3, 2'000'000).compute(0, 10'000);
  b.compute(1, 20'000).recv(1, 0, 3, 2'000'000).compute(1, 30'000);
  dimemas::Platform p;
  p.num_nodes = 2;
  p.bandwidth_MBps = 100.0;
  p.latency_us = 10.0;
  dimemas::ReplayOptions options;
  options.record_timeline = true;
  options.record_comms = true;
  return dimemas::replay(std::move(b).build(), p, options);
}

TEST(Paraver, StateMapping) {
  EXPECT_EQ(to_prv_state(dimemas::RankState::kCompute), PrvState::kRunning);
  EXPECT_EQ(to_prv_state(dimemas::RankState::kRecvBlocked),
            PrvState::kWaitingMessage);
  EXPECT_EQ(to_prv_state(dimemas::RankState::kSendBlocked),
            PrvState::kBlockedSend);
}

TEST(Paraver, PrvBundleStructure) {
  const auto result = sample_result();
  const std::string base = ::testing::TempDir() + "/osim_paraver_test";
  write_prv_bundle(result, base, "testapp");

  std::ifstream prv(base + ".prv");
  ASSERT_TRUE(prv.good());
  std::string header;
  ASSERT_TRUE(std::getline(prv, header));
  EXPECT_EQ(header.rfind("#Paraver", 0), 0u);
  EXPECT_NE(header.find(":2("), std::string::npos);  // 2 nodes

  std::size_t state_records = 0;
  std::size_t comm_records = 0;
  std::string line;
  while (std::getline(prv, line)) {
    if (line.rfind("1:", 0) == 0) ++state_records;
    if (line.rfind("3:", 0) == 0) ++comm_records;
    // Every record is colon-separated integers.
    for (const char c : line) {
      EXPECT_TRUE((c >= '0' && c <= '9') || c == ':' || c == '-');
    }
  }
  EXPECT_GT(state_records, 3u);
  EXPECT_EQ(comm_records, 1u);

  std::ifstream pcf(base + ".pcf");
  ASSERT_TRUE(pcf.good());
  std::stringstream pcf_text;
  pcf_text << pcf.rdbuf();
  EXPECT_NE(pcf_text.str().find("STATES"), std::string::npos);
  EXPECT_NE(pcf_text.str().find("Running"), std::string::npos);

  std::ifstream row(base + ".row");
  ASSERT_TRUE(row.good());
  std::string row_line;
  ASSERT_TRUE(std::getline(row, row_line));
  EXPECT_NE(row_line.find("SIZE 2"), std::string::npos);
  ASSERT_TRUE(std::getline(row, row_line));
  EXPECT_EQ(row_line, "testapp.1");
}

TEST(Paraver, PrvRequiresTimelines) {
  dimemas::SimResult empty;
  empty.rank_stats.resize(2);
  EXPECT_DEATH(write_prv_bundle(empty, "/tmp/x", "x"), "timelines");
}

TEST(Paraver, AsciiRenderBasics) {
  const auto result = sample_result();
  AsciiOptions options;
  options.width = 60;
  const std::string out = render_ascii(result, options);
  EXPECT_NE(out.find("rank  0"), std::string::npos);
  EXPECT_NE(out.find("rank  1"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);   // compute visible
  EXPECT_NE(out.find("legend"), std::string::npos);
  EXPECT_NE(out.find("compute"), std::string::npos);
  // The rendered row is exactly width chars between the pipes.
  const std::size_t bar = out.find('|');
  const std::size_t bar2 = out.find('|', bar + 1);
  EXPECT_EQ(bar2 - bar - 1, 60u);
}

TEST(Paraver, AsciiShowsBlockedStates) {
  const auto result = sample_result();
  AsciiOptions options;
  options.width = 80;
  const std::string out = render_ascii(result, options);
  // The rendezvous sender blocks ('S') and the receiver waits ('r').
  EXPECT_NE(out.find('S'), std::string::npos);
  EXPECT_NE(out.find('r'), std::string::npos);
}

TEST(Paraver, ComparisonSharesTimeAxis) {
  const auto result = sample_result();
  const std::string out =
      render_comparison(result, "run A", result, "run B");
  EXPECT_NE(out.find("run A"), std::string::npos);
  EXPECT_NE(out.find("run B"), std::string::npos);
}

TEST(Paraver, ProfileSumsToHundred) {
  const auto result = sample_result();
  const std::string out = render_profile(result);
  EXPECT_NE(out.find("state profile"), std::string::npos);
  EXPECT_NE(out.find("rank"), std::string::npos);
  // The sender spends time blocked in its rendezvous send.
  EXPECT_NE(out.find("blocked send"), std::string::npos);
}

TEST(Paraver, CommSummary) {
  const auto result = sample_result();
  const CommSummary summary = summarize_comms(result);
  EXPECT_EQ(summary.messages, 1u);
  EXPECT_DOUBLE_EQ(summary.total_bytes, 2'000'000.0);
  // 2 MB at 100 MB/s = 20 ms wire time.
  EXPECT_NEAR(summary.mean_flight_s, 0.02 + 10e-6, 1e-6);
  EXPECT_GT(summary.mean_send_lead_s, 0.0);
}

TEST(Paraver, CommSummaryEmpty) {
  dimemas::SimResult empty;
  const CommSummary summary = summarize_comms(empty);
  EXPECT_EQ(summary.messages, 0u);
  EXPECT_DOUBLE_EQ(summary.mean_flight_s, 0.0);
}

}  // namespace
}  // namespace osim::paraver
