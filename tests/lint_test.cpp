// Tests for the trace semantic verifier (src/lint): each pass must flag
// its seeded defect with the exact diagnostic — pass name, rank and record
// index — stay silent on clean traces, and report zero diagnostics on every
// bundled application at 4 and 8 ranks.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "apps/app.hpp"
#include "lint/lint.hpp"
#include "overlap/pairing.hpp"
#include "overlap/transform.hpp"
#include "trace/trace.hpp"

namespace osim {
namespace {

using lint::Diagnostic;
using lint::kNoRecord;
using lint::Report;
using lint::Severity;
using trace::Trace;
using trace::TraceBuilder;

bool message_contains(const Diagnostic& d, const std::string& needle) {
  return d.message.find(needle) != std::string::npos;
}

/// The single diagnostic at warning severity or above, asserted to exist.
/// Info-level advisories (the overlap-hazard pass) are not counted: they
/// annotate healthy immediate operations, not defects.
const Diagnostic& only_diagnostic(const Report& report) {
  const Diagnostic* found = nullptr;
  std::size_t actionable = 0;
  for (const Diagnostic& d : report.diagnostics()) {
    if (d.severity == Severity::kInfo) continue;
    if (found == nullptr) found = &d;
    ++actionable;
  }
  EXPECT_EQ(actionable, 1u) << report.render_text();
  if (found == nullptr) {
    ADD_FAILURE() << "no warning/error diagnostic:\n" << report.render_text();
    static const Diagnostic empty{};
    return empty;
  }
  return *found;
}

// --- match pass -------------------------------------------------------------

TEST(LintMatch, UnmatchedSendIsAnError) {
  TraceBuilder b(2, 1000.0);
  b.compute(0, 100);
  b.send(0, 1, 7, 64);  // rank 0 record 1: nobody receives this
  b.compute(1, 100);
  const Report report = lint::lint_trace(std::move(b).build());

  const Diagnostic& d = only_diagnostic(report);
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_EQ(d.pass, "match");
  EXPECT_EQ(d.rank, 0);
  EXPECT_EQ(d.record, 1);
  EXPECT_EQ(d.message,
            "unmatched send to rank 1 tag 7 (64 bytes): rank 1 posts only 0 "
            "matching recv(s)");
}

TEST(LintMatch, UnmatchedRecvIsAnError) {
  TraceBuilder b(2, 1000.0);
  b.recv(1, 0, 9, 32);  // rank 1 record 0: nobody sends this
  const Report report = lint::lint_trace(std::move(b).build());

  // The blocking recv also strands rank 1 forever, so the deadlock pass
  // reports starvation on top of the match error.
  ASSERT_EQ(report.num_errors(), 2u) << report.render_text();
  const Diagnostic& d = report.diagnostics().front();
  EXPECT_EQ(d.pass, "match");
  EXPECT_EQ(d.rank, 1);
  EXPECT_EQ(d.record, 0);
  EXPECT_EQ(d.message,
            "unmatched recv from rank 0 tag 9 (32 bytes): no send with this "
            "envelope");
  EXPECT_EQ(report.diagnostics().back().pass, "deadlock");
}

TEST(LintMatch, TooSmallRecvBufferIsAnError) {
  TraceBuilder b(2, 1000.0);
  b.send(0, 1, 3, 128);
  b.recv(1, 0, 3, 64);  // smaller than the matching send: can never match
  const Trace t = std::move(b).build();
  const Report report = lint::lint_trace(t);

  ASSERT_FALSE(report.clean());
  const Diagnostic& d = report.diagnostics().front();
  EXPECT_EQ(d.pass, "match");
  EXPECT_EQ(d.rank, 1);
  EXPECT_EQ(d.record, 0);
  EXPECT_TRUE(message_contains(d, "smaller than its matching send"))
      << d.message;
}

TEST(LintMatch, WildcardRecvMatchesAnySourceAndTag) {
  TraceBuilder b(3, 1000.0);
  b.send(0, 2, 11, 256);
  b.send(1, 2, 12, 256);
  b.recv(2, trace::kAnyRank, trace::kAnyTag, 256);
  b.recv(2, trace::kAnyRank, 12, 256);
  const Report report = lint::lint_trace(std::move(b).build());

  // Matching is feasible (no errors), but the fully-wildcarded first recv
  // genuinely races: both concurrent sends match its envelope, so the
  // races pass flags it. The second recv pins tag 12 and only one
  // candidate remains — no race there.
  EXPECT_EQ(report.num_errors(), 0u) << report.render_text();
  ASSERT_EQ(report.num_warnings(), 1u) << report.render_text();
  const Diagnostic& d = only_diagnostic(report);
  EXPECT_EQ(d.severity, Severity::kWarning);
  EXPECT_EQ(d.pass, "races");
  EXPECT_EQ(d.code, "wildcard-race");
  EXPECT_EQ(d.rank, 2);
  EXPECT_EQ(d.record, 0);
  EXPECT_TRUE(message_contains(d, "nondeterministic")) << d.message;
}

TEST(LintMatch, InfeasibleWildcardAssignmentIsAnError) {
  // Two wildcard recvs but only one send: one recv cannot be satisfied.
  TraceBuilder b(2, 1000.0);
  b.send(0, 1, 5, 64);
  b.recv(1, trace::kAnyRank, trace::kAnyTag, 64);
  b.recv(1, trace::kAnyRank, trace::kAnyTag, 64);
  const Report report = lint::lint_trace(std::move(b).build());
  ASSERT_FALSE(report.clean());
  const Diagnostic& d = report.diagnostics().front();
  EXPECT_EQ(d.pass, "match");
  EXPECT_EQ(d.rank, 1);
  EXPECT_TRUE(message_contains(d, "wildcards present")) << d.message;
}

// --- requests pass ----------------------------------------------------------

TEST(LintRequests, LeakedIrecvRequestIsAnError) {
  TraceBuilder b(2, 1000.0);
  b.compute(0, 100);
  b.irecv(0, 1, 3, 64, /*request=*/5);  // rank 0 record 1: never waited
  b.send(1, 0, 3, 64);
  const Report report = lint::lint_trace(std::move(b).build());

  const Diagnostic& d = only_diagnostic(report);
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_EQ(d.pass, "requests");
  EXPECT_EQ(d.rank, 0);
  EXPECT_EQ(d.record, 1);
  EXPECT_EQ(d.message, "request 5 is never waited: leaked at end of trace");
}

TEST(LintRequests, WaitOnUnknownRequestIsAnError) {
  TraceBuilder b(2, 1000.0);
  b.send(0, 1, 1, 8);
  b.recv(1, 0, 1, 8);
  b.wait(0, {42});  // rank 0 record 1: request 42 was never issued
  const Report report = lint::lint_trace(std::move(b).build());

  const Diagnostic& d = only_diagnostic(report);
  EXPECT_EQ(d.pass, "requests");
  EXPECT_EQ(d.rank, 0);
  EXPECT_EQ(d.record, 1);
  EXPECT_EQ(d.message, "wait on unknown request 42");
}

TEST(LintRequests, DoubleWaitIsAnError) {
  TraceBuilder b(2, 1000.0);
  b.irecv(0, 1, 1, 8, /*request=*/0);
  b.wait(0, {0});
  b.wait(0, {0});  // rank 0 record 2: already completed at record 1
  b.send(1, 0, 1, 8);
  const Report report = lint::lint_trace(std::move(b).build());

  const Diagnostic& d = only_diagnostic(report);
  EXPECT_EQ(d.pass, "requests");
  EXPECT_EQ(d.rank, 0);
  EXPECT_EQ(d.record, 2);
  EXPECT_EQ(d.message,
            "wait on request 0 already completed by the wait at record 1");
}

// --- deadlock pass ----------------------------------------------------------

TEST(LintDeadlock, ThreeRankSendCycleIsReportedWithBlameChain) {
  // Classic head-to-head ring: every rank sends before it receives, and the
  // messages are large enough to force the rendezvous protocol, so all
  // three sends block on a receiver that never posts.
  constexpr std::uint64_t kBytes = 100'000;  // > 16 KiB eager threshold
  TraceBuilder b(3, 1000.0);
  for (trace::Rank r = 0; r < 3; ++r) {
    const trace::Rank to = (r + 1) % 3;
    const trace::Rank from = (r + 2) % 3;
    b.send(r, to, 5, kBytes);
    b.recv(r, from, 5, kBytes);
  }
  const Report report = lint::lint_trace(std::move(b).build());

  const Diagnostic& d = only_diagnostic(report);
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_EQ(d.pass, "deadlock");
  EXPECT_EQ(d.rank, -1);            // cross-rank finding
  EXPECT_EQ(d.record, kNoRecord);
  EXPECT_TRUE(message_contains(d, "deadlock cycle among ranks 0, 1, 2"))
      << d.message;
  // The blame chain names every participant with its blocked record.
  EXPECT_TRUE(message_contains(d, "rank 0 blocked at record 0")) << d.message;
  EXPECT_TRUE(message_contains(d, "rank 1 blocked at record 0")) << d.message;
  EXPECT_TRUE(message_contains(d, "rank 2 blocked at record 0")) << d.message;
  EXPECT_TRUE(message_contains(d, "needs a matching recv on rank 1"))
      << d.message;
}

TEST(LintDeadlock, SameRingUnderEagerProtocolIsClean) {
  // The identical exchange with small messages completes: eager sends
  // buffer, so the ring drains. Deadlock is a protocol property.
  TraceBuilder b(3, 1000.0);
  for (trace::Rank r = 0; r < 3; ++r) {
    b.send(r, (r + 1) % 3, 5, 64);
    b.recv(r, (r + 2) % 3, 5, 64);
  }
  EXPECT_TRUE(lint::lint_trace(std::move(b).build()).clean());
}

TEST(LintDeadlock, EagerThresholdOptionControlsRendezvous) {
  // With the cutoff lowered to zero, even the 64-byte ring deadlocks.
  TraceBuilder b(3, 1000.0);
  for (trace::Rank r = 0; r < 3; ++r) {
    b.send(r, (r + 1) % 3, 5, 64);
    b.recv(r, (r + 2) % 3, 5, 64);
  }
  lint::LintOptions strict;
  strict.eager_threshold_bytes = 0;
  const Report report = lint::lint_trace(std::move(b).build(), strict);
  ASSERT_FALSE(report.clean());
  EXPECT_EQ(report.diagnostics().front().pass, "deadlock");
}

TEST(LintDeadlock, PrePostedIrecvBreaksTheCycle) {
  constexpr std::uint64_t kBytes = 100'000;
  TraceBuilder b(3, 1000.0);
  for (trace::Rank r = 0; r < 3; ++r) {
    b.irecv(r, (r + 2) % 3, 5, kBytes, /*request=*/r);
    b.send(r, (r + 1) % 3, 5, kBytes);
    b.wait(r, {r});
  }
  EXPECT_TRUE(lint::lint_trace(std::move(b).build()).clean());
}

// --- collectives pass -------------------------------------------------------

TEST(LintCollectives, MismatchedKindIsAnError) {
  TraceBuilder b(2, 1000.0);
  b.global(0, trace::CollectiveKind::kBarrier, 0, 0, /*sequence=*/0);
  b.global(1, trace::CollectiveKind::kBcast, 0, 8, /*sequence=*/0);
  const Report report = lint::lint_trace(std::move(b).build());

  const Diagnostic& d = only_diagnostic(report);
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_EQ(d.pass, "collectives");
  EXPECT_EQ(d.rank, 1);
  EXPECT_EQ(d.record, 0);
  EXPECT_EQ(d.message,
            "collective #0 disagrees with rank 0: rank 1 issues "
            "bcast(root=0, 8 bytes, seq=0) but rank 0 issues "
            "barrier(root=0, 0 bytes, seq=0) (record 0)");
}

TEST(LintCollectives, MissingCollectiveIsAnErrorAndStarvesTheRank) {
  TraceBuilder b(2, 1000.0);
  b.global(0, trace::CollectiveKind::kAllreduce, 0, 8, 0);
  b.global(1, trace::CollectiveKind::kAllreduce, 0, 8, 0);
  b.global(1, trace::CollectiveKind::kBarrier, 0, 0, 1);  // rank 0 never joins
  const Report report = lint::lint_trace(std::move(b).build());

  ASSERT_EQ(report.num_errors(), 2u) << report.render_text();
  const Diagnostic& count = report.diagnostics().front();
  EXPECT_EQ(count.pass, "collectives");
  EXPECT_EQ(count.rank, 1);
  EXPECT_EQ(count.record, kNoRecord);
  EXPECT_EQ(count.message,
            "rank issues 2 collective(s) but rank 0 issues 1: the k-th "
            "collectives cannot pair");
  // ... and the abstract machine confirms rank 1 can never get past it.
  const Diagnostic& starved = report.diagnostics().back();
  EXPECT_EQ(starved.pass, "deadlock");
  EXPECT_EQ(starved.rank, 1);
  EXPECT_EQ(starved.record, 1);
  EXPECT_TRUE(message_contains(starved, "rank starves")) << starved.message;
}

TEST(LintCollectives, PayloadMismatchIsOnlyAWarning) {
  TraceBuilder b(2, 1000.0);
  b.global(0, trace::CollectiveKind::kAllreduce, 0, 8, 0);
  b.global(1, trace::CollectiveKind::kAllreduce, 0, 16, 0);
  const Report report = lint::lint_trace(std::move(b).build());
  EXPECT_EQ(report.num_errors(), 0u) << report.render_text();
  ASSERT_EQ(report.num_warnings(), 1u) << report.render_text();
  const Diagnostic& d = report.diagnostics().front();
  EXPECT_EQ(d.severity, Severity::kWarning);
  EXPECT_EQ(d.pass, "collectives");
  EXPECT_TRUE(report.has_at_least(Severity::kWarning));
  EXPECT_FALSE(report.has_at_least(Severity::kError));
}

// --- transform pass ---------------------------------------------------------

/// One 128-byte message from rank 0 to rank 1 with tag 5.
Trace simple_original() {
  TraceBuilder b(2, 1000.0);
  b.send(0, 1, 5, 128);
  b.recv(1, 0, 5, 128);
  return std::move(b).build();
}

TEST(LintTransform, FaithfulChunkingIsClean) {
  TraceBuilder b(2, 1000.0);
  b.isend(0, 1, overlap::chunk_tag(5, 0, 0), 64, 0);
  b.isend(0, 1, overlap::chunk_tag(5, 0, 1), 64, 1);
  b.wait(0, {0, 1});
  b.irecv(1, 0, overlap::chunk_tag(5, 0, 0), 64, 0);
  b.irecv(1, 0, overlap::chunk_tag(5, 0, 1), 64, 1);
  b.wait(1, {0, 1});
  const Trace transformed = std::move(b).build();
  EXPECT_TRUE(lint::lint_trace(transformed).clean());
  EXPECT_TRUE(lint::lint_transform(simple_original(), transformed).clean());
}

TEST(LintTransform, ChunkTagCollisionIsAnError) {
  // Both chunks of the pair carry chunk index 0: the derived tags collide.
  TraceBuilder b(2, 1000.0);
  b.isend(0, 1, overlap::chunk_tag(5, 0, 0), 64, 0);
  b.isend(0, 1, overlap::chunk_tag(5, 0, 0), 64, 1);  // rank 0 record 1
  b.wait(0, {0, 1});
  b.irecv(1, 0, overlap::chunk_tag(5, 0, 0), 64, 0);
  b.irecv(1, 0, overlap::chunk_tag(5, 0, 0), 64, 1);
  b.wait(1, {0, 1});
  const Report report =
      lint::lint_transform(simple_original(), std::move(b).build());

  ASSERT_FALSE(report.clean());
  const auto it = std::find_if(
      report.diagnostics().begin(), report.diagnostics().end(),
      [](const Diagnostic& d) {
        return message_contains(d, "chunk-tag collision");
      });
  ASSERT_NE(it, report.diagnostics().end()) << report.render_text();
  EXPECT_EQ(it->severity, Severity::kError);
  EXPECT_EQ(it->pass, "transform");
  EXPECT_EQ(it->rank, 0);
  EXPECT_EQ(it->record, 1);  // the second, colliding isend
  EXPECT_EQ(it->message,
            "chunk-tag collision on the send side: chunk 0 of message "
            "pair_seq=0 (src=0 dst=1 tag=5) is issued twice");
}

TEST(LintTransform, ByteLossIsAnError) {
  // The chunks sum to 96 bytes, not the original 128.
  TraceBuilder b(2, 1000.0);
  b.isend(0, 1, overlap::chunk_tag(5, 0, 0), 64, 0);
  b.isend(0, 1, overlap::chunk_tag(5, 0, 1), 32, 1);
  b.wait(0, {0, 1});
  b.irecv(1, 0, overlap::chunk_tag(5, 0, 0), 64, 0);
  b.irecv(1, 0, overlap::chunk_tag(5, 0, 1), 32, 1);
  b.wait(1, {0, 1});
  const Report report =
      lint::lint_transform(simple_original(), std::move(b).build());

  ASSERT_EQ(report.diagnostics().size(), 2u) << report.render_text();
  for (const Diagnostic& d : report.diagnostics()) {
    EXPECT_EQ(d.pass, "transform");
    EXPECT_TRUE(message_contains(
        d, "sums to 96 bytes but the original message 0 carries 128 bytes"))
        << d.message;
  }
  EXPECT_EQ(report.diagnostics().front().rank, 0);  // send side
  EXPECT_EQ(report.diagnostics().back().rank, 1);   // recv side
}

TEST(LintTransform, DroppedTrafficIsAnError) {
  TraceBuilder b(2, 1000.0);
  b.compute(0, 10);
  b.compute(1, 10);
  const Report report =
      lint::lint_transform(simple_original(), std::move(b).build());
  ASSERT_EQ(report.diagnostics().size(), 2u) << report.render_text();
  for (const Diagnostic& d : report.diagnostics()) {
    EXPECT_EQ(d.pass, "transform");
    EXPECT_TRUE(message_contains(d, "disappeared in the transformed trace"))
        << d.message;
  }
}

TEST(LintTransform, RankCountChangeIsAnError) {
  const Report report = lint::lint_transform(
      simple_original(), Trace::make(3, 1000.0));
  const Diagnostic& d = only_diagnostic(report);
  EXPECT_EQ(d.pass, "transform");
  EXPECT_EQ(d.message, "rank count changed: original has 2, transformed has 3");
}

// --- clean traces end to end ------------------------------------------------

TEST(LintClean, EmptyTraceIsClean) {
  EXPECT_TRUE(lint::lint_trace(Trace::make(4, 1000.0)).clean());
}

TEST(LintClean, ExchangeWithCollectivesIsClean) {
  TraceBuilder b(4, 1000.0);
  for (trace::Rank r = 0; r < 4; ++r) {
    b.compute(r, 50'000);
    b.irecv(r, (r + 3) % 4, 1, 32'768, /*request=*/7);
    b.send(r, (r + 1) % 4, 1, 32'768);
    b.wait(r, {7});
    b.global(r, trace::CollectiveKind::kAllreduce, 0, 8, 0);
  }
  EXPECT_TRUE(lint::lint_trace(std::move(b).build()).clean());
}

/// Acceptance criterion: every bundled application's original and
/// transformed traces lint clean (errors *and* warnings) at 4 and 8 ranks,
/// and the transformed traces check out against the original.
class LintApps : public ::testing::TestWithParam<std::int32_t> {};

TEST_P(LintApps, AllAppsLintCleanAtThisRankCount) {
  apps::AppConfig config;
  config.ranks = GetParam();
  config.iterations = 2;
  for (const apps::MiniApp* app : apps::registry()) {
    if (!app->supports_ranks(config.ranks)) continue;
    const tracer::TracedRun traced = apps::trace_app(*app, config);
    const Trace original = overlap::lower_original(traced.annotated);

    overlap::OverlapOptions real_options;
    overlap::OverlapOptions ideal_options;
    ideal_options.pattern = overlap::PatternMode::kIdeal;
    const Trace real = overlap::transform(traced.annotated, real_options);
    const Trace ideal = overlap::transform(traced.annotated, ideal_options);

    for (const Trace* t : {&original, &real, &ideal}) {
      const Report report = lint::lint_trace(*t);
      EXPECT_TRUE(report.clean())
          << app->name() << " at " << config.ranks << " ranks:\n"
          << report.render_text();
    }
    for (const Trace* t : {&real, &ideal}) {
      const Report report = lint::lint_transform(original, *t);
      EXPECT_TRUE(report.clean())
          << app->name() << " transform at " << config.ranks << " ranks:\n"
          << report.render_text();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RankCounts, LintApps, ::testing::Values(4, 8));

// --- diagnostics rendering --------------------------------------------------

TEST(LintReport, TextAndCsvRendering) {
  Report report;
  report.error("match", 2, 14, "boom");
  report.warning("collectives", -1, kNoRecord, "sizes \"differ\"");
  const std::string text = report.render_text();
  EXPECT_NE(text.find("error [match] rank 2 record 14: boom"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("1 error(s), 1 warning(s)"), std::string::npos) << text;
  const std::string csv = report.render_csv();
  EXPECT_NE(csv.find("severity,pass,rank,record,message"), std::string::npos);
  EXPECT_NE(csv.find("error,match,2,14,boom"), std::string::npos) << csv;
  EXPECT_NE(csv.find("\"sizes \"\"differ\"\"\""), std::string::npos) << csv;
}

}  // namespace
}  // namespace osim
