// Randomized property tests: generate structurally valid random traces and
// annotated traces, and assert the pipeline invariants hold on all of them
// — replay terminates and is deterministic, the overlap transformation
// always emits valid traces that conserve bytes and instructions, and the
// simulator respects parameter monotonicity.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>
#endif

#include "common/expect.hpp"
#include "common/rng.hpp"
#include "trace/binary_io.hpp"
#include "dimemas/replay.hpp"
#include "lint/lint.hpp"
#include "overlap/transform.hpp"
#include "store/format.hpp"
#include "store/store.hpp"
#include "trace/annotated.hpp"
#include "trace/io.hpp"
#include "trace/trace.hpp"

namespace osim {
namespace {

using trace::AnnEvent;
using trace::AnnotatedTrace;
using trace::Rank;
using trace::Trace;
using trace::TraceBuilder;

// --- random replayable traces ----------------------------------------------

/// Builds a random but deadlock-free trace: a sequence of global "rounds",
/// each either a collective or a set of pairwise exchanges done with
/// pre-posted irecvs (always safe under rendezvous).
Trace random_trace(std::uint64_t seed) {
  Rng rng(seed);
  const Rank ranks = static_cast<Rank>(2 + rng.below(7));  // 2..8
  TraceBuilder b(ranks, 500.0 + rng.uniform() * 4000.0);
  const int rounds = static_cast<int>(1 + rng.below(12));
  trace::ReqId next_req = 0;
  for (int round = 0; round < rounds; ++round) {
    for (Rank r = 0; r < ranks; ++r) {
      if (rng.below(3) != 0) {
        b.compute(r, 1 + rng.below(200'000));
      }
    }
    if (rng.below(3) == 0) {
      // Collective round.
      static constexpr trace::CollectiveKind kKinds[] = {
          trace::CollectiveKind::kBarrier, trace::CollectiveKind::kBcast,
          trace::CollectiveKind::kReduce, trace::CollectiveKind::kAllreduce,
          trace::CollectiveKind::kGather, trace::CollectiveKind::kScatter,
          trace::CollectiveKind::kAllgather,
          trace::CollectiveKind::kAlltoall};
      const auto kind = kKinds[rng.below(std::size(kKinds))];
      const Rank root = static_cast<Rank>(rng.below(
          static_cast<std::uint64_t>(ranks)));
      const std::uint64_t bytes = 8u << rng.below(10);
      for (Rank r = 0; r < ranks; ++r) {
        b.global(r, kind, root, bytes, round);
      }
    } else {
      // Pairwise-exchange round over a random shift.
      const Rank shift = static_cast<Rank>(
          1 + rng.below(static_cast<std::uint64_t>(ranks - 1)));
      const std::uint64_t bytes = 64u << rng.below(12);  // 64 B .. 128 KB
      const int tag = round;
      for (Rank r = 0; r < ranks; ++r) {
        const Rank to = static_cast<Rank>((r + shift) % ranks);
        const Rank from = static_cast<Rank>((r - shift + ranks) % ranks);
        const trace::ReqId req = next_req + r;
        b.irecv(r, from, tag, bytes, req);
        b.send(r, to, tag, bytes);
        b.wait(r, {req});
      }
      next_req += ranks;
    }
  }
  return std::move(b).build();
}

dimemas::Platform random_platform(std::uint64_t seed, Rank ranks) {
  Rng rng(seed);
  dimemas::Platform p;
  p.num_nodes = ranks;
  p.bandwidth_MBps = 10.0 + rng.uniform() * 1000.0;
  p.latency_us = rng.uniform() * 50.0;
  p.num_buses = static_cast<std::int32_t>(rng.below(2) == 0
                                              ? 0
                                              : 1 + rng.below(16));
  p.input_ports = static_cast<std::int32_t>(1 + rng.below(2));
  p.output_ports = static_cast<std::int32_t>(1 + rng.below(2));
  p.eager_threshold_bytes = 1u << rng.below(20);
  if (rng.below(4) == 0) {
    p.model = dimemas::NetworkModelKind::kFairShare;
    p.fabric_capacity_links = 1.0 + rng.uniform() * 8.0;
  }
  return p;
}

class RandomTraces : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomTraces, ValidatesAndReplaysDeterministically) {
  const Trace t = random_trace(GetParam());
  ASSERT_NO_THROW(trace::validate(t));
  const dimemas::Platform p = random_platform(GetParam() * 31 + 7,
                                              t.num_ranks);
  dimemas::ReplayOptions options;
  options.max_sim_time_s = 3600.0;  // terminate-or-fail guard
  const double first = dimemas::replay(t, p, options).makespan;
  EXPECT_GT(first, 0.0);
  EXPECT_DOUBLE_EQ(dimemas::replay(t, p, options).makespan, first);
}

TEST_P(RandomTraces, LintCleanTracesReplayWithoutError) {
  // The semantic verifier's soundness contract on this corpus: a trace it
  // reports clean (under the platform's own rendezvous cutoff) replays to
  // completion without throwing.
  const Trace t = random_trace(GetParam());
  const dimemas::Platform p = random_platform(GetParam() * 17 + 3,
                                              t.num_ranks);
  lint::LintOptions options;
  options.eager_threshold_bytes = p.eager_threshold_bytes;
  const lint::Report report = lint::lint_trace(t, options);
  ASSERT_TRUE(report.clean()) << report.render_text();
  dimemas::ReplayOptions replay_options;
  replay_options.max_sim_time_s = 3600.0;
  double makespan = 0.0;
  ASSERT_NO_THROW(makespan = dimemas::replay(t, p, replay_options).makespan);
  EXPECT_GT(makespan, 0.0);
}

TEST_P(RandomTraces, SerializationRoundTripStable) {
  const Trace t = random_trace(GetParam());
  const Trace reparsed = trace::read_text(trace::write_text(t));
  EXPECT_EQ(trace::write_text(t), trace::write_text(reparsed));
}

// --- binary corruption fuzzing ---------------------------------------------
//
// Contract under test: no corruption of a valid binary trace — bit flips,
// truncations, garbage insertions — may crash, hang or leak through the
// recovering reader; and the strict reader must refuse every mutation the
// CRC footer can see. All mutations are derived from the test seed, so a
// failure reproduces from its parameter alone.

TEST_P(RandomTraces, BinaryBitFlipsNeverCrashRecovery) {
  const Trace t = random_trace(GetParam());
  std::ostringstream os;
  trace::write_binary(t, os);
  const std::string original = os.str();
  Rng rng(GetParam() * 101 + 13);
  for (int round = 0; round < 64; ++round) {
    std::string bytes = original;
    // 1..4 independent bit flips anywhere in the stream.
    const int flips = static_cast<int>(1 + rng.below(4));
    for (int f = 0; f < flips; ++f) {
      const std::size_t pos = rng.below(bytes.size());
      bytes[pos] = static_cast<char>(
          bytes[pos] ^ static_cast<char>(1u << rng.below(8)));
    }
    std::istringstream is(bytes);
    trace::RecoveredTrace recovered;
    ASSERT_NO_THROW(recovered = trace::read_binary_recover(is))
        << "round " << round;
    if (bytes != original) {
      // Whatever was salvaged must itself be structurally bounded: the
      // reader never manufactures ranks or records it did not parse.
      EXPECT_LE(recovered.trace.ranks.size(), 1'000'000u);
    }
  }
}

TEST_P(RandomTraces, BinaryTruncationsSalvageAPrefix) {
  const Trace t = random_trace(GetParam());
  std::ostringstream os;
  trace::write_binary(t, os);
  const std::string original = os.str();
  Rng rng(GetParam() * 211 + 5);
  for (int round = 0; round < 32; ++round) {
    const std::size_t cut = rng.below(original.size());
    std::istringstream is(original.substr(0, cut));
    trace::RecoveredTrace recovered;
    ASSERT_NO_THROW(recovered = trace::read_binary_recover(is))
        << "cut at " << cut;
    // A truncated stream can never yield more records than the original.
    std::size_t total = 0;
    for (const auto& stream : recovered.trace.ranks) total += stream.size();
    EXPECT_LE(total, t.total_records()) << "cut at " << cut;
    // Strict reading of the same truncation must throw, not succeed —
    // except when the cut removes only footer bytes, which the strict
    // reader tolerates for legacy traces when nothing of the footer is
    // left (a clean EOF after the last record).
    std::istringstream strict_is(original.substr(0, cut));
    const std::size_t footer = 8 + 4 * static_cast<std::size_t>(t.num_ranks);
    if (cut < original.size() - footer || cut == original.size() - footer) {
      if (cut < original.size() - footer) {
        EXPECT_THROW(trace::read_binary(strict_is), Error)
            << "cut at " << cut;
      } else {
        EXPECT_NO_THROW(trace::read_binary(strict_is)) << "cut at " << cut;
      }
    } else {
      // Partial footer: strict mode must reject it.
      EXPECT_THROW(trace::read_binary(strict_is), Error) << "cut at " << cut;
    }
  }
}

TEST_P(RandomTraces, BinaryPayloadCorruptionIsDetectedByStrictReader) {
  // Every single-bit flip in a record stream either breaks the framing
  // (parse error) or survives parsing and is caught by the per-rank CRC:
  // the strict reader must never return success on a mutated stream.
  const Trace t = random_trace(GetParam());
  std::ostringstream os;
  trace::write_binary(t, os);
  const std::string original = os.str();
  const std::size_t footer = 8 + 4 * static_cast<std::size_t>(t.num_ranks);
  Rng rng(GetParam() * 313 + 1);
  for (int round = 0; round < 32; ++round) {
    // Mutate strictly inside the CRC-covered record streams. The header is
    // magic(8) + mips(8) + num_ranks varint(1, ranks <= 8 here) +
    // app_len varint(1, app is empty in this corpus) = 18 bytes; header
    // bytes are framing-checked but not CRC-covered, so they stay out.
    const std::size_t lo = 18;
    const std::size_t hi = original.size() - footer;
    if (hi <= lo) break;
    std::string bytes = original;
    const std::size_t pos = lo + rng.below(hi - lo);
    bytes[pos] = static_cast<char>(
        bytes[pos] ^ static_cast<char>(1u << rng.below(8)));
    if (bytes == original) continue;
    std::istringstream is(bytes);
    EXPECT_THROW(trace::read_binary(is), Error) << "flip at " << pos;
  }
}

TEST_P(RandomTraces, LintNeverCrashesOnCorruptedRecoveredTraces) {
  // The lint passes — including the happens-before engine and the race /
  // overlap analyses on top of it — must be total on whatever the
  // salvaging reader produces: bit-flipped and truncated traces may yield
  // any diagnostics, but never a crash, hang or throw.
  const Trace t = random_trace(GetParam());
  std::ostringstream os;
  trace::write_binary(t, os);
  const std::string original = os.str();
  Rng rng(GetParam() * 401 + 23);
  for (int round = 0; round < 12; ++round) {
    std::string bytes = original;
    const int flips = static_cast<int>(1 + rng.below(4));
    for (int f = 0; f < flips; ++f) {
      const std::size_t pos = rng.below(bytes.size());
      bytes[pos] = static_cast<char>(
          bytes[pos] ^ static_cast<char>(1u << rng.below(8)));
    }
    std::istringstream is(bytes);
    trace::RecoveredTrace recovered;
    ASSERT_NO_THROW(recovered = trace::read_binary_recover(is))
        << "round " << round;
    ASSERT_NO_THROW(lint::lint_trace(recovered.trace)) << "round " << round;
  }
  for (int round = 0; round < 12; ++round) {
    const std::size_t cut = rng.below(original.size());
    std::istringstream is(original.substr(0, cut));
    trace::RecoveredTrace recovered;
    ASSERT_NO_THROW(recovered = trace::read_binary_recover(is))
        << "cut at " << cut;
    lint::LintOptions options;
    options.jobs = 1 + static_cast<int>(round % 3);  // parallel paths too
    ASSERT_NO_THROW(lint::lint_trace(recovered.trace, options))
        << "cut at " << cut;
  }
}

TEST_P(RandomTraces, FasterNetworkBoundedRegression) {
  // Strict monotonicity in bandwidth/latency does NOT hold for contention
  // networks with FIFO/first-fit resource allocation: changing arrival
  // times reorders the port schedule and can produce Graham-style
  // scheduling anomalies (observed up to ~30% on adversarial seeds, and
  // present in the real Dimemas as well). The checkable property is a
  // bounded regression: a strictly better network can never cost more than
  // the anomaly bound (< 2x), and usually helps.
  const Trace t = random_trace(GetParam());
  dimemas::Platform p = random_platform(GetParam() ^ 0xabcdef, t.num_ranks);
  p.model = dimemas::NetworkModelKind::kBus;
  const double t_base = dimemas::replay(t, p).makespan;
  dimemas::Platform faster = p;
  faster.bandwidth_MBps *= 4.0;
  EXPECT_LE(dimemas::replay(t, faster).makespan, t_base * 1.9);
  dimemas::Platform lower_latency = p;
  lower_latency.latency_us *= 0.25;
  EXPECT_LE(dimemas::replay(t, lower_latency).makespan, t_base * 1.9);
  // An uncontended network (no buses, ample ports) at the same link rate is
  // a true lower-envelope relaxation for these exchange-structured traces.
  dimemas::Platform uncontended = p;
  uncontended.num_buses = 0;
  uncontended.input_ports = 64;
  uncontended.output_ports = 64;
  EXPECT_LE(dimemas::replay(t, uncontended).makespan, t_base + 1e-12);
}

TEST_P(RandomTraces, CpuSpeedScalesComputeBoundRuns) {
  const Trace t = random_trace(GetParam());
  dimemas::Platform p = random_platform(GetParam() + 5, t.num_ranks);
  dimemas::Platform faster_cpu = p;
  faster_cpu.relative_cpu_speed = 2.0;
  EXPECT_LE(dimemas::replay(t, faster_cpu).makespan,
            dimemas::replay(t, p).makespan + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTraces,
                         ::testing::Range<std::uint64_t>(1, 33));

// --- random annotated traces -----------------------------------------------------

/// Random annotated trace: pairwise exchanges with random per-element
/// production/consumption times (valid by construction).
AnnotatedTrace random_annotated(std::uint64_t seed) {
  Rng rng(seed);
  const Rank ranks = static_cast<Rank>(2 * (1 + rng.below(3)));  // 2,4,6
  AnnotatedTrace t = AnnotatedTrace::make(ranks, 1000.0, "fuzz");
  const int rounds = static_cast<int>(1 + rng.below(6));
  std::vector<std::uint64_t> clock(static_cast<std::size_t>(ranks), 0);
  std::vector<std::uint64_t> prev_send(static_cast<std::size_t>(ranks), 0);

  for (int round = 0; round < rounds; ++round) {
    const std::uint64_t elems = 1 + rng.below(64);
    const std::uint64_t burst = 1000 + rng.below(500'000);
    for (Rank r = 0; r < ranks; ++r) {
      const std::size_t idx = static_cast<std::size_t>(r);
      const Rank partner = static_cast<Rank>(r ^ 1);
      clock[idx] += burst;

      AnnEvent send;
      send.kind = AnnEvent::Kind::kSend;
      send.vclock = clock[idx];
      send.peer = partner;
      send.tag = round;
      send.elem_bytes = 8;
      send.bytes = elems * 8;
      send.buffer_id = 0;
      send.chunkable = elems > 1;
      send.interval_start = prev_send[idx];
      send.elem_last_store.resize(elems);
      for (auto& v : send.elem_last_store) {
        v = rng.below(4) == 0
                ? trace::kNeverAccessed
                : send.interval_start +
                      rng.below(clock[idx] - prev_send[idx] + 1);
      }
      prev_send[idx] = clock[idx];
      t.ranks[idx].events.push_back(std::move(send));

      AnnEvent recv;
      recv.kind = AnnEvent::Kind::kRecv;
      recv.vclock = clock[idx];
      recv.peer = partner;
      recv.tag = round;
      recv.elem_bytes = 8;
      recv.bytes = elems * 8;
      recv.buffer_id = 1;
      recv.chunkable = elems > 1;
      recv.elem_first_load.assign(elems, trace::kNeverAccessed);
      recv.interval_end = clock[idx];  // fixed up when the interval closes
      t.ranks[idx].events.push_back(std::move(recv));
    }
  }
  // Close consumption intervals with random first loads.
  for (Rank r = 0; r < ranks; ++r) {
    const std::size_t idx = static_cast<std::size_t>(r);
    clock[idx] += 1000 + rng.below(100'000);
    t.ranks[idx].final_vclock = clock[idx];
  }
  for (Rank r = 0; r < ranks; ++r) {
    const std::size_t idx = static_cast<std::size_t>(r);
    AnnEvent* prev = nullptr;
    for (AnnEvent& ev : t.ranks[idx].events) {
      if (ev.kind != AnnEvent::Kind::kRecv) continue;
      if (prev != nullptr) prev->interval_end = ev.vclock;
      prev = &ev;
    }
    if (prev != nullptr) prev->interval_end = t.ranks[idx].final_vclock;
    for (AnnEvent& ev : t.ranks[idx].events) {
      if (ev.kind != AnnEvent::Kind::kRecv) continue;
      for (auto& v : ev.elem_first_load) {
        if (rng.below(4) == 0) continue;  // keep some never-loaded
        v = ev.vclock + rng.below(ev.interval_end - ev.vclock + 1);
      }
    }
  }
  return t;
}

class RandomAnnotated : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomAnnotated, InputValidates) {
  EXPECT_NO_THROW(trace::validate(random_annotated(GetParam())));
}

TEST_P(RandomAnnotated, TransformAlwaysValidAndConserving) {
  const AnnotatedTrace t = random_annotated(GetParam());
  for (const auto pattern :
       {overlap::PatternMode::kMeasured, overlap::PatternMode::kIdeal}) {
    overlap::OverlapOptions options;
    options.pattern = pattern;
    options.chunks = static_cast<int>(1 + GetParam() % 7);
    const Trace out = overlap::transform(t, options);
    ASSERT_NO_THROW(trace::validate(out));
    const Trace original = overlap::lower_original(t);
    for (Rank r = 0; r < t.num_ranks; ++r) {
      EXPECT_EQ(out.total_instructions(r), original.total_instructions(r));
      EXPECT_EQ(out.total_p2p_bytes_sent(r),
                original.total_p2p_bytes_sent(r));
    }
  }
}

TEST_P(RandomAnnotated, TransformedTraceReplays) {
  const AnnotatedTrace t = random_annotated(GetParam());
  const Trace out = overlap::transform(t, overlap::OverlapOptions{});
  dimemas::Platform p;
  p.num_nodes = t.num_ranks;
  p.bandwidth_MBps = 100.0;
  p.latency_us = 5.0;
  dimemas::ReplayOptions options;
  options.max_sim_time_s = 3600.0;
  EXPECT_GT(dimemas::replay(out, p, options).makespan, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomAnnotated,
                         ::testing::Range<std::uint64_t>(1, 25));

// --- scenario-store corruption ----------------------------------------------

/// Random but structurally plausible store artifact. Field values are
/// arbitrary — the format must round-trip whatever the simulator produces.
store::ScenarioArtifact random_artifact(Rng& rng) {
  store::ScenarioArtifact a;
  a.makespan = rng.uniform() * 1e4;
  a.des_events = rng();
  a.fault_wait_s = rng.uniform();
  a.progress_wait_s = rng.uniform();
  a.fault_counts.enabled = rng.below(2) != 0;
  a.fault_counts.seed = rng();
  a.fault_counts.retransmits = rng.below(1000);
  a.fault_counts.hard_stalls = rng.below(1000);
  a.fault_counts.degraded_transfers = rng.below(1000);
  a.fault_counts.perturbed_bursts = rng.below(1000);
  a.fault_counts.injected_delay_s = rng.uniform();
  const std::size_t ranks = rng.below(9);
  for (std::size_t r = 0; r < ranks; ++r) {
    dimemas::RankStats rs;
    rs.compute_s = rng.uniform() * 100.0;
    rs.send_blocked_s = rng.uniform() * 10.0;
    rs.recv_blocked_s = rng.uniform() * 10.0;
    rs.wait_blocked_s = rng.uniform() * 10.0;
    rs.finish_time = rng.uniform() * 200.0;
    rs.messages_sent = rng.below(1u << 20);
    rs.bytes_sent = rng();
    rs.bytes_received = rng();
    a.rank_stats.push_back(rs);
  }
  return a;
}

pipeline::Fingerprint random_fingerprint(Rng& rng) {
  return pipeline::Fingerprint{rng(), rng()};
}

// Flips 1..3 random bits. Store objects are far below CRC-32's
// Hamming-distance-4 length bound (~11 KB), so any <=3-bit damage is
// guaranteed detectable — the decode must come back nullopt, never crash.
std::string flip_bits(std::string bytes, Rng& rng) {
  const int flips = static_cast<int>(1 + rng.below(3));
  for (int f = 0; f < flips; ++f) {
    const std::size_t pos = rng.below(bytes.size());
    bytes[pos] = static_cast<char>(
        bytes[pos] ^ static_cast<char>(1u << rng.below(8)));
  }
  return bytes;
}

class RandomStoreObjects : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomStoreObjects, EncodeDecodeRoundTrips) {
  Rng rng(GetParam() * 17 + 3);
  const store::ScenarioArtifact artifact = random_artifact(rng);
  const pipeline::Fingerprint fp = random_fingerprint(rng);
  const auto decoded = store::decode_object(store::encode_object(fp, artifact));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->fingerprint, fp);
  EXPECT_EQ(decoded->artifact, artifact);
}

TEST_P(RandomStoreObjects, BitFlipsAlwaysRejectedNeverCrash) {
  Rng rng(GetParam() * 29 + 7);
  const store::ScenarioArtifact artifact = random_artifact(rng);
  const std::string original =
      store::encode_object(random_fingerprint(rng), artifact);
  for (int round = 0; round < 64; ++round) {
    const std::string bytes = flip_bits(original, rng);
    std::optional<store::DecodedObject> decoded;
    ASSERT_NO_THROW(decoded = store::decode_object(bytes)) << "round " << round;
    if (bytes != original) {
      EXPECT_FALSE(decoded.has_value()) << "round " << round;
    }
  }
}

TEST_P(RandomStoreObjects, PublishedObjectCorruptionDegradesToMiss) {
  namespace fs = std::filesystem;
  Rng rng(GetParam() * 41 + 11);
  const std::string dir = ::testing::TempDir() + "/osim_store_fuzz_" +
                          std::to_string(GetParam());
  fs::remove_all(dir);
  store::ScenarioStore store(dir);
  const pipeline::Fingerprint fp = random_fingerprint(rng);
  store.save(fp, random_artifact(rng));

  const std::string path = store.object_path(fp);
  std::string original;
  {
    std::ifstream in(path, std::ios::binary);
    original.assign(std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>());
  }
  for (int round = 0; round < 16; ++round) {
    const std::string bytes = flip_bits(original, rng);
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }
    std::optional<store::ScenarioArtifact> loaded;
    ASSERT_NO_THROW(loaded = store.load(fp)) << "round " << round;
    if (bytes != original) {
      EXPECT_FALSE(loaded.has_value()) << "round " << round;
    }
    // Maintenance over the damaged store must not crash either.
    ASSERT_NO_THROW(store.verify()) << "round " << round;
  }
}

TEST_P(RandomStoreObjects, IndexCorruptionNeverCrashesOrLosesObjects) {
  namespace fs = std::filesystem;
  Rng rng(GetParam() * 53 + 19);
  const std::string dir = ::testing::TempDir() + "/osim_index_fuzz_" +
                          std::to_string(GetParam());
  fs::remove_all(dir);
  const pipeline::Fingerprint fp = random_fingerprint(rng);
  {
    store::ScenarioStore store(dir);
    store.save(fp, random_artifact(rng));
    store.stats();  // persist an index to corrupt
  }
  const std::string index_path = dir + "/index.osim";
  std::string original;
  {
    std::ifstream in(index_path, std::ios::binary);
    original.assign(std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>());
  }
  for (int round = 0; round < 8; ++round) {
    {
      const std::string bytes = flip_bits(original, rng);
      std::ofstream out(index_path, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }
    store::ScenarioStore store(dir);
    store::StoreStats stats;
    ASSERT_NO_THROW(stats = store.stats()) << "round " << round;
    EXPECT_EQ(stats.objects, 1u) << "round " << round;
    EXPECT_TRUE(store.load(fp).has_value()) << "round " << round;
    ASSERT_NO_THROW(store.gc(1u << 30)) << "round " << round;
  }
}

// Lint-report store objects ("OSIMLNT1") share the envelope and the
// damage-degrades-to-miss contract with scenario artifacts.

lint::Report random_lint_report(Rng& rng) {
  lint::Report report;
  const std::size_t n = rng.below(16);
  static constexpr const char* kPasses[] = {"match", "requests", "races",
                                            "overlap"};
  static constexpr const char* kCodes[] = {"", "wildcard-race",
                                           "buffer-reuse", "zero-window"};
  for (std::size_t i = 0; i < n; ++i) {
    lint::Diagnostic d;
    d.severity = static_cast<lint::Severity>(rng.below(3));
    d.pass = kPasses[rng.below(std::size(kPasses))];
    d.code = kCodes[rng.below(std::size(kCodes))];
    d.rank = static_cast<Rank>(rng.below(5)) - 1;
    d.record = static_cast<std::ptrdiff_t>(rng.below(100)) - 1;
    d.message = "m" + std::to_string(rng.below(1000));
    if (rng.below(2) == 0) d.evidence = "post [1,0," + std::to_string(i) + "]";
    report.add(std::move(d));
  }
  return report;
}

TEST_P(RandomStoreObjects, LintObjectsRoundTripAndRejectDamage) {
  Rng rng(GetParam() * 61 + 31);
  const lint::Report report = random_lint_report(rng);
  const pipeline::Fingerprint fp = random_fingerprint(rng);
  const std::string original = store::encode_lint_object(fp, report);

  const auto decoded = store::decode_lint_object(original);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->fingerprint == fp);
  EXPECT_EQ(decoded->report.render_json(), report.render_json());
  // probe_object dispatches on the kind magic for both object families.
  EXPECT_TRUE(store::probe_object(original).has_value());

  for (int round = 0; round < 48; ++round) {
    const std::string bytes = flip_bits(original, rng);
    std::optional<store::DecodedLintObject> damaged;
    ASSERT_NO_THROW(damaged = store::decode_lint_object(bytes))
        << "round " << round;
    if (bytes != original) {
      EXPECT_FALSE(damaged.has_value()) << "round " << round;
      EXPECT_FALSE(store::probe_object(bytes).has_value())
          << "round " << round;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomStoreObjects,
                         ::testing::Range<std::uint64_t>(1, 13));

// --- trace-file ingestion edge cases ---------------------------------------
// MappedFile cannot mmap everything it is handed: zero-length files have no
// mappable extent and pipes have none at all. Both must degrade to the
// buffered fallback without crashing, throwing from the salvage path, or
// consuming the input twice.

TEST(MappedFileEdgeCases, EmptyFileSalvagesToUnusableNotCrash) {
  const std::string path = ::testing::TempDir() + "/osim_fuzz_empty.trace";
  { std::ofstream out(path, std::ios::binary | std::ios::trunc); }
  trace::RecoveredTrace recovered;
  ASSERT_NO_THROW(recovered = trace::read_any_file_recover(path));
  EXPECT_TRUE(recovered.damage.unusable);
  EXPECT_FALSE(recovered.damage.clean());
  std::filesystem::remove(path);
}

#if defined(__unix__) || defined(__APPLE__)
TEST(MappedFileEdgeCases, FifoIsReadOnceNotReopened) {
  // A FIFO's bytes exist once: the old fallback closed the descriptor and
  // re-opened the *path*, which blocks forever once the writer has hung up.
  // The fallback must drain the descriptor it already holds.
  const std::string path = ::testing::TempDir() + "/osim_fuzz_fifo_" +
                           std::to_string(::getpid());
  ::unlink(path.c_str());
  ASSERT_EQ(::mkfifo(path.c_str(), 0600), 0);
  std::thread writer([&path] {
    std::ofstream out(path, std::ios::binary);  // blocks until reader opens
    out << "#OSIM-TRACE v1\n"
           "meta ranks 1\n"
           "rank 0\n"
           "c 5\n";
  });
  trace::Trace t;
  ASSERT_NO_THROW(t = trace::read_any_file(path));
  writer.join();
  EXPECT_EQ(t.total_instructions(0), 5u);
  ::unlink(path.c_str());
}

TEST(MappedFileEdgeCases, GarbageOnFifoDegradesToUnusable) {
  const std::string path = ::testing::TempDir() + "/osim_fuzz_fifo_bad_" +
                           std::to_string(::getpid());
  ::unlink(path.c_str());
  ASSERT_EQ(::mkfifo(path.c_str(), 0600), 0);
  std::thread writer([&path] {
    std::ofstream out(path, std::ios::binary);
    out << "not a trace at all\n";
  });
  trace::RecoveredTrace recovered;
  ASSERT_NO_THROW(recovered = trace::read_any_file_recover(path));
  writer.join();
  EXPECT_TRUE(recovered.damage.unusable);
  ::unlink(path.c_str());
}
#endif

}  // namespace
}  // namespace osim
