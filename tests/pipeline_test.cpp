// Tests for the pipeline layer: ReplayContext construction-time validation
// and fingerprinting, Study caching, and — the load-bearing property of the
// whole subsystem — parallel evaluation being bit-identical to serial.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/bandwidth.hpp"
#include "common/expect.hpp"
#include "metrics/replay_metrics.hpp"
#include "pipeline/context.hpp"
#include "pipeline/report.hpp"
#include "pipeline/scenario.hpp"
#include "pipeline/study.hpp"
#include "trace/trace.hpp"

namespace osim::pipeline {
namespace {

// Ring exchange: every rank sends to its successor and receives from its
// predecessor, `rounds` times. Communication-bound enough that bandwidth
// changes move the makespan.
trace::Trace ring_trace(std::int32_t ranks, int rounds) {
  trace::TraceBuilder b(ranks, 1000.0);
  for (trace::Rank r = 0; r < ranks; ++r) {
    const trace::Rank next = static_cast<trace::Rank>((r + 1) % ranks);
    const trace::Rank prev =
        static_cast<trace::Rank>((r + ranks - 1) % ranks);
    for (int i = 0; i < rounds; ++i) {
      b.irecv(r, prev, i, 32 * 1024, i + 1);
      b.compute(r, 20'000);
      b.send(r, next, i, 32 * 1024);
      b.wait(r, {i + 1});
    }
  }
  return std::move(b).build();
}

dimemas::Platform ring_platform(std::int32_t nodes) {
  dimemas::Platform p;
  p.num_nodes = nodes;
  p.bandwidth_MBps = 250.0;
  p.latency_us = 4.0;
  return p;
}

// --- ReplayContext ----------------------------------------------------------

TEST(ReplayContext, InvalidTraceFailsAtConstruction) {
  trace::TraceBuilder b(2, 1000.0);
  b.send(0, 1, 7, 1024);  // no matching receive anywhere
  trace::Trace t = std::move(b).build();
  try {
    const ReplayContext context(std::move(t), ring_platform(2));
    FAIL() << "construction accepted an invalid trace";
  } catch (const Error& e) {
    // The failure carries the validation error up front...
    EXPECT_NE(std::string(e.what()).find("trace failed validation"),
              std::string::npos)
        << e.what();
  }
}

TEST(ReplayContext, ValidationIsForcedOffAfterConstruction) {
  dimemas::ReplayOptions options;
  options.validate_input = true;  // caller asks; the context already did it
  const ReplayContext context(ring_trace(2, 1), ring_platform(2), options);
  EXPECT_FALSE(context.options().validate_input);
}

TEST(ReplayContext, FingerprintIsContentBased) {
  const ReplayContext a(ring_trace(4, 2), ring_platform(4));
  const ReplayContext b(ring_trace(4, 2), ring_platform(4));
  EXPECT_EQ(a.fingerprint(), b.fingerprint());  // separate but equal traces

  const ReplayContext different_trace(ring_trace(4, 3), ring_platform(4));
  EXPECT_NE(a.fingerprint(), different_trace.fingerprint());

  dimemas::Platform faster = ring_platform(4);
  faster.bandwidth_MBps = 500.0;
  EXPECT_NE(a.fingerprint(), a.with_platform(faster).fingerprint());
  EXPECT_EQ(a.fingerprint(),
            a.with_bandwidth(ring_platform(4).bandwidth_MBps).fingerprint());

  dimemas::ReplayOptions timeline;
  timeline.record_timeline = true;
  EXPECT_NE(a.fingerprint(), a.with_options(timeline).fingerprint());
}

TEST(ReplayContext, ValidateFlagDoesNotAffectFingerprint) {
  dimemas::ReplayOptions validate_on;
  validate_on.validate_input = true;
  dimemas::ReplayOptions validate_off;
  validate_off.validate_input = false;
  const ReplayContext a(ring_trace(2, 1), ring_platform(2), validate_on);
  const ReplayContext b(ring_trace(2, 1), ring_platform(2), validate_off);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(ReplayContext, DerivedContextsShareTheTrace) {
  const ReplayContext base(ring_trace(4, 2), ring_platform(4));
  const ReplayContext derived = base.with_bandwidth(10.0);
  EXPECT_EQ(base.trace_ptr().get(), derived.trace_ptr().get());
  dimemas::Platform p = ring_platform(4);
  p.latency_us = 0.0;
  EXPECT_EQ(base.trace_ptr().get(),
            base.with_platform(p).trace_ptr().get());
}

// --- scenario lowering ------------------------------------------------------

TEST(Scenario, VariantsProduceDistinctContexts) {
  // A minimal annotated pair: rank 0 produces in a late burst and sends,
  // rank 1 receives and consumes in an early burst. The bursty measured
  // pattern cannot coincide with the ideal (linear) pattern, so all three
  // variants lower to distinct traces.
  trace::AnnotatedTrace t = trace::AnnotatedTrace::make(2, 1000.0);
  trace::AnnEvent send;
  send.kind = trace::AnnEvent::Kind::kSend;
  send.vclock = 100'000;
  send.peer = 1;
  send.tag = 0;
  send.elem_bytes = 100;
  send.bytes = 10'000;
  send.buffer_id = 0;
  send.chunkable = true;
  send.interval_start = 0;
  send.elem_last_store.resize(100);
  for (std::size_t i = 0; i < 100; ++i) {
    send.elem_last_store[i] = 90'000 + 100 * (i + 1);
  }
  t.ranks[0].events.push_back(send);
  t.ranks[0].final_vclock = 100'000;

  trace::AnnEvent recv;
  recv.kind = trace::AnnEvent::Kind::kRecv;
  recv.vclock = 0;
  recv.peer = 0;
  recv.tag = 0;
  recv.elem_bytes = 100;
  recv.bytes = 10'000;
  recv.buffer_id = 0;
  recv.chunkable = true;
  recv.interval_end = 100'000;
  recv.elem_first_load.resize(100);
  for (std::size_t i = 0; i < 100; ++i) {
    recv.elem_first_load[i] = 5'000 + 10 * i;
  }
  t.ranks[1].events.push_back(recv);
  t.ranks[1].final_vclock = 100'000;

  const overlap::OverlapOptions options;
  const dimemas::Platform p = ring_platform(2);
  const ReplayContext original =
      make_context(t, TraceVariant::kOriginal, options, p);
  const ReplayContext measured =
      make_context(t, TraceVariant::kOverlapMeasured, options, p);
  const ReplayContext ideal =
      make_context(t, TraceVariant::kOverlapIdeal, options, p);
  EXPECT_NE(original.fingerprint(), measured.fingerprint());
  EXPECT_NE(original.fingerprint(), ideal.fingerprint());
  EXPECT_NE(measured.fingerprint(), ideal.fingerprint());

  // run_scenario and Study::makespan agree on the same context.
  Study study;
  EXPECT_DOUBLE_EQ(run_scenario(original).makespan,
                   study.makespan(original));
}

// --- Study: determinism -----------------------------------------------------

std::vector<ReplayContext> bandwidth_sweep_contexts() {
  const ReplayContext base(ring_trace(8, 4), ring_platform(8));
  std::vector<ReplayContext> contexts;
  for (int i = 1; i <= 24; ++i) {
    contexts.push_back(base.with_bandwidth(10.0 * i));
  }
  return contexts;
}

TEST(Study, ParallelIsBitIdenticalToSerial) {
  const std::vector<ReplayContext> contexts = bandwidth_sweep_contexts();
  auto run_with_jobs = [&contexts](int jobs) {
    StudyOptions options;
    options.jobs = jobs;
    Study study(options);
    return study.map(contexts, [&study](const ReplayContext& c) {
      return study.makespan(c);
    });
  };
  const std::vector<double> serial = run_with_jobs(1);
  for (const int jobs : {2, 8}) {
    const std::vector<double> parallel = run_with_jobs(jobs);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      // Bit-identical, not approximately equal: replay is pure.
      EXPECT_EQ(parallel[i], serial[i]) << "jobs=" << jobs << " item " << i;
    }
  }
}

// --- Study: caching ---------------------------------------------------------

TEST(Study, RepeatedScenarioHitsTheCache) {
  const ReplayContext context(ring_trace(4, 2), ring_platform(4));
  Study study;
  const double first = study.makespan(context);
  EXPECT_EQ(study.cache_misses(), 1u);
  EXPECT_EQ(study.cache_hits(), 0u);
  EXPECT_EQ(study.makespan(context), first);
  EXPECT_EQ(study.cache_misses(), 1u);
  EXPECT_EQ(study.cache_hits(), 1u);
  // An equal-content context (fresh trace copy) also hits.
  const ReplayContext twin(ring_trace(4, 2), ring_platform(4));
  EXPECT_EQ(study.makespan(twin), first);
  EXPECT_EQ(study.cache_hits(), 2u);
  EXPECT_EQ(study.cache_size(), 1u);
}

TEST(Study, RepeatedBisectionProbesAreCached) {
  // The paper's searches re-probe shared endpoints; a repeated bisection
  // must be answered entirely from the cache.
  const ReplayContext context(ring_trace(8, 4), ring_platform(8));
  Study study;
  const double target = analysis::time_at_bandwidth(study, context, 50.0);
  const auto first = analysis::min_bandwidth_for(study, context, target);
  ASSERT_TRUE(first.has_value());
  const std::size_t misses_after_first = study.cache_misses();
  const std::size_t hits_after_first = study.cache_hits();
  EXPECT_GT(misses_after_first, 2u);  // the bisection actually probed

  const auto second = analysis::min_bandwidth_for(study, context, target);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*second, *first);  // deterministic search, bit-identical result
  EXPECT_EQ(study.cache_misses(), misses_after_first)
      << "repeat search must not replay anything";
  EXPECT_GT(study.cache_hits(), hits_after_first);
}

TEST(Study, CachingCanBeDisabled) {
  const ReplayContext context(ring_trace(2, 1), ring_platform(2));
  StudyOptions options;
  options.cache_replays = false;
  Study study(options);
  const double first = study.makespan(context);
  EXPECT_EQ(study.makespan(context), first);
  EXPECT_EQ(study.cache_hits(), 0u);
  EXPECT_EQ(study.cache_size(), 0u);
}

// --- Study: exception propagation and pool health ---------------------------

TEST(Study, WorkItemExceptionPropagatesWithoutDeadlock) {
  StudyOptions options;
  options.jobs = 4;
  Study study(options);
  std::vector<int> items(16);
  std::iota(items.begin(), items.end(), 0);
  const auto boom = [](const int& i) {
    if (i == 7) throw std::runtime_error("seeded failure on item 7");
    return i * 2;
  };
  try {
    study.map(items, boom);
    FAIL() << "seeded failure did not propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "seeded failure on item 7");
  }
  // The pool survives the failure: a follow-up batch completes normally.
  const std::vector<int> doubled =
      study.map(items, [](const int& i) { return i * 2; });
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(doubled[i], items[i] * 2);
  }
}

TEST(Study, FirstErrorByIndexWins) {
  StudyOptions options;
  options.jobs = 8;
  Study study(options);
  std::vector<int> items(32);
  std::iota(items.begin(), items.end(), 0);
  try {
    study.map(items, [](const int& i) {
      if (i % 5 == 3) {  // items 3, 8, 13, ... all fail
        throw std::runtime_error("fail " + std::to_string(i));
      }
      return i;
    });
    FAIL() << "no exception propagated";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "fail 3");  // lowest failing index, every time
  }
}

TEST(Study, NestedMapDoesNotDeadlock) {
  // Outer batch wider than the pool, each item mapping an inner batch:
  // progress relies on the calling thread draining work itself.
  StudyOptions options;
  options.jobs = 2;
  Study study(options);
  std::vector<int> outer(8);
  std::iota(outer.begin(), outer.end(), 0);
  const std::vector<int> sums =
      study.map(outer, [&study](const int& o) {
        std::vector<int> inner(4);
        std::iota(inner.begin(), inner.end(), o * 10);
        const std::vector<int> r =
            study.map(inner, [](const int& i) { return i + 1; });
        return std::accumulate(r.begin(), r.end(), 0);
      });
  for (std::size_t o = 0; o < sums.size(); ++o) {
    // sum of {10o+1 .. 10o+4}
    EXPECT_EQ(sums[o], static_cast<int>(o) * 40 + 10);
  }
}

TEST(Study, JobsZeroMeansHardwareConcurrency) {
  StudyOptions options;
  options.jobs = 0;
  Study study(options);
  EXPECT_GE(study.jobs(), 1);
}

// --- metrics & structured reports -------------------------------------------

TEST(Metrics, CollectionDoesNotPerturbReplay) {
  const ReplayContext plain(ring_trace(4, 3), ring_platform(4));
  dimemas::ReplayOptions on;
  on.collect_metrics = true;
  const ReplayContext metered = plain.with_options(on);
  EXPECT_NE(plain.fingerprint(), metered.fingerprint());

  Study study;
  const dimemas::SimResult a = study.run(plain);
  const dimemas::SimResult b = study.run(metered);
  EXPECT_EQ(a.metrics, nullptr);
  ASSERT_NE(b.metrics, nullptr);
  // Bit-identical, not merely close: collection must be purely passive.
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.des_events, b.des_events);
  ASSERT_EQ(a.rank_stats.size(), b.rank_stats.size());
  for (std::size_t r = 0; r < a.rank_stats.size(); ++r) {
    EXPECT_EQ(a.rank_stats[r].compute_s, b.rank_stats[r].compute_s);
    EXPECT_EQ(a.rank_stats[r].send_blocked_s, b.rank_stats[r].send_blocked_s);
    EXPECT_EQ(a.rank_stats[r].recv_blocked_s, b.rank_stats[r].recv_blocked_s);
    EXPECT_EQ(a.rank_stats[r].wait_blocked_s, b.rank_stats[r].wait_blocked_s);
    EXPECT_EQ(a.rank_stats[r].finish_time, b.rank_stats[r].finish_time);
    EXPECT_EQ(a.rank_stats[r].messages_sent, b.rank_stats[r].messages_sent);
    EXPECT_EQ(a.rank_stats[r].bytes_sent, b.rank_stats[r].bytes_sent);
    EXPECT_EQ(a.rank_stats[r].bytes_received, b.rank_stats[r].bytes_received);
  }
}

TEST(Metrics, AttributionSumsToBlockedStats) {
  dimemas::ReplayOptions on;
  on.collect_metrics = true;
  const ReplayContext context(ring_trace(6, 4), ring_platform(6), on);
  Study study;
  const dimemas::SimResult result = study.run(context);
  ASSERT_NE(result.metrics, nullptr);
  ASSERT_EQ(result.metrics->rank_waits.size(), result.rank_stats.size());
  for (std::size_t r = 0; r < result.rank_stats.size(); ++r) {
    const metrics::RankWaitAttribution& w = result.metrics->rank_waits[r];
    EXPECT_NEAR(w.send.total_s(), result.rank_stats[r].send_blocked_s, 1e-9);
    EXPECT_NEAR(w.recv.total_s(), result.rank_stats[r].recv_blocked_s, 1e-9);
    EXPECT_NEAR(w.wait.total_s(), result.rank_stats[r].wait_blocked_s, 1e-9);
  }
}

TEST(Report, ReplayReportCarriesSchemaAndAttribution) {
  dimemas::ReplayOptions on;
  on.collect_metrics = true;
  const ReplayContext context(ring_trace(4, 2), ring_platform(4), on);
  Study study;
  const dimemas::SimResult result = study.run(context);
  const std::string json =
      replay_report_json(result, context.platform(), "ring");
  EXPECT_NE(json.find("\"schema\":\"osim.replay_report\""),
            std::string::npos);
  EXPECT_NE(json.find("\"version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"wait_attribution\""), std::string::npos);
  EXPECT_NE(json.find("\"peer_waits\""), std::string::npos);
  EXPECT_NE(json.find("\"occupancy\""), std::string::npos);
  EXPECT_NE(json.find("\"protocol\""), std::string::npos);
}

TEST(Report, StudyReportRecordsScenarios) {
  StudyOptions options;
  options.record_scenarios = true;
  Study study(options);
  const ReplayContext context(ring_trace(2, 2), ring_platform(2));
  const double first = study.makespan(context, "first");
  const double again = study.makespan(context, "again");
  EXPECT_EQ(first, again);
  const std::vector<ScenarioRecord> scenarios = study.scenarios();
  ASSERT_EQ(scenarios.size(), 2u);
  EXPECT_EQ(scenarios[0].label, "first");
  EXPECT_FALSE(scenarios[0].cache_hit);
  EXPECT_EQ(scenarios[1].label, "again");
  EXPECT_TRUE(scenarios[1].cache_hit);
  EXPECT_EQ(scenarios[1].makespan, scenarios[0].makespan);
  const std::string json = study_report_json(study);
  EXPECT_NE(json.find("\"schema\":\"osim.study_report\""),
            std::string::npos);
  EXPECT_NE(json.find("\"again\""), std::string::npos);
  EXPECT_NE(json.find("\"cache_hit\":true"), std::string::npos);
}

// --- supervision -------------------------------------------------------------

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/osim_pipeline_" + name;
  fs::remove_all(dir);
  return dir;
}

TEST(StudySupervision, OffByDefault) {
  unsetenv("OSIM_CACHE_DIR");
  Study study;
  EXPECT_FALSE(study.supervised());
  EXPECT_FALSE(study.interrupted());
  EXPECT_EQ(study.journal(), nullptr);
  const std::string json = study_report_json(study);
  // The unsupervised report must not grow status fields (bit-identity
  // with pre-supervision reports; perf_identity_test pins the CRC).
  EXPECT_EQ(json.find("\"status\""), std::string::npos);
  EXPECT_EQ(json.find("\"journal_hits\""), std::string::npos);
}

TEST(StudySupervision, ScenarioTimeoutRecordsPartialAndContinues) {
  StudyOptions options;
  options.record_scenarios = true;
  options.scenario_timeout_s = 1e-9;  // expires before the first poll
  Study study(options);
  EXPECT_TRUE(study.supervised());
  study.makespan(ReplayContext(ring_trace(4, 64), ring_platform(4)), "slow");
  // A timeout is a per-scenario outcome: the sweep itself is not
  // interrupted and later scenarios still run.
  EXPECT_FALSE(study.interrupted());
  const std::vector<ScenarioRecord> records = study.scenarios();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].status, supervise::ScenarioStatus::kTimeout);
  EXPECT_FALSE(records[0].cache_hit);
  const std::string json = study_report_json(study);
  EXPECT_NE(json.find("\"status\":\"timeout\""), std::string::npos) << json;
}

TEST(StudySupervision, StopFlagCancelsWithoutReplaying) {
  std::atomic<bool> stop{true};  // already raised: pre-flight must catch it
  StudyOptions options;
  options.record_scenarios = true;
  options.stop_flag = &stop;
  Study study(options);
  study.makespan(ReplayContext(ring_trace(2, 2), ring_platform(2)), "late");
  EXPECT_TRUE(study.interrupted());
  const std::vector<ScenarioRecord> records = study.scenarios();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].status, supervise::ScenarioStatus::kCancelled);
  EXPECT_EQ(records[0].wall_s, 0.0);
  const std::string json = study_report_json(study);
  EXPECT_NE(json.find("\"status\":\"interrupted\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"status\":\"cancelled\""), std::string::npos) << json;
}

TEST(StudySupervision, StudyDeadlineInterruptsTheSweep) {
  StudyOptions options;
  options.record_scenarios = true;
  options.study_deadline_s = 1e-9;
  Study study(options);
  study.makespan(ReplayContext(ring_trace(2, 2), ring_platform(2)), "a");
  study.makespan(ReplayContext(ring_trace(2, 3), ring_platform(2)), "b");
  EXPECT_TRUE(study.interrupted());
  for (const ScenarioRecord& record : study.scenarios()) {
    EXPECT_EQ(record.status, supervise::ScenarioStatus::kCancelled);
  }
}

TEST(StudySupervision, JournalRequiresACacheDir) {
  unsetenv("OSIM_CACHE_DIR");
  StudyOptions options;
  options.journal = true;
  EXPECT_THROW({ Study study(options); }, Error);
}

TEST(StudySupervision, ResumeServesFromJournalBitIdentically) {
  const std::string dir = fresh_dir("resume");
  const trace::Trace t = ring_trace(4, 3);
  const ReplayContext base(t, ring_platform(4));
  std::vector<ReplayContext> contexts;
  for (const double bw : {100.0, 250.0, 500.0}) {
    contexts.push_back(base.with_bandwidth(bw));
  }
  std::vector<double> cold;
  std::string cold_report;
  {
    StudyOptions options;
    options.cache_dir = dir;
    options.journal = true;
    options.record_scenarios = true;
    options.study_id = "resume-test";
    Study study(options);
    for (std::size_t i = 0; i < contexts.size(); ++i) {
      cold.push_back(study.makespan(contexts[i], "bw" + std::to_string(i)));
    }
    cold_report = study_report_canonical_json(study);
  }
  // Wipe the object store: resume must be journal-only, proving the
  // journal entries carry complete results rather than store pointers.
  fs::remove_all(dir + "/objects");

  StudyOptions options;
  options.cache_dir = dir;
  options.journal = true;
  options.resume = true;
  options.record_scenarios = true;
  options.study_id = "resume-test";
  Study resumed(options);
  std::vector<double> warm;
  for (std::size_t i = 0; i < contexts.size(); ++i) {
    warm.push_back(resumed.makespan(contexts[i], "bw" + std::to_string(i)));
  }
  EXPECT_EQ(resumed.journal_hits(), contexts.size());
  EXPECT_EQ(resumed.cache_misses(), 0u);
  EXPECT_EQ(resumed.disk_hits(), 0u);
  for (const ScenarioRecord& record : resumed.scenarios()) {
    EXPECT_EQ(record.cache_tier, CacheTier::kJournal);
    // Resumed scenarios carry completed results: the skipped-resume
    // marker lives in the journal, never in the report.
    EXPECT_EQ(record.status, supervise::ScenarioStatus::kOk);
  }
  ASSERT_EQ(warm.size(), cold.size());
  for (std::size_t i = 0; i < cold.size(); ++i) {
    EXPECT_EQ(warm[i], cold[i]) << "scenario " << i;
  }
  // The acceptance property at unit scale: the canonical study report
  // after a resume is byte-identical to the uninterrupted run's.
  EXPECT_EQ(study_report_canonical_json(resumed), cold_report);
}

TEST(StudySupervision, ResumeDoesNotServeStoppedScenarios) {
  const std::string dir = fresh_dir("resume_retry");
  const ReplayContext context(ring_trace(2, 2), ring_platform(2));
  {
    StudyOptions options;
    options.cache_dir = dir;
    options.journal = true;
    options.scenario_timeout_s = 1e-9;
    options.study_id = "retry-test";
    Study study(options);
    study.makespan(context, "victim");  // journaled as timeout
  }
  StudyOptions options;
  options.cache_dir = dir;
  options.resume = true;
  options.journal = true;
  options.record_scenarios = true;
  options.study_id = "retry-test";
  Study resumed(options);
  const double makespan = resumed.makespan(context, "victim");
  EXPECT_GT(makespan, 0.0);  // actually replayed this time
  EXPECT_EQ(resumed.journal_hits(), 0u);
  ASSERT_EQ(resumed.scenarios().size(), 1u);
  EXPECT_EQ(resumed.scenarios()[0].status, supervise::ScenarioStatus::kOk);
}

TEST(StudySupervision, MemoryBudgetEvictsOldestFirst) {
  StudyOptions options;
  options.memory_budget_bytes = 1;  // below one entry: keep only the newest
  Study study(options);
  const ReplayContext base(ring_trace(2, 2), ring_platform(2));
  const std::vector<double> bandwidths = {100.0, 250.0, 500.0};
  std::vector<double> first_pass;
  for (const double bw : bandwidths) {
    first_pass.push_back(study.makespan(base.with_bandwidth(bw)));
  }
  EXPECT_EQ(study.cache_size(), 1u);
  EXPECT_EQ(study.cache_evictions(), bandwidths.size() - 1);
  // Evicted entries replay again — degradation costs time, never results.
  EXPECT_EQ(study.makespan(base.with_bandwidth(bandwidths[0])),
            first_pass[0]);
  EXPECT_EQ(study.cache_hits(), 0u);
  // The newest entry is still resident and served from memory.
  EXPECT_EQ(study.cache_size(), 1u);
}

TEST(StudySupervision, MemoryBudgetWithDiskTierDegradesToWarmDisk) {
  StudyOptions options;
  options.cache_dir = fresh_dir("budget_disk");
  options.memory_budget_bytes = 1;
  Study study(options);
  const ReplayContext base(ring_trace(2, 2), ring_platform(2));
  const double first = study.makespan(base.with_bandwidth(100.0));
  study.makespan(base.with_bandwidth(250.0));  // evicts the first entry
  EXPECT_EQ(study.makespan(base.with_bandwidth(100.0)), first);
  EXPECT_EQ(study.disk_hits(), 1u);      // the store answered the re-probe
  EXPECT_EQ(study.cache_misses(), 2u);   // no third replay happened
}

TEST(StudySupervision, WriteBehindQueuesAndRetries) {
  const std::string dir = fresh_dir("write_behind");
  StudyOptions options;
  options.cache_dir = dir;
  options.memory_budget_bytes = 1 << 20;  // any supervision flag works
  Study study(options);
  ASSERT_NE(study.store(), nullptr);
  // Break publication: replace the store's tmp directory with a file so
  // every temp write fails with ENOTDIR.
  fs::remove_all(dir + "/tmp");
  { std::ofstream block(dir + "/tmp", std::ios::binary); }
  const ReplayContext context(ring_trace(2, 2), ring_platform(2));
  const double makespan = study.makespan(context);
  EXPECT_GT(makespan, 0.0);  // the sweep itself is unharmed
  EXPECT_EQ(study.pending_store_writes(), 1u);
  // Heal the store and force a retry: the queued write lands.
  fs::remove(dir + "/tmp");
  fs::create_directories(dir + "/tmp");
  EXPECT_EQ(study.flush_store_writes(), 0u);
  EXPECT_EQ(study.pending_store_writes(), 0u);
  StudyOptions verify_options;
  verify_options.cache_dir = dir;
  Study verify_study(verify_options);
  EXPECT_EQ(verify_study.makespan(context), makespan);
  EXPECT_EQ(verify_study.disk_hits(), 1u);
}

}  // namespace
}  // namespace osim::pipeline
