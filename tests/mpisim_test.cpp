// Tests for the in-process MPI runtime: point-to-point semantics, request
// handling, collectives correctness against sequential references, error
// propagation, and concurrency stress.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "common/expect.hpp"
#include "common/rng.hpp"
#include "mpisim/mpisim.hpp"

namespace osim::mpisim {
namespace {

template <typename T>
std::span<const T> cspan(const std::vector<T>& v) {
  return std::span<const T>(v);
}
template <typename T>
std::span<T> mspan(std::vector<T>& v) {
  return std::span<T>(v);
}

TEST(Mpisim, RankAndSize) {
  std::atomic<int> sum{0};
  Runtime::run(4, [&](Comm& comm) {
    EXPECT_EQ(comm.size(), 4);
    sum += comm.rank();
  });
  EXPECT_EQ(sum.load(), 6);
}

TEST(Mpisim, BlockingSendRecv) {
  Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      const std::vector<double> data{1.5, 2.5, 3.5};
      comm.send(cspan(data), 1, 7);
    } else {
      std::vector<double> data(3, 0.0);
      const Status status = comm.recv(mspan(data), 0, 7);
      EXPECT_EQ(status.source, 0);
      EXPECT_EQ(status.tag, 7);
      EXPECT_EQ(status.bytes, 3 * sizeof(double));
      EXPECT_DOUBLE_EQ(data[0], 1.5);
      EXPECT_DOUBLE_EQ(data[2], 3.5);
    }
  });
}

TEST(Mpisim, NonOvertakingSameTag) {
  Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 10; ++i) {
        comm.send(std::span<const int>(&i, 1), 1, 3);
      }
    } else {
      for (int i = 0; i < 10; ++i) {
        int v = -1;
        comm.recv(std::span<int>(&v, 1), 0, 3);
        EXPECT_EQ(v, i);
      }
    }
  });
}

TEST(Mpisim, TagsSelectMessages) {
  Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      const int a = 10, b = 20;
      comm.send(std::span<const int>(&a, 1), 1, 1);
      comm.send(std::span<const int>(&b, 1), 1, 2);
    } else {
      int v = 0;
      comm.recv(std::span<int>(&v, 1), 0, 2);  // out of order by tag
      EXPECT_EQ(v, 20);
      comm.recv(std::span<int>(&v, 1), 0, 1);
      EXPECT_EQ(v, 10);
    }
  });
}

TEST(Mpisim, WildcardSourceAndTag) {
  Runtime::run(3, [](Comm& comm) {
    if (comm.rank() == 0) {
      int seen = 0;
      for (int i = 0; i < 2; ++i) {
        int v = 0;
        const Status status =
            comm.recv(std::span<int>(&v, 1), kAnySource, kAnyTag);
        EXPECT_EQ(v, status.source * 100 + status.tag);
        ++seen;
      }
      EXPECT_EQ(seen, 2);
    } else {
      const int v = comm.rank() * 100 + comm.rank();
      comm.send(std::span<const int>(&v, 1), 0, comm.rank());
    }
  });
}

TEST(Mpisim, IrecvCompletesBeforeWaitIfDelivered) {
  Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<int> buf(4, 0);
      Request req = comm.irecv(mspan(buf), 1, 0);
      const Status status = comm.wait(req);
      EXPECT_EQ(status.bytes, 4 * sizeof(int));
      EXPECT_EQ(buf[3], 3);
    } else {
      std::vector<int> data{0, 1, 2, 3};
      comm.send(cspan(data), 0, 0);
    }
  });
}

TEST(Mpisim, SendrecvExchanges) {
  Runtime::run(2, [](Comm& comm) {
    const int partner = 1 - comm.rank();
    std::vector<int> out{comm.rank() * 7};
    std::vector<int> in(1, -1);
    comm.sendrecv(cspan(out), partner, 5, mspan(in), partner, 5);
    EXPECT_EQ(in[0], partner * 7);
  });
}

TEST(Mpisim, WaitAllMixedRequests) {
  Runtime::run(2, [](Comm& comm) {
    const int partner = 1 - comm.rank();
    std::vector<int> out{comm.rank()};
    std::vector<int> in(1, -1);
    std::vector<Request> reqs;
    reqs.push_back(comm.irecv(mspan(in), partner, 0));
    reqs.push_back(comm.isend(cspan(out), partner, 0));
    comm.wait_all(reqs);
    EXPECT_EQ(in[0], partner);
  });
}

TEST(Mpisim, TruncationThrows) {
  EXPECT_THROW(Runtime::run(2,
                            [](Comm& comm) {
                              if (comm.rank() == 0) {
                                std::vector<int> big(10, 1);
                                comm.send(cspan(big), 1, 0);
                              } else {
                                std::vector<int> small(2, 0);
                                comm.recv(mspan(small), 0, 0);
                              }
                            }),
               Error);
}

TEST(Mpisim, InvalidRankThrows) {
  EXPECT_THROW(Runtime::run(2,
                            [](Comm& comm) {
                              if (comm.rank() == 0) {
                                const int v = 1;
                                comm.send(std::span<const int>(&v, 1), 5, 0);
                              }
                            }),
               Error);
}

TEST(Mpisim, SelfSendThrows) {
  EXPECT_THROW(Runtime::run(2,
                            [](Comm& comm) {
                              if (comm.rank() == 0) {
                                const int v = 1;
                                comm.send(std::span<const int>(&v, 1), 0, 0);
                              }
                            }),
               Error);
}

TEST(Mpisim, ExceptionUnblocksPeers) {
  // Rank 0 throws; rank 1 is stuck in a recv that will never be satisfied.
  // The runtime must wake it and surface the first error.
  EXPECT_THROW(Runtime::run(2,
                            [](Comm& comm) {
                              if (comm.rank() == 0) {
                                throw Error("boom");
                              }
                              int v;
                              comm.recv(std::span<int>(&v, 1), 0, 0);
                            }),
               Error);
}

// --- collectives ---------------------------------------------------------------

TEST(Mpisim, BarrierCompletes) {
  for (const int ranks : {2, 3, 5, 8}) {
    std::atomic<int> before{0};
    Runtime::run(ranks, [&](Comm& comm) {
      ++before;
      comm.barrier();
      EXPECT_EQ(before.load(), ranks);  // nobody passes early
    });
  }
}

TEST(Mpisim, BcastFromEveryRoot) {
  for (const int root : {0, 1, 3}) {
    Runtime::run(4, [&](Comm& comm) {
      std::vector<int> data(5, comm.rank() == root ? 42 : 0);
      comm.bcast(mspan(data), root);
      for (const int v : data) EXPECT_EQ(v, 42);
    });
  }
}

TEST(Mpisim, ReduceSumMatchesReference) {
  const int ranks = 6;
  Runtime::run(ranks, [&](Comm& comm) {
    std::vector<double> in(4);
    for (std::size_t i = 0; i < in.size(); ++i) {
      in[i] = comm.rank() + static_cast<double>(i) * 0.5;
    }
    std::vector<double> out(4, 0.0);
    comm.reduce(cspan(in), mspan(out), Op::kSum, 2);
    if (comm.rank() == 2) {
      for (std::size_t i = 0; i < out.size(); ++i) {
        double expected = 0.0;
        for (int r = 0; r < ranks; ++r) {
          expected += r + static_cast<double>(i) * 0.5;
        }
        EXPECT_DOUBLE_EQ(out[i], expected);
      }
    }
  });
}

TEST(Mpisim, AllreduceOps) {
  const int ranks = 5;
  Runtime::run(ranks, [&](Comm& comm) {
    const double mine = comm.rank() + 1.0;
    EXPECT_DOUBLE_EQ(comm.allreduce_scalar(mine, Op::kSum), 15.0);
    EXPECT_DOUBLE_EQ(comm.allreduce_scalar(mine, Op::kMax), 5.0);
    EXPECT_DOUBLE_EQ(comm.allreduce_scalar(mine, Op::kMin), 1.0);
    EXPECT_DOUBLE_EQ(comm.allreduce_scalar(mine, Op::kProd), 120.0);
  });
}

TEST(Mpisim, GatherOrdersByRank) {
  const int ranks = 4;
  Runtime::run(ranks, [&](Comm& comm) {
    std::vector<int> in{comm.rank() * 2, comm.rank() * 2 + 1};
    std::vector<int> out(static_cast<std::size_t>(ranks) * 2, -1);
    comm.gather(cspan(in), mspan(out), 1);
    if (comm.rank() == 1) {
      for (int i = 0; i < ranks * 2; ++i) {
        EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
      }
    }
  });
}

TEST(Mpisim, AllgatherEveryoneSees) {
  const int ranks = 3;
  Runtime::run(ranks, [&](Comm& comm) {
    std::vector<int> in{comm.rank() + 100};
    std::vector<int> out(static_cast<std::size_t>(ranks), -1);
    comm.allgather(cspan(in), mspan(out));
    for (int r = 0; r < ranks; ++r) {
      EXPECT_EQ(out[static_cast<std::size_t>(r)], r + 100);
    }
  });
}

TEST(Mpisim, ScatterDistributesBlocks) {
  const int ranks = 4;
  Runtime::run(ranks, [&](Comm& comm) {
    std::vector<int> in;
    if (comm.rank() == 0) {
      in.resize(static_cast<std::size_t>(ranks) * 3);
      std::iota(in.begin(), in.end(), 0);
    }
    std::vector<int> out(3, -1);
    comm.scatter(cspan(in), mspan(out), 0);
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(out[static_cast<std::size_t>(i)], comm.rank() * 3 + i);
    }
  });
}

TEST(Mpisim, AlltoallTransposes) {
  const int ranks = 4;
  Runtime::run(ranks, [&](Comm& comm) {
    // in[dst] = 10 * rank + dst; after alltoall, out[src] = 10 * src + rank.
    std::vector<int> in(static_cast<std::size_t>(ranks));
    for (int d = 0; d < ranks; ++d) {
      in[static_cast<std::size_t>(d)] = 10 * comm.rank() + d;
    }
    std::vector<int> out(static_cast<std::size_t>(ranks), -1);
    comm.alltoall(cspan(in), mspan(out), 1);
    for (int s = 0; s < ranks; ++s) {
      EXPECT_EQ(out[static_cast<std::size_t>(s)], 10 * s + comm.rank());
    }
  });
}

TEST(Mpisim, BackToBackCollectivesDoNotCrossMatch) {
  Runtime::run(4, [](Comm& comm) {
    for (int i = 0; i < 20; ++i) {
      const double v = comm.allreduce_scalar(static_cast<double>(i), Op::kMax);
      EXPECT_DOUBLE_EQ(v, i);
      comm.barrier();
    }
  });
}

TEST(Mpisim, ProbeThenReceive) {
  Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<int> data{1, 2, 3};
      comm.send(cspan(data), 1, 9);
    } else {
      const Status probed = comm.probe(0, 9);
      EXPECT_EQ(probed.source, 0);
      EXPECT_EQ(probed.tag, 9);
      EXPECT_EQ(probed.bytes, 3 * sizeof(int));
      // The message is still there: size the buffer from the probe.
      std::vector<int> data(probed.bytes / sizeof(int), 0);
      comm.recv(mspan(data), 0, 9);
      EXPECT_EQ(data[2], 3);
    }
  });
}

TEST(Mpisim, IprobeNonBlocking) {
  Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      // Nothing sent to rank 0 with tag 5: iprobe must return nullopt.
      EXPECT_FALSE(comm.iprobe(1, 5).has_value());
      const int v = 1;
      comm.send(std::span<const int>(&v, 1), 1, 5);
    } else {
      // Blocking probe to synchronize, then iprobe must see it.
      comm.probe(0, 5);
      EXPECT_TRUE(comm.iprobe(0, 5).has_value());
      EXPECT_TRUE(comm.iprobe(kAnySource, kAnyTag).has_value());
      int v = 0;
      comm.recv(std::span<int>(&v, 1), 0, 5);
      EXPECT_FALSE(comm.iprobe(0, 5).has_value());  // consumed
    }
  });
}

TEST(Mpisim, ScanPrefixSums) {
  const int ranks = 6;
  Runtime::run(ranks, [&](Comm& comm) {
    std::vector<double> in{static_cast<double>(comm.rank() + 1), 1.0};
    std::vector<double> out(2, 0.0);
    comm.scan(cspan(in), mspan(out), Op::kSum);
    // Inclusive prefix: sum of 1..(rank+1), and rank+1 ones.
    const int r = comm.rank();
    EXPECT_DOUBLE_EQ(out[0], (r + 1) * (r + 2) / 2.0);
    EXPECT_DOUBLE_EQ(out[1], r + 1.0);
  });
}

TEST(Mpisim, ScanMax) {
  Runtime::run(4, [](Comm& comm) {
    std::vector<int> in{comm.rank() % 3};
    std::vector<int> out(1, -1);
    comm.scan(cspan(in), mspan(out), Op::kMax);
    int expected = 0;
    for (int r = 0; r <= comm.rank(); ++r) {
      expected = std::max(expected, r % 3);
    }
    EXPECT_EQ(out[0], expected);
  });
}

// --- stress ------------------------------------------------------------------------

TEST(Mpisim, RandomizedRingStress) {
  // Every rank pushes randomized payloads around a ring for many rounds and
  // checks a running checksum — exercises mailbox matching under real
  // thread interleavings.
  const int ranks = 8;
  const int rounds = 200;
  Runtime::run(ranks, [&](Comm& comm) {
    Rng rng(static_cast<std::uint64_t>(comm.rank()) + 99);
    const int next = (comm.rank() + 1) % ranks;
    const int prev = (comm.rank() + ranks - 1) % ranks;
    std::uint64_t sent_sum = 0;
    std::uint64_t recv_sum = 0;
    for (int round = 0; round < rounds; ++round) {
      std::vector<std::uint64_t> out(1 + rng.below(16));
      for (auto& v : out) {
        v = rng();
        sent_sum += v;
      }
      std::vector<std::uint64_t> in(17);
      Request req = comm.irecv(mspan(in), prev, round);
      comm.send(cspan(out), next, round);
      const Status status = comm.wait(req);
      const std::size_t n = status.bytes / sizeof(std::uint64_t);
      for (std::size_t i = 0; i < n; ++i) recv_sum += in[i];
    }
    // Ring totals: what I received must equal what my predecessor sent.
    std::uint64_t prev_sent = 0;
    Request req = comm.irecv(std::span<std::uint64_t>(&prev_sent, 1), prev,
                             99999);
    comm.send(std::span<const std::uint64_t>(&sent_sum, 1), next, 99999);
    comm.wait(req);
    EXPECT_EQ(recv_sum, prev_sent);
  });
}

}  // namespace
}  // namespace osim::mpisim
