// Tests for the tooling-support modules: trace summaries and platform
// configuration files.
#include <gtest/gtest.h>

#include "common/expect.hpp"
#include "dimemas/platform_io.hpp"
#include "trace/summary.hpp"
#include "trace/trace.hpp"

namespace osim {
namespace {

// --- trace summaries ---------------------------------------------------------

trace::Trace sample_trace() {
  trace::TraceBuilder b(2, 2300.0, "sample");
  b.compute(0, 1000)
      .send(0, 1, 0, 100)
      .send(0, 1, 1, 70'000)
      .global(0, trace::CollectiveKind::kBarrier, 0, 0, 0);
  b.recv(1, 0, 0, 100)
      .irecv(1, 0, 1, 70'000, 3)
      .wait(1, {3})
      .compute(1, 500)
      .global(1, trace::CollectiveKind::kBarrier, 0, 0, 0);
  return std::move(b).build();
}

TEST(Summary, CountsEverything) {
  const trace::TraceSummary s = trace::summarize(sample_trace());
  EXPECT_EQ(s.num_ranks, 2);
  EXPECT_EQ(s.app, "sample");
  EXPECT_EQ(s.total_records, 9u);
  EXPECT_EQ(s.total_instructions, 1500u);
  EXPECT_EQ(s.total_messages, 2u);
  EXPECT_EQ(s.total_bytes, 70'100u);
  EXPECT_EQ(s.total_collectives, 2u);
  EXPECT_EQ(s.min_message_bytes, 100u);
  EXPECT_EQ(s.max_message_bytes, 70'000u);
  EXPECT_DOUBLE_EQ(s.mean_message_bytes(), 35'050.0);
  EXPECT_EQ(s.ranks[0].sends, 2u);
  EXPECT_EQ(s.ranks[1].recvs, 2u);
  EXPECT_EQ(s.ranks[1].waits, 1u);
}

TEST(Summary, HistogramBuckets) {
  const trace::TraceSummary s = trace::summarize(sample_trace());
  // 100 B lands in [64, 128); 70000 in [65536, 131072).
  EXPECT_EQ(s.size_histogram[6], 1u);
  EXPECT_EQ(s.size_histogram[16], 1u);
  std::size_t total = 0;
  for (const std::size_t count : s.size_histogram) total += count;
  EXPECT_EQ(total, 2u);
}

TEST(Summary, ComputeTimeUsesMips) {
  const trace::TraceSummary s = trace::summarize(sample_trace());
  EXPECT_NEAR(s.total_compute_s(), 1500.0 / (2300.0 * 1e6), 1e-15);
}

TEST(Summary, EmptyTrace) {
  trace::TraceBuilder b(1, 1000.0);
  const trace::TraceSummary s = trace::summarize(std::move(b).build());
  EXPECT_EQ(s.total_messages, 0u);
  EXPECT_EQ(s.min_message_bytes, 0u);
  EXPECT_DOUBLE_EQ(s.mean_message_bytes(), 0.0);
}

TEST(Summary, RenderContainsKeyFacts) {
  const std::string text = trace::render(trace::summarize(sample_trace()));
  EXPECT_NE(text.find("app=sample"), std::string::npos);
  EXPECT_NE(text.find("2 p2p messages"), std::string::npos);
  EXPECT_NE(text.find("rank   0"), std::string::npos);
}

// --- platform files --------------------------------------------------------------

TEST(PlatformIo, RoundTripAllFields) {
  dimemas::Platform p;
  p.num_nodes = 64;
  p.model = dimemas::NetworkModelKind::kFairShare;
  p.bandwidth_MBps = 123.5;
  p.latency_us = 7.25;
  p.num_buses = 12;
  p.input_ports = 2;
  p.output_ports = 3;
  p.eager_threshold_bytes = 4096;
  p.relative_cpu_speed = 1.75;
  p.fabric_capacity_links = 9.5;

  const dimemas::Platform q =
      dimemas::read_platform(dimemas::write_platform(p));
  EXPECT_EQ(q.num_nodes, p.num_nodes);
  EXPECT_EQ(q.model, p.model);
  EXPECT_DOUBLE_EQ(q.bandwidth_MBps, p.bandwidth_MBps);
  EXPECT_DOUBLE_EQ(q.latency_us, p.latency_us);
  EXPECT_EQ(q.num_buses, p.num_buses);
  EXPECT_EQ(q.input_ports, p.input_ports);
  EXPECT_EQ(q.output_ports, p.output_ports);
  EXPECT_EQ(q.eager_threshold_bytes, p.eager_threshold_bytes);
  EXPECT_DOUBLE_EQ(q.relative_cpu_speed, p.relative_cpu_speed);
  EXPECT_DOUBLE_EQ(q.fabric_capacity_links, p.fabric_capacity_links);
}

TEST(PlatformIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/osim_platform_test.cfg";
  const dimemas::Platform p = dimemas::Platform::marenostrum(16, 6);
  dimemas::write_platform_file(p, path);
  const dimemas::Platform q = dimemas::read_platform_file(path);
  EXPECT_EQ(q.num_nodes, 16);
  EXPECT_EQ(q.num_buses, 6);
  EXPECT_DOUBLE_EQ(q.bandwidth_MBps, 250.0);
}

TEST(PlatformIo, CommentsAndDefaults) {
  const dimemas::Platform p = dimemas::read_platform(
      "# just a comment\nnodes 4   # trailing\n\nbuses 3\n");
  EXPECT_EQ(p.num_nodes, 4);
  EXPECT_EQ(p.num_buses, 3);
  EXPECT_EQ(p.model, dimemas::NetworkModelKind::kBus);  // default kept
}

TEST(PlatformIo, MissingNodesThrows) {
  EXPECT_THROW(dimemas::read_platform("buses 3\n"), Error);
}

TEST(PlatformIo, UnknownKeyThrows) {
  EXPECT_THROW(dimemas::read_platform("nodes 4\nwarp_factor 9\n"), Error);
}

TEST(PlatformIo, BadValueThrows) {
  EXPECT_THROW(dimemas::read_platform("nodes four\n"), Error);
  EXPECT_THROW(dimemas::read_platform("nodes 4\nbandwidth_mbps -2\n"),
               Error);
  EXPECT_THROW(dimemas::read_platform("nodes 4\nmodel telepathy\n"), Error);
  EXPECT_THROW(dimemas::read_platform("nodes 0\n"), Error);
}

TEST(PlatformIo, MissingFileThrows) {
  EXPECT_THROW(dimemas::read_platform_file("/nonexistent/x.cfg"), Error);
}

}  // namespace
}  // namespace osim
