// Tests for the happens-before engine (lint/hb.hpp) and the passes built
// on it: the communication-race detector, the overlap-hazard advisories,
// the request-lifecycle extensions, the JSON report schema, --jobs
// determinism, and the store-backed lint cache.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <string_view>

#include "apps/app.hpp"
#include "lint/diagnostics.hpp"
#include "lint/hb.hpp"
#include "lint/lint.hpp"
#include "overlap/options.hpp"
#include "overlap/transform.hpp"
#include "pipeline/lint_cache.hpp"
#include "store/store.hpp"
#include "trace/trace.hpp"

namespace osim {
namespace {

using lint::Severity;
using trace::CollectiveKind;
using trace::kAnyRank;
using trace::Trace;
using trace::TraceBuilder;

std::size_t count_code(const lint::Report& report, std::string_view code) {
  std::size_t n = 0;
  for (const lint::Diagnostic& d : report.diagnostics()) {
    if (d.code == code) ++n;
  }
  return n;
}

const lint::Diagnostic* find_code(const lint::Report& report,
                                  std::string_view code) {
  for (const lint::Diagnostic& d : report.diagnostics()) {
    if (d.code == code) return &d;
  }
  return nullptr;
}

// --- vector-clock primitives -----------------------------------------------

TEST(HbClocks, BeforeAndConcurrent) {
  const lint::VectorClock a{1, 0, 2};
  const lint::VectorClock b{2, 0, 2};
  const lint::VectorClock c{0, 1, 0};
  EXPECT_TRUE(lint::hb_before(a, b));
  EXPECT_FALSE(lint::hb_before(b, a));
  EXPECT_FALSE(lint::hb_before(a, a));  // equal clocks are not "before"
  EXPECT_TRUE(lint::hb_concurrent(a, c));
  EXPECT_FALSE(lint::hb_concurrent(a, b));
  // Empty clocks (records the machine never executed) are unordered.
  const lint::VectorClock unknown;
  EXPECT_FALSE(lint::hb_before(unknown, a));
  EXPECT_FALSE(lint::hb_before(a, unknown));
  EXPECT_FALSE(lint::hb_concurrent(unknown, a));
  EXPECT_EQ(lint::clock_to_string(a), "[1,0,2]");
}

TEST(HbClocks, MessageEdgeOrdersRecvCompletionAfterSendPost) {
  TraceBuilder b(2, 1000.0);
  b.compute(0, 100).send(0, 1, 7, 64 * 1024);  // rendezvous-sized
  b.compute(1, 50).recv(1, 0, 7, 64 * 1024);
  const Trace t = std::move(b).build();
  const lint::HbAnalysis hb = lint::analyze_happens_before(t);
  ASSERT_TRUE(hb.converged);
  ASSERT_EQ(hb.matches.size(), 1u);
  EXPECT_EQ(hb.matches[0].src, 0);
  EXPECT_EQ(hb.matches[0].send_record, 1u);
  EXPECT_EQ(hb.matches[0].dst, 1);
  EXPECT_EQ(hb.matches[0].recv_record, 1u);
  // Data cannot arrive before it was sent.
  EXPECT_TRUE(lint::hb_before(hb.post(0, 1), hb.completion(1, 1)));
  // A rendezvous transfer cannot start before the receive is posted.
  EXPECT_TRUE(lint::hb_before(hb.post(1, 1), hb.completion(0, 1)));
  // The two leading compute bursts have no ordering edge at all.
  EXPECT_TRUE(lint::hb_concurrent(hb.post(0, 0), hb.post(1, 0)));
}

TEST(HbClocks, EagerSendCompletesWithoutSynchronizing) {
  TraceBuilder b(2, 1000.0);
  b.compute(0, 100).send(0, 1, 7, 64);  // well under the eager cutoff
  b.compute(1, 50).recv(1, 0, 7, 64);
  const lint::HbAnalysis hb =
      lint::analyze_happens_before(std::move(b).build());
  ASSERT_TRUE(hb.converged);
  EXPECT_TRUE(lint::hb_before(hb.post(0, 1), hb.completion(1, 1)));
  // Eager sends complete locally: no edge back from the receive post.
  EXPECT_FALSE(lint::hb_before(hb.post(1, 1), hb.completion(0, 1)));
}

TEST(HbClocks, CollectivesOrderAcrossRanks) {
  TraceBuilder b(2, 1000.0);
  b.compute(0, 10).global(0, CollectiveKind::kBarrier, 0, 0, 0);
  b.global(1, CollectiveKind::kBarrier, 0, 0, 0).compute(1, 10);
  const lint::HbAnalysis hb =
      lint::analyze_happens_before(std::move(b).build());
  ASSERT_TRUE(hb.converged);
  // Work before the barrier on rank 0 orders work after it on rank 1.
  EXPECT_TRUE(lint::hb_before(hb.post(0, 0), hb.completion(1, 1)));
}

TEST(HbClocks, DeadlockLeavesUnexecutedRecordsUnclocked) {
  // Both ranks post a blocking rendezvous receive first: neither send is
  // ever reached, so the machine must stop without inventing clocks.
  TraceBuilder b(2, 1000.0);
  b.recv(0, 1, 0, 64 * 1024).send(0, 1, 0, 64 * 1024);
  b.recv(1, 0, 0, 64 * 1024).send(1, 0, 0, 64 * 1024);
  const lint::HbAnalysis hb =
      lint::analyze_happens_before(std::move(b).build());
  EXPECT_FALSE(hb.converged);
  EXPECT_FALSE(hb.post(0, 0).empty());  // the recv was posted
  EXPECT_TRUE(hb.post(0, 1).empty());   // the send never executed
  EXPECT_TRUE(hb.post(1, 1).empty());
  EXPECT_FALSE(lint::hb_before(hb.post(0, 1), hb.post(1, 1)));
  EXPECT_FALSE(lint::hb_concurrent(hb.post(0, 1), hb.post(1, 1)));
}

// --- race detector ----------------------------------------------------------

Trace wildcard_race_trace() {
  TraceBuilder b(3, 1000.0);
  b.send(0, 2, 7, 64);
  b.send(1, 2, 7, 64);
  b.recv(2, kAnyRank, 7, 64).recv(2, kAnyRank, 7, 64);
  return std::move(b).build();
}

TEST(LintRaces, ConcurrentWildcardReceivesAreFlagged) {
  const lint::Report report = lint::lint_trace(wildcard_race_trace());
  EXPECT_EQ(report.num_errors(), 0u);
  EXPECT_EQ(report.num_warnings(), 2u);
  EXPECT_EQ(count_code(report, "wildcard-race"), 2u);
  const lint::Diagnostic* d = find_code(report, "wildcard-race");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(d->pass, "races");
  EXPECT_EQ(d->rank, 2);
  EXPECT_EQ(d->record, 0);
  EXPECT_NE(d->message.find("nondeterministic"), std::string::npos);
  EXPECT_NE(d->evidence.find("rival send post"), std::string::npos);
}

TEST(LintRaces, BarrierOrderedWildcardReceivesAreSilent) {
  // The second sender only fires after a barrier the receiver has already
  // passed, so the candidates are ordered, not racing.
  TraceBuilder b(3, 1000.0);
  b.send(0, 2, 7, 64).global(0, CollectiveKind::kBarrier, 0, 0, 0);
  b.global(1, CollectiveKind::kBarrier, 0, 0, 0).send(1, 2, 7, 64);
  b.recv(2, kAnyRank, 7, 64)
      .global(2, CollectiveKind::kBarrier, 0, 0, 0)
      .recv(2, kAnyRank, 7, 64);
  const lint::Report report = lint::lint_trace(std::move(b).build());
  EXPECT_TRUE(report.clean()) << report.render_text();
  EXPECT_EQ(count_code(report, "wildcard-race"), 0u);
}

TEST(LintRaces, SameSourceWildcardReceivesAreSilent) {
  // MPI's non-overtaking rule fixes the order of same-source messages.
  TraceBuilder b(2, 1000.0);
  b.send(0, 1, 3, 64).send(0, 1, 3, 64);
  b.recv(1, kAnyRank, 3, 64).recv(1, kAnyRank, 3, 64);
  const lint::Report report = lint::lint_trace(std::move(b).build());
  EXPECT_TRUE(report.clean()) << report.render_text();
  EXPECT_EQ(count_code(report, "wildcard-race"), 0u);
}

TEST(LintRaces, BlockingSendReusingInFlightEnvelopeIsFlagged) {
  TraceBuilder b(2, 1000.0);
  b.isend(0, 1, 3, 64, 1).send(0, 1, 3, 64).wait(0, {1});
  b.recv(1, 0, 3, 64).recv(1, 0, 3, 64);
  const lint::Report report = lint::lint_trace(std::move(b).build());
  EXPECT_EQ(report.num_errors(), 0u);
  EXPECT_EQ(count_code(report, "buffer-reuse"), 1u);
  const lint::Diagnostic* d = find_code(report, "buffer-reuse");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(d->rank, 0);
  EXPECT_EQ(d->record, 1);
  EXPECT_NE(d->message.find("record 0 (request 1)"), std::string::npos);
}

TEST(LintRaces, BlockingRecvReusingInFlightEnvelopeIsFlagged) {
  TraceBuilder b(2, 1000.0);
  b.irecv(0, 1, 9, 64, 1).recv(0, 1, 9, 64).wait(0, {1});
  b.send(1, 0, 9, 64).send(1, 0, 9, 64);
  const lint::Report report = lint::lint_trace(std::move(b).build());
  const lint::Diagnostic* d = find_code(report, "buffer-reuse");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->rank, 0);
  EXPECT_EQ(d->record, 1);
  EXPECT_NE(d->message.find("blocking receive"), std::string::npos);
}

TEST(LintRaces, WaitBeforeReuseIsSilent) {
  TraceBuilder b(2, 1000.0);
  b.isend(0, 1, 3, 64, 1).wait(0, {1}).send(0, 1, 3, 64);
  b.recv(1, 0, 3, 64).recv(1, 0, 3, 64);
  const lint::Report report = lint::lint_trace(std::move(b).build());
  EXPECT_TRUE(report.clean()) << report.render_text();
  EXPECT_EQ(count_code(report, "buffer-reuse"), 0u);
}

// --- request lifecycle: wait-before-post ------------------------------------

TEST(LintRequests, WaitBeforePostIsAnError) {
  TraceBuilder b(2, 1000.0);
  b.wait(0, {5}).irecv(0, 1, 0, 64, 5).wait(0, {5});
  b.send(1, 0, 0, 64);
  const lint::Report report = lint::lint_trace(std::move(b).build());
  const lint::Diagnostic* d = find_code(report, "wait-before-post");
  ASSERT_NE(d, nullptr) << report.render_text();
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->rank, 0);
  EXPECT_EQ(d->record, 0);
  EXPECT_NE(d->message.find("posted later at record 1"), std::string::npos);
}

// --- overlap-hazard advisories ----------------------------------------------

TEST(LintOverlap, ZeroWindowIsReportedAtThePostRecord) {
  TraceBuilder b(2, 1000.0);
  b.irecv(0, 1, 0, 64, 1).wait(0, {1}).compute(0, 500);
  b.compute(1, 200).send(1, 0, 0, 64);
  const lint::Report report = lint::lint_trace(std::move(b).build());
  EXPECT_TRUE(report.clean()) << report.render_text();
  EXPECT_EQ(count_code(report, "zero-window"), 1u);
  const lint::Diagnostic* d = find_code(report, "zero-window");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kInfo);
  EXPECT_EQ(d->pass, "overlap");
  EXPECT_EQ(d->rank, 0);
  EXPECT_EQ(d->record, 0);  // anchored at the post, where the fix goes
  const lint::Diagnostic* summary = find_code(report, "overlap-summary");
  ASSERT_NE(summary, nullptr);
  EXPECT_EQ(summary->rank, -1);  // whole-trace advisory
  EXPECT_NE(summary->message.find("1 zero-window"), std::string::npos);
}

TEST(LintOverlap, ComputeBetweenPostAndWaitIsNotZeroWindow) {
  TraceBuilder b(2, 1000.0);
  b.irecv(0, 1, 0, 64, 1).compute(0, 500).wait(0, {1});
  b.compute(1, 200).send(1, 0, 0, 64);
  const lint::Report report = lint::lint_trace(std::move(b).build());
  EXPECT_EQ(count_code(report, "zero-window"), 0u);
  EXPECT_EQ(count_code(report, "postponed-wait"), 0u);
  const lint::Diagnostic* summary = find_code(report, "overlap-summary");
  ASSERT_NE(summary, nullptr);
  EXPECT_NE(summary->message.find("1 with overlap window"),
            std::string::npos);
}

TEST(LintOverlap, WaitRetiringSeveralOverlappedRequestsIsAPostponedChain) {
  TraceBuilder b(2, 1000.0);
  b.irecv(0, 1, 0, 64, 1).irecv(0, 1, 1, 64, 2).compute(0, 400).wait(0,
                                                                     {1, 2});
  b.send(1, 0, 0, 64).send(1, 0, 1, 64);
  const lint::Report report = lint::lint_trace(std::move(b).build());
  EXPECT_TRUE(report.clean()) << report.render_text();
  const lint::Diagnostic* d = find_code(report, "postponed-wait");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kInfo);
  EXPECT_EQ(d->rank, 0);
  EXPECT_EQ(d->record, 3);  // the wait that retires the chain
  EXPECT_NE(d->message.find("2 requests"), std::string::npos);
}

// --- JSON schema ------------------------------------------------------------

TEST(LintJson, GoldenReportDocument) {
  lint::Report report;
  report.error("match", 1, 4, "unmatched send");
  lint::Diagnostic race;
  race.severity = Severity::kWarning;
  race.pass = "races";
  race.code = "wildcard-race";
  race.rank = 2;
  race.record = 0;
  race.message = "nondeterministic match";
  race.evidence = "recv post [0,0,1]";
  report.add(race);
  lint::Diagnostic summary;
  summary.severity = Severity::kInfo;
  summary.pass = "overlap";
  summary.code = "overlap-summary";
  summary.rank = -1;
  summary.record = lint::kNoRecord;
  summary.message = "2 immediate operation(s)";
  report.add(summary);

  EXPECT_EQ(
      report.render_json(),
      "{\"schema\":\"osim.lint_report\",\"version\":1,\"clean\":false,"
      "\"errors\":1,\"warnings\":1,\"infos\":1,\"diagnostics\":["
      "{\"severity\":\"error\",\"pass\":\"match\",\"rank\":1,\"record\":4,"
      "\"message\":\"unmatched send\"},"
      "{\"severity\":\"warning\",\"pass\":\"races\","
      "\"code\":\"wildcard-race\",\"rank\":2,\"record\":0,"
      "\"message\":\"nondeterministic match\","
      "\"evidence\":\"recv post [0,0,1]\"},"
      "{\"severity\":\"info\",\"pass\":\"overlap\","
      "\"code\":\"overlap-summary\","
      "\"message\":\"2 immediate operation(s)\"}]}");
}

TEST(LintJson, EmptyReportDocument) {
  const lint::Report report = lint::lint_trace(Trace::make(2, 1000.0));
  EXPECT_EQ(report.render_json(),
            "{\"schema\":\"osim.lint_report\",\"version\":1,\"clean\":true,"
            "\"errors\":0,\"warnings\":0,\"infos\":0,\"diagnostics\":[]}");
}

TEST(LintJson, LiveRunCarriesCodesAndEvidence) {
  const std::string json =
      lint::lint_trace(wildcard_race_trace()).render_json();
  EXPECT_NE(json.find("\"schema\":\"osim.lint_report\""), std::string::npos);
  EXPECT_NE(json.find("\"code\":\"wildcard-race\""), std::string::npos);
  EXPECT_NE(json.find("\"evidence\":\"recv post ["), std::string::npos);
}

// --- --jobs determinism -----------------------------------------------------

Trace defect_rich_trace() {
  TraceBuilder b(3, 1000.0);
  b.send(0, 2, 7, 64);
  b.send(1, 2, 7, 64);
  b.recv(2, kAnyRank, 7, 64).recv(2, kAnyRank, 7, 64);
  b.isend(0, 1, 3, 64, 9).wait(0, {9});  // zero-window advisory
  b.recv(1, 0, 3, 64);
  b.send(0, 1, 5, 64);
  b.irecv(1, 0, 5, 64, 4);  // leaked request: an error
  return std::move(b).build();
}

TEST(LintJobs, ParallelReportIsBitIdenticalToSerial) {
  const Trace t = defect_rich_trace();
  lint::LintOptions serial;
  serial.jobs = 1;
  const std::string reference = lint::lint_trace(t, serial).render_json();
  const lint::Report check = lint::lint_trace(t, serial);
  EXPECT_GT(check.num_errors(), 0u);
  EXPECT_GT(check.num_warnings(), 0u);
  EXPECT_GT(check.num_infos(), 0u);
  for (const int jobs : {2, 4, 13}) {
    lint::LintOptions parallel = serial;
    parallel.jobs = jobs;
    EXPECT_EQ(lint::lint_trace(t, parallel).render_json(), reference)
        << "jobs=" << jobs;
  }
}

// --- store-backed lint cache ------------------------------------------------

TEST(LintCache, WarmRunIsBitIdenticalToCold) {
  const std::string dir = ::testing::TempDir() + "/osim_lint_cache";
  std::filesystem::remove_all(dir);
  store::ScenarioStore store(dir);
  const Trace t = wildcard_race_trace();
  const lint::LintOptions options;

  bool hit = true;
  const lint::Report cold =
      pipeline::lint_with_cache(t, options, &store, &hit);
  EXPECT_FALSE(hit);
  const lint::Report warm =
      pipeline::lint_with_cache(t, options, &store, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(warm.render_json(), cold.render_json());
  EXPECT_EQ(store.hits(), 1u);

  // The lint object is a first-class store citizen: verify() decodes it
  // and gc() keeps it.
  EXPECT_TRUE(store.verify().clean());
  const store::GcReport gc = store.gc(1u << 30);
  EXPECT_EQ(gc.objects_removed, 0u);
  EXPECT_EQ(gc.objects_kept, 1u);
}

TEST(LintCache, KeyCoversAnalysisInputsButNotJobs) {
  const Trace t = wildcard_race_trace();
  const lint::LintOptions base;
  lint::LintOptions other_threshold = base;
  other_threshold.eager_threshold_bytes = base.eager_threshold_bytes + 1;
  EXPECT_FALSE(pipeline::lint_fingerprint(t, base) ==
               pipeline::lint_fingerprint(t, other_threshold));
  lint::LintOptions more_jobs = base;
  more_jobs.jobs = 8;  // execution detail, not an analysis input
  EXPECT_TRUE(pipeline::lint_fingerprint(t, base) ==
              pipeline::lint_fingerprint(t, more_jobs));
}

// --- golden zero-window counts on the bundled application -------------------

TEST(LintGolden, NasCgZeroWindowCountsArePinned) {
  const apps::MiniApp* app = apps::find_app("nas_cg");
  ASSERT_NE(app, nullptr);
  apps::AppConfig config;
  config.ranks = 4;
  config.iterations = 2;
  const tracer::TracedRun traced = apps::trace_app(*app, config);
  overlap::OverlapOptions real_options;
  real_options.chunks = 4;
  overlap::OverlapOptions ideal_options = real_options;
  ideal_options.pattern = overlap::PatternMode::kIdeal;

  // The original trace waits every pre-posted receive with no compute in
  // between: the anti-pattern the overlap transformation removes.
  const lint::Report original =
      lint::lint_trace(overlap::lower_original(traced.annotated));
  EXPECT_TRUE(original.clean()) << original.render_text();
  EXPECT_EQ(count_code(original, "zero-window"), 12u);
  EXPECT_EQ(count_code(original, "postponed-wait"), 0u);
  EXPECT_EQ(count_code(original, "overlap-summary"), 1u);

  const lint::Report ideal =
      lint::lint_trace(overlap::transform(traced.annotated, ideal_options));
  EXPECT_TRUE(ideal.clean()) << ideal.render_text();
  EXPECT_EQ(count_code(ideal, "zero-window"), 28u);
  EXPECT_EQ(count_code(ideal, "postponed-wait"), 12u);

  const lint::Report real =
      lint::lint_trace(overlap::transform(traced.annotated, real_options));
  EXPECT_TRUE(real.clean()) << real.render_text();
  EXPECT_EQ(count_code(real, "zero-window"), 16u);
  EXPECT_EQ(count_code(real, "postponed-wait"), 12u);
}

}  // namespace
}  // namespace osim
