// Tests for the trace-replay simulator: analytic timings, protocol
// semantics, blocking behaviour, deadlock diagnostics, timeline/comm
// recording, and monotonicity properties over platform parameters.
#include <gtest/gtest.h>

#include "common/expect.hpp"
#include "dimemas/replay.hpp"
#include "trace/trace.hpp"

namespace osim::dimemas {
namespace {

using trace::CollectiveKind;
using trace::Rank;
using trace::Trace;
using trace::TraceBuilder;

// Platform: 1000 MIPS traces → 1 instruction = 1 ns; 100 MB/s; 10 us
// latency; unlimited buses.
Platform test_platform(std::int32_t nodes) {
  Platform p;
  p.num_nodes = nodes;
  p.model = NetworkModelKind::kBus;
  p.bandwidth_MBps = 100.0;
  p.latency_us = 10.0;
  p.num_buses = 0;
  p.eager_threshold_bytes = 16 * 1024;
  return p;
}

constexpr double kUs = 1e-6;

TEST(Replay, PureComputeTime) {
  TraceBuilder b(1, 1000.0);
  b.compute(0, 5000);  // 5000 instr at 1000 MIPS = 5 us
  const SimResult result = replay(std::move(b).build(), test_platform(1));
  EXPECT_NEAR(result.makespan, 5.0 * kUs, 1e-12);
  EXPECT_NEAR(result.rank_stats[0].compute_s, 5.0 * kUs, 1e-12);
}

TEST(Replay, RelativeCpuSpeedScalesBursts) {
  TraceBuilder b(1, 1000.0);
  b.compute(0, 5000);
  Platform p = test_platform(1);
  p.relative_cpu_speed = 2.0;
  const SimResult result = replay(std::move(b).build(), p);
  EXPECT_NEAR(result.makespan, 2.5 * kUs, 1e-12);
}

TEST(Replay, PerNodeCpuSpeeds) {
  TraceBuilder b(2, 1000.0);
  b.compute(0, 100'000);
  b.compute(1, 100'000);
  Platform p = test_platform(2);
  p.per_node_cpu_speed = {1.0, 0.5};  // node 1 at half speed
  const SimResult result = replay(std::move(b).build(), p);
  EXPECT_NEAR(result.rank_stats[0].finish_time, 100.0 * kUs, 1e-12);
  EXPECT_NEAR(result.rank_stats[1].finish_time, 200.0 * kUs, 1e-12);
  EXPECT_NEAR(result.makespan, 200.0 * kUs, 1e-12);
}

TEST(Replay, PerNodeCpuSpeedSizeChecked) {
  TraceBuilder b(2, 1000.0);
  b.compute(0, 1);
  Platform p = test_platform(2);
  p.per_node_cpu_speed = {1.0};  // wrong length
  EXPECT_DEATH(replay(std::move(b).build(), p), "num_nodes entries");
}

TEST(Replay, EagerMessageTiming) {
  // 1000-byte eager message: receiver posted late, message already there.
  TraceBuilder b(2, 1000.0);
  b.send(0, 1, 0, 1000);
  b.compute(1, 100'000).recv(1, 0, 0, 1000);  // 100 us of compute first
  const SimResult result = replay(std::move(b).build(), test_platform(2));
  // Arrival at 10us + 10us = 20us < 100us; recv completes instantly.
  EXPECT_NEAR(result.makespan, 100.0 * kUs, 1e-12);
  EXPECT_NEAR(result.rank_stats[1].recv_blocked_s, 0.0, 1e-12);
}

TEST(Replay, EagerBlockingSendReturnsImmediately) {
  TraceBuilder b(2, 1000.0);
  b.send(0, 1, 0, 1000).compute(0, 50'000);
  b.recv(1, 0, 0, 1000);
  const SimResult result = replay(std::move(b).build(), test_platform(2));
  EXPECT_NEAR(result.rank_stats[0].send_blocked_s, 0.0, 1e-12);
  EXPECT_NEAR(result.rank_stats[0].finish_time, 50.0 * kUs, 1e-12);
  // Receiver blocks until arrival: latency + 10 us serialization.
  EXPECT_NEAR(result.rank_stats[1].finish_time, 20.0 * kUs, 1e-12);
}

TEST(Replay, RendezvousWaitsForReceiver) {
  // 1 MB rendezvous message; receiver posts the recv after 50 us.
  TraceBuilder b(2, 1000.0);
  b.send(0, 1, 0, 1'000'000);
  b.compute(1, 50'000).recv(1, 0, 0, 1'000'000);
  const SimResult result = replay(std::move(b).build(), test_platform(2));
  // Transfer starts at 50us (recv post), 10 ms serialization + 10 us.
  const double expected = 50.0 * kUs + 0.01 + 10.0 * kUs;
  EXPECT_NEAR(result.makespan, expected, 1e-9);
  // Blocking sender is stuck the whole time.
  EXPECT_NEAR(result.rank_stats[0].send_blocked_s, expected, 1e-9);
}

TEST(Replay, SynchronousFlagForcesRendezvous) {
  // The same small message, once eager and once forced-synchronous.
  auto build = [](bool synchronous) {
    TraceBuilder b(2, 1000.0);
    Trace t = std::move(b).build();
    t.ranks[0].push_back(trace::Send{1, 0, 100, false, trace::kNoRequest,
                                     synchronous});
    t.ranks[1].push_back(trace::CpuBurst{200'000});
    t.ranks[1].push_back(trace::Recv{0, 0, 100, false, trace::kNoRequest});
    return t;
  };
  const double t_eager = replay(build(false), test_platform(2)).makespan;
  const double t_sync = replay(build(true), test_platform(2)).makespan;
  EXPECT_NEAR(t_eager, 200.0 * kUs, 1e-9);   // arrival long before the recv
  EXPECT_GT(t_sync, 200.0 * kUs + 10.0 * kUs - 1e-9);  // starts at recv post
}

TEST(Replay, IrecvWaitOverlapsCompute) {
  // irecv + compute + wait: the transfer overlaps the burst.
  TraceBuilder b(2, 1000.0);
  b.irecv(0, 1, 0, 1000, 1).compute(0, 100'000).wait(0, {1});
  b.send(1, 0, 0, 1000);
  const SimResult result = replay(std::move(b).build(), test_platform(2));
  EXPECT_NEAR(result.makespan, 100.0 * kUs, 1e-12);
  EXPECT_NEAR(result.rank_stats[0].wait_blocked_s, 0.0, 1e-12);
}

TEST(Replay, WaitBlocksUntilArrival) {
  TraceBuilder b(2, 1000.0);
  b.irecv(0, 1, 0, 1000, 1).wait(0, {1});
  b.compute(1, 30'000).send(1, 0, 0, 1000);
  const SimResult result = replay(std::move(b).build(), test_platform(2));
  // Arrival at 30us + 10us serialization + 10us latency.
  EXPECT_NEAR(result.makespan, 50.0 * kUs, 1e-9);
  EXPECT_NEAR(result.rank_stats[0].wait_blocked_s, 50.0 * kUs, 1e-9);
}

TEST(Replay, WaitAllWaitsForEveryRequest) {
  TraceBuilder b(3, 1000.0);
  b.irecv(0, 1, 0, 100, 1).irecv(0, 2, 0, 100, 2).wait(0, {1, 2});
  b.compute(1, 10'000).send(1, 0, 0, 100);
  b.compute(2, 80'000).send(2, 0, 0, 100);
  const SimResult result = replay(std::move(b).build(), test_platform(3));
  EXPECT_GT(result.rank_stats[0].finish_time, 80.0 * kUs);
}

TEST(Replay, MessageOrderingNonOvertaking) {
  // Two same-tag messages must match in order; sizes confirm pairing.
  TraceBuilder b(2, 1000.0);
  b.send(0, 1, 5, 100).send(0, 1, 5, 100);
  b.recv(1, 0, 5, 100).recv(1, 0, 5, 100);
  EXPECT_NO_THROW(replay(std::move(b).build(), test_platform(2)));
}

TEST(Replay, TagSelectsMessage) {
  // Receiver asks for tag 9 first even though tag 5 was sent first.
  TraceBuilder b(2, 1000.0);
  b.send(0, 1, 5, 100).send(0, 1, 9, 200);
  b.recv(1, 0, 9, 200).recv(1, 0, 5, 100);
  EXPECT_NO_THROW(replay(std::move(b).build(), test_platform(2)));
}

TEST(Replay, WildcardReceives) {
  TraceBuilder b(3, 1000.0);
  b.recv(0, trace::kAnyRank, trace::kAnyTag, 100)
      .recv(0, trace::kAnyRank, trace::kAnyTag, 100);
  b.compute(1, 1000).send(1, 0, 1, 100);
  b.compute(2, 2000).send(2, 0, 2, 100);
  EXPECT_NO_THROW(replay(std::move(b).build(), test_platform(3)));
}

TEST(Replay, PingPongRoundTrip) {
  TraceBuilder b(2, 1000.0);
  b.send(0, 1, 0, 1000).recv(0, 1, 1, 1000);
  b.recv(1, 0, 0, 1000).send(1, 0, 1, 1000);
  const SimResult result = replay(std::move(b).build(), test_platform(2));
  // Each eager hop: 10 us serialization + 10 us latency.
  EXPECT_NEAR(result.makespan, 40.0 * kUs, 1e-9);
}

TEST(Replay, CollectivesAutoExpand) {
  TraceBuilder b(4, 1000.0);
  for (Rank r = 0; r < 4; ++r) {
    b.compute(r, 1000).global(r, CollectiveKind::kAllreduce, 0, 8, 0);
  }
  const SimResult result = replay(std::move(b).build(), test_platform(4));
  // Fan-in depth 2 + fan-out depth 2 at ~10us latency each: >= 40 us + 1 us.
  EXPECT_GT(result.makespan, 41.0 * kUs - 1e-9);
  EXPECT_LT(result.makespan, 100.0 * kUs);
}

TEST(Replay, BarrierSynchronizesSkewedRanks) {
  TraceBuilder b(3, 1000.0);
  b.compute(0, 1'000).global(0, CollectiveKind::kBarrier, 0, 0, 0);
  b.compute(1, 500'000).global(1, CollectiveKind::kBarrier, 0, 0, 0);
  b.compute(2, 2'000).global(2, CollectiveKind::kBarrier, 0, 0, 0);
  const SimResult result = replay(std::move(b).build(), test_platform(3));
  // Nobody leaves the barrier before the slowest rank arrives.
  for (const auto& stats : result.rank_stats) {
    EXPECT_GE(stats.finish_time, 500.0 * kUs);
  }
}

TEST(Replay, DeadlockDetectedAndDescribed) {
  // Two rendezvous blocking sends facing each other: classic deadlock.
  TraceBuilder b(2, 1000.0);
  b.send(0, 1, 0, 1'000'000).recv(0, 1, 0, 1'000'000);
  b.send(1, 0, 0, 1'000'000).recv(1, 0, 0, 1'000'000);
  try {
    replay(std::move(b).build(), test_platform(2));
    FAIL() << "expected deadlock";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("deadlock"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("rank 0"), std::string::npos);
  }
}

TEST(Replay, ValidatesInputByDefault) {
  TraceBuilder b(2, 1000.0);
  b.send(0, 1, 0, 100);  // no matching recv
  EXPECT_THROW(replay(std::move(b).build(), test_platform(2)), Error);
}

TEST(Replay, MaxSimTimeGuard) {
  TraceBuilder b(1, 1000.0);
  b.compute(0, 10'000'000);  // 10 ms
  ReplayOptions options;
  options.max_sim_time_s = 1e-3;
  EXPECT_THROW(replay(std::move(b).build(), test_platform(1), options),
               Error);
}

TEST(Replay, PlatformMustHaveEnoughNodes) {
  TraceBuilder b(4, 1000.0);
  b.compute(0, 1);
  EXPECT_DEATH(replay(std::move(b).build(), test_platform(2)),
               "fewer nodes");
}

TEST(Replay, TimelineRecording) {
  TraceBuilder b(2, 1000.0);
  b.compute(0, 10'000).send(0, 1, 0, 1'000'000);  // rendezvous: will block
  b.compute(1, 50'000).recv(1, 0, 0, 1'000'000);
  ReplayOptions options;
  options.record_timeline = true;
  const SimResult result =
      replay(std::move(b).build(), test_platform(2), options);
  ASSERT_EQ(result.timelines.size(), 2u);
  // Rank 0: one compute interval and one send-blocked interval.
  ASSERT_GE(result.timelines[0].size(), 2u);
  EXPECT_EQ(result.timelines[0][0].state, RankState::kCompute);
  EXPECT_NEAR(result.timelines[0][0].end - result.timelines[0][0].begin,
              10.0 * kUs, 1e-12);
  EXPECT_EQ(result.timelines[0][1].state, RankState::kSendBlocked);
  // Intervals are chronological and non-overlapping.
  for (const auto& timeline : result.timelines) {
    for (std::size_t i = 1; i < timeline.size(); ++i) {
      EXPECT_GE(timeline[i].begin, timeline[i - 1].end - 1e-12);
    }
  }
}

TEST(Replay, CommRecording) {
  TraceBuilder b(2, 1000.0);
  b.compute(0, 5'000).send(0, 1, 42, 2000);
  b.recv(1, 0, 42, 2000);
  ReplayOptions options;
  options.record_comms = true;
  const SimResult result =
      replay(std::move(b).build(), test_platform(2), options);
  ASSERT_EQ(result.comms.size(), 1u);
  const CommEvent& comm = result.comms[0];
  EXPECT_EQ(comm.src, 0);
  EXPECT_EQ(comm.dst, 1);
  EXPECT_EQ(comm.tag, 42);
  EXPECT_EQ(comm.bytes, 2000u);
  EXPECT_NEAR(comm.send_call_time, 5.0 * kUs, 1e-12);
  EXPECT_NEAR(comm.transfer_start, 5.0 * kUs, 1e-12);
  EXPECT_NEAR(comm.arrival_time, 5.0 * kUs + 20.0 * kUs + 10.0 * kUs,
              1e-9);
  EXPECT_GE(comm.recv_complete_time, comm.arrival_time - 1e-12);
}

TEST(Replay, Deterministic) {
  TraceBuilder b(4, 1000.0);
  for (Rank r = 0; r < 4; ++r) {
    b.compute(r, 1000 + 100 * static_cast<std::uint64_t>(r));
    b.global(r, CollectiveKind::kAlltoall, 0, 512, 0);
    b.compute(r, 500);
    b.global(r, CollectiveKind::kAllreduce, 0, 8, 1);
  }
  const Trace t = std::move(b).build();
  const double first = replay(t, test_platform(4)).makespan;
  for (int i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(replay(t, test_platform(4)).makespan, first);
  }
}

TEST(Replay, StatsAccounting) {
  TraceBuilder b(2, 1000.0);
  b.compute(0, 10'000).send(0, 1, 0, 500).send(0, 1, 1, 700);
  b.recv(1, 0, 0, 500).recv(1, 0, 1, 700);
  const SimResult result = replay(std::move(b).build(), test_platform(2));
  EXPECT_EQ(result.rank_stats[0].messages_sent, 2u);
  EXPECT_EQ(result.rank_stats[0].bytes_sent, 1200u);
  EXPECT_EQ(result.rank_stats[1].messages_received, 2u);
  EXPECT_GT(result.efficiency(), 0.0);
  EXPECT_LE(result.efficiency(), 1.0);
}

// --- property sweeps ----------------------------------------------------------

class BandwidthMonotonicity : public ::testing::TestWithParam<double> {};

TEST_P(BandwidthMonotonicity, TimeNonIncreasingInBandwidth) {
  // A communication-heavy trace must never get slower when bandwidth grows.
  TraceBuilder b(4, 1000.0);
  for (Rank r = 0; r < 4; ++r) {
    const Rank next = static_cast<Rank>((r + 1) % 4);
    const Rank prev = static_cast<Rank>((r + 3) % 4);
    for (int i = 0; i < 3; ++i) {
      b.irecv(r, prev, i, 100'000, i + 1);
      b.compute(r, 20'000);
      b.send(r, next, i, 100'000);
      b.wait(r, {i + 1});
    }
  }
  const Trace t = std::move(b).build();

  Platform p = test_platform(4);
  p.bandwidth_MBps = GetParam();
  const double t_here = replay(t, p).makespan;
  p.bandwidth_MBps = GetParam() * 2.0;
  const double t_faster = replay(t, p).makespan;
  EXPECT_LE(t_faster, t_here + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BandwidthMonotonicity,
                         ::testing::Values(1.0, 10.0, 50.0, 100.0, 400.0,
                                           1000.0));

class BusMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(BusMonotonicity, TimeNonIncreasingInBuses) {
  TraceBuilder b(6, 1000.0);
  for (Rank r = 0; r < 6; ++r) {
    b.global(r, CollectiveKind::kAlltoall, 0, 50'000, 0);
  }
  const Trace t = std::move(b).build();
  Platform p = test_platform(6);
  p.num_buses = GetParam();
  const double t_here = replay(t, p).makespan;
  p.num_buses = GetParam() + 1;
  const double t_more = replay(t, p).makespan;
  EXPECT_LE(t_more, t_here + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BusMonotonicity,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 12));

TEST(Replay, FairShareModelRuns) {
  TraceBuilder b(4, 1000.0);
  for (Rank r = 0; r < 4; ++r) {
    b.global(r, CollectiveKind::kAlltoall, 0, 50'000, 0);
  }
  const Trace t = std::move(b).build();
  Platform p = test_platform(4);
  p.model = NetworkModelKind::kFairShare;
  p.fabric_capacity_links = 2.0;
  const SimResult result = replay(t, p);
  EXPECT_GT(result.makespan, 0.0);
  // The fair-share fabric of 2 links is more restrictive than unlimited
  // buses; the bus model with plenty of buses must be at least as fast.
  Platform bus = test_platform(4);
  EXPECT_LE(replay(t, bus).makespan, result.makespan + 1e-9);
}

// Regression: a wait over several requests must attribute the blocked
// interval to the *last* releasing rank, preferring a real remote
// constraint over "no constraint" when completions tie. Rank 2 waits on
// two rendezvous receives that arrive at the same instant: the transfer
// from rank 0 carries a causal constraint (rank 0's send call at 100 us,
// after the recv was posted) while the transfer from rank 1 was only
// gated by rank 2's own late post (cause -1). The recorded cause must be
// rank 0, not whichever request happened to complete last in event order.
TEST(Replay, WaitallRecordsLastReleasingRank) {
  constexpr std::int64_t kInstr = 100'000;   // 100 us at 1000 MIPS
  constexpr std::uint64_t kBytes = 100'000;  // rendezvous (> 16 KiB)
  TraceBuilder b(3, 1000.0);
  b.compute(0, kInstr);
  b.send(0, 2, 0, kBytes);      // called at 100 us, recv already posted
  b.isend(1, 2, 1, kBytes, 9);  // called at t=0, recv posted at 100 us
  b.wait(1, {9});
  b.irecv(2, 0, 0, kBytes, 1);  // posted at t=0
  b.compute(2, kInstr);
  b.irecv(2, 1, 1, kBytes, 2);  // posted at 100 us
  b.wait(2, {1, 2});
  Platform p = test_platform(3);
  p.input_ports = 2;  // both transfers start together: identical arrivals
  ReplayOptions options;
  options.record_timeline = true;
  const SimResult result = replay(std::move(b).build(), p, options);

  const StateInterval* wait = nullptr;
  for (const StateInterval& iv : result.timelines[2]) {
    if (iv.state == RankState::kWaitBlocked) wait = &iv;
  }
  ASSERT_NE(wait, nullptr);
  EXPECT_EQ(wait->cause_rank, 0);
  EXPECT_NEAR(wait->cause_time, 100.0 * kUs, 1e-12);
}

// Message conservation: bytes are credited to the receiver at delivery,
// so once a replay drains, global bytes_sent == bytes_received — across
// eager, rendezvous, and expanded collective traffic alike.
TEST(Replay, BytesConservationIncludingCollectives) {
  TraceBuilder b(4, 1000.0);
  for (Rank r = 0; r < 4; ++r) {
    b.compute(r, 1000 * (r + 1));
    b.global(r, CollectiveKind::kAllreduce, 0, 4096, 0);
  }
  b.send(0, 1, 0, 2000);  // eager
  b.recv(1, 0, 0, 2000);
  b.isend(2, 3, 1, 50'000, 5);  // rendezvous
  b.wait(2, {5});
  b.irecv(3, 2, 1, 50'000, 7);
  b.wait(3, {7});
  for (Rank r = 0; r < 4; ++r) {
    b.global(r, CollectiveKind::kAlltoall, 0, 8192, 1);
  }
  const SimResult result = replay(std::move(b).build(), test_platform(4));
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  for (const RankStats& s : result.rank_stats) {
    sent += s.bytes_sent;
    received += s.bytes_received;
  }
  EXPECT_GT(sent, 0u);
  EXPECT_EQ(sent, received);
}

}  // namespace
}  // namespace osim::dimemas
