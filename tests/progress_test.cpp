// Tests for the MPI progress-engine scenario axis: spec grammar, the
// bit-identity contract when the model is inert (offload), determinism
// across study parallelism and store tiers, regime effects on the golden
// workload, progress-wait attribution in metrics and reports, and the
// pinned golden showing application-driven progress erasing the
// advanced-send overlap win on a bundled mini-app.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "apps/app.hpp"
#include "common/expect.hpp"
#include "dimemas/progress.hpp"
#include "dimemas/replay.hpp"
#include "metrics/attribution.hpp"
#include "overlap/options.hpp"
#include "pipeline/context.hpp"
#include "pipeline/report.hpp"
#include "pipeline/scenario.hpp"
#include "pipeline/study.hpp"
#include "trace/trace.hpp"
#include "tracer/tracer.hpp"

namespace osim {
namespace {

/// Fixed 4-rank ring workload — the same construction whose golden
/// fingerprint and makespan were captured before fault injection existed
/// (see faults_test.cpp). 32 KiB messages sit above the 16 KiB eager
/// threshold, so every transfer takes the rendezvous path the progress
/// engine gates.
trace::Trace golden_trace() {
  trace::TraceBuilder b(4, 1000.0, "golden");
  for (int round = 0; round < 3; ++round) {
    for (trace::Rank r = 0; r < 4; ++r) {
      b.compute(r, 50'000 + 1000 * r);
      const auto to = static_cast<trace::Rank>((r + 1) % 4);
      const auto from = static_cast<trace::Rank>((r + 3) % 4);
      const trace::ReqId req = round * 4 + r;
      b.irecv(r, from, round, 32 * 1024, req);
      b.send(r, to, round, 32 * 1024);
      b.wait(r, {req});
    }
  }
  return std::move(b).build();
}

dimemas::Platform golden_platform() {
  dimemas::Platform p;
  p.num_nodes = 4;
  p.bandwidth_MBps = 250.0;
  p.latency_us = 4.0;
  p.num_buses = 2;
  return p;
}

pipeline::ReplayContext progress_context(const std::string& spec,
                                         bool collect_metrics = false) {
  dimemas::ReplayOptions options;
  options.collect_metrics = collect_metrics;
  options.progress = dimemas::parse_progress_spec(spec);
  return pipeline::ReplayContext(golden_trace(), golden_platform(), options);
}

// --- spec grammar -----------------------------------------------------------

TEST(ProgressSpec, RoundTripsCanonicalForm) {
  const char* specs[] = {"offload", "app", "thread", "thread,tax=0.25",
                         "thread, tax=0"};
  for (const char* spec : specs) {
    const dimemas::ProgressModel model = dimemas::parse_progress_spec(spec);
    const std::string canonical = dimemas::to_spec(model);
    // Canonical form is a fixed point: parse(canon(parse(s))) == canon.
    EXPECT_EQ(dimemas::to_spec(dimemas::parse_progress_spec(canonical)),
              canonical)
        << "spec: " << spec;
    EXPECT_TRUE(dimemas::parse_progress_spec(canonical) == model)
        << "spec: " << spec;
  }
}

TEST(ProgressSpec, InertModelHasEmptySpec) {
  EXPECT_EQ(dimemas::to_spec(dimemas::ProgressModel{}), "");
  EXPECT_FALSE(dimemas::ProgressModel{}.enabled());
  EXPECT_FALSE(dimemas::parse_progress_spec("").enabled());
  EXPECT_FALSE(dimemas::parse_progress_spec("offload").enabled());
  EXPECT_TRUE(dimemas::parse_progress_spec("app").enabled());
  EXPECT_TRUE(dimemas::parse_progress_spec("thread").enabled());
}

TEST(ProgressSpec, DefaultThreadTax) {
  EXPECT_DOUBLE_EQ(dimemas::parse_progress_spec("thread").thread_cpu_tax,
                   0.05);
  EXPECT_DOUBLE_EQ(
      dimemas::parse_progress_spec("thread,tax=0.5").thread_cpu_tax, 0.5);
}

TEST(ProgressSpec, MalformedSpecsThrowNamingTheClause) {
  const char* bad[] = {
      "bogus",             // unknown regime
      "app,tax=0.1",       // tax only applies to thread
      "offload,tax=0.1",   // same
      "thread,tax=nope",   // not a number
      "thread,tax=-0.1",   // negative
      "thread,tax=11",     // above the [0, 10] cap
      "thread,tax",        // missing '='
      "thread,warp=2",     // unknown key
  };
  for (const char* spec : bad) {
    EXPECT_THROW(dimemas::parse_progress_spec(spec), Error)
        << "spec: " << spec;
  }
}

// --- bit-identity when off --------------------------------------------------

TEST(ProgressOff, GoldenFingerprintAndMakespan) {
  // The same constants faults_test pins: an offload replay (and its cache
  // fingerprint) must stay bit-identical to the pre-progress-engine build.
  const pipeline::ReplayContext context(golden_trace(), golden_platform());
  EXPECT_EQ(context.fingerprint().lo, 0x74c0e995af9cbdb9ull);
  EXPECT_EQ(context.fingerprint().hi, 0x16a56852733e68eaull);
  const dimemas::SimResult result = pipeline::run_scenario(context);
  EXPECT_EQ(result.makespan, 0.00095243199999999991);
}

TEST(ProgressOff, InertModelKeepsFingerprint) {
  const pipeline::ReplayContext base(golden_trace(), golden_platform());
  const pipeline::ReplayContext derived =
      base.with_progress(dimemas::ProgressModel{});
  EXPECT_EQ(derived.fingerprint().lo, base.fingerprint().lo);
  EXPECT_EQ(derived.fingerprint().hi, base.fingerprint().hi);
  // An offload model with a non-default tax is still inert: the tax only
  // exists under the thread regime.
  dimemas::ProgressModel offload_with_tax;
  offload_with_tax.thread_cpu_tax = 0.5;
  const pipeline::ReplayContext derived2 =
      base.with_progress(offload_with_tax);
  EXPECT_EQ(derived2.fingerprint().lo, base.fingerprint().lo);
  EXPECT_EQ(derived2.fingerprint().hi, base.fingerprint().hi);
}

TEST(ProgressOn, EnabledRegimesChangeFingerprint) {
  const pipeline::ReplayContext base(golden_trace(), golden_platform());
  const pipeline::ReplayContext app =
      base.with_progress(dimemas::parse_progress_spec("app"));
  const pipeline::ReplayContext thread =
      base.with_progress(dimemas::parse_progress_spec("thread"));
  const pipeline::ReplayContext taxed =
      base.with_progress(dimemas::parse_progress_spec("thread,tax=0.5"));
  EXPECT_FALSE(app.fingerprint().lo == base.fingerprint().lo &&
               app.fingerprint().hi == base.fingerprint().hi);
  EXPECT_FALSE(thread.fingerprint().lo == base.fingerprint().lo &&
               thread.fingerprint().hi == base.fingerprint().hi);
  EXPECT_FALSE(app.fingerprint().lo == thread.fingerprint().lo &&
               app.fingerprint().hi == thread.fingerprint().hi);
  // The tax is part of the cache key.
  EXPECT_FALSE(taxed.fingerprint().lo == thread.fingerprint().lo &&
               taxed.fingerprint().hi == thread.fingerprint().hi);
}

// --- regime effects ---------------------------------------------------------

TEST(ProgressEffects, AppDrivenNeverBeatsOffload) {
  const double offload =
      pipeline::run_scenario(progress_context("offload")).makespan;
  const double app = pipeline::run_scenario(progress_context("app")).makespan;
  EXPECT_GE(app, offload);
  EXPECT_TRUE(std::isfinite(app));
}

TEST(ProgressEffects, ThreadTaxStretchesCompute) {
  const double offload =
      pipeline::run_scenario(progress_context("offload")).makespan;
  const double cheap =
      pipeline::run_scenario(progress_context("thread,tax=0.01")).makespan;
  const double dear =
      pipeline::run_scenario(progress_context("thread,tax=0.5")).makespan;
  EXPECT_GT(cheap, offload);
  EXPECT_GT(dear, cheap);
  // tax=0 is a free progress thread: continuous progress at no CPU cost,
  // which on this workload replays exactly like offload.
  const double free_thread =
      pipeline::run_scenario(progress_context("thread,tax=0")).makespan;
  EXPECT_EQ(free_thread, offload);
}

// --- determinism across jobs and store tiers --------------------------------

TEST(ProgressDeterminism, SameResultAcrossJobs) {
  for (const char* spec : {"offload", "app", "thread"}) {
    std::vector<pipeline::ReplayContext> contexts;
    for (int i = 0; i < 6; ++i) contexts.push_back(progress_context(spec));
    std::vector<double> reference;
    for (const int jobs : {1, 8}) {
      pipeline::StudyOptions options;
      options.jobs = jobs;
      options.cache_replays = false;  // force every replay to really run
      pipeline::Study study(options);
      const std::vector<double> times = study.map(
          contexts, [&study](const pipeline::ReplayContext& c) {
            return study.makespan(c);
          });
      for (const double t : times) {
        EXPECT_EQ(t, times[0]) << "spec=" << spec << " jobs=" << jobs;
      }
      if (reference.empty()) {
        reference = times;
      } else {
        EXPECT_EQ(times, reference) << "spec=" << spec << " jobs=" << jobs;
      }
    }
  }
}

TEST(ProgressDeterminism, WarmStoreServesIdenticalResults) {
  namespace fs = std::filesystem;
  const std::string dir =
      ::testing::TempDir() + "/osim_progress_store_test";
  fs::remove_all(dir);
  for (const char* spec : {"offload", "app", "thread"}) {
    const pipeline::ReplayContext context = progress_context(spec);
    double cold = 0.0;
    {
      pipeline::StudyOptions options;
      options.cache_dir = dir;
      options.record_scenarios = true;
      pipeline::Study study(options);
      cold = study.makespan(context, spec);
      ASSERT_EQ(study.scenarios().size(), 1u);
      EXPECT_EQ(study.scenarios()[0].cache_tier, pipeline::CacheTier::kMiss)
          << "spec=" << spec;
    }
    {
      pipeline::StudyOptions options;
      options.cache_dir = dir;
      options.record_scenarios = true;
      pipeline::Study study(options);
      const double warm = study.makespan(context, spec);
      ASSERT_EQ(study.scenarios().size(), 1u);
      EXPECT_EQ(study.scenarios()[0].cache_tier, pipeline::CacheTier::kDisk)
          << "spec=" << spec;
      EXPECT_EQ(warm, cold) << "spec=" << spec;
    }
  }
  fs::remove_all(dir);
}

// --- metrics & reports ------------------------------------------------------

TEST(ProgressMetrics, AppDrivenAttributesProgressWait) {
  const dimemas::SimResult result = pipeline::run_scenario(
      progress_context("app", /*collect_metrics=*/true));
  ASSERT_NE(result.metrics, nullptr);
  double progress_wait = 0.0;
  for (const metrics::RankWaitAttribution& rank :
       result.metrics->rank_waits) {
    const metrics::WaitComponents total = rank.total();
    progress_wait += total.progress_s;
    // The progress component is part of the decomposition, never extra.
    EXPECT_LE(total.progress_s, total.total_s() + 1e-12);
    EXPECT_GE(total.progress_s, 0.0);
  }
  EXPECT_GT(progress_wait, 0.0);
}

TEST(ProgressMetrics, OffloadHasZeroProgressWait) {
  const dimemas::SimResult result = pipeline::run_scenario(
      progress_context("offload", /*collect_metrics=*/true));
  ASSERT_NE(result.metrics, nullptr);
  for (const metrics::RankWaitAttribution& rank :
       result.metrics->rank_waits) {
    EXPECT_EQ(rank.total().progress_s, 0.0);
  }
}

TEST(ProgressReports, ReplayReportGatesProgressComponent) {
  const std::string offload_json = pipeline::replay_report_json(
      pipeline::run_scenario(
          progress_context("offload", /*collect_metrics=*/true)),
      golden_platform(), "golden");
  EXPECT_EQ(offload_json.find("\"progress_s\""), std::string::npos);
  const std::string app_json = pipeline::replay_report_json(
      pipeline::run_scenario(
          progress_context("app", /*collect_metrics=*/true)),
      golden_platform(), "golden");
  EXPECT_NE(app_json.find("\"progress_s\""), std::string::npos);
}

TEST(ProgressReports, StudyReportCarriesProgressWait) {
  pipeline::StudyOptions options;
  options.record_scenarios = true;
  pipeline::Study study(options);
  study.makespan(progress_context("app", /*collect_metrics=*/true), "app");
  study.makespan(progress_context("app", /*collect_metrics=*/true),
                 "app-again");  // memory hit keeps its attribution
  const std::string json = pipeline::study_report_json(study);
  EXPECT_NE(json.find("\"progress_wait_s\""), std::string::npos);
  const std::vector<pipeline::ScenarioRecord> records = study.scenarios();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_GT(records[0].progress_wait_s, 0.0);
  EXPECT_EQ(records[0].progress_wait_s, records[1].progress_wait_s);

  // Offload-only studies must not mention the axis at all.
  pipeline::Study clean(options);
  clean.makespan(progress_context("offload", /*collect_metrics=*/true),
                 "offload");
  EXPECT_EQ(pipeline::study_report_json(clean).find("\"progress_wait_s\""),
            std::string::npos);
}

// --- scenario axis ----------------------------------------------------------

TEST(ProgressScenarios, CrossProgressDerivesContexts) {
  const pipeline::ReplayContext base(golden_trace(), golden_platform());
  const std::vector<pipeline::ProgressScenario> axis = {
      {"offload", dimemas::ProgressModel{}},
      {"app", dimemas::parse_progress_spec("app")},
      {"thread", dimemas::parse_progress_spec("thread")},
  };
  const std::vector<pipeline::ReplayContext> derived =
      pipeline::cross_progress(base, axis);
  ASSERT_EQ(derived.size(), 3u);
  EXPECT_EQ(derived[0].fingerprint().lo, base.fingerprint().lo);
  EXPECT_EQ(derived[0].fingerprint().hi, base.fingerprint().hi);
  EXPECT_FALSE(derived[1].fingerprint().lo == base.fingerprint().lo &&
               derived[1].fingerprint().hi == base.fingerprint().hi);
  EXPECT_FALSE(derived[2].fingerprint().lo == derived[1].fingerprint().lo &&
               derived[2].fingerprint().hi == derived[1].fingerprint().hi);
}

// --- pinned golden: the advanced-send win under app-driven progress ---------

TEST(ProgressGolden, AppDrivenErasesAdvancedSendWin) {
  // sweep3d, 8 ranks, 2 iterations: the bundled workload where advancing
  // sends buys the clearest overlap win under offload progress (~4.8%).
  const apps::MiniApp* app = apps::find_app("sweep3d");
  ASSERT_NE(app, nullptr);
  apps::AppConfig config;
  config.ranks = 8;
  config.iterations = 2;
  const tracer::TracedRun traced =
      apps::trace_app(*app, config, tracer::TracerOptions{});
  dimemas::Platform platform =
      dimemas::Platform::marenostrum(8, app->paper_buses());
  // At this configuration the wavefront messages sit under the 16 KiB
  // eager threshold, and eager transfers are regime-neutral (an arrival
  // observed late is still observed at the same wait). Force the
  // rendezvous path — where the RTS/CTS handshake needs host attention —
  // so the regimes can differ.
  platform.eager_threshold_bytes = 1024;

  overlap::OverlapOptions with_advance;  // defaults: all mechanisms on
  overlap::OverlapOptions no_advance = with_advance;
  no_advance.advance_sends = false;

  auto makespan = [&](const overlap::OverlapOptions& overlap_options,
                      const char* spec) {
    dimemas::ReplayOptions replay;
    replay.progress = dimemas::parse_progress_spec(spec);
    return pipeline::run_scenario(
               pipeline::make_context(traced.annotated,
                                      pipeline::TraceVariant::kOverlapMeasured,
                                      overlap_options, platform, replay))
        .makespan;
  };
  const double offload_adv = makespan(with_advance, "offload");
  const double offload_noadv = makespan(no_advance, "offload");
  const double app_adv = makespan(with_advance, "app");
  const double app_noadv = makespan(no_advance, "app");

  // Pinned golden (exact doubles): the offload pair must stay bit-identical
  // to the pre-progress-engine engine; the app-driven pair pins the gated
  // hot path against silent behavior drift.
  EXPECT_EQ(offload_adv, 0.016887525565217387);
  EXPECT_EQ(offload_noadv, 0.017696794434782601);
  EXPECT_EQ(app_adv, 0.016290713739130436);
  EXPECT_EQ(app_noadv, 0.015941325217391316);

  // Under offload, advancing sends wins ~4.8%. Under application-driven
  // progress the handshake gating eats the head start entirely — the win
  // drops below 1 (the delayed transfer starts also reorder the bus queue,
  // which is why the gated replays can undercut offload here; on a
  // contention-free network app-driven is never faster than offload).
  const double win_offload = offload_noadv / offload_adv;
  const double win_app = app_noadv / app_adv;
  EXPECT_GT(win_offload, 1.04);
  EXPECT_LT(win_app, 1.0);
  EXPECT_LT(win_app, win_offload);
}

}  // namespace
}  // namespace osim
