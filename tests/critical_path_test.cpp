// Tests for the critical-path analysis: analytic two-rank chains, the
// telescoping/partition property, and the overlap comparison on a real app.
#include <gtest/gtest.h>

#include "analysis/critical_path.hpp"
#include "analysis/speedup.hpp"
#include "apps/app.hpp"
#include "common/expect.hpp"
#include "dimemas/replay.hpp"
#include "overlap/transform.hpp"

namespace osim::analysis {
namespace {

using trace::Rank;
using trace::TraceBuilder;

dimemas::Platform platform(std::int32_t nodes) {
  dimemas::Platform p;
  p.num_nodes = nodes;
  p.bandwidth_MBps = 100.0;
  p.latency_us = 10.0;
  return p;
}

dimemas::SimResult run(const trace::Trace& t, std::int32_t nodes) {
  dimemas::ReplayOptions options;
  options.record_timeline = true;
  return dimemas::replay(t, platform(nodes), options);
}

TEST(CriticalPath, ComputeOnlySingleSegment) {
  TraceBuilder b(2, 1000.0);
  b.compute(0, 10'000).compute(1, 200'000);
  const auto result = run(std::move(b).build(), 2);
  const CriticalPath path = critical_path(result);
  EXPECT_DOUBLE_EQ(path.makespan, result.makespan);
  EXPECT_NEAR(path.compute_s, 200e-6, 1e-12);
  EXPECT_NEAR(path.communication_s, 0.0, 1e-12);
  ASSERT_FALSE(path.segments.empty());
  for (const auto& segment : path.segments) {
    EXPECT_EQ(segment.rank, 1);  // the slow rank carries the whole path
  }
}

TEST(CriticalPath, ProducerConsumerChain) {
  // Rank 1 computes 200 us, then sends 2 MB (rendezvous, 20 ms + 10 us) to
  // rank 0 which was waiting from t=0 and computes 50 us afterwards.
  // Critical path: rank1 compute -> transfer -> rank0 compute.
  TraceBuilder b(2, 1000.0);
  b.recv(0, 1, 0, 2'000'000).compute(0, 50'000);
  b.compute(1, 200'000).send(1, 0, 0, 2'000'000);
  const auto result = run(std::move(b).build(), 2);
  const CriticalPath path = critical_path(result);
  EXPECT_NEAR(path.makespan, 200e-6 + 0.02 + 10e-6 + 50e-6, 1e-9);
  // Compute on the path: rank1's 200us + rank0's tail 50us.
  EXPECT_NEAR(path.compute_s, 250e-6, 1e-9);
  EXPECT_NEAR(path.communication_s, 0.02 + 10e-6, 1e-9);
  EXPECT_EQ(path.ranks_visited(), 2u);
  // The path visits rank 1 before rank 0 in forward order.
  EXPECT_EQ(path.segments.front().rank, 1);
  EXPECT_EQ(path.segments.back().rank, 0);
}

TEST(CriticalPath, SegmentsPartitionMakespan) {
  // Telescoping property on a multi-round exchange.
  TraceBuilder b(3, 1000.0);
  for (Rank r = 0; r < 3; ++r) {
    const Rank next = static_cast<Rank>((r + 1) % 3);
    const Rank prev = static_cast<Rank>((r + 2) % 3);
    for (int i = 0; i < 4; ++i) {
      b.compute(r, 20'000 + 7'000 * static_cast<std::uint64_t>(r));
      b.irecv(r, prev, i, 100'000, i + 1);
      b.send(r, next, i, 100'000);
      b.wait(r, {i + 1});
    }
  }
  const auto result = run(std::move(b).build(), 3);
  const CriticalPath path = critical_path(result);
  double total = 0.0;
  double cursor = 0.0;
  for (const auto& segment : path.segments) {
    EXPECT_GE(segment.begin, cursor - 1e-12);  // forward, non-overlapping
    total += segment.end - segment.begin;
    cursor = segment.end;
  }
  EXPECT_NEAR(total, path.makespan, 1e-9);
  EXPECT_NEAR(path.compute_s + path.communication_s, path.makespan, 1e-9);
  EXPECT_NEAR(cursor, path.makespan, 1e-9);
}

TEST(CriticalPath, RendezvousSenderBlockedOnLateReceiver) {
  // The receiver posts late: the sender's blocked span must chase the
  // receiver's compute (cause = receive post).
  TraceBuilder b(2, 1000.0);
  b.send(0, 1, 0, 2'000'000);
  b.compute(1, 500'000).recv(1, 0, 0, 2'000'000);
  const auto result = run(std::move(b).build(), 2);
  const CriticalPath path = critical_path(result);
  EXPECT_NEAR(path.makespan, 500e-6 + 0.02 + 10e-6, 1e-9);
  // 500us of the path is the receiver's compute.
  EXPECT_NEAR(path.compute_s, 500e-6, 1e-9);
  EXPECT_EQ(path.ranks_visited(), 2u);
}

TEST(CriticalPath, RequiresTimelines) {
  dimemas::SimResult empty;
  empty.rank_stats.resize(1);
  EXPECT_DEATH(critical_path(empty), "timelines");
}

TEST(CriticalPath, RenderMentionsShares) {
  TraceBuilder b(2, 1000.0);
  b.compute(0, 1'000).compute(1, 2'000);
  const CriticalPath path = critical_path(run(std::move(b).build(), 2));
  const std::string text = render(path);
  EXPECT_NE(text.find("critical path"), std::string::npos);
  EXPECT_NE(text.find("compute"), std::string::npos);
  EXPECT_NE(text.find("per-rank shares"), std::string::npos);
}

TEST(CriticalPath, OverlapRemovesCommunicationForCg) {
  const apps::MiniApp& app = *apps::find_app("nas_cg");
  apps::AppConfig config;
  config.ranks = 4;
  config.iterations = 4;
  const tracer::TracedRun traced = apps::trace_app(app, config);
  const dimemas::Platform p =
      dimemas::Platform::marenostrum(config.ranks, app.paper_buses());
  dimemas::ReplayOptions options;
  options.record_timeline = true;
  const auto original = dimemas::replay(
      overlap::lower_original(traced.annotated), p, options);
  const auto overlapped = dimemas::replay(
      overlap::transform(traced.annotated, {}), p, options);
  const CriticalPath path_orig = critical_path(original);
  const CriticalPath path_ovlp = critical_path(overlapped);
  // Overlap removes communication from the path; compute on the path does
  // not grow.
  EXPECT_LT(path_ovlp.communication_s, path_orig.communication_s);
  EXPECT_NEAR(path_ovlp.compute_s, path_orig.compute_s,
              0.25 * path_orig.compute_s);
}

}  // namespace
}  // namespace osim::analysis
