// Tests for the overlap transformation: chunk geometry, per-chunk event
// times, message pairing, chunk tags, and the full trace transformation
// invariants (the paper's §II mechanisms).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/expect.hpp"
#include "overlap/chunks.hpp"
#include "overlap/pairing.hpp"
#include "overlap/transform.hpp"
#include "trace/annotated.hpp"

namespace osim::overlap {
namespace {

using trace::AnnEvent;
using trace::AnnotatedTrace;
using trace::kNeverAccessed;
using trace::Rank;
using trace::Record;
using trace::Recv;
using trace::Send;
using trace::Trace;
using trace::Wait;

// --- chunk geometry ----------------------------------------------------------

TEST(Chunks, BoundsBalanced) {
  const auto bounds = chunk_bounds(100, 4);
  EXPECT_EQ(bounds, (std::vector<std::uint64_t>{0, 25, 50, 75, 100}));
}

TEST(Chunks, BoundsUnevenSplit) {
  const auto bounds = chunk_bounds(10, 3);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_EQ(bounds.front(), 0u);
  EXPECT_EQ(bounds.back(), 10u);
  // No chunk differs from another by more than one element.
  for (std::size_t j = 0; j + 1 < bounds.size(); ++j) {
    const std::uint64_t len = bounds[j + 1] - bounds[j];
    EXPECT_GE(len, 3u);
    EXPECT_LE(len, 4u);
  }
}

TEST(Chunks, SingleChunkCoversAll) {
  EXPECT_EQ(chunk_bounds(7, 1), (std::vector<std::uint64_t>{0, 7}));
}

TEST(Chunks, MeasuredSendTimesTakeChunkMax) {
  // 4 elements, 2 chunks. Chunk 0: stores at 10, 30 -> ready at 30.
  // Chunk 1: stores at 20, never -> ready at 20.
  const std::uint64_t stores[] = {10, 30, 20, kNeverAccessed};
  const auto bounds = chunk_bounds(4, 2);
  const auto times = measured_send_times(stores, bounds, 5, 100);
  EXPECT_EQ(times, (std::vector<std::uint64_t>{30, 20}));
}

TEST(Chunks, MeasuredSendTimesClamped) {
  const std::uint64_t stores[] = {2, 200};  // below start / above send
  const auto bounds = chunk_bounds(2, 2);
  const auto times = measured_send_times(stores, bounds, 5, 100);
  EXPECT_EQ(times[0], 5u);
  EXPECT_EQ(times[1], 100u);
}

TEST(Chunks, NeverStoredChunkReadyAtIntervalStart) {
  const std::uint64_t stores[] = {kNeverAccessed, kNeverAccessed};
  const auto times =
      measured_send_times(stores, chunk_bounds(2, 1), 40, 100);
  EXPECT_EQ(times[0], 40u);
}

TEST(Chunks, IdealSendTimesUniform) {
  const auto times = ideal_send_times(4, 100, 500);
  EXPECT_EQ(times, (std::vector<std::uint64_t>{200, 300, 400, 500}));
}

TEST(Chunks, MeasuredWaitTimesTakeChunkMin) {
  // 4 elements, 2 chunks. Chunk 0 first needed at 15, chunk 1 at 60.
  const std::uint64_t loads[] = {20, 15, 60, kNeverAccessed};
  const auto times =
      measured_wait_times(loads, chunk_bounds(4, 2), 10, 100);
  EXPECT_EQ(times, (std::vector<std::uint64_t>{15, 60}));
}

TEST(Chunks, NeverLoadedChunkWaitsAtIntervalEnd) {
  const std::uint64_t loads[] = {kNeverAccessed};
  const auto times = measured_wait_times(loads, chunk_bounds(1, 1), 10, 100);
  EXPECT_EQ(times[0], 100u);
}

TEST(Chunks, IdealWaitTimesUniform) {
  // Chunk 0 needed at the interval start (the ideal consumption row of
  // Table II: "nothing" = 0%).
  const auto times = ideal_wait_times(4, 100, 500);
  EXPECT_EQ(times, (std::vector<std::uint64_t>{100, 200, 300, 400}));
}

// --- pairing and chunk tags -----------------------------------------------------

AnnEvent p2p(AnnEvent::Kind kind, Rank peer, std::int64_t tag,
             std::uint64_t elems, std::uint64_t vclock,
             std::int64_t buffer = 0) {
  AnnEvent ev;
  ev.kind = kind;
  ev.vclock = vclock;
  ev.peer = peer;
  ev.tag = tag;
  ev.elem_bytes = 8;
  ev.bytes = elems * 8;
  ev.buffer_id = buffer;
  ev.chunkable = elems > 1;
  if (kind == AnnEvent::Kind::kSend || kind == AnnEvent::Kind::kIsend) {
    ev.interval_start = 0;
    ev.elem_last_store.assign(elems, kNeverAccessed);
  } else if (kind == AnnEvent::Kind::kRecv ||
             kind == AnnEvent::Kind::kIrecv) {
    ev.interval_end = vclock;
    ev.elem_first_load.assign(elems, kNeverAccessed);
  }
  return ev;
}

AnnotatedTrace simple_pair(std::uint64_t elems_send,
                           std::uint64_t elems_recv) {
  AnnotatedTrace t = AnnotatedTrace::make(2, 1000.0);
  t.ranks[0].events.push_back(
      p2p(AnnEvent::Kind::kSend, 1, 0, elems_send, 100));
  t.ranks[0].final_vclock = 100;
  t.ranks[1].events.push_back(
      p2p(AnnEvent::Kind::kRecv, 0, 0, elems_recv, 10));
  t.ranks[1].events.back().interval_end = 200;
  t.ranks[1].final_vclock = 200;
  return t;
}

TEST(Pairing, AgreedChunkCount) {
  const Pairing pairing = pair_messages(simple_pair(8, 8), OverlapOptions{});
  EXPECT_EQ(pairing.plans[0][0].chunks, 4);
  EXPECT_EQ(pairing.plans[1][0].chunks, 4);
  EXPECT_EQ(pairing.plans[0][0].pair_seq, 0);
  EXPECT_EQ(pairing.plans[1][0].pair_seq, 0);
}

TEST(Pairing, FewElementsFewChunks) {
  const Pairing pairing = pair_messages(simple_pair(2, 2), OverlapOptions{});
  EXPECT_EQ(pairing.plans[0][0].chunks, 2);
}

TEST(Pairing, ChunkingDisabled) {
  OverlapOptions options;
  options.chunking = false;
  const Pairing pairing = pair_messages(simple_pair(8, 8), options);
  EXPECT_EQ(pairing.plans[0][0].chunks, 1);  // advance/postpone as a unit
}

TEST(Pairing, OneSideUntrackedDisablesChunking) {
  AnnotatedTrace t = simple_pair(8, 8);
  t.ranks[1].events[0].chunkable = false;
  const Pairing pairing = pair_messages(t, OverlapOptions{});
  EXPECT_EQ(pairing.plans[0][0].chunks, 0);
  EXPECT_EQ(pairing.plans[1][0].chunks, 0);
}

TEST(Pairing, SizeMismatchThrows) {
  EXPECT_THROW(pair_messages(simple_pair(8, 4), OverlapOptions{}), Error);
}

TEST(Pairing, CountMismatchThrows) {
  AnnotatedTrace t = simple_pair(8, 8);
  t.ranks[0].events.push_back(p2p(AnnEvent::Kind::kSend, 1, 0, 8, 100));
  EXPECT_THROW(pair_messages(t, OverlapOptions{}), Error);
}

TEST(Pairing, SequencePerTagAndPeer) {
  AnnotatedTrace t = AnnotatedTrace::make(2, 1000.0);
  // Two messages tag 0, one message tag 1.
  t.ranks[0].events.push_back(p2p(AnnEvent::Kind::kSend, 1, 0, 8, 10));
  t.ranks[0].events.push_back(p2p(AnnEvent::Kind::kSend, 1, 1, 8, 20));
  t.ranks[0].events.push_back(p2p(AnnEvent::Kind::kSend, 1, 0, 8, 30));
  t.ranks[0].final_vclock = 30;
  t.ranks[1].events.push_back(p2p(AnnEvent::Kind::kRecv, 0, 0, 8, 10));
  t.ranks[1].events.push_back(p2p(AnnEvent::Kind::kRecv, 0, 1, 8, 20));
  t.ranks[1].events.push_back(p2p(AnnEvent::Kind::kRecv, 0, 0, 8, 30));
  for (auto& ev : t.ranks[1].events) ev.interval_end = 100;
  t.ranks[1].final_vclock = 100;
  const Pairing pairing = pair_messages(t, OverlapOptions{});
  EXPECT_EQ(pairing.plans[0][0].pair_seq, 0);  // tag 0, first
  EXPECT_EQ(pairing.plans[0][1].pair_seq, 0);  // tag 1, first
  EXPECT_EQ(pairing.plans[0][2].pair_seq, 1);  // tag 0, second
  EXPECT_EQ(pairing.plans[1][2].pair_seq, 1);
}

TEST(ChunkTags, UniqueAcrossDimensions) {
  std::set<trace::Tag> seen;
  for (const std::int64_t tag : {0, 1, 7}) {
    for (const std::int64_t seq : {0, 1, 100}) {
      for (int chunk = 0; chunk < 8; ++chunk) {
        EXPECT_TRUE(seen.insert(chunk_tag(tag, seq, chunk)).second);
      }
    }
  }
}

TEST(ChunkTags, DisjointFromAppAndCollectiveTags) {
  const trace::Tag t = chunk_tag(100, 5, 3);
  EXPECT_GT(t, (trace::Tag{1} << 61));  // far above application tags
}

// --- lower_original --------------------------------------------------------------

TEST(LowerOriginal, ReconstructsBursts) {
  AnnotatedTrace t = AnnotatedTrace::make(2, 1000.0);
  t.ranks[0].events.push_back(p2p(AnnEvent::Kind::kSend, 1, 0, 4, 100));
  t.ranks[0].events.push_back(p2p(AnnEvent::Kind::kSend, 1, 1, 4, 250));
  t.ranks[0].final_vclock = 300;
  t.ranks[1].events.push_back(p2p(AnnEvent::Kind::kRecv, 0, 0, 4, 0));
  t.ranks[1].events.push_back(p2p(AnnEvent::Kind::kRecv, 0, 1, 4, 0));
  for (auto& ev : t.ranks[1].events) ev.interval_end = 10;
  t.ranks[1].final_vclock = 10;

  const Trace lowered = lower_original(t);
  EXPECT_NO_THROW(trace::validate(lowered));
  // Rank 0: compute(100) send compute(150) send compute(50).
  ASSERT_EQ(lowered.ranks[0].size(), 5u);
  EXPECT_EQ(std::get<trace::CpuBurst>(lowered.ranks[0][0]).instructions,
            100u);
  EXPECT_EQ(std::get<trace::CpuBurst>(lowered.ranks[0][2]).instructions,
            150u);
  EXPECT_EQ(std::get<trace::CpuBurst>(lowered.ranks[0][4]).instructions,
            50u);
  EXPECT_EQ(lowered.total_instructions(0), 300u);
}

// --- transform -----------------------------------------------------------------

AnnotatedTrace producer_consumer() {
  // Rank 0 produces 8 elements across [0, 800] (element i final at
  // 100*(i+1)) and sends at 800. Rank 1 receives at 50 and consumes element
  // i at 100*i + 150 within its interval ending at 1000.
  AnnotatedTrace t = AnnotatedTrace::make(2, 1000.0);
  AnnEvent send = p2p(AnnEvent::Kind::kSend, 1, 0, 8, 800);
  for (std::size_t i = 0; i < 8; ++i) {
    send.elem_last_store[i] = 100 * (i + 1);
  }
  t.ranks[0].events.push_back(send);
  t.ranks[0].final_vclock = 900;

  AnnEvent recv = p2p(AnnEvent::Kind::kRecv, 0, 0, 8, 50);
  recv.interval_end = 1000;
  for (std::size_t i = 0; i < 8; ++i) {
    recv.elem_first_load[i] = 100 * i + 150;
  }
  t.ranks[1].events.push_back(recv);
  t.ranks[1].final_vclock = 1000;
  return t;
}

struct Shape {
  std::size_t isends = 0;
  std::size_t irecvs = 0;
  std::size_t waits = 0;
  std::uint64_t send_bytes = 0;
};

Shape shape_of(const std::vector<Record>& stream) {
  Shape s;
  for (const Record& rec : stream) {
    if (const auto* send = std::get_if<Send>(&rec)) {
      if (send->immediate) ++s.isends;
      s.send_bytes += send->bytes;
    } else if (const auto* recv = std::get_if<Recv>(&rec)) {
      if (recv->immediate) ++s.irecvs;
    } else if (std::holds_alternative<Wait>(rec)) {
      ++s.waits;
    }
  }
  return s;
}

TEST(Transform, ChunksSendAndRecv) {
  const Trace out = transform(producer_consumer(), OverlapOptions{});
  EXPECT_NO_THROW(trace::validate(out));
  const Shape sender = shape_of(out.ranks[0]);
  EXPECT_EQ(sender.isends, 4u);
  EXPECT_EQ(sender.send_bytes, 64u);  // byte total conserved
  EXPECT_EQ(sender.waits, 1u);        // trailing cleanup
  const Shape receiver = shape_of(out.ranks[1]);
  EXPECT_EQ(receiver.irecvs, 4u);
  EXPECT_EQ(receiver.waits, 4u);  // one postponed wait per chunk
}

TEST(Transform, InstructionTotalsPreserved) {
  const AnnotatedTrace t = producer_consumer();
  const Trace original = lower_original(t);
  const Trace overlapped = transform(t, OverlapOptions{});
  for (Rank r = 0; r < 2; ++r) {
    EXPECT_EQ(original.total_instructions(r),
              overlapped.total_instructions(r));
  }
}

TEST(Transform, AdvancedSendsSitAtProductionInstants) {
  const Trace out = transform(producer_consumer(), OverlapOptions{});
  // Sender: chunk j (2 elements) ready at 100*(2j+2); bursts between the
  // isends must reflect those instants.
  std::uint64_t clock = 0;
  std::vector<std::uint64_t> isend_times;
  for (const Record& rec : out.ranks[0]) {
    if (const auto* burst = std::get_if<trace::CpuBurst>(&rec)) {
      clock += burst->instructions;
    } else if (const auto* send = std::get_if<Send>(&rec)) {
      if (send->immediate) isend_times.push_back(clock);
    }
  }
  EXPECT_EQ(isend_times,
            (std::vector<std::uint64_t>{200, 400, 600, 800}));
}

TEST(Transform, PostponedWaitsSitAtFirstUseInstants) {
  const Trace out = transform(producer_consumer(), OverlapOptions{});
  std::uint64_t clock = 0;
  std::vector<std::uint64_t> wait_times;
  for (const Record& rec : out.ranks[1]) {
    if (const auto* burst = std::get_if<trace::CpuBurst>(&rec)) {
      clock += burst->instructions;
    } else if (std::holds_alternative<Wait>(rec)) {
      wait_times.push_back(clock);
    }
  }
  // Chunk j (elements 2j, 2j+1) first needed at 100*(2j) + 150.
  EXPECT_EQ(wait_times, (std::vector<std::uint64_t>{150, 350, 550, 750}));
}

TEST(Transform, IdealPatternUniform) {
  OverlapOptions options;
  options.pattern = PatternMode::kIdeal;
  const Trace out = transform(producer_consumer(), options);
  std::uint64_t clock = 0;
  std::vector<std::uint64_t> isend_times;
  for (const Record& rec : out.ranks[0]) {
    if (const auto* burst = std::get_if<trace::CpuBurst>(&rec)) {
      clock += burst->instructions;
    } else if (const auto* send = std::get_if<Send>(&rec)) {
      if (send->immediate) isend_times.push_back(clock);
    }
  }
  // Uniform quarters of [0, 800].
  EXPECT_EQ(isend_times,
            (std::vector<std::uint64_t>{200, 400, 600, 800}));
}

TEST(Transform, AdvanceSendsOffKeepsSendsAtCall) {
  OverlapOptions options;
  options.advance_sends = false;
  const Trace out = transform(producer_consumer(), options);
  std::uint64_t clock = 0;
  for (const Record& rec : out.ranks[0]) {
    if (const auto* burst = std::get_if<trace::CpuBurst>(&rec)) {
      clock += burst->instructions;
    } else if (const auto* send = std::get_if<Send>(&rec)) {
      if (send->immediate) {
        EXPECT_EQ(clock, 800u);
      }
    }
  }
}

TEST(Transform, PostponeOffWaitsAtCall) {
  OverlapOptions options;
  options.postpone_receptions = false;
  const Trace out = transform(producer_consumer(), options);
  std::uint64_t clock = 0;
  for (const Record& rec : out.ranks[1]) {
    if (const auto* burst = std::get_if<trace::CpuBurst>(&rec)) {
      clock += burst->instructions;
    } else if (std::holds_alternative<Wait>(rec)) {
      EXPECT_EQ(clock, 50u);  // at the original recv position
    }
  }
}

TEST(Transform, DoubleBufferingOffForcesSynchronous) {
  OverlapOptions options;
  options.double_buffering = false;
  const Trace out = transform(producer_consumer(), options);
  for (const Record& rec : out.ranks[0]) {
    if (const auto* send = std::get_if<Send>(&rec)) {
      EXPECT_TRUE(send->synchronous);
    }
  }
}

TEST(Transform, UnchunkableMessagePassesThrough) {
  AnnotatedTrace t = simple_pair(8, 8);
  t.ranks[0].events[0].chunkable = false;
  const Trace out = transform(t, OverlapOptions{});
  EXPECT_NO_THROW(trace::validate(out));
  const Shape sender = shape_of(out.ranks[0]);
  EXPECT_EQ(sender.isends, 0u);
  EXPECT_EQ(sender.send_bytes, 64u);
}

TEST(Transform, AppIrecvWaitReplaced) {
  // App-level irecv + wait on the receiver: the transform must drop the
  // original wait (its request is replaced) and produce a valid trace.
  AnnotatedTrace t = AnnotatedTrace::make(2, 1000.0);
  AnnEvent send = p2p(AnnEvent::Kind::kSend, 1, 0, 4, 100);
  send.elem_last_store.assign(4, 50);
  t.ranks[0].events.push_back(send);
  t.ranks[0].final_vclock = 100;

  AnnEvent irecv = p2p(AnnEvent::Kind::kIrecv, 0, 0, 4, 10);
  irecv.request = 7;
  irecv.interval_end = 500;
  irecv.elem_first_load.assign(4, 300);
  irecv.wait_event_index = 1;
  t.ranks[1].events.push_back(irecv);
  AnnEvent wait;
  wait.kind = AnnEvent::Kind::kWait;
  wait.vclock = 200;
  wait.wait_requests = {7};
  t.ranks[1].events.push_back(wait);
  t.ranks[1].final_vclock = 500;

  const Trace out = transform(t, OverlapOptions{});
  EXPECT_NO_THROW(trace::validate(out));
  // No record may reference the replaced request 7.
  for (const Record& rec : out.ranks[1]) {
    if (const auto* w = std::get_if<Wait>(&rec)) {
      for (const trace::ReqId req : w->requests) EXPECT_NE(req, 7);
    }
  }
}

TEST(Transform, SenderRotationWaitsBeforeReuse) {
  // Two consecutive sends on the same buffer: the second message's first
  // chunk isend must be preceded by a wait on the first message's chunks.
  AnnotatedTrace t = AnnotatedTrace::make(2, 1000.0);
  AnnEvent first = p2p(AnnEvent::Kind::kSend, 1, 0, 4, 100);
  first.elem_last_store.assign(4, 80);
  AnnEvent second = p2p(AnnEvent::Kind::kSend, 1, 0, 4, 300);
  second.interval_start = 100;
  second.elem_last_store.assign(4, 200);
  t.ranks[0].events.push_back(first);
  t.ranks[0].events.push_back(second);
  t.ranks[0].final_vclock = 300;
  for (int i = 0; i < 2; ++i) {
    AnnEvent recv = p2p(AnnEvent::Kind::kRecv, 0, 0, 4, 10 + i);
    recv.interval_end = 400;
    t.ranks[1].events.push_back(recv);
  }
  t.ranks[1].events[0].vclock = 10;
  t.ranks[1].events[1].vclock = 20;
  t.ranks[1].events[0].interval_end = 20;
  t.ranks[1].final_vclock = 400;

  const Trace out = transform(t, OverlapOptions{});
  EXPECT_NO_THROW(trace::validate(out));
  // Track request lifetimes: the first four isend requests must be waited
  // before the fifth isend appears.
  std::set<trace::ReqId> first_batch;
  bool rotation_seen = false;
  std::size_t isends_seen = 0;
  for (const Record& rec : out.ranks[0]) {
    if (const auto* send = std::get_if<Send>(&rec)) {
      if (!send->immediate) continue;
      ++isends_seen;
      if (isends_seen <= 4) {
        first_batch.insert(send->request);
      } else {
        EXPECT_TRUE(rotation_seen)
            << "second message chunk sent before the rotation wait";
      }
    } else if (const auto* w = std::get_if<Wait>(&rec)) {
      for (const trace::ReqId req : w->requests) {
        if (first_batch.count(req)) rotation_seen = true;
      }
    }
  }
  EXPECT_EQ(isends_seen, 8u);
}

TEST(Transform, GlobalOpsPassThrough) {
  AnnotatedTrace t = AnnotatedTrace::make(2, 1000.0);
  for (Rank r = 0; r < 2; ++r) {
    AnnEvent ev;
    ev.kind = AnnEvent::Kind::kGlobalOp;
    ev.vclock = 10;
    ev.coll = trace::CollectiveKind::kAllreduce;
    ev.bytes = 8;
    ev.coll_sequence = 0;
    t.ranks[r].events.push_back(ev);
    t.ranks[r].final_vclock = 20;
  }
  const Trace out = transform(t, OverlapOptions{});
  EXPECT_NO_THROW(trace::validate(out));
  std::size_t globals = 0;
  for (const auto& stream : out.ranks) {
    for (const Record& rec : stream) {
      globals += std::holds_alternative<trace::GlobalOp>(rec);
    }
  }
  EXPECT_EQ(globals, 2u);
}

TEST(Pairing, AutoChunkingByBytes) {
  // 8 elements x 8 bytes = 64 bytes; 16-byte chunks -> 4 chunks.
  OverlapOptions options;
  options.auto_chunk_bytes = 16;
  const Pairing pairing = pair_messages(simple_pair(8, 8), options);
  EXPECT_EQ(pairing.plans[0][0].chunks, 4);
  // Huge chunk budget -> single chunk.
  options.auto_chunk_bytes = 1 << 20;
  EXPECT_EQ(pair_messages(simple_pair(8, 8), options).plans[0][0].chunks, 1);
}

TEST(Pairing, AutoChunkingCappedAt256) {
  OverlapOptions options;
  options.auto_chunk_bytes = 1;
  EXPECT_EQ(options.effective_chunks(1'000'000, 1'000'000), 256);
}

class ChunkCountSweep : public ::testing::TestWithParam<int> {};

TEST_P(ChunkCountSweep, AlwaysValidAndConserving) {
  OverlapOptions options;
  options.chunks = GetParam();
  const AnnotatedTrace t = producer_consumer();
  const Trace out = transform(t, options);
  EXPECT_NO_THROW(trace::validate(out));
  const Shape sender = shape_of(out.ranks[0]);
  EXPECT_EQ(sender.send_bytes, 64u);
  EXPECT_EQ(sender.isends,
            static_cast<std::size_t>(std::min(GetParam(), 8)));
  EXPECT_EQ(lower_original(t).total_instructions(0),
            out.total_instructions(0));
}

INSTANTIATE_TEST_SUITE_P(Sweep, ChunkCountSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 16));

}  // namespace
}  // namespace osim::overlap
