// Tests for the analysis service (src/serve): wire/protocol strictness
// (including the framing fuzzer the protocol header promises), the
// controller/worker life cycle, and the service-level acceptance
// properties — concurrent clients deduped onto one replay with
// byte-identical reports, admission-control rejection, worker-death
// retries, and a journaled restart that answers from the store without
// recomputing.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/exit_codes.hpp"
#include "serve/client.hpp"
#include "serve/controller.hpp"
#include "serve/job.hpp"
#include "serve/protocol.hpp"
#include "serve/wire.hpp"
#include "trace/binary_io.hpp"
#include "trace/trace.hpp"

namespace osim::serve {
namespace {

namespace fs = std::filesystem;

pipeline::Fingerprint fp(std::uint64_t lo, std::uint64_t hi) {
  return pipeline::Fingerprint{lo, hi};
}

// Deterministic PRNG for the fuzzers (xorshift64*; no <random> seeding
// drift across platforms).
struct Rng {
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  std::uint64_t next() {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 0x2545f4914f6cdd1dull;
  }
};

ScenarioSpec sample_spec(const std::string& trace_path, double bandwidth) {
  ScenarioSpec spec;
  spec.trace_path = trace_path;
  spec.bandwidth = bandwidth;
  return spec;
}

// Every client message variant, exercised by the round-trip test and used
// as the fuzzer corpus.
std::vector<ClientMessage> client_corpus() {
  ScenarioSpec spec = sample_spec("/tmp/a.trace", 125.0);
  spec.fault_spec = "drop=0.01,seed=7";
  spec.progress_spec = "thread,tax=0.5";
  SubmitStudy study;
  study.base = spec;
  study.bandwidths = {125.0, 250.0, 500.0};
  return {
      ClientMessage(SubmitScenario{spec}),
      ClientMessage(study),
      ClientMessage(PollStatus{fp(1, 2), true}),
      ClientMessage(FetchReport{fp(3, 4)}),
      ClientMessage(Cancel{fp(5, 6)}),
      ClientMessage(ServerStats{}),
      ClientMessage(Shutdown{}),
  };
}

std::vector<ServerMessage> server_corpus() {
  Submitted submitted;
  submitted.tickets = {{fp(1, 2), SubmitDisposition::kFresh},
                       {fp(3, 4), SubmitDisposition::kShared},
                       {fp(5, 6), SubmitDisposition::kServed}};
  return {
      ServerMessage(submitted),
      ServerMessage(StatusReply{fp(7, 8), JobState::kFailed, 2, "boom"}),
      ServerMessage(ReportReply{fp(9, 10), "{\"schema\":\"x\"}"}),
      ServerMessage(StatsReply{"{\"clients\":3}"}),
      ServerMessage(OkReply{}),
      ServerMessage(ErrorReply{RpcErrorCode::kBusy, "queue full"}),
  };
}

// --- wire primitives --------------------------------------------------------

TEST(Wire, StringLengthIsCheckedBeforeAllocation) {
  // A string header declaring 4 GiB backed by 3 bytes must fail cleanly
  // (and, per the Reader contract, without allocating the declared size).
  std::string bytes;
  wire::put_u32(bytes, 0xffffffffu);
  bytes += "abc";
  wire::Reader reader(bytes);
  const std::string s = reader.get_string();
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(reader.ok());
}

TEST(Wire, DoneRequiresFullConsumption) {
  std::string bytes;
  wire::put_u32(bytes, 7);
  wire::put_u8(bytes, 1);
  wire::Reader reader(bytes);
  EXPECT_EQ(reader.get_u32(), 7u);
  EXPECT_FALSE(reader.done());  // one byte left
  EXPECT_EQ(reader.get_u8(), 1u);
  EXPECT_TRUE(reader.done());
}

// --- protocol round trips ---------------------------------------------------

TEST(Protocol, HandshakeRoundTrip) {
  const std::string hs = handshake_bytes();
  ASSERT_EQ(hs.size(), kHandshakeBytes);
  EXPECT_TRUE(check_handshake(hs));
  for (std::size_t i = 0; i < hs.size(); ++i) {
    std::string bad = hs;
    bad[i] = static_cast<char>(bad[i] ^ 0x40);
    EXPECT_FALSE(check_handshake(bad)) << "flipped byte " << i;
  }
  EXPECT_FALSE(check_handshake(hs.substr(0, kHandshakeBytes - 1)));
}

TEST(Protocol, ClientMessagesRoundTrip) {
  for (const ClientMessage& message : client_corpus()) {
    const std::string payload = encode_client_message(message);
    const std::optional<ClientMessage> back = decode_client_message(payload);
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(*back == message);
  }
}

TEST(Protocol, ServerMessagesRoundTrip) {
  for (const ServerMessage& message : server_corpus()) {
    const std::string payload = encode_server_message(message);
    const std::optional<ServerMessage> back = decode_server_message(payload);
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(*back == message);
  }
}

TEST(Protocol, JobFramesRoundTrip) {
  JobRequest request;
  request.ticket = fp(11, 12);
  request.spec = sample_spec("t.trace", 500.0);
  const std::optional<JobRequest> request_back =
      decode_job_request(encode_job_request(request));
  ASSERT_TRUE(request_back.has_value());
  EXPECT_TRUE(*request_back == request);

  JobResult result;
  result.ticket = request.ticket;
  result.ok = true;
  result.report_json = "{\"makespan\":1.5}";
  const std::optional<JobResult> result_back =
      decode_job_result(encode_job_result(result));
  ASSERT_TRUE(result_back.has_value());
  EXPECT_TRUE(*result_back == result);
}

TEST(Protocol, DecodeRejectsTrailingBytes) {
  std::string payload = encode_client_message(ClientMessage(Shutdown{}));
  payload.push_back('\0');
  EXPECT_FALSE(decode_client_message(payload).has_value());
}

TEST(Protocol, DecodeRejectsUnknownType) {
  std::string payload;
  payload.push_back(static_cast<char>(200));
  EXPECT_FALSE(decode_client_message(payload).has_value());
  EXPECT_FALSE(decode_server_message(payload).has_value());
}

TEST(Protocol, FrameReaderReassemblesSplitFrames) {
  std::string stream;
  for (const ClientMessage& message : client_corpus()) {
    append_frame(stream, encode_client_message(message));
  }
  FrameReader reader;
  std::vector<std::string> payloads;
  for (const char byte : stream) {  // worst case: one byte per read()
    reader.feed(std::string_view(&byte, 1));
    while (std::optional<std::string> payload = reader.next()) {
      payloads.push_back(*payload);
    }
  }
  EXPECT_FALSE(reader.error());
  EXPECT_EQ(reader.buffered(), 0u);
  ASSERT_EQ(payloads.size(), client_corpus().size());
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    EXPECT_TRUE(decode_client_message(payloads[i]).has_value()) << i;
  }
}

// --- framing fuzzer ---------------------------------------------------------
//
// The promise under test (protocol.hpp): decoding is strict and total —
// bit-flipped, truncated and oversized-length frames either parse to a
// valid message or return nullopt, and a forged length never allocates.

TEST(Fuzz, BitFlippedFramesNeverCrash) {
  for (const ClientMessage& message : client_corpus()) {
    std::string frame;
    append_frame(frame, encode_client_message(message));
    for (std::size_t bit = 0; bit < frame.size() * 8; ++bit) {
      std::string mutant = frame;
      mutant[bit / 8] = static_cast<char>(mutant[bit / 8] ^ (1 << (bit % 8)));
      FrameReader reader;
      reader.feed(mutant);
      while (std::optional<std::string> payload = reader.next()) {
        decode_client_message(*payload);  // must not crash; result is free
        decode_server_message(*payload);
      }
      // A flipped length byte may declare an oversized frame; the reader
      // must have refused it without buffering the declared size.
      EXPECT_LE(reader.buffered(), mutant.size());
    }
  }
}

TEST(Fuzz, TruncatedFramesNeverYieldAFrame) {
  std::string frame;
  append_frame(frame,
               encode_client_message(ClientMessage(client_corpus()[1])));
  for (std::size_t len = 0; len < frame.size(); ++len) {
    FrameReader reader;
    reader.feed(frame.substr(0, len));
    if (len >= 4) {
      // Header complete, payload short: no frame yet, no error.
      EXPECT_FALSE(reader.next().has_value()) << len;
      EXPECT_FALSE(reader.error()) << len;
    } else {
      EXPECT_FALSE(reader.next().has_value()) << len;
    }
  }
  // Truncated *payloads* handed straight to the decoders must reject too.
  const std::string payload = encode_client_message(client_corpus()[1]);
  for (std::size_t len = 0; len < payload.size(); ++len) {
    EXPECT_FALSE(decode_client_message(payload.substr(0, len)).has_value())
        << len;
  }
}

TEST(Fuzz, OversizedLengthPoisonsWithoutAllocation) {
  for (const std::uint32_t declared :
       {kMaxFrameBytes + 1, 0x7fffffffu, 0xffffffffu}) {
    std::string header;
    wire::put_u32(header, declared);
    FrameReader reader;
    reader.feed(header);
    EXPECT_FALSE(reader.next().has_value());
    EXPECT_TRUE(reader.error()) << declared;
    // Only the 4 header bytes may be buffered — the declared length must
    // never be reserved.
    EXPECT_LE(reader.buffered(), header.size());
  }
}

TEST(Fuzz, RandomGarbageStreamsNeverCrash) {
  Rng rng;
  for (int round = 0; round < 50; ++round) {
    FrameReader reader;
    // Feed ~4 KB of garbage in ragged chunks, draining as a server would.
    for (int chunk = 0; chunk < 64 && !reader.error(); ++chunk) {
      std::string bytes;
      const std::size_t n = 1 + rng.next() % 64;
      for (std::size_t i = 0; i < n; ++i) {
        bytes.push_back(static_cast<char>(rng.next()));
      }
      reader.feed(bytes);
      while (std::optional<std::string> payload = reader.next()) {
        decode_client_message(*payload);
        decode_server_message(*payload);
      }
      EXPECT_LE(reader.buffered(), std::size_t{kMaxFrameBytes});
    }
  }
}

// --- the service ------------------------------------------------------------

#if defined(__unix__) || defined(__APPLE__)

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/osim_serve_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// A ring exchange over `ranks` ranks for `rounds` rounds; written to disk
// the way clients hand traces to the service.
std::string write_ring_trace(const std::string& dir, std::int32_t ranks,
                             int rounds) {
  trace::TraceBuilder b(ranks, 1000.0);
  for (trace::Rank r = 0; r < ranks; ++r) {
    const trace::Rank next = static_cast<trace::Rank>((r + 1) % ranks);
    const trace::Rank prev = static_cast<trace::Rank>((r + ranks - 1) % ranks);
    for (int i = 0; i < rounds; ++i) {
      b.irecv(r, prev, i, 32 * 1024, i + 1);
      b.compute(r, 20'000);
      b.send(r, next, i, 32 * 1024);
      b.wait(r, {i + 1});
    }
  }
  const std::string path = dir + "/ring.trace";
  trace::write_binary_file(std::move(b).build(), path);
  return path;
}

// Runs a Controller on its own thread and guarantees the thread is
// reaped: the destructor sends the shutdown RPC if the test did not.
class TestService {
 public:
  explicit TestService(ControllerOptions options)
      : socket_(options.socket_path) {
    thread_ = std::thread([this, options]() {
      try {
        Controller controller(options);
        exit_code_ = controller.run();
      } catch (const std::exception& e) {
        startup_error_ = e.what();
      }
    });
  }

  ~TestService() { shutdown(); }

  ClientConnection connect() {
    return ClientConnection::connect_unix(socket_, 5000 /* retry_ms */);
  }

  /// Sends the shutdown RPC (idempotent) and joins; returns run()'s exit
  /// code, or -1 when the controller failed to start.
  int shutdown() {
    if (thread_.joinable()) {
      try {
        connect().call(ClientMessage(Shutdown{}));
      } catch (...) {
        // Already shut down (or never started); join either way.
      }
      thread_.join();
    }
    EXPECT_EQ(startup_error_, "") << "controller failed to start";
    return exit_code_;
  }

 private:
  std::string socket_;
  std::thread thread_;
  int exit_code_ = -1;
  std::string startup_error_;
};

ControllerOptions thread_mode_options(const std::string& dir) {
  ControllerOptions options;
  options.socket_path = dir + "/osim.sock";
  options.workers = 2;
  options.fork_workers = false;
  return options;
}

// Submits `spec`, waits for the terminal state and fetches the report.
std::string submit_and_fetch(ClientConnection& connection,
                             const ScenarioSpec& spec,
                             SubmitDisposition* disposition = nullptr) {
  const ServerMessage reply =
      connection.call(ClientMessage(SubmitScenario{spec}));
  const auto* submitted = std::get_if<Submitted>(&reply);
  if (submitted == nullptr || submitted->tickets.size() != 1) {
    throw Error("submit was refused");
  }
  const TicketInfo info = submitted->tickets[0];
  if (disposition != nullptr) *disposition = info.disposition;
  const ServerMessage status =
      connection.call(ClientMessage(PollStatus{info.ticket, true}));
  const auto* terminal = std::get_if<StatusReply>(&status);
  if (terminal == nullptr || terminal->state != JobState::kDone) {
    throw Error("scenario did not complete");
  }
  const ServerMessage fetched =
      connection.call(ClientMessage(FetchReport{info.ticket}));
  const auto* report = std::get_if<ReportReply>(&fetched);
  if (report == nullptr) throw Error("fetch was refused");
  return report->report_json;
}

std::string fetch_stats(ClientConnection& connection) {
  const ServerMessage reply =
      connection.call(ClientMessage(ServerStats{}));
  const auto* stats = std::get_if<StatsReply>(&reply);
  EXPECT_NE(stats, nullptr);
  return stats != nullptr ? stats->stats_json : std::string();
}

TEST(Service, SubmitFetchMatchesDirectRun) {
  const std::string dir = fresh_dir("submit");
  const std::string trace_path = write_ring_trace(dir, 4, 3);
  const ScenarioSpec spec = sample_spec(trace_path, 250.0);

  TestService service(thread_mode_options(dir));
  ClientConnection connection = service.connect();
  SubmitDisposition disposition = SubmitDisposition::kServed;
  const std::string via_service =
      submit_and_fetch(connection, spec, &disposition);
  EXPECT_EQ(disposition, SubmitDisposition::kFresh);

  // The service's report must be the byte-identical osim_replay --report
  // document for the same trace and flags.
  const JobOutcome direct = run_job(spec, nullptr);
  ASSERT_TRUE(direct.ok) << direct.error;
  EXPECT_EQ(via_service, direct.report_json);

  // A second submit of the same scenario is answered without a replay.
  SubmitDisposition again = SubmitDisposition::kFresh;
  EXPECT_EQ(submit_and_fetch(connection, spec, &again), via_service);
  EXPECT_EQ(again, SubmitDisposition::kServed);

  EXPECT_EQ(service.shutdown(), kExitOk);
}

TEST(Service, ConcurrentClientsShareOneReplay) {
  const std::string dir = fresh_dir("concurrent");
  const std::string trace_path = write_ring_trace(dir, 4, 4);
  const ScenarioSpec spec = sample_spec(trace_path, 250.0);

  TestService service(thread_mode_options(dir));
  constexpr int kClients = 6;
  std::vector<std::string> reports(kClients);
  std::vector<SubmitDisposition> dispositions(kClients);
  std::atomic<int> failures = 0;
  {
    std::vector<std::thread> threads;
    for (int i = 0; i < kClients; ++i) {
      threads.emplace_back([&, i]() {
        try {
          ClientConnection connection = service.connect();
          reports[i] =
              submit_and_fetch(connection, spec, &dispositions[i]);
        } catch (const std::exception&) {
          ++failures;
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  ASSERT_EQ(failures.load(), 0);

  // Exactly one client paid for the replay; everyone else joined it (in
  // flight) or was served the finished report. All reports byte-identical.
  int fresh = 0;
  for (const SubmitDisposition d : dispositions) {
    if (d == SubmitDisposition::kFresh) ++fresh;
  }
  EXPECT_EQ(fresh, 1);
  for (int i = 1; i < kClients; ++i) {
    EXPECT_EQ(reports[i], reports[0]) << "client " << i;
  }

  ClientConnection connection = service.connect();
  const std::string stats = fetch_stats(connection);
  EXPECT_NE(stats.find("\"replays_completed\":1"), std::string::npos) << stats;
  EXPECT_EQ(service.shutdown(), kExitOk);
}

TEST(Service, MalformedSubmitsAreBadRequests) {
  const std::string dir = fresh_dir("badreq");
  const std::string trace_path = write_ring_trace(dir, 2, 1);

  TestService service(thread_mode_options(dir));
  ClientConnection connection = service.connect();

  // Unreadable trace.
  {
    const ServerMessage reply = connection.call(ClientMessage(
        SubmitScenario{sample_spec(dir + "/missing.trace", 250.0)}));
    const auto* error = std::get_if<ErrorReply>(&reply);
    ASSERT_NE(error, nullptr);
    EXPECT_EQ(error->code, RpcErrorCode::kBadRequest);
  }
  // Unknown option spelling.
  {
    ScenarioSpec spec = sample_spec(trace_path, 250.0);
    spec.collectives = "telepathy";
    const ServerMessage reply =
        connection.call(ClientMessage(SubmitScenario{spec}));
    const auto* error = std::get_if<ErrorReply>(&reply);
    ASSERT_NE(error, nullptr);
    EXPECT_EQ(error->code, RpcErrorCode::kBadRequest);
  }
  // The connection survives both rejections.
  EXPECT_FALSE(submit_and_fetch(connection, sample_spec(trace_path, 250.0))
                   .empty());
  EXPECT_EQ(service.shutdown(), kExitOk);
}

TEST(Service, AdmissionControlRefusesWithBusy) {
  const std::string dir = fresh_dir("busy");
  const std::string trace_path = write_ring_trace(dir, 2, 1);

  ControllerOptions options = thread_mode_options(dir);
  options.max_queue = 0;  // no queue capacity: every fresh submit refused
  TestService service(options);
  ClientConnection connection = service.connect();

  const ServerMessage reply = connection.call(
      ClientMessage(SubmitScenario{sample_spec(trace_path, 250.0)}));
  const auto* error = std::get_if<ErrorReply>(&reply);
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->code, RpcErrorCode::kBusy);

  const std::string stats = fetch_stats(connection);
  EXPECT_NE(stats.find("\"busy_rejects\":1"), std::string::npos) << stats;
  EXPECT_EQ(service.shutdown(), kExitOk);
}

TEST(Service, StudySweepsAndTicketCommands) {
  const std::string dir = fresh_dir("study");
  const std::string trace_path = write_ring_trace(dir, 4, 2);

  TestService service(thread_mode_options(dir));
  ClientConnection connection = service.connect();

  // Unknown tickets answer kNotFound, and the connection survives.
  for (const ClientMessage& message :
       {ClientMessage(PollStatus{fp(1, 2), false}),
        ClientMessage(FetchReport{fp(1, 2)}),
        ClientMessage(Cancel{fp(1, 2)})}) {
    const ServerMessage reply = connection.call(message);
    const auto* error = std::get_if<ErrorReply>(&reply);
    ASSERT_NE(error, nullptr);
    EXPECT_EQ(error->code, RpcErrorCode::kNotFound);
  }

  SubmitStudy study;
  study.base = sample_spec(trace_path, 250.0);
  study.bandwidths = {125.0, 250.0, 500.0};
  const ServerMessage reply = connection.call(ClientMessage(study));
  const auto* submitted = std::get_if<Submitted>(&reply);
  ASSERT_NE(submitted, nullptr);
  ASSERT_EQ(submitted->tickets.size(), 3u);
  EXPECT_FALSE(submitted->tickets[0].ticket == submitted->tickets[1].ticket);

  std::vector<std::string> reports;
  for (const TicketInfo& info : submitted->tickets) {
    const ServerMessage status =
        connection.call(ClientMessage(PollStatus{info.ticket, true}));
    const auto* terminal = std::get_if<StatusReply>(&status);
    ASSERT_NE(terminal, nullptr);
    EXPECT_EQ(terminal->state, JobState::kDone);
    const ServerMessage fetched =
        connection.call(ClientMessage(FetchReport{info.ticket}));
    const auto* report = std::get_if<ReportReply>(&fetched);
    ASSERT_NE(report, nullptr);
    reports.push_back(report->report_json);
  }
  EXPECT_NE(reports[0], reports[1]);  // different bandwidths, different runs

  // Cancelling a finished scenario is a harmless detach: Ok, and the
  // report stays fetchable.
  const ServerMessage cancelled =
      connection.call(ClientMessage(Cancel{submitted->tickets[0].ticket}));
  EXPECT_NE(std::get_if<OkReply>(&cancelled), nullptr);
  const ServerMessage refetched = connection.call(
      ClientMessage(FetchReport{submitted->tickets[0].ticket}));
  EXPECT_NE(std::get_if<ReportReply>(&refetched), nullptr);

  EXPECT_EQ(service.shutdown(), kExitOk);
}

TEST(Service, JournaledRestartServesFromStoreWithoutRecompute) {
  const std::string dir = fresh_dir("journal");
  const std::string trace_path = write_ring_trace(dir, 4, 2);
  const ScenarioSpec spec = sample_spec(trace_path, 250.0);

  ControllerOptions options = thread_mode_options(dir);
  options.cache_dir = dir + "/cache";
  options.journal = true;

  std::string first_report;
  {
    TestService service(options);
    ClientConnection connection = service.connect();
    first_report = submit_and_fetch(connection, spec);
    EXPECT_EQ(service.shutdown(), kExitOk);
  }

  // Same socket, same store: the restarted controller recovers the
  // journal and answers the scenario from the disk tier — disposition
  // kServed on the very first submit, zero replays run.
  {
    TestService service(options);
    ClientConnection connection = service.connect();
    SubmitDisposition disposition = SubmitDisposition::kFresh;
    const std::string report =
        submit_and_fetch(connection, spec, &disposition);
    EXPECT_EQ(disposition, SubmitDisposition::kServed);
    EXPECT_EQ(report, first_report);
    const std::string stats = fetch_stats(connection);
    EXPECT_NE(stats.find("\"replays_completed\":0"), std::string::npos)
        << stats;
    EXPECT_NE(stats.find("\"journal_hits\":1"), std::string::npos) << stats;
    EXPECT_NE(stats.find("\"enabled\":true"), std::string::npos) << stats;
    EXPECT_EQ(service.shutdown(), kExitOk);
  }
}

#ifdef OSIM_SERVE_BIN

// Restores OSIM_CRASH_POINT on scope exit so a failing assertion cannot
// leak the crash point into later tests.
struct CrashPointGuard {
  explicit CrashPointGuard(const char* value) {
    ::setenv("OSIM_CRASH_POINT", value, 1);
  }
  ~CrashPointGuard() { ::unsetenv("OSIM_CRASH_POINT"); }
};

TEST(Service, WorkerSigkillIsRetriedOnAFreshWorker) {
  const std::string dir = fresh_dir("deaths");
  const std::string trace_path = write_ring_trace(dir, 4, 2);

  // Fork-mode workers inherit the environment, and the crash point fires
  // on the *second* job a worker process runs: with one worker and a
  // batch of two, the worker finishes job 1 and is SIGKILLed entering
  // job 2. The controller must reap it, requeue job 2 and answer both.
  CrashPointGuard crash("serve.worker.job:2");
  ControllerOptions options;
  options.socket_path = dir + "/osim.sock";
  options.workers = 1;
  options.max_batch = 2;
  options.fork_workers = true;
  options.serve_binary = OSIM_SERVE_BIN;
  TestService service(options);
  ClientConnection connection = service.connect();

  SubmitStudy study;
  study.base = sample_spec(trace_path, 250.0);
  study.bandwidths = {125.0, 500.0};
  const ServerMessage reply = connection.call(ClientMessage(study));
  const auto* submitted = std::get_if<Submitted>(&reply);
  ASSERT_NE(submitted, nullptr);
  ASSERT_EQ(submitted->tickets.size(), 2u);

  std::uint32_t total_attempts = 0;
  for (const TicketInfo& info : submitted->tickets) {
    const ServerMessage status =
        connection.call(ClientMessage(PollStatus{info.ticket, true}));
    const auto* terminal = std::get_if<StatusReply>(&status);
    ASSERT_NE(terminal, nullptr);
    EXPECT_EQ(terminal->state, JobState::kDone) << terminal->error;
    total_attempts += terminal->attempts;
  }
  // Exactly one job rode through a worker death.
  EXPECT_EQ(total_attempts, 1u);

  const std::string stats = fetch_stats(connection);
  EXPECT_NE(stats.find("\"deaths\":1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"replays_completed\":2"), std::string::npos) << stats;
  EXPECT_EQ(service.shutdown(), kExitOk);
}

#endif  // OSIM_SERVE_BIN

#endif  // __unix__ || __APPLE__

}  // namespace
}  // namespace osim::serve
