// Tests for the six mini-applications: registry plumbing, trace validity,
// determinism, and — most importantly — that each app's measured
// production/consumption patterns fall in the qualitative bands the paper's
// Table II reports for it.
#include <gtest/gtest.h>

#include "analysis/patterns.hpp"
#include "apps/app.hpp"
#include "common/expect.hpp"

namespace osim::apps {
namespace {

AppConfig small_config(const MiniApp& app) {
  AppConfig config;
  config.ranks = 4;
  while (!app.supports_ranks(config.ranks)) ++config.ranks;
  config.iterations = 3;
  return config;
}

TEST(Apps, RegistryHasAllSixPaperApps) {
  const auto& apps = registry();
  ASSERT_EQ(apps.size(), 6u);
  for (const char* name :
       {"sweep3d", "pop", "alya", "specfem3d", "nas_bt", "nas_cg"}) {
    EXPECT_NE(find_app(name), nullptr) << name;
  }
  EXPECT_EQ(find_app("unknown"), nullptr);
}

TEST(Apps, PaperBusCountsMatchTableI) {
  EXPECT_EQ(find_app("sweep3d")->paper_buses(), 12);
  EXPECT_EQ(find_app("pop")->paper_buses(), 12);
  EXPECT_EQ(find_app("alya")->paper_buses(), 11);
  EXPECT_EQ(find_app("specfem3d")->paper_buses(), 8);
  EXPECT_EQ(find_app("nas_bt")->paper_buses(), 22);
  EXPECT_EQ(find_app("nas_cg")->paper_buses(), 6);
}

TEST(Apps, UnsupportedRankCountThrows) {
  const MiniApp* cg = find_app("nas_cg");
  AppConfig config;
  config.ranks = 3;  // nas_cg needs even ranks
  EXPECT_THROW(trace_app(*cg, config), Error);
}

TEST(Apps, ZeroIterationsThrows) {
  const MiniApp* pop = find_app("pop");
  AppConfig config;
  config.ranks = 4;
  config.iterations = 0;
  EXPECT_THROW(trace_app(*pop, config), Error);
}

class EveryApp : public ::testing::TestWithParam<const MiniApp*> {};

TEST_P(EveryApp, TracesValidate) {
  const MiniApp& app = *GetParam();
  const tracer::TracedRun run = trace_app(app, small_config(app));
  EXPECT_NO_THROW(trace::validate(run.annotated));
  EXPECT_EQ(run.annotated.app, app.name());
  // Every rank did something.
  for (const auto& rank : run.annotated.ranks) {
    EXPECT_FALSE(rank.events.empty());
    EXPECT_GT(rank.final_vclock, 0u);
  }
}

TEST_P(EveryApp, Deterministic) {
  const MiniApp& app = *GetParam();
  const tracer::TracedRun a = trace_app(app, small_config(app));
  const tracer::TracedRun b = trace_app(app, small_config(app));
  for (std::size_t r = 0; r < a.annotated.ranks.size(); ++r) {
    EXPECT_EQ(a.annotated.ranks[r].final_vclock,
              b.annotated.ranks[r].final_vclock);
    ASSERT_EQ(a.annotated.ranks[r].events.size(),
              b.annotated.ranks[r].events.size());
  }
}

TEST_P(EveryApp, PatternBufferExists) {
  const MiniApp& app = *GetParam();
  if (app.pattern_buffer().empty()) return;
  const tracer::TracedRun run = trace_app(app, small_config(app));
  EXPECT_GE(run.find_buffer(0, app.pattern_buffer()), 0)
      << app.pattern_buffer();
}

TEST_P(EveryApp, ScaleKnobGrowsTheProblem) {
  const MiniApp& app = *GetParam();
  AppConfig small = small_config(app);
  AppConfig big = small;
  big.scale = 2;
  const auto a = trace_app(app, small);
  const auto b = trace_app(app, big);
  // A larger problem means more virtual work and bigger messages.
  EXPECT_GT(b.annotated.ranks[0].final_vclock,
            a.annotated.ranks[0].final_vclock);
  // Message volume grows with the problem for apps with multi-element
  // messages (Alya's one-element coupling scalars stay one element).
  std::uint64_t bytes_small = 0;
  std::uint64_t bytes_big = 0;
  bool has_chunkable = false;
  for (const auto& ev : a.annotated.ranks[0].events) {
    bytes_small += ev.bytes;
    has_chunkable |= ev.chunkable;
  }
  for (const auto& ev : b.annotated.ranks[0].events) bytes_big += ev.bytes;
  if (has_chunkable) {
    EXPECT_GT(bytes_big, bytes_small);
  } else {
    EXPECT_EQ(bytes_big, bytes_small);
  }
}

TEST_P(EveryApp, ScalesWithIterations) {
  const MiniApp& app = *GetParam();
  AppConfig short_run = small_config(app);
  AppConfig long_run = short_run;
  long_run.iterations = 6;
  const auto a = trace_app(app, short_run);
  const auto b = trace_app(app, long_run);
  EXPECT_GT(b.annotated.ranks[0].final_vclock,
            a.annotated.ranks[0].final_vclock);
  EXPECT_GT(b.annotated.ranks[0].events.size(),
            a.annotated.ranks[0].events.size());
}

INSTANTIATE_TEST_SUITE_P(
    All, EveryApp, ::testing::ValuesIn(registry()),
    [](const ::testing::TestParamInfo<const MiniApp*>& info) {
      return info.param->name();
    });

// --- Table II qualitative bands per application --------------------------------

struct PatternCase {
  const char* app;
  // production bands (fractions)
  double first_min, first_max;
  double whole_min;
  // consumption bands
  double nothing_min, nothing_max;
};

class PatternBands : public ::testing::TestWithParam<PatternCase> {};

TEST_P(PatternBands, MatchesPaperBand) {
  const PatternCase& expected = GetParam();
  const MiniApp& app = *find_app(expected.app);
  AppConfig config;
  config.ranks = 8;
  config.iterations = 5;
  const tracer::TracedRun run = trace_app(app, config);

  const auto prod = analysis::production_stats(run.annotated);
  const auto cons = analysis::consumption_stats(run.annotated);
  ASSERT_GT(prod.messages, 0u) << "no chunkable sends traced";
  ASSERT_GT(cons.messages, 0u);

  EXPECT_GE(prod.first_element, expected.first_min);
  EXPECT_LE(prod.first_element, expected.first_max);
  EXPECT_GE(prod.whole, expected.whole_min);
  EXPECT_LE(prod.whole, 1.0 + 1e-9);
  // Production statistics are monotone in the portion.
  EXPECT_LE(prod.first_element, prod.quarter + 1e-9);
  EXPECT_LE(prod.quarter, prod.half + 1e-9);
  EXPECT_LE(prod.half, prod.whole + 1e-9);

  EXPECT_GE(cons.nothing, expected.nothing_min);
  EXPECT_LE(cons.nothing, expected.nothing_max);
  EXPECT_LE(cons.nothing, cons.quarter + 1e-9);
  EXPECT_LE(cons.quarter, cons.half + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    TableII, PatternBands,
    ::testing::Values(
        // paper: 66.3 / ... / 99.8 production; ~0 consumption
        PatternCase{"sweep3d", 0.55, 0.90, 0.97, 0.0, 0.02},
        // paper: 95.5 production; 3.5% consumption (independent work)
        PatternCase{"pop", 0.90, 0.99, 0.99, 0.02, 0.08},
        // paper: 95.3 production; ~0 consumption
        PatternCase{"specfem3d", 0.90, 0.99, 0.98, 0.0, 0.02},
        // paper: 99.1 production; 13.7% consumption
        PatternCase{"nas_bt", 0.97, 1.0, 0.99, 0.10, 0.18},
        // paper: ~4% production (linear); ~2% consumption
        PatternCase{"nas_cg", 0.0, 0.10, 0.95, 0.0, 0.05}),
    [](const ::testing::TestParamInfo<PatternCase>& info) {
      return std::string(info.param.app);
    });

TEST(PatternBands, AlyaIsUnchunkable) {
  // The paper: Alya's one-element reduction payloads "cannot be chunked
  // into partial ones"; its tracked point-to-point scalars are produced at
  // the very end of the phase and consumed immediately.
  const MiniApp& app = *find_app("alya");
  AppConfig config;
  config.ranks = 8;
  config.iterations = 5;
  const tracer::TracedRun run = trace_app(app, config);
  const auto prod = analysis::production_stats(run.annotated);
  const auto cons = analysis::consumption_stats(run.annotated);
  EXPECT_EQ(prod.messages, 0u);  // nothing chunkable
  EXPECT_GT(prod.unchunkable_messages, 0u);
  EXPECT_GT(prod.unchunkable_whole, 0.95);
  EXPECT_EQ(cons.messages, 0u);
  EXPECT_GT(cons.unchunkable_messages, 0u);
  EXPECT_LT(cons.unchunkable_nothing, 0.05);
}

TEST(PatternBands, AlyaDominatedByCollectives) {
  const MiniApp& app = *find_app("alya");
  AppConfig config;
  config.ranks = 4;
  config.iterations = 3;
  const tracer::TracedRun run = trace_app(app, config);
  std::size_t collectives = 0;
  std::size_t p2p = 0;
  for (const auto& ev : run.annotated.ranks[0].events) {
    if (ev.kind == trace::AnnEvent::Kind::kGlobalOp) {
      ++collectives;
    } else if (ev.kind != trace::AnnEvent::Kind::kWait) {
      ++p2p;
    }
  }
  EXPECT_GT(collectives, p2p);
}

TEST(PatternBands, BtConsumesInFourPasses) {
  // Figure 5(b): the received face is loaded exactly four times per
  // element per iteration.
  const MiniApp& app = *find_app("nas_bt");
  AppConfig config;
  config.ranks = 4;
  config.iterations = 2;
  tracer::TracerOptions options;
  options.record_access_log = true;
  const tracer::TracedRun run = trace_app(app, config, options);
  const std::int64_t buffer = run.find_buffer(0, "face_in");
  ASSERT_GE(buffer, 0);
  std::size_t loads_of_element0 = 0;
  for (const auto& sample : run.access_logs[0]) {
    if (sample.buffer == buffer && !sample.is_store &&
        sample.element == 0 && sample.interval == 1) {
      ++loads_of_element0;
    }
  }
  EXPECT_EQ(loads_of_element0, 4u);
}

}  // namespace
}  // namespace osim::apps
