// Tests for the analysis module: Table II pattern statistics, Figure 5
// scatter extraction, speedup evaluation, bandwidth searches and Table I
// bus calibration — on hand-built annotated traces with known answers.
#include <gtest/gtest.h>

#include "analysis/bandwidth.hpp"
#include "analysis/calibrate.hpp"
#include "analysis/patterns.hpp"
#include "analysis/sancho.hpp"
#include "analysis/speedup.hpp"
#include "analysis/whatif.hpp"
#include "common/expect.hpp"
#include "overlap/transform.hpp"
#include "pipeline/context.hpp"
#include "pipeline/study.hpp"

namespace osim::analysis {
namespace {

using trace::AnnEvent;
using trace::AnnotatedTrace;
using trace::kNeverAccessed;

AnnotatedTrace linear_producer() {
  // One send of 8 elements over interval [0, 800]; element i final at
  // 100*(i+1). Expected: first 12.5%, quarter 25%, half 50%, whole 100%.
  AnnotatedTrace t = AnnotatedTrace::make(2, 1000.0);
  AnnEvent send;
  send.kind = AnnEvent::Kind::kSend;
  send.vclock = 800;
  send.peer = 1;
  send.tag = 0;
  send.elem_bytes = 8;
  send.bytes = 64;
  send.buffer_id = 0;
  send.chunkable = true;
  send.interval_start = 0;
  send.elem_last_store.resize(8);
  for (std::size_t i = 0; i < 8; ++i) {
    send.elem_last_store[i] = 100 * (i + 1);
  }
  t.ranks[0].events.push_back(send);
  t.ranks[0].final_vclock = 800;

  AnnEvent recv;
  recv.kind = AnnEvent::Kind::kRecv;
  recv.vclock = 0;
  recv.peer = 0;
  recv.tag = 0;
  recv.elem_bytes = 8;
  recv.bytes = 64;
  recv.buffer_id = 0;
  recv.chunkable = true;
  recv.interval_end = 800;
  recv.elem_first_load.resize(8);
  for (std::size_t i = 0; i < 8; ++i) {
    recv.elem_first_load[i] = 100 * i;  // element i first needed at 100*i
  }
  t.ranks[1].events.push_back(recv);
  t.ranks[1].final_vclock = 800;
  return t;
}

TEST(Patterns, ProductionStatsLinear) {
  const ProductionStats stats = production_stats(linear_producer());
  EXPECT_EQ(stats.messages, 1u);
  EXPECT_NEAR(stats.first_element, 0.125, 1e-12);
  EXPECT_NEAR(stats.quarter, 0.25, 1e-12);  // 2 of 8 elements final at 200
  EXPECT_NEAR(stats.half, 0.5, 1e-12);
  EXPECT_NEAR(stats.whole, 1.0, 1e-12);
}

TEST(Patterns, ConsumptionStatsLinear) {
  const ConsumptionStats stats = consumption_stats(linear_producer());
  EXPECT_EQ(stats.messages, 1u);
  EXPECT_NEAR(stats.nothing, 0.0, 1e-12);
  // With the first quarter (elements 0,1) received, progress runs until
  // element 2 is needed at 200/800.
  EXPECT_NEAR(stats.quarter, 0.25, 1e-12);
  EXPECT_NEAR(stats.half, 0.5, 1e-12);
}

TEST(Patterns, NeverStoredCountsAsImmediatelyFinal) {
  AnnotatedTrace t = linear_producer();
  t.ranks[0].events[0].elem_last_store.assign(8, kNeverAccessed);
  const ProductionStats stats = production_stats(t);
  EXPECT_NEAR(stats.first_element, 0.0, 1e-12);
  EXPECT_NEAR(stats.whole, 0.0, 1e-12);
}

TEST(Patterns, NeverLoadedAllowsFullPostponement) {
  AnnotatedTrace t = linear_producer();
  t.ranks[1].events[0].elem_first_load.assign(8, kNeverAccessed);
  const ConsumptionStats stats = consumption_stats(t);
  EXPECT_NEAR(stats.nothing, 1.0, 1e-12);
}

TEST(Patterns, UnchunkableSingleElement) {
  AnnotatedTrace t = AnnotatedTrace::make(2, 1000.0);
  AnnEvent send;
  send.kind = AnnEvent::Kind::kSend;
  send.vclock = 1000;
  send.peer = 1;
  send.elem_bytes = 8;
  send.bytes = 8;
  send.buffer_id = 0;
  send.chunkable = false;
  send.interval_start = 0;
  send.elem_last_store = {990};
  t.ranks[0].events.push_back(send);
  t.ranks[0].final_vclock = 1000;
  const ProductionStats stats = production_stats(t);
  EXPECT_EQ(stats.messages, 0u);
  EXPECT_EQ(stats.unchunkable_messages, 1u);
  EXPECT_NEAR(stats.unchunkable_whole, 0.99, 1e-12);
}

TEST(Patterns, DegenerateIntervalSkipped) {
  AnnotatedTrace t = linear_producer();
  t.ranks[0].events[0].interval_start = 800;  // zero-length interval
  t.ranks[0].events[0].elem_last_store.assign(8, 800);
  const ProductionStats stats = production_stats(t);
  EXPECT_EQ(stats.messages, 0u);
}

// --- scatter ----------------------------------------------------------------

TEST(Patterns, ScatterNormalizesWithinIntervals) {
  const AnnotatedTrace t = linear_producer();
  std::vector<tracer::AccessSample> log;
  log.push_back(tracer::AccessSample{0, 3, 0, 400, true});   // store
  log.push_back(tracer::AccessSample{0, 7, 0, 800, true});   // store at end
  log.push_back(tracer::AccessSample{0, 1, 5, 100, true});   // bad interval
  log.push_back(tracer::AccessSample{1, 1, 0, 100, true});   // other buffer
  const auto points = production_scatter(t, log, 0, 0);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_NEAR(points[0].time_frac, 0.5, 1e-12);
  EXPECT_NEAR(points[0].element_frac, 3.0 / 8.0, 1e-12);
  EXPECT_NEAR(points[1].time_frac, 1.0, 1e-12);
}

TEST(Patterns, RenderScatterShowsPoints) {
  std::vector<ScatterPoint> points{{0.0, 0.0}, {1.0, 1.0}, {0.5, 0.5}};
  const std::string plot = render_scatter(points, "test plot", 20, 6);
  EXPECT_NE(plot.find("test plot"), std::string::npos);
  EXPECT_NE(plot.find('*'), std::string::npos);
}

// --- speedup / bandwidth / calibration ------------------------------------------

dimemas::Platform small_platform(std::int32_t nodes) {
  dimemas::Platform p;
  p.num_nodes = nodes;
  p.bandwidth_MBps = 100.0;
  p.latency_us = 10.0;
  p.num_buses = 0;
  return p;
}

AnnotatedTrace overlap_friendly() {
  // Producer writes linearly over a long burst, sends 200 KB; receiver
  // needs data late. Overlap should clearly pay off.
  AnnotatedTrace t = AnnotatedTrace::make(2, 1000.0);
  AnnEvent send;
  send.kind = AnnEvent::Kind::kSend;
  send.vclock = 2'000'000;  // 2 ms of production
  send.peer = 1;
  send.tag = 0;
  send.elem_bytes = 1000;
  send.bytes = 200'000;
  send.buffer_id = 0;
  send.chunkable = true;
  send.interval_start = 0;
  send.elem_last_store.resize(200);
  for (std::size_t i = 0; i < 200; ++i) {
    send.elem_last_store[i] = 10'000 * (i + 1);
  }
  t.ranks[0].events.push_back(send);
  t.ranks[0].final_vclock = 2'000'000;

  AnnEvent recv;
  recv.kind = AnnEvent::Kind::kRecv;
  recv.vclock = 0;
  recv.peer = 0;
  recv.tag = 0;
  recv.elem_bytes = 1000;
  recv.bytes = 200'000;
  recv.buffer_id = 0;
  recv.chunkable = true;
  recv.interval_end = 2'000'000;
  recv.elem_first_load.resize(200);
  for (std::size_t i = 0; i < 200; ++i) {
    recv.elem_first_load[i] = 10'000 * i;
  }
  t.ranks[1].events.push_back(recv);
  t.ranks[1].final_vclock = 2'000'000;
  return t;
}

TEST(Speedup, OverlapHelpsFriendlyPattern) {
  pipeline::Study study;
  const OverlapOutcome outcome =
      evaluate_overlap(study, overlap_friendly(), small_platform(2));
  EXPECT_GT(outcome.speedup_real(), 1.1);
  EXPECT_GT(outcome.speedup_ideal(), 1.1);
  EXPECT_GT(outcome.t_original, outcome.t_overlapped_real);
}

TEST(Bandwidth, TimeAtBandwidthMonotone) {
  pipeline::Study study;
  const pipeline::ReplayContext original(
      overlap::lower_original(overlap_friendly()), small_platform(2));
  const double slow = time_at_bandwidth(study, original, 10.0);
  const double mid = time_at_bandwidth(study, original, 100.0);
  const double fast = time_at_bandwidth(study, original, 1000.0);
  EXPECT_GT(slow, mid);
  EXPECT_GE(mid, fast);
}

TEST(Bandwidth, MinBandwidthBisection) {
  pipeline::Study study;
  const pipeline::ReplayContext original(
      overlap::lower_original(overlap_friendly()), small_platform(2));
  const double target = time_at_bandwidth(study, original, 50.0);
  const auto bw = min_bandwidth_for(study, original, target);
  ASSERT_TRUE(bw.has_value());
  // The found bandwidth must achieve the target, and ~half of it must not.
  EXPECT_LE(time_at_bandwidth(study, original, *bw), target * (1 + 1e-9));
  EXPECT_GT(time_at_bandwidth(study, original, *bw * 0.5), target);
  EXPECT_NEAR(*bw, 50.0, 2.0);
}

TEST(Bandwidth, UnreachableTargetReturnsNullopt) {
  pipeline::Study study;
  const pipeline::ReplayContext original(
      overlap::lower_original(overlap_friendly()), small_platform(2));
  // Faster than pure compute: impossible at any bandwidth.
  EXPECT_FALSE(min_bandwidth_for(study, original, 1e-9).has_value());
}

TEST(Bandwidth, RelaxedBandwidthBelowNominal) {
  const AnnotatedTrace t = overlap_friendly();
  pipeline::Study study;
  const pipeline::ReplayContext original(overlap::lower_original(t),
                                         small_platform(2));
  const pipeline::ReplayContext overlapped(overlap::transform(t, {}),
                                           small_platform(2));
  const auto bw = relaxed_bandwidth(study, original, overlapped);
  ASSERT_TRUE(bw.has_value());
  EXPECT_LT(*bw, 100.0);  // overlap lets the network slow down
}

TEST(Bandwidth, EquivalentBandwidthAboveNominal) {
  const AnnotatedTrace t = overlap_friendly();
  pipeline::Study study;
  const pipeline::ReplayContext original(overlap::lower_original(t),
                                         small_platform(2));
  const pipeline::ReplayContext overlapped(overlap::transform(t, {}),
                                           small_platform(2));
  const auto bw = equivalent_bandwidth(study, original, overlapped);
  // Either finite and above nominal, or unreachable (both demonstrate the
  // paper's point); with this trace the original can never fully catch up
  // because the overlapped run hides transfer behind production.
  if (bw.has_value()) {
    EXPECT_GT(*bw, 100.0);
  }
}

TEST(Calibrate, FindsMatchingBusCount) {
  // Build a congestion-heavy workload and check the calibration brackets
  // the reference time tightly.
  trace::TraceBuilder b(8, 1000.0);
  for (trace::Rank r = 0; r < 8; ++r) {
    b.global(r, trace::CollectiveKind::kAlltoall, 0, 100'000, 0);
    b.compute(r, 10'000);
    b.global(r, trace::CollectiveKind::kAlltoall, 0, 100'000, 1);
  }
  dimemas::Platform reference = small_platform(8);
  reference.model = dimemas::NetworkModelKind::kFairShare;
  reference.fabric_capacity_links = 3.0;
  pipeline::Study study;
  const pipeline::ReplayContext bus_context(std::move(b).build(),
                                            small_platform(8));
  const BusCalibration calibration =
      calibrate_buses(study, bus_context, reference);
  EXPECT_GE(calibration.buses, 1);
  EXPECT_LE(calibration.buses, 8);
  EXPECT_LT(calibration.relative_error, 0.35);
  EXPECT_GT(calibration.reference_time, 0.0);
}

TEST(Calibrate, RequiresFairShareReference) {
  trace::TraceBuilder b(2, 1000.0);
  b.compute(0, 1);
  pipeline::Study study;
  const pipeline::ReplayContext bus_context(std::move(b).build(),
                                            small_platform(2));
  EXPECT_DEATH(calibrate_buses(study, bus_context, small_platform(2)),
               "kFairShare");
}

// --- per-buffer pattern report -------------------------------------------------

TEST(Patterns, BufferReportGroupsByName) {
  // Two ranks exchange through buffers named "a" (chunkable) and a scalar
  // "s" (unchunkable); the report must produce one row per name with the
  // right message counts.
  const tracer::TracedRun run = tracer::run_traced(
      2, {}, "buffers", [](tracer::Process& p) {
        auto a = p.make_buffer<double>(8, "a");
        auto s = p.make_buffer<double>(1, "s");
        const int partner = 1 - p.rank();
        for (int iter = 0; iter < 3; ++iter) {
          for (std::size_t i = 0; i < 8; ++i) {
            a[i] = static_cast<double>(i + iter);
          }
          s[0] = 1.0;
          p.compute(1000);
          if (p.rank() == 0) {
            p.send(a, partner, 0);
            p.send(s, partner, 1);
          } else {
            p.recv(a, partner, 0);
            p.recv(s, partner, 1);
            double sum = 0.0;
            for (std::size_t i = 0; i < 8; ++i) sum += a.load(i);
            OSIM_CHECK(sum > 0.0);
          }
        }
      });
  const auto rows = buffer_pattern_report(run);
  ASSERT_EQ(rows.size(), 2u);
  const auto find = [&](const std::string& name) {
    for (const auto& row : rows) {
      if (row.buffer == name) return &row;
    }
    return static_cast<const BufferPatternRow*>(nullptr);
  };
  const auto* a = find("a");
  const auto* s = find("s");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(s, nullptr);
  EXPECT_GT(a->production.messages, 0u);
  EXPECT_GT(a->consumption.messages, 0u);
  EXPECT_EQ(s->production.messages, 0u);
  EXPECT_GT(s->production.unchunkable_messages, 0u);
}

// --- Sancho'06 analytic baseline ------------------------------------------------

TEST(Sancho, AnalyticModelOnKnownTrace) {
  // One rank computes 1 ms and sends 1 MB (10 ms at 100 MB/s + 10 us);
  // the peer only receives. Critical rank: comp 1 ms, comm ~10.01 ms.
  trace::TraceBuilder b(2, 1000.0);
  b.compute(0, 1'000'000).send(0, 1, 0, 1'000'000);
  b.recv(1, 0, 0, 1'000'000);
  const SanchoEstimate est = sancho_estimate(
      pipeline::ReplayContext(std::move(b).build(), small_platform(2)));
  EXPECT_NEAR(est.t_compute_s, 1e-3, 1e-12);
  EXPECT_NEAR(est.t_comm_s, 0.01 + 10e-6, 1e-9);
  EXPECT_NEAR(est.t_original_est, est.t_compute_s + est.t_comm_s, 1e-12);
  EXPECT_NEAR(est.t_overlap_bound, est.t_comm_s, 1e-12);
  EXPECT_LE(est.speedup_bound(), 2.0 + 1e-12);
  EXPECT_GT(est.speedup_bound(), 1.0);
}

TEST(Sancho, BalancedPhasesGiveBoundOfTwo) {
  // comp == comm: the classical maximum speedup of two.
  trace::TraceBuilder b(2, 1000.0);
  b.compute(0, 1'000'000).send(0, 1, 0, 99'000);  // 0.99ms + 10us = 1 ms
  b.recv(1, 0, 0, 99'000);
  const SanchoEstimate est = sancho_estimate(
      pipeline::ReplayContext(std::move(b).build(), small_platform(2)));
  EXPECT_NEAR(est.speedup_bound(), 2.0, 0.01);
}

TEST(Sancho, CountsCollectiveVolume) {
  trace::TraceBuilder b(4, 1000.0);
  for (trace::Rank r = 0; r < 4; ++r) {
    b.compute(r, 1000).global(r, trace::CollectiveKind::kAlltoall, 0,
                              10'000, 0);
  }
  const SanchoEstimate est = sancho_estimate(
      pipeline::ReplayContext(std::move(b).build(), small_platform(4)));
  // Each rank sends 3 blocks of 10 KB in the expansion.
  EXPECT_GT(est.t_comm_s, 3 * 10'000 / 100e6);
}

TEST(Sancho, ComputeOnlyBoundIsOne) {
  trace::TraceBuilder b(1, 1000.0);
  b.compute(0, 1'000'000);
  const SanchoEstimate est = sancho_estimate(
      pipeline::ReplayContext(std::move(b).build(), small_platform(1)));
  EXPECT_NEAR(est.speedup_bound(), 1.0, 1e-12);
}

// --- what-if network breakdown ----------------------------------------------

TEST(WhatIf, IdealNetworkIsLowerEnvelope) {
  pipeline::Study study;
  const WhatIfBreakdown b = whatif_network(
      study,
      pipeline::ReplayContext(overlap::lower_original(overlap_friendly()),
                              small_platform(2)));
  EXPECT_GT(b.t_nominal, 0.0);
  EXPECT_LE(b.t_zero_latency, b.t_nominal + 1e-12);
  EXPECT_LE(b.t_infinite_bandwidth, b.t_nominal + 1e-12);
  EXPECT_LE(b.t_ideal_network, b.t_zero_latency + 1e-12);
  EXPECT_LE(b.t_ideal_network, b.t_infinite_bandwidth + 1e-12);
  EXPECT_LE(b.t_ideal_network, b.t_no_contention + 1e-12);
}

TEST(WhatIf, SensitivitiesInRange) {
  pipeline::Study study;
  const WhatIfBreakdown b = whatif_network(
      study,
      pipeline::ReplayContext(overlap::lower_original(overlap_friendly()),
                              small_platform(2)));
  for (const double s :
       {b.latency_sensitivity(), b.bandwidth_sensitivity(),
        b.contention_sensitivity(), b.network_bound_share()}) {
    EXPECT_GE(s, -1e-9);
    EXPECT_LE(s, 1.0 + 1e-9);
  }
  // The friendly trace is dominated by a 200 KB transfer: bandwidth is the
  // main sensitivity.
  EXPECT_GT(b.bandwidth_sensitivity(), b.latency_sensitivity());
}

TEST(WhatIf, ComputeOnlyTraceIsInsensitive) {
  trace::TraceBuilder tb(2, 1000.0);
  tb.compute(0, 100'000).compute(1, 100'000);
  pipeline::Study study;
  const WhatIfBreakdown b = whatif_network(
      study,
      pipeline::ReplayContext(std::move(tb).build(), small_platform(2)));
  EXPECT_NEAR(b.network_bound_share(), 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(b.t_nominal, b.t_ideal_network);
}

}  // namespace
}  // namespace osim::analysis
