// Replay-identity gate for the hot-path optimizations.
//
// The calendar queue, arena allocation, SoA record streams and mmap trace
// ingestion are pure performance work: results must stay bit-identical to
// the pre-optimization tree. tests/golden/perf_identity.golden was
// generated from that tree with tests/identity_lines.hpp; these tests
// regenerate the lines — serial, at --jobs 8, and through a cold and a
// warm disk cache — and require an exact match. A separate fuzz case
// hammers the mmap salvage path with corrupted binary traces.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "identity_lines.hpp"
#include "trace/binary_io.hpp"
#include "trace/io.hpp"
#include "trace/trace.hpp"

namespace osim {
namespace {

std::vector<std::string> golden_lines() {
  const std::string path = std::string(OSIM_GOLDEN_DIR) +
                           "/perf_identity.golden";
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "missing golden file: " << path;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

void expect_matches_golden(const std::vector<std::string>& lines) {
  const std::vector<std::string> golden = golden_lines();
  ASSERT_EQ(lines.size(), golden.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(lines[i], golden[i]) << "line " << i;
  }
}

TEST(PerfIdentity, SerialMatchesSeedGolden) {
  pipeline::Study study;
  expect_matches_golden(identity::identity_lines(study));
}

TEST(PerfIdentity, ParallelJobsMatchSeedGolden) {
  pipeline::StudyOptions options;
  options.jobs = 8;
  pipeline::Study study(options);
  expect_matches_golden(identity::identity_lines(study));
}

TEST(PerfIdentity, ColdAndWarmDiskCacheMatchSeedGolden) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("osim_perf_identity_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  pipeline::StudyOptions options;
  options.cache_dir = dir.string();

  // Summary makespans (the store's cacheable level) for every app/variant,
  // cold then warm, must agree bit for bit with the full-result replays
  // the golden lines were computed from.
  std::vector<double> cold;
  {
    pipeline::Study study(options);
    for (const apps::MiniApp* app : apps::registry()) {
      const tracer::TracedRun traced =
          apps::trace_app(*app, identity::identity_config(*app), {});
      for (const pipeline::ReplayContext& context :
           identity::identity_contexts(*app, traced)) {
        cold.push_back(study.makespan(context));
      }
    }
    EXPECT_EQ(study.disk_hits(), 0u);
  }
  std::vector<double> warm;
  std::size_t disk_hits = 0;
  {
    pipeline::Study study(options);
    for (const apps::MiniApp* app : apps::registry()) {
      const tracer::TracedRun traced =
          apps::trace_app(*app, identity::identity_config(*app), {});
      for (const pipeline::ReplayContext& context :
           identity::identity_contexts(*app, traced)) {
        warm.push_back(study.makespan(context));
      }
    }
    disk_hits = study.disk_hits();
  }
  std::filesystem::remove_all(dir);
  ASSERT_EQ(cold.size(), warm.size());
  EXPECT_GT(disk_hits, 0u);
  for (std::size_t i = 0; i < cold.size(); ++i) {
    EXPECT_EQ(cold[i], warm[i]) << "scenario " << i;
  }

  // Cross-check against the golden makespans: line order is
  // (app x variant) with a report line after each app's three variants.
  const std::vector<std::string> golden = golden_lines();
  std::vector<double> golden_makespans;
  for (const std::string& line : golden) {
    const std::size_t at = line.find("makespan=");
    if (at == std::string::npos) continue;
    golden_makespans.push_back(
        std::strtod(line.c_str() + at + sizeof("makespan=") - 1, nullptr));
  }
  ASSERT_EQ(golden_makespans.size(), cold.size());
  for (std::size_t i = 0; i < cold.size(); ++i) {
    EXPECT_EQ(cold[i], golden_makespans[i]) << "scenario " << i;
  }
}

// --- mmap salvage fuzz ---------------------------------------------------

trace::Trace fuzz_subject() {
  trace::TraceBuilder b(4, 1000.0, "fuzz");
  for (trace::Rank r = 0; r < 4; ++r) {
    b.compute(r, 5'000);
    const trace::Rank peer = static_cast<trace::Rank>(r ^ 1);
    b.isend(r, peer, 7, 64 * 1024, r * 10 + 1);
    b.irecv(r, peer, 7, 64 * 1024, r * 10 + 2);
    b.wait(r, {r * 10 + 1, r * 10 + 2});
    b.compute(r, 2'000);
  }
  return std::move(b).build();
}

TEST(PerfIdentity, MmapOfCorruptedTraceNeverCrashes) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("osim_mmap_fuzz_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string clean_path = (dir / "clean.trace").string();
  trace::write_binary_file(fuzz_subject(), clean_path);

  std::ifstream in(clean_path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string clean = buf.str();
  ASSERT_GT(clean.size(), 32u);

  // The clean file round-trips bit-exact through the mmap reader.
  {
    const trace::RecoveredTrace recovered =
        trace::read_any_file_recover(clean_path);
    EXPECT_TRUE(recovered.damage.clean())
        << recovered.damage.render_text();
    EXPECT_EQ(trace::write_text(recovered.trace),
              trace::write_text(fuzz_subject()));
  }

  const std::string fuzz_path = (dir / "fuzz.trace").string();
  const auto write_bytes = [&](const std::string& bytes) {
    std::ofstream out(fuzz_path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  };

  // Single-byte flips at every offset: the salvage reader must return a
  // result (possibly empty) and never crash or throw. A flip inside a rank
  // stream must be caught — by the parser or by the CRC footer.
  std::mt19937 rng(7);
  for (std::size_t offset = 0; offset < clean.size(); ++offset) {
    std::string damaged = clean;
    damaged[offset] =
        static_cast<char>(damaged[offset] ^ (1 + rng() % 255));
    write_bytes(damaged);
    const trace::RecoveredTrace recovered =
        trace::read_any_file_recover(fuzz_path);
    (void)recovered;
  }

  // Truncations at every length, including zero.
  for (std::size_t len = 0; len < clean.size(); ++len) {
    write_bytes(clean.substr(0, len));
    const trace::RecoveredTrace recovered =
        trace::read_any_file_recover(fuzz_path);
    (void)recovered;
  }

  // A flip strictly inside a rank stream (past the header, before the
  // footer) must be reported as damage, not silently accepted.
  const std::size_t header = 8 + 8 + 1 + 1 + 4;  // magic+mips+ranks+len+app
  const std::size_t footer = clean.size() - (8 + 4 * 4);
  std::size_t reported = 0;
  std::size_t stream_flips = 0;
  for (std::size_t offset = header; offset < footer; ++offset) {
    std::string damaged = clean;
    damaged[offset] = static_cast<char>(damaged[offset] ^ 0x40);
    write_bytes(damaged);
    ++stream_flips;
    const trace::RecoveredTrace recovered =
        trace::read_any_file_recover(fuzz_path);
    if (!recovered.damage.clean()) ++reported;
  }
  // The CRC footer catches byte flips that still parse; close to every
  // stream flip must surface (a flip can only go unreported by colliding
  // CRC32, which a 0x40 single-bit flip cannot).
  EXPECT_EQ(reported, stream_flips);

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace osim
