// Tests for the supervision primitives: the write-ahead study journal
// (format strictness, torn-record salvage, the complete marker and gc),
// CancelToken semantics, and — via gtest death tests — the crash-point
// fuzzer proving that a SIGKILL at any publication point leaves either a
// valid object/record or a clean miss, never a torn read.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/cancel.hpp"
#include "common/crash_point.hpp"
#include "pipeline/fingerprint.hpp"
#include "store/format.hpp"
#include "store/store.hpp"
#include "supervise/journal.hpp"

namespace osim::supervise {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/osim_supervise_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

pipeline::Fingerprint fp(std::uint64_t lo, std::uint64_t hi) {
  return pipeline::Fingerprint{lo, hi};
}

JournalEntry sample_entry(int seed, ScenarioStatus status = ScenarioStatus::kOk) {
  JournalEntry e;
  e.fingerprint = fp(100 + static_cast<std::uint64_t>(seed),
                     200 + static_cast<std::uint64_t>(seed));
  e.status = status;
  e.makespan = 1.5 + 0.25 * seed;
  e.fault_wait_s = 0.125 * seed;
  e.progress_wait_s = 0.0625 * seed;
  e.partial_blocked_s = status == ScenarioStatus::kOk ? 0.0 : 0.5 * seed;
  e.fault_counts.enabled = seed % 2 != 0;
  e.fault_counts.seed = static_cast<std::uint64_t>(seed);
  e.fault_counts.retransmits = static_cast<std::uint64_t>(3 * seed);
  return e;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// --- status names and study fingerprints ------------------------------------

TEST(ScenarioStatusName, StableWireNames) {
  EXPECT_STREQ(scenario_status_name(ScenarioStatus::kOk), "ok");
  EXPECT_STREQ(scenario_status_name(ScenarioStatus::kTimeout), "timeout");
  EXPECT_STREQ(scenario_status_name(ScenarioStatus::kCancelled), "cancelled");
  EXPECT_STREQ(scenario_status_name(ScenarioStatus::kFailed), "failed");
  EXPECT_STREQ(scenario_status_name(ScenarioStatus::kSkippedResume),
               "skipped-resume");
}

TEST(StudyFingerprint, DeterministicAndDiscriminating) {
  const pipeline::Fingerprint a = study_fingerprint("bench|ranks=16");
  EXPECT_EQ(a, study_fingerprint("bench|ranks=16"));
  EXPECT_NE(a, study_fingerprint("bench|ranks=32"));
  EXPECT_NE(a, study_fingerprint(""));
  // Both lanes must carry signal (a one-lane fingerprint would halve the
  // collision resistance the journal key relies on).
  EXPECT_NE(a.lo, 0u);
  EXPECT_NE(a.hi, 0u);
  EXPECT_NE(a.lo, a.hi);
}

// --- journal round trips ----------------------------------------------------

TEST(StudyJournal, AppendReopenRecovers) {
  const std::string root = fresh_dir("roundtrip");
  const pipeline::Fingerprint study = study_fingerprint("roundtrip-study");
  const std::vector<JournalEntry> entries = {
      sample_entry(1), sample_entry(2, ScenarioStatus::kTimeout),
      sample_entry(3, ScenarioStatus::kFailed)};
  {
    StudyJournal journal(root, study);
    EXPECT_TRUE(journal.recovered().empty());
    EXPECT_FALSE(journal.recovered_complete());
    for (const JournalEntry& e : entries) journal.append(e);
  }
  StudyJournal reopened(root, study);
  EXPECT_EQ(reopened.recovered(), entries);
  EXPECT_FALSE(reopened.recovered_complete());
  EXPECT_TRUE(fs::exists(StudyJournal::path_for(root, study)));
}

TEST(StudyJournal, CompleteMarkerSurvivesReopen) {
  const std::string root = fresh_dir("complete");
  const pipeline::Fingerprint study = study_fingerprint("complete-study");
  {
    StudyJournal journal(root, study);
    journal.append(sample_entry(1));
    journal.append_complete();
  }
  StudyJournal reopened(root, study);
  EXPECT_EQ(reopened.recovered().size(), 1u);
  EXPECT_TRUE(reopened.recovered_complete());
}

TEST(StudyJournal, AlienStudyMeansFreshJournal) {
  // A journal keyed by a different study id at the same path (hash
  // collision, hand-copied file) is discarded, not trusted.
  const std::string root = fresh_dir("alien");
  const pipeline::Fingerprint ours = study_fingerprint("ours");
  const pipeline::Fingerprint theirs = study_fingerprint("theirs");
  {
    StudyJournal journal(root, theirs);
    journal.append(sample_entry(1));
  }
  fs::create_directories(root + "/journals");
  fs::copy_file(StudyJournal::path_for(root, theirs),
                StudyJournal::path_for(root, ours),
                fs::copy_options::overwrite_existing);
  StudyJournal journal(root, ours);
  EXPECT_TRUE(journal.recovered().empty());
}

TEST(StudyJournal, TornTailIsTruncatedNotFatal) {
  const std::string root = fresh_dir("torn");
  const pipeline::Fingerprint study = study_fingerprint("torn-study");
  const std::vector<JournalEntry> entries = {sample_entry(1),
                                             sample_entry(2)};
  {
    StudyJournal journal(root, study);
    for (const JournalEntry& e : entries) journal.append(e);
  }
  const std::string path = StudyJournal::path_for(root, study);
  const std::string intact = read_file(path);

  // A crash mid-append leaves any prefix of the last record; every torn
  // length must salvage the first two entries and stay appendable.
  for (const std::size_t keep :
       {intact.size() - 1, intact.size() - 7, intact.size() - 20}) {
    write_file(path, intact.substr(0, keep) + std::string("\x7f\x01", 2));
    StudyJournal salvaged(root, study);
    EXPECT_LE(salvaged.recovered().size(), entries.size());
    if (!salvaged.recovered().empty()) {
      EXPECT_EQ(salvaged.recovered()[0], entries[0]);
    }
    salvaged.append(sample_entry(9));  // the file is healthy again
  }
  StudyJournal final_state(root, study);
  ASSERT_FALSE(final_state.recovered().empty());
  EXPECT_EQ(final_state.recovered().back(), sample_entry(9));
}

TEST(StudyJournal, CorruptRecordEndsTheValidPrefix) {
  const std::string root = fresh_dir("corrupt");
  const pipeline::Fingerprint study = study_fingerprint("corrupt-study");
  {
    StudyJournal journal(root, study);
    journal.append(sample_entry(1));
    journal.append(sample_entry(2));
  }
  const std::string path = StudyJournal::path_for(root, study);
  std::string bytes = read_file(path);
  bytes[bytes.size() - 6] = static_cast<char>(bytes[bytes.size() - 6] ^ 0x20);
  write_file(path, bytes);
  StudyJournal journal(root, study);
  ASSERT_EQ(journal.recovered().size(), 1u);
  EXPECT_EQ(journal.recovered()[0], sample_entry(1));
}

TEST(StudyJournal, ListAndGc) {
  const std::string root = fresh_dir("gc");
  const pipeline::Fingerprint done = study_fingerprint("done-study");
  const pipeline::Fingerprint live = study_fingerprint("live-study");
  {
    StudyJournal a(root, done);
    a.append(sample_entry(1));
    a.append_complete();
    StudyJournal b(root, live);
    b.append(sample_entry(2));
    b.append(sample_entry(3, ScenarioStatus::kTimeout));
  }
  write_file(root + "/journals/garbage.osimjrn", "not a journal");

  const std::vector<JournalInfo> journals = list_journals(root);
  ASSERT_EQ(journals.size(), 3u);
  std::size_t complete = 0, valid = 0, entries = 0, ok = 0;
  for (const JournalInfo& j : journals) {
    if (j.complete) ++complete;
    if (j.valid) ++valid;
    entries += j.entries;
    ok += j.ok;
  }
  EXPECT_EQ(complete, 1u);
  EXPECT_EQ(valid, 2u);
  EXPECT_EQ(entries, 3u);
  EXPECT_EQ(ok, 2u);

  // gc removes the finished study and the unreadable file, keeps the
  // in-progress journal a --resume still needs.
  EXPECT_EQ(gc_journals(root), 2u);
  EXPECT_FALSE(fs::exists(StudyJournal::path_for(root, done)));
  EXPECT_TRUE(fs::exists(StudyJournal::path_for(root, live)));
  EXPECT_FALSE(fs::exists(root + "/journals/garbage.osimjrn"));
}

TEST(ListJournals, EmptyOrMissingDirectory) {
  const std::string root = fresh_dir("empty");
  EXPECT_TRUE(list_journals(root).empty());
  EXPECT_EQ(gc_journals(root), 0u);
}

// --- CancelToken -------------------------------------------------------------

TEST(CancelToken, UnarmedNeverStops) {
  const CancelToken token;
  EXPECT_FALSE(token.armed());
  EXPECT_EQ(token.check(), StopCause::kNone);
}

TEST(CancelToken, FlagFiresCancel) {
  std::atomic<bool> flag{false};
  CancelToken token(&flag);
  EXPECT_TRUE(token.armed());
  EXPECT_EQ(token.check(), StopCause::kNone);
  flag.store(true);
  EXPECT_EQ(token.check(), StopCause::kCancel);
}

TEST(CancelToken, ExpiredDeadlinesFireByPriority) {
  using Clock = CancelToken::Clock;
  const Clock::time_point past = Clock::now() - std::chrono::seconds(1);

  CancelToken scenario_only;
  scenario_only.set_scenario_deadline(past);
  EXPECT_TRUE(scenario_only.armed());
  EXPECT_EQ(scenario_only.check(), StopCause::kScenarioTimeout);

  // The study deadline outranks the scenario one...
  CancelToken both;
  both.set_scenario_deadline(past);
  both.set_study_deadline(past);
  EXPECT_EQ(both.check(), StopCause::kStudyDeadline);

  // ...and the external flag outranks every deadline.
  std::atomic<bool> flag{true};
  CancelToken all(&flag);
  all.set_scenario_deadline(past);
  all.set_study_deadline(past);
  EXPECT_EQ(all.check(), StopCause::kCancel);
}

TEST(CancelToken, FutureDeadlinesDoNotFire) {
  CancelToken token;
  token.set_scenario_deadline(CancelToken::Clock::now() +
                              std::chrono::hours(1));
  EXPECT_TRUE(token.armed());
  EXPECT_EQ(token.check(), StopCause::kNone);
}

TEST(CancelledError, CarriesCauseAndPartialProgress) {
  PartialProgress partial;
  partial.sim_time_s = 1.5;
  partial.des_events = 42;
  partial.blocked_s = 0.25;
  const CancelledError e(StopCause::kScenarioTimeout, partial);
  EXPECT_EQ(e.cause(), StopCause::kScenarioTimeout);
  EXPECT_EQ(e.partial().des_events, 42u);
  EXPECT_NE(std::string(e.what()).find("scenario-timeout"),
            std::string::npos);
}

// --- crash-point fuzzing -----------------------------------------------------
//
// Each death test re-runs a publication sequence in a forked child with
// OSIM_CRASH_POINT set, asserts the child dies by SIGKILL at the injected
// point, then verifies the invariant from the parent: the on-disk state is
// either a valid object/record or a clean miss — never a torn read.

store::ScenarioArtifact crash_artifact() {
  store::ScenarioArtifact a;
  a.makespan = 2.5;
  a.des_events = 77;
  dimemas::RankStats rs;
  rs.compute_s = 1.0;
  a.rank_stats.push_back(rs);
  return a;
}

TEST(CrashPointDeath, StorePublishBeforeRenameIsACleanMiss) {
  const std::string dir = fresh_dir("crash_tmp");
  const pipeline::Fingerprint key = fp(10, 20);
  EXPECT_EXIT(
      {
        setenv("OSIM_CRASH_POINT", "store.publish.tmp", 1);
        store::ScenarioStore store(dir);
        store.save(key, crash_artifact());
        std::_Exit(0);  // unreachable: save() must die at the crash point
      },
      ::testing::KilledBySignal(SIGKILL), "");
  unsetenv("OSIM_CRASH_POINT");
  store::ScenarioStore store(dir);
  EXPECT_FALSE(store.load(key).has_value());
  EXPECT_EQ(store.rejects(), 0u);  // a miss, not a torn object
  EXPECT_TRUE(store.verify().clean());
}

TEST(CrashPointDeath, StorePublishAfterRenameIsAValidObject) {
  const std::string dir = fresh_dir("crash_renamed");
  const pipeline::Fingerprint key = fp(30, 40);
  EXPECT_EXIT(
      {
        setenv("OSIM_CRASH_POINT", "store.publish.renamed", 1);
        store::ScenarioStore store(dir);
        store.save(key, crash_artifact());
        std::_Exit(0);
      },
      ::testing::KilledBySignal(SIGKILL), "");
  unsetenv("OSIM_CRASH_POINT");
  // The object was renamed into place before the kill: it must decode
  // strictly even though the index update never happened.
  store::ScenarioStore store(dir);
  const auto loaded = store.load(key);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, crash_artifact());
  EXPECT_TRUE(store.verify().clean());
}

TEST(CrashPointDeath, JournalAppendBeforeWriteLosesOnlyThatRecord) {
  const std::string root = fresh_dir("crash_append");
  const pipeline::Fingerprint study = study_fingerprint("crash-append");
  {
    StudyJournal journal(root, study);
    journal.append(sample_entry(1));
  }
  EXPECT_EXIT(
      {
        setenv("OSIM_CRASH_POINT", "journal.append", 1);
        StudyJournal journal(root, study);
        journal.append(sample_entry(2));
        std::_Exit(0);
      },
      ::testing::KilledBySignal(SIGKILL), "");
  unsetenv("OSIM_CRASH_POINT");
  StudyJournal journal(root, study);
  ASSERT_EQ(journal.recovered().size(), 1u);
  EXPECT_EQ(journal.recovered()[0], sample_entry(1));
}

TEST(CrashPointDeath, JournalAppendTornMidRecordSalvagesThePrefix) {
  const std::string root = fresh_dir("crash_torn");
  const pipeline::Fingerprint study = study_fingerprint("crash-torn");
  {
    StudyJournal journal(root, study);
    journal.append(sample_entry(1));
  }
  EXPECT_EXIT(
      {
        setenv("OSIM_CRASH_POINT", "journal.append.torn", 1);
        StudyJournal journal(root, study);
        journal.append(sample_entry(2));
        std::_Exit(0);
      },
      ::testing::KilledBySignal(SIGKILL), "");
  unsetenv("OSIM_CRASH_POINT");
  // The second record was flushed only to its torn midpoint: salvage must
  // keep exactly the first entry and the journal must accept new appends.
  StudyJournal journal(root, study);
  ASSERT_EQ(journal.recovered().size(), 1u);
  EXPECT_EQ(journal.recovered()[0], sample_entry(1));
  journal.append(sample_entry(3));
  StudyJournal reopened(root, study);
  ASSERT_EQ(reopened.recovered().size(), 2u);
  EXPECT_EQ(reopened.recovered()[1], sample_entry(3));
}

TEST(CrashPoint, NthHitCountsFromOne) {
  // maybe_crash() with a :N suffix must survive N-1 hits; exercised in
  // process with a point no other test uses (counters are process-global).
  setenv("OSIM_CRASH_POINT", "test.nth:3", 1);
  maybe_crash("test.nth");       // hit 1
  maybe_crash("test.other");     // different point, no effect on the count
  maybe_crash("test.nth");       // hit 2 — still alive
  EXPECT_EXIT(
      {
        maybe_crash("test.nth");  // hit 3 fires (counter survives the fork)
        std::_Exit(0);
      },
      ::testing::KilledBySignal(SIGKILL), "");
  unsetenv("OSIM_CRASH_POINT");
}

}  // namespace
}  // namespace osim::supervise
