// Tests for the tracer (the "Valgrind tool"): virtual clock, tracked-buffer
// interception, production/consumption interval bookkeeping, MPI wrapping,
// access logs, and the assembled annotated traces.
#include <gtest/gtest.h>

#include "common/expect.hpp"
#include "tracer/tracer.hpp"

namespace osim::tracer {
namespace {

using trace::AnnEvent;
using trace::kNeverAccessed;

TracerOptions quiet_options() {
  TracerOptions options;
  options.mips = 1000.0;
  return options;
}

TEST(TraceContext, ClockAdvances) {
  TraceContext ctx(0, quiet_options());
  EXPECT_EQ(ctx.vclock(), 0u);
  ctx.advance(100);
  EXPECT_EQ(ctx.vclock(), 100u);
}

TEST(TraceContext, LoadStoreCostsCharged) {
  TracerOptions options = quiet_options();
  options.load_cost = 3;
  options.store_cost = 5;
  TraceContext ctx(0, options);
  const std::int64_t buf = ctx.register_buffer(4, 8, "b");
  ctx.on_load(buf, 0);
  EXPECT_EQ(ctx.vclock(), 3u);
  ctx.on_store(buf, 1);
  EXPECT_EQ(ctx.vclock(), 8u);
}

TEST(TraceContext, ProductionAnnotations) {
  TraceContext ctx(0, quiet_options());
  const std::int64_t buf = ctx.register_buffer(4, 8, "b");
  ctx.advance(10);
  ctx.on_store(buf, 0);  // final at 11
  ctx.advance(10);
  ctx.on_store(buf, 2);  // at 22
  ctx.on_store(buf, 2);  // rewritten at 23 — the later one counts
  ctx.record_send(buf, 0, 4, 8, /*dest=*/1, /*tag=*/0, false,
                  trace::kNoRequest);
  ctx.finalize();
  const auto rank = ctx.take_rank();
  ASSERT_EQ(rank.events.size(), 1u);
  const AnnEvent& ev = rank.events[0];
  EXPECT_EQ(ev.kind, AnnEvent::Kind::kSend);
  EXPECT_EQ(ev.interval_start, 0u);
  EXPECT_TRUE(ev.chunkable);
  ASSERT_EQ(ev.elem_last_store.size(), 4u);
  EXPECT_EQ(ev.elem_last_store[0], 11u);
  EXPECT_EQ(ev.elem_last_store[1], kNeverAccessed);
  EXPECT_EQ(ev.elem_last_store[2], 23u);
  EXPECT_EQ(ev.elem_last_store[3], kNeverAccessed);
}

TEST(TraceContext, ProductionIntervalResetsAfterSend) {
  TraceContext ctx(0, quiet_options());
  const std::int64_t buf = ctx.register_buffer(2, 8, "b");
  ctx.on_store(buf, 0);
  ctx.record_send(buf, 0, 2, 8, 1, 0, false, trace::kNoRequest);
  const std::uint64_t first_send_clock = ctx.vclock();
  ctx.advance(100);
  ctx.on_store(buf, 1);
  ctx.record_send(buf, 0, 2, 8, 1, 0, false, trace::kNoRequest);
  ctx.finalize();
  const auto rank = ctx.take_rank();
  ASSERT_EQ(rank.events.size(), 2u);
  const AnnEvent& second = rank.events[1];
  EXPECT_EQ(second.interval_start, first_send_clock);
  // Element 0 was not rewritten in the second interval.
  EXPECT_EQ(second.elem_last_store[0], kNeverAccessed);
  EXPECT_EQ(second.elem_last_store[1], first_send_clock + 101);
}

TEST(TraceContext, ConsumptionAnnotations) {
  TraceContext ctx(0, quiet_options());
  const std::int64_t buf = ctx.register_buffer(4, 8, "b");
  ctx.advance(5);
  ctx.record_recv(buf, 0, 4, 8, /*src=*/1, /*tag=*/0, false,
                  trace::kNoRequest);
  ctx.advance(10);
  ctx.on_load(buf, 2);  // first load of elem 2 at 16
  ctx.advance(10);
  ctx.on_load(buf, 2);  // second load ignored
  ctx.on_load(buf, 0);  // elem 0 at 28
  ctx.advance(4);
  ctx.finalize();
  const auto rank = ctx.take_rank();
  const AnnEvent& ev = rank.events[0];
  EXPECT_EQ(ev.kind, AnnEvent::Kind::kRecv);
  EXPECT_EQ(ev.vclock, 5u);
  EXPECT_EQ(ev.interval_end, 32u);  // closed at finalize
  ASSERT_EQ(ev.elem_first_load.size(), 4u);
  EXPECT_EQ(ev.elem_first_load[0], 28u);
  EXPECT_EQ(ev.elem_first_load[1], kNeverAccessed);
  EXPECT_EQ(ev.elem_first_load[2], 16u);
}

TEST(TraceContext, ConsumptionIntervalClosedByNextRecv) {
  TraceContext ctx(0, quiet_options());
  const std::int64_t buf = ctx.register_buffer(2, 8, "b");
  ctx.record_recv(buf, 0, 2, 8, 1, 0, false, trace::kNoRequest);
  ctx.advance(50);
  ctx.record_recv(buf, 0, 2, 8, 1, 0, false, trace::kNoRequest);
  ctx.advance(10);
  ctx.finalize();
  const auto rank = ctx.take_rank();
  EXPECT_EQ(rank.events[0].interval_end, 50u);
  EXPECT_EQ(rank.events[1].interval_end, 60u);
}

TEST(TraceContext, SingleElementNotChunkable) {
  TraceContext ctx(0, quiet_options());
  const std::int64_t buf = ctx.register_buffer(1, 8, "scalar");
  ctx.on_store(buf, 0);
  ctx.record_send(buf, 0, 1, 8, 1, 0, false, trace::kNoRequest);
  ctx.finalize();
  const auto rank = ctx.take_rank();
  EXPECT_FALSE(rank.events[0].chunkable);
  EXPECT_EQ(rank.events[0].elem_last_store.size(), 1u);
}

TEST(TraceContext, WildcardRecvNotChunkable) {
  TraceContext ctx(0, quiet_options());
  const std::int64_t buf = ctx.register_buffer(4, 8, "b");
  ctx.record_recv(buf, 0, 4, 8, trace::kAnyRank, 0, false,
                  trace::kNoRequest);
  ctx.finalize();
  const auto rank = ctx.take_rank();
  EXPECT_FALSE(rank.events[0].chunkable);
}

TEST(TraceContext, UntrackedTransferHasNoAnnotations) {
  TraceContext ctx(0, quiet_options());
  ctx.record_send(-1, 0, 16, 4, 1, 0, false, trace::kNoRequest);
  ctx.finalize();
  const auto rank = ctx.take_rank();
  const AnnEvent& ev = rank.events[0];
  EXPECT_EQ(ev.buffer_id, -1);
  EXPECT_FALSE(ev.chunkable);
  EXPECT_TRUE(ev.elem_last_store.empty());
}

TEST(TraceContext, WaitLinksIrecv) {
  TraceContext ctx(0, quiet_options());
  const std::int64_t buf = ctx.register_buffer(4, 8, "b");
  const trace::ReqId req = ctx.new_request();
  ctx.record_recv(buf, 0, 4, 8, 1, 0, /*immediate=*/true, req);
  ctx.advance(10);
  ctx.record_wait(std::span<const trace::ReqId>(&req, 1));
  ctx.finalize();
  const auto rank = ctx.take_rank();
  ASSERT_EQ(rank.events.size(), 2u);
  EXPECT_EQ(rank.events[0].kind, AnnEvent::Kind::kIrecv);
  EXPECT_EQ(rank.events[0].wait_event_index, 1);
  EXPECT_EQ(rank.events[1].kind, AnnEvent::Kind::kWait);
}

TEST(TraceContext, NegativeAppTagRejected) {
  TraceContext ctx(0, quiet_options());
  EXPECT_DEATH(
      ctx.record_send(-1, 0, 1, 8, 1, /*tag=*/-5, false, trace::kNoRequest),
      "non-negative");
}

TEST(TraceContext, CollectiveSequenceIncrements) {
  TraceContext ctx(0, quiet_options());
  ctx.record_global(trace::CollectiveKind::kBarrier, 0, 0);
  ctx.record_global(trace::CollectiveKind::kAllreduce, 0, 8);
  ctx.finalize();
  const auto rank = ctx.take_rank();
  EXPECT_EQ(rank.events[0].coll_sequence, 0);
  EXPECT_EQ(rank.events[1].coll_sequence, 1);
}

TEST(TraceContext, AccessLogRecordsIntervals) {
  TracerOptions options = quiet_options();
  options.record_access_log = true;
  TraceContext ctx(0, options);
  const std::int64_t buf = ctx.register_buffer(4, 8, "b");
  ctx.on_store(buf, 1);  // belongs to production interval 0
  ctx.record_send(buf, 0, 4, 8, 1, 0, false, trace::kNoRequest);
  ctx.on_store(buf, 2);  // production interval 1
  ctx.record_recv(buf, 0, 4, 8, 1, 0, false, trace::kNoRequest);
  ctx.on_load(buf, 3);  // consumption interval 0
  ctx.finalize();
  const auto log = ctx.take_access_log();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_TRUE(log[0].is_store);
  EXPECT_EQ(log[0].interval, 0u);
  EXPECT_EQ(log[1].interval, 1u);
  EXPECT_FALSE(log[2].is_store);
  EXPECT_EQ(log[2].interval, 0u);
}

TEST(TraceContext, AccessLogCapped) {
  TracerOptions options = quiet_options();
  options.record_access_log = true;
  options.access_log_limit = 5;
  TraceContext ctx(0, options);
  const std::int64_t buf = ctx.register_buffer(4, 8, "b");
  for (int i = 0; i < 100; ++i) ctx.on_store(buf, 0);
  ctx.finalize();
  EXPECT_EQ(ctx.take_access_log().size(), 5u);
}

TEST(TraceContext, BufferNames) {
  TraceContext ctx(0, quiet_options());
  ctx.register_buffer(4, 8, "alpha");
  ctx.register_buffer(2, 4, "beta");
  const auto names = ctx.buffer_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "beta");
}

// --- end-to-end tracing through Process / run_traced ------------------------

TEST(Tracer, PingPongProducesValidAnnotatedTrace) {
  const TracedRun run = run_traced(2, quiet_options(), "pingpong",
                                   [](Process& p) {
    auto buf = p.make_buffer<double>(8, "payload");
    if (p.rank() == 0) {
      for (std::size_t i = 0; i < 8; ++i) buf[i] = static_cast<double>(i);
      p.compute(100);
      p.send(buf, 1, 0);
    } else {
      p.recv(buf, 0, 0);
      double sum = 0.0;
      for (std::size_t i = 0; i < 8; ++i) sum += buf.load(i);
      OSIM_CHECK(sum == 28.0);  // data actually moved
      p.compute(50);
    }
  });
  EXPECT_EQ(run.annotated.num_ranks, 2);
  EXPECT_NO_THROW(trace::validate(run.annotated));
  const auto& sender = run.annotated.ranks[0];
  ASSERT_EQ(sender.events.size(), 1u);
  EXPECT_TRUE(sender.events[0].chunkable);
  EXPECT_EQ(sender.events[0].bytes, 64u);
  const auto& receiver = run.annotated.ranks[1];
  ASSERT_EQ(receiver.events.size(), 1u);
  // Every element was read right after the recv.
  for (const std::uint64_t t : receiver.events[0].elem_first_load) {
    EXPECT_NE(t, kNeverAccessed);
  }
  EXPECT_EQ(run.find_buffer(0, "payload"), 0);
  EXPECT_EQ(run.find_buffer(0, "missing"), -1);
}

TEST(Tracer, TrackedBufferProxyOperators) {
  run_traced(1, quiet_options(), "proxy", [](Process& p) {
    auto buf = p.make_buffer<double>(3, "b");
    buf[0] = 2.0;
    buf[0] += 3.0;
    buf[1] = 10.0;
    buf[1] -= 4.0;
    buf[2] = 5.0;
    buf[2] *= 2.0;
    OSIM_CHECK(buf.load(0) == 5.0);
    OSIM_CHECK(buf.load(1) == 6.0);
    OSIM_CHECK(buf.load(2) == 10.0);
  });
}

TEST(Tracer, CollectivesRecordedAndExecuted) {
  const TracedRun run =
      run_traced(4, quiet_options(), "coll", [](Process& p) {
        const double sum = p.allreduce_scalar(1.0, mpisim::Op::kSum);
        OSIM_CHECK(sum == 4.0);
        p.barrier();
      });
  for (const auto& rank : run.annotated.ranks) {
    ASSERT_EQ(rank.events.size(), 2u);
    EXPECT_EQ(rank.events[0].kind, AnnEvent::Kind::kGlobalOp);
    EXPECT_EQ(rank.events[0].coll, trace::CollectiveKind::kAllreduce);
    EXPECT_EQ(rank.events[1].coll, trace::CollectiveKind::kBarrier);
  }
}

TEST(Tracer, ScanRecordedAndExecuted) {
  const TracedRun run =
      run_traced(4, quiet_options(), "scan", [](Process& p) {
        std::vector<double> in{static_cast<double>(p.rank() + 1)};
        std::vector<double> out(1, 0.0);
        p.scan(std::span<const double>(in), std::span<double>(out),
               mpisim::Op::kSum);
        const int r = p.rank();
        OSIM_CHECK(out[0] == (r + 1) * (r + 2) / 2.0);
      });
  EXPECT_EQ(run.annotated.ranks[0].events[0].coll,
            trace::CollectiveKind::kScan);
}

TEST(Tracer, VclockIndependentOfThreadScheduling) {
  // The virtual clock must be a pure function of the program, not of wall
  // time: two runs of the same program give identical annotated traces.
  auto body = [](Process& p) {
    auto buf = p.make_buffer<double>(16, "b");
    const int partner = p.rank() ^ 1;
    for (int iter = 0; iter < 5; ++iter) {
      for (std::size_t i = 0; i < 16; ++i) {
        buf[i] = static_cast<double>(iter) + static_cast<double>(i);
      }
      p.compute(1000);
      if (p.rank() % 2 == 0) {
        p.send(buf, partner, 1);
      } else {
        auto in = p.make_buffer<double>(16, "in");
        (void)in;  // registered but unused: ids must still be stable
        p.recv(buf, partner, 1);
      }
    }
  };
  const TracedRun a = run_traced(4, quiet_options(), "det", body);
  const TracedRun b = run_traced(4, quiet_options(), "det", body);
  ASSERT_EQ(a.annotated.ranks.size(), b.annotated.ranks.size());
  for (std::size_t r = 0; r < a.annotated.ranks.size(); ++r) {
    const auto& ra = a.annotated.ranks[r];
    const auto& rb = b.annotated.ranks[r];
    EXPECT_EQ(ra.final_vclock, rb.final_vclock);
    ASSERT_EQ(ra.events.size(), rb.events.size());
    for (std::size_t i = 0; i < ra.events.size(); ++i) {
      EXPECT_EQ(ra.events[i].vclock, rb.events[i].vclock);
      EXPECT_EQ(ra.events[i].bytes, rb.events[i].bytes);
      EXPECT_EQ(ra.events[i].elem_last_store, rb.events[i].elem_last_store);
      EXPECT_EQ(ra.events[i].elem_first_load, rb.events[i].elem_first_load);
    }
  }
}

}  // namespace
}  // namespace osim::tracer
