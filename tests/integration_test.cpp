// End-to-end pipeline tests: trace an application on the instrumented
// runtime, lower to original/overlapped traces, replay on the platform
// models, and check the paper-level properties hold — per application and
// across the mechanism toggles.
#include <gtest/gtest.h>

#include "analysis/bandwidth.hpp"
#include "analysis/calibrate.hpp"
#include "analysis/speedup.hpp"
#include "apps/app.hpp"
#include "common/expect.hpp"
#include "dimemas/replay.hpp"
#include "overlap/transform.hpp"
#include "paraver/paraver.hpp"
#include "pipeline/context.hpp"
#include "pipeline/study.hpp"
#include "trace/io.hpp"

namespace osim {
namespace {

apps::AppConfig config_for(const apps::MiniApp& app) {
  apps::AppConfig config;
  config.ranks = 4;
  while (!app.supports_ranks(config.ranks)) ++config.ranks;
  config.iterations = 3;
  return config;
}

class PipelinePerApp : public ::testing::TestWithParam<const apps::MiniApp*> {
};

TEST_P(PipelinePerApp, FullPipelineRuns) {
  const apps::MiniApp& app = *GetParam();
  const apps::AppConfig config = config_for(app);
  const tracer::TracedRun traced = apps::trace_app(app, config);

  const trace::Trace original = overlap::lower_original(traced.annotated);
  EXPECT_NO_THROW(trace::validate(original));

  overlap::OverlapOptions options;
  const trace::Trace overlapped =
      overlap::transform(traced.annotated, options);
  EXPECT_NO_THROW(trace::validate(overlapped));

  const dimemas::Platform platform =
      dimemas::Platform::marenostrum(config.ranks, app.paper_buses());
  const double t_original = dimemas::replay(original, platform).makespan;
  const double t_overlapped = dimemas::replay(overlapped, platform).makespan;
  EXPECT_GT(t_original, 0.0);
  EXPECT_GT(t_overlapped, 0.0);
  // Overlap never catastrophically hurts (paper: small speedups or ~1.0;
  // our worst case is POP's collective-skew amplification at ~0.93).
  EXPECT_GT(t_original / t_overlapped, 0.85);
}

TEST_P(PipelinePerApp, IdealAtLeastAsGoodAsMeasured) {
  // The ideal production/consumption pattern is the best case by
  // construction; it must never lose to the measured pattern by more than
  // scheduling noise.
  const apps::MiniApp& app = *GetParam();
  const apps::AppConfig config = config_for(app);
  const tracer::TracedRun traced = apps::trace_app(app, config);
  const dimemas::Platform platform =
      dimemas::Platform::marenostrum(config.ranks, app.paper_buses());
  pipeline::Study study;
  const auto outcome =
      analysis::evaluate_overlap(study, traced.annotated, platform);
  EXPECT_GE(outcome.speedup_ideal(), outcome.speedup_real() * 0.97);
}

TEST_P(PipelinePerApp, TraceFileRoundTripReplaysIdentically) {
  // The pipeline can be split across processes via trace files: writing
  // and re-reading the trace must not change the replayed behaviour.
  const apps::MiniApp& app = *GetParam();
  const apps::AppConfig config = config_for(app);
  const tracer::TracedRun traced = apps::trace_app(app, config);
  const trace::Trace original = overlap::lower_original(traced.annotated);
  const trace::Trace reparsed =
      trace::read_text(trace::write_text(original));
  const dimemas::Platform platform =
      dimemas::Platform::marenostrum(config.ranks, app.paper_buses());
  EXPECT_DOUBLE_EQ(dimemas::replay(original, platform).makespan,
                   dimemas::replay(reparsed, platform).makespan);
}

TEST_P(PipelinePerApp, ReplaysOnReferenceMachineToo) {
  const apps::MiniApp& app = *GetParam();
  const apps::AppConfig config = config_for(app);
  const tracer::TracedRun traced = apps::trace_app(app, config);
  const trace::Trace original = overlap::lower_original(traced.annotated);
  const dimemas::Platform reference =
      dimemas::Platform::reference_machine(config.ranks);
  EXPECT_GT(dimemas::replay(original, reference).makespan, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    All, PipelinePerApp, ::testing::ValuesIn(apps::registry()),
    [](const ::testing::TestParamInfo<const apps::MiniApp*>& info) {
      return info.param->name();
    });

// --- mechanism ablations ---------------------------------------------------------

TEST(Mechanisms, TogglesProduceValidTraces) {
  const apps::MiniApp& app = *apps::find_app("nas_cg");
  const apps::AppConfig config = config_for(app);
  const tracer::TracedRun traced = apps::trace_app(app, config);
  for (const bool advance : {false, true}) {
    for (const bool postpone : {false, true}) {
      for (const bool chunking : {false, true}) {
        for (const bool double_buffering : {false, true}) {
          overlap::OverlapOptions options;
          options.advance_sends = advance;
          options.postpone_receptions = postpone;
          options.chunking = chunking;
          options.double_buffering = double_buffering;
          const trace::Trace t =
              overlap::transform(traced.annotated, options);
          EXPECT_NO_THROW(trace::validate(t))
              << advance << postpone << chunking << double_buffering;
          const dimemas::Platform platform = dimemas::Platform::marenostrum(
              config.ranks, app.paper_buses());
          EXPECT_GT(dimemas::replay(t, platform).makespan, 0.0);
        }
      }
    }
  }
}

TEST(Mechanisms, AdvancingSendsIsTheKeyForCg) {
  // The paper reads from Figure 4 that NAS-CG's gain comes mostly from
  // advancing the sends; disabling it must cost most of the speedup.
  const apps::MiniApp& app = *apps::find_app("nas_cg");
  const apps::AppConfig config = config_for(app);
  const tracer::TracedRun traced = apps::trace_app(app, config);
  const dimemas::Platform platform =
      dimemas::Platform::marenostrum(config.ranks, app.paper_buses());
  const trace::Trace original = overlap::lower_original(traced.annotated);
  const double t_original = dimemas::replay(original, platform).makespan;

  overlap::OverlapOptions with;
  overlap::OverlapOptions without;
  without.advance_sends = false;
  const double t_with =
      dimemas::replay(overlap::transform(traced.annotated, with), platform)
          .makespan;
  const double t_without =
      dimemas::replay(overlap::transform(traced.annotated, without),
                      platform)
          .makespan;
  EXPECT_LT(t_with, t_original);          // full mechanism helps
  EXPECT_GT(t_without, t_with * 0.999);   // dropping advance never helps
}

// --- figure-level properties ----------------------------------------------------

TEST(PaperProperties, CgGainsFromRealPatterns) {
  // "the real patterns allow speedup only in the case of NAS-CG"
  const apps::MiniApp& app = *apps::find_app("nas_cg");
  apps::AppConfig config;
  config.ranks = 4;
  config.iterations = 5;
  const tracer::TracedRun traced = apps::trace_app(app, config);
  const dimemas::Platform platform =
      dimemas::Platform::marenostrum(config.ranks, app.paper_buses());
  pipeline::Study study;
  const auto outcome =
      analysis::evaluate_overlap(study, traced.annotated, platform);
  EXPECT_GT(outcome.speedup_real(), 1.05);
}

TEST(PaperProperties, SweepBenefitsMostFromIdealPatterns) {
  // "The highest speedup is reached for Sweep3D due to the wavefront
  // behavior of the application."
  apps::AppConfig config;
  config.ranks = 4;
  config.iterations = 2;
  double sweep_ideal = 0.0;
  double others_best = 0.0;
  pipeline::Study study;
  for (const apps::MiniApp* app : apps::registry()) {
    apps::AppConfig c = config;
    while (!app->supports_ranks(c.ranks)) ++c.ranks;
    const tracer::TracedRun traced = apps::trace_app(*app, c);
    const dimemas::Platform platform =
        dimemas::Platform::marenostrum(c.ranks, app->paper_buses());
    const auto outcome =
        analysis::evaluate_overlap(study, traced.annotated, platform);
    if (app->name() == "sweep3d") {
      sweep_ideal = outcome.speedup_ideal();
    } else {
      others_best = std::max(others_best, outcome.speedup_ideal());
    }
  }
  EXPECT_GT(sweep_ideal, others_best);
}

TEST(PaperProperties, AlyaUnaffectedByOverlap) {
  // One-element reductions cannot be chunked: the overlapped trace equals
  // the original in replay time.
  const apps::MiniApp& app = *apps::find_app("alya");
  const apps::AppConfig config = config_for(app);
  const tracer::TracedRun traced = apps::trace_app(app, config);
  const dimemas::Platform platform =
      dimemas::Platform::marenostrum(config.ranks, app.paper_buses());
  pipeline::Study study;
  const auto outcome =
      analysis::evaluate_overlap(study, traced.annotated, platform);
  EXPECT_NEAR(outcome.speedup_real(), 1.0, 1e-6);
  EXPECT_NEAR(outcome.speedup_ideal(), 1.0, 1e-6);
}

TEST(PaperProperties, BandwidthRelaxationForCg) {
  // Figure 6(b): the overlapped execution needs much less bandwidth to
  // match the original at nominal bandwidth.
  const apps::MiniApp& app = *apps::find_app("nas_cg");
  apps::AppConfig config;
  config.ranks = 4;
  config.iterations = 4;
  const tracer::TracedRun traced = apps::trace_app(app, config);
  const trace::Trace original = overlap::lower_original(traced.annotated);
  const trace::Trace overlapped =
      overlap::transform(traced.annotated, {});
  const dimemas::Platform platform =
      dimemas::Platform::marenostrum(config.ranks, app.paper_buses());
  pipeline::Study study;
  const auto relaxed = analysis::relaxed_bandwidth(
      study, pipeline::ReplayContext(original, platform),
      pipeline::ReplayContext(overlapped, platform));
  ASSERT_TRUE(relaxed.has_value());
  EXPECT_LT(*relaxed, platform.bandwidth_MBps * 0.7);
}

TEST(PaperProperties, Fig4TimelineRenderable) {
  const apps::MiniApp& app = *apps::find_app("nas_cg");
  apps::AppConfig config;
  config.ranks = 4;
  config.iterations = 5;
  const tracer::TracedRun traced = apps::trace_app(app, config);
  const dimemas::Platform platform =
      dimemas::Platform::marenostrum(config.ranks, app.paper_buses());
  dimemas::ReplayOptions options;
  options.record_timeline = true;
  options.record_comms = true;
  const auto run_original = dimemas::replay(
      overlap::lower_original(traced.annotated), platform, options);
  const auto run_overlapped = dimemas::replay(
      overlap::transform(traced.annotated, {}), platform, options);
  const std::string figure = paraver::render_comparison(
      run_original, "non-overlapped", run_overlapped, "overlapped");
  EXPECT_NE(figure.find("non-overlapped"), std::string::npos);
  // The "longer synchronization lines" observation: advanced sends raise
  // the mean send-call-to-completion lead time.
  const auto comm_orig = paraver::summarize_comms(run_original);
  const auto comm_ovlp = paraver::summarize_comms(run_overlapped);
  EXPECT_GT(comm_ovlp.mean_send_lead_s, comm_orig.mean_send_lead_s);
}

TEST(PaperProperties, BusCalibrationConvergesForCg) {
  const apps::MiniApp& app = *apps::find_app("nas_cg");
  apps::AppConfig config;
  config.ranks = 8;
  config.iterations = 3;
  const tracer::TracedRun traced = apps::trace_app(app, config);
  const trace::Trace original = overlap::lower_original(traced.annotated);
  pipeline::Study study;
  const auto calibration = analysis::calibrate_buses(
      study,
      pipeline::ReplayContext(
          original, dimemas::Platform::marenostrum(config.ranks, 1)),
      dimemas::Platform::reference_machine(config.ranks));
  EXPECT_GE(calibration.buses, 1);
  EXPECT_LT(calibration.relative_error, 0.25);
}

}  // namespace
}  // namespace osim
