// Tests for the metrics subsystem: wait-time decomposition, occupancy
// tracking, the JSON writer, the collector, and end-to-end attribution
// through dimemas::replay with collect_metrics on.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "dimemas/replay.hpp"
#include "metrics/attribution.hpp"
#include "metrics/collector.hpp"
#include "metrics/json.hpp"
#include "metrics/occupancy.hpp"
#include "trace/trace.hpp"

namespace osim::metrics {
namespace {

using trace::TraceBuilder;

constexpr double kUs = 1e-6;

// ---------------------------------------------------------------------------
// decompose
// ---------------------------------------------------------------------------

TEST(Decompose, NullTimingIsAllDependency) {
  const WaitComponents c = decompose(1.0, 3.0, nullptr);
  EXPECT_DOUBLE_EQ(c.dependency_s, 2.0);
  EXPECT_DOUBLE_EQ(c.total_s(), 2.0);
}

TEST(Decompose, UnsubmittedTimingIsAllDependency) {
  TransferTiming timing;  // submit_s = -1
  const WaitComponents c = decompose(0.0, 5.0, &timing);
  EXPECT_DOUBLE_EQ(c.dependency_s, 5.0);
  EXPECT_DOUBLE_EQ(c.total_s(), 5.0);
}

TEST(Decompose, EmptySpanIsZero) {
  const WaitComponents c = decompose(2.0, 2.0, nullptr);
  EXPECT_DOUBLE_EQ(c.total_s(), 0.0);
}

TEST(Decompose, FullPartition) {
  TransferTiming timing;
  timing.submit_s = 3.0;
  timing.start_s = 5.0;
  timing.fixed_latency_s = 1.0;
  timing.queue_reason = QueueReason::kBus;
  const WaitComponents c = decompose(1.0, 9.0, &timing);
  EXPECT_DOUBLE_EQ(c.dependency_s, 2.0);       // 1 → 3
  EXPECT_DOUBLE_EQ(c.bus_contention_s, 2.0);   // 3 → 5
  EXPECT_DOUBLE_EQ(c.port_contention_s, 0.0);
  EXPECT_DOUBLE_EQ(c.latency_s, 1.0);
  EXPECT_DOUBLE_EQ(c.wire_s, 3.0);             // 5 → 9 minus latency
  EXPECT_DOUBLE_EQ(c.total_s(), 8.0);          // exact
}

TEST(Decompose, PortReasonGoesToPortContention) {
  TransferTiming timing;
  timing.submit_s = 0.0;
  timing.start_s = 4.0;
  timing.queue_reason = QueueReason::kInPort;
  const WaitComponents c = decompose(0.0, 6.0, &timing);
  EXPECT_DOUBLE_EQ(c.port_contention_s, 4.0);
  EXPECT_DOUBLE_EQ(c.bus_contention_s, 0.0);

  timing.queue_reason = QueueReason::kOutPort;
  const WaitComponents c2 = decompose(0.0, 6.0, &timing);
  EXPECT_DOUBLE_EQ(c2.port_contention_s, 4.0);
}

TEST(Decompose, LatencyClampedToInNetworkTime) {
  TransferTiming timing;
  timing.submit_s = 0.0;
  timing.start_s = 0.0;
  timing.fixed_latency_s = 100.0;  // larger than the span
  const WaitComponents c = decompose(0.0, 2.0, &timing);
  EXPECT_DOUBLE_EQ(c.latency_s, 2.0);
  EXPECT_DOUBLE_EQ(c.wire_s, 0.0);
}

TEST(Decompose, TimestampsClampedIntoSpan) {
  // Transfer submitted before the block began (e.g. eager isend long before
  // the wait): no dependency component inside the span.
  TransferTiming timing;
  timing.submit_s = -0.5;
  timing.start_s = 10.0;  // past the end: whole remainder is queueing
  timing.queue_reason = QueueReason::kBus;
  // submit_s < 0 means "unsubmitted", so use a tiny positive time instead.
  timing.submit_s = 0.25;
  const WaitComponents c = decompose(1.0, 3.0, &timing);
  EXPECT_DOUBLE_EQ(c.dependency_s, 0.0);
  EXPECT_DOUBLE_EQ(c.bus_contention_s, 2.0);
  EXPECT_DOUBLE_EQ(c.total_s(), 2.0);
}

// ---------------------------------------------------------------------------
// OccupancyTracker
// ---------------------------------------------------------------------------

TEST(Occupancy, HistogramAndStats) {
  OccupancyTracker tracker;
  tracker.set_capacity(2);
  tracker.set_level(0.0, 1);
  tracker.set_level(2.0, 2);
  tracker.set_level(5.0, 0);
  const OccupancyStats stats = tracker.finish(10.0);
  EXPECT_TRUE(stats.tracked);
  EXPECT_EQ(stats.capacity, 2);
  EXPECT_EQ(stats.peak, 2);
  ASSERT_EQ(stats.histogram.size(), 3u);
  EXPECT_DOUBLE_EQ(stats.histogram[0], 5.0);
  EXPECT_DOUBLE_EQ(stats.histogram[1], 2.0);
  EXPECT_DOUBLE_EQ(stats.histogram[2], 3.0);
  EXPECT_DOUBLE_EQ(stats.busy_s, 5.0);
  EXPECT_DOUBLE_EQ(stats.mean_level, (1 * 2.0 + 2 * 3.0) / 10.0);
  EXPECT_DOUBLE_EQ(stats.utilization, stats.mean_level / 2.0);
  ASSERT_EQ(stats.samples.size(), 3u);
  EXPECT_DOUBLE_EQ(stats.samples[1].time_s, 2.0);
  EXPECT_EQ(stats.samples[1].level, 2);
}

TEST(Occupancy, RepeatedLevelEmitsNoSample) {
  OccupancyTracker tracker;
  tracker.set_level(1.0, 1);
  tracker.set_level(2.0, 1);  // no change
  const OccupancyStats stats = tracker.finish(3.0);
  EXPECT_EQ(stats.samples.size(), 1u);
  EXPECT_DOUBLE_EQ(stats.histogram[1], 2.0);
}

TEST(Occupancy, UntrackedResource) {
  OccupancyTracker tracker;
  const OccupancyStats stats = tracker.finish(5.0);
  EXPECT_FALSE(stats.tracked);
  EXPECT_EQ(stats.peak, 0);
  ASSERT_EQ(stats.histogram.size(), 1u);
  EXPECT_DOUBLE_EQ(stats.histogram[0], 5.0);
  EXPECT_DOUBLE_EQ(stats.mean_level, 0.0);
}

// ---------------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------------

TEST(Json, ObjectsArraysAndCommas) {
  JsonWriter w;
  w.begin_object();
  w.key("name").value("osim");
  w.key("count").value(std::int64_t{3});
  w.key("items").begin_array();
  w.value(std::int64_t{1}).value(std::int64_t{2});
  w.end_array();
  w.key("nested").begin_object().key("ok").value(true).end_object();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"name\":\"osim\",\"count\":3,\"items\":[1,2],"
            "\"nested\":{\"ok\":true}}");
}

TEST(Json, EscapesControlCharacters) {
  EXPECT_EQ(JsonWriter::escape("a\"b\\c\nd\re\tf\x01"),
            "a\\\"b\\\\c\\nd\\re\\tf\\u0001");
}

TEST(Json, NonFiniteDoublesAreNull) {
  JsonWriter w;
  w.begin_array();
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.value(std::numeric_limits<double>::infinity());
  w.value(1.5);
  w.end_array();
  EXPECT_EQ(w.str(), "[null,null,1.5]");
}

// ---------------------------------------------------------------------------
// ReplayCollector
// ---------------------------------------------------------------------------

TEST(Collector, AttributesPerKindAndPeer) {
  ReplayCollector collector(2, 2);
  TransferTiming timing;
  timing.submit_s = 0.0;
  timing.start_s = 0.0;
  collector.attribute(0, 1, BlockKind::kRecv, 0.0, 2.0, &timing);
  collector.attribute(0, 1, BlockKind::kRecv, 2.0, 3.0, &timing);
  collector.attribute(0, -1, BlockKind::kWait, 3.0, 4.0, nullptr);
  collector.attribute(1, 0, BlockKind::kSend, 0.0, 1.0, &timing);
  const ReplayMetrics m = collector.finish(4.0);

  EXPECT_DOUBLE_EQ(m.rank_waits[0].recv.total_s(), 3.0);
  EXPECT_DOUBLE_EQ(m.rank_waits[0].wait.dependency_s, 1.0);
  EXPECT_DOUBLE_EQ(m.rank_waits[0].total().total_s(), 4.0);
  EXPECT_DOUBLE_EQ(m.rank_waits[1].send.total_s(), 1.0);

  ASSERT_EQ(m.peer_waits.size(), 3u);
  // Sorted by (rank, peer); peer -1 first for rank 0.
  EXPECT_EQ(m.peer_waits[0].rank, 0);
  EXPECT_EQ(m.peer_waits[0].peer, -1);
  EXPECT_EQ(m.peer_waits[0].blocks, 1u);
  EXPECT_EQ(m.peer_waits[1].peer, 1);
  EXPECT_EQ(m.peer_waits[1].blocks, 2u);
  EXPECT_DOUBLE_EQ(m.peer_waits[1].components.total_s(), 3.0);
  EXPECT_EQ(m.peer_waits[2].rank, 1);
}

TEST(Collector, ZeroLengthSpansIgnored) {
  ReplayCollector collector(1, 1);
  collector.attribute(0, -1, BlockKind::kRecv, 1.0, 1.0, nullptr);
  const ReplayMetrics m = collector.finish(1.0);
  EXPECT_DOUBLE_EQ(m.rank_waits[0].total().total_s(), 0.0);
  EXPECT_TRUE(m.peer_waits.empty());
}

TEST(Collector, ProtocolCounts) {
  ReplayCollector collector(1, 1);
  collector.count_message(true, 100);
  collector.count_message(true, 50);
  collector.count_message(false, 100000);
  const ReplayMetrics m = collector.finish(1.0);
  EXPECT_EQ(m.protocol.eager_messages, 2u);
  EXPECT_EQ(m.protocol.eager_bytes, 150u);
  EXPECT_EQ(m.protocol.rendezvous_messages, 1u);
  EXPECT_EQ(m.protocol.rendezvous_bytes, 100000u);
}

// ---------------------------------------------------------------------------
// End-to-end attribution through dimemas::replay
// ---------------------------------------------------------------------------

dimemas::Platform test_platform(std::int32_t nodes) {
  dimemas::Platform p;
  p.num_nodes = nodes;
  p.model = dimemas::NetworkModelKind::kBus;
  p.bandwidth_MBps = 100.0;  // 100 KB → 1 ms serialization
  p.latency_us = 10.0;
  p.num_buses = 0;
  p.eager_threshold_bytes = 16 * 1024;
  return p;
}

dimemas::SimResult replay_with_metrics(trace::Trace trace,
                                       const dimemas::Platform& platform) {
  dimemas::ReplayOptions options;
  options.collect_metrics = true;
  return dimemas::replay(trace, platform, options);
}

void expect_attribution_matches_stats(const dimemas::SimResult& result) {
  ASSERT_NE(result.metrics, nullptr);
  const ReplayMetrics& m = *result.metrics;
  ASSERT_EQ(m.rank_waits.size(), result.rank_stats.size());
  for (std::size_t r = 0; r < result.rank_stats.size(); ++r) {
    const dimemas::RankStats& stats = result.rank_stats[r];
    EXPECT_NEAR(m.rank_waits[r].send.total_s(), stats.send_blocked_s, 1e-9)
        << "rank " << r;
    EXPECT_NEAR(m.rank_waits[r].recv.total_s(), stats.recv_blocked_s, 1e-9)
        << "rank " << r;
    EXPECT_NEAR(m.rank_waits[r].wait.total_s(), stats.wait_blocked_s, 1e-9)
        << "rank " << r;
  }
}

TEST(ReplayMetricsE2E, OffByDefault) {
  TraceBuilder b(2, 1000.0);
  b.send(0, 1, 0, 1000);
  b.recv(1, 0, 0, 1000);
  const dimemas::SimResult result =
      dimemas::replay(std::move(b).build(), test_platform(2));
  EXPECT_EQ(result.metrics, nullptr);
}

TEST(ReplayMetricsE2E, ProtocolCountsAndBytesReceived) {
  TraceBuilder b(2, 1000.0);
  b.send(0, 1, 0, 1000);          // eager
  b.send(0, 1, 1, 100 * 1000);    // rendezvous
  b.recv(1, 0, 0, 1000);
  b.recv(1, 0, 1, 100 * 1000);
  const dimemas::SimResult result =
      replay_with_metrics(std::move(b).build(), test_platform(2));
  EXPECT_EQ(result.metrics->protocol.eager_messages, 1u);
  EXPECT_EQ(result.metrics->protocol.eager_bytes, 1000u);
  EXPECT_EQ(result.metrics->protocol.rendezvous_messages, 1u);
  EXPECT_EQ(result.metrics->protocol.rendezvous_bytes, 100000u);
  EXPECT_EQ(result.rank_stats[0].bytes_sent, 101000u);
  EXPECT_EQ(result.rank_stats[1].bytes_received, 101000u);
}

TEST(ReplayMetricsE2E, RecvWaitIsWireAndLatencyAndDependency) {
  // Receiver posts at t=0; sender computes 100 us first, then rendezvous
  // 100 KB: dependency 100 us, wire 1 ms, latency 10 us.
  TraceBuilder b(2, 1000.0);
  b.compute(0, 100'000).send(0, 1, 0, 100 * 1000);
  b.recv(1, 0, 0, 100 * 1000);
  const dimemas::SimResult result =
      replay_with_metrics(std::move(b).build(), test_platform(2));
  expect_attribution_matches_stats(result);
  const WaitComponents& recv = result.metrics->rank_waits[1].recv;
  EXPECT_NEAR(recv.dependency_s, 100.0 * kUs, 1e-12);
  EXPECT_NEAR(recv.wire_s, 1000.0 * kUs, 1e-12);
  EXPECT_NEAR(recv.latency_s, 10.0 * kUs, 1e-12);
  EXPECT_DOUBLE_EQ(recv.bus_contention_s, 0.0);
  EXPECT_DOUBLE_EQ(recv.port_contention_s, 0.0);
  // The peer attribution names the sender.
  ASSERT_FALSE(result.metrics->peer_waits.empty());
  bool found = false;
  for (const PeerWait& pw : result.metrics->peer_waits) {
    if (pw.rank == 1 && pw.peer == 0) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(ReplayMetricsE2E, BusContentionAttributed) {
  // Two concurrent 100 KB rendezvous transfers, one global bus: the second
  // transfer queues for one serialization time (1 ms) on the bus.
  TraceBuilder b(4, 1000.0);
  b.send(0, 2, 0, 100 * 1000);
  b.send(1, 3, 0, 100 * 1000);
  b.recv(2, 0, 0, 100 * 1000);
  b.recv(3, 1, 0, 100 * 1000);
  dimemas::Platform p = test_platform(4);
  p.num_buses = 1;
  const dimemas::SimResult result =
      replay_with_metrics(std::move(b).build(), p);
  expect_attribution_matches_stats(result);
  double bus_contention = 0.0;
  for (const auto& rw : result.metrics->rank_waits) {
    bus_contention += rw.total().bus_contention_s;
  }
  EXPECT_NEAR(bus_contention, 2 * 1000.0 * kUs, 1e-9);  // sender + receiver
  EXPECT_EQ(result.metrics->bus.peak, 1);
  EXPECT_EQ(result.metrics->bus.capacity, 1);
  EXPECT_GT(result.metrics->bus.utilization, 0.0);
}

TEST(ReplayMetricsE2E, PortContentionAttributed) {
  // Two senders into one receiver with one input port: the second transfer
  // queues on the receiver's input port.
  TraceBuilder b(3, 1000.0);
  b.send(0, 2, 0, 100 * 1000);
  b.send(1, 2, 1, 100 * 1000);
  b.irecv(2, 0, 0, 100 * 1000, 1);
  b.irecv(2, 1, 1, 100 * 1000, 2);
  b.wait(2, {1, 2});
  const dimemas::SimResult result =
      replay_with_metrics(std::move(b).build(), test_platform(3));
  expect_attribution_matches_stats(result);
  const WaitComponents wait = result.metrics->rank_waits[2].wait;
  EXPECT_NEAR(wait.port_contention_s, 1000.0 * kUs, 1e-9);
  EXPECT_EQ(result.metrics->node_in[2].peak, 1);
  EXPECT_GT(result.metrics->node_in[2].busy_s, 0.0);
  EXPECT_EQ(result.metrics->node_out[0].peak, 1);
}

TEST(ReplayMetricsE2E, FairShareAttributionSums) {
  TraceBuilder b(2, 1000.0);
  b.compute(0, 50'000).send(0, 1, 0, 100 * 1000);
  b.recv(1, 0, 0, 100 * 1000);
  dimemas::Platform p = test_platform(2);
  p.model = dimemas::NetworkModelKind::kFairShare;
  const dimemas::SimResult result =
      replay_with_metrics(std::move(b).build(), p);
  expect_attribution_matches_stats(result);
  // The fair-share bus tracker counts concurrent flows.
  EXPECT_TRUE(result.metrics->bus.tracked);
  EXPECT_EQ(result.metrics->bus.peak, 1);
}

TEST(ReplayMetricsE2E, CollectiveTraceAttributionSums) {
  TraceBuilder b(4, 1000.0);
  for (trace::Rank r = 0; r < 4; ++r) {
    b.compute(r, 1000 * static_cast<std::uint64_t>(r + 1));
    b.global(r, trace::CollectiveKind::kAllreduce, 0, 4096, 0);
  }
  const dimemas::SimResult result =
      replay_with_metrics(std::move(b).build(), test_platform(4));
  expect_attribution_matches_stats(result);
}

}  // namespace
}  // namespace osim::metrics
