// Tests for the persistent scenario store (src/store): object format
// strictness, store round trips, damage handling, maintenance (stats /
// verify / gc), and — the acceptance property — a warm Study run served
// entirely from the disk tier with bit-identical makespans.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/crc32.hpp"
#include "pipeline/context.hpp"
#include "pipeline/fingerprint.hpp"
#include "pipeline/report.hpp"
#include "pipeline/study.hpp"
#include "store/format.hpp"
#include "store/store.hpp"
#include "trace/trace.hpp"

namespace osim::store {
namespace {

namespace fs = std::filesystem;

// Fresh per-test store root under gtest's temp dir.
std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/osim_store_" + name;
  fs::remove_all(dir);
  return dir;
}

pipeline::Fingerprint fp(std::uint64_t lo, std::uint64_t hi) {
  return pipeline::Fingerprint{lo, hi};
}

ScenarioArtifact sample_artifact(int seed) {
  ScenarioArtifact a;
  a.makespan = 1.25 + 0.125 * seed;
  a.des_events = 1000 + static_cast<std::uint64_t>(seed);
  a.fault_wait_s = seed % 2 == 0 ? 0.0 : 0.03125 * seed;
  a.fault_counts.enabled = seed % 2 != 0;
  a.fault_counts.seed = static_cast<std::uint64_t>(seed);
  a.fault_counts.retransmits = static_cast<std::uint64_t>(2 * seed);
  for (int r = 0; r < 3; ++r) {
    dimemas::RankStats rs;
    rs.compute_s = 0.5 * r + seed;
    rs.send_blocked_s = 0.25 * r;
    rs.recv_blocked_s = 0.125 * r;
    rs.finish_time = 1.0 + r;
    rs.messages_sent = static_cast<std::uint64_t>(10 * r + seed);
    rs.bytes_sent = static_cast<std::uint64_t>(1024 * r);
    rs.bytes_received = static_cast<std::uint64_t>(2048 * r);
    a.rank_stats.push_back(rs);
  }
  return a;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Recomputes the trailing CRC-32 (over everything after the 8-byte magic)
// so tests can prove a check fires on its own, not via the CRC.
std::string with_recomputed_crc(std::string bytes) {
  Crc32 crc;
  crc.update(bytes.data() + 8, bytes.size() - 12);
  const std::uint32_t v = crc.value();
  for (int i = 0; i < 4; ++i) {
    bytes[bytes.size() - 4 + static_cast<std::size_t>(i)] =
        static_cast<char>((v >> (8 * i)) & 0xFF);
  }
  return bytes;
}

// Ring exchange (as in pipeline_test.cpp): communication-bound enough that
// bandwidth changes move the makespan, so sweeps produce distinct keys.
trace::Trace ring_trace(std::int32_t ranks, int rounds) {
  trace::TraceBuilder b(ranks, 1000.0);
  for (trace::Rank r = 0; r < ranks; ++r) {
    const trace::Rank next = static_cast<trace::Rank>((r + 1) % ranks);
    const trace::Rank prev =
        static_cast<trace::Rank>((r + ranks - 1) % ranks);
    for (int i = 0; i < rounds; ++i) {
      b.irecv(r, prev, i, 32 * 1024, i + 1);
      b.compute(r, 20'000);
      b.send(r, next, i, 32 * 1024);
      b.wait(r, {i + 1});
    }
  }
  return std::move(b).build();
}

dimemas::Platform ring_platform(std::int32_t nodes) {
  dimemas::Platform p;
  p.num_nodes = nodes;
  p.bandwidth_MBps = 250.0;
  p.latency_us = 4.0;
  return p;
}

// --- fingerprint hex --------------------------------------------------------

TEST(FingerprintHex, RoundTrip) {
  const pipeline::Fingerprint f = fp(0x0123456789abcdefULL, 0xfedcba9876543210ULL);
  const std::string hex = pipeline::to_hex(f);
  EXPECT_EQ(hex.size(), 32u);
  EXPECT_EQ(hex, "fedcba98765432100123456789abcdef");
  const auto parsed = pipeline::fingerprint_from_hex(hex);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, f);
}

TEST(FingerprintHex, RejectsMalformed) {
  EXPECT_FALSE(pipeline::fingerprint_from_hex("").has_value());
  EXPECT_FALSE(pipeline::fingerprint_from_hex("abc").has_value());
  EXPECT_FALSE(pipeline::fingerprint_from_hex(std::string(31, 'a')));
  EXPECT_FALSE(pipeline::fingerprint_from_hex(std::string(33, 'a')));
  std::string bad(32, 'a');
  bad[7] = 'g';
  EXPECT_FALSE(pipeline::fingerprint_from_hex(bad).has_value());
}

// --- object format ----------------------------------------------------------

TEST(StoreFormat, EncodeDecodeRoundTrip) {
  const ScenarioArtifact artifact = sample_artifact(3);
  const pipeline::Fingerprint key = fp(11, 22);
  const std::string bytes = encode_object(key, artifact);
  const auto decoded = decode_object(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->fingerprint, key);
  EXPECT_EQ(decoded->artifact, artifact);
}

TEST(StoreFormat, RejectsWrongMagic) {
  std::string bytes = encode_object(fp(1, 2), sample_artifact(0));
  bytes[0] = 'X';
  EXPECT_FALSE(decode_object(bytes).has_value());
}

TEST(StoreFormat, RejectsVersionSkewIndependentlyOfCrc) {
  std::string bytes = encode_object(fp(1, 2), sample_artifact(0));
  bytes[8] = static_cast<char>(kObjectVersion + 1);  // version u32, LE
  // Recompute the CRC so only the version check can reject it.
  bytes = with_recomputed_crc(std::move(bytes));
  EXPECT_FALSE(decode_object(bytes).has_value());
}

TEST(StoreFormat, RejectsCorruptPayload) {
  const std::string good = encode_object(fp(1, 2), sample_artifact(5));
  for (const std::size_t offset : {std::size_t{9}, good.size() / 2,
                                   good.size() - 5}) {
    std::string bad = good;
    bad[offset] = static_cast<char>(bad[offset] ^ 0x10);
    EXPECT_FALSE(decode_object(bad).has_value()) << "offset " << offset;
  }
}

TEST(StoreFormat, RejectsTruncationAndTrailingBytes) {
  const std::string good = encode_object(fp(7, 8), sample_artifact(1));
  for (std::size_t n = 0; n < good.size(); ++n) {
    EXPECT_FALSE(decode_object(good.substr(0, n)).has_value())
        << "prefix " << n;
  }
  EXPECT_FALSE(decode_object(good + '\0').has_value());
}

// --- report objects (OSIMRPT1, the osim_serve durable tier) ----------------

TEST(ReportObject, EncodeDecodeRoundTrip) {
  const pipeline::Fingerprint scenario = fp(33, 44);
  const pipeline::Fingerprint addr = report_address(scenario);
  const std::string json = "{\"schema\":\"osim.run_report\",\"makespan\":1.5}";
  const std::string bytes = encode_report_object(addr, json);
  const auto decoded = decode_report_object(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->fingerprint, addr);
  EXPECT_EQ(decoded->report_json, json);
}

TEST(ReportObject, AddressNeverCollidesWithScenario) {
  // The report object shares the store's object tree with the replay
  // artifact of the same scenario; the domain-tagged derivation must give
  // it a different address or one kind would overwrite the other.
  const pipeline::Fingerprint scenario = fp(5, 6);
  EXPECT_FALSE(report_address(scenario) == scenario);
  // And the derivation is deterministic.
  EXPECT_EQ(report_address(scenario), report_address(scenario));
  EXPECT_FALSE(report_address(fp(5, 7)) == report_address(scenario));
}

TEST(ReportObject, AnyDamageIsAMiss) {
  const pipeline::Fingerprint addr = report_address(fp(1, 2));
  const std::string good = encode_report_object(addr, "{\"k\":1}");
  for (std::size_t offset = 0; offset < good.size(); ++offset) {
    std::string bad = good;
    bad[offset] = static_cast<char>(bad[offset] ^ 0x01);
    EXPECT_FALSE(decode_report_object(bad).has_value()) << "offset " << offset;
  }
  for (std::size_t n = 0; n < good.size(); ++n) {
    EXPECT_FALSE(decode_report_object(good.substr(0, n)).has_value())
        << "prefix " << n;
  }
  EXPECT_FALSE(decode_report_object(good + '\0').has_value());
}

TEST(ReportObject, StoreRoundTripAndProbe) {
  const std::string dir = fresh_dir("report_objects");
  ScenarioStore store(dir);
  const pipeline::Fingerprint scenario = fp(100, 200);
  const std::string json = "{\"schema\":\"osim.run_report\",\"app\":\"cg\"}";
  EXPECT_FALSE(store.load_report(scenario).has_value());
  store.save_report(scenario, json);
  const std::optional<std::string> loaded = store.load_report(scenario);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, json);
  // A replay artifact under the same scenario key coexists: different
  // addresses, one store.
  store.save(scenario, sample_artifact(2));
  EXPECT_TRUE(store.load(scenario).has_value());
  EXPECT_TRUE(store.load_report(scenario).has_value());
  // verify() understands the new kind (probe_object dispatch).
  EXPECT_TRUE(store.verify().clean());
}

TEST(ReportObject, CorruptReportObjectIsAMissAndGcRemovesIt) {
  const std::string dir = fresh_dir("report_corrupt");
  ScenarioStore store(dir);
  const pipeline::Fingerprint scenario = fp(9, 9);
  store.save_report(scenario, "{\"x\":true}");
  const std::string path = store.object_path(report_address(scenario));
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    bytes = std::move(buffer).str();
  }
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_FALSE(store.load_report(scenario).has_value());
  EXPECT_GE(store.rejects(), 1u);
  EXPECT_FALSE(store.verify().clean());
  store.gc(1 << 20);
  EXPECT_TRUE(store.verify().clean());
}

// --- ScenarioStore ----------------------------------------------------------

TEST(ScenarioStore, SaveLoadRoundTripAndMiss) {
  ScenarioStore store(fresh_dir("roundtrip"));
  const pipeline::Fingerprint key = fp(100, 200);
  EXPECT_FALSE(store.load(key).has_value());
  EXPECT_EQ(store.misses(), 1u);

  const ScenarioArtifact artifact = sample_artifact(4);
  store.save(key, artifact);
  const auto loaded = store.load(key);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, artifact);
  EXPECT_EQ(store.hits(), 1u);
  EXPECT_TRUE(fs::exists(store.object_path(key)));
}

TEST(ScenarioStore, CorruptObjectIsAMissNeverACrash) {
  ScenarioStore store(fresh_dir("corrupt"));
  const pipeline::Fingerprint key = fp(1, 2);
  store.save(key, sample_artifact(2));

  std::string bytes = read_file(store.object_path(key));
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x01);
  write_file(store.object_path(key), bytes);

  EXPECT_FALSE(store.load(key).has_value());
  EXPECT_EQ(store.rejects(), 1u);
  EXPECT_EQ(store.misses(), 1u);
}

TEST(ScenarioStore, CrossCopiedObjectIsAMiss) {
  // An intact object renamed to a different address must not be served:
  // the embedded fingerprint catches what a file CRC cannot.
  ScenarioStore store(fresh_dir("crosscopy"));
  const pipeline::Fingerprint a = fp(1, 2);
  const pipeline::Fingerprint b = fp(3, 4);
  store.save(a, sample_artifact(6));
  fs::create_directories(fs::path(store.object_path(b)).parent_path());
  fs::copy_file(store.object_path(a), store.object_path(b));
  EXPECT_FALSE(store.load(b).has_value());
  EXPECT_EQ(store.rejects(), 1u);
}

TEST(ScenarioStore, StatsCountObjectsAndBytes) {
  ScenarioStore store(fresh_dir("stats"));
  std::uint64_t expected_bytes = 0;
  for (int i = 0; i < 3; ++i) {
    store.save(fp(static_cast<std::uint64_t>(i), 9), sample_artifact(i));
    expected_bytes +=
        fs::file_size(store.object_path(fp(static_cast<std::uint64_t>(i), 9)));
  }
  const StoreStats stats = store.stats();
  EXPECT_EQ(stats.objects, 3u);
  EXPECT_EQ(stats.bytes, expected_bytes);
  EXPECT_FALSE(stats.index_rebuilt);
}

TEST(ScenarioStore, VerifyReportsDamage) {
  ScenarioStore store(fresh_dir("verify"));
  store.save(fp(1, 1), sample_artifact(1));
  store.save(fp(2, 2), sample_artifact(2));
  EXPECT_TRUE(store.verify().clean());

  std::string bytes = read_file(store.object_path(fp(2, 2)));
  bytes[bytes.size() - 1] = static_cast<char>(bytes[bytes.size() - 1] ^ 0xFF);
  write_file(store.object_path(fp(2, 2)), bytes);

  const VerifyReport report = store.verify();
  EXPECT_EQ(report.objects_checked, 2u);
  EXPECT_EQ(report.objects_ok, 1u);
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_NE(report.render_text().find(report.issues[0].message),
            std::string::npos);
}

TEST(ScenarioStore, GcEvictsLeastRecentlyUsedFirst) {
  ScenarioStore store(fresh_dir("gc_lru"));
  const pipeline::Fingerprint cold = fp(1, 0);
  const pipeline::Fingerprint warm = fp(2, 0);
  const pipeline::Fingerprint hot = fp(3, 0);
  for (const auto& key : {cold, warm, hot}) {
    store.save(key, sample_artifact(static_cast<int>(key.lo)));
  }
  // Recency order (oldest first): cold, warm, hot.
  ASSERT_TRUE(store.load(warm).has_value());
  ASSERT_TRUE(store.load(hot).has_value());

  const std::uint64_t object_bytes = fs::file_size(store.object_path(cold));
  const GcReport report = store.gc(2 * object_bytes + 1);
  EXPECT_EQ(report.objects_before, 3u);
  EXPECT_EQ(report.objects_removed, 1u);
  EXPECT_EQ(report.objects_kept, 2u);
  EXPECT_FALSE(fs::exists(store.object_path(cold)));
  EXPECT_TRUE(fs::exists(store.object_path(warm)));
  EXPECT_TRUE(fs::exists(store.object_path(hot)));

  // max_bytes == 0 empties the store.
  const GcReport empty = store.gc(0);
  EXPECT_EQ(empty.objects_kept, 0u);
  EXPECT_EQ(store.stats().objects, 0u);
}

TEST(ScenarioStore, GcRemovesCorruptObjectsUnconditionally) {
  ScenarioStore store(fresh_dir("gc_corrupt"));
  store.save(fp(1, 1), sample_artifact(1));
  store.save(fp(2, 2), sample_artifact(2));
  write_file(store.object_path(fp(1, 1)), "garbage");

  const GcReport report = store.gc(1u << 30);  // budget fits everything
  EXPECT_EQ(report.objects_removed, 1u);
  EXPECT_FALSE(fs::exists(store.object_path(fp(1, 1))));
  EXPECT_TRUE(fs::exists(store.object_path(fp(2, 2))));
  EXPECT_TRUE(store.verify().clean());
}

TEST(ScenarioStore, DamagedIndexIsRebuiltFromObjects) {
  const std::string dir = fresh_dir("index_rebuild");
  {
    ScenarioStore store(dir);
    store.save(fp(5, 6), sample_artifact(3));
    store.stats();  // persist an index
  }
  write_file(dir + "/index.osim", "not an index");
  ScenarioStore store(dir);
  const StoreStats stats = store.stats();
  EXPECT_TRUE(stats.index_rebuilt);
  EXPECT_EQ(stats.objects, 1u);
  EXPECT_TRUE(store.load(fp(5, 6)).has_value());  // objects are unaffected
}

TEST(ScenarioStore, StaleTmpFilesAreSweptOnOpen) {
  const std::string dir = fresh_dir("tmp_sweep");
  { ScenarioStore store(dir); }  // create the tree
  const std::string stale = dir + "/tmp/tmp.12345.0";
  const std::string young = dir + "/tmp/tmp.12345.1";
  write_file(stale, "orphan of a crashed publication");
  write_file(young, "a live writer mid-rename");
  // Backdate one file past the sweep horizon; the other stays young.
  fs::last_write_time(stale, fs::file_time_type::clock::now() -
                                 std::chrono::hours(24));

  // A fresh open sweeps the stale orphan but leaves the young file for
  // its (possibly live) writer.
  ScenarioStore store(dir);
  EXPECT_FALSE(fs::exists(stale));
  EXPECT_TRUE(fs::exists(young));

  // The explicit entry point with a zero horizon clears the rest.
  EXPECT_EQ(ScenarioStore::sweep_stale_tmp(dir, std::chrono::seconds(0)), 1u);
  EXPECT_FALSE(fs::exists(young));

  // Sweeping a store with no tmp directory at all is a quiet no-op.
  fs::remove_all(dir + "/tmp");
  EXPECT_EQ(ScenarioStore::sweep_stale_tmp(dir, std::chrono::seconds(0)), 0u);
}

TEST(ScenarioStore, UnindexedObjectsAreAdopted) {
  // A store whose index vanished (or never existed) still counts and
  // serves its objects: the index is metadata, not a table of contents.
  const std::string dir = fresh_dir("adopt");
  {
    ScenarioStore store(dir);
    store.save(fp(7, 7), sample_artifact(1));
    store.stats();
  }
  fs::remove(dir + "/index.osim");
  ScenarioStore store(dir);
  EXPECT_EQ(store.stats().objects, 1u);
  EXPECT_TRUE(store.load(fp(7, 7)).has_value());
}

// --- Study integration ------------------------------------------------------

// The acceptance golden test: a cold Study populates the disk tier; a
// fresh warm Study over the same scenarios replays nothing and reproduces
// every makespan bit-identically.
TEST(StudyDiskTier, WarmRunIsAllDiskHitsAndBitIdentical) {
  const std::string dir = fresh_dir("golden");
  const trace::Trace t = ring_trace(4, 3);
  std::vector<pipeline::ReplayContext> contexts;
  const pipeline::ReplayContext base(t, ring_platform(4));
  for (const double bw : {50.0, 100.0, 250.0, 500.0, 1000.0}) {
    contexts.push_back(base.with_bandwidth(bw));
  }

  std::vector<double> cold_makespans;
  {
    pipeline::StudyOptions options;
    options.cache_dir = dir;
    options.record_scenarios = true;
    pipeline::Study cold(options);
    ASSERT_NE(cold.store(), nullptr);
    for (const auto& context : contexts) {
      cold_makespans.push_back(cold.makespan(context, "sweep"));
    }
    EXPECT_EQ(cold.cache_misses(), contexts.size());
    EXPECT_EQ(cold.disk_hits(), 0u);
    for (const auto& record : cold.scenarios()) {
      EXPECT_EQ(record.cache_tier, pipeline::CacheTier::kMiss);
    }
  }

  pipeline::StudyOptions options;
  options.cache_dir = dir;
  options.record_scenarios = true;
  pipeline::Study warm(options);
  std::vector<double> warm_makespans;
  for (const auto& context : contexts) {
    warm_makespans.push_back(warm.makespan(context, "sweep"));
  }
  EXPECT_EQ(warm.cache_misses(), 0u);
  EXPECT_EQ(warm.disk_hits(), contexts.size());
  const std::vector<pipeline::ScenarioRecord> records = warm.scenarios();
  ASSERT_EQ(records.size(), contexts.size());
  for (const auto& record : records) {
    EXPECT_EQ(record.cache_tier, pipeline::CacheTier::kDisk);
    EXPECT_TRUE(record.cache_hit);
  }
  ASSERT_EQ(warm_makespans.size(), cold_makespans.size());
  for (std::size_t i = 0; i < cold_makespans.size(); ++i) {
    EXPECT_EQ(warm_makespans[i], cold_makespans[i]) << "scenario " << i;
  }
}

TEST(StudyDiskTier, NoCacheDirMeansNoStore) {
  // Guard $OSIM_CACHE_DIR leaking into the test environment.
  unsetenv("OSIM_CACHE_DIR");
  pipeline::Study study;
  EXPECT_EQ(study.store(), nullptr);
  study.makespan(pipeline::ReplayContext(ring_trace(2, 1), ring_platform(2)));
  EXPECT_EQ(study.disk_hits(), 0u);
}

TEST(StudyDiskTier, MemoryTierIsPreferredWithinAStudy) {
  pipeline::StudyOptions options;
  options.cache_dir = fresh_dir("tiers");
  pipeline::Study study(options);
  const pipeline::ReplayContext context(ring_trace(2, 2), ring_platform(2));
  const double first = study.makespan(context);
  const double second = study.makespan(context);
  EXPECT_EQ(first, second);
  EXPECT_EQ(study.cache_hits(), 1u);   // memory tier answered the repeat
  EXPECT_EQ(study.disk_hits(), 0u);    // disk never consulted for it
}

TEST(StudyDiskTier, CorruptStoreDegradesToColdRun) {
  const std::string dir = fresh_dir("degrade");
  const pipeline::ReplayContext context(ring_trace(2, 2), ring_platform(2));
  double cold = 0.0;
  {
    pipeline::StudyOptions options;
    options.cache_dir = dir;
    pipeline::Study study(options);
    cold = study.makespan(context);
  }
  // Flip a bit in every stored object: the warm run must silently replay.
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    if (entry.path().filename() == "index.osim" ||
        entry.path().filename() == "lock") {
      continue;
    }
    std::string bytes = read_file(entry.path().string());
    bytes[bytes.size() / 3] ^= 0x40;
    write_file(entry.path().string(), bytes);
  }
  pipeline::StudyOptions options;
  options.cache_dir = dir;
  pipeline::Study study(options);
  EXPECT_EQ(study.makespan(context), cold);
  EXPECT_EQ(study.disk_hits(), 0u);
  EXPECT_EQ(study.cache_misses(), 1u);
}

TEST(StudyDiskTier, ReportCarriesTierAndSortedScenarios) {
  const std::string dir = fresh_dir("report");
  const trace::Trace t = ring_trace(2, 2);
  const pipeline::ReplayContext base(t, ring_platform(2));
  {
    pipeline::StudyOptions options;
    options.cache_dir = dir;
    pipeline::Study cold(options);
    cold.makespan(base.with_bandwidth(100.0));
    cold.makespan(base.with_bandwidth(200.0));
  }
  pipeline::StudyOptions options;
  options.cache_dir = dir;
  options.record_scenarios = true;
  pipeline::Study warm(options);
  // Evaluate in anti-alphabetical label order; the report must sort.
  warm.makespan(base.with_bandwidth(200.0), "zeta");
  warm.makespan(base.with_bandwidth(100.0), "alpha");

  const std::string json = pipeline::study_report_json(warm);
  EXPECT_NE(json.find("\"disk_hits\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"tier\":\"disk\""), std::string::npos) << json;
  const std::size_t alpha = json.find("\"alpha\"");
  const std::size_t zeta = json.find("\"zeta\"");
  ASSERT_NE(alpha, std::string::npos);
  ASSERT_NE(zeta, std::string::npos);
  EXPECT_LT(alpha, zeta);
}

}  // namespace
}  // namespace osim::store
