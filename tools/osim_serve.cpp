// osim_serve — the always-on analysis service (controller process).
//
// Runs the controller/worker daemon described in DESIGN.md §3.10: clients
// (osim_client, or anything speaking OSIMRPC1) submit scenarios over a
// Unix-domain socket, the controller dedupes them by scenario fingerprint,
// batches compatible work, and schedules it onto forked worker processes
// that run the ordinary replay pipeline with the scenario store as the
// warm tier.
//
//   osim_serve --socket /tmp/osim.sock --workers 4 --cache-dir ~/.cache/osim
//   osim_serve --socket /tmp/osim.sock --journal --cache-dir DIR   # durable
//   osim_serve --socket /tmp/osim.sock --tcp-port 7077             # + TCP
//
// Exit codes follow common/exit_codes.hpp: 0 after a shutdown RPC, 2 bad
// command line, 5 after a SIGTERM/SIGINT drain (running jobs finished,
// queue cancelled, every waiter answered).
//
// The --worker mode is internal: the controller re-execs this binary with
// --worker --worker-fd 3 to spawn each worker process.
#include <cstdio>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "common/exit_codes.hpp"
#include "common/expect.hpp"
#include "common/flags.hpp"
#include "common/signals.hpp"
#include "serve/controller.hpp"
#include "serve/worker.hpp"
#include "store/store.hpp"

namespace {

// The path the controller re-execs for worker processes: the running
// binary itself, resolved through /proc where available so a PATH-relative
// argv[0] still works.
std::string self_binary(const char* argv0) {
#if defined(__linux__)
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) return std::string(buf, static_cast<std::size_t>(n));
#endif
  return argv0 != nullptr ? std::string(argv0) : std::string();
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace osim;

  std::string socket_path;
  std::int64_t tcp_port = 0;
  std::int64_t workers = 2;
  std::string worker_mode = "fork";
  std::string cache_dir;
  bool journal = false;
  std::int64_t max_queue = 64;
  std::int64_t max_inflight_bytes = std::int64_t{256} << 20;
  std::int64_t max_retries = 2;
  std::int64_t max_batch = 8;
  std::int64_t report_cache = 64;
  bool worker = false;
  std::int64_t worker_fd = -1;

  Flags flags(
      "osim_serve: the always-on analysis service (submit scenarios with "
      "osim_client)");
  flags.add("socket", &socket_path,
            "Unix-domain socket to listen on (required)");
  flags.add("tcp-port", &tcp_port,
            "additionally listen on 127.0.0.1:<port> (0 = off)");
  flags.add("workers", &workers, "worker processes");
  flags.add("worker-mode", &worker_mode,
            "worker isolation: fork (processes) | thread (in-process)");
  flags.add("cache-dir", &cache_dir,
            "scenario store directory (default: $OSIM_CACHE_DIR; the "
            "service's durable tier)");
  flags.add("journal", &journal,
            "journal completed scenarios so a restart resumes without "
            "recomputing (requires a cache dir)");
  flags.add("max-queue", &max_queue,
            "admission control: refuse submits beyond this many queued "
            "jobs (exit code 6 at the client)");
  flags.add("max-inflight-bytes", &max_inflight_bytes,
            "admission control: refuse submits once queued trace files "
            "exceed this many bytes");
  flags.add("max-retries", &max_retries,
            "worker deaths tolerated per job before it is failed");
  flags.add("max-batch", &max_batch,
            "max same-trace jobs handed to one worker at a time");
  flags.add("report-cache", &report_cache,
            "completed reports kept in memory (older ones served from the "
            "store)");
  flags.add("worker", &worker, "internal: run as a worker process");
  flags.add("worker-fd", &worker_fd, "internal: the worker's job socket fd");
  if (!flags.parse(argc, argv)) return 0;

  if (worker) {
    if (worker_fd < 0) throw UsageError("--worker requires --worker-fd");
    ignore_sigpipe();
    return serve::run_worker_loop(static_cast<int>(worker_fd),
                                  store::resolve_cache_dir(cache_dir));
  }

  if (socket_path.empty()) throw UsageError("--socket is required");
  if (worker_mode != "fork" && worker_mode != "thread") {
    throw UsageError("--worker-mode must be fork or thread");
  }

  serve::ControllerOptions options;
  options.socket_path = socket_path;
  options.tcp_port = static_cast<int>(tcp_port);
  options.workers = static_cast<int>(workers);
  options.fork_workers = worker_mode == "fork";
  options.serve_binary = self_binary(argc > 0 ? argv[0] : nullptr);
  options.cache_dir = store::resolve_cache_dir(cache_dir);
  options.journal = journal && !options.cache_dir.empty();
  options.max_queue = max_queue;
  options.max_inflight_bytes = max_inflight_bytes;
  options.max_retries = static_cast<int>(max_retries);
  options.max_batch = static_cast<int>(max_batch);
  options.report_cache_entries = report_cache;

  std::fprintf(stderr,
               "osim_serve: listening on %s (%lld %s worker(s)%s%s)\n",
               socket_path.c_str(), static_cast<long long>(workers),
               worker_mode.c_str(),
               options.cache_dir.empty() ? "" : ", store ",
               options.cache_dir.c_str());

  serve::Controller controller(options);
  return controller.run();
} catch (const osim::UsageError& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return osim::kExitUsage;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return osim::kExitError;
}
