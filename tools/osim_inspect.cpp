// osim_inspect — summarize a trace file: record counts, communication
// volumes, message-size distribution, per-rank structure; optionally
// validate only.
//
//   osim_inspect --trace /tmp/cg.original.trace
//   osim_inspect --trace t.trace --validate-only
#include <cstdio>

#include "common/expect.hpp"
#include "common/flags.hpp"
#include "trace/binary_io.hpp"
#include "trace/summary.hpp"

int main(int argc, char** argv) try {
  using namespace osim;
  std::string trace_path;
  bool validate_only = false;

  Flags flags("osim_inspect: summarize and validate a trace file");
  flags.add("trace", &trace_path, "trace file to inspect (required)");
  flags.add("validate-only", &validate_only,
            "exit after structural validation");
  if (!flags.parse(argc, argv)) return 0;
  if (trace_path.empty()) throw Error("--trace is required");

  const trace::Trace t = trace::read_any_file(trace_path);
  trace::validate(t);
  if (validate_only) {
    std::printf("%s: valid\n", trace_path.c_str());
    return 0;
  }
  std::printf("%s", trace::render(trace::summarize(t)).c_str());
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
