// osim_inspect — summarize a trace file: record counts, communication
// volumes, message-size distribution, per-rank structure; optionally
// validate only.
//
// --validate-only runs both the structural validator (trace::validate)
// and the semantic linter (lint::lint_trace), so a trace that would replay
// into garbage — unmatched traffic, leaked requests, deadlock, mismatched
// collectives — is rejected here with per-record diagnostics.
//
//   osim_inspect --trace /tmp/cg.original.trace
//   osim_inspect --trace t.trace --validate-only
#include <cstdio>

#include "common/expect.hpp"
#include "common/flags.hpp"
#include "lint/lint.hpp"
#include "trace/binary_io.hpp"
#include "trace/summary.hpp"

int main(int argc, char** argv) try {
  using namespace osim;
  std::string trace_path;
  bool validate_only = false;

  Flags flags("osim_inspect: summarize and validate a trace file");
  flags.add("trace", &trace_path, "trace file to inspect (required)");
  flags.add("validate-only", &validate_only,
            "exit after structural validation and semantic lint");
  if (!flags.parse(argc, argv)) return 0;
  if (trace_path.empty()) throw Error("--trace is required");

  const trace::Trace t = trace::read_any_file(trace_path);
  trace::validate(t);
  if (validate_only) {
    const lint::Report report = lint::lint_trace(t);
    if (!report.clean()) {
      std::printf("%s", report.render_text().c_str());
      return report.num_errors() > 0 ? 1 : 0;
    }
    std::printf("%s: valid\n", trace_path.c_str());
    return 0;
  }
  std::printf("%s", trace::render(trace::summarize(t)).c_str());
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
