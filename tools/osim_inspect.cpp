// osim_inspect — summarize a trace file: record counts, communication
// volumes, message-size distribution, per-rank structure; optionally
// validate only.
//
// --validate-only runs both the structural validator (trace::validate)
// and the semantic linter (lint::lint_trace), so a trace that would replay
// into garbage — unmatched traffic, leaked requests, deadlock, mismatched
// collectives — is rejected here with per-record diagnostics.
//
// --validate additionally reads the file through the salvaging reader
// first and prints a damage summary (corrupt records, CRC mismatches,
// truncation, with byte offsets), then validates whatever was salvaged.
// Exit codes follow common/exit_codes.hpp: 0 clean, 1 semantically
// invalid, 3 unreadable, 4 damaged but salvageable.
//
//   osim_inspect --trace /tmp/cg.original.trace
//   osim_inspect --trace t.trace --validate-only
//   osim_inspect --trace t.trace --validate       # + damage triage
#include <cstdio>
#include <utility>

#include "common/exit_codes.hpp"
#include "common/expect.hpp"
#include "common/flags.hpp"
#include "lint/lint.hpp"
#include "trace/binary_io.hpp"
#include "trace/summary.hpp"

namespace {

/// Structural + semantic validation of an in-memory trace; returns the
/// process exit code.
int validate_trace(const osim::trace::Trace& t, const std::string& path) {
  using namespace osim;
  trace::validate(t);
  const lint::Report report = lint::lint_trace(t);
  if (!report.clean()) {
    std::printf("%s", report.render_text().c_str());
    return report.num_errors() > 0 ? kExitError : kExitOk;
  }
  std::printf("%s: valid\n", path.c_str());
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace osim;
  std::string trace_path;
  bool validate_only = false;
  bool validate = false;

  Flags flags("osim_inspect: summarize and validate a trace file");
  flags.add("trace", &trace_path, "trace file to inspect (required)");
  flags.add("validate-only", &validate_only,
            "exit after structural validation and semantic lint");
  flags.add("validate", &validate,
            "like --validate-only, but salvage damaged input first and "
            "print a damage summary (exit 3 = unreadable, 4 = damaged "
            "but salvageable)");
  if (!flags.parse(argc, argv)) return 0;
  if (trace_path.empty()) throw UsageError("--trace is required");

  if (validate) {
    trace::RecoveredTrace recovered =
        trace::read_any_file_recover(trace_path);
    if (!recovered.damage.clean()) {
      std::printf("%s", recovered.damage.render_text().c_str());
      if (recovered.damage.unusable) {
        std::printf("%s: unreadable\n", trace_path.c_str());
        return kExitUnreadable;
      }
      // Validate the salvage so the damage triage is complete, but the
      // exit code reports the damage even when the salvage lints clean.
      try {
        validate_trace(recovered.trace, trace_path);
      } catch (const Error& e) {
        std::printf("structural validation of the salvage failed: %s\n",
                    e.what());
      }
      std::printf("%s: damaged but salvageable\n", trace_path.c_str());
      return kExitSalvaged;
    }
    return validate_trace(recovered.trace, trace_path);
  }

  const trace::Trace t = trace::read_any_file(trace_path);
  trace::validate(t);
  if (validate_only) {
    const lint::Report report = lint::lint_trace(t);
    if (!report.clean()) {
      std::printf("%s", report.render_text().c_str());
      return report.num_errors() > 0 ? kExitError : kExitOk;
    }
    std::printf("%s: valid\n", trace_path.c_str());
    return kExitOk;
  }
  std::printf("%s", trace::render(trace::summarize(t)).c_str());
  return kExitOk;
} catch (const osim::UsageError& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return osim::kExitUsage;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return osim::kExitError;
}
