// osim_inspect — summarize a trace file: record counts, communication
// volumes, message-size distribution, per-rank structure; optionally
// validate only.
//
// --validate-only runs both the structural validator (trace::validate)
// and the semantic linter (lint::lint_trace), so a trace that would replay
// into garbage — unmatched traffic, leaked requests, deadlock, mismatched
// collectives — is rejected here with per-record diagnostics.
//
// --validate additionally reads the file through the salvaging reader
// first and prints a damage summary (corrupt records, CRC mismatches,
// truncation, with byte offsets), then validates whatever was salvaged.
// Exit codes follow common/exit_codes.hpp: 0 clean, 1 semantically
// invalid, 3 unreadable, 4 damaged but salvageable.
//
// --fingerprint prints the pipeline::ReplayContext content fingerprint of
// the trace on the given platform (same flags as osim_replay's network
// setup), which is the content address of the scenario's object in a
// persistent store (see osim_cache): use it to correlate store objects
// with their inputs. With --cache-dir, the object path and its presence
// are printed too.
//
//   osim_inspect --trace /tmp/cg.original.trace
//   osim_inspect --trace t.trace --validate-only
//   osim_inspect --trace t.trace --validate       # + damage triage
//   osim_inspect --trace t.trace --fingerprint --bandwidth 250 --buses 6
#include <cstdio>
#include <filesystem>
#include <utility>

#include "common/exit_codes.hpp"
#include "common/expect.hpp"
#include "common/flags.hpp"
#include "common/strings.hpp"
#include "dimemas/platform_io.hpp"
#include "faults/spec.hpp"
#include "lint/lint.hpp"
#include "pipeline/context.hpp"
#include "store/store.hpp"
#include "trace/binary_io.hpp"
#include "trace/summary.hpp"

namespace {

/// Structural + semantic validation of an in-memory trace; returns the
/// process exit code.
int validate_trace(const osim::trace::Trace& t, const std::string& path) {
  using namespace osim;
  trace::validate(t);
  const lint::Report report = lint::lint_trace(t);
  if (!report.clean()) {
    std::printf("%s", report.render_text().c_str());
    return report.num_errors() > 0 ? kExitError : kExitOk;
  }
  std::printf("%s: valid\n", path.c_str());
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace osim;
  std::string trace_path;
  bool validate_only = false;
  bool validate = false;
  bool fingerprint = false;
  std::string platform_path;
  double bandwidth = 250.0;
  double latency = 4.0;
  std::int64_t buses = 0;
  std::int64_t ports = 1;
  std::int64_t eager = 16 * 1024;
  std::string fault_spec;
  std::string cache_dir;

  Flags flags("osim_inspect: summarize and validate a trace file");
  flags.add("trace", &trace_path, "trace file to inspect (required)");
  flags.add("validate-only", &validate_only,
            "exit after structural validation and semantic lint");
  flags.add("validate", &validate,
            "like --validate-only, but salvage damaged input first and "
            "print a damage summary (exit 3 = unreadable, 4 = damaged "
            "but salvageable)");
  flags.add("fingerprint", &fingerprint,
            "print the ReplayContext content fingerprint of this trace on "
            "the platform given by the network flags (the scenario store's "
            "content address — see osim_cache)");
  flags.add("platform", &platform_path,
            "fingerprint: platform file; overrides the network flags");
  flags.add("bandwidth", &bandwidth, "fingerprint: link bandwidth in MB/s");
  flags.add("latency", &latency, "fingerprint: per-message latency in us");
  flags.add("buses", &buses, "fingerprint: global buses (0 = unlimited)");
  flags.add("ports", &ports, "fingerprint: input/output ports per node");
  flags.add("eager", &eager, "fingerprint: eager threshold in bytes");
  flags.add("faults", &fault_spec,
            "fingerprint: fault-injection spec hashed into the context");
  flags.add("cache-dir", &cache_dir,
            "fingerprint: also print the object path in this scenario "
            "store and whether it is present");
  if (!flags.parse(argc, argv)) return 0;
  if (trace_path.empty()) throw UsageError("--trace is required");

  if (fingerprint) {
    const trace::Trace t = trace::read_any_file(trace_path);
    dimemas::Platform platform;
    if (!platform_path.empty()) {
      platform = dimemas::read_platform_file(platform_path);
      if (platform.num_nodes < t.num_ranks) {
        throw Error(strprintf("platform has %d nodes but the trace needs %d",
                              platform.num_nodes, t.num_ranks));
      }
    } else {
      platform.num_nodes = t.num_ranks;
      platform.bandwidth_MBps = bandwidth;
      platform.latency_us = latency;
      platform.num_buses = static_cast<std::int32_t>(buses);
      platform.input_ports = static_cast<std::int32_t>(ports);
      platform.output_ports = static_cast<std::int32_t>(ports);
      platform.eager_threshold_bytes = static_cast<std::uint64_t>(eager);
    }
    dimemas::ReplayOptions options;
    if (!fault_spec.empty()) options.faults = faults::parse_spec(fault_spec);
    const pipeline::ReplayContext context(t, platform, options);
    std::printf("%s\n", pipeline::to_hex(context.fingerprint()).c_str());
    const std::string dir = store::resolve_cache_dir(cache_dir);
    if (!dir.empty()) {
      store::ScenarioStore cache(dir);
      const std::string path = cache.object_path(context.fingerprint());
      const bool present = std::filesystem::exists(path);
      std::printf("object: %s (%s)\n", path.c_str(),
                  present ? "present" : "absent");
    }
    return kExitOk;
  }

  if (validate) {
    trace::RecoveredTrace recovered =
        trace::read_any_file_recover(trace_path);
    if (!recovered.damage.clean()) {
      std::printf("%s", recovered.damage.render_text().c_str());
      if (recovered.damage.unusable) {
        std::printf("%s: unreadable\n", trace_path.c_str());
        return kExitUnreadable;
      }
      // Validate the salvage so the damage triage is complete, but the
      // exit code reports the damage even when the salvage lints clean.
      try {
        validate_trace(recovered.trace, trace_path);
      } catch (const Error& e) {
        std::printf("structural validation of the salvage failed: %s\n",
                    e.what());
      }
      std::printf("%s: damaged but salvageable\n", trace_path.c_str());
      return kExitSalvaged;
    }
    return validate_trace(recovered.trace, trace_path);
  }

  const trace::Trace t = trace::read_any_file(trace_path);
  trace::validate(t);
  if (validate_only) {
    const lint::Report report = lint::lint_trace(t);
    if (!report.clean()) {
      std::printf("%s", report.render_text().c_str());
      return report.num_errors() > 0 ? kExitError : kExitOk;
    }
    std::printf("%s: valid\n", trace_path.c_str());
    return kExitOk;
  }
  std::printf("%s", trace::render(trace::summarize(t)).c_str());
  return kExitOk;
} catch (const osim::UsageError& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return osim::kExitUsage;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return osim::kExitError;
}
