// osim_trace — the tracing stage as a standalone tool.
//
// Runs one of the bundled applications on the instrumented runtime and
// writes exactly what the paper's Valgrind tool emits per run: "one
// non-overlapped (original) and two overlapped (potential) Dimemas traces"
// (§III-C), as text files consumable by osim_replay / osim_inspect.
//
//   osim_trace --app nas_cg --ranks 8 --iterations 5 --out /tmp/cg
//   → /tmp/cg.original.trace
//     /tmp/cg.overlap_real.trace
//     /tmp/cg.overlap_ideal.trace
#include <cstdio>

#include "apps/app.hpp"
#include "common/exit_codes.hpp"
#include "common/expect.hpp"
#include "common/flags.hpp"
#include "common/strings.hpp"
#include "lint/lint.hpp"
#include "overlap/transform.hpp"
#include "trace/annotated_io.hpp"
#include "trace/binary_io.hpp"
#include "trace/io.hpp"
#include "trace/summary.hpp"

int main(int argc, char** argv) try {
  using namespace osim;
  std::string app_name = "nas_cg";
  std::string out_prefix = "osim";
  std::int64_t ranks = 8;
  std::int64_t iterations = 5;
  std::int64_t chunks = 4;
  std::int64_t scale = 1;
  bool quiet = false;
  bool binary = false;
  bool annotated = false;
  bool do_lint = false;

  Flags flags(
      "osim_trace: run an application under the tracer and write the "
      "original + overlapped Dimemas traces");
  flags.add("app", &app_name,
            "application (sweep3d, pop, alya, specfem3d, nas_bt, nas_cg)");
  flags.add("out", &out_prefix, "output path prefix");
  flags.add("ranks", &ranks, "MPI ranks to run");
  flags.add("iterations", &iterations, "application iterations");
  flags.add("chunks", &chunks, "chunks per message for the overlapped traces");
  flags.add("scale", &scale, "problem size multiplier");
  flags.add("quiet", &quiet, "suppress the trace summaries");
  flags.add("binary", &binary, "write the compact binary format");
  flags.add("annotated", &annotated,
            "also write the annotated trace (<out>.ann) for osim_overlap");
  flags.add("lint", &do_lint,
            "run the semantic verifier on every emitted trace and check "
            "the overlapped traces against the original");
  if (!flags.parse(argc, argv)) return 0;

  const apps::MiniApp* app = apps::find_app(app_name);
  if (app == nullptr) {
    throw UsageError("unknown app '" + app_name +
                "' (try: sweep3d, pop, alya, specfem3d, nas_bt, nas_cg)");
  }
  apps::AppConfig config;
  config.ranks = static_cast<std::int32_t>(ranks);
  config.iterations = static_cast<std::int32_t>(iterations);
  config.scale = static_cast<std::int32_t>(scale);
  if (!app->supports_ranks(config.ranks)) {
    throw Error(strprintf("app %s does not support %d ranks",
                          app_name.c_str(), config.ranks));
  }

  std::fprintf(stderr, "[osim_trace] running %s on %d ranks...\n",
               app_name.c_str(), config.ranks);
  const tracer::TracedRun traced = apps::trace_app(*app, config);

  overlap::OverlapOptions real_options;
  real_options.chunks = static_cast<int>(chunks);
  overlap::OverlapOptions ideal_options = real_options;
  ideal_options.pattern = overlap::PatternMode::kIdeal;

  struct Output {
    const char* suffix;
    trace::Trace trace;
  };
  const Output outputs[] = {
      {"original", overlap::lower_original(traced.annotated)},
      {"overlap_real", overlap::transform(traced.annotated, real_options)},
      {"overlap_ideal", overlap::transform(traced.annotated, ideal_options)},
  };
  if (annotated) {
    const std::string path = out_prefix + ".ann";
    trace::write_annotated_file(traced.annotated, path);
    std::printf("wrote %s\n", path.c_str());
  }
  for (const Output& output : outputs) {
    const std::string path = out_prefix + "." + output.suffix +
                             (binary ? ".btrace" : ".trace");
    if (binary) {
      trace::write_binary_file(output.trace, path);
    } else {
      trace::write_text_file(output.trace, path);
    }
    std::printf("wrote %s\n", path.c_str());
    if (!quiet) {
      std::printf("%s", trace::render(trace::summarize(output.trace)).c_str());
    }
  }
  if (do_lint) {
    std::size_t lint_errors = 0;
    for (const Output& output : outputs) {
      lint::Report report = lint::lint_trace(output.trace);
      if (&output != &outputs[0]) {
        report.merge(lint::lint_transform(outputs[0].trace, output.trace));
      }
      if (!report.clean()) {
        std::printf("lint %s.%s:\n%s", out_prefix.c_str(), output.suffix,
                    report.render_text().c_str());
      }
      lint_errors += report.num_errors();
    }
    if (lint_errors > 0) {
      std::fprintf(stderr, "error: lint found %zu error(s)\n", lint_errors);
      return 1;
    }
    std::fprintf(stderr, "[osim_trace] lint: all traces clean\n");
  }
  return 0;
} catch (const osim::UsageError& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return osim::kExitUsage;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return osim::kExitError;
}
