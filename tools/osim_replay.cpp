// osim_replay — the Dimemas stage as a standalone tool.
//
// Replays a trace file on a platform described either by flags or by a
// platform file (see dimemas/platform_io.hpp), printing the makespan and
// per-rank statistics; optionally renders the terminal timeline and writes
// a Paraver bundle.
//
//   osim_replay --trace /tmp/cg.original.trace --bandwidth 250 --buses 6
//   osim_replay --trace t.trace --platform marenostrum.cfg --timeline
//   osim_replay --trace t.trace --prv /tmp/run     # + .prv/.pcf/.row
//   osim_replay --trace t.trace --report run.json  # structured run report
//   osim_replay --trace t.trace --faults 'seed=7;loss=0.02'  # injection
//   osim_replay --trace t.trace --progress app     # application-driven MPI
//   osim_replay --trace t.trace --cache-dir ~/.cache/osim   # warm reruns
//                                          # served from the scenario store
//
// Exit codes follow common/exit_codes.hpp: 2 = bad command line, 3 = the
// trace could not be read (use --recover to salvage what loads), 4 = the
// trace was damaged but replayed from the salvaged prefix, 5 = the replay
// was stopped by --scenario-timeout or a SIGINT/SIGTERM before finishing
// (partial progress is printed, nothing is cached).
#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <utility>

#include "analysis/critical_path.hpp"
#include "common/cancel.hpp"
#include "common/exit_codes.hpp"
#include "common/expect.hpp"
#include "common/flags.hpp"
#include "common/run_options.hpp"
#include "common/signals.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "dimemas/platform_io.hpp"
#include "dimemas/progress.hpp"
#include "faults/spec.hpp"
#include "paraver/paraver.hpp"
#include "pipeline/context.hpp"
#include "pipeline/lint_cache.hpp"
#include "pipeline/report.hpp"
#include "pipeline/study.hpp"
#include "store/format.hpp"
#include "store/store.hpp"
#include "trace/binary_io.hpp"

int main(int argc, char** argv) try {
  using namespace osim;
  PerfRecorder perf("osim_replay");
  std::string trace_path;
  std::string platform_path;
  std::string prv_base;
  double bandwidth = 250.0;
  double latency = 4.0;
  std::int64_t buses = 0;
  std::int64_t ports = 1;
  std::int64_t eager = 16 * 1024;
  bool timeline = false;
  bool per_rank = false;
  bool profile = false;
  bool critpath = false;
  std::string collectives = "binomial-tree";
  std::string fault_spec;
  std::string progress_spec;
  bool recover = false;
  std::int64_t timeline_width = 100;
  double scenario_timeout = 0.0;
  RunOptions run;

  Flags flags("osim_replay: replay a trace file on a configurable platform");
  flags.add("trace", &trace_path, "trace file to replay (required)");
  flags.add("platform", &platform_path,
            "platform file; overrides the individual network flags");
  flags.add("bandwidth", &bandwidth, "link bandwidth in MB/s");
  flags.add("latency", &latency, "per-message latency in us");
  flags.add("buses", &buses, "global buses (0 = unlimited)");
  flags.add("ports", &ports, "input/output ports per node");
  flags.add("eager", &eager, "eager protocol threshold in bytes");
  flags.add("timeline", &timeline, "render the terminal Gantt chart");
  flags.add("timeline-width", &timeline_width, "timeline width in columns");
  flags.add("per-rank", &per_rank, "print per-rank statistics");
  flags.add("profile", &profile, "print the per-rank state profile");
  flags.add("critical-path", &critpath,
            "print the critical-path composition");
  flags.add("collectives", &collectives,
            "collective algorithm: binomial-tree | linear | "
            "recursive-doubling");
  flags.add("prv", &prv_base, "write a Paraver bundle to <prv>.prv/.pcf/.row");
  flags.add("faults", &fault_spec,
            "fault-injection spec, e.g. 'seed=7;loss=0.02;degrade=0-1,"
            "bw=0.5' (see faults/spec.hpp for the grammar)");
  flags.add("progress", &progress_spec,
            "MPI progress model: 'offload' (default), 'app', or "
            "'thread[,tax=F]' (see dimemas/progress.hpp for the grammar)");
  flags.add("recover", &recover,
            "salvage a damaged trace instead of rejecting it (exit code 4 "
            "when records were lost)");
  flags.add("scenario-timeout", &scenario_timeout,
            "wall-clock budget in seconds; when it expires (or on "
            "SIGINT/SIGTERM) the replay stops cooperatively and exits "
            "with code 5 and its partial progress (0 = unbounded)");
  run.register_flags(flags, "report",
                     "write a JSON run report (wait-time attribution, "
                     "occupancy, protocol counters) to this path");
  if (!flags.parse(argc, argv)) return 0;
  const std::string& report_path = run.report;

  if (trace_path.empty()) throw UsageError("--trace is required");
  trace::Trace t;
  bool salvaged_with_losses = false;
  if (recover) {
    trace::RecoveredTrace recovered =
        trace::read_any_file_recover(trace_path);
    if (!recovered.damage.clean()) {
      std::fprintf(stderr, "%s",
                   recovered.damage.render_text().c_str());
      if (recovered.damage.unusable) {
        std::fprintf(stderr, "error: %s: nothing salvageable\n",
                     trace_path.c_str());
        return kExitUnreadable;
      }
      salvaged_with_losses = true;
    }
    t = std::move(recovered.trace);
  } else {
    try {
      t = trace::read_any_file(trace_path);
    } catch (const Error& e) {
      std::fprintf(stderr,
                   "error: %s\n(re-run with --recover to salvage what "
                   "still loads)\n",
                   e.what());
      return kExitUnreadable;
    }
  }

  dimemas::Platform platform;
  if (!platform_path.empty()) {
    platform = dimemas::read_platform_file(platform_path);
    if (platform.num_nodes < t.num_ranks) {
      throw Error(strprintf("platform has %d nodes but the trace needs %d",
                            platform.num_nodes, t.num_ranks));
    }
  } else {
    platform.num_nodes = t.num_ranks;
    platform.bandwidth_MBps = bandwidth;
    platform.latency_us = latency;
    platform.num_buses = static_cast<std::int32_t>(buses);
    platform.input_ports = static_cast<std::int32_t>(ports);
    platform.output_ports = static_cast<std::int32_t>(ports);
    platform.eager_threshold_bytes = static_cast<std::uint64_t>(eager);
  }

  dimemas::ReplayOptions options;
  options.record_timeline =
      timeline || profile || critpath || !prv_base.empty();
  options.record_comms = !prv_base.empty();
  options.collect_metrics = !report_path.empty() || !prv_base.empty();
  if (collectives == "binomial-tree") {
    options.collective_algo = dimemas::CollectiveAlgo::kBinomialTree;
  } else if (collectives == "linear") {
    options.collective_algo = dimemas::CollectiveAlgo::kLinear;
  } else if (collectives == "recursive-doubling") {
    options.collective_algo = dimemas::CollectiveAlgo::kRecursiveDoubling;
  } else {
    throw UsageError("unknown collective algorithm: " + collectives);
  }
  if (!fault_spec.empty()) options.faults = faults::parse_spec(fault_spec);
  if (!progress_spec.empty()) {
    options.progress = dimemas::parse_progress_spec(progress_spec);
  }
  // --scenario-timeout arms a wall-clock watchdog and turns SIGINT/SIGTERM
  // into a cooperative drain instead of an abort. The token is not part of
  // the scenario fingerprint, so a supervised replay shares store objects
  // with unsupervised runs of the same scenario.
  CancelToken cancel_token;
  if (scenario_timeout > 0.0) {
    install_graceful_shutdown();
    cancel_token = CancelToken(shutdown_flag());
    cancel_token.set_scenario_deadline(
        CancelToken::Clock::now() +
        std::chrono::duration_cast<CancelToken::Clock::duration>(
            std::chrono::duration<double>(scenario_timeout)));
    options.cancel = &cancel_token;
  }
  // The context validates the trace once (failing with lint diagnostics);
  // the study carries the --jobs thread pool and replay cache.
  const pipeline::ReplayContext context(t, platform, options);
  pipeline::StudyOptions study_options;
  study_options.jobs = static_cast<int>(run.jobs);
  pipeline::Study study(study_options);

  // Persistent store: a summary-level replay (no timeline, comms or
  // metrics recording — those results are not stored) is served from the
  // cache when this exact (trace, platform, options) fingerprint has been
  // replayed before, by any process.
  std::unique_ptr<store::ScenarioStore> cache;
  const std::string resolved_cache_dir =
      store::resolve_cache_dir(run.cache_dir);
  if (!resolved_cache_dir.empty()) {
    cache = std::make_unique<store::ScenarioStore>(resolved_cache_dir);
  }
  const bool cacheable = !options.record_timeline && !options.record_comms &&
                         !options.collect_metrics;
  dimemas::SimResult result;
  bool served_from_store = false;
  if (cache != nullptr && cacheable) {
    if (const std::optional<store::ScenarioArtifact> artifact =
            cache->load(context.fingerprint())) {
      result = store::to_sim_result(*artifact);
      served_from_store = true;
      std::fprintf(stderr, "[cache] served from %s\n",
                   cache->object_path(context.fingerprint()).c_str());
    }
  }
  if (!served_from_store) {
    try {
      result = study.run(context);
    } catch (const CancelledError& e) {
      const PartialProgress& partial = e.partial();
      std::fprintf(
          stderr,
          "interrupted: %s after %s simulated (%llu DES events, %lld/%d "
          "ranks finished, %s compute, %s blocked); nothing cached\n",
          stop_cause_name(e.cause()),
          format_seconds(partial.sim_time_s).c_str(),
          static_cast<unsigned long long>(partial.des_events),
          static_cast<long long>(partial.ranks_finished),
          static_cast<int>(t.num_ranks),
          format_seconds(partial.compute_s).c_str(),
          format_seconds(partial.blocked_s).c_str());
      return kExitInterrupted;
    }
    if (cache != nullptr && cacheable) {
      cache->save(context.fingerprint(), store::make_artifact(result));
    }
  }

  std::printf("platform: %s\n", platform.describe().c_str());
  if (result.fault_counts.enabled) {
    std::printf("faults: seed=%llu retransmits=%llu hard_stalls=%llu "
                "degraded=%llu perturbed=%llu injected_delay=%s\n",
                static_cast<unsigned long long>(result.fault_counts.seed),
                static_cast<unsigned long long>(
                    result.fault_counts.retransmits),
                static_cast<unsigned long long>(
                    result.fault_counts.hard_stalls),
                static_cast<unsigned long long>(
                    result.fault_counts.degraded_transfers),
                static_cast<unsigned long long>(
                    result.fault_counts.perturbed_bursts),
                format_seconds(result.fault_counts.injected_delay_s).c_str());
  }
  std::printf("makespan: %s\n", format_seconds(result.makespan).c_str());
  std::printf("parallel efficiency: %.1f%%\n", result.efficiency() * 100.0);
  std::printf("DES events processed: %llu\n",
              static_cast<unsigned long long>(result.des_events));

  if (per_rank) {
    TextTable table({"rank", "compute", "send-blocked", "recv-blocked",
                     "wait-blocked", "finish", "msgs sent", "bytes sent",
                     "bytes recvd"});
    for (std::size_t r = 0; r < result.rank_stats.size(); ++r) {
      const auto& rs = result.rank_stats[r];
      table.add_row({std::to_string(r), format_seconds(rs.compute_s),
                     format_seconds(rs.send_blocked_s),
                     format_seconds(rs.recv_blocked_s),
                     format_seconds(rs.wait_blocked_s),
                     format_seconds(rs.finish_time),
                     std::to_string(rs.messages_sent),
                     format_bytes(static_cast<double>(rs.bytes_sent)),
                     format_bytes(static_cast<double>(rs.bytes_received))});
    }
    std::printf("%s", table.render().c_str());
  }

  if (timeline) {
    paraver::AsciiOptions ascii;
    ascii.width = static_cast<int>(timeline_width);
    std::printf("%s", paraver::render_ascii(result, ascii).c_str());
  }
  if (profile) {
    std::printf("%s", paraver::render_profile(result).c_str());
  }
  if (critpath) {
    std::printf("%s",
                analysis::render(analysis::critical_path(result)).c_str());
  }
  if (!prv_base.empty()) {
    paraver::write_prv_bundle(result, prv_base,
                              t.app.empty() ? "app" : t.app);
    std::printf("Paraver bundle written to %s.{prv,pcf,row}\n",
                prv_base.c_str());
  }
  if (!report_path.empty()) {
    // The report embeds the trace's lint block (static analysis next to
    // the replay it predicts), served from the store when warm.
    lint::LintOptions lint_options;
    lint_options.eager_threshold_bytes = platform.eager_threshold_bytes;
    const lint::Report lint_report =
        pipeline::lint_with_cache(t, lint_options, cache.get());
    pipeline::write_report(
        report_path,
        pipeline::replay_report_json(result, platform,
                                     t.app.empty() ? "app" : t.app,
                                     &lint_report));
    std::printf("run report written to %s\n", report_path.c_str());
  }
  perf.add("makespan_s", result.makespan);
  perf.add("des_events", static_cast<double>(result.des_events));
  perf.add("store_hit", served_from_store ? 1.0 : 0.0);
  perf.write_if(run.perf_json);
  if (salvaged_with_losses) {
    std::fprintf(stderr,
                 "warning: results reflect a salvaged trace (exit %d)\n",
                 osim::kExitSalvaged);
    return osim::kExitSalvaged;
  }
  return osim::kExitOk;
} catch (const osim::UsageError& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return osim::kExitUsage;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return osim::kExitError;
}
