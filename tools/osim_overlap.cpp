// osim_overlap — the overlap transformation as a standalone tool.
//
// Reads an annotated trace (written by `osim_trace --annotated`) and
// produces a replayable trace: the original lowering, or the overlapped
// transformation under configurable mechanisms. This lets one tracing run
// feed many transformation studies, exactly as the paper's tracing stage
// feeds Dimemas.
//
//   osim_overlap --annotated /tmp/cg.ann --mode original --out orig.trace
//   osim_overlap --annotated /tmp/cg.ann --mode overlap --chunks 8
//       --pattern ideal --out ideal8.trace
#include <cstdio>

#include "common/exit_codes.hpp"
#include "common/expect.hpp"
#include "common/flags.hpp"
#include "overlap/transform.hpp"
#include "trace/annotated_io.hpp"
#include "trace/binary_io.hpp"
#include "trace/io.hpp"

int main(int argc, char** argv) try {
  using namespace osim;
  std::string annotated_path;
  std::string out_path;
  std::string mode = "overlap";
  std::string pattern = "measured";
  std::int64_t chunks = 4;
  bool no_advance = false;
  bool no_postpone = false;
  bool no_chunking = false;
  bool no_double_buffering = false;
  bool binary = false;

  Flags flags(
      "osim_overlap: transform an annotated trace into a replayable trace");
  flags.add("annotated", &annotated_path,
            "annotated trace file (required; from osim_trace --annotated)");
  flags.add("out", &out_path, "output trace path (required)");
  flags.add("mode", &mode, "original | overlap");
  flags.add("pattern", &pattern, "measured | ideal");
  flags.add("chunks", &chunks, "chunks per message");
  flags.add("no-advance-sends", &no_advance, "disable advancing sends");
  flags.add("no-postpone-receptions", &no_postpone,
            "disable post-postponing receptions");
  flags.add("no-chunking", &no_chunking, "disable message chunking");
  flags.add("no-double-buffering", &no_double_buffering,
            "force synchronous chunk transfers");
  flags.add("binary", &binary, "write the compact binary format");
  if (!flags.parse(argc, argv)) return 0;

  if (annotated_path.empty()) throw UsageError("--annotated is required");
  if (out_path.empty()) throw UsageError("--out is required");

  const trace::AnnotatedTrace annotated =
      trace::read_annotated_file(annotated_path);

  trace::Trace out;
  if (mode == "original") {
    out = overlap::lower_original(annotated);
  } else if (mode == "overlap") {
    overlap::OverlapOptions options;
    options.chunks = static_cast<int>(chunks);
    if (pattern == "measured") {
      options.pattern = overlap::PatternMode::kMeasured;
    } else if (pattern == "ideal") {
      options.pattern = overlap::PatternMode::kIdeal;
    } else {
      throw UsageError("unknown pattern: " + pattern);
    }
    options.advance_sends = !no_advance;
    options.postpone_receptions = !no_postpone;
    options.chunking = !no_chunking;
    options.double_buffering = !no_double_buffering;
    out = overlap::transform(annotated, options);
  } else {
    throw UsageError("unknown mode: " + mode);
  }

  if (binary) {
    trace::write_binary_file(out, out_path);
  } else {
    trace::write_text_file(out, out_path);
  }
  std::printf("wrote %s (%zu records, %d ranks)\n", out_path.c_str(),
              out.total_records(), out.num_ranks);
  return 0;
} catch (const osim::UsageError& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return osim::kExitUsage;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return osim::kExitError;
}
