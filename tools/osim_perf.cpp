// osim_perf — the replay-core benchmark harness.
//
// Times the simulator's three hot paths over the bundled mini-apps and
// writes a versioned BENCH_replay.json for tracking and CI gating:
//
//   replay  — events/second through dimemas::replay (the DES inner loop:
//             calendar queue, arena-allocated message state, SoA record
//             streams);
//   ingest  — traces/second through binary trace ingestion (mmap'd
//             zero-copy parse, CRC footer verification);
//   study   — scenarios/second through a pipeline::Study bandwidth sweep
//             at --jobs N (thread pool + fingerprint cache overhead).
//
// Each path runs --repetitions times; the JSON records every repetition
// plus the median, and scripts/perf_gate.py compares the medians against
// the floors in bench/perf_budget.json. Workload sizing is pinned by
// flags with stable defaults so numbers are comparable run over run.
//
//   osim_perf --repetitions 5 --out BENCH_replay.json
//   osim_perf --jobs 8 --ranks 32 --iterations 16   # a bigger workload
//
// This tool calls dimemas::replay directly on purpose: it times the
// engine, not the pipeline wrapper (the layering rule in scripts/check.sh
// covers bench/ and src/analysis/, not tools/).
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "apps/app.hpp"
#include "common/exit_codes.hpp"
#include "common/expect.hpp"
#include "common/flags.hpp"
#include "common/run_options.hpp"
#include "common/stats.hpp"
#include "dimemas/progress.hpp"
#include "dimemas/replay.hpp"
#include "metrics/json.hpp"
#include "overlap/options.hpp"
#include "pipeline/context.hpp"
#include "pipeline/scenario.hpp"
#include "pipeline/study.hpp"
#include "trace/binary_io.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct PathResult {
  std::string unit;            // "events_per_s", ...
  std::vector<double> runs;    // one throughput sample per repetition
  double median = 0.0;
  double work = 0.0;           // per-repetition work items (events, ...)
};

void finalize(PathResult& path) {
  path.median = osim::median(path.runs);
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace osim;

  std::int64_t repetitions = 5;
  std::int64_t ranks = 16;
  std::int64_t iterations = 8;
  std::int64_t chunks = 4;
  std::int64_t sweep_points = 8;
  std::string out_path = "BENCH_replay.json";
  RunOptions run;

  Flags flags(
      "osim_perf: time the replay/ingest/study hot paths over the bundled "
      "apps and write a versioned BENCH_replay.json");
  flags.add("repetitions", &repetitions,
            "timed repetitions per path (the JSON records each plus the "
            "median)");
  flags.add("ranks", &ranks, "simulated MPI ranks per app");
  flags.add("iterations", &iterations, "application iterations");
  flags.add("chunks", &chunks, "chunks per message for the overlap variant");
  flags.add("sweep-points", &sweep_points,
            "bandwidth points per app in the study sweep");
  flags.add("out", &out_path, "output JSON path");
  run.register_flags(flags, nullptr, "");
  if (!flags.parse(argc, argv)) return 0;
  if (repetitions < 1) throw UsageError("--repetitions must be >= 1");

  // --- workload: trace every bundled app once ----------------------------
  apps::AppConfig config;
  config.ranks = static_cast<std::int32_t>(ranks);
  config.iterations = static_cast<std::int32_t>(iterations);
  overlap::OverlapOptions overlap_options;
  overlap_options.chunks = static_cast<int>(chunks);

  struct Workload {
    std::string name;
    pipeline::ReplayContext original;
    pipeline::ReplayContext overlapped;
  };
  std::vector<Workload> workloads;
  for (const apps::MiniApp* app : apps::registry()) {
    apps::AppConfig app_config = config;
    while (!app->supports_ranks(app_config.ranks)) ++app_config.ranks;
    const tracer::TracedRun traced = apps::trace_app(*app, app_config, {});
    const dimemas::Platform platform = dimemas::Platform::marenostrum(
        app_config.ranks, app->paper_buses());
    workloads.push_back(Workload{
        app->name(),
        pipeline::make_context(traced.annotated,
                               pipeline::TraceVariant::kOriginal,
                               overlap_options, platform),
        pipeline::make_context(traced.annotated,
                               pipeline::TraceVariant::kOverlapMeasured,
                               overlap_options, platform)});
    std::fprintf(stderr, "[perf] traced %s (%d ranks)\n",
                 app->name().c_str(), app_config.ranks);
  }

  // --- path 1: raw replay (events/second) --------------------------------
  PathResult replay_path;
  replay_path.unit = "events_per_s";
  for (std::int64_t rep = 0; rep < repetitions; ++rep) {
    std::uint64_t events = 0;
    const Clock::time_point start = Clock::now();
    for (const Workload& w : workloads) {
      for (const pipeline::ReplayContext* context :
           {&w.original, &w.overlapped}) {
        const dimemas::SimResult result = dimemas::replay(
            context->trace(), context->platform(), context->options());
        events += result.des_events;
      }
    }
    const double wall = seconds_since(start);
    replay_path.runs.push_back(static_cast<double>(events) / wall);
    replay_path.work = static_cast<double>(events);
  }
  finalize(replay_path);
  std::fprintf(stderr, "[perf] replay: %.3g events/s (median of %lld)\n",
               replay_path.median, static_cast<long long>(repetitions));

  // --- path 2: binary ingestion (traces/second, mmap) --------------------
  const std::filesystem::path tmp =
      std::filesystem::temp_directory_path() /
      ("osim_perf_" + std::to_string(::getpid()));
  std::filesystem::create_directories(tmp);
  std::vector<std::string> trace_files;
  std::uint64_t ingest_bytes = 0;
  for (const Workload& w : workloads) {
    const std::string path = (tmp / (w.name + ".otb")).string();
    trace::write_binary_file(w.overlapped.trace(), path);
    ingest_bytes += std::filesystem::file_size(path);
    trace_files.push_back(path);
  }
  PathResult ingest_path;
  ingest_path.unit = "traces_per_s";
  for (std::int64_t rep = 0; rep < repetitions; ++rep) {
    const Clock::time_point start = Clock::now();
    std::size_t records = 0;
    for (const std::string& path : trace_files) {
      records += trace::read_binary_file(path).total_records();
    }
    OSIM_CHECK(records > 0);
    const double wall = seconds_since(start);
    ingest_path.runs.push_back(
        static_cast<double>(trace_files.size()) / wall);
    ingest_path.work = static_cast<double>(records);
  }
  finalize(ingest_path);
  std::filesystem::remove_all(tmp);
  std::fprintf(stderr, "[perf] ingest: %.3g traces/s (median of %lld)\n",
               ingest_path.median, static_cast<long long>(repetitions));

  // --- path 3: study sweep (scenarios/second at --jobs N) ----------------
  PathResult study_path;
  study_path.unit = "scenarios_per_s";
  const int jobs = run.resolved_jobs();
  for (std::int64_t rep = 0; rep < repetitions; ++rep) {
    // A fresh study per repetition: the sweep must replay, not hit the
    // fingerprint cache of the previous repetition.
    pipeline::StudyOptions study_options;
    study_options.jobs = jobs;
    pipeline::Study study(study_options);
    std::vector<pipeline::ReplayContext> scenarios;
    for (const Workload& w : workloads) {
      const double nominal = w.original.platform().bandwidth_MBps;
      for (std::int64_t p = 0; p < sweep_points; ++p) {
        scenarios.push_back(w.overlapped.with_bandwidth(
            nominal * (0.5 + 0.25 * static_cast<double>(p))));
      }
      // Non-offload progress regimes exercise the gated hot path (pending
      // MPI queues, handshake hops), so the study throughput number also
      // covers the progress-engine axis.
      scenarios.push_back(
          w.overlapped.with_progress(dimemas::parse_progress_spec("app")));
      scenarios.push_back(
          w.overlapped.with_progress(dimemas::parse_progress_spec("thread")));
    }
    const Clock::time_point start = Clock::now();
    study.map(scenarios, [&study](const pipeline::ReplayContext& context) {
      return study.makespan(context);
    });
    const double wall = seconds_since(start);
    study_path.runs.push_back(static_cast<double>(scenarios.size()) / wall);
    study_path.work = static_cast<double>(scenarios.size());
  }
  finalize(study_path);
  std::fprintf(stderr, "[perf] study: %.3g scenarios/s at %d jobs\n",
               study_path.median, jobs);

  // --- BENCH_replay.json -------------------------------------------------
  char hostname[256] = "unknown";
  gethostname(hostname, sizeof(hostname) - 1);
  metrics::JsonWriter w;
  w.begin_object();
  w.key("schema").value("osim-bench-replay-v1");
  w.key("machine").begin_object();
  w.key("hostname").value(hostname);
  w.key("hardware_threads")
      .value(static_cast<std::int64_t>(std::thread::hardware_concurrency()));
  w.end_object();
  w.key("workload").begin_object();
  w.key("ranks").value(ranks);
  w.key("iterations").value(iterations);
  w.key("chunks").value(chunks);
  w.key("sweep_points").value(sweep_points);
  w.key("apps").value(static_cast<std::int64_t>(workloads.size()));
  w.key("jobs").value(static_cast<std::int64_t>(jobs));
  w.key("trace_bytes").value(ingest_bytes);
  w.end_object();
  w.key("repetitions").value(repetitions);
  w.key("paths").begin_object();
  const PathResult* paths[] = {&replay_path, &ingest_path, &study_path};
  const char* names[] = {"replay", "ingest", "study"};
  for (int i = 0; i < 3; ++i) {
    w.key(names[i]).begin_object();
    w.key("unit").value(paths[i]->unit);
    w.key("median").value(paths[i]->median);
    w.key("work_per_repetition").value(paths[i]->work);
    w.key("runs").begin_array();
    for (const double sample : paths[i]->runs) w.value(sample);
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) throw Error("cannot write " + out_path);
  std::fputs(w.str().c_str(), f);
  std::fputs("\n", f);
  std::fclose(f);
  std::printf("wrote %s (replay %.3g events/s, ingest %.3g traces/s, "
              "study %.3g scenarios/s)\n",
              out_path.c_str(), replay_path.median, ingest_path.median,
              study_path.median);
  return kExitOk;
} catch (const osim::UsageError& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return osim::kExitUsage;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return osim::kExitError;
}
