// osim_lint — trace semantic verifier.
//
// Statically checks that a trace is a semantically valid MPI program
// (matched point-to-point traffic, well-formed request lifecycles, no
// deadlock, consistent collectives) and, given an original / transformed
// pair, that the overlap transformation preserved the message structure.
// Exits 0 when the trace is clean under --fail-on, 1 with diagnostics on
// stdout otherwise.
//
//   osim_lint --trace /tmp/cg.original.trace
//   osim_lint --original /tmp/cg.original.trace --transformed /tmp/cg.overlap_real.trace
//   osim_lint --trace t.trace --format csv --fail-on warning
#include <cstdio>

#include "common/exit_codes.hpp"
#include "common/expect.hpp"
#include "common/flags.hpp"
#include "lint/lint.hpp"
#include "trace/binary_io.hpp"

int main(int argc, char** argv) try {
  using namespace osim;
  std::string trace_path;
  std::string original_path;
  std::string transformed_path;
  std::string format = "text";
  std::string fail_on = "error";
  std::int64_t eager_threshold =
      static_cast<std::int64_t>(lint::kDefaultEagerThresholdBytes);

  Flags flags(
      "osim_lint: verify that a trace is a semantically valid MPI program "
      "(matching, request lifecycles, deadlock, collectives, and — with "
      "--original/--transformed — overlap-transform safety)");
  flags.add("trace", &trace_path, "trace file to lint");
  flags.add("original", &original_path,
            "original trace of an original/transformed pair");
  flags.add("transformed", &transformed_path,
            "transformed trace to lint and check against --original");
  flags.add("format", &format, "diagnostic output format (text, csv)");
  flags.add("fail-on", &fail_on,
            "lowest severity that fails the run (warning, error)");
  flags.add("eager-threshold", &eager_threshold,
            "rendezvous cutoff in bytes for the deadlock pass");
  if (!flags.parse(argc, argv)) return 0;

  if (format != "text" && format != "csv") {
    throw UsageError("--format must be 'text' or 'csv'");
  }
  lint::Severity fail_severity;
  if (fail_on == "warning") {
    fail_severity = lint::Severity::kWarning;
  } else if (fail_on == "error") {
    fail_severity = lint::Severity::kError;
  } else {
    throw UsageError("--fail-on must be 'warning' or 'error'");
  }
  const bool pair_mode = !original_path.empty() || !transformed_path.empty();
  if (pair_mode && (original_path.empty() || transformed_path.empty())) {
    throw UsageError("--original and --transformed must be given together");
  }
  if (!pair_mode && trace_path.empty()) {
    throw UsageError("--trace (or --original/--transformed) is required");
  }
  if (pair_mode && !trace_path.empty()) {
    throw UsageError("--trace and --original/--transformed are exclusive");
  }
  if (eager_threshold < 0) {
    throw UsageError("--eager-threshold must be non-negative");
  }

  lint::LintOptions options;
  options.eager_threshold_bytes =
      static_cast<std::uint64_t>(eager_threshold);

  lint::Report report;
  std::string subject;
  if (pair_mode) {
    const trace::Trace original = trace::read_any_file(original_path);
    const trace::Trace transformed = trace::read_any_file(transformed_path);
    // The transformed trace must stand on its own *and* faithfully encode
    // the original's message structure.
    report = lint::lint_trace(transformed, options);
    const lint::Report pair = lint::lint_transform(original, transformed,
                                                   options);
    for (const lint::Diagnostic& d : pair.diagnostics()) {
      if (d.severity == lint::Severity::kError) {
        report.error(d.pass, d.rank, d.record, d.message);
      } else {
        report.warning(d.pass, d.rank, d.record, d.message);
      }
    }
    subject = transformed_path;
  } else {
    report = lint::lint_trace(trace::read_any_file(trace_path), options);
    subject = trace_path;
  }

  if (format == "csv") {
    std::printf("%s", report.render_csv().c_str());
  } else if (!report.clean()) {
    std::printf("%s", report.render_text().c_str());
  } else {
    std::printf("%s: clean\n", subject.c_str());
  }
  return report.has_at_least(fail_severity) ? 1 : 0;
} catch (const osim::UsageError& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return osim::kExitUsage;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return osim::kExitError;
}
