// osim_lint — trace semantic verifier.
//
// Statically checks that a trace is a semantically valid MPI program
// (matched point-to-point traffic, well-formed request lifecycles, no
// deadlock, consistent collectives), runs the happens-before analyses
// (communication races, overlap-hazard advisories), and, given an
// original / transformed pair, checks that the overlap transformation
// preserved the message structure.
//
// Exit codes follow common/exit_codes.hpp: 0 = clean under --fail-on,
// 1 = findings at or above --fail-on (diagnostics on stdout), 2 = bad
// command line, 3 = the trace could not be read.
//
//   osim_lint --trace /tmp/cg.original.trace
//   osim_lint --original /tmp/cg.original.trace --transformed /tmp/cg.overlap_real.trace
//   osim_lint --trace t.trace --format json --platform marenostrum.cfg
//   osim_lint --trace t.trace --jobs 4 --cache-dir ~/.cache/osim
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "common/exit_codes.hpp"
#include "common/expect.hpp"
#include "common/flags.hpp"
#include "common/run_options.hpp"
#include "dimemas/platform_io.hpp"
#include "lint/lint.hpp"
#include "pipeline/lint_cache.hpp"
#include "store/store.hpp"
#include "trace/binary_io.hpp"

int main(int argc, char** argv) try {
  using namespace osim;
  PerfRecorder perf("osim_lint");
  std::string trace_path;
  std::string original_path;
  std::string transformed_path;
  std::string platform_path;
  std::string format = "text";
  std::string fail_on = "error";
  std::int64_t eager_threshold = -1;  // sentinel: not set on the command line
  RunOptions run;

  Flags flags(
      "osim_lint: verify that a trace is a semantically valid MPI program "
      "(matching, request lifecycles, deadlock, collectives, races, overlap "
      "hazards, and — with --original/--transformed — overlap-transform "
      "safety)");
  flags.add("trace", &trace_path, "trace file to lint");
  flags.add("original", &original_path,
            "original trace of an original/transformed pair");
  flags.add("transformed", &transformed_path,
            "transformed trace to lint and check against --original");
  flags.add("platform", &platform_path,
            "platform file; its eager threshold configures the deadlock and "
            "happens-before passes");
  flags.add("format", &format, "diagnostic output format (text, csv, json)");
  flags.add("fail-on", &fail_on,
            "lowest severity that fails the run (warning, error)");
  flags.add("eager-threshold", &eager_threshold,
            "rendezvous cutoff in bytes; overrides --platform (default: the "
            "platform's threshold, else 16 KiB)");
  run.register_flags(flags, nullptr, "");
  if (!flags.parse(argc, argv)) return 0;

  if (format != "text" && format != "csv" && format != "json") {
    throw UsageError("--format must be 'text', 'csv' or 'json'");
  }
  lint::Severity fail_severity;
  if (fail_on == "warning") {
    fail_severity = lint::Severity::kWarning;
  } else if (fail_on == "error") {
    fail_severity = lint::Severity::kError;
  } else {
    throw UsageError("--fail-on must be 'warning' or 'error'");
  }
  const bool pair_mode = !original_path.empty() || !transformed_path.empty();
  if (pair_mode && (original_path.empty() || transformed_path.empty())) {
    throw UsageError("--original and --transformed must be given together");
  }
  if (!pair_mode && trace_path.empty()) {
    throw UsageError("--trace (or --original/--transformed) is required");
  }
  if (pair_mode && !trace_path.empty()) {
    throw UsageError("--trace and --original/--transformed are exclusive");
  }
  lint::LintOptions options;
  if (!platform_path.empty()) {
    options.eager_threshold_bytes =
        dimemas::read_platform_file(platform_path).eager_threshold_bytes;
  }
  if (eager_threshold >= 0) {
    // An explicit threshold wins over the platform file.
    options.eager_threshold_bytes =
        static_cast<std::uint64_t>(eager_threshold);
  }
  options.jobs = run.resolved_jobs();

  const auto read_trace = [](const std::string& path) {
    try {
      return trace::read_any_file(path);
    } catch (const Error& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      std::exit(kExitUnreadable);
    }
  };

  std::unique_ptr<store::ScenarioStore> cache;
  const std::string resolved_cache_dir =
      store::resolve_cache_dir(run.cache_dir);
  if (!resolved_cache_dir.empty()) {
    cache = std::make_unique<store::ScenarioStore>(resolved_cache_dir);
  }

  lint::Report report;
  std::string subject;
  if (pair_mode) {
    const trace::Trace original = read_trace(original_path);
    const trace::Trace transformed = read_trace(transformed_path);
    // The transformed trace must stand on its own *and* faithfully encode
    // the original's message structure. Pair results are not cached: the
    // transform check keys on two traces, not one.
    report = lint::lint_trace(transformed, options);
    report.merge(lint::lint_transform(original, transformed, options));
    subject = transformed_path;
  } else {
    const trace::Trace t = read_trace(trace_path);
    bool cache_hit = false;
    report = pipeline::lint_with_cache(t, options, cache.get(), &cache_hit);
    if (cache_hit) {
      std::fprintf(
          stderr, "[cache] served from %s\n",
          cache->object_path(pipeline::lint_fingerprint(t, options)).c_str());
    }
    subject = trace_path;
  }

  if (format == "json") {
    std::printf("%s\n", report.render_json().c_str());
  } else if (format == "csv") {
    std::printf("%s", report.render_csv().c_str());
  } else if (!report.clean()) {
    std::printf("%s", report.render_text().c_str());
  } else {
    std::printf("%s: clean\n", subject.c_str());
  }
  perf.add("findings", static_cast<double>(report.diagnostics().size()));
  perf.write_if(run.perf_json);
  return report.has_at_least(fail_severity) ? kExitError : kExitOk;
} catch (const osim::UsageError& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return osim::kExitUsage;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return osim::kExitError;
}
