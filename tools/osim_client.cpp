// osim_client — submit scenarios to a running osim_serve and collect the
// results.
//
//   osim_client submit --socket S --trace T [--bandwidth 250 ...]
//   osim_client submit --socket S --trace T --wait --report out.json
//   osim_client study  --socket S --trace T --bandwidths 125,250,500 --wait
//   osim_client poll   --socket S --ticket HEX [--wait]
//   osim_client fetch  --socket S --ticket HEX [--report out.json]
//   osim_client cancel --socket S --ticket HEX
//   osim_client stats  --socket S
//   osim_client shutdown --socket S
//
// Tickets are scenario fingerprints (32 hex digits) — the same spelling
// study reports and osim_inspect --fingerprint use, so service work can be
// correlated with batch runs by eye. A report fetched with --report is
// byte-identical to `osim_replay --trace T --report ...` with the same
// flags (scripts/serve_test.sh cmp's them).
//
// Exit codes follow common/exit_codes.hpp: 0 OK, 1 failed scenario or RPC
// error, 2 bad command line, 5 the server is draining, 6 the server
// refused the submit under admission control (resubmit later).
#include <cstdio>
#include <string>
#include <vector>

#include "common/exit_codes.hpp"
#include "common/expect.hpp"
#include "common/flags.hpp"
#include "common/strings.hpp"
#include "pipeline/fingerprint.hpp"
#include "pipeline/report.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"

namespace {

using namespace osim;

int error_exit_code(serve::RpcErrorCode code) {
  switch (code) {
    case serve::RpcErrorCode::kBusy:
      return kExitBusy;
    case serve::RpcErrorCode::kShuttingDown:
      return kExitInterrupted;
    case serve::RpcErrorCode::kBadRequest:
      return kExitUsage;
    case serve::RpcErrorCode::kNotFound:
    case serve::RpcErrorCode::kFailed:
      return kExitError;
  }
  return kExitError;
}

/// Prints an ErrorReply and maps it to this tool's exit-code contract.
int report_error(const serve::ErrorReply& error) {
  std::fprintf(stderr, "error (%s): %s\n",
               serve::rpc_error_code_name(error.code), error.message.c_str());
  return error_exit_code(error.code);
}

/// Blocks until `ticket` reaches a terminal state (wait-mode poll).
serve::StatusReply wait_terminal(serve::ClientConnection& connection,
                                 const pipeline::Fingerprint& ticket) {
  const serve::ServerMessage reply =
      connection.call(serve::ClientMessage(serve::PollStatus{ticket, true}));
  if (const auto* status = std::get_if<serve::StatusReply>(&reply)) {
    return *status;
  }
  if (const auto* error = std::get_if<serve::ErrorReply>(&reply)) {
    throw Error(strprintf("poll failed (%s): %s",
                          serve::rpc_error_code_name(error->code),
                          error->message.c_str()));
  }
  throw Error("unexpected reply to poll");
}

/// Fetches `ticket`'s report and writes it to `path` (or stdout when
/// empty). Returns the process exit code.
int fetch_report(serve::ClientConnection& connection,
                 const pipeline::Fingerprint& ticket,
                 const std::string& path) {
  const serve::ServerMessage reply =
      connection.call(serve::ClientMessage(serve::FetchReport{ticket}));
  if (const auto* error = std::get_if<serve::ErrorReply>(&reply)) {
    return report_error(*error);
  }
  const auto* report = std::get_if<serve::ReportReply>(&reply);
  if (report == nullptr) throw Error("unexpected reply to fetch");
  if (path.empty()) {
    std::printf("%s\n", report->report_json.c_str());
  } else {
    // write_report, not a bare ofstream: the batch tool writes reports
    // through the same function, which is what makes cmp(1) meaningful.
    pipeline::write_report(path, report->report_json);
    std::printf("run report written to %s\n", path.c_str());
  }
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) try {
  std::string command;
  std::vector<const char*> rest;
  rest.push_back(argc > 0 ? argv[0] : "osim_client");
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (command.empty() && !arg.starts_with("--")) {
      command = arg;
    } else {
      rest.push_back(argv[i]);
    }
  }

  std::string socket_path;
  std::int64_t tcp_port = 0;
  std::int64_t connect_retry_ms = 5000;
  std::string trace_path;
  double bandwidth = 250.0;
  double latency = 4.0;
  std::int64_t buses = 0;
  std::int64_t ports = 1;
  std::int64_t eager = 16 * 1024;
  std::string collectives = "binomial-tree";
  std::string fault_spec;
  std::string progress_spec;
  std::string bandwidths;
  std::string ticket_hex;
  bool wait = false;
  std::string report_path;

  Flags flags(
      "osim_client <submit|study|poll|fetch|cancel|stats|shutdown>: talk to "
      "a running osim_serve");
  flags.add("socket", &socket_path, "the server's Unix-domain socket");
  flags.add("tcp-port", &tcp_port,
            "connect to 127.0.0.1:<port> instead of a Unix socket");
  flags.add("connect-retry-ms", &connect_retry_ms,
            "keep retrying the connect for this long (a just-started "
            "server may not listen yet)");
  flags.add("trace", &trace_path, "submit/study: trace file to replay");
  flags.add("bandwidth", &bandwidth, "link bandwidth in MB/s");
  flags.add("latency", &latency, "per-message latency in us");
  flags.add("buses", &buses, "global buses (0 = unlimited)");
  flags.add("ports", &ports, "input/output ports per node");
  flags.add("eager", &eager, "eager protocol threshold in bytes");
  flags.add("collectives", &collectives,
            "collective algorithm: binomial-tree | linear | "
            "recursive-doubling");
  flags.add("faults", &fault_spec, "fault-injection spec (see osim_replay)");
  flags.add("progress", &progress_spec,
            "MPI progress model: offload | app | thread[,tax=F]");
  flags.add("bandwidths", &bandwidths,
            "study: comma-separated bandwidth sweep, e.g. 125,250,500");
  flags.add("ticket", &ticket_hex,
            "poll/fetch/cancel: the scenario ticket (32 hex digits)");
  flags.add("wait", &wait,
            "submit/study/poll: block until the scenario(s) finish");
  flags.add("report", &report_path,
            "submit --wait / fetch: write the JSON run report here");
  if (!flags.parse(static_cast<int>(rest.size()), rest.data())) return 0;

  if (command.empty()) {
    throw UsageError(
        "missing command: expected submit, study, poll, fetch, cancel, "
        "stats or shutdown\n" +
        flags.usage());
  }
  if (socket_path.empty() && tcp_port == 0) {
    throw UsageError("pass --socket (or --tcp-port)");
  }

  serve::ClientConnection connection =
      tcp_port != 0
          ? serve::ClientConnection::connect_tcp(
                static_cast<int>(tcp_port), static_cast<int>(connect_retry_ms))
          : serve::ClientConnection::connect_unix(
                socket_path, static_cast<int>(connect_retry_ms));

  // The ticket-flag commands share parsing.
  pipeline::Fingerprint ticket;
  if (command == "poll" || command == "fetch" || command == "cancel") {
    const std::optional<pipeline::Fingerprint> parsed =
        pipeline::fingerprint_from_hex(ticket_hex);
    if (!parsed.has_value()) {
      throw UsageError("--ticket must be 32 hex digits");
    }
    ticket = *parsed;
  }

  if (command == "submit" || command == "study") {
    if (trace_path.empty()) throw UsageError("--trace is required");
    serve::ScenarioSpec spec;
    spec.trace_path = trace_path;
    spec.bandwidth = bandwidth;
    spec.latency = latency;
    spec.buses = buses;
    spec.ports = ports;
    spec.eager = eager;
    spec.collectives = collectives;
    spec.fault_spec = fault_spec;
    spec.progress_spec = progress_spec;

    serve::ClientMessage request{serve::SubmitScenario{spec}};
    if (command == "study") {
      serve::SubmitStudy study;
      study.base = spec;
      for (const std::string& part : split(bandwidths, ',')) {
        const std::optional<double> bw = parse_f64(trim(part));
        if (!bw.has_value() || *bw <= 0.0) {
          throw UsageError("--bandwidths must be positive numbers: " +
                           bandwidths);
        }
        study.bandwidths.push_back(*bw);
      }
      if (study.bandwidths.empty()) {
        throw UsageError("study requires --bandwidths");
      }
      request = serve::ClientMessage(study);
    }

    const serve::ServerMessage reply = connection.call(request);
    if (const auto* error = std::get_if<serve::ErrorReply>(&reply)) {
      return report_error(*error);
    }
    const auto* submitted = std::get_if<serve::Submitted>(&reply);
    if (submitted == nullptr) throw Error("unexpected reply to submit");
    for (const serve::TicketInfo& info : submitted->tickets) {
      std::printf("ticket %s %s\n", pipeline::to_hex(info.ticket).c_str(),
                  serve::submit_disposition_name(info.disposition));
    }
    if (!wait) return kExitOk;

    int exit_code = kExitOk;
    for (const serve::TicketInfo& info : submitted->tickets) {
      const serve::StatusReply status = wait_terminal(connection, info.ticket);
      std::printf("ticket %s %s%s%s\n", pipeline::to_hex(info.ticket).c_str(),
                  serve::job_state_name(status.state),
                  status.error.empty() ? "" : ": ", status.error.c_str());
      if (status.state != serve::JobState::kDone) {
        exit_code = kExitError;
      }
    }
    if (exit_code == kExitOk && !report_path.empty()) {
      if (submitted->tickets.size() != 1) {
        throw UsageError("--report needs a single-scenario submit");
      }
      return fetch_report(connection, submitted->tickets[0].ticket,
                          report_path);
    }
    return exit_code;
  }

  if (command == "poll") {
    serve::ServerMessage reply =
        connection.call(serve::ClientMessage(serve::PollStatus{ticket, wait}));
    if (const auto* error = std::get_if<serve::ErrorReply>(&reply)) {
      return report_error(*error);
    }
    const auto* status = std::get_if<serve::StatusReply>(&reply);
    if (status == nullptr) throw Error("unexpected reply to poll");
    std::printf("ticket %s %s attempts=%u%s%s\n",
                pipeline::to_hex(status->ticket).c_str(),
                serve::job_state_name(status->state), status->attempts,
                status->error.empty() ? "" : " error=",
                status->error.c_str());
    return status->state == serve::JobState::kFailed ? kExitError : kExitOk;
  }

  if (command == "fetch") {
    return fetch_report(connection, ticket, report_path);
  }

  if (command == "cancel") {
    const serve::ServerMessage reply =
        connection.call(serve::ClientMessage(serve::Cancel{ticket}));
    if (const auto* error = std::get_if<serve::ErrorReply>(&reply)) {
      return report_error(*error);
    }
    std::printf("cancelled %s\n", ticket_hex.c_str());
    return kExitOk;
  }

  if (command == "stats") {
    const serve::ServerMessage reply =
        connection.call(serve::ClientMessage(serve::ServerStats{}));
    if (const auto* error = std::get_if<serve::ErrorReply>(&reply)) {
      return report_error(*error);
    }
    const auto* stats = std::get_if<serve::StatsReply>(&reply);
    if (stats == nullptr) throw Error("unexpected reply to stats");
    std::printf("%s\n", stats->stats_json.c_str());
    return kExitOk;
  }

  if (command == "shutdown") {
    const serve::ServerMessage reply =
        connection.call(serve::ClientMessage(serve::Shutdown{}));
    if (const auto* error = std::get_if<serve::ErrorReply>(&reply)) {
      return report_error(*error);
    }
    std::printf("server draining\n");
    return kExitOk;
  }

  throw UsageError("unknown command '" + command +
                   "': expected submit, study, poll, fetch, cancel, stats "
                   "or shutdown");
} catch (const osim::UsageError& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return osim::kExitUsage;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return osim::kExitError;
}
