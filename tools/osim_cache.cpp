// osim_cache — maintenance surface for the persistent scenario store
// (src/store): the on-disk, content-addressed cache behind Study's
// --cache-dir / $OSIM_CACHE_DIR disk tier.
//
//   osim_cache stats  --cache-dir DIR            # object/byte/hit totals
//   osim_cache stats  --cache-dir DIR --journals # + per-study journals
//   osim_cache stats  --cache-dir DIR --json     # machine-readable document
//   osim_cache verify --cache-dir DIR            # full integrity scan
//   osim_cache gc     --cache-dir DIR --max-bytes N [--max-objects M]
//
// verify decodes every object (magic, version, CRC, address) and checks
// the index; it exits 0 only on a fully intact store, 1 otherwise. gc
// removes corrupt objects unconditionally and then evicts least-recently-
// used objects until the store fits the given budget; study journals
// (supervise/journal.hpp) whose study completed — or whose file no longer
// parses — are evicted too, while in-progress journals are kept so a
// later --resume still finds them.
//
// Exit codes follow common/exit_codes.hpp: 0 OK, 1 verification failures,
// 2 bad command line.
#include <cstdio>
#include <string>
#include <vector>

#include "common/exit_codes.hpp"
#include "common/expect.hpp"
#include "common/flags.hpp"
#include "common/run_options.hpp"
#include "common/strings.hpp"
#include "pipeline/fingerprint.hpp"
#include "serve/stats.hpp"
#include "store/store.hpp"
#include "supervise/journal.hpp"

int main(int argc, char** argv) try {
  using namespace osim;

  std::string command;
  std::vector<const char*> rest;
  rest.push_back(argc > 0 ? argv[0] : "osim_cache");
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (command.empty() && !arg.starts_with("--")) {
      command = arg;
    } else {
      rest.push_back(argv[i]);
    }
  }

  RunOptions run;
  std::int64_t max_bytes = -1;
  std::int64_t max_objects = 0;
  bool show_journals = false;
  bool json = false;
  Flags flags(
      "osim_cache <stats|verify|gc>: inspect and maintain a persistent "
      "scenario store");
  run.register_flags(flags, nullptr, "");
  flags.add("journals", &show_journals,
            "stats: list each study journal (path, entries, status)");
  flags.add("json", &json,
            "stats: print the machine-readable osim.cache_stats document "
            "(the same body the analysis service's server-stats embeds)");
  flags.add("max-bytes", &max_bytes,
            "gc: evict LRU objects until the store holds at most this many "
            "bytes (required for gc; 0 empties the store)");
  flags.add("max-objects", &max_objects,
            "gc: additionally keep at most this many objects (0 = no limit)");
  if (!flags.parse(static_cast<int>(rest.size()), rest.data())) return 0;

  if (command.empty()) {
    throw UsageError("missing command: expected stats, verify or gc\n" +
                     flags.usage());
  }
  const std::string dir = store::resolve_cache_dir(run.cache_dir);
  if (dir.empty()) {
    throw UsageError("no store: pass --cache-dir or set $OSIM_CACHE_DIR");
  }
  store::ScenarioStore cache(dir);

  if (command == "stats") {
    if (json) {
      const std::vector<supervise::JournalInfo> journals =
          supervise::list_journals(dir);
      std::printf("%s\n", serve::cache_stats_json(cache, journals).c_str());
      return kExitOk;
    }
    const store::StoreStats stats = cache.stats();
    std::printf("store: %s\n", cache.root().c_str());
    std::printf("objects: %llu\n",
                static_cast<unsigned long long>(stats.objects));
    std::printf("bytes: %llu (%s)\n",
                static_cast<unsigned long long>(stats.bytes),
                format_bytes(static_cast<double>(stats.bytes)).c_str());
    std::printf("recorded hits: %llu\n",
                static_cast<unsigned long long>(stats.total_hits));
    std::printf("lru clock: %llu\n",
                static_cast<unsigned long long>(stats.clock));
    if (stats.index_rebuilt) {
      std::printf("index: rebuilt from an object scan (was missing or "
                  "damaged)\n");
    }
    const std::vector<supervise::JournalInfo> journals =
        supervise::list_journals(dir);
    std::size_t complete = 0;
    std::size_t invalid = 0;
    for (const supervise::JournalInfo& j : journals) {
      if (!j.valid) ++invalid;
      else if (j.complete) ++complete;
    }
    std::printf("journals: %zu (%zu complete, %zu in progress%s)\n",
                journals.size(), complete,
                journals.size() - complete - invalid,
                invalid != 0
                    ? strprintf(", %zu unreadable", invalid).c_str()
                    : "");
    if (show_journals) {
      for (const supervise::JournalInfo& j : journals) {
        const char* state = !j.valid      ? "unreadable"
                            : j.complete  ? "complete"
                                          : "in progress";
        std::printf("  %s  %zu entr%s (%zu ok)  %s  %s\n",
                    j.valid ? pipeline::to_hex(j.study).c_str()
                            : j.path.c_str(),
                    j.entries, j.entries == 1 ? "y" : "ies", j.ok,
                    format_bytes(static_cast<double>(j.bytes)).c_str(),
                    state);
      }
    }
    return kExitOk;
  }

  if (command == "verify") {
    const store::VerifyReport report = cache.verify();
    std::printf("%s", report.render_text().c_str());
    if (!report.clean()) {
      std::printf("%s: %zu issue(s)\n", cache.root().c_str(),
                  report.issues.size());
      return kExitError;
    }
    std::printf("%s: OK\n", cache.root().c_str());
    return kExitOk;
  }

  if (command == "gc") {
    if (max_bytes < 0) throw UsageError("gc requires --max-bytes");
    const store::GcReport report =
        cache.gc(static_cast<std::uint64_t>(max_bytes),
                 static_cast<std::uint64_t>(max_objects));
    std::printf("gc: removed %llu object(s), %s; kept %llu object(s), %s\n",
                static_cast<unsigned long long>(report.objects_removed),
                format_bytes(static_cast<double>(report.bytes_removed)).c_str(),
                static_cast<unsigned long long>(report.objects_kept),
                format_bytes(static_cast<double>(report.bytes_kept)).c_str());
    const std::size_t journals_removed = supervise::gc_journals(dir);
    if (journals_removed != 0) {
      std::printf("gc: removed %zu finished-study journal(s)\n",
                  journals_removed);
    }
    return kExitOk;
  }

  throw UsageError("unknown command '" + command +
                   "': expected stats, verify or gc");
} catch (const osim::UsageError& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return osim::kExitUsage;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return osim::kExitError;
}
