# Empty compiler generated dependencies file for network_sweep.
# This may be replaced when dependencies are built.
