file(REMOVE_RECURSE
  "CMakeFiles/network_sweep.dir/network_sweep.cpp.o"
  "CMakeFiles/network_sweep.dir/network_sweep.cpp.o.d"
  "network_sweep"
  "network_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
