# Empty dependencies file for halo_overlap_study.
# This may be replaced when dependencies are built.
