file(REMOVE_RECURSE
  "CMakeFiles/halo_overlap_study.dir/halo_overlap_study.cpp.o"
  "CMakeFiles/halo_overlap_study.dir/halo_overlap_study.cpp.o.d"
  "halo_overlap_study"
  "halo_overlap_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/halo_overlap_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
