# Empty compiler generated dependencies file for custom_app_analysis.
# This may be replaced when dependencies are built.
