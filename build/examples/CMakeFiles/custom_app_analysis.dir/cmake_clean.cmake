file(REMOVE_RECURSE
  "CMakeFiles/custom_app_analysis.dir/custom_app_analysis.cpp.o"
  "CMakeFiles/custom_app_analysis.dir/custom_app_analysis.cpp.o.d"
  "custom_app_analysis"
  "custom_app_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_app_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
