file(REMOVE_RECURSE
  "CMakeFiles/mechanism_illustration.dir/mechanism_illustration.cpp.o"
  "CMakeFiles/mechanism_illustration.dir/mechanism_illustration.cpp.o.d"
  "mechanism_illustration"
  "mechanism_illustration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mechanism_illustration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
