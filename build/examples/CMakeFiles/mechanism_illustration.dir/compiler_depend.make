# Empty compiler generated dependencies file for mechanism_illustration.
# This may be replaced when dependencies are built.
