# Empty dependencies file for tool_osim_trace.
# This may be replaced when dependencies are built.
