file(REMOVE_RECURSE
  "CMakeFiles/tool_osim_trace.dir/osim_trace.cpp.o"
  "CMakeFiles/tool_osim_trace.dir/osim_trace.cpp.o.d"
  "osim_trace"
  "osim_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_osim_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
