file(REMOVE_RECURSE
  "CMakeFiles/tool_osim_overlap.dir/osim_overlap.cpp.o"
  "CMakeFiles/tool_osim_overlap.dir/osim_overlap.cpp.o.d"
  "osim_overlap"
  "osim_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_osim_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
