# Empty dependencies file for tool_osim_overlap.
# This may be replaced when dependencies are built.
