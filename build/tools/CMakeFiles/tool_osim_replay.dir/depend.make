# Empty dependencies file for tool_osim_replay.
# This may be replaced when dependencies are built.
