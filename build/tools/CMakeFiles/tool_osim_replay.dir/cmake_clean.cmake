file(REMOVE_RECURSE
  "CMakeFiles/tool_osim_replay.dir/osim_replay.cpp.o"
  "CMakeFiles/tool_osim_replay.dir/osim_replay.cpp.o.d"
  "osim_replay"
  "osim_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_osim_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
