file(REMOVE_RECURSE
  "CMakeFiles/tool_osim_inspect.dir/osim_inspect.cpp.o"
  "CMakeFiles/tool_osim_inspect.dir/osim_inspect.cpp.o.d"
  "osim_inspect"
  "osim_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_osim_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
