
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/alya.cpp" "src/apps/CMakeFiles/osim_apps.dir/alya.cpp.o" "gcc" "src/apps/CMakeFiles/osim_apps.dir/alya.cpp.o.d"
  "/root/repo/src/apps/app.cpp" "src/apps/CMakeFiles/osim_apps.dir/app.cpp.o" "gcc" "src/apps/CMakeFiles/osim_apps.dir/app.cpp.o.d"
  "/root/repo/src/apps/nas_bt.cpp" "src/apps/CMakeFiles/osim_apps.dir/nas_bt.cpp.o" "gcc" "src/apps/CMakeFiles/osim_apps.dir/nas_bt.cpp.o.d"
  "/root/repo/src/apps/nas_cg.cpp" "src/apps/CMakeFiles/osim_apps.dir/nas_cg.cpp.o" "gcc" "src/apps/CMakeFiles/osim_apps.dir/nas_cg.cpp.o.d"
  "/root/repo/src/apps/pop.cpp" "src/apps/CMakeFiles/osim_apps.dir/pop.cpp.o" "gcc" "src/apps/CMakeFiles/osim_apps.dir/pop.cpp.o.d"
  "/root/repo/src/apps/specfem3d.cpp" "src/apps/CMakeFiles/osim_apps.dir/specfem3d.cpp.o" "gcc" "src/apps/CMakeFiles/osim_apps.dir/specfem3d.cpp.o.d"
  "/root/repo/src/apps/sweep3d.cpp" "src/apps/CMakeFiles/osim_apps.dir/sweep3d.cpp.o" "gcc" "src/apps/CMakeFiles/osim_apps.dir/sweep3d.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tracer/CMakeFiles/osim_tracer.dir/DependInfo.cmake"
  "/root/repo/build/src/mpisim/CMakeFiles/osim_mpisim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/osim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/osim_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
