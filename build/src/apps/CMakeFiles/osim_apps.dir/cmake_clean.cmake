file(REMOVE_RECURSE
  "CMakeFiles/osim_apps.dir/alya.cpp.o"
  "CMakeFiles/osim_apps.dir/alya.cpp.o.d"
  "CMakeFiles/osim_apps.dir/app.cpp.o"
  "CMakeFiles/osim_apps.dir/app.cpp.o.d"
  "CMakeFiles/osim_apps.dir/nas_bt.cpp.o"
  "CMakeFiles/osim_apps.dir/nas_bt.cpp.o.d"
  "CMakeFiles/osim_apps.dir/nas_cg.cpp.o"
  "CMakeFiles/osim_apps.dir/nas_cg.cpp.o.d"
  "CMakeFiles/osim_apps.dir/pop.cpp.o"
  "CMakeFiles/osim_apps.dir/pop.cpp.o.d"
  "CMakeFiles/osim_apps.dir/specfem3d.cpp.o"
  "CMakeFiles/osim_apps.dir/specfem3d.cpp.o.d"
  "CMakeFiles/osim_apps.dir/sweep3d.cpp.o"
  "CMakeFiles/osim_apps.dir/sweep3d.cpp.o.d"
  "libosim_apps.a"
  "libosim_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osim_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
