file(REMOVE_RECURSE
  "libosim_apps.a"
)
