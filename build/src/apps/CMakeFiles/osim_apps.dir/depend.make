# Empty dependencies file for osim_apps.
# This may be replaced when dependencies are built.
