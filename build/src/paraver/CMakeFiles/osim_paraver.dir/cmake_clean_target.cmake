file(REMOVE_RECURSE
  "libosim_paraver.a"
)
