# Empty dependencies file for osim_paraver.
# This may be replaced when dependencies are built.
