file(REMOVE_RECURSE
  "CMakeFiles/osim_paraver.dir/paraver.cpp.o"
  "CMakeFiles/osim_paraver.dir/paraver.cpp.o.d"
  "libosim_paraver.a"
  "libosim_paraver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osim_paraver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
