# Empty dependencies file for osim_dimemas.
# This may be replaced when dependencies are built.
