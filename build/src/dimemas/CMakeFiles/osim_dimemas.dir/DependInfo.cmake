
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dimemas/collectives.cpp" "src/dimemas/CMakeFiles/osim_dimemas.dir/collectives.cpp.o" "gcc" "src/dimemas/CMakeFiles/osim_dimemas.dir/collectives.cpp.o.d"
  "/root/repo/src/dimemas/fairshare.cpp" "src/dimemas/CMakeFiles/osim_dimemas.dir/fairshare.cpp.o" "gcc" "src/dimemas/CMakeFiles/osim_dimemas.dir/fairshare.cpp.o.d"
  "/root/repo/src/dimemas/network.cpp" "src/dimemas/CMakeFiles/osim_dimemas.dir/network.cpp.o" "gcc" "src/dimemas/CMakeFiles/osim_dimemas.dir/network.cpp.o.d"
  "/root/repo/src/dimemas/platform.cpp" "src/dimemas/CMakeFiles/osim_dimemas.dir/platform.cpp.o" "gcc" "src/dimemas/CMakeFiles/osim_dimemas.dir/platform.cpp.o.d"
  "/root/repo/src/dimemas/platform_io.cpp" "src/dimemas/CMakeFiles/osim_dimemas.dir/platform_io.cpp.o" "gcc" "src/dimemas/CMakeFiles/osim_dimemas.dir/platform_io.cpp.o.d"
  "/root/repo/src/dimemas/replay.cpp" "src/dimemas/CMakeFiles/osim_dimemas.dir/replay.cpp.o" "gcc" "src/dimemas/CMakeFiles/osim_dimemas.dir/replay.cpp.o.d"
  "/root/repo/src/dimemas/result.cpp" "src/dimemas/CMakeFiles/osim_dimemas.dir/result.cpp.o" "gcc" "src/dimemas/CMakeFiles/osim_dimemas.dir/result.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/osim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/osim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
