file(REMOVE_RECURSE
  "CMakeFiles/osim_dimemas.dir/collectives.cpp.o"
  "CMakeFiles/osim_dimemas.dir/collectives.cpp.o.d"
  "CMakeFiles/osim_dimemas.dir/fairshare.cpp.o"
  "CMakeFiles/osim_dimemas.dir/fairshare.cpp.o.d"
  "CMakeFiles/osim_dimemas.dir/network.cpp.o"
  "CMakeFiles/osim_dimemas.dir/network.cpp.o.d"
  "CMakeFiles/osim_dimemas.dir/platform.cpp.o"
  "CMakeFiles/osim_dimemas.dir/platform.cpp.o.d"
  "CMakeFiles/osim_dimemas.dir/platform_io.cpp.o"
  "CMakeFiles/osim_dimemas.dir/platform_io.cpp.o.d"
  "CMakeFiles/osim_dimemas.dir/replay.cpp.o"
  "CMakeFiles/osim_dimemas.dir/replay.cpp.o.d"
  "CMakeFiles/osim_dimemas.dir/result.cpp.o"
  "CMakeFiles/osim_dimemas.dir/result.cpp.o.d"
  "libosim_dimemas.a"
  "libosim_dimemas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osim_dimemas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
