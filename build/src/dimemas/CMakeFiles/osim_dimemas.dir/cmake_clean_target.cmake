file(REMOVE_RECURSE
  "libosim_dimemas.a"
)
