file(REMOVE_RECURSE
  "CMakeFiles/osim_trace.dir/annotated.cpp.o"
  "CMakeFiles/osim_trace.dir/annotated.cpp.o.d"
  "CMakeFiles/osim_trace.dir/annotated_io.cpp.o"
  "CMakeFiles/osim_trace.dir/annotated_io.cpp.o.d"
  "CMakeFiles/osim_trace.dir/binary_io.cpp.o"
  "CMakeFiles/osim_trace.dir/binary_io.cpp.o.d"
  "CMakeFiles/osim_trace.dir/io.cpp.o"
  "CMakeFiles/osim_trace.dir/io.cpp.o.d"
  "CMakeFiles/osim_trace.dir/record.cpp.o"
  "CMakeFiles/osim_trace.dir/record.cpp.o.d"
  "CMakeFiles/osim_trace.dir/summary.cpp.o"
  "CMakeFiles/osim_trace.dir/summary.cpp.o.d"
  "CMakeFiles/osim_trace.dir/trace.cpp.o"
  "CMakeFiles/osim_trace.dir/trace.cpp.o.d"
  "libosim_trace.a"
  "libosim_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osim_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
