file(REMOVE_RECURSE
  "libosim_trace.a"
)
