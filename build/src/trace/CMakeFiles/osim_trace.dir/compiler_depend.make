# Empty compiler generated dependencies file for osim_trace.
# This may be replaced when dependencies are built.
