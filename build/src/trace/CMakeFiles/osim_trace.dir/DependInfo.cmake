
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/annotated.cpp" "src/trace/CMakeFiles/osim_trace.dir/annotated.cpp.o" "gcc" "src/trace/CMakeFiles/osim_trace.dir/annotated.cpp.o.d"
  "/root/repo/src/trace/annotated_io.cpp" "src/trace/CMakeFiles/osim_trace.dir/annotated_io.cpp.o" "gcc" "src/trace/CMakeFiles/osim_trace.dir/annotated_io.cpp.o.d"
  "/root/repo/src/trace/binary_io.cpp" "src/trace/CMakeFiles/osim_trace.dir/binary_io.cpp.o" "gcc" "src/trace/CMakeFiles/osim_trace.dir/binary_io.cpp.o.d"
  "/root/repo/src/trace/io.cpp" "src/trace/CMakeFiles/osim_trace.dir/io.cpp.o" "gcc" "src/trace/CMakeFiles/osim_trace.dir/io.cpp.o.d"
  "/root/repo/src/trace/record.cpp" "src/trace/CMakeFiles/osim_trace.dir/record.cpp.o" "gcc" "src/trace/CMakeFiles/osim_trace.dir/record.cpp.o.d"
  "/root/repo/src/trace/summary.cpp" "src/trace/CMakeFiles/osim_trace.dir/summary.cpp.o" "gcc" "src/trace/CMakeFiles/osim_trace.dir/summary.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "src/trace/CMakeFiles/osim_trace.dir/trace.cpp.o" "gcc" "src/trace/CMakeFiles/osim_trace.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/osim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
