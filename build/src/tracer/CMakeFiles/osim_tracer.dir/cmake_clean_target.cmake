file(REMOVE_RECURSE
  "libosim_tracer.a"
)
