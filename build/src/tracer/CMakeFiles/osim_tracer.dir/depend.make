# Empty dependencies file for osim_tracer.
# This may be replaced when dependencies are built.
