file(REMOVE_RECURSE
  "CMakeFiles/osim_tracer.dir/context.cpp.o"
  "CMakeFiles/osim_tracer.dir/context.cpp.o.d"
  "CMakeFiles/osim_tracer.dir/tracer.cpp.o"
  "CMakeFiles/osim_tracer.dir/tracer.cpp.o.d"
  "libosim_tracer.a"
  "libosim_tracer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osim_tracer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
