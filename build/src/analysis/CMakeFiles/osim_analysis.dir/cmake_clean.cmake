file(REMOVE_RECURSE
  "CMakeFiles/osim_analysis.dir/bandwidth.cpp.o"
  "CMakeFiles/osim_analysis.dir/bandwidth.cpp.o.d"
  "CMakeFiles/osim_analysis.dir/calibrate.cpp.o"
  "CMakeFiles/osim_analysis.dir/calibrate.cpp.o.d"
  "CMakeFiles/osim_analysis.dir/critical_path.cpp.o"
  "CMakeFiles/osim_analysis.dir/critical_path.cpp.o.d"
  "CMakeFiles/osim_analysis.dir/patterns.cpp.o"
  "CMakeFiles/osim_analysis.dir/patterns.cpp.o.d"
  "CMakeFiles/osim_analysis.dir/sancho.cpp.o"
  "CMakeFiles/osim_analysis.dir/sancho.cpp.o.d"
  "CMakeFiles/osim_analysis.dir/speedup.cpp.o"
  "CMakeFiles/osim_analysis.dir/speedup.cpp.o.d"
  "CMakeFiles/osim_analysis.dir/whatif.cpp.o"
  "CMakeFiles/osim_analysis.dir/whatif.cpp.o.d"
  "libosim_analysis.a"
  "libosim_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osim_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
