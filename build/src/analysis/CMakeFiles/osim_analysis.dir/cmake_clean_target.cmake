file(REMOVE_RECURSE
  "libosim_analysis.a"
)
