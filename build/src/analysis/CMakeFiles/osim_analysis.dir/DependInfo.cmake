
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/bandwidth.cpp" "src/analysis/CMakeFiles/osim_analysis.dir/bandwidth.cpp.o" "gcc" "src/analysis/CMakeFiles/osim_analysis.dir/bandwidth.cpp.o.d"
  "/root/repo/src/analysis/calibrate.cpp" "src/analysis/CMakeFiles/osim_analysis.dir/calibrate.cpp.o" "gcc" "src/analysis/CMakeFiles/osim_analysis.dir/calibrate.cpp.o.d"
  "/root/repo/src/analysis/critical_path.cpp" "src/analysis/CMakeFiles/osim_analysis.dir/critical_path.cpp.o" "gcc" "src/analysis/CMakeFiles/osim_analysis.dir/critical_path.cpp.o.d"
  "/root/repo/src/analysis/patterns.cpp" "src/analysis/CMakeFiles/osim_analysis.dir/patterns.cpp.o" "gcc" "src/analysis/CMakeFiles/osim_analysis.dir/patterns.cpp.o.d"
  "/root/repo/src/analysis/sancho.cpp" "src/analysis/CMakeFiles/osim_analysis.dir/sancho.cpp.o" "gcc" "src/analysis/CMakeFiles/osim_analysis.dir/sancho.cpp.o.d"
  "/root/repo/src/analysis/speedup.cpp" "src/analysis/CMakeFiles/osim_analysis.dir/speedup.cpp.o" "gcc" "src/analysis/CMakeFiles/osim_analysis.dir/speedup.cpp.o.d"
  "/root/repo/src/analysis/whatif.cpp" "src/analysis/CMakeFiles/osim_analysis.dir/whatif.cpp.o" "gcc" "src/analysis/CMakeFiles/osim_analysis.dir/whatif.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/overlap/CMakeFiles/osim_overlap.dir/DependInfo.cmake"
  "/root/repo/build/src/dimemas/CMakeFiles/osim_dimemas.dir/DependInfo.cmake"
  "/root/repo/build/src/tracer/CMakeFiles/osim_tracer.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/osim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/osim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mpisim/CMakeFiles/osim_mpisim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
