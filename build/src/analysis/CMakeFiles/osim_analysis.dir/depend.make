# Empty dependencies file for osim_analysis.
# This may be replaced when dependencies are built.
