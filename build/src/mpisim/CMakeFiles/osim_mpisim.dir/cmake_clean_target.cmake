file(REMOVE_RECURSE
  "libosim_mpisim.a"
)
