file(REMOVE_RECURSE
  "CMakeFiles/osim_mpisim.dir/comm.cpp.o"
  "CMakeFiles/osim_mpisim.dir/comm.cpp.o.d"
  "CMakeFiles/osim_mpisim.dir/context.cpp.o"
  "CMakeFiles/osim_mpisim.dir/context.cpp.o.d"
  "libosim_mpisim.a"
  "libosim_mpisim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osim_mpisim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
