# Empty dependencies file for osim_mpisim.
# This may be replaced when dependencies are built.
