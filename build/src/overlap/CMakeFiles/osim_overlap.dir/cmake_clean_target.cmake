file(REMOVE_RECURSE
  "libosim_overlap.a"
)
