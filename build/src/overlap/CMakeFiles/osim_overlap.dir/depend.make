# Empty dependencies file for osim_overlap.
# This may be replaced when dependencies are built.
