file(REMOVE_RECURSE
  "CMakeFiles/osim_overlap.dir/chunks.cpp.o"
  "CMakeFiles/osim_overlap.dir/chunks.cpp.o.d"
  "CMakeFiles/osim_overlap.dir/pairing.cpp.o"
  "CMakeFiles/osim_overlap.dir/pairing.cpp.o.d"
  "CMakeFiles/osim_overlap.dir/transform.cpp.o"
  "CMakeFiles/osim_overlap.dir/transform.cpp.o.d"
  "libosim_overlap.a"
  "libosim_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osim_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
