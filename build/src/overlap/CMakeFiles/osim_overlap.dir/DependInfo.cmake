
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/overlap/chunks.cpp" "src/overlap/CMakeFiles/osim_overlap.dir/chunks.cpp.o" "gcc" "src/overlap/CMakeFiles/osim_overlap.dir/chunks.cpp.o.d"
  "/root/repo/src/overlap/pairing.cpp" "src/overlap/CMakeFiles/osim_overlap.dir/pairing.cpp.o" "gcc" "src/overlap/CMakeFiles/osim_overlap.dir/pairing.cpp.o.d"
  "/root/repo/src/overlap/transform.cpp" "src/overlap/CMakeFiles/osim_overlap.dir/transform.cpp.o" "gcc" "src/overlap/CMakeFiles/osim_overlap.dir/transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/osim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/osim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
