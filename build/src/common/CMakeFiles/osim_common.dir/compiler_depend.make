# Empty compiler generated dependencies file for osim_common.
# This may be replaced when dependencies are built.
