file(REMOVE_RECURSE
  "libosim_common.a"
)
