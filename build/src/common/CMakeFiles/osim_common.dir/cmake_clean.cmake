file(REMOVE_RECURSE
  "CMakeFiles/osim_common.dir/csv.cpp.o"
  "CMakeFiles/osim_common.dir/csv.cpp.o.d"
  "CMakeFiles/osim_common.dir/flags.cpp.o"
  "CMakeFiles/osim_common.dir/flags.cpp.o.d"
  "CMakeFiles/osim_common.dir/log.cpp.o"
  "CMakeFiles/osim_common.dir/log.cpp.o.d"
  "CMakeFiles/osim_common.dir/stats.cpp.o"
  "CMakeFiles/osim_common.dir/stats.cpp.o.d"
  "CMakeFiles/osim_common.dir/strings.cpp.o"
  "CMakeFiles/osim_common.dir/strings.cpp.o.d"
  "CMakeFiles/osim_common.dir/table.cpp.o"
  "CMakeFiles/osim_common.dir/table.cpp.o.d"
  "libosim_common.a"
  "libosim_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osim_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
