file(REMOVE_RECURSE
  "CMakeFiles/fig6c_equivalent.dir/fig6c_equivalent.cpp.o"
  "CMakeFiles/fig6c_equivalent.dir/fig6c_equivalent.cpp.o.d"
  "fig6c_equivalent"
  "fig6c_equivalent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6c_equivalent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
