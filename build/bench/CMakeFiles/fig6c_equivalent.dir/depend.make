# Empty dependencies file for fig6c_equivalent.
# This may be replaced when dependencies are built.
