# Empty compiler generated dependencies file for baseline_sancho.
# This may be replaced when dependencies are built.
