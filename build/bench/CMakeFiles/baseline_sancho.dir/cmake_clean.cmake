file(REMOVE_RECURSE
  "CMakeFiles/baseline_sancho.dir/baseline_sancho.cpp.o"
  "CMakeFiles/baseline_sancho.dir/baseline_sancho.cpp.o.d"
  "baseline_sancho"
  "baseline_sancho.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_sancho.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
