# Empty compiler generated dependencies file for osim_bench_util.
# This may be replaced when dependencies are built.
