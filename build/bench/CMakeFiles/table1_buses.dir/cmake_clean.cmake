file(REMOVE_RECURSE
  "CMakeFiles/table1_buses.dir/table1_buses.cpp.o"
  "CMakeFiles/table1_buses.dir/table1_buses.cpp.o.d"
  "table1_buses"
  "table1_buses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_buses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
