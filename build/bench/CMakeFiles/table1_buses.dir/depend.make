# Empty dependencies file for table1_buses.
# This may be replaced when dependencies are built.
