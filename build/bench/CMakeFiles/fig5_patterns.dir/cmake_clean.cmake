file(REMOVE_RECURSE
  "CMakeFiles/fig5_patterns.dir/fig5_patterns.cpp.o"
  "CMakeFiles/fig5_patterns.dir/fig5_patterns.cpp.o.d"
  "fig5_patterns"
  "fig5_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
