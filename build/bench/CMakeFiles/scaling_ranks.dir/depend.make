# Empty dependencies file for scaling_ranks.
# This may be replaced when dependencies are built.
