file(REMOVE_RECURSE
  "CMakeFiles/scaling_ranks.dir/scaling_ranks.cpp.o"
  "CMakeFiles/scaling_ranks.dir/scaling_ranks.cpp.o.d"
  "scaling_ranks"
  "scaling_ranks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_ranks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
