file(REMOVE_RECURSE
  "CMakeFiles/critpath_analysis.dir/critpath_analysis.cpp.o"
  "CMakeFiles/critpath_analysis.dir/critpath_analysis.cpp.o.d"
  "critpath_analysis"
  "critpath_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/critpath_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
