# Empty dependencies file for critpath_analysis.
# This may be replaced when dependencies are built.
