# Empty compiler generated dependencies file for fig6b_relaxation.
# This may be replaced when dependencies are built.
