file(REMOVE_RECURSE
  "CMakeFiles/fig6b_relaxation.dir/fig6b_relaxation.cpp.o"
  "CMakeFiles/fig6b_relaxation.dir/fig6b_relaxation.cpp.o.d"
  "fig6b_relaxation"
  "fig6b_relaxation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6b_relaxation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
