file(REMOVE_RECURSE
  "CMakeFiles/whatif_straggler.dir/whatif_straggler.cpp.o"
  "CMakeFiles/whatif_straggler.dir/whatif_straggler.cpp.o.d"
  "whatif_straggler"
  "whatif_straggler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whatif_straggler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
