# Empty compiler generated dependencies file for whatif_straggler.
# This may be replaced when dependencies are built.
