file(REMOVE_RECURSE
  "CMakeFiles/paraver_test.dir/paraver_test.cpp.o"
  "CMakeFiles/paraver_test.dir/paraver_test.cpp.o.d"
  "paraver_test"
  "paraver_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paraver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
