# Empty compiler generated dependencies file for paraver_test.
# This may be replaced when dependencies are built.
