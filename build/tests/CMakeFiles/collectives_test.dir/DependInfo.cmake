
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/collectives_test.cpp" "tests/CMakeFiles/collectives_test.dir/collectives_test.cpp.o" "gcc" "tests/CMakeFiles/collectives_test.dir/collectives_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/osim_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/osim_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/paraver/CMakeFiles/osim_paraver.dir/DependInfo.cmake"
  "/root/repo/build/src/overlap/CMakeFiles/osim_overlap.dir/DependInfo.cmake"
  "/root/repo/build/src/dimemas/CMakeFiles/osim_dimemas.dir/DependInfo.cmake"
  "/root/repo/build/src/tracer/CMakeFiles/osim_tracer.dir/DependInfo.cmake"
  "/root/repo/build/src/mpisim/CMakeFiles/osim_mpisim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/osim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/osim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
