file(REMOVE_RECURSE
  "CMakeFiles/io_tools_test.dir/io_tools_test.cpp.o"
  "CMakeFiles/io_tools_test.dir/io_tools_test.cpp.o.d"
  "io_tools_test"
  "io_tools_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_tools_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
