file(REMOVE_RECURSE
  "CMakeFiles/dimemas_core_test.dir/dimemas_core_test.cpp.o"
  "CMakeFiles/dimemas_core_test.dir/dimemas_core_test.cpp.o.d"
  "dimemas_core_test"
  "dimemas_core_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dimemas_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
