# Empty dependencies file for dimemas_core_test.
# This may be replaced when dependencies are built.
