file(REMOVE_RECURSE
  "CMakeFiles/critical_path_test.dir/critical_path_test.cpp.o"
  "CMakeFiles/critical_path_test.dir/critical_path_test.cpp.o.d"
  "critical_path_test"
  "critical_path_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/critical_path_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
