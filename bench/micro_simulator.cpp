// Google-benchmark microbenchmarks of the simulator internals: DES event
// throughput, network model transfer rates, replay throughput, collective
// expansion, and the overlap transformation. These quantify the "fast"
// half of the paper's "fast and precise simulation framework" claim.
#include <benchmark/benchmark.h>

#include "dimemas/collectives.hpp"
#include "dimemas/events.hpp"
#include "dimemas/network.hpp"
#include "overlap/transform.hpp"
#include "pipeline/scenario.hpp"
#include "trace/trace.hpp"

namespace {

using namespace osim;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  for (auto _ : state) {
    dimemas::EventQueue q;
    std::int64_t count = 0;
    for (std::int64_t i = 0; i < n; ++i) {
      q.schedule(static_cast<double>((i * 2654435761u) % 1000),
                 [&count] { ++count; });
    }
    q.run_until_empty();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1024)->Arg(16384)->Arg(131072);

void BM_BusNetworkTransfers(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  dimemas::Platform p;
  p.num_nodes = 16;
  p.bandwidth_MBps = 100.0;
  p.latency_us = 5.0;
  p.num_buses = 8;
  for (auto _ : state) {
    dimemas::EventQueue q;
    dimemas::BusNetwork net(q, p);
    std::int64_t done = 0;
    for (std::int64_t i = 0; i < n; ++i) {
      net.submit(dimemas::Transfer{static_cast<std::int32_t>(i % 16),
                                   static_cast<std::int32_t>((i + 5) % 16),
                                   4096},
                 [&done](double) { ++done; });
    }
    q.run_until_empty();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BusNetworkTransfers)->Arg(1024)->Arg(4096);

void BM_FairShareNetworkTransfers(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  dimemas::Platform p;
  p.num_nodes = 16;
  p.model = dimemas::NetworkModelKind::kFairShare;
  p.bandwidth_MBps = 100.0;
  p.latency_us = 5.0;
  p.fabric_capacity_links = 4.0;
  for (auto _ : state) {
    dimemas::EventQueue q;
    dimemas::FairShareNetwork net(q, p);
    std::int64_t done = 0;
    for (std::int64_t i = 0; i < n; ++i) {
      net.submit(dimemas::Transfer{static_cast<std::int32_t>(i % 16),
                                   static_cast<std::int32_t>((i + 5) % 16),
                                   4096},
                 [&done](double) { ++done; });
    }
    q.run_until_empty();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FairShareNetworkTransfers)->Arg(256)->Arg(2048);

trace::Trace ring_trace(std::int32_t ranks, int rounds) {
  trace::TraceBuilder b(ranks, 1000.0);
  for (trace::Rank r = 0; r < ranks; ++r) {
    const trace::Rank next = static_cast<trace::Rank>((r + 1) % ranks);
    const trace::Rank prev =
        static_cast<trace::Rank>((r + ranks - 1) % ranks);
    for (int i = 0; i < rounds; ++i) {
      b.irecv(r, prev, i, 8192, i + 1);
      b.compute(r, 5000);
      b.send(r, next, i, 8192);
      b.wait(r, {i + 1});
    }
  }
  return std::move(b).build();
}

void BM_ReplayRing(benchmark::State& state) {
  trace::Trace t = ring_trace(static_cast<std::int32_t>(state.range(0)), 64);
  dimemas::Platform p;
  p.num_nodes = static_cast<std::int32_t>(state.range(0));
  p.bandwidth_MBps = 250.0;
  p.latency_us = 4.0;
  std::size_t records = t.total_records();
  // The context validates the trace once, outside the timed loop.
  const pipeline::ReplayContext context(std::move(t), p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline::run_scenario(context).makespan);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(records));
}
BENCHMARK(BM_ReplayRing)->Arg(4)->Arg(16)->Arg(64);

void BM_ExpandCollectives(benchmark::State& state) {
  const std::int32_t ranks = static_cast<std::int32_t>(state.range(0));
  trace::TraceBuilder b(ranks, 1000.0);
  for (trace::Rank r = 0; r < ranks; ++r) {
    for (int i = 0; i < 32; ++i) {
      b.global(r, trace::CollectiveKind::kAllreduce, 0, 8, i);
    }
  }
  const trace::Trace t = std::move(b).build();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dimemas::expand_collectives(t).total_records());
  }
}
BENCHMARK(BM_ExpandCollectives)->Arg(16)->Arg(64)->Arg(256);

trace::AnnotatedTrace chunked_pair(std::uint64_t elems, int messages) {
  trace::AnnotatedTrace t = trace::AnnotatedTrace::make(2, 1000.0);
  std::uint64_t clock = 0;
  for (int m = 0; m < messages; ++m) {
    trace::AnnEvent send;
    send.kind = trace::AnnEvent::Kind::kSend;
    send.peer = 1;
    send.tag = 0;
    send.elem_bytes = 8;
    send.bytes = elems * 8;
    send.buffer_id = 0;
    send.chunkable = true;
    send.interval_start = clock;
    clock += elems * 10;
    send.vclock = clock;
    send.elem_last_store.resize(elems);
    for (std::uint64_t i = 0; i < elems; ++i) {
      send.elem_last_store[i] = send.interval_start + (i + 1) * 10;
    }
    t.ranks[0].events.push_back(std::move(send));

    trace::AnnEvent recv;
    recv.kind = trace::AnnEvent::Kind::kRecv;
    recv.peer = 0;
    recv.tag = 0;
    recv.elem_bytes = 8;
    recv.bytes = elems * 8;
    recv.buffer_id = 0;
    recv.chunkable = true;
    recv.vclock = clock > elems * 10 ? clock - elems * 10 : 0;
    recv.interval_end = clock;
    recv.elem_first_load.assign(elems, recv.vclock);
    t.ranks[1].events.push_back(std::move(recv));
  }
  t.ranks[0].final_vclock = clock;
  t.ranks[1].final_vclock = clock;
  return t;
}

void BM_OverlapTransform(benchmark::State& state) {
  const trace::AnnotatedTrace t =
      chunked_pair(static_cast<std::uint64_t>(state.range(0)), 32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        overlap::transform(t, overlap::OverlapOptions{}).total_records());
  }
}
BENCHMARK(BM_OverlapTransform)->Arg(256)->Arg(4096);

void BM_LowerOriginal(benchmark::State& state) {
  const trace::AnnotatedTrace t =
      chunked_pair(static_cast<std::uint64_t>(state.range(0)), 32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(overlap::lower_original(t).total_records());
  }
}
BENCHMARK(BM_LowerOriginal)->Arg(256)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
