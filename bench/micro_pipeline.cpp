// Google-benchmark microbenchmarks of the front half of the pipeline: the
// in-process MPI runtime, the tracer's access interception, and full
// app-tracing throughput.
#include <benchmark/benchmark.h>

#include "apps/app.hpp"
#include "mpisim/mpisim.hpp"
#include "tracer/tracer.hpp"

namespace {

using namespace osim;

void BM_MpisimPingPong(benchmark::State& state) {
  const std::int64_t rounds = state.range(0);
  for (auto _ : state) {
    mpisim::Runtime::run(2, [rounds](mpisim::Comm& comm) {
      std::vector<double> buf(128, 1.0);
      for (std::int64_t i = 0; i < rounds; ++i) {
        if (comm.rank() == 0) {
          comm.send(std::span<const double>(buf), 1, 0);
          comm.recv(std::span<double>(buf), 1, 1);
        } else {
          comm.recv(std::span<double>(buf), 0, 0);
          comm.send(std::span<const double>(buf), 0, 1);
        }
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * rounds * 2);
}
BENCHMARK(BM_MpisimPingPong)->Arg(64)->Arg(512)->UseRealTime();

void BM_MpisimAllreduce(benchmark::State& state) {
  const std::int64_t rounds = 32;
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    mpisim::Runtime::run(ranks, [rounds](mpisim::Comm& comm) {
      for (std::int64_t i = 0; i < rounds; ++i) {
        benchmark::DoNotOptimize(
            comm.allreduce_scalar(1.0, mpisim::Op::kSum));
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * rounds);
}
BENCHMARK(BM_MpisimAllreduce)->Arg(4)->Arg(16)->UseRealTime();

void BM_TrackedAccess(benchmark::State& state) {
  // Cost of one tracked store + load pair (the tracer's hot path).
  tracer::TracerOptions options;
  tracer::TraceContext ctx(0, options);
  const std::int64_t id = ctx.register_buffer(1024, 8, "bench");
  std::size_t i = 0;
  for (auto _ : state) {
    ctx.on_store(id, i);
    ctx.on_load(id, i);
    i = (i + 1) & 1023;
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_TrackedAccess);

void BM_TraceAppNasCg(benchmark::State& state) {
  const apps::MiniApp* app = apps::find_app("nas_cg");
  apps::AppConfig config;
  config.ranks = 4;
  config.iterations = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        apps::trace_app(*app, config).annotated.ranks[0].events.size());
  }
}
BENCHMARK(BM_TraceAppNasCg)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_TraceAppSweep3d(benchmark::State& state) {
  const apps::MiniApp* app = apps::find_app("sweep3d");
  apps::AppConfig config;
  config.ranks = 4;
  config.iterations = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        apps::trace_app(*app, config).annotated.ranks[0].events.size());
  }
}
BENCHMARK(BM_TraceAppSweep3d)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
