// Figure 6(b) reproduction: bandwidth relaxation — the minimum network
// bandwidth at which the *overlapped* execution still matches the
// performance of the *non-overlapped* execution at the nominal 250 MB/s.
//
// Paper: "the biggest benefit of overlap is that it allows to significantly
// relax network bandwidth without consequently degrading the performance";
// Sweep3D relaxes the most (down to 11.75 MB/s).
//
// Both phases run on the --jobs study: the per-app traces are independent
// deterministic runs, and the bisection searches — two per application —
// share cached probes such as the nominal-bandwidth endpoints.
#include <cstdio>
#include <optional>
#include <vector>

#include "analysis/bandwidth.hpp"
#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) try {
  using namespace osim;
  bench::BenchSetup setup;
  if (!setup.parse("Figure 6(b): bandwidth relaxation under overlap", argc,
                   argv)) {
    return 0;
  }

  TextTable table({"app", "relaxed BW real (MB/s)", "relaxed BW ideal (MB/s)",
                   "nominal (MB/s)"});
  table.set_title(
      "Figure 6(b): bandwidth needed by the overlapped execution to match "
      "the non-overlapped execution at nominal bandwidth");
  CsvWriter csv(setup.out_path("fig6b_relaxation.csv"),
                {"app", "relaxed_real_MBps", "relaxed_ideal_MBps",
                 "nominal_MBps"});

  struct Search {
    pipeline::ReplayContext original;
    pipeline::ReplayContext overlapped;
  };
  const std::vector<const apps::MiniApp*> selected = setup.selected_apps();
  pipeline::Study study(setup.study_options());
  const std::vector<tracer::TracedRun> traced =
      bench::trace_all(setup, selected, study);
  std::vector<Search> searches;
  for (std::size_t i = 0; i < selected.size(); ++i) {
    const bench::AppScenarios sc =
        bench::scenarios(setup, *selected[i], traced[i]);
    searches.push_back({sc.original, sc.real});
    searches.push_back({sc.original, sc.ideal});
  }

  const std::vector<std::optional<double>> relaxed =
      study.map(searches, [&study](const Search& s) {
        return analysis::relaxed_bandwidth(study, s.original, s.overlapped);
      });

  auto show = [](const std::optional<double>& bw) {
    return bw ? cell(*bw, 4) : std::string("n/a");
  };
  for (std::size_t i = 0; i < selected.size(); ++i) {
    const double nominal = searches[2 * i].original.platform().bandwidth_MBps;
    table.add_row({selected[i]->name(), show(relaxed[2 * i]),
                   show(relaxed[2 * i + 1]), cell(nominal, 4)});
    csv.add_row({selected[i]->name(), show(relaxed[2 * i]),
                 show(relaxed[2 * i + 1]), cell(nominal, 4)});
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("CSV written to %s\n",
              setup.out_path("fig6b_relaxation.csv").c_str());
  return setup.finish(study);
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
