// Figure 6(b) reproduction: bandwidth relaxation — the minimum network
// bandwidth at which the *overlapped* execution still matches the
// performance of the *non-overlapped* execution at the nominal 250 MB/s.
//
// Paper: "the biggest benefit of overlap is that it allows to significantly
// relax network bandwidth without consequently degrading the performance";
// Sweep3D relaxes the most (down to 11.75 MB/s).
#include <cstdio>

#include "analysis/bandwidth.hpp"
#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "overlap/transform.hpp"

int main(int argc, char** argv) try {
  using namespace osim;
  bench::BenchSetup setup;
  if (!setup.parse("Figure 6(b): bandwidth relaxation under overlap", argc,
                   argv)) {
    return 0;
  }

  TextTable table({"app", "relaxed BW real (MB/s)", "relaxed BW ideal (MB/s)",
                   "nominal (MB/s)"});
  table.set_title(
      "Figure 6(b): bandwidth needed by the overlapped execution to match "
      "the non-overlapped execution at nominal bandwidth");
  CsvWriter csv(setup.out_path("fig6b_relaxation.csv"),
                {"app", "relaxed_real_MBps", "relaxed_ideal_MBps",
                 "nominal_MBps"});

  for (const apps::MiniApp* app : setup.selected_apps()) {
    const tracer::TracedRun traced = bench::trace(setup, *app);
    const trace::Trace original = overlap::lower_original(traced.annotated);

    overlap::OverlapOptions real_options = setup.overlap_options();
    real_options.pattern = overlap::PatternMode::kMeasured;
    overlap::OverlapOptions ideal_options = setup.overlap_options();
    ideal_options.pattern = overlap::PatternMode::kIdeal;
    const trace::Trace real =
        overlap::transform(traced.annotated, real_options);
    const trace::Trace ideal =
        overlap::transform(traced.annotated, ideal_options);

    const dimemas::Platform platform = setup.platform_for(*app);
    const auto bw_real = analysis::relaxed_bandwidth(original, real, platform);
    const auto bw_ideal =
        analysis::relaxed_bandwidth(original, ideal, platform);

    auto show = [](const std::optional<double>& bw) {
      return bw ? cell(*bw, 4) : std::string("n/a");
    };
    table.add_row({app->name(), show(bw_real), show(bw_ideal),
                   cell(platform.bandwidth_MBps, 4)});
    csv.add_row({app->name(), show(bw_real), show(bw_ideal),
                 cell(platform.bandwidth_MBps, 4)});
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("CSV written to %s\n",
              setup.out_path("fig6b_relaxation.csv").c_str());
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
