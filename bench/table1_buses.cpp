// Table I reproduction: the number of Dimemas buses per application,
// calibrated so the bus-model simulation matches the "real machine"
// (our detailed fair-share reference platform — see DESIGN.md).
//
// Paper values: Sweep3D 12, POP 12, Alya 11, SPECFEM3D 8, BT 22, CG 6.
// The absolute counts depend on the real machine's congestion profile; the
// reproduction's check is that a finite, per-application bus count exists
// that matches the reference closely (small relative error).
//
// Tracing is serial; the per-application calibration sweeps then run
// concurrently on the --jobs study.
#include <cstdio>
#include <vector>

#include "analysis/calibrate.hpp"
#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "overlap/transform.hpp"

int main(int argc, char** argv) try {
  using namespace osim;
  bench::BenchSetup setup;
  if (!setup.parse("Table I: Dimemas bus counts calibrated per application",
                   argc, argv)) {
    return 0;
  }

  TextTable table({"app", "buses (calibrated)", "buses (paper)",
                   "T reference", "T bus model", "rel. error"});
  table.set_title("Table I: number of network buses used in Dimemas");
  CsvWriter csv(setup.out_path("table1_buses.csv"),
                {"app", "buses", "paper_buses", "t_reference_s",
                 "t_bus_model_s", "relative_error"});

  struct Calibration {
    pipeline::ReplayContext bus_context;
    dimemas::Platform reference;
  };
  const std::vector<const apps::MiniApp*> selected = setup.selected_apps();
  std::vector<Calibration> tasks;
  for (const apps::MiniApp* app : selected) {
    const tracer::TracedRun traced = bench::trace(setup, *app);
    const std::int32_t ranks = setup.app_config(*app).ranks;
    tasks.push_back(
        {pipeline::ReplayContext(overlap::lower_original(traced.annotated),
                                 dimemas::Platform::marenostrum(ranks, 1)),
         dimemas::Platform::reference_machine(ranks)});
  }

  pipeline::Study study(setup.study_options());
  const std::vector<analysis::BusCalibration> calibrations =
      study.map(tasks, [&study](const Calibration& c) {
        return analysis::calibrate_buses(study, c.bus_context, c.reference);
      });

  for (std::size_t i = 0; i < selected.size(); ++i) {
    const analysis::BusCalibration& calibration = calibrations[i];
    table.add_row({selected[i]->name(), std::to_string(calibration.buses),
                   std::to_string(selected[i]->paper_buses()),
                   format_seconds(calibration.reference_time),
                   format_seconds(calibration.simulated_time),
                   cell_percent(calibration.relative_error)});
    csv.add_row({selected[i]->name(), std::to_string(calibration.buses),
                 std::to_string(selected[i]->paper_buses()),
                 cell(calibration.reference_time, 6),
                 cell(calibration.simulated_time, 6),
                 cell(calibration.relative_error, 4)});
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("CSV written to %s\n",
              setup.out_path("table1_buses.csv").c_str());
  return setup.finish(study);
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
