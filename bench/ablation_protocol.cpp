// Ablation: eager/rendezvous threshold sweep. Advancing sends can only
// land data early if the protocol lets the transfer progress before the
// receive is posted (eager), so the threshold directly modulates how much
// the overlapped execution gains.
#include <cstdio>

#include "analysis/speedup.hpp"
#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) try {
  using namespace osim;
  bench::BenchSetup setup;
  setup.iterations = 5;
  if (!setup.parse("ablation: eager-threshold sweep", argc, argv)) {
    return 0;
  }

  const std::uint64_t thresholds[] = {0, 1024, 16 * 1024, 64 * 1024,
                                      1u << 30};
  std::vector<std::string> header{"app"};
  for (const std::uint64_t t : thresholds) {
    header.push_back(t >= (1u << 30) ? "always eager"
                                     : format_bytes(static_cast<double>(t)));
  }
  TextTable table(header);
  table.set_title(
      "speedup (measured patterns) vs non-overlapped, by eager threshold");
  CsvWriter csv(setup.out_path("ablation_protocol.csv"),
                {"app", "eager_threshold_bytes", "speedup_real",
                 "t_original_s", "t_overlapped_s"});

  for (const apps::MiniApp* app : setup.selected_apps()) {
    const tracer::TracedRun traced = bench::trace(setup, *app);
    std::vector<std::string> row{app->name()};
    for (const std::uint64_t threshold : thresholds) {
      dimemas::Platform platform = setup.platform_for(*app);
      platform.eager_threshold_bytes = threshold;
      const auto outcome =
          analysis::evaluate_overlap(traced.annotated, platform,
                                     setup.overlap_options());
      row.push_back(cell(outcome.speedup_real(), 4));
      csv.add_row({app->name(), std::to_string(threshold),
                   cell(outcome.speedup_real(), 6),
                   cell(outcome.t_original, 6),
                   cell(outcome.t_overlapped_real, 6)});
    }
    table.add_row(row);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("CSV written to %s\n",
              setup.out_path("ablation_protocol.csv").c_str());
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
