// Ablation: eager/rendezvous threshold sweep. Advancing sends can only
// land data early if the protocol lets the transfer progress before the
// receive is posted (eager), so the threshold directly modulates how much
// the overlapped execution gains.
//
// Tracing is serial; the (app, threshold) cells then run concurrently on
// the --jobs study.
#include <cstdio>
#include <vector>

#include "analysis/speedup.hpp"
#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) try {
  using namespace osim;
  bench::BenchSetup setup;
  setup.iterations = 5;
  if (!setup.parse("ablation: eager-threshold sweep", argc, argv)) {
    return 0;
  }

  const std::uint64_t thresholds[] = {0, 1024, 16 * 1024, 64 * 1024,
                                      1u << 30};
  const std::size_t num_thresholds = std::size(thresholds);
  std::vector<std::string> header{"app"};
  for (const std::uint64_t t : thresholds) {
    header.push_back(t >= (1u << 30) ? "always eager"
                                     : format_bytes(static_cast<double>(t)));
  }
  TextTable table(header);
  table.set_title(
      "speedup (measured patterns) vs non-overlapped, by eager threshold");
  CsvWriter csv(setup.out_path("ablation_protocol.csv"),
                {"app", "eager_threshold_bytes", "speedup_real",
                 "t_original_s", "t_overlapped_s"});

  struct Cell {
    const apps::MiniApp* app;
    const trace::AnnotatedTrace* annotated;
    std::uint64_t threshold;
  };
  const std::vector<const apps::MiniApp*> selected = setup.selected_apps();
  std::vector<tracer::TracedRun> traced;
  traced.reserve(selected.size());
  std::vector<Cell> cells;
  for (const apps::MiniApp* app : selected) {
    traced.push_back(bench::trace(setup, *app));
    for (const std::uint64_t threshold : thresholds) {
      cells.push_back({app, &traced.back().annotated, threshold});
    }
  }

  pipeline::Study study(setup.study_options());
  const std::vector<analysis::OverlapOutcome> outcomes =
      study.map(cells, [&study, &setup](const Cell& c) {
        dimemas::Platform platform = setup.platform_for(*c.app);
        platform.eager_threshold_bytes = c.threshold;
        return analysis::evaluate_overlap(study, *c.annotated, platform,
                                          setup.overlap_options());
      });

  for (std::size_t i = 0; i < selected.size(); ++i) {
    std::vector<std::string> row{selected[i]->name()};
    for (std::size_t j = 0; j < num_thresholds; ++j) {
      const analysis::OverlapOutcome& outcome =
          outcomes[i * num_thresholds + j];
      row.push_back(cell(outcome.speedup_real(), 4));
      csv.add_row({selected[i]->name(), std::to_string(thresholds[j]),
                   cell(outcome.speedup_real(), 6),
                   cell(outcome.t_original, 6),
                   cell(outcome.t_overlapped_real, 6)});
    }
    table.add_row(row);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("CSV written to %s\n",
              setup.out_path("ablation_protocol.csv").c_str());
  return setup.finish(study);
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
