// Straggler study: one node runs slower than the rest (heterogeneous
// platform). Does overlap mask or amplify the imbalance? Reports the
// slowdown each variant suffers relative to its own homogeneous baseline.
//
// Tracing is serial; the four replays per application (original/overlapped
// x homogeneous/straggler) then run concurrently on the --jobs study.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) try {
  using namespace osim;
  bench::BenchSetup setup;
  setup.iterations = 5;
  double straggler_speed = 0.8;  // the slow node runs at 80%
  Flags flags("what-if: one straggler node at reduced CPU speed");
  flags.add("straggler-speed", &straggler_speed,
            "CPU speed multiplier of the slow node");
  if (!setup.parse("", argc, argv, &flags)) return 0;

  TextTable table({"app", "variant", "T homogeneous", "T straggler",
                   "slowdown"});
  table.set_title(strprintf(
      "impact of one node at %.0f%% CPU speed", straggler_speed * 100));
  CsvWriter csv(setup.out_path("whatif_straggler.csv"),
                {"app", "variant", "t_homogeneous_s", "t_straggler_s",
                 "slowdown"});

  const char* variant_names[] = {"original", "overlapped"};
  const std::vector<const apps::MiniApp*> selected = setup.selected_apps();
  std::vector<pipeline::ReplayContext> contexts;  // 4 per app
  for (const apps::MiniApp* app : selected) {
    const tracer::TracedRun traced = bench::trace(setup, *app);
    const dimemas::Platform base = setup.platform_for(*app);
    dimemas::Platform straggler = base;
    straggler.per_node_cpu_speed.assign(
        static_cast<std::size_t>(base.num_nodes), 1.0);
    straggler.per_node_cpu_speed[static_cast<std::size_t>(
        base.num_nodes / 2)] = straggler_speed;

    const bench::AppScenarios sc = bench::scenarios(setup, *app, traced);
    for (const pipeline::ReplayContext& variant : {sc.original, sc.real}) {
      contexts.push_back(variant);  // homogeneous baseline
      contexts.push_back(variant.with_platform(straggler));
    }
  }

  pipeline::Study study(setup.study_options());
  const std::vector<double> times = study.map(
      contexts,
      [&study](const pipeline::ReplayContext& c) { return study.makespan(c); });

  for (std::size_t i = 0; i < selected.size(); ++i) {
    for (std::size_t v = 0; v < 2; ++v) {
      const double t_base = times[i * 4 + v * 2];
      const double t_slow = times[i * 4 + v * 2 + 1];
      table.add_row({selected[i]->name(), variant_names[v],
                     format_seconds(t_base), format_seconds(t_slow),
                     cell(t_slow / t_base, 4)});
      csv.add_row({selected[i]->name(), variant_names[v], cell(t_base, 6),
                   cell(t_slow, 6), cell(t_slow / t_base, 6)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("CSV written to %s\n",
              setup.out_path("whatif_straggler.csv").c_str());
  return setup.finish(study);
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
