// Straggler study: one node runs slower than the rest (heterogeneous
// platform). Does overlap mask or amplify the imbalance? Reports the
// slowdown each variant suffers relative to its own homogeneous baseline.
#include <cstdio>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "dimemas/replay.hpp"
#include "overlap/transform.hpp"

int main(int argc, char** argv) try {
  using namespace osim;
  bench::BenchSetup setup;
  setup.iterations = 5;
  double straggler_speed = 0.8;  // the slow node runs at 80%
  Flags flags("what-if: one straggler node at reduced CPU speed");
  flags.add("straggler-speed", &straggler_speed,
            "CPU speed multiplier of the slow node");
  if (!setup.parse("", argc, argv, &flags)) return 0;

  TextTable table({"app", "variant", "T homogeneous", "T straggler",
                   "slowdown"});
  table.set_title(strprintf(
      "impact of one node at %.0f%% CPU speed", straggler_speed * 100));
  CsvWriter csv(setup.out_path("whatif_straggler.csv"),
                {"app", "variant", "t_homogeneous_s", "t_straggler_s",
                 "slowdown"});

  for (const apps::MiniApp* app : setup.selected_apps()) {
    const tracer::TracedRun traced = bench::trace(setup, *app);
    const dimemas::Platform base = setup.platform_for(*app);
    dimemas::Platform straggler = base;
    straggler.per_node_cpu_speed.assign(
        static_cast<std::size_t>(base.num_nodes), 1.0);
    straggler.per_node_cpu_speed[static_cast<std::size_t>(
        base.num_nodes / 2)] = straggler_speed;

    struct Variant {
      const char* name;
      trace::Trace trace;
    };
    const Variant variants[] = {
        {"original", overlap::lower_original(traced.annotated)},
        {"overlapped",
         overlap::transform(traced.annotated, setup.overlap_options())},
    };
    for (const Variant& variant : variants) {
      const double t_base = dimemas::replay(variant.trace, base).makespan;
      const double t_slow =
          dimemas::replay(variant.trace, straggler).makespan;
      table.add_row({app->name(), variant.name, format_seconds(t_base),
                     format_seconds(t_slow), cell(t_slow / t_base, 4)});
      csv.add_row({app->name(), variant.name, cell(t_base, 6),
                   cell(t_slow, 6), cell(t_slow / t_base, 6)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("CSV written to %s\n",
              setup.out_path("whatif_straggler.csv").c_str());
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
