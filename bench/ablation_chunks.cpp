// Ablation: chunk-count sweep (the paper fixes 4 chunks per message, §IV).
// More chunks = finer overlap granularity but more per-message transfers.
//
// Tracing is serial; the (app, chunk-count) cells then run concurrently on
// the --jobs study. The non-overlapped replay is identical across chunk
// counts, so the study's cache replays it once per application.
#include <cstdio>
#include <vector>

#include "analysis/speedup.hpp"
#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) try {
  using namespace osim;
  bench::BenchSetup setup;
  setup.iterations = 5;
  if (!setup.parse("ablation: chunks-per-message sweep", argc, argv)) {
    return 0;
  }

  const int chunk_counts[] = {1, 2, 4, 8, 16};
  const std::size_t num_chunk_counts = std::size(chunk_counts);
  std::vector<std::string> header{"app"};
  for (const int c : chunk_counts) {
    header.push_back(strprintf("%d chunk%s", c, c == 1 ? "" : "s"));
  }
  TextTable table(header);
  table.set_title(
      "speedup (measured patterns) vs non-overlapped, by chunk count");
  TextTable table_ideal(header);
  table_ideal.set_title(
      "speedup (ideal patterns) vs non-overlapped, by chunk count");
  CsvWriter csv(setup.out_path("ablation_chunks.csv"),
                {"app", "chunks", "speedup_real", "speedup_ideal"});

  struct Cell {
    const apps::MiniApp* app;
    const trace::AnnotatedTrace* annotated;
    int chunks;
  };
  const std::vector<const apps::MiniApp*> selected = setup.selected_apps();
  std::vector<tracer::TracedRun> traced;
  traced.reserve(selected.size());
  std::vector<Cell> cells;
  for (const apps::MiniApp* app : selected) {
    traced.push_back(bench::trace(setup, *app));
    for (const int chunks : chunk_counts) {
      cells.push_back({app, &traced.back().annotated, chunks});
    }
  }

  pipeline::Study study(setup.study_options());
  const std::vector<analysis::OverlapOutcome> outcomes =
      study.map(cells, [&study, &setup](const Cell& c) {
        overlap::OverlapOptions options = setup.overlap_options();
        options.chunks = c.chunks;
        return analysis::evaluate_overlap(study, *c.annotated,
                                          setup.platform_for(*c.app), options);
      });

  for (std::size_t i = 0; i < selected.size(); ++i) {
    std::vector<std::string> row{selected[i]->name()};
    std::vector<std::string> row_ideal{selected[i]->name()};
    for (std::size_t j = 0; j < num_chunk_counts; ++j) {
      const analysis::OverlapOutcome& outcome =
          outcomes[i * num_chunk_counts + j];
      row.push_back(cell(outcome.speedup_real(), 4));
      row_ideal.push_back(cell(outcome.speedup_ideal(), 4));
      csv.add_row({selected[i]->name(), std::to_string(chunk_counts[j]),
                   cell(outcome.speedup_real(), 6),
                   cell(outcome.speedup_ideal(), 6)});
    }
    table.add_row(row);
    table_ideal.add_row(row_ideal);
  }
  std::printf("%s\n%s\n", table.render().c_str(),
              table_ideal.render().c_str());
  std::printf("CSV written to %s\n",
              setup.out_path("ablation_chunks.csv").c_str());
  return setup.finish(study);
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
