// Ablation: chunk-count sweep (the paper fixes 4 chunks per message, §IV).
// More chunks = finer overlap granularity but more per-message transfers.
#include <cstdio>

#include "analysis/speedup.hpp"
#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) try {
  using namespace osim;
  bench::BenchSetup setup;
  setup.iterations = 5;
  if (!setup.parse("ablation: chunks-per-message sweep", argc, argv)) {
    return 0;
  }

  const int chunk_counts[] = {1, 2, 4, 8, 16};
  std::vector<std::string> header{"app"};
  for (const int c : chunk_counts) {
    header.push_back(strprintf("%d chunk%s", c, c == 1 ? "" : "s"));
  }
  TextTable table(header);
  table.set_title(
      "speedup (measured patterns) vs non-overlapped, by chunk count");
  TextTable table_ideal(header);
  table_ideal.set_title(
      "speedup (ideal patterns) vs non-overlapped, by chunk count");
  CsvWriter csv(setup.out_path("ablation_chunks.csv"),
                {"app", "chunks", "speedup_real", "speedup_ideal"});

  for (const apps::MiniApp* app : setup.selected_apps()) {
    const tracer::TracedRun traced = bench::trace(setup, *app);
    const dimemas::Platform platform = setup.platform_for(*app);
    std::vector<std::string> row{app->name()};
    std::vector<std::string> row_ideal{app->name()};
    for (const int chunks : chunk_counts) {
      overlap::OverlapOptions options = setup.overlap_options();
      options.chunks = chunks;
      const auto outcome =
          analysis::evaluate_overlap(traced.annotated, platform, options);
      row.push_back(cell(outcome.speedup_real(), 4));
      row_ideal.push_back(cell(outcome.speedup_ideal(), 4));
      csv.add_row({app->name(), std::to_string(chunks),
                   cell(outcome.speedup_real(), 6),
                   cell(outcome.speedup_ideal(), 6)});
    }
    table.add_row(row);
    table_ideal.add_row(row_ideal);
  }
  std::printf("%s\n%s\n", table.render().c_str(),
              table_ideal.render().c_str());
  std::printf("CSV written to %s\n",
              setup.out_path("ablation_chunks.csv").c_str());
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
