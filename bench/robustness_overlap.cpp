// Robustness study: how much of the overlap speedup (Figure 6(a)) survives
// on a faulty machine. Sweeps message-loss probability and all-pairs link
// degradation over the non-overlapped and overlapped-real replays of each
// application, all from one deterministic injector seed per cell.
//
// The interesting quantity is the *speedup* column: overlapped execution
// hides retransmission and degradation latency behind computation, so its
// makespan degrades more slowly than the non-overlapped one until hard
// stalls dominate. The CSV carries the injector counters (retransmits,
// hard stalls) and the fault-attributed wait time so the crossover is
// visible without re-running.
//
// Tracing is serial; the (app, scenario, original/real) cells then run
// concurrently on the --jobs study. Fault-free cells are shared through
// the study cache across the sweep.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "faults/spec.hpp"
#include "pipeline/scenario.hpp"

int main(int argc, char** argv) try {
  using namespace osim;
  bench::BenchSetup setup;
  setup.iterations = 5;
  std::int64_t seed = 7;
  Flags extra("robustness_overlap extra flags");
  extra.add("seed", &seed, "fault-injector seed shared by every scenario");
  if (!setup.parse(
          "robustness: overlap speedup under message loss and link "
          "degradation",
          argc, argv, &extra)) {
    return 0;
  }

  // One axis per mechanism; "clean" anchors the fault-free baseline.
  struct Scenario {
    const char* label;
    const char* spec;  // without the seed clause; added below
  };
  const Scenario scenarios[] = {
      {"clean", ""},
      {"loss-0.5%", "loss=0.005"},
      {"loss-2%", "loss=0.02"},
      {"loss-5%", "loss=0.05"},
      {"degrade-bw-50%", "degrade=any-any,bw=0.5"},
      {"degrade-bw-25%", "degrade=any-any,bw=0.25"},
      {"loss-2%+degrade-50%", "loss=0.02;degrade=any-any,bw=0.5"},
  };

  TextTable table({"app", "scenario", "T original", "T overlap real",
                   "speedup", "retransmits", "hard stalls"});
  table.set_title("overlap speedup under injected faults");
  CsvWriter csv(setup.out_path("robustness_overlap.csv"),
                {"app", "scenario", "t_original_s", "t_real_s", "speedup",
                 "retransmits", "hard_stalls", "fault_wait_s"});

  // collect_metrics gives the per-rank fault-wait attribution that
  // ScenarioRecord::fault_wait_s aggregates.
  struct Cell {
    std::size_t app;
    std::size_t scenario;
    pipeline::ReplayContext context;
    std::string label;
  };
  const std::vector<const apps::MiniApp*> selected = setup.selected_apps();
  std::vector<Cell> cells;
  for (std::size_t a = 0; a < selected.size(); ++a) {
    const tracer::TracedRun traced = bench::trace(setup, *selected[a]);
    const bench::AppScenarios sc = bench::scenarios(setup, *selected[a],
                                                    traced);
    std::vector<pipeline::FaultScenario> fault_scenarios;
    for (const Scenario& s : scenarios) {
      std::string spec = strprintf("seed=%lld", static_cast<long long>(seed));
      if (s.spec[0] != '\0') spec += std::string(";") + s.spec;
      fault_scenarios.push_back(
          {s.label, faults::parse_spec(spec)});
    }
    dimemas::ReplayOptions with_metrics = sc.original.options();
    with_metrics.collect_metrics = true;
    const pipeline::ReplayContext original =
        sc.original.with_options(with_metrics);
    const pipeline::ReplayContext real = sc.real.with_options(with_metrics);
    const std::vector<pipeline::ReplayContext> originals =
        pipeline::cross_faults(original, fault_scenarios);
    const std::vector<pipeline::ReplayContext> reals =
        pipeline::cross_faults(real, fault_scenarios);
    for (std::size_t s = 0; s < fault_scenarios.size(); ++s) {
      cells.push_back({a, s, originals[s],
                       selected[a]->name() + "/original/" +
                           fault_scenarios[s].label});
      cells.push_back({a, s, reals[s],
                       selected[a]->name() + "/real/" +
                           fault_scenarios[s].label});
    }
  }

  pipeline::StudyOptions study_options = setup.study_options();
  study_options.record_scenarios = true;  // counters ride on the records
  pipeline::Study study(study_options);
  const std::vector<double> times =
      study.map(cells, [&study](const Cell& c) {
        return study.makespan(c.context, c.label);
      });

  // Pull the injector counters back out of the scenario records (keyed by
  // label; records accumulate in completion order).
  struct Counters {
    std::uint64_t retransmits = 0;
    std::uint64_t hard_stalls = 0;
    double fault_wait_s = 0.0;
  };
  std::vector<Counters> counters(cells.size());
  for (const pipeline::ScenarioRecord& record : study.scenarios()) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (cells[i].label == record.label) {
        counters[i] = {record.fault_counts.retransmits,
                       record.fault_counts.hard_stalls,
                       record.fault_wait_s};
      }
    }
  }

  const std::size_t num_scenarios = std::size(scenarios);
  for (std::size_t i = 0; i + 1 < cells.size(); i += 2) {
    const double t_orig = times[i];
    const double t_real = times[i + 1];
    const double speedup = t_real > 0.0 ? t_orig / t_real : 0.0;
    const Cell& cell = cells[i];
    const Counters& c = counters[i + 1];  // overlapped-real run's counters
    table.add_row({selected[cell.app]->name(),
                   scenarios[cell.scenario % num_scenarios].label,
                   format_seconds(t_orig), format_seconds(t_real),
                   strprintf("%.4f", speedup),
                   std::to_string(c.retransmits),
                   std::to_string(c.hard_stalls)});
    csv.add_row({selected[cell.app]->name(),
                 scenarios[cell.scenario % num_scenarios].label,
                 strprintf("%.9g", t_orig), strprintf("%.9g", t_real),
                 strprintf("%.6f", speedup), std::to_string(c.retransmits),
                 std::to_string(c.hard_stalls),
                 strprintf("%.9g", c.fault_wait_s)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("CSV written to %s\n",
              setup.out_path("robustness_overlap.csv").c_str());
  return setup.finish(study);
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
