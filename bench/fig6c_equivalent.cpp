// Figure 6(c) reproduction: the overlap's equivalent in increased network
// bandwidth — the bandwidth the *non-overlapped* execution needs to match
// the *overlapped* execution at the nominal 250 MB/s.
//
// Paper: "for some applications the performance of the overlapped execution
// cannot be achieved with non-overlapped execution on any bandwidth"
// (Sweep3D: the equivalent bandwidth tends to infinity, for both real and
// ideal patterns); SPECFEM3D's overlap is worth almost a 4x bandwidth
// increase despite its tiny direct speedup.
//
// Both the per-app traces and the two bisection searches per application
// run concurrently on the --jobs study with shared cached probes.
#include <cstdio>
#include <optional>
#include <vector>

#include "analysis/bandwidth.hpp"
#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) try {
  using namespace osim;
  bench::BenchSetup setup;
  if (!setup.parse(
          "Figure 6(c): bandwidth equivalent of overlap for the "
          "non-overlapped execution",
          argc, argv)) {
    return 0;
  }

  TextTable table({"app", "equivalent BW real (MB/s)",
                   "equivalent BW ideal (MB/s)", "nominal (MB/s)"});
  table.set_title(
      "Figure 6(c): bandwidth required by the non-overlapped execution to "
      "match the overlapped execution at nominal bandwidth (inf = "
      "unreachable)");
  CsvWriter csv(setup.out_path("fig6c_equivalent.csv"),
                {"app", "equivalent_real_MBps", "equivalent_ideal_MBps",
                 "nominal_MBps"});

  struct Search {
    pipeline::ReplayContext original;
    pipeline::ReplayContext overlapped;
  };
  const std::vector<const apps::MiniApp*> selected = setup.selected_apps();
  pipeline::Study study(setup.study_options());
  const std::vector<tracer::TracedRun> traced =
      bench::trace_all(setup, selected, study);
  std::vector<Search> searches;
  for (std::size_t i = 0; i < selected.size(); ++i) {
    const bench::AppScenarios sc =
        bench::scenarios(setup, *selected[i], traced[i]);
    searches.push_back({sc.original, sc.real});
    searches.push_back({sc.original, sc.ideal});
  }

  const std::vector<std::optional<double>> equivalent =
      study.map(searches, [&study](const Search& s) {
        return analysis::equivalent_bandwidth(study, s.original, s.overlapped);
      });

  auto show = [](const std::optional<double>& bw) {
    return bw ? cell(*bw, 4) : std::string("inf");
  };
  for (std::size_t i = 0; i < selected.size(); ++i) {
    const double nominal = searches[2 * i].original.platform().bandwidth_MBps;
    table.add_row({selected[i]->name(), show(equivalent[2 * i]),
                   show(equivalent[2 * i + 1]), cell(nominal, 4)});
    csv.add_row({selected[i]->name(), show(equivalent[2 * i]),
                 show(equivalent[2 * i + 1]), cell(nominal, 4)});
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("CSV written to %s\n",
              setup.out_path("fig6c_equivalent.csv").c_str());
  return setup.finish(study);
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
