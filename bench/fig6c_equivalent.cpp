// Figure 6(c) reproduction: the overlap's equivalent in increased network
// bandwidth — the bandwidth the *non-overlapped* execution needs to match
// the *overlapped* execution at the nominal 250 MB/s.
//
// Paper: "for some applications the performance of the overlapped execution
// cannot be achieved with non-overlapped execution on any bandwidth"
// (Sweep3D: the equivalent bandwidth tends to infinity, for both real and
// ideal patterns); SPECFEM3D's overlap is worth almost a 4x bandwidth
// increase despite its tiny direct speedup.
#include <cstdio>

#include "analysis/bandwidth.hpp"
#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "overlap/transform.hpp"

int main(int argc, char** argv) try {
  using namespace osim;
  bench::BenchSetup setup;
  if (!setup.parse(
          "Figure 6(c): bandwidth equivalent of overlap for the "
          "non-overlapped execution",
          argc, argv)) {
    return 0;
  }

  TextTable table({"app", "equivalent BW real (MB/s)",
                   "equivalent BW ideal (MB/s)", "nominal (MB/s)"});
  table.set_title(
      "Figure 6(c): bandwidth required by the non-overlapped execution to "
      "match the overlapped execution at nominal bandwidth (inf = "
      "unreachable)");
  CsvWriter csv(setup.out_path("fig6c_equivalent.csv"),
                {"app", "equivalent_real_MBps", "equivalent_ideal_MBps",
                 "nominal_MBps"});

  for (const apps::MiniApp* app : setup.selected_apps()) {
    const tracer::TracedRun traced = bench::trace(setup, *app);
    const trace::Trace original = overlap::lower_original(traced.annotated);

    overlap::OverlapOptions real_options = setup.overlap_options();
    real_options.pattern = overlap::PatternMode::kMeasured;
    overlap::OverlapOptions ideal_options = setup.overlap_options();
    ideal_options.pattern = overlap::PatternMode::kIdeal;
    const trace::Trace real =
        overlap::transform(traced.annotated, real_options);
    const trace::Trace ideal =
        overlap::transform(traced.annotated, ideal_options);

    const dimemas::Platform platform = setup.platform_for(*app);
    const auto bw_real =
        analysis::equivalent_bandwidth(original, real, platform);
    const auto bw_ideal =
        analysis::equivalent_bandwidth(original, ideal, platform);

    auto show = [](const std::optional<double>& bw) {
      return bw ? cell(*bw, 4) : std::string("inf");
    };
    table.add_row({app->name(), show(bw_real), show(bw_ideal),
                   cell(platform.bandwidth_MBps, 4)});
    csv.add_row({app->name(), show(bw_real), show(bw_ideal),
                 cell(platform.bandwidth_MBps, 4)});
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("CSV written to %s\n",
              setup.out_path("fig6c_equivalent.csv").c_str());
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
