// Baseline comparison: Sancho et al.'s analytical overlap-potential model
// (the paper's reference [23] and the work it explicitly improves upon)
// against this framework's simulated speedups.
//
// The paper's claim: "our framework accounts for more delicate application
// properties". The table shows both directions of the analytic model's
// error — applications whose unfavourable measured patterns keep them far
// below the analytic bound (POP, SPECFEM3D, BT: the model cannot see
// production/consumption timing), and Sweep3D's ideal-pattern speedup
// exceeding the model's hard ≤2 bound (the model cannot see cross-rank
// pipelining created by chunking).
//
// Tracing and the (cheap) analytic estimates are serial; the three
// simulated replays per application run concurrently on the --jobs study.
#include <cstdio>
#include <vector>

#include "analysis/sancho.hpp"
#include "analysis/speedup.hpp"
#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) try {
  using namespace osim;
  bench::BenchSetup setup;
  setup.iterations = 5;
  if (!setup.parse(
          "baseline: Sancho'06 analytic overlap bound vs simulation", argc,
          argv)) {
    return 0;
  }

  TextTable table({"app", "T_comp", "T_comm", "analytic bound",
                   "simulated real", "simulated ideal", "verdict"});
  table.set_title(
      "Sancho'06 analytic speedup bound vs this framework's simulation");
  CsvWriter csv(setup.out_path("baseline_sancho.csv"),
                {"app", "t_comp_s", "t_comm_s", "analytic_bound",
                 "simulated_real", "simulated_ideal"});

  const std::vector<const apps::MiniApp*> selected = setup.selected_apps();
  std::vector<analysis::SanchoEstimate> analytics;
  std::vector<pipeline::ReplayContext> contexts;  // 3 per app
  for (const apps::MiniApp* app : selected) {
    const tracer::TracedRun traced = bench::trace(setup, *app);
    const bench::AppScenarios sc = bench::scenarios(setup, *app, traced);
    analytics.push_back(analysis::sancho_estimate(sc.original));
    contexts.push_back(sc.original);
    contexts.push_back(sc.real);
    contexts.push_back(sc.ideal);
  }

  pipeline::Study study(setup.study_options());
  const std::vector<double> times = study.map(
      contexts,
      [&study](const pipeline::ReplayContext& c) { return study.makespan(c); });

  for (std::size_t i = 0; i < selected.size(); ++i) {
    const analysis::SanchoEstimate& analytic = analytics[i];
    analysis::OverlapOutcome simulated;
    simulated.t_original = times[3 * i];
    simulated.t_overlapped_real = times[3 * i + 1];
    simulated.t_overlapped_ideal = times[3 * i + 2];

    const char* verdict = "model ~ok";
    if (simulated.speedup_ideal() > analytic.speedup_bound() * 1.05) {
      verdict = "simulation beats the bound (pipelining)";
    } else if (simulated.speedup_real() <
               analytic.speedup_bound() * 0.75) {
      verdict = "model too optimistic (patterns)";
    }
    table.add_row({selected[i]->name(), format_seconds(analytic.t_compute_s),
                   format_seconds(analytic.t_comm_s),
                   cell(analytic.speedup_bound(), 4),
                   cell(simulated.speedup_real(), 4),
                   cell(simulated.speedup_ideal(), 4), verdict});
    csv.add_row({selected[i]->name(), cell(analytic.t_compute_s, 6),
                 cell(analytic.t_comm_s, 6),
                 cell(analytic.speedup_bound(), 6),
                 cell(simulated.speedup_real(), 6),
                 cell(simulated.speedup_ideal(), 6)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("CSV written to %s\n",
              setup.out_path("baseline_sancho.csv").c_str());
  return setup.finish(study);
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
