// Baseline comparison: Sancho et al.'s analytical overlap-potential model
// (the paper's reference [23] and the work it explicitly improves upon)
// against this framework's simulated speedups.
//
// The paper's claim: "our framework accounts for more delicate application
// properties". The table shows both directions of the analytic model's
// error — applications whose unfavourable measured patterns keep them far
// below the analytic bound (POP, SPECFEM3D, BT: the model cannot see
// production/consumption timing), and Sweep3D's ideal-pattern speedup
// exceeding the model's hard ≤2 bound (the model cannot see cross-rank
// pipelining created by chunking).
#include <cstdio>

#include "analysis/sancho.hpp"
#include "analysis/speedup.hpp"
#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "overlap/transform.hpp"

int main(int argc, char** argv) try {
  using namespace osim;
  bench::BenchSetup setup;
  setup.iterations = 5;
  if (!setup.parse(
          "baseline: Sancho'06 analytic overlap bound vs simulation", argc,
          argv)) {
    return 0;
  }

  TextTable table({"app", "T_comp", "T_comm", "analytic bound",
                   "simulated real", "simulated ideal", "verdict"});
  table.set_title(
      "Sancho'06 analytic speedup bound vs this framework's simulation");
  CsvWriter csv(setup.out_path("baseline_sancho.csv"),
                {"app", "t_comp_s", "t_comm_s", "analytic_bound",
                 "simulated_real", "simulated_ideal"});

  for (const apps::MiniApp* app : setup.selected_apps()) {
    const tracer::TracedRun traced = bench::trace(setup, *app);
    const dimemas::Platform platform = setup.platform_for(*app);
    const trace::Trace original = overlap::lower_original(traced.annotated);
    const analysis::SanchoEstimate analytic =
        analysis::sancho_estimate(original, platform);
    const analysis::OverlapOutcome simulated = analysis::evaluate_overlap(
        traced.annotated, platform, setup.overlap_options());

    const char* verdict = "model ~ok";
    if (simulated.speedup_ideal() > analytic.speedup_bound() * 1.05) {
      verdict = "simulation beats the bound (pipelining)";
    } else if (simulated.speedup_real() <
               analytic.speedup_bound() * 0.75) {
      verdict = "model too optimistic (patterns)";
    }
    table.add_row({app->name(), format_seconds(analytic.t_compute_s),
                   format_seconds(analytic.t_comm_s),
                   cell(analytic.speedup_bound(), 4),
                   cell(simulated.speedup_real(), 4),
                   cell(simulated.speedup_ideal(), 4), verdict});
    csv.add_row({app->name(), cell(analytic.t_compute_s, 6),
                 cell(analytic.t_comm_s, 6),
                 cell(analytic.speedup_bound(), 6),
                 cell(simulated.speedup_real(), 6),
                 cell(simulated.speedup_ideal(), 6)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("CSV written to %s\n",
              setup.out_path("baseline_sancho.csv").c_str());
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
