// What-if network sensitivity per application: how much of each app's
// runtime is attributable to latency, bandwidth and contention — and how
// overlap changes that attribution. This extends the paper's §V network
// studies with a single-table breakdown.
#include <cstdio>

#include "analysis/whatif.hpp"
#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "overlap/transform.hpp"

int main(int argc, char** argv) try {
  using namespace osim;
  bench::BenchSetup setup;
  setup.iterations = 5;
  if (!setup.parse("what-if: network sensitivity breakdown per application",
                   argc, argv)) {
    return 0;
  }

  TextTable table({"app", "variant", "T nominal", "latency", "bandwidth",
                   "contention", "network total"});
  table.set_title(
      "share of the nominal runtime removed by idealizing each network "
      "property");
  CsvWriter csv(setup.out_path("whatif_network.csv"),
                {"app", "variant", "t_nominal_s", "latency_sensitivity",
                 "bandwidth_sensitivity", "contention_sensitivity",
                 "network_bound_share"});

  for (const apps::MiniApp* app : setup.selected_apps()) {
    const tracer::TracedRun traced = bench::trace(setup, *app);
    const dimemas::Platform platform = setup.platform_for(*app);
    struct Variant {
      const char* name;
      trace::Trace trace;
    };
    const Variant variants[] = {
        {"original", overlap::lower_original(traced.annotated)},
        {"overlapped",
         overlap::transform(traced.annotated, setup.overlap_options())},
    };
    for (const Variant& variant : variants) {
      const analysis::WhatIfBreakdown breakdown =
          analysis::whatif_network(variant.trace, platform);
      table.add_row({app->name(), variant.name,
                     format_seconds(breakdown.t_nominal),
                     cell_percent(breakdown.latency_sensitivity(), 1),
                     cell_percent(breakdown.bandwidth_sensitivity(), 1),
                     cell_percent(breakdown.contention_sensitivity(), 1),
                     cell_percent(breakdown.network_bound_share(), 1)});
      csv.add_row({app->name(), variant.name, cell(breakdown.t_nominal, 6),
                   cell(breakdown.latency_sensitivity(), 4),
                   cell(breakdown.bandwidth_sensitivity(), 4),
                   cell(breakdown.contention_sensitivity(), 4),
                   cell(breakdown.network_bound_share(), 4)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("CSV written to %s\n",
              setup.out_path("whatif_network.csv").c_str());
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
