// What-if network sensitivity per application: how much of each app's
// runtime is attributable to latency, bandwidth and contention — and how
// overlap changes that attribution. This extends the paper's §V network
// studies with a single-table breakdown.
//
// Tracing is serial; the (app, variant) breakdowns — five replays each —
// then run concurrently on the --jobs study.
#include <cstdio>
#include <vector>

#include "analysis/whatif.hpp"
#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) try {
  using namespace osim;
  bench::BenchSetup setup;
  setup.iterations = 5;
  if (!setup.parse("what-if: network sensitivity breakdown per application",
                   argc, argv)) {
    return 0;
  }

  TextTable table({"app", "variant", "T nominal", "latency", "bandwidth",
                   "contention", "network total"});
  table.set_title(
      "share of the nominal runtime removed by idealizing each network "
      "property");
  CsvWriter csv(setup.out_path("whatif_network.csv"),
                {"app", "variant", "t_nominal_s", "latency_sensitivity",
                 "bandwidth_sensitivity", "contention_sensitivity",
                 "network_bound_share"});

  struct Variant {
    const char* name;
    pipeline::ReplayContext context;
  };
  const std::vector<const apps::MiniApp*> selected = setup.selected_apps();
  std::vector<Variant> variants;
  for (const apps::MiniApp* app : selected) {
    const tracer::TracedRun traced = bench::trace(setup, *app);
    const bench::AppScenarios sc = bench::scenarios(setup, *app, traced);
    variants.push_back({"original", sc.original});
    variants.push_back({"overlapped", sc.real});
  }

  pipeline::Study study(setup.study_options());
  const std::vector<analysis::WhatIfBreakdown> breakdowns =
      study.map(variants, [&study](const Variant& v) {
        return analysis::whatif_network(study, v.context);
      });

  for (std::size_t i = 0; i < variants.size(); ++i) {
    const apps::MiniApp* app = selected[i / 2];
    const analysis::WhatIfBreakdown& breakdown = breakdowns[i];
    table.add_row({app->name(), variants[i].name,
                   format_seconds(breakdown.t_nominal),
                   cell_percent(breakdown.latency_sensitivity(), 1),
                   cell_percent(breakdown.bandwidth_sensitivity(), 1),
                   cell_percent(breakdown.contention_sensitivity(), 1),
                   cell_percent(breakdown.network_bound_share(), 1)});
    csv.add_row({app->name(), variants[i].name, cell(breakdown.t_nominal, 6),
                 cell(breakdown.latency_sensitivity(), 4),
                 cell(breakdown.bandwidth_sensitivity(), 4),
                 cell(breakdown.contention_sensitivity(), 4),
                 cell(breakdown.network_bound_share(), 4)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("CSV written to %s\n",
              setup.out_path("whatif_network.csv").c_str());
  return setup.finish(study);
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
