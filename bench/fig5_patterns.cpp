// Figure 5 reproduction: production/consumption pattern scatter plots.
//
//   (a) Sweep3D production — every element revisited many times, final
//       versions only late in the interval;
//   (b) NAS-BT consumption — four tight unpack passes ("the data is copied
//       to some other location");
//   (c) POP consumption — a leading band of independent work, then the
//       whole halo consumed at once.
//
// x axis: normalized time within the production/consumption interval;
// y axis: element offset within the transferred buffer (as in the paper's
// "Figure interpretation" note).
#include <cstdio>

#include "analysis/patterns.hpp"
#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"

namespace {

struct Panel {
  const char* app;
  bool production;
  const char* title;
};

}  // namespace

int main(int argc, char** argv) try {
  using namespace osim;
  bench::BenchSetup setup;
  setup.iterations = 4;
  if (!setup.parse("Figure 5: production/consumption access scatter", argc,
                   argv)) {
    return 0;
  }

  const Panel panels[] = {
      {"sweep3d", true, "Figure 5(a): SWEEP3D production pattern"},
      {"nas_bt", false, "Figure 5(b): NAS-BT consumption pattern"},
      {"pop", false, "Figure 5(c): POP consumption pattern"},
  };

  CsvWriter csv(setup.out_path("fig5_patterns.csv"),
                {"app", "kind", "time_frac", "element_frac"});

  for (const Panel& panel : panels) {
    const apps::MiniApp* app = apps::find_app(panel.app);
    OSIM_CHECK(app != nullptr);
    const tracer::TracedRun traced =
        bench::trace(setup, *app, /*record_access_log=*/true);

    // Use a middle rank so the buffer sees real traffic in both directions.
    const std::int32_t rank = setup.app_config(*app).ranks / 2;
    const std::int64_t buffer =
        traced.find_buffer(rank, app->pattern_buffer());
    OSIM_CHECK_MSG(buffer >= 0, "pattern buffer not found");

    const auto points =
        panel.production
            ? analysis::production_scatter(
                  traced.annotated,
                  traced.access_logs[static_cast<std::size_t>(rank)], rank,
                  buffer)
            : analysis::consumption_scatter(
                  traced.annotated,
                  traced.access_logs[static_cast<std::size_t>(rank)], rank,
                  buffer);

    std::printf("%s\n",
                analysis::render_scatter(points, panel.title, 72, 18).c_str());
    for (const auto& point : points) {
      csv.add_row({panel.app, panel.production ? "production" : "consumption",
                   cell(point.time_frac, 5), cell(point.element_frac, 5)});
    }
  }

  std::printf("CSV written to %s\n",
              setup.out_path("fig5_patterns.csv").c_str());
  return setup.finish();
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
