// Scaling study: overlap speedup as a function of the rank count (the
// paper's machine was 64 nodes; its motivation — network cost grows with
// scale — implies the benefit should persist or grow as ranks increase).
// Sweep3D's wavefront pipelining is the clearest case: the ideal-pattern
// speedup grows with the process-grid diagonal.
//
// Tracing is serial (and is the expensive phase here: one trace per
// (app, rank-count) cell); the replays then run concurrently on the
// --jobs study.
#include <cstdio>
#include <vector>

#include "analysis/speedup.hpp"
#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) try {
  using namespace osim;
  bench::BenchSetup setup;
  setup.iterations = 4;
  if (!setup.parse("scaling: overlap speedup vs rank count", argc, argv)) {
    return 0;
  }

  const std::int32_t rank_counts[] = {4, 8, 16, 32, 64};
  const std::size_t num_rank_counts = std::size(rank_counts);
  std::vector<std::string> header{"app", "pattern"};
  for (const std::int32_t r : rank_counts) {
    header.push_back(strprintf("%d ranks", r));
  }
  TextTable table(header);
  table.set_title("overlap speedup vs rank count");
  CsvWriter csv(setup.out_path("scaling_ranks.csv"),
                {"app", "pattern", "ranks", "speedup"});

  struct Cell {
    tracer::TracedRun traced;
    dimemas::Platform platform;
    std::int32_t ranks = 0;
  };
  const std::vector<const apps::MiniApp*> selected = setup.selected_apps();
  std::vector<Cell> cells;
  for (const apps::MiniApp* app : selected) {
    for (const std::int32_t ranks : rank_counts) {
      apps::AppConfig config;
      config.ranks = ranks;
      while (!app->supports_ranks(config.ranks)) ++config.ranks;
      config.iterations = static_cast<std::int32_t>(setup.iterations);
      config.scale = static_cast<std::int32_t>(setup.scale);
      std::fprintf(stderr, "[bench] tracing %s (%d ranks)...\n",
                   app->name().c_str(), config.ranks);
      cells.push_back({apps::trace_app(*app, config),
                       dimemas::Platform::marenostrum(config.ranks,
                                                      app->paper_buses()),
                       config.ranks});
    }
  }

  pipeline::Study study(setup.study_options());
  const std::vector<analysis::OverlapOutcome> outcomes =
      study.map(cells, [&study, &setup](const Cell& c) {
        return analysis::evaluate_overlap(study, c.traced.annotated,
                                          c.platform, setup.overlap_options());
      });

  for (std::size_t i = 0; i < selected.size(); ++i) {
    std::vector<std::string> row_real{selected[i]->name(), "real"};
    std::vector<std::string> row_ideal{selected[i]->name(), "ideal"};
    for (std::size_t j = 0; j < num_rank_counts; ++j) {
      const std::size_t k = i * num_rank_counts + j;
      row_real.push_back(cell(outcomes[k].speedup_real(), 4));
      row_ideal.push_back(cell(outcomes[k].speedup_ideal(), 4));
      csv.add_row({selected[i]->name(), "real", std::to_string(cells[k].ranks),
                   cell(outcomes[k].speedup_real(), 6)});
      csv.add_row({selected[i]->name(), "ideal",
                   std::to_string(cells[k].ranks),
                   cell(outcomes[k].speedup_ideal(), 6)});
    }
    table.add_row(row_real);
    table.add_row(row_ideal);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("CSV written to %s\n",
              setup.out_path("scaling_ranks.csv").c_str());
  return setup.finish(study);
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
