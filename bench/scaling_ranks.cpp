// Scaling study: overlap speedup as a function of the rank count (the
// paper's machine was 64 nodes; its motivation — network cost grows with
// scale — implies the benefit should persist or grow as ranks increase).
// Sweep3D's wavefront pipelining is the clearest case: the ideal-pattern
// speedup grows with the process-grid diagonal.
#include <cstdio>

#include "analysis/speedup.hpp"
#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) try {
  using namespace osim;
  bench::BenchSetup setup;
  setup.iterations = 4;
  if (!setup.parse("scaling: overlap speedup vs rank count", argc, argv)) {
    return 0;
  }

  const std::int32_t rank_counts[] = {4, 8, 16, 32, 64};
  std::vector<std::string> header{"app", "pattern"};
  for (const std::int32_t r : rank_counts) {
    header.push_back(strprintf("%d ranks", r));
  }
  TextTable table(header);
  table.set_title("overlap speedup vs rank count");
  CsvWriter csv(setup.out_path("scaling_ranks.csv"),
                {"app", "pattern", "ranks", "speedup"});

  for (const apps::MiniApp* app : setup.selected_apps()) {
    std::vector<std::string> row_real{app->name(), "real"};
    std::vector<std::string> row_ideal{app->name(), "ideal"};
    for (const std::int32_t ranks : rank_counts) {
      apps::AppConfig config;
      config.ranks = ranks;
      while (!app->supports_ranks(config.ranks)) ++config.ranks;
      config.iterations = static_cast<std::int32_t>(setup.iterations);
      config.scale = static_cast<std::int32_t>(setup.scale);
      const tracer::TracedRun traced = apps::trace_app(*app, config);
      const dimemas::Platform platform =
          dimemas::Platform::marenostrum(config.ranks, app->paper_buses());
      const auto outcome = analysis::evaluate_overlap(
          traced.annotated, platform, setup.overlap_options());
      row_real.push_back(cell(outcome.speedup_real(), 4));
      row_ideal.push_back(cell(outcome.speedup_ideal(), 4));
      csv.add_row({app->name(), "real", std::to_string(config.ranks),
                   cell(outcome.speedup_real(), 6)});
      csv.add_row({app->name(), "ideal", std::to_string(config.ranks),
                   cell(outcome.speedup_ideal(), 6)});
    }
    table.add_row(row_real);
    table.add_row(row_ideal);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("CSV written to %s\n",
              setup.out_path("scaling_ranks.csv").c_str());
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
