// Ablation: collective decomposition algorithm (binomial trees, flat
// linear stars, log-round recursive doubling). The paper performs
// collectives "as usual using multiple point-to-point MPI transfers"; this
// bench quantifies how much the chosen decomposition matters per
// application — most visibly for Alya, whose runtime is dominated by
// one-element reductions.
//
// Tracing is serial; the three replays per application (one per algorithm,
// sharing the lowered trace) then run concurrently on the --jobs study.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "overlap/transform.hpp"

int main(int argc, char** argv) try {
  using namespace osim;
  bench::BenchSetup setup;
  setup.iterations = 5;
  if (!setup.parse("ablation: collective decomposition algorithms", argc,
                   argv)) {
    return 0;
  }

  const dimemas::CollectiveAlgo algos[] = {
      dimemas::CollectiveAlgo::kBinomialTree,
      dimemas::CollectiveAlgo::kLinear,
      dimemas::CollectiveAlgo::kRecursiveDoubling,
  };
  const std::size_t num_algos = std::size(algos);

  std::vector<std::string> header{"app"};
  for (const auto algo : algos) {
    header.push_back(dimemas::collective_algo_name(algo));
  }
  TextTable table(header);
  table.set_title(
      "original-execution makespan by collective decomposition algorithm");
  CsvWriter csv(setup.out_path("ablation_collectives.csv"),
                {"app", "algorithm", "t_original_s"});

  const std::vector<const apps::MiniApp*> selected = setup.selected_apps();
  std::vector<pipeline::ReplayContext> contexts;
  for (const apps::MiniApp* app : selected) {
    const tracer::TracedRun traced = bench::trace(setup, *app);
    const pipeline::ReplayContext base(
        overlap::lower_original(traced.annotated), setup.platform_for(*app));
    for (const auto algo : algos) {
      dimemas::ReplayOptions options;
      options.collective_algo = algo;
      contexts.push_back(base.with_options(options));  // shares the trace
    }
  }

  pipeline::Study study(setup.study_options());
  const std::vector<double> times = study.map(
      contexts,
      [&study](const pipeline::ReplayContext& c) { return study.makespan(c); });

  for (std::size_t i = 0; i < selected.size(); ++i) {
    std::vector<std::string> row{selected[i]->name()};
    for (std::size_t j = 0; j < num_algos; ++j) {
      const double t = times[i * num_algos + j];
      row.push_back(format_seconds(t));
      csv.add_row({selected[i]->name(), dimemas::collective_algo_name(algos[j]),
                   cell(t, 6)});
    }
    table.add_row(row);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("CSV written to %s\n",
              setup.out_path("ablation_collectives.csv").c_str());
  return setup.finish(study);
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
