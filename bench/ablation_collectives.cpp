// Ablation: collective decomposition algorithm (binomial trees, flat
// linear stars, log-round recursive doubling). The paper performs
// collectives "as usual using multiple point-to-point MPI transfers"; this
// bench quantifies how much the chosen decomposition matters per
// application — most visibly for Alya, whose runtime is dominated by
// one-element reductions.
#include <cstdio>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "dimemas/replay.hpp"
#include "overlap/transform.hpp"

int main(int argc, char** argv) try {
  using namespace osim;
  bench::BenchSetup setup;
  setup.iterations = 5;
  if (!setup.parse("ablation: collective decomposition algorithms", argc,
                   argv)) {
    return 0;
  }

  const dimemas::CollectiveAlgo algos[] = {
      dimemas::CollectiveAlgo::kBinomialTree,
      dimemas::CollectiveAlgo::kLinear,
      dimemas::CollectiveAlgo::kRecursiveDoubling,
  };

  std::vector<std::string> header{"app"};
  for (const auto algo : algos) {
    header.push_back(dimemas::collective_algo_name(algo));
  }
  TextTable table(header);
  table.set_title(
      "original-execution makespan by collective decomposition algorithm");
  CsvWriter csv(setup.out_path("ablation_collectives.csv"),
                {"app", "algorithm", "t_original_s"});

  for (const apps::MiniApp* app : setup.selected_apps()) {
    const tracer::TracedRun traced = bench::trace(setup, *app);
    const trace::Trace original = overlap::lower_original(traced.annotated);
    const dimemas::Platform platform = setup.platform_for(*app);
    std::vector<std::string> row{app->name()};
    for (const auto algo : algos) {
      dimemas::ReplayOptions options;
      options.collective_algo = algo;
      const double t = dimemas::replay(original, platform, options).makespan;
      row.push_back(format_seconds(t));
      csv.add_row({app->name(), dimemas::collective_algo_name(algo),
                   cell(t, 6)});
    }
    table.add_row(row);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("CSV written to %s\n",
              setup.out_path("ablation_collectives.csv").c_str());
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
