// Progress-regime grid: the paper's overlap mechanisms replayed under the
// three MPI progress models (DESIGN.md §3.8). Quantifies how much of each
// mechanism's win survives when rendezvous handshakes and transfer
// completions only advance inside MPI calls (application-driven progress),
// and what a progress thread's CPU tax costs.
//
// Per application: the non-overlapped original plus five mechanism variants
// (all-on + one-mechanism-off ablations), each crossed with the offload /
// application-driven / progress-thread regimes via pipeline::cross_progress.
// Metrics collection is on, so the study report attributes the lost overlap
// to progress_wait_s per scenario.
#include <cstdio>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "dimemas/progress.hpp"

int main(int argc, char** argv) try {
  using namespace osim;
  bench::BenchSetup setup;
  setup.iterations = 5;
  if (!setup.parse("progress regimes: overlap mechanisms under the three "
                   "MPI progress models",
                   argc, argv)) {
    return 0;
  }

  struct Variant {
    const char* name;
    bool advance, postpone, chunking, double_buffering;
  };
  const Variant variants[] = {
      {"all on (paper)", true, true, true, true},
      {"no advancing sends", false, true, true, true},
      {"no postponed receptions", true, false, true, true},
      {"no chunking", true, true, false, true},
      {"no double buffering", true, true, true, false},
  };
  const std::vector<pipeline::ProgressScenario> regimes = {
      {"offload", dimemas::ProgressModel{}},
      {"app-driven", dimemas::parse_progress_spec("app")},
      {"thread", dimemas::parse_progress_spec("thread")},
  };
  const std::size_t num_variants = std::size(variants);
  const std::size_t num_regimes = regimes.size();
  const std::size_t per_app = (1 + num_variants) * num_regimes;

  TextTable table({"app", "variant", "offload", "app-driven", "thread"});
  table.set_title(
      "speedup vs the non-overlapped run, per MPI progress model");
  CsvWriter csv(setup.out_path("progress_regimes.csv"),
                {"app", "variant", "regime", "time_s", "speedup"});

  struct Cell {
    pipeline::ReplayContext context;
    std::string label;
  };
  const std::vector<const apps::MiniApp*> selected = setup.selected_apps();
  std::vector<Cell> cells;
  cells.reserve(selected.size() * per_app);
  for (const apps::MiniApp* app : selected) {
    const tracer::TracedRun traced = bench::trace(setup, *app);
    const dimemas::Platform platform = setup.platform_for(*app);
    dimemas::ReplayOptions replay = setup.replay_options();
    replay.collect_metrics = true;  // wait attribution → progress_wait_s
    auto push = [&](const pipeline::ReplayContext& base,
                    const std::string& variant_name) {
      std::vector<pipeline::ReplayContext> crossed =
          pipeline::cross_progress(base, regimes);
      for (std::size_t r = 0; r < crossed.size(); ++r) {
        cells.push_back(Cell{std::move(crossed[r]),
                             app->name() + "/" + variant_name + "/" +
                                 regimes[r].label});
      }
    };
    push(pipeline::make_context(traced.annotated,
                                pipeline::TraceVariant::kOriginal,
                                setup.overlap_options(), platform, replay),
         "original");
    for (const Variant& variant : variants) {
      overlap::OverlapOptions options = setup.overlap_options();
      options.advance_sends = variant.advance;
      options.postpone_receptions = variant.postpone;
      options.chunking = variant.chunking;
      options.double_buffering = variant.double_buffering;
      push(pipeline::make_context(traced.annotated,
                                  pipeline::TraceVariant::kOverlapMeasured,
                                  options, platform, replay),
           variant.name);
    }
  }

  pipeline::Study study(setup.study_options());
  const std::vector<double> times = study.map(cells, [&study](const Cell& c) {
    return study.makespan(c.context, c.label);
  });

  for (std::size_t i = 0; i < selected.size(); ++i) {
    const std::size_t base = i * per_app;
    for (std::size_t r = 0; r < num_regimes; ++r) {
      csv.add_row({selected[i]->name(), "original", regimes[r].label,
                   cell(times[base + r], 6), "1"});
    }
    for (std::size_t j = 0; j < num_variants; ++j) {
      std::vector<std::string> row{selected[i]->name(), variants[j].name};
      for (std::size_t r = 0; r < num_regimes; ++r) {
        const double t_original = times[base + r];
        const double t = times[base + (1 + j) * num_regimes + r];
        row.push_back(cell(t_original / t, 4));
        csv.add_row({selected[i]->name(), variants[j].name, regimes[r].label,
                     cell(t, 6), cell(t_original / t, 6)});
      }
      table.add_row(row);
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("CSV written to %s\n",
              setup.out_path("progress_regimes.csv").c_str());
  return setup.finish(study);
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
