// Table II reproduction: production and consumption average patterns.
//
// (a) Potential for advancing sends — percent of the production phase
//     needed to produce the 1st element / quarter / half / whole message.
// (b) Potential for post-postponing receptions — percent of the consumption
//     phase that can be passed upon reception of nothing / quarter / half.
//
// Paper reference values (Table II):
//   production: ideal 0/25/50/100; NAS-BT 99.1/99.4/99.6/100;
//     NAS-CG 4.0/28.0/52.0/100; Sweep3D 66.3/94.8/98.2/99.8;
//     POP 95.5/96.6/97.8/100; SPECFEM3D 95.3/96.5/97.7/98.9; Alya 98.8/-/-/-
//   consumption: ideal 0/25/50; NAS-BT 13.7/13.7/13.7;
//     NAS-CG 2.2/18.4/34.5; Sweep3D ~0/~0/~0; POP 3.5/3.5/3.5;
//     SPECFEM3D ~0/~0/~0; Alya 0.4/-/-
#include <cstdio>

#include "analysis/patterns.hpp"
#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) try {
  using namespace osim;
  bench::BenchSetup setup;
  if (!setup.parse("Table II: production/consumption average patterns", argc,
                   argv)) {
    return 0;
  }

  TextTable production(
      {"app", "1st element", "quarter", "half", "whole", "messages"});
  production.set_title(
      "Table II(a): percent of production phase needed to produce a part of "
      "a message");
  production.add_row({"ideal", "0%", "25%", "50%", "100%", "-"});

  TextTable consumption(
      {"app", "nothing", "quarter", "half", "messages"});
  consumption.set_title(
      "Table II(b): percent of consumption phase passable upon reception of "
      "a part of a message");
  consumption.add_row({"ideal", "0%", "25%", "50%", "-"});

  CsvWriter csv(setup.out_path("table2_patterns.csv"),
                {"app", "metric", "portion", "percent"});

  TextTable per_buffer({"app", "buffer", "prod 1st", "prod whole",
                        "cons nothing", "messages"});
  per_buffer.set_title(
      "per-buffer breakdown (which buffers drive each application's "
      "patterns)");

  for (const apps::MiniApp* app : setup.selected_apps()) {
    const tracer::TracedRun traced = bench::trace(setup, *app);
    const auto prod = analysis::production_stats(traced.annotated);
    const auto cons = analysis::consumption_stats(traced.annotated);

    if (prod.messages > 0) {
      production.add_row({app->name(), cell_percent(prod.first_element),
                          cell_percent(prod.quarter),
                          cell_percent(prod.half), cell_percent(prod.whole),
                          std::to_string(prod.messages)});
      csv.add_row({app->name(), "production", "first",
                   cell(prod.first_element * 100)});
      csv.add_row(
          {app->name(), "production", "quarter", cell(prod.quarter * 100)});
      csv.add_row({app->name(), "production", "half", cell(prod.half * 100)});
      csv.add_row(
          {app->name(), "production", "whole", cell(prod.whole * 100)});
    } else if (prod.unchunkable_messages > 0) {
      // The paper's Alya case: one-element transfers cannot be chunked, so
      // only the whole-message column is reported.
      production.add_row({app->name(), cell_percent(prod.unchunkable_whole),
                          "-", "-", "-",
                          std::to_string(prod.unchunkable_messages)});
      csv.add_row({app->name(), "production", "whole",
                   cell(prod.unchunkable_whole * 100)});
    }

    for (const auto& row : analysis::buffer_pattern_report(traced)) {
      const bool chunkable = row.production.messages > 0;
      per_buffer.add_row(
          {app->name(), row.buffer,
           chunkable ? cell_percent(row.production.first_element)
                     : (row.production.unchunkable_messages > 0
                            ? cell_percent(row.production.unchunkable_whole)
                            : std::string("-")),
           chunkable ? cell_percent(row.production.whole) : std::string("-"),
           row.consumption.messages > 0
               ? cell_percent(row.consumption.nothing)
               : (row.consumption.unchunkable_messages > 0
                      ? cell_percent(row.consumption.unchunkable_nothing)
                      : std::string("-")),
           std::to_string(row.production.messages +
                          row.production.unchunkable_messages +
                          row.consumption.messages +
                          row.consumption.unchunkable_messages)});
    }

    if (cons.messages > 0) {
      consumption.add_row({app->name(), cell_percent(cons.nothing),
                           cell_percent(cons.quarter),
                           cell_percent(cons.half),
                           std::to_string(cons.messages)});
      csv.add_row(
          {app->name(), "consumption", "nothing", cell(cons.nothing * 100)});
      csv.add_row(
          {app->name(), "consumption", "quarter", cell(cons.quarter * 100)});
      csv.add_row({app->name(), "consumption", "half", cell(cons.half * 100)});
    } else if (cons.unchunkable_messages > 0) {
      consumption.add_row({app->name(),
                           cell_percent(cons.unchunkable_nothing), "-", "-",
                           std::to_string(cons.unchunkable_messages)});
      csv.add_row({app->name(), "consumption", "nothing",
                   cell(cons.unchunkable_nothing * 100)});
    }
  }

  std::printf("%s\n%s\n%s\n", production.render().c_str(),
              consumption.render().c_str(), per_buffer.render().c_str());
  std::printf("CSV written to %s\n",
              setup.out_path("table2_patterns.csv").c_str());
  return setup.finish();
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
