// Critical-path composition per application, original vs overlapped: how
// much of the path the overlap mechanisms remove. The quantitative form of
// the paper's Figure 4 reading ("the performance improvement is mostly
// attributed to advancing the MPI transfer").
#include <cstdio>

#include "analysis/critical_path.hpp"
#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "dimemas/replay.hpp"
#include "overlap/transform.hpp"

int main(int argc, char** argv) try {
  using namespace osim;
  bench::BenchSetup setup;
  setup.iterations = 5;
  if (!setup.parse("critical-path composition, original vs overlapped", argc,
                   argv)) {
    return 0;
  }

  TextTable table({"app", "variant", "makespan", "path compute",
                   "path communication", "comm share", "ranks on path"});
  table.set_title("critical-path composition");
  CsvWriter csv(setup.out_path("critpath_analysis.csv"),
                {"app", "variant", "makespan_s", "compute_s",
                 "communication_s", "comm_share", "ranks_on_path"});

  for (const apps::MiniApp* app : setup.selected_apps()) {
    const tracer::TracedRun traced = bench::trace(setup, *app);
    const dimemas::Platform platform = setup.platform_for(*app);
    struct Variant {
      const char* name;
      trace::Trace trace;
    };
    const Variant variants[] = {
        {"original", overlap::lower_original(traced.annotated)},
        {"overlapped",
         overlap::transform(traced.annotated, setup.overlap_options())},
    };
    for (const Variant& variant : variants) {
      dimemas::ReplayOptions options;
      options.record_timeline = true;
      const auto result =
          dimemas::replay(variant.trace, platform, options);
      const analysis::CriticalPath path = analysis::critical_path(result);
      table.add_row({app->name(), variant.name,
                     format_seconds(path.makespan),
                     format_seconds(path.compute_s),
                     format_seconds(path.communication_s),
                     cell_percent(path.communication_share(), 1),
                     std::to_string(path.ranks_visited())});
      csv.add_row({app->name(), variant.name, cell(path.makespan, 6),
                   cell(path.compute_s, 6), cell(path.communication_s, 6),
                   cell(path.communication_share(), 4),
                   std::to_string(path.ranks_visited())});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("CSV written to %s\n",
              setup.out_path("critpath_analysis.csv").c_str());
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
