// Critical-path composition per application, original vs overlapped: how
// much of the path the overlap mechanisms remove. The quantitative form of
// the paper's Figure 4 reading ("the performance improvement is mostly
// attributed to advancing the MPI transfer").
//
// Tracing is serial; the (app, variant) replays then run concurrently on
// the --jobs study. Timeline-recording replays are uncached (Study::run),
// since the cache only stores makespans.
#include <cstdio>
#include <vector>

#include "analysis/critical_path.hpp"
#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) try {
  using namespace osim;
  bench::BenchSetup setup;
  setup.iterations = 5;
  if (!setup.parse("critical-path composition, original vs overlapped", argc,
                   argv)) {
    return 0;
  }

  TextTable table({"app", "variant", "makespan", "path compute",
                   "path communication", "comm share", "ranks on path"});
  table.set_title("critical-path composition");
  CsvWriter csv(setup.out_path("critpath_analysis.csv"),
                {"app", "variant", "makespan_s", "compute_s",
                 "communication_s", "comm_share", "ranks_on_path"});

  const char* variant_names[] = {"original", "overlapped"};
  dimemas::ReplayOptions replay_options;
  replay_options.record_timeline = true;

  const std::vector<const apps::MiniApp*> selected = setup.selected_apps();
  std::vector<pipeline::ReplayContext> contexts;  // 2 per app
  for (const apps::MiniApp* app : selected) {
    const tracer::TracedRun traced = bench::trace(setup, *app);
    const dimemas::Platform platform = setup.platform_for(*app);
    contexts.push_back(pipeline::make_context(
        traced.annotated, pipeline::TraceVariant::kOriginal,
        setup.overlap_options(), platform, replay_options));
    contexts.push_back(pipeline::make_context(
        traced.annotated, pipeline::TraceVariant::kOverlapMeasured,
        setup.overlap_options(), platform, replay_options));
  }

  pipeline::Study study(setup.study_options());
  const std::vector<analysis::CriticalPath> paths =
      study.map(contexts, [&study](const pipeline::ReplayContext& c) {
        return analysis::critical_path(study.run(c));
      });

  for (std::size_t i = 0; i < contexts.size(); ++i) {
    const apps::MiniApp* app = selected[i / 2];
    const analysis::CriticalPath& path = paths[i];
    table.add_row({app->name(), variant_names[i % 2],
                   format_seconds(path.makespan),
                   format_seconds(path.compute_s),
                   format_seconds(path.communication_s),
                   cell_percent(path.communication_share(), 1),
                   std::to_string(path.ranks_visited())});
    csv.add_row({app->name(), variant_names[i % 2], cell(path.makespan, 6),
                 cell(path.compute_s, 6), cell(path.communication_s, 6),
                 cell(path.communication_share(), 4),
                 std::to_string(path.ranks_visited())});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("CSV written to %s\n",
              setup.out_path("critpath_analysis.csv").c_str());
  return setup.finish(study);
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
