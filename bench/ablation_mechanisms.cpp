// Ablation: the four overlap mechanisms toggled independently, per
// application (DESIGN.md §5.3). Quantifies how much of the overlapped
// execution's behaviour each mechanism is responsible for.
#include <cstdio>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "dimemas/replay.hpp"
#include "overlap/transform.hpp"

int main(int argc, char** argv) try {
  using namespace osim;
  bench::BenchSetup setup;
  setup.iterations = 5;
  if (!setup.parse("ablation: overlap mechanisms toggled independently",
                   argc, argv)) {
    return 0;
  }

  struct Variant {
    const char* name;
    bool advance, postpone, chunking, double_buffering;
  };
  const Variant variants[] = {
      {"all on (paper)", true, true, true, true},
      {"no advancing sends", false, true, true, true},
      {"no postponed receptions", true, false, true, true},
      {"no chunking", true, true, false, true},
      {"no double buffering", true, true, true, false},
  };

  std::vector<std::string> header{"app", "original"};
  for (const Variant& v : variants) header.push_back(v.name);
  TextTable table(header);
  table.set_title("speedup vs the non-overlapped execution, per mechanism");
  CsvWriter csv(setup.out_path("ablation_mechanisms.csv"),
                {"app", "variant", "time_s", "speedup"});

  for (const apps::MiniApp* app : setup.selected_apps()) {
    const tracer::TracedRun traced = bench::trace(setup, *app);
    const dimemas::Platform platform = setup.platform_for(*app);
    const double t_original =
        dimemas::replay(overlap::lower_original(traced.annotated), platform)
            .makespan;
    std::vector<std::string> row{app->name(), format_seconds(t_original)};
    csv.add_row({app->name(), "original", cell(t_original, 6), "1"});
    for (const Variant& variant : variants) {
      overlap::OverlapOptions options = setup.overlap_options();
      options.advance_sends = variant.advance;
      options.postpone_receptions = variant.postpone;
      options.chunking = variant.chunking;
      options.double_buffering = variant.double_buffering;
      const double t =
          dimemas::replay(overlap::transform(traced.annotated, options),
                          platform)
              .makespan;
      row.push_back(cell(t_original / t, 4));
      csv.add_row({app->name(), variant.name, cell(t, 6),
                   cell(t_original / t, 6)});
    }
    table.add_row(row);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("CSV written to %s\n",
              setup.out_path("ablation_mechanisms.csv").c_str());
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
