// Ablation: the four overlap mechanisms toggled independently, per
// application (DESIGN.md §5.3). Quantifies how much of the overlapped
// execution's behaviour each mechanism is responsible for.
//
// Tracing is serial; the six replays per application (original + five
// variants) then run concurrently on the --jobs study.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) try {
  using namespace osim;
  bench::BenchSetup setup;
  setup.iterations = 5;
  if (!setup.parse("ablation: overlap mechanisms toggled independently",
                   argc, argv)) {
    return 0;
  }

  struct Variant {
    const char* name;
    bool advance, postpone, chunking, double_buffering;
  };
  const Variant variants[] = {
      {"all on (paper)", true, true, true, true},
      {"no advancing sends", false, true, true, true},
      {"no postponed receptions", true, false, true, true},
      {"no chunking", true, true, false, true},
      {"no double buffering", true, true, true, false},
  };
  const std::size_t num_variants = std::size(variants);
  const std::size_t per_app = 1 + num_variants;  // original + variants

  std::vector<std::string> header{"app", "original"};
  for (const Variant& v : variants) header.push_back(v.name);
  TextTable table(header);
  table.set_title("speedup vs the non-overlapped execution, per mechanism");
  CsvWriter csv(setup.out_path("ablation_mechanisms.csv"),
                {"app", "variant", "time_s", "speedup"});

  const std::vector<const apps::MiniApp*> selected = setup.selected_apps();
  std::vector<pipeline::ReplayContext> contexts;
  for (const apps::MiniApp* app : selected) {
    const tracer::TracedRun traced = bench::trace(setup, *app);
    const dimemas::Platform platform = setup.platform_for(*app);
    contexts.push_back(pipeline::make_context(
        traced.annotated, pipeline::TraceVariant::kOriginal,
        setup.overlap_options(), platform));
    for (const Variant& variant : variants) {
      overlap::OverlapOptions options = setup.overlap_options();
      options.advance_sends = variant.advance;
      options.postpone_receptions = variant.postpone;
      options.chunking = variant.chunking;
      options.double_buffering = variant.double_buffering;
      contexts.push_back(pipeline::make_context(
          traced.annotated, pipeline::TraceVariant::kOverlapMeasured, options,
          platform));
    }
  }

  pipeline::Study study(setup.study_options());
  const std::vector<double> times = study.map(
      contexts,
      [&study](const pipeline::ReplayContext& c) { return study.makespan(c); });

  for (std::size_t i = 0; i < selected.size(); ++i) {
    const double t_original = times[i * per_app];
    std::vector<std::string> row{selected[i]->name(),
                                 format_seconds(t_original)};
    csv.add_row({selected[i]->name(), "original", cell(t_original, 6), "1"});
    for (std::size_t j = 0; j < num_variants; ++j) {
      const double t = times[i * per_app + 1 + j];
      row.push_back(cell(t_original / t, 4));
      csv.add_row({selected[i]->name(), variants[j].name, cell(t, 6),
                   cell(t_original / t, 6)});
    }
    table.add_row(row);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("CSV written to %s\n",
              setup.out_path("ablation_mechanisms.csv").c_str());
  return setup.finish(study);
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
