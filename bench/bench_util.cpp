#include "bench_util.hpp"

#include "common/exit_codes.hpp"
#include "common/expect.hpp"
#include "common/signals.hpp"
#include "common/strings.hpp"
#include "pipeline/report.hpp"

namespace osim::bench {

bool BenchSetup::parse(const std::string& description, int argc,
                       const char* const* argv, Flags* extra) {
  study_name = description;
  Flags own(description);
  Flags& flags = extra != nullptr ? *extra : own;
  flags.add("ranks", &ranks, "simulated MPI ranks (paper: 64)");
  flags.add("iterations", &iterations, "application iterations");
  flags.add("chunks", &chunks, "chunks per message (paper: 4)");
  flags.add("scale", &scale, "problem size multiplier");
  flags.add("apps", &apps, "comma list of apps, or 'all'");
  flags.add("out-dir", &out_dir, "directory for CSV outputs");
  flags.add("paper-buses", &use_paper_buses,
            "use the paper's Table I bus counts");
  flags.add("progress", &progress,
            "MPI progress model: 'offload' (default), 'app', or "
            "'thread[,tax=F]'");
  run.register_flags(flags, "study-report",
                     "write a JSON study report (per-scenario makespans, "
                     "wall times, cache behaviour) to this path");
  run.register_supervision_flags(flags);
  if (!flags.parse(argc, argv)) return false;
  // Graceful shutdown is opt-in via the supervision flags: unsupervised
  // benches keep the stock Ctrl-C behaviour.
  if (run.supervision_requested()) install_graceful_shutdown();
  return true;
}

std::vector<const apps::MiniApp*> BenchSetup::selected_apps() const {
  if (apps == "all") return apps::registry();
  std::vector<const apps::MiniApp*> selected;
  for (const std::string& name : split(apps, ',')) {
    const auto* app = apps::find_app(trim(name));
    if (app == nullptr) {
      throw Error("unknown app '" + std::string(trim(name)) +
                  "' (try: sweep3d, pop, alya, specfem3d, nas_bt, nas_cg)");
    }
    selected.push_back(app);
  }
  return selected;
}

apps::AppConfig BenchSetup::app_config(const apps::MiniApp& app) const {
  apps::AppConfig config;
  config.ranks = static_cast<std::int32_t>(ranks);
  config.iterations = static_cast<std::int32_t>(iterations);
  config.scale = static_cast<std::int32_t>(scale);
  if (!app.supports_ranks(config.ranks)) {
    // Round up to the nearest supported count (e.g. even for nas_cg).
    while (!app.supports_ranks(config.ranks)) ++config.ranks;
  }
  return config;
}

overlap::OverlapOptions BenchSetup::overlap_options() const {
  overlap::OverlapOptions options;
  options.chunks = static_cast<int>(chunks);
  return options;
}

dimemas::ReplayOptions BenchSetup::replay_options() const {
  dimemas::ReplayOptions options;
  if (!progress.empty()) {
    options.progress = dimemas::parse_progress_spec(progress);
  }
  return options;
}

pipeline::StudyOptions BenchSetup::study_options() const {
  pipeline::StudyOptions options;
  options.jobs = static_cast<int>(run.jobs);
  options.record_scenarios = !run.report.empty();
  options.cache_dir = run.cache_dir;
  if (run.supervision_requested()) {
    options.scenario_timeout_s = run.scenario_timeout_s;
    options.study_deadline_s = run.study_deadline_s;
    options.memory_budget_bytes = run.memory_budget_bytes();
    options.journal = run.journal || run.resume;
    options.resume = run.resume;
    // The journal key: this bench plus everything that shapes which
    // scenarios the sweep evaluates. A rerun with different parameters is
    // a different study and must not inherit this journal.
    options.study_id = strprintf(
        "%s|ranks=%lld|iterations=%lld|chunks=%lld|scale=%lld|apps=%s|"
        "paper_buses=%d|progress=%s",
        study_name.c_str(), static_cast<long long>(ranks),
        static_cast<long long>(iterations), static_cast<long long>(chunks),
        static_cast<long long>(scale), apps.c_str(),
        use_paper_buses ? 1 : 0, progress.c_str());
    options.stop_flag = shutdown_flag();
  }
  return options;
}

int BenchSetup::finish(const pipeline::Study& study) const {
  if (!run.report.empty()) {
    const std::string json = run.canonical_report
                                 ? pipeline::study_report_canonical_json(study)
                                 : pipeline::study_report_json(study);
    pipeline::write_report(run.report, json);
    std::fprintf(stderr, "[bench] study report written to %s\n",
                 run.report.c_str());
  }
  PerfRecorder record = perf;  // keeps finish() const; the copy is cheap
  record.add("cache_hits", static_cast<double>(study.cache_hits()));
  record.add("cache_misses", static_cast<double>(study.cache_misses()));
  record.add("disk_hits", static_cast<double>(study.disk_hits()));
  record.write_if(run.perf_json);
  if (study.interrupted() || shutdown_requested()) {
    std::fprintf(stderr,
                 "[bench] sweep interrupted; partial results flushed\n");
    return kExitInterrupted;
  }
  return kExitOk;
}

int BenchSetup::finish() const {
  perf.write_if(run.perf_json);
  return shutdown_requested() ? kExitInterrupted : kExitOk;
}

dimemas::Platform BenchSetup::platform_for(const apps::MiniApp& app) const {
  return dimemas::Platform::marenostrum(
      static_cast<std::int32_t>(app_config(app).ranks), app.paper_buses());
}

std::string BenchSetup::out_path(const std::string& name) const {
  std::filesystem::create_directories(out_dir);
  return out_dir + "/" + name;
}

tracer::TracedRun trace(const BenchSetup& setup, const apps::MiniApp& app,
                        bool record_access_log) {
  tracer::TracerOptions options;
  options.record_access_log = record_access_log;
  std::fprintf(stderr, "[bench] tracing %s (%d ranks, %lld iterations)...\n",
               app.name().c_str(), setup.app_config(app).ranks,
               static_cast<long long>(setup.iterations));
  return apps::trace_app(app, setup.app_config(app), options);
}

std::vector<tracer::TracedRun> trace_all(
    const BenchSetup& setup,
    const std::vector<const apps::MiniApp*>& selected,
    pipeline::Study& study) {
  return study.map(selected, [&setup](const apps::MiniApp* app) {
    return trace(setup, *app);
  });
}

AppScenarios scenarios(const BenchSetup& setup, const apps::MiniApp& app,
                       const tracer::TracedRun& traced) {
  const dimemas::Platform platform = setup.platform_for(app);
  const overlap::OverlapOptions options = setup.overlap_options();
  const dimemas::ReplayOptions replay = setup.replay_options();
  return AppScenarios{
      pipeline::make_context(traced.annotated,
                             pipeline::TraceVariant::kOriginal, options,
                             platform, replay),
      pipeline::make_context(traced.annotated,
                             pipeline::TraceVariant::kOverlapMeasured, options,
                             platform, replay),
      pipeline::make_context(traced.annotated,
                             pipeline::TraceVariant::kOverlapIdeal, options,
                             platform, replay)};
}

}  // namespace osim::bench
