// Figure 6(a) reproduction: speedup of the overlapped execution over the
// non-overlapped execution, for the measured ("real") and ideal
// production/consumption patterns, on the Marenostrum-like test bed
// (250 MB/s, Table I bus counts, 4 chunks per message).
//
// Expected shape (paper): real patterns give small speedups with NAS-CG the
// clear winner; ideal patterns give decent speedups with Sweep3D the
// highest (wavefront pipelining).
//
// Tracing is serial; the three replays per application then run
// concurrently on the --jobs study.
#include <cstdio>
#include <vector>

#include "analysis/speedup.hpp"
#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) try {
  using namespace osim;
  bench::BenchSetup setup;
  if (!setup.parse("Figure 6(a): overlapped-execution speedup", argc, argv)) {
    return 0;
  }

  TextTable table({"app", "T original", "T overlap real", "T overlap ideal",
                   "speedup real", "speedup ideal"});
  table.set_title("Figure 6(a): speedup of overlapped execution");
  CsvWriter csv(setup.out_path("fig6a_speedup.csv"),
                {"app", "t_original_s", "t_real_s", "t_ideal_s",
                 "speedup_real", "speedup_ideal"});

  const std::vector<const apps::MiniApp*> selected = setup.selected_apps();
  std::vector<pipeline::ReplayContext> contexts;
  std::vector<std::string> labels;
  for (const apps::MiniApp* app : selected) {
    const tracer::TracedRun traced = bench::trace(setup, *app);
    const bench::AppScenarios sc = bench::scenarios(setup, *app, traced);
    contexts.push_back(sc.original);
    contexts.push_back(sc.real);
    contexts.push_back(sc.ideal);
    labels.push_back(app->name() + "/original");
    labels.push_back(app->name() + "/real");
    labels.push_back(app->name() + "/ideal");
  }

  pipeline::Study study(setup.study_options());
  const std::vector<double> times = study.map(
      contexts, [&](const pipeline::ReplayContext& c) {
        const auto i = static_cast<std::size_t>(&c - contexts.data());
        return study.makespan(c, labels[i]);
      });

  for (std::size_t i = 0; i < selected.size(); ++i) {
    analysis::OverlapOutcome outcome;
    outcome.t_original = times[3 * i];
    outcome.t_overlapped_real = times[3 * i + 1];
    outcome.t_overlapped_ideal = times[3 * i + 2];
    table.add_row({selected[i]->name(), format_seconds(outcome.t_original),
                   format_seconds(outcome.t_overlapped_real),
                   format_seconds(outcome.t_overlapped_ideal),
                   cell(outcome.speedup_real(), 4),
                   cell(outcome.speedup_ideal(), 4)});
    csv.add_row({selected[i]->name(), cell(outcome.t_original, 6),
                 cell(outcome.t_overlapped_real, 6),
                 cell(outcome.t_overlapped_ideal, 6),
                 cell(outcome.speedup_real(), 6),
                 cell(outcome.speedup_ideal(), 6)});
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("CSV written to %s\n",
              setup.out_path("fig6a_speedup.csv").c_str());
  return setup.finish(study);
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
