// Figure 4 reproduction: Paraver visualization of the non-overlapped and
// overlapped executions of NAS-CG (4 processes, 5 iterations) on the
// test-bed platform.
//
// The paper reads from this figure: (1) the overlapped execution achieves
// ~8% improvement, and (2) the improvement is "mostly attributed to
// advancing the MPI transfers ... visible as longer synchronization lines".
// We print both ASCII timelines, write real Paraver .prv/.pcf/.row bundles,
// and quantify the synchronization-line observation via the mean
// send-to-completion lead time.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/strings.hpp"
#include "paraver/paraver.hpp"

int main(int argc, char** argv) try {
  using namespace osim;
  bench::BenchSetup setup;
  setup.ranks = 4;       // the paper's Figure 4 setup
  setup.iterations = 5;
  if (!setup.parse("Figure 4: non-overlapped vs overlapped NAS-CG timelines",
                   argc, argv)) {
    return 0;
  }

  const apps::MiniApp* app = apps::find_app("nas_cg");
  const tracer::TracedRun traced = bench::trace(setup, *app);
  const dimemas::Platform platform = setup.platform_for(*app);
  dimemas::ReplayOptions options;
  options.record_timeline = true;
  options.record_comms = true;

  const std::vector<pipeline::ReplayContext> contexts = {
      pipeline::make_context(traced.annotated,
                             pipeline::TraceVariant::kOriginal,
                             setup.overlap_options(), platform, options),
      pipeline::make_context(traced.annotated,
                             pipeline::TraceVariant::kOverlapMeasured,
                             setup.overlap_options(), platform, options)};
  pipeline::Study study(setup.study_options());
  const std::vector<dimemas::SimResult> runs = study.map(
      contexts,
      [&study](const pipeline::ReplayContext& c) { return study.run(c); });
  const dimemas::SimResult& run_original = runs[0];
  const dimemas::SimResult& run_overlapped = runs[1];

  paraver::AsciiOptions ascii;
  ascii.width = 100;
  std::printf("%s\n",
              paraver::render_comparison(run_original, "non-overlapped NAS-CG",
                                         run_overlapped, "overlapped NAS-CG",
                                         ascii)
                  .c_str());

  std::printf("non-overlapped %s\noverlapped %s\n",
              paraver::render_profile(run_original).c_str(),
              paraver::render_profile(run_overlapped).c_str());

  const double improvement =
      1.0 - run_overlapped.makespan / run_original.makespan;
  std::printf("performance improvement: %.1f%% (paper: ~8%%)\n",
              improvement * 100.0);

  const auto comm_orig = paraver::summarize_comms(run_original);
  const auto comm_ovlp = paraver::summarize_comms(run_overlapped);
  std::printf(
      "synchronization lines: mean send-call -> recv-complete lead %s "
      "(non-overlapped, %zu msgs) vs %s (overlapped, %zu msgs)\n",
      format_seconds(comm_orig.mean_send_lead_s).c_str(), comm_orig.messages,
      format_seconds(comm_ovlp.mean_send_lead_s).c_str(),
      comm_ovlp.messages);

  paraver::write_prv_bundle(run_original,
                            setup.out_path("fig4_nas_cg_original"), "nas_cg");
  paraver::write_prv_bundle(run_overlapped,
                            setup.out_path("fig4_nas_cg_overlapped"),
                            "nas_cg");
  std::printf("Paraver bundles written to %s and %s (.prv/.pcf/.row)\n",
              setup.out_path("fig4_nas_cg_original").c_str(),
              setup.out_path("fig4_nas_cg_overlapped").c_str());
  return setup.finish(study);
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
