// Shared plumbing for the paper-reproduction bench binaries: flag handling,
// per-application tracing with the paper's default setup, and output
// locations for the CSV series each bench writes next to its table.
#pragma once

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "apps/app.hpp"
#include "common/flags.hpp"
#include "dimemas/platform.hpp"
#include "overlap/options.hpp"
#include "tracer/tracer.hpp"

namespace osim::bench {

struct BenchSetup {
  std::int64_t ranks = 16;       // paper: 64; 16 keeps the default run fast
  std::int64_t iterations = 8;
  std::int64_t chunks = 4;       // paper §IV: four chunks per message
  std::int64_t scale = 1;
  std::string apps = "all";      // comma list or "all"
  std::string out_dir = "bench_results";
  bool use_paper_buses = true;   // Table I values; false → calibrate

  /// Registers the shared flags and parses argv. Returns false on --help.
  bool parse(const std::string& description, int argc, const char* const* argv,
             Flags* extra = nullptr);

  /// The applications selected by --apps, in registry order.
  std::vector<const apps::MiniApp*> selected_apps() const;

  apps::AppConfig app_config(const apps::MiniApp& app) const;

  overlap::OverlapOptions overlap_options() const;

  /// Marenostrum-like platform with the app's Table I bus count.
  dimemas::Platform platform_for(const apps::MiniApp& app) const;

  /// Ensures out_dir exists and returns out_dir/name.
  std::string out_path(const std::string& name) const;
};

/// Traces `app` under the setup (prints a progress line to stderr).
tracer::TracedRun trace(const BenchSetup& setup, const apps::MiniApp& app,
                        bool record_access_log = false);

}  // namespace osim::bench
