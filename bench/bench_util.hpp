// Shared plumbing for the paper-reproduction bench binaries: flag handling,
// per-application tracing with the paper's default setup, the standard
// original/real/ideal replay contexts each figure needs, and output
// locations for the CSV series each bench writes next to its table.
//
// Benches never call dimemas::replay directly (scripts/check.sh enforces
// this): all replays go through a pipeline::Study built from
// BenchSetup::study_options(), so --jobs parallelizes every sweep and
// repeated probes hit the study's result cache.
#pragma once

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "apps/app.hpp"
#include "common/flags.hpp"
#include "common/run_options.hpp"
#include "dimemas/platform.hpp"
#include "overlap/options.hpp"
#include "pipeline/context.hpp"
#include "pipeline/scenario.hpp"
#include "pipeline/study.hpp"
#include "tracer/tracer.hpp"

namespace osim::bench {

struct BenchSetup {
  std::int64_t ranks = 16;       // paper: 64; 16 keeps the default run fast
  std::int64_t iterations = 8;
  std::int64_t chunks = 4;       // paper §IV: four chunks per message
  std::int64_t scale = 1;
  std::string apps = "all";      // comma list or "all"
  std::string out_dir = "bench_results";
  bool use_paper_buses = true;   // Table I values; false → calibrate
  /// MPI progress model spec ("" = offload; see dimemas/progress.hpp).
  /// Applied to every context scenarios() builds.
  std::string progress;
  /// The shared execution flags every replay-running binary takes: --jobs,
  /// --cache-dir, --perf-json, the report path (registered here as
  /// --study-report: per-scenario makespans, wall times, cache behaviour),
  /// and the supervision flags (--scenario-timeout, --study-deadline,
  /// --memory-budget, --journal, --resume, --canonical-report).
  RunOptions run;
  /// Wall-clock zero for --perf-json (constructed with the setup, so the
  /// record covers the whole bench including tracing).
  PerfRecorder perf{"bench"};
  /// The description passed to parse(); with the sweep-shaping flags it
  /// forms the study identity the journal is keyed by.
  std::string study_name;

  /// Registers the shared flags and parses argv. Returns false on --help.
  /// When any supervision flag was given, installs the graceful-shutdown
  /// signal handlers (common/signals.hpp) so SIGINT/SIGTERM drain the
  /// sweep instead of killing it.
  bool parse(const std::string& description, int argc, const char* const* argv,
             Flags* extra = nullptr);

  /// The applications selected by --apps, in registry order.
  std::vector<const apps::MiniApp*> selected_apps() const;

  apps::AppConfig app_config(const apps::MiniApp& app) const;

  overlap::OverlapOptions overlap_options() const;

  /// Replay options shared by every context a bench builds: the parsed
  /// --progress model (default-constructed — and therefore inert — when the
  /// flag was not given).
  dimemas::ReplayOptions replay_options() const;

  /// Study sized by --jobs; replay results are cached across a bench run.
  /// Scenario recording is on when --study-report was given. Supervision
  /// flags flow through: timeouts, the study deadline, the memory budget,
  /// journal/resume (keyed by study_name + the sweep-shaping flags) and
  /// the SIGINT/SIGTERM stop flag.
  pipeline::StudyOptions study_options() const;

  /// End-of-run bookkeeping: writes the study report if --study-report was
  /// given (canonical form under --canonical-report) and the perf record
  /// if --perf-json was given (wall/CPU time, peak RSS, replay cache
  /// counters). Call once, at the end of a bench, and return its value
  /// from main: kExitOk, or kExitInterrupted when the sweep was stopped by
  /// a signal or --study-deadline (the report still gets flushed first).
  int finish(const pipeline::Study& study) const;

  /// Same, for the benches that analyze traces without replaying (no
  /// study): writes the perf record only.
  int finish() const;

  /// Marenostrum-like platform with the app's Table I bus count.
  dimemas::Platform platform_for(const apps::MiniApp& app) const;

  /// Ensures out_dir exists and returns out_dir/name.
  std::string out_path(const std::string& name) const;
};

/// Traces `app` under the setup (prints a progress line to stderr).
tracer::TracedRun trace(const BenchSetup& setup, const apps::MiniApp& app,
                        bool record_access_log = false);

/// Traces every app in `selected`, in parallel on the study's pool.
/// Each trace is deterministic and shares no state with the others (the
/// mini-app registry is immutable and mpisim keeps all simulation state per
/// run), so the returned runs are identical to serial tracing.
std::vector<tracer::TracedRun> trace_all(
    const BenchSetup& setup,
    const std::vector<const apps::MiniApp*>& selected,
    pipeline::Study& study);

/// The three replay contexts the paper derives from every traced run:
/// non-overlapped, overlapped with the measured patterns, overlapped with
/// ideal patterns — all on the app's Table I platform.
struct AppScenarios {
  pipeline::ReplayContext original;
  pipeline::ReplayContext real;
  pipeline::ReplayContext ideal;
};

AppScenarios scenarios(const BenchSetup& setup, const apps::MiniApp& app,
                       const tracer::TracedRun& traced);

}  // namespace osim::bench
