#include "paraver/paraver.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "common/expect.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

namespace osim::paraver {

using dimemas::RankState;
using dimemas::SimResult;
using dimemas::StateInterval;

PrvState to_prv_state(RankState state) {
  switch (state) {
    case RankState::kCompute:
      return PrvState::kRunning;
    case RankState::kSendBlocked:
      return PrvState::kBlockedSend;
    case RankState::kRecvBlocked:
      return PrvState::kWaitingMessage;
    case RankState::kWaitBlocked:
      return PrvState::kWaitingRequests;
    case RankState::kCollective:
      return PrvState::kCollective;
  }
  OSIM_UNREACHABLE("bad RankState");
}

namespace {

std::int64_t to_ns(double seconds) {
  return static_cast<std::int64_t>(std::llround(seconds * 1e9));
}

}  // namespace

void write_prv_bundle(const SimResult& result, const std::string& base,
                      const std::string& app_name) {
  OSIM_CHECK_MSG(!result.timelines.empty(),
                 "write_prv_bundle requires recorded timelines");
  const std::size_t ranks = result.rank_stats.size();

  // --- .prv -------------------------------------------------------------
  std::ofstream prv(base + ".prv");
  if (!prv) throw Error("cannot open " + base + ".prv");
  // Header: #Paraver (date):ftime:nNodes(cpus):nAppl:task_list
  // One node per task, one thread per task, one application.
  prv << "#Paraver (01/01/26 at 00:00):" << to_ns(result.makespan) << ":"
      << ranks << "(";
  for (std::size_t i = 0; i < ranks; ++i) prv << (i ? "," : "") << 1;
  prv << "):1:" << ranks << "(";
  for (std::size_t i = 0; i < ranks; ++i) {
    prv << (i ? "," : "") << "1:" << (i + 1);
  }
  prv << ")\n";

  // State records: 1:cpu:appl:task:thread:begin:end:state
  for (std::size_t r = 0; r < result.timelines.size(); ++r) {
    for (const StateInterval& interval : result.timelines[r]) {
      prv << "1:" << (r + 1) << ":1:" << (r + 1) << ":1:"
          << to_ns(interval.begin) << ":" << to_ns(interval.end) << ":"
          << static_cast<int>(to_prv_state(interval.state)) << "\n";
    }
  }
  // Communication records:
  // 3:cpu_s:appl:task_s:thread:log_send:phys_send:
  //   cpu_r:appl:task_r:thread:log_recv:phys_recv:size:tag
  for (const auto& comm : result.comms) {
    prv << "3:" << (comm.src + 1) << ":1:" << (comm.src + 1) << ":1:"
        << to_ns(comm.send_call_time) << ":" << to_ns(comm.transfer_start)
        << ":" << (comm.dst + 1) << ":1:" << (comm.dst + 1) << ":1:"
        << to_ns(comm.recv_post_time) << ":" << to_ns(comm.arrival_time)
        << ":" << comm.bytes << ":" << comm.tag << "\n";
  }
  // Counter records (resource occupancy, when metrics were collected):
  // 2:cpu:appl:task:thread:time:type:value
  if (result.metrics != nullptr) {
    const auto& metrics = *result.metrics;
    const auto counter = [&prv](std::size_t task, std::int64_t time,
                                long type, std::int64_t value) {
      prv << "2:" << task << ":1:" << task << ":1:" << time << ":" << type
          << ":" << value << "\n";
    };
    // The bus pool is a machine-global resource; its counter rides on the
    // first task's timeline.
    for (const auto& sample : metrics.bus.samples) {
      counter(1, to_ns(sample.time_s), kPrvBusOccupancy, sample.level);
    }
    // Port counters only for nodes that host a rank (the platform may have
    // more nodes than the trace has ranks; spare nodes have no task row).
    const std::size_t nodes = std::min(metrics.node_in.size(), ranks);
    for (std::size_t n = 0; n < nodes; ++n) {
      for (const auto& sample : metrics.node_in[n].samples) {
        counter(n + 1, to_ns(sample.time_s), kPrvInPortOccupancy,
                sample.level);
      }
      for (const auto& sample : metrics.node_out[n].samples) {
        counter(n + 1, to_ns(sample.time_s), kPrvOutPortOccupancy,
                sample.level);
      }
    }
  }
  if (!prv) throw Error("error writing " + base + ".prv");

  // --- .pcf -------------------------------------------------------------
  std::ofstream pcf(base + ".pcf");
  if (!pcf) throw Error("cannot open " + base + ".pcf");
  pcf << "DEFAULT_OPTIONS\n\nLEVEL               THREAD\nUNITS"
         "               NANOSEC\n\n"
         "STATES\n"
         "0    Idle\n"
         "1    Running\n"
         "3    Waiting a message\n"
         "4    Blocked send\n"
         "5    Waiting requests\n"
         "9    Group Communication\n\n"
         "STATES_COLOR\n"
         "0    {117,195,255}\n"
         "1    {0,0,255}\n"
         "3    {255,0,0}\n"
         "4    {255,146,24}\n"
         "5    {255,0,174}\n"
         "9    {172,174,41}\n\n"
         "EVENT_TYPE\n"
         "0    "
      << kPrvBusOccupancy
      << "    Network bus occupancy (concurrent transfers)\n"
         "0    "
      << kPrvInPortOccupancy
      << "    Node input-port occupancy\n"
         "0    "
      << kPrvOutPortOccupancy << "    Node output-port occupancy\n";
  if (!pcf) throw Error("error writing " + base + ".pcf");

  // --- .row -------------------------------------------------------------
  std::ofstream row(base + ".row");
  if (!row) throw Error("cannot open " + base + ".row");
  row << "LEVEL THREAD SIZE " << ranks << "\n";
  for (std::size_t r = 0; r < ranks; ++r) {
    row << app_name << "." << (r + 1) << "\n";
  }
  if (!row) throw Error("error writing " + base + ".row");
}

namespace {

char state_char(RankState state) {
  switch (state) {
    case RankState::kCompute:
      return '#';
    case RankState::kSendBlocked:
      return 'S';
    case RankState::kRecvBlocked:
      return 'r';
    case RankState::kWaitBlocked:
      return 'w';
    case RankState::kCollective:
      return 'C';
  }
  return '?';
}

void render_rows(std::ostringstream& os, const SimResult& result,
                 double horizon, int width, bool show_stats) {
  const double bucket = horizon / width;
  for (std::size_t r = 0; r < result.timelines.size(); ++r) {
    os << strprintf("rank %2zu |", r);
    // Majority state per bucket.
    std::size_t cursor = 0;  // intervals are chronologically ordered
    const auto& intervals = result.timelines[r];
    for (int b = 0; b < width; ++b) {
      const double t0 = bucket * b;
      const double t1 = t0 + bucket;
      double occupancy[5] = {0, 0, 0, 0, 0};
      while (cursor < intervals.size() && intervals[cursor].end <= t0) {
        ++cursor;
      }
      for (std::size_t k = cursor;
           k < intervals.size() && intervals[k].begin < t1; ++k) {
        const double overlap = std::min(t1, intervals[k].end) -
                               std::max(t0, intervals[k].begin);
        if (overlap > 0) {
          occupancy[static_cast<int>(intervals[k].state)] += overlap;
        }
      }
      double best = 0.0;
      int best_state = -1;
      for (int s = 0; s < 5; ++s) {
        if (occupancy[s] > best) {
          best = occupancy[s];
          best_state = s;
        }
      }
      os << (best_state < 0 ? '.'
                            : state_char(static_cast<RankState>(best_state)));
    }
    os << "|";
    if (show_stats) {
      const auto& stats = result.rank_stats[r];
      const double total = stats.finish_time;
      if (total > 0) {
        os << strprintf(" %5.1f%% compute, %5.1f%% blocked",
                        100.0 * stats.compute_s / total,
                        100.0 * stats.blocked_s() / total);
      }
    }
    os << "\n";
  }
}

void render_axis(std::ostringstream& os, double horizon, int width) {
  OSIM_CHECK(width >= 20);
  os << "        +" << std::string(static_cast<std::size_t>(width), '-')
     << "+\n";
  os << "         0" << std::string(static_cast<std::size_t>(width) - 10, ' ')
     << format_seconds(horizon) << "\n";
}

}  // namespace

std::string render_ascii(const SimResult& result,
                         const AsciiOptions& options) {
  OSIM_CHECK_MSG(!result.timelines.empty(),
                 "render_ascii requires recorded timelines");
  const double horizon =
      options.horizon_s > 0 ? options.horizon_s : result.makespan;
  OSIM_CHECK(horizon > 0);
  std::ostringstream os;
  render_rows(os, result, horizon, options.width, options.show_stats);
  render_axis(os, horizon, options.width);
  if (options.show_legend) {
    os << "legend: # compute   r wait-recv   S blocked-send   w wait   "
          ". idle\n";
  }
  return os.str();
}

std::string render_comparison(const SimResult& a, const std::string& label_a,
                              const SimResult& b, const std::string& label_b,
                              const AsciiOptions& options) {
  const double horizon =
      options.horizon_s > 0 ? options.horizon_s
                            : std::max(a.makespan, b.makespan);
  std::ostringstream os;
  os << label_a << strprintf(" (total %s)\n",
                             format_seconds(a.makespan).c_str());
  render_rows(os, a, horizon, options.width, options.show_stats);
  os << "\n"
     << label_b
     << strprintf(" (total %s)\n", format_seconds(b.makespan).c_str());
  render_rows(os, b, horizon, options.width, options.show_stats);
  render_axis(os, horizon, options.width);
  if (options.show_legend) {
    os << "legend: # compute   r wait-recv   S blocked-send   w wait   "
          ". idle\n";
  }
  return os.str();
}

std::string render_profile(const SimResult& result) {
  OSIM_CHECK_MSG(!result.timelines.empty(),
                 "render_profile requires recorded timelines");
  TextTable table({"rank", "compute", "blocked send", "blocked recv",
                   "wait", "idle", "total"});
  table.set_title("state profile (% of each rank's runtime)");
  for (std::size_t r = 0; r < result.timelines.size(); ++r) {
    double per_state[5] = {0, 0, 0, 0, 0};
    for (const StateInterval& interval : result.timelines[r]) {
      per_state[static_cast<int>(interval.state)] +=
          interval.end - interval.begin;
    }
    const double total = result.rank_stats[r].finish_time;
    const double accounted = per_state[0] + per_state[1] + per_state[2] +
                             per_state[3] + per_state[4];
    const double idle = std::max(0.0, total - accounted);
    auto pct = [total](double x) {
      return total > 0 ? strprintf("%5.1f%%", 100.0 * x / total)
                       : std::string("-");
    };
    table.add_row(
        {std::to_string(r),
         pct(per_state[static_cast<int>(RankState::kCompute)]),
         pct(per_state[static_cast<int>(RankState::kSendBlocked)]),
         pct(per_state[static_cast<int>(RankState::kRecvBlocked)]),
         pct(per_state[static_cast<int>(RankState::kWaitBlocked)]),
         pct(idle), format_seconds(total)});
  }
  return table.render();
}

CommSummary summarize_comms(const SimResult& result) {
  CommSummary summary;
  if (result.comms.empty()) return summary;
  double flight = 0.0;
  double lead = 0.0;
  for (const auto& comm : result.comms) {
    flight += comm.arrival_time - comm.transfer_start;
    lead += comm.recv_complete_time - comm.send_call_time;
    summary.total_bytes += static_cast<double>(comm.bytes);
  }
  summary.messages = result.comms.size();
  summary.mean_flight_s = flight / static_cast<double>(summary.messages);
  summary.mean_send_lead_s = lead / static_cast<double>(summary.messages);
  return summary;
}

}  // namespace osim::paraver
