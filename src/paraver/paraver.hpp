// Paraver output and terminal visualization of replay results — the third
// stage of the paper's pipeline ("Paraver visualizes the obtained
// time-behaviors, allowing to study the effects of the
// communication-computation overlap").
//
// write_prv_bundle emits a Paraver trace (.prv), the state/colour
// configuration (.pcf) and object names (.row), loadable in the real
// Paraver tool. render_ascii draws the same state timeline as a terminal
// Gantt chart, and render_comparison stacks two runs on a common time axis
// (the paper's Figure 4 layout: non-overlapped above, overlapped below).
#pragma once

#include <string>

#include "dimemas/result.hpp"

namespace osim::paraver {

/// Paraver state codes used in .prv state records (documented in the .pcf).
enum class PrvState : int {
  kIdle = 0,
  kRunning = 1,
  kWaitingMessage = 3,
  kBlockedSend = 4,
  kWaitingRequests = 5,
  kCollective = 9,
};

PrvState to_prv_state(dimemas::RankState state);

/// Paraver event (counter) types for the occupancy timelines emitted when
/// the SimResult carries metrics (ReplayOptions::collect_metrics).
inline constexpr long kPrvBusOccupancy = 90000001;
inline constexpr long kPrvInPortOccupancy = 90000002;
inline constexpr long kPrvOutPortOccupancy = 90000003;

/// Writes `base`.prv, `base`.pcf and `base`.row. The SimResult must carry
/// timelines (ReplayOptions::record_timeline); communication records are
/// emitted when comms were recorded too, and resource-occupancy counter
/// records when metrics were collected. Times are nanoseconds.
void write_prv_bundle(const dimemas::SimResult& result,
                      const std::string& base,
                      const std::string& app_name);

struct AsciiOptions {
  int width = 100;        // columns for the time axis
  bool show_legend = true;
  bool show_stats = true;  // per-rank compute/blocked percentages
  /// Render this time span [0, horizon_s]; <= 0 → the result's makespan.
  double horizon_s = 0.0;
};

/// Terminal Gantt chart: one row per rank, one character per time bucket,
/// majority state per bucket. Requires timelines.
std::string render_ascii(const dimemas::SimResult& result,
                         const AsciiOptions& options = {});

/// The Figure 4 layout: two runs stacked on a common time axis.
std::string render_comparison(const dimemas::SimResult& a,
                              const std::string& label_a,
                              const dimemas::SimResult& b,
                              const std::string& label_b,
                              const AsciiOptions& options = {});

/// Paraver-style 2D profile: one row per rank, one column per state, cells
/// are the percentage of that rank's runtime spent in the state (the view
/// analysts use alongside the Figure 4 timelines). Requires timelines.
std::string render_profile(const dimemas::SimResult& result);

/// Summary of communication behaviour (how far sends were advanced, how
/// long messages spent in flight) — quantifies the "longer synchronization
/// lines" the paper reads off the Figure 4 timelines. Requires comms.
struct CommSummary {
  std::size_t messages = 0;
  double mean_flight_s = 0.0;      // arrival - transfer start
  double mean_send_lead_s = 0.0;   // recv_complete - send_call
  double total_bytes = 0.0;
};
CommSummary summarize_comms(const dimemas::SimResult& result);

}  // namespace osim::paraver
