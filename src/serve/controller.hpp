// The controller of the analysis service — the slurmctld side.
//
// One single-threaded poll() event loop owns every piece of state: client
// connections (Unix-domain socket, optionally a loopback TCP port), the
// job table, the per-client round-robin queues, and the worker pool. No
// replay runs in this process — workers do the heavy lifting across
// socketpairs — so the controller stays responsive at any queue depth and
// a worker death never takes the bookkeeping with it.
//
// What the loop guarantees:
//
//   dedupe      jobs are keyed by scenario fingerprint. Two clients
//               submitting the same (trace, platform, options) share one
//               replay; a scenario the store already holds a report for is
//               answered without any replay at all.
//   fairness    each client has its own FIFO; the scheduler round-robins
//               across clients, so one client's thousand submits cannot
//               starve another's one.
//   batching    when a worker goes idle it receives up to max_batch queued
//               jobs over the same trace file in one assignment — the
//               worker validates the trace once and sweeps.
//   admission   submits beyond max_queue queued jobs or max_inflight_bytes
//               of queued trace bytes are refused with kBusy (the client
//               exits with code 6 and may retry later) instead of growing
//               the queue without bound.
//   retries     a worker death (SIGKILL, OOM, crash) requeues its in-
//               flight jobs at the front; a job that kills max_retries+1
//               workers in a row is failed, not retried forever.
//   durability  with a store and --journal, finished reports persist as
//               store objects (kind "OSIMRPT1") and the service's journal
//               records the fingerprints — a restarted controller answers
//               those scenarios from disk without recomputing.
//   drain       SIGTERM/SIGINT stop intake, let running jobs finish,
//               cancel the queue, answer every waiter, and exit with code
//               5 (common/exit_codes.hpp); the shutdown RPC does the same
//               with exit code 0.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace osim::serve {

struct ControllerOptions {
  /// Unix-domain socket path (required; also the service's durable
  /// identity — the journal key hashes it).
  std::string socket_path;
  /// Additionally listen on 127.0.0.1:<tcp_port> (0 = Unix socket only).
  int tcp_port = 0;
  int workers = 2;
  /// fork+exec worker processes (needs serve_binary); false = in-process
  /// thread workers (unit tests, non-POSIX builds).
  bool fork_workers = true;
  std::string serve_binary;
  /// Scenario store root ('' = no disk tier: no report objects, no lint
  /// cache, no journal).
  std::string cache_dir;
  /// Journal completed scenarios so a controller restart resumes cleanly.
  bool journal = false;
  /// Admission control: refuse submits beyond this many queued jobs...
  std::int64_t max_queue = 64;
  /// ...or once the queued jobs' trace files sum past this many bytes.
  std::int64_t max_inflight_bytes = std::int64_t{256} << 20;
  /// Worker deaths tolerated per job before it is failed.
  int max_retries = 2;
  /// Max jobs handed to one worker in one assignment (same trace only).
  int max_batch = 8;
  /// Completed jobs kept in memory; older ones fall back to the store.
  std::int64_t report_cache_entries = 64;
};

class Controller {
 public:
  explicit Controller(ControllerOptions options);
  ~Controller();

  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;

  /// Binds, listens and runs the event loop until shutdown. Returns the
  /// process exit code: 0 after a shutdown RPC, kExitInterrupted (5) after
  /// a SIGTERM/SIGINT drain. Throws osim::Error when the service cannot
  /// start (socket in use, workers unspawnable, ...).
  int run();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace osim::serve
