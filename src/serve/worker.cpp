#include "serve/worker.hpp"

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/expect.hpp"
#include "common/strings.hpp"
#include "trace/binary_io.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define OSIM_HAVE_SERVE_POSIX 1
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace osim::serve {

#if OSIM_HAVE_SERVE_POSIX

namespace {

// write() the whole buffer, riding out EINTR, partial writes and (on the
// controller's non-blocking ends) momentarily full socket buffers.
bool write_all(int fd, std::string_view bytes) {
  std::size_t off = 0;
  int stalls = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Bounded: a peer that stops draining for 30s is treated as dead
        // rather than wedging the writer forever.
        if (++stalls > 30) return false;
        struct pollfd pfd = {};
        pfd.fd = fd;
        pfd.events = POLLOUT;
        ::poll(&pfd, 1, 1000 /* ms */);
        continue;
      }
      return false;
    }
    stalls = 0;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

int run_worker_loop(int fd, const std::string& cache_dir) {
  std::unique_ptr<store::ScenarioStore> store;
  if (!cache_dir.empty()) {
    try {
      store = std::make_unique<store::ScenarioStore>(cache_dir);
    } catch (const std::exception&) {
      // A broken cache demotes the worker to uncached, never kills it.
      store = nullptr;
    }
  }

  // One-entry trace cache: batched jobs arrive grouped by trace, so the
  // previous path is the only one worth keeping.
  std::string cached_path;
  std::shared_ptr<const trace::Trace> cached_trace;

  FrameReader reader;
  char buffer[64 * 1024];
  int exit_code = 0;
  for (;;) {
    std::optional<std::string> payload;
    while (!(payload = reader.next()).has_value()) {
      if (reader.error()) {
        exit_code = 1;
        goto out;
      }
      const ssize_t n = ::read(fd, buffer, sizeof(buffer));
      if (n < 0) {
        if (errno == EINTR) continue;
        exit_code = 1;
        goto out;
      }
      if (n == 0) goto out;  // controller closed: clean shutdown
      reader.feed(std::string_view(buffer, static_cast<std::size_t>(n)));
    }

    {
      const std::optional<JobRequest> request = decode_job_request(*payload);
      if (!request.has_value()) {
        exit_code = 1;
        goto out;
      }
      JobResult result;
      result.ticket = request->ticket;
      if (request->spec.trace_path != cached_path || !cached_trace) {
        cached_trace = nullptr;
        cached_path.clear();
        try {
          cached_trace = std::make_shared<const trace::Trace>(
              trace::read_any_file(request->spec.trace_path));
          cached_path = request->spec.trace_path;
        } catch (const std::exception& e) {
          result.ok = false;
          result.error = e.what();
        }
      }
      if (cached_trace) {
        const JobOutcome outcome =
            run_job_on_trace(request->spec, cached_trace, store.get());
        result.ok = outcome.ok;
        result.report_json = outcome.report_json;
        result.error = outcome.error;
      }
      std::string frame;
      append_frame(frame, encode_job_result(result));
      if (!write_all(fd, frame)) {
        exit_code = 1;
        goto out;
      }
    }
  }
out:
  ::close(fd);
  return exit_code;
}

WorkerPool::WorkerPool(WorkerOptions options) : options_(std::move(options)) {
  if (options_.count < 1) options_.count = 1;
}

WorkerPool::~WorkerPool() { shutdown(); }

void WorkerPool::start() {
  while (static_cast<int>(workers_.size()) < options_.count) {
    auto worker = std::make_unique<Worker>();
    spawn(*worker);
    workers_.push_back(std::move(worker));
  }
}

void WorkerPool::spawn(Worker& worker) {
  int sv[2] = {-1, -1};
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
    throw Error(strprintf("socketpair failed: %s", std::strerror(errno)));
  }
  if (options_.use_fork) {
    if (options_.serve_binary.empty()) {
      ::close(sv[0]);
      ::close(sv[1]);
      throw Error("fork-mode workers need the server binary path");
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(sv[0]);
      ::close(sv[1]);
      throw Error(strprintf("fork failed: %s", std::strerror(errno)));
    }
    if (pid == 0) {
      // Child: job socket on a fixed fd, then a fresh address space.
      ::close(sv[0]);
      if (::dup2(sv[1], 3) < 0) _exit(127);
      if (sv[1] != 3) ::close(sv[1]);
      const char* argv[8];
      int argc = 0;
      argv[argc++] = options_.serve_binary.c_str();
      argv[argc++] = "--worker";
      argv[argc++] = "--worker-fd";
      argv[argc++] = "3";
      if (!options_.cache_dir.empty()) {
        argv[argc++] = "--cache-dir";
        argv[argc++] = options_.cache_dir.c_str();
      }
      argv[argc] = nullptr;
      ::execv(options_.serve_binary.c_str(),
              const_cast<char* const*>(argv));
      _exit(127);
    }
    ::close(sv[1]);
    // The controller's end must not leak into later workers' exec images,
    // and its reads must never block the event loop.
    ::fcntl(sv[0], F_SETFD, FD_CLOEXEC);
    ::fcntl(sv[0], F_SETFL, O_NONBLOCK);
    worker.fd = sv[0];
    worker.pid = static_cast<int>(pid);
  } else {
    ::fcntl(sv[0], F_SETFD, FD_CLOEXEC);
    ::fcntl(sv[0], F_SETFL, O_NONBLOCK);
    const int child_fd = sv[1];
    const std::string cache_dir = options_.cache_dir;
    worker.thread = std::make_unique<std::thread>(
        [child_fd, cache_dir]() { run_worker_loop(child_fd, cache_dir); });
    worker.fd = sv[0];
    worker.pid = -1;
  }
  worker.reader = FrameReader();
  worker.inflight.clear();
  ++spawned_;
}

int WorkerPool::idle_worker() const {
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    if (workers_[i]->fd >= 0 && workers_[i]->inflight.empty()) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

int WorkerPool::busy_workers() const {
  int busy = 0;
  for (const auto& worker : workers_) {
    if (worker->fd >= 0 && !worker->inflight.empty()) ++busy;
  }
  return busy;
}

void WorkerPool::assign(int i, const std::vector<JobRequest>& batch) {
  Worker& worker = *workers_[static_cast<std::size_t>(i)];
  std::string frames;
  for (const JobRequest& request : batch) {
    append_frame(frames, encode_job_request(request));
    worker.inflight.push_back(request);
  }
  if (!write_all(worker.fd, frames)) {
    // A dead worker at assign time surfaces through on_readable/reap; the
    // jobs stay in `inflight` so take_inflight() requeues them.
  }
}

std::vector<JobResult> WorkerPool::on_readable(int i, bool& dead) {
  Worker& worker = *workers_[static_cast<std::size_t>(i)];
  dead = false;
  std::vector<JobResult> results;
  char buffer[64 * 1024];
  for (;;) {
    const ssize_t n = ::read(worker.fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      dead = true;
      break;
    }
    if (n == 0) {
      dead = true;
      break;
    }
    worker.reader.feed(std::string_view(buffer, static_cast<std::size_t>(n)));
    // A worker that filled one read() buffer exactly may have more bytes
    // pending, but frames drain below either way; looping again would
    // block on an empty socket, so stop after a short read.
    if (static_cast<std::size_t>(n) < sizeof(buffer)) break;
  }
  while (std::optional<std::string> payload = worker.reader.next()) {
    const std::optional<JobResult> result = decode_job_result(*payload);
    if (!result.has_value()) {
      dead = true;  // protocol violation: treat as a worker death
      break;
    }
    // Results arrive in assignment order; drop the matching in-flight
    // entry (front in the common case, scan to be safe).
    for (auto it = worker.inflight.begin(); it != worker.inflight.end();
         ++it) {
      if (it->ticket == result->ticket) {
        worker.inflight.erase(it);
        break;
      }
    }
    results.push_back(*result);
  }
  if (worker.reader.error()) dead = true;
  return results;
}

std::vector<JobRequest> WorkerPool::take_inflight(int i) {
  Worker& worker = *workers_[static_cast<std::size_t>(i)];
  std::vector<JobRequest> lost(worker.inflight.begin(),
                               worker.inflight.end());
  worker.inflight.clear();
  return lost;
}

int WorkerPool::worker_by_pid(int pid) const {
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    if (workers_[i]->pid == pid) return static_cast<int>(i);
  }
  return -1;
}

void WorkerPool::mark_dead(int i) {
  Worker& worker = *workers_[static_cast<std::size_t>(i)];
  if (worker.fd >= 0) {
    ::close(worker.fd);
    worker.fd = -1;
  }
  if (worker.thread) {
    worker.thread->join();
    worker.thread = nullptr;
  }
  worker.pid = -1;
  ++deaths_;
}

void WorkerPool::respawn(int i) {
  Worker& worker = *workers_[static_cast<std::size_t>(i)];
  if (worker.fd >= 0) return;  // still alive; nothing to do
  spawn(worker);
}

void WorkerPool::shutdown() {
  for (auto& worker : workers_) {
    if (worker->fd >= 0) {
      ::close(worker->fd);
      worker->fd = -1;
    }
    if (worker->thread) {
      worker->thread->join();
      worker->thread = nullptr;
    }
    worker->inflight.clear();
  }
}

#else  // !OSIM_HAVE_SERVE_POSIX

int run_worker_loop(int, const std::string&) { return 1; }

WorkerPool::WorkerPool(WorkerOptions options) : options_(std::move(options)) {}
WorkerPool::~WorkerPool() = default;
void WorkerPool::start() {
  throw Error("the analysis service requires a POSIX platform");
}
void WorkerPool::spawn(Worker&) {}
int WorkerPool::idle_worker() const { return -1; }
int WorkerPool::busy_workers() const { return 0; }
void WorkerPool::assign(int, const std::vector<JobRequest>&) {}
std::vector<JobResult> WorkerPool::on_readable(int, bool& dead) {
  dead = true;
  return {};
}
std::vector<JobRequest> WorkerPool::take_inflight(int) { return {}; }
int WorkerPool::worker_by_pid(int) const { return -1; }
void WorkerPool::mark_dead(int) {}
void WorkerPool::respawn(int) {}
void WorkerPool::shutdown() {}

#endif

}  // namespace osim::serve
