// Machine-readable store statistics, shared by `osim_cache stats --json`
// and the analysis service's server-stats RPC — one emitter, so the two
// surfaces cannot drift (the server-stats "store" block IS the osim_cache
// document body).
#pragma once

#include <string>
#include <vector>

#include "metrics/json.hpp"
#include "store/store.hpp"
#include "supervise/journal.hpp"

namespace osim::serve {

/// Writes the store-statistics object body — totals, process-local probe
/// counters, journal summary — into an already-open JSON object scope on
/// `writer` (no begin/end_object, so callers embed it in their own
/// documents). `journals` comes from supervise::list_journals(root).
void write_store_stats_fields(
    metrics::JsonWriter& writer, store::ScenarioStore& store,
    const std::vector<supervise::JournalInfo>& journals);

/// The standalone document `osim_cache stats --json` prints: schema
/// "osim.cache_stats" version 1 wrapping the shared fields.
std::string cache_stats_json(store::ScenarioStore& store,
                             const std::vector<supervise::JournalInfo>& journals);

}  // namespace osim::serve
