// Client side of the OSIMRPC1 protocol: a blocking connection that sends
// one request frame and reads reply frames. Used by the osim_client tool
// and by the concurrency tests (N threads, one connection each).
#pragma once

#include <string>

#include "serve/protocol.hpp"

namespace osim::serve {

class ClientConnection {
 public:
  /// Connects to the Unix socket at `path`, retrying for up to `retry_ms`
  /// milliseconds (a freshly exec'd server may not be listening yet), then
  /// exchanges handshakes. Throws osim::Error on failure or a version
  /// mismatch.
  static ClientConnection connect_unix(const std::string& path,
                                       int retry_ms = 0);
  /// Same over TCP to 127.0.0.1:<port>.
  static ClientConnection connect_tcp(int port, int retry_ms = 0);

  ClientConnection(ClientConnection&& other) noexcept;
  ClientConnection& operator=(ClientConnection&& other) noexcept;
  ClientConnection(const ClientConnection&) = delete;
  ClientConnection& operator=(const ClientConnection&) = delete;
  ~ClientConnection();

  /// Sends `message` and blocks until the server's reply frame (which, for
  /// a wait-mode poll, may be minutes away). Throws osim::Error on a
  /// protocol violation or a dropped connection.
  ServerMessage call(const ClientMessage& message);

 private:
  explicit ClientConnection(int fd);
  void handshake();
  ServerMessage read_reply();

  int fd_ = -1;
  FrameReader reader_;
};

}  // namespace osim::serve
