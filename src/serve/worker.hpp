// Worker processes of the analysis service — the slurmd side of the
// controller/worker split.
//
// A worker is a crash domain: it runs the replay pipeline (the part that
// can be OOM-killed, crash-injected, or wedged by a pathological trace)
// across a socketpair from the controller, which holds only bookkeeping.
// Two spawn modes share one loop:
//
//   fork+exec   the production mode. The controller re-execs its own
//               binary with --worker --worker-fd 3, so the child gets a
//               fresh address space (no inherited malloc/lock state, the
//               classic fork-without-exec hazard) and a SIGKILL kills
//               exactly one scenario attempt.
//   thread      run_worker_loop() on a std::thread inside the controller
//               process; no isolation, but no binary path either — the
//               mode unit tests and non-unix builds use.
//
// The wire between them is the same u32-length framing as the client RPC
// (serve/protocol.hpp) with the JobRequest/JobResult vocabulary from
// serve/job.hpp, decoded strictly on both ends.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/job.hpp"
#include "serve/protocol.hpp"

namespace osim::serve {

/// The worker side: reads job frames from `fd` until EOF or protocol
/// error, replays each, writes result frames back. Owns (and closes) `fd`.
/// Returns a process exit code (0 on clean EOF). Traces are cached across
/// consecutive jobs on the same path, so a batched sweep validates its
/// trace once.
int run_worker_loop(int fd, const std::string& cache_dir);

struct WorkerOptions {
  int count = 2;
  bool use_fork = true;       // false: in-process thread workers
  std::string serve_binary;   // this binary's path (fork mode)
  std::string cache_dir;      // store root forwarded to workers ('' = none)
};

/// The controller's view of its workers: spawn, assign, collect, reap,
/// respawn. Not thread-safe — the controller event loop is the only
/// caller.
class WorkerPool {
 public:
  explicit WorkerPool(WorkerOptions options);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Spawns workers up to the configured count. Throws osim::Error when a
  /// worker cannot be spawned.
  void start();

  int size() const { return static_cast<int>(workers_.size()); }
  /// Poll fd for worker `i`; -1 while the slot is dead.
  int fd(int i) const { return workers_[static_cast<std::size_t>(i)]->fd; }
  /// Child pid for worker `i`; -1 in thread mode or while dead.
  int pid(int i) const { return workers_[static_cast<std::size_t>(i)]->pid; }
  bool alive(int i) const {
    return workers_[static_cast<std::size_t>(i)]->fd >= 0;
  }
  std::size_t inflight(int i) const {
    return workers_[static_cast<std::size_t>(i)]->inflight.size();
  }
  /// An alive worker with no in-flight jobs, or -1.
  int idle_worker() const;
  int busy_workers() const;

  /// Sends `batch` to worker `i` (one frame per job, processed in order).
  void assign(int i, const std::vector<JobRequest>& batch);

  /// Drains readable bytes from worker `i`, returning every completed
  /// result. Sets `dead` when the stream ended (EOF, error, or a protocol
  /// violation) — the caller requeues take_inflight() and respawn()s.
  std::vector<JobResult> on_readable(int i, bool& dead);

  /// The jobs assigned to worker `i` that have not produced a result —
  /// what a death loses and the controller must requeue.
  std::vector<JobRequest> take_inflight(int i);

  /// Worker slot owning child `pid`, or -1 (fork mode; SIGCHLD path).
  int worker_by_pid(int pid) const;

  /// Marks worker `i` dead (closes the fd, joins a thread worker).
  void mark_dead(int i);

  /// Re-spawns a dead slot. Throws osim::Error on spawn failure.
  void respawn(int i);

  /// Closes every worker fd (workers see EOF and exit) and, in fork mode,
  /// leaves the children to be reaped by the caller's SIGCHLD path; in
  /// thread mode joins them.
  void shutdown();

  std::uint64_t spawned() const { return spawned_; }
  std::uint64_t deaths() const { return deaths_; }

 private:
  struct Worker {
    int fd = -1;
    int pid = -1;
    std::unique_ptr<std::thread> thread;
    FrameReader reader;
    std::deque<JobRequest> inflight;
  };

  void spawn(Worker& worker);

  WorkerOptions options_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::uint64_t spawned_ = 0;
  std::uint64_t deaths_ = 0;
};

}  // namespace osim::serve
