#include "serve/client.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "common/expect.hpp"
#include "common/strings.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define OSIM_HAVE_SERVE_POSIX 1
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace osim::serve {

#if OSIM_HAVE_SERVE_POSIX

namespace {

bool write_all(int fd, std::string_view bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Retries `try_connect` (returning a connected fd or -1) until it
/// succeeds or `retry_ms` elapses.
template <typename F>
int connect_with_retry(F try_connect, int retry_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(retry_ms);
  for (;;) {
    const int fd = try_connect();
    if (fd >= 0) return fd;
    if (std::chrono::steady_clock::now() >= deadline) return -1;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

}  // namespace

ClientConnection ClientConnection::connect_unix(const std::string& path,
                                                int retry_ms) {
  sockaddr_un addr = {};
  if (path.size() >= sizeof(addr.sun_path)) {
    throw Error("socket path too long: " + path);
  }
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  const int fd = connect_with_retry(
      [&addr]() {
        const int s = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (s < 0) return -1;
        if (::connect(s, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)) == 0) {
          return s;
        }
        ::close(s);
        return -1;
      },
      retry_ms);
  if (fd < 0) {
    throw Error(strprintf("cannot connect to %s: %s", path.c_str(),
                          std::strerror(errno)));
  }
  ClientConnection connection(fd);
  connection.handshake();
  return connection;
}

ClientConnection ClientConnection::connect_tcp(int port, int retry_ms) {
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  const int fd = connect_with_retry(
      [&addr]() {
        const int s = ::socket(AF_INET, SOCK_STREAM, 0);
        if (s < 0) return -1;
        if (::connect(s, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)) == 0) {
          return s;
        }
        ::close(s);
        return -1;
      },
      retry_ms);
  if (fd < 0) {
    throw Error(strprintf("cannot connect to 127.0.0.1:%d: %s", port,
                          std::strerror(errno)));
  }
  ClientConnection connection(fd);
  connection.handshake();
  return connection;
}

ClientConnection::ClientConnection(int fd) : fd_(fd) {}

ClientConnection::ClientConnection(ClientConnection&& other) noexcept
    : fd_(other.fd_), reader_(std::move(other.reader_)) {
  other.fd_ = -1;
}

ClientConnection& ClientConnection::operator=(
    ClientConnection&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    reader_ = std::move(other.reader_);
    other.fd_ = -1;
  }
  return *this;
}

ClientConnection::~ClientConnection() {
  if (fd_ >= 0) ::close(fd_);
}

void ClientConnection::handshake() {
  if (!write_all(fd_, handshake_bytes())) {
    throw Error("handshake write failed");
  }
  std::string peer;
  char buffer[kHandshakeBytes];
  while (peer.size() < kHandshakeBytes) {
    const ssize_t n =
        ::read(fd_, buffer, kHandshakeBytes - peer.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error(strprintf("handshake read failed: %s",
                            std::strerror(errno)));
    }
    if (n == 0) throw Error("server closed the connection mid-handshake");
    peer.append(buffer, static_cast<std::size_t>(n));
  }
  if (!check_handshake(peer)) {
    throw Error("server speaks a different protocol version");
  }
}

ServerMessage ClientConnection::call(const ClientMessage& message) {
  std::string frame;
  append_frame(frame, encode_client_message(message));
  if (!write_all(fd_, frame)) {
    throw Error(strprintf("request write failed: %s", std::strerror(errno)));
  }
  return read_reply();
}

ServerMessage ClientConnection::read_reply() {
  char buffer[64 * 1024];
  for (;;) {
    if (std::optional<std::string> payload = reader_.next()) {
      const std::optional<ServerMessage> reply =
          decode_server_message(*payload);
      if (!reply.has_value()) throw Error("malformed reply from server");
      return *reply;
    }
    if (reader_.error()) throw Error("oversized reply frame from server");
    const ssize_t n = ::read(fd_, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error(strprintf("reply read failed: %s", std::strerror(errno)));
    }
    if (n == 0) throw Error("server closed the connection");
    reader_.feed(std::string_view(buffer, static_cast<std::size_t>(n)));
  }
}

#else  // !OSIM_HAVE_SERVE_POSIX

ClientConnection ClientConnection::connect_unix(const std::string&, int) {
  throw Error("the analysis service requires a POSIX platform");
}
ClientConnection ClientConnection::connect_tcp(int, int) {
  throw Error("the analysis service requires a POSIX platform");
}
ClientConnection::ClientConnection(int fd) : fd_(fd) {}
ClientConnection::ClientConnection(ClientConnection&&) noexcept {}
ClientConnection& ClientConnection::operator=(ClientConnection&&) noexcept {
  return *this;
}
ClientConnection::~ClientConnection() = default;
void ClientConnection::handshake() {}
ServerMessage ClientConnection::call(const ClientMessage&) {
  throw Error("the analysis service requires a POSIX platform");
}
ServerMessage ClientConnection::read_reply() {
  throw Error("the analysis service requires a POSIX platform");
}

#endif

}  // namespace osim::serve
