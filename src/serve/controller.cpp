#include "serve/controller.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <deque>
#include <filesystem>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/exit_codes.hpp"
#include "common/expect.hpp"
#include "common/signals.hpp"
#include "common/strings.hpp"
#include "metrics/json.hpp"
#include "pipeline/fingerprint.hpp"
#include "serve/job.hpp"
#include "serve/protocol.hpp"
#include "serve/stats.hpp"
#include "serve/worker.hpp"
#include "store/store.hpp"
#include "supervise/journal.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define OSIM_HAVE_SERVE_POSIX 1
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace osim::serve {

#if OSIM_HAVE_SERVE_POSIX

namespace {

void set_nonblock_cloexec(int fd) {
  ::fcntl(fd, F_SETFD, FD_CLOEXEC);
  ::fcntl(fd, F_SETFL, O_NONBLOCK);
}

}  // namespace

struct Controller::Impl {
  explicit Impl(ControllerOptions opts) : options(std::move(opts)) {}

  // --- configuration & long-lived state ------------------------------------

  ControllerOptions options;
  std::unique_ptr<store::ScenarioStore> store;
  std::unique_ptr<supervise::StudyJournal> journal;
  std::unique_ptr<WorkerPool> pool;
  int unix_listen_fd = -1;
  int tcp_listen_fd = -1;
  bool draining = false;
  int exit_code = kExitOk;

  // --- clients --------------------------------------------------------------

  struct Client {
    int fd = -1;
    bool handshaken = false;
    std::string handshake;  // peer handshake bytes collected so far
    FrameReader reader;
    std::string outbox;
    std::size_t outbox_sent = 0;
    bool drop = false;  // protocol violation: close once the outbox drains
  };
  std::map<int, Client> clients;

  // --- jobs -----------------------------------------------------------------

  struct Job {
    ScenarioSpec spec;
    pipeline::Fingerprint ticket;
    std::uint64_t trace_bytes = 0;
    JobState state = JobState::kQueued;
    std::uint32_t attempts = 0;  // worker deaths survived
    std::string report_json;
    std::string error;
    std::set<int> owners;       // submitting clients still attached
    std::vector<int> waiters;   // stream-status clients awaiting terminal
  };
  std::unordered_map<pipeline::Fingerprint, Job, pipeline::FingerprintHash>
      jobs;
  /// Completed tickets in completion order (the in-memory report LRU).
  std::deque<pipeline::Fingerprint> done_order;

  // Scheduling: per-client FIFOs, round-robin across clients, and a
  // priority lane for jobs requeued after a worker death.
  std::map<int, std::deque<pipeline::Fingerprint>> queues;
  std::deque<int> rr;
  std::deque<pipeline::Fingerprint> retries;

  // Admission accounting (jobs in state kQueued).
  std::int64_t queued_jobs = 0;
  std::int64_t queued_bytes = 0;

  // Trace probe cache: fingerprinting a trace costs a full read, so the
  // result is cached per (path, mtime, size).
  struct ProbedTrace {
    std::int64_t mtime_ns = 0;
    std::uint64_t size = 0;
    TraceInfo info;
  };
  std::map<std::string, ProbedTrace> trace_cache;

  /// Scenario fingerprints recovered from the journal at startup: the
  /// restart-resume set.
  std::set<std::string> journal_completed;  // hex, set ordering is cheap

  // --- counters (server-stats) ---------------------------------------------

  std::uint64_t submits = 0;
  std::uint64_t dedupe_shared = 0;
  std::uint64_t dedupe_served_memory = 0;
  std::uint64_t dedupe_served_store = 0;
  std::uint64_t journal_hits = 0;
  std::uint64_t busy_rejects = 0;
  std::uint64_t bad_requests = 0;
  std::uint64_t replays_completed = 0;
  std::uint64_t jobs_failed = 0;
  std::uint64_t jobs_cancelled = 0;
  std::uint64_t clients_accepted = 0;

  // --- setup ----------------------------------------------------------------

  void open_store_and_journal() {
    if (options.cache_dir.empty()) return;
    store = std::make_unique<store::ScenarioStore>(options.cache_dir);
    if (!options.journal) return;
    // The service's journal identity is its socket path: the same service
    // restarted resumes its own record, two services on different sockets
    // keep separate ones. Deliberately never append_complete() — an
    // always-on service is never "finished", which keeps gc from evicting
    // the journal out from under the next restart.
    journal = std::make_unique<supervise::StudyJournal>(
        options.cache_dir,
        supervise::study_fingerprint("osim_serve:" + options.socket_path));
    for (const supervise::JournalEntry& entry : journal->recovered()) {
      if (entry.status == supervise::ScenarioStatus::kOk) {
        journal_completed.insert(pipeline::to_hex(entry.fingerprint));
      }
    }
  }

  void open_listeners() {
    if (options.socket_path.empty()) {
      throw UsageError("the analysis service requires --socket");
    }
    if (options.socket_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      throw UsageError("--socket path too long for a Unix socket");
    }
    unix_listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (unix_listen_fd < 0) {
      throw Error(strprintf("socket: %s", std::strerror(errno)));
    }
    // A stale socket file from a dead server would make bind fail; probe
    // by connecting — refusing means stale, answering means live.
    sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, options.socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::bind(unix_listen_fd, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 &&
        errno == EADDRINUSE) {
      const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
      const bool live =
          probe >= 0 && ::connect(probe, reinterpret_cast<sockaddr*>(&addr),
                                  sizeof(addr)) == 0;
      if (probe >= 0) ::close(probe);
      if (live) {
        ::close(unix_listen_fd);
        throw Error(strprintf("another server is live on %s",
                              options.socket_path.c_str()));
      }
      ::unlink(options.socket_path.c_str());
      if (::bind(unix_listen_fd, reinterpret_cast<sockaddr*>(&addr),
                 sizeof(addr)) != 0) {
        ::close(unix_listen_fd);
        throw Error(strprintf("bind %s: %s", options.socket_path.c_str(),
                              std::strerror(errno)));
      }
    }
    if (::listen(unix_listen_fd, 64) != 0) {
      throw Error(strprintf("listen: %s", std::strerror(errno)));
    }
    set_nonblock_cloexec(unix_listen_fd);

    if (options.tcp_port > 0) {
      tcp_listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (tcp_listen_fd < 0) {
        throw Error(strprintf("socket: %s", std::strerror(errno)));
      }
      const int one = 1;
      ::setsockopt(tcp_listen_fd, SOL_SOCKET, SO_REUSEADDR, &one,
                   sizeof(one));
      sockaddr_in tcp = {};
      tcp.sin_family = AF_INET;
      tcp.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      tcp.sin_port = htons(static_cast<std::uint16_t>(options.tcp_port));
      if (::bind(tcp_listen_fd, reinterpret_cast<sockaddr*>(&tcp),
                 sizeof(tcp)) != 0 ||
          ::listen(tcp_listen_fd, 64) != 0) {
        throw Error(strprintf("tcp port %d: %s", options.tcp_port,
                              std::strerror(errno)));
      }
      set_nonblock_cloexec(tcp_listen_fd);
    }
  }

  // --- client plumbing ------------------------------------------------------

  void accept_clients(int listen_fd) {
    for (;;) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) return;  // EAGAIN/EINTR: done for now
      set_nonblock_cloexec(fd);
      Client& client = clients[fd];
      client.fd = fd;
      client.outbox = handshake_bytes();
      ++clients_accepted;
    }
  }

  void send_to(Client& client, const ServerMessage& message) {
    append_frame(client.outbox, encode_server_message(message));
  }

  void send_to_fd(int fd, const ServerMessage& message) {
    const auto it = clients.find(fd);
    if (it != clients.end()) send_to(it->second, message);
  }

  void flush_client(Client& client) {
    while (client.outbox_sent < client.outbox.size()) {
      const ssize_t n =
          ::write(client.fd, client.outbox.data() + client.outbox_sent,
                  client.outbox.size() - client.outbox_sent);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        client.drop = true;  // broken pipe: disconnect path cleans up
        return;
      }
      client.outbox_sent += static_cast<std::size_t>(n);
    }
    if (client.outbox_sent == client.outbox.size()) {
      client.outbox.clear();
      client.outbox_sent = 0;
    }
  }

  void disconnect(int fd) {
    const auto it = clients.find(fd);
    if (it == clients.end()) return;
    ::close(fd);
    clients.erase(it);
    queues.erase(fd);
    rr.erase(std::remove(rr.begin(), rr.end(), fd), rr.end());
    // Detach the client everywhere; a queued job nobody owns any more is
    // work nobody wants — cancel it.
    for (auto& [ticket, job] : jobs) {
      job.waiters.erase(
          std::remove(job.waiters.begin(), job.waiters.end(), fd),
          job.waiters.end());
      if (job.owners.erase(fd) != 0 && job.owners.empty() &&
          job.state == JobState::kQueued) {
        cancel_job(job);
      }
    }
  }

  // --- job lifecycle --------------------------------------------------------

  void note_queued(Job& job) {
    ++queued_jobs;
    queued_bytes += static_cast<std::int64_t>(job.trace_bytes);
  }

  void note_unqueued(Job& job) {
    --queued_jobs;
    queued_bytes -= static_cast<std::int64_t>(job.trace_bytes);
  }

  void cancel_job(Job& job) {
    note_unqueued(job);
    job.state = JobState::kCancelled;
    ++jobs_cancelled;
    notify_waiters(job);
  }

  void notify_waiters(Job& job) {
    StatusReply status;
    status.ticket = job.ticket;
    status.state = job.state;
    status.attempts = job.attempts;
    status.error = job.error;
    for (const int fd : job.waiters) send_to_fd(fd, ServerMessage(status));
    job.waiters.clear();
  }

  /// Trims the in-memory job table to report_cache_entries completed
  /// entries; evicted scenarios re-enter through the store tier.
  void trim_done() {
    while (static_cast<std::int64_t>(done_order.size()) >
           options.report_cache_entries) {
      const pipeline::Fingerprint ticket = done_order.front();
      done_order.pop_front();
      const auto it = jobs.find(ticket);
      if (it != jobs.end() && it->second.state == JobState::kDone &&
          it->second.waiters.empty()) {
        jobs.erase(it);
      }
    }
  }

  void complete_job(const JobResult& result) {
    const auto it = jobs.find(result.ticket);
    if (it == jobs.end()) return;  // cancelled and evicted meanwhile
    Job& job = it->second;
    if (job.state != JobState::kRunning) return;
    if (result.ok) {
      job.state = JobState::kDone;
      job.report_json = result.report_json;
      ++replays_completed;
      if (store) {
        try {
          store->save_report(job.ticket, job.report_json);
        } catch (const std::exception&) {
          // Write-behind: the result is in memory; a full disk only costs
          // the next restart a recompute.
        }
      }
      if (journal) {
        supervise::JournalEntry entry;
        entry.fingerprint = job.ticket;
        entry.status = supervise::ScenarioStatus::kOk;
        journal->append(entry);
        journal_completed.insert(pipeline::to_hex(job.ticket));
      }
      done_order.push_back(job.ticket);
    } else {
      job.state = JobState::kFailed;
      job.error = result.error;
      ++jobs_failed;
    }
    notify_waiters(job);
    trim_done();
  }

  /// A worker died with these jobs in flight: requeue (front of the line)
  /// or fail each, depending on how many deaths it has already survived.
  void requeue_lost(const std::vector<JobRequest>& lost) {
    for (const JobRequest& request : lost) {
      const auto it = jobs.find(request.ticket);
      if (it == jobs.end()) continue;
      Job& job = it->second;
      if (job.state != JobState::kRunning) continue;
      ++job.attempts;
      if (static_cast<int>(job.attempts) > options.max_retries) {
        job.state = JobState::kFailed;
        job.error = strprintf(
            "worker died %u times running this scenario (retry limit %d)",
            job.attempts, options.max_retries);
        ++jobs_failed;
        notify_waiters(job);
      } else {
        job.state = JobState::kQueued;
        note_queued(job);
        retries.push_back(job.ticket);
      }
    }
  }

  // --- trace probing --------------------------------------------------------

  const TraceInfo* probe_cached(const std::string& path, std::string* error) {
    namespace fs = std::filesystem;
    std::error_code ec;
    const auto mtime = fs::last_write_time(path, ec);
    if (ec) {
      *error = strprintf("%s: %s", path.c_str(), ec.message().c_str());
      return nullptr;
    }
    const std::int64_t mtime_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            mtime.time_since_epoch())
            .count();
    const std::uint64_t size =
        static_cast<std::uint64_t>(fs::file_size(path, ec));
    const auto it = trace_cache.find(path);
    if (it != trace_cache.end() && it->second.mtime_ns == mtime_ns &&
        it->second.size == size) {
      return &it->second.info;
    }
    try {
      ProbedTrace probed;
      probed.mtime_ns = mtime_ns;
      probed.size = size;
      probed.info = probe_trace(path);
      return &(trace_cache[path] = probed).info;
    } catch (const std::exception& e) {
      *error = e.what();
      return nullptr;
    }
  }

  // --- message handling -----------------------------------------------------

  /// Admission check for `fresh` new jobs totalling `fresh_bytes` of trace
  /// input. Dedupe runs before this, so only genuinely new work counts.
  bool admit(std::int64_t fresh, std::int64_t fresh_bytes) {
    if (queued_jobs + fresh > options.max_queue) return false;
    if (queued_bytes + fresh_bytes > options.max_inflight_bytes) return false;
    return true;
  }

  /// One scenario through the dedupe tiers. Returns the ticket info, or
  /// nullopt when the scenario must be admitted as fresh work (the caller
  /// handles admission and enqueue).
  std::optional<TicketInfo> dedupe(const pipeline::Fingerprint& ticket,
                                   int client_fd) {
    const auto it = jobs.find(ticket);
    if (it != jobs.end()) {
      Job& job = it->second;
      switch (job.state) {
        case JobState::kDone:
          ++dedupe_served_memory;
          return TicketInfo{ticket, SubmitDisposition::kServed};
        case JobState::kQueued:
        case JobState::kRunning:
          job.owners.insert(client_fd);
          ++dedupe_shared;
          return TicketInfo{ticket, SubmitDisposition::kShared};
        case JobState::kFailed:
        case JobState::kCancelled:
          // Resubmitting a failed or cancelled scenario starts it over.
          jobs.erase(it);
          break;
      }
    }
    if (store) {
      if (std::optional<std::string> report = store->load_report(ticket)) {
        Job& job = jobs[ticket];
        job.ticket = ticket;
        job.state = JobState::kDone;
        job.report_json = std::move(*report);
        done_order.push_back(ticket);
        ++dedupe_served_store;
        if (journal_completed.count(pipeline::to_hex(ticket)) != 0) {
          ++journal_hits;
        }
        trim_done();
        return TicketInfo{ticket, SubmitDisposition::kServed};
      }
    }
    return std::nullopt;
  }

  void enqueue_fresh(const ScenarioSpec& spec,
                     const pipeline::Fingerprint& ticket,
                     std::uint64_t trace_bytes, int client_fd) {
    Job& job = jobs[ticket];
    job.spec = spec;
    job.ticket = ticket;
    job.trace_bytes = trace_bytes;
    job.state = JobState::kQueued;
    job.attempts = 0;
    job.error.clear();
    job.owners.insert(client_fd);
    note_queued(job);
    std::deque<pipeline::Fingerprint>& queue = queues[client_fd];
    if (queue.empty() &&
        std::find(rr.begin(), rr.end(), client_fd) == rr.end()) {
      rr.push_back(client_fd);
    }
    queue.push_back(ticket);
  }

  void handle_submit(Client& client, const std::vector<ScenarioSpec>& specs) {
    ++submits;
    if (draining) {
      send_to(client, ServerMessage(ErrorReply{
                          RpcErrorCode::kShuttingDown, "server is draining"}));
      return;
    }
    // Resolve every spec first (fingerprint + dedupe tier), so admission
    // is judged on the genuinely fresh remainder and a busy reject leaves
    // no half-submitted study behind.
    struct Resolved {
      ScenarioSpec spec;
      pipeline::Fingerprint ticket;
      std::uint64_t trace_bytes = 0;
      std::optional<TicketInfo> deduped;
    };
    std::vector<Resolved> resolved;
    resolved.reserve(specs.size());
    std::int64_t fresh = 0;
    std::int64_t fresh_bytes = 0;
    std::set<std::string> fresh_seen;  // dedupe within the submission itself
    for (const ScenarioSpec& spec : specs) {
      std::string error;
      const TraceInfo* info = probe_cached(spec.trace_path, &error);
      if (info == nullptr) {
        ++bad_requests;
        send_to(client,
                ServerMessage(ErrorReply{RpcErrorCode::kBadRequest, error}));
        return;
      }
      Resolved r;
      r.spec = spec;
      r.trace_bytes = info->file_bytes;
      try {
        r.ticket = spec_fingerprint(spec, *info);
      } catch (const std::exception& e) {
        ++bad_requests;
        send_to(client, ServerMessage(
                            ErrorReply{RpcErrorCode::kBadRequest, e.what()}));
        return;
      }
      r.deduped = dedupe(r.ticket, client.fd);
      if (!r.deduped.has_value() &&
          fresh_seen.insert(pipeline::to_hex(r.ticket)).second) {
        ++fresh;
        fresh_bytes += static_cast<std::int64_t>(r.trace_bytes);
      }
      resolved.push_back(std::move(r));
    }
    if (!admit(fresh, fresh_bytes)) {
      ++busy_rejects;
      send_to(client,
              ServerMessage(ErrorReply{
                  RpcErrorCode::kBusy,
                  strprintf("queue full (%lld queued job(s), %lld bytes)",
                            static_cast<long long>(queued_jobs),
                            static_cast<long long>(queued_bytes))}));
      return;
    }
    Submitted reply;
    for (Resolved& r : resolved) {
      if (r.deduped.has_value()) {
        reply.tickets.push_back(*r.deduped);
        continue;
      }
      // A study can repeat a scenario; the second occurrence dedupes
      // against the first's freshly-created job.
      if (const auto it = jobs.find(r.ticket);
          it != jobs.end() && it->second.state == JobState::kQueued) {
        it->second.owners.insert(client.fd);
        reply.tickets.push_back(
            TicketInfo{r.ticket, SubmitDisposition::kShared});
        continue;
      }
      enqueue_fresh(r.spec, r.ticket, r.trace_bytes, client.fd);
      reply.tickets.push_back(TicketInfo{r.ticket, SubmitDisposition::kFresh});
    }
    send_to(client, ServerMessage(reply));
  }

  void handle_poll(Client& client, const PollStatus& poll) {
    const auto it = jobs.find(poll.ticket);
    if (it == jobs.end()) {
      // The job table forgets completed work under memory pressure; the
      // store tier still answers for it.
      if (store) {
        if (std::optional<std::string> report =
                store->load_report(poll.ticket)) {
          Job& job = jobs[poll.ticket];
          job.ticket = poll.ticket;
          job.state = JobState::kDone;
          job.report_json = std::move(*report);
          done_order.push_back(poll.ticket);
          trim_done();
          send_to(client, ServerMessage(StatusReply{poll.ticket,
                                                    JobState::kDone, 0, ""}));
          return;
        }
      }
      send_to(client, ServerMessage(
                          ErrorReply{RpcErrorCode::kNotFound, "no such ticket"}));
      return;
    }
    Job& job = it->second;
    const bool terminal = job.state == JobState::kDone ||
                          job.state == JobState::kFailed ||
                          job.state == JobState::kCancelled;
    if (poll.wait && !terminal) {
      job.waiters.push_back(client.fd);
      return;  // answered when the job reaches a terminal state
    }
    send_to(client, ServerMessage(StatusReply{job.ticket, job.state,
                                              job.attempts, job.error}));
  }

  void handle_fetch(Client& client, const FetchReport& fetch) {
    const auto it = jobs.find(fetch.ticket);
    if (it != jobs.end()) {
      const Job& job = it->second;
      switch (job.state) {
        case JobState::kDone:
          send_to(client,
                  ServerMessage(ReportReply{job.ticket, job.report_json}));
          return;
        case JobState::kFailed:
          send_to(client, ServerMessage(
                              ErrorReply{RpcErrorCode::kFailed, job.error}));
          return;
        case JobState::kCancelled:
          send_to(client, ServerMessage(ErrorReply{RpcErrorCode::kNotFound,
                                                   "scenario was cancelled"}));
          return;
        case JobState::kQueued:
        case JobState::kRunning:
          send_to(client,
                  ServerMessage(ErrorReply{
                      RpcErrorCode::kBadRequest,
                      "scenario still pending; poll until it is done"}));
          return;
      }
    }
    if (store) {
      if (std::optional<std::string> report = store->load_report(fetch.ticket)) {
        ++dedupe_served_store;
        send_to(client,
                ServerMessage(ReportReply{fetch.ticket, std::move(*report)}));
        return;
      }
    }
    send_to(client, ServerMessage(
                        ErrorReply{RpcErrorCode::kNotFound, "no such ticket"}));
  }

  void handle_cancel(Client& client, const Cancel& cancel) {
    const auto it = jobs.find(cancel.ticket);
    if (it == jobs.end()) {
      send_to(client, ServerMessage(
                          ErrorReply{RpcErrorCode::kNotFound, "no such ticket"}));
      return;
    }
    Job& job = it->second;
    job.owners.erase(client.fd);
    job.waiters.erase(
        std::remove(job.waiters.begin(), job.waiters.end(), client.fd),
        job.waiters.end());
    // Only unclaimed queued work is actually cancelled: running scenarios
    // finish (the result is cacheable either way), and other owners keep
    // their claim.
    if (job.state == JobState::kQueued && job.owners.empty()) {
      cancel_job(job);
    }
    send_to(client, ServerMessage(OkReply{}));
  }

  void begin_drain(int code) {
    if (draining) return;
    draining = true;
    exit_code = code;
    if (unix_listen_fd >= 0) {
      ::close(unix_listen_fd);
      unix_listen_fd = -1;
    }
    if (tcp_listen_fd >= 0) {
      ::close(tcp_listen_fd);
      tcp_listen_fd = -1;
    }
    // Cancel everything still queued; running jobs are allowed to finish.
    for (auto& [ticket, job] : jobs) {
      if (job.state == JobState::kQueued) cancel_job(job);
    }
    queues.clear();
    rr.clear();
    retries.clear();
  }

  void handle_message(Client& client, const ClientMessage& message) {
    if (const auto* m = std::get_if<SubmitScenario>(&message)) {
      handle_submit(client, {m->spec});
    } else if (const auto* m = std::get_if<SubmitStudy>(&message)) {
      if (m->bandwidths.empty()) {
        ++bad_requests;
        send_to(client, ServerMessage(ErrorReply{RpcErrorCode::kBadRequest,
                                                 "empty bandwidth sweep"}));
        return;
      }
      std::vector<ScenarioSpec> specs;
      specs.reserve(m->bandwidths.size());
      for (const double bw : m->bandwidths) {
        ScenarioSpec spec = m->base;
        spec.bandwidth = bw;
        specs.push_back(std::move(spec));
      }
      handle_submit(client, specs);
    } else if (const auto* m = std::get_if<PollStatus>(&message)) {
      handle_poll(client, *m);
    } else if (const auto* m = std::get_if<FetchReport>(&message)) {
      handle_fetch(client, *m);
    } else if (const auto* m = std::get_if<Cancel>(&message)) {
      handle_cancel(client, *m);
    } else if (std::get_if<ServerStats>(&message) != nullptr) {
      send_to(client, ServerMessage(StatsReply{stats_json()}));
    } else {
      send_to(client, ServerMessage(OkReply{}));
      begin_drain(kExitOk);
    }
  }

  void read_client(Client& client) {
    char buffer[64 * 1024];
    for (;;) {
      const ssize_t n = ::read(client.fd, buffer, sizeof(buffer));
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        client.drop = true;
        return;
      }
      if (n == 0) {
        client.drop = true;
        return;
      }
      std::string_view bytes(buffer, static_cast<std::size_t>(n));
      if (!client.handshaken) {
        const std::size_t need = kHandshakeBytes - client.handshake.size();
        const std::size_t take = std::min(need, bytes.size());
        client.handshake.append(bytes.substr(0, take));
        bytes.remove_prefix(take);
        if (client.handshake.size() < kHandshakeBytes) continue;
        if (!check_handshake(client.handshake)) {
          client.drop = true;  // wrong magic or version: no common language
          return;
        }
        client.handshaken = true;
      }
      client.reader.feed(bytes);
      if (static_cast<std::size_t>(n) < sizeof(buffer)) break;
    }
    while (std::optional<std::string> payload = client.reader.next()) {
      const std::optional<ClientMessage> message =
          decode_client_message(*payload);
      if (!message.has_value()) {
        ++bad_requests;
        send_to(client, ServerMessage(ErrorReply{RpcErrorCode::kBadRequest,
                                                 "malformed message"}));
        client.drop = true;
        return;
      }
      handle_message(client, *message);
      if (client.drop) return;
    }
    if (client.reader.error()) {
      // Oversized frame header: drop without ever allocating the payload.
      ++bad_requests;
      client.drop = true;
    }
  }

  // --- scheduling -----------------------------------------------------------

  /// The next queued ticket in line: the retry lane first, then round-
  /// robin across client queues (skipping tickets whose job was taken by
  /// another queue or cancelled meanwhile).
  std::optional<pipeline::Fingerprint> pop_next() {
    while (!retries.empty()) {
      const pipeline::Fingerprint ticket = retries.front();
      retries.pop_front();
      const auto it = jobs.find(ticket);
      if (it != jobs.end() && it->second.state == JobState::kQueued) {
        return ticket;
      }
    }
    for (std::size_t rotations = rr.size(); rotations > 0; --rotations) {
      const int fd = rr.front();
      rr.pop_front();
      std::deque<pipeline::Fingerprint>& queue = queues[fd];
      std::optional<pipeline::Fingerprint> found;
      while (!queue.empty()) {
        const pipeline::Fingerprint ticket = queue.front();
        queue.pop_front();
        const auto it = jobs.find(ticket);
        if (it != jobs.end() && it->second.state == JobState::kQueued) {
          found = ticket;
          break;
        }
      }
      if (!queue.empty()) {
        rr.push_back(fd);  // still has work: back of the rotation
      } else if (!found.has_value()) {
        queues.erase(fd);
        continue;
      }
      if (found.has_value()) return found;
    }
    return std::nullopt;
  }

  /// Steals additional queued jobs over the same trace for one worker
  /// assignment (they validate the trace once between them).
  std::vector<JobRequest> batch_for(const pipeline::Fingerprint& first) {
    std::vector<JobRequest> batch;
    Job& lead = jobs.at(first);
    batch.push_back(JobRequest{first, lead.spec});
    if (options.max_batch <= 1) return batch;
    for (auto& [ticket, job] : jobs) {
      if (static_cast<int>(batch.size()) >= options.max_batch) break;
      if (job.state != JobState::kQueued || ticket == first) continue;
      if (job.spec.trace_path != lead.spec.trace_path) continue;
      batch.push_back(JobRequest{ticket, job.spec});
    }
    return batch;
  }

  void schedule() {
    if (draining) return;
    for (;;) {
      const int worker = pool->idle_worker();
      if (worker < 0) return;
      const std::optional<pipeline::Fingerprint> next = pop_next();
      if (!next.has_value()) return;
      const std::vector<JobRequest> batch = batch_for(*next);
      for (const JobRequest& request : batch) {
        Job& job = jobs.at(request.ticket);
        note_unqueued(job);
        job.state = JobState::kRunning;
      }
      pool->assign(worker, batch);
    }
  }

  // --- worker events --------------------------------------------------------

  void worker_died(int worker) {
    if (!pool->alive(worker)) return;
    // Results the worker wrote before dying are still buffered in the
    // socketpair; drain them first so finished work is completed, not
    // needlessly retried. Only the genuinely unfinished jobs requeue.
    bool dead = false;
    for (const JobResult& result : pool->on_readable(worker, dead)) {
      complete_job(result);
    }
    requeue_lost(pool->take_inflight(worker));
    pool->mark_dead(worker);
    if (!draining) {
      try {
        pool->respawn(worker);
      } catch (const std::exception&) {
        // Respawn can fail under fork pressure; the next death or drain
        // tick retries implicitly because the slot stays dead and idle
        // workers simply number one fewer.
      }
    }
  }

  void worker_readable(int worker) {
    bool dead = false;
    const std::vector<JobResult> results = pool->on_readable(worker, dead);
    for (const JobResult& result : results) complete_job(result);
    if (dead) worker_died(worker);
  }

  // --- stats ----------------------------------------------------------------

  std::string stats_json() {
    metrics::JsonWriter writer;
    writer.begin_object();
    writer.key("schema").value("osim.serve_stats");
    writer.key("version").value(std::int64_t{1});
    writer.key("socket").value(options.socket_path);
    writer.key("draining").value(draining);
    writer.key("clients").value(
        static_cast<std::uint64_t>(clients.size()));
    writer.key("clients_accepted").value(clients_accepted);

    std::uint64_t queued = 0;
    std::uint64_t running = 0;
    std::uint64_t done = 0;
    std::uint64_t failed = 0;
    std::uint64_t cancelled = 0;
    for (const auto& [ticket, job] : jobs) {
      switch (job.state) {
        case JobState::kQueued: ++queued; break;
        case JobState::kRunning: ++running; break;
        case JobState::kDone: ++done; break;
        case JobState::kFailed: ++failed; break;
        case JobState::kCancelled: ++cancelled; break;
      }
    }
    writer.key("jobs").begin_object();
    writer.key("queued").value(queued);
    writer.key("running").value(running);
    writer.key("done").value(done);
    writer.key("failed").value(failed);
    writer.key("cancelled").value(cancelled);
    writer.end_object();

    writer.key("counters").begin_object();
    writer.key("submits").value(submits);
    writer.key("dedupe_shared").value(dedupe_shared);
    writer.key("dedupe_served_memory").value(dedupe_served_memory);
    writer.key("dedupe_served_store").value(dedupe_served_store);
    writer.key("journal_hits").value(journal_hits);
    writer.key("busy_rejects").value(busy_rejects);
    writer.key("bad_requests").value(bad_requests);
    writer.key("replays_completed").value(replays_completed);
    writer.key("jobs_failed").value(jobs_failed);
    writer.key("jobs_cancelled").value(jobs_cancelled);
    writer.end_object();

    writer.key("admission").begin_object();
    writer.key("max_queue").value(
        static_cast<std::int64_t>(options.max_queue));
    writer.key("max_inflight_bytes")
        .value(static_cast<std::int64_t>(options.max_inflight_bytes));
    writer.key("queued_jobs").value(static_cast<std::int64_t>(queued_jobs));
    writer.key("queued_bytes").value(static_cast<std::int64_t>(queued_bytes));
    writer.end_object();

    writer.key("workers").begin_object();
    writer.key("count").value(static_cast<std::int64_t>(pool->size()));
    writer.key("busy").value(static_cast<std::int64_t>(pool->busy_workers()));
    writer.key("spawned").value(pool->spawned());
    writer.key("deaths").value(pool->deaths());
    writer.key("pids").begin_array();
    for (int i = 0; i < pool->size(); ++i) {
      writer.value(static_cast<std::int64_t>(pool->pid(i)));
    }
    writer.end_array();
    writer.end_object();

    writer.key("journal").begin_object();
    writer.key("enabled").value(journal != nullptr);
    writer.key("recovered")
        .value(static_cast<std::uint64_t>(journal_completed.size()));
    writer.end_object();

    if (store) {
      writer.key("store").begin_object();
      write_store_stats_fields(writer, *store,
                               supervise::list_journals(store->root()));
      writer.end_object();
    } else {
      writer.key("store").null();
    }
    writer.end_object();
    return writer.str();
  }

  // --- the loop -------------------------------------------------------------

  int run() {
    ignore_sigpipe();
    install_graceful_shutdown();
    install_child_reaper();
    open_store_and_journal();
    open_listeners();
    WorkerOptions worker_options;
    worker_options.count = options.workers;
    worker_options.use_fork = options.fork_workers;
    worker_options.serve_binary = options.serve_binary;
    worker_options.cache_dir = options.cache_dir;
    pool = std::make_unique<WorkerPool>(worker_options);
    pool->start();

    const int wake_fd = signal_wake_fd();
    std::vector<pollfd> pfds;
    std::vector<int> worker_slots;   // parallel to the worker pfds
    std::vector<int> client_fds;     // parallel to the client pfds
    for (;;) {
      pfds.clear();
      worker_slots.clear();
      client_fds.clear();
      pfds.push_back({wake_fd, POLLIN, 0});
      if (unix_listen_fd >= 0) pfds.push_back({unix_listen_fd, POLLIN, 0});
      if (tcp_listen_fd >= 0) pfds.push_back({tcp_listen_fd, POLLIN, 0});
      const std::size_t first_worker = pfds.size();
      for (int i = 0; i < pool->size(); ++i) {
        if (pool->fd(i) < 0) continue;
        pfds.push_back({pool->fd(i), POLLIN, 0});
        worker_slots.push_back(i);
      }
      const std::size_t first_client = pfds.size();
      for (auto& [fd, client] : clients) {
        short events = POLLIN;
        if (!client.outbox.empty()) events |= POLLOUT;
        pfds.push_back({fd, events, 0});
        client_fds.push_back(fd);
      }

      const int ready = ::poll(pfds.data(),
                               static_cast<nfds_t>(pfds.size()), 500);
      if (ready < 0 && errno != EINTR) {
        throw Error(strprintf("poll: %s", std::strerror(errno)));
      }

      // Signals first: a SIGCHLD's requeues should be visible before the
      // scheduling pass below.
      if (shutdown_requested() && !draining) begin_drain(kExitInterrupted);
      drain_signal_wake_fd();
      if (child_exit_pending()) {
        for (const ReapedChild& child : reap_children()) {
          const int worker = pool->worker_by_pid(child.pid);
          if (worker >= 0) worker_died(worker);
        }
      }

      if (ready > 0) {
        for (std::size_t i = first_worker; i < first_client; ++i) {
          if (pfds[i].revents == 0) continue;
          worker_readable(worker_slots[i - first_worker]);
        }
        for (std::size_t i = first_client; i < pfds.size(); ++i) {
          if (pfds[i].revents == 0) continue;
          const int fd = client_fds[i - first_client];
          const auto it = clients.find(fd);
          if (it == clients.end()) continue;
          if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0 &&
              !it->second.drop) {
            read_client(it->second);
          }
          if ((pfds[i].revents & POLLOUT) != 0 && !it->second.drop) {
            flush_client(it->second);
          }
        }
        for (std::size_t i = 1; i < first_worker; ++i) {
          if ((pfds[i].revents & POLLIN) != 0) accept_clients(pfds[i].fd);
        }
      }

      // Opportunistic flush (most replies fit the socket buffer without a
      // POLLOUT round trip), then close anything marked for drop.
      std::vector<int> to_drop;
      for (auto& [fd, client] : clients) {
        if (!client.outbox.empty()) flush_client(client);
        if (client.drop) to_drop.push_back(fd);
      }
      for (const int fd : to_drop) disconnect(fd);

      schedule();

      if (draining && pool->busy_workers() == 0) break;
    }

    pool->shutdown();
    if (child_exit_pending()) reap_children();
    for (auto& [fd, client] : clients) {
      if (!client.outbox.empty()) flush_client(client);
      ::close(fd);
    }
    clients.clear();
    if (!options.socket_path.empty()) ::unlink(options.socket_path.c_str());
    return exit_code;
  }
};

Controller::Controller(ControllerOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

Controller::~Controller() = default;

int Controller::run() { return impl_->run(); }

#else  // !OSIM_HAVE_SERVE_POSIX

struct Controller::Impl {};

Controller::Controller(ControllerOptions) {}
Controller::~Controller() = default;

int Controller::run() {
  throw Error("the analysis service requires a POSIX platform");
}

#endif

}  // namespace osim::serve
