#include "serve/job.hpp"

#include <filesystem>
#include <utility>

#include "common/crash_point.hpp"
#include "common/expect.hpp"
#include "dimemas/progress.hpp"
#include "faults/spec.hpp"
#include "lint/lint.hpp"
#include "pipeline/context.hpp"
#include "pipeline/lint_cache.hpp"
#include "pipeline/report.hpp"
#include "pipeline/scenario.hpp"
#include "trace/binary_io.hpp"

namespace osim::serve {

void encode_spec(std::string& out, const ScenarioSpec& spec) {
  wire::put_string(out, spec.trace_path);
  wire::put_f64(out, spec.bandwidth);
  wire::put_f64(out, spec.latency);
  wire::put_i64(out, spec.buses);
  wire::put_i64(out, spec.ports);
  wire::put_i64(out, spec.eager);
  wire::put_string(out, spec.collectives);
  wire::put_string(out, spec.fault_spec);
  wire::put_string(out, spec.progress_spec);
}

ScenarioSpec decode_spec(wire::Reader& reader) {
  ScenarioSpec spec;
  spec.trace_path = reader.get_string();
  spec.bandwidth = reader.get_f64();
  spec.latency = reader.get_f64();
  spec.buses = reader.get_i64();
  spec.ports = reader.get_i64();
  spec.eager = reader.get_i64();
  spec.collectives = reader.get_string();
  spec.fault_spec = reader.get_string();
  spec.progress_spec = reader.get_string();
  return spec;
}

dimemas::Platform platform_for(const ScenarioSpec& spec,
                               std::int32_t num_ranks) {
  // Field-for-field the platform osim_replay builds from its flags (the
  // no---platform-file branch); any drift here breaks the byte-identity
  // contract with the batch tool's report.
  dimemas::Platform platform;
  platform.num_nodes = num_ranks;
  platform.bandwidth_MBps = spec.bandwidth;
  platform.latency_us = spec.latency;
  platform.num_buses = static_cast<std::int32_t>(spec.buses);
  platform.input_ports = static_cast<std::int32_t>(spec.ports);
  platform.output_ports = static_cast<std::int32_t>(spec.ports);
  platform.eager_threshold_bytes = static_cast<std::uint64_t>(spec.eager);
  return platform;
}

dimemas::ReplayOptions options_for(const ScenarioSpec& spec) {
  dimemas::ReplayOptions options;
  options.collect_metrics = true;  // the service always builds the report
  if (spec.collectives == "binomial-tree") {
    options.collective_algo = dimemas::CollectiveAlgo::kBinomialTree;
  } else if (spec.collectives == "linear") {
    options.collective_algo = dimemas::CollectiveAlgo::kLinear;
  } else if (spec.collectives == "recursive-doubling") {
    options.collective_algo = dimemas::CollectiveAlgo::kRecursiveDoubling;
  } else {
    throw UsageError("unknown collective algorithm: " + spec.collectives);
  }
  if (!spec.fault_spec.empty()) {
    options.faults = faults::parse_spec(spec.fault_spec);
  }
  if (!spec.progress_spec.empty()) {
    options.progress = dimemas::parse_progress_spec(spec.progress_spec);
  }
  return options;
}

TraceInfo probe_trace(const std::string& path) {
  const trace::Trace t = trace::read_any_file(path);
  TraceInfo info;
  info.fingerprint = pipeline::fingerprint_of(t);
  info.num_ranks = t.num_ranks;
  std::error_code ec;
  const std::uintmax_t bytes = std::filesystem::file_size(path, ec);
  info.file_bytes = ec ? 0 : static_cast<std::uint64_t>(bytes);
  return info;
}

pipeline::Fingerprint spec_fingerprint(const ScenarioSpec& spec,
                                       const TraceInfo& trace) {
  return pipeline::combined_fingerprint(trace.fingerprint,
                                        platform_for(spec, trace.num_ranks),
                                        options_for(spec));
}

JobOutcome run_job_on_trace(const ScenarioSpec& spec,
                            const std::shared_ptr<const trace::Trace>& trace,
                            store::ScenarioStore* store) {
  JobOutcome outcome;
  try {
    maybe_crash("serve.worker.job");
    const dimemas::Platform platform = platform_for(spec, trace->num_ranks);
    const pipeline::ReplayContext context(trace, platform, options_for(spec));
    const dimemas::SimResult result = pipeline::run_scenario(context);
    // The replay itself is not storable (collect_metrics contexts carry
    // metrics the artifact format deliberately omits), but the lint block
    // is pure trace analysis and caches exactly as in osim_replay.
    lint::LintOptions lint_options;
    lint_options.eager_threshold_bytes = platform.eager_threshold_bytes;
    const lint::Report lint_report =
        pipeline::lint_with_cache(*trace, lint_options, store);
    outcome.report_json = pipeline::replay_report_json(
        result, platform, trace->app.empty() ? "app" : trace->app,
        &lint_report);
    outcome.ok = true;
  } catch (const std::exception& e) {
    outcome.error = e.what();
  }
  return outcome;
}

JobOutcome run_job(const ScenarioSpec& spec, store::ScenarioStore* store) {
  try {
    auto trace = std::make_shared<const trace::Trace>(
        trace::read_any_file(spec.trace_path));
    return run_job_on_trace(spec, trace, store);
  } catch (const std::exception& e) {
    JobOutcome outcome;
    outcome.error = e.what();
    return outcome;
  }
}

std::string encode_job_request(const JobRequest& request) {
  std::string out;
  wire::put_u64(out, request.ticket.hi);
  wire::put_u64(out, request.ticket.lo);
  encode_spec(out, request.spec);
  return out;
}

std::optional<JobRequest> decode_job_request(std::string_view payload) {
  wire::Reader reader(payload);
  JobRequest request;
  request.ticket.hi = reader.get_u64();
  request.ticket.lo = reader.get_u64();
  request.spec = decode_spec(reader);
  if (!reader.done()) return std::nullopt;
  return request;
}

std::string encode_job_result(const JobResult& result) {
  std::string out;
  wire::put_u64(out, result.ticket.hi);
  wire::put_u64(out, result.ticket.lo);
  wire::put_u8(out, result.ok ? 1 : 0);
  wire::put_string(out, result.report_json);
  wire::put_string(out, result.error);
  return out;
}

std::optional<JobResult> decode_job_result(std::string_view payload) {
  wire::Reader reader(payload);
  JobResult result;
  result.ticket.hi = reader.get_u64();
  result.ticket.lo = reader.get_u64();
  const std::uint8_t ok = reader.get_u8();
  result.report_json = reader.get_string();
  result.error = reader.get_string();
  if (!reader.done() || ok > 1) return std::nullopt;
  result.ok = ok == 1;
  return result;
}

}  // namespace osim::serve
