#include "serve/stats.hpp"

#include "pipeline/fingerprint.hpp"

namespace osim::serve {

void write_store_stats_fields(
    metrics::JsonWriter& writer, store::ScenarioStore& store,
    const std::vector<supervise::JournalInfo>& journals) {
  const store::StoreStats stats = store.stats();
  writer.key("root").value(store.root());
  writer.key("objects").value(stats.objects);
  writer.key("bytes").value(stats.bytes);
  writer.key("recorded_hits").value(stats.total_hits);
  writer.key("lru_clock").value(stats.clock);
  writer.key("index_rebuilt").value(stats.index_rebuilt);
  // Process-local probe counters: this process's tier hit rates, not the
  // index's lifetime totals.
  writer.key("session_hits").value(store.hits());
  writer.key("session_misses").value(store.misses());
  writer.key("session_rejects").value(store.rejects());

  std::size_t complete = 0;
  std::size_t invalid = 0;
  for (const supervise::JournalInfo& j : journals) {
    if (!j.valid) {
      ++invalid;
    } else if (j.complete) {
      ++complete;
    }
  }
  writer.key("journals").begin_object();
  writer.key("total").value(static_cast<std::uint64_t>(journals.size()));
  writer.key("complete").value(static_cast<std::uint64_t>(complete));
  writer.key("in_progress")
      .value(static_cast<std::uint64_t>(journals.size() - complete - invalid));
  writer.key("unreadable").value(static_cast<std::uint64_t>(invalid));
  writer.key("studies").begin_array();
  for (const supervise::JournalInfo& j : journals) {
    writer.begin_object();
    writer.key("study").value(j.valid ? pipeline::to_hex(j.study) : "");
    writer.key("path").value(j.path);
    writer.key("entries").value(static_cast<std::uint64_t>(j.entries));
    writer.key("ok").value(static_cast<std::uint64_t>(j.ok));
    writer.key("bytes").value(j.bytes);
    writer.key("state").value(!j.valid      ? "unreadable"
                              : j.complete  ? "complete"
                                            : "in-progress");
    writer.end_object();
  }
  writer.end_array();
  writer.end_object();
}

std::string cache_stats_json(
    store::ScenarioStore& store,
    const std::vector<supervise::JournalInfo>& journals) {
  metrics::JsonWriter writer;
  writer.begin_object();
  writer.key("schema").value("osim.cache_stats");
  writer.key("version").value(std::int64_t{1});
  write_store_stats_fields(writer, store, journals);
  writer.end_object();
  return writer.str();
}

}  // namespace osim::serve
