// OSIMRPC1 — the versioned binary RPC protocol of the analysis service.
//
// Connection layout (both Unix-domain and TCP):
//
//   handshake   each side sends magic "OSIMRPC1" (8 bytes) + u32 protocol
//               version before any frame; a peer with the wrong magic or
//               version is disconnected, never half-understood.
//   frames      u32 LE payload length, then the payload: u8 message type +
//               the message body (serve/wire.hpp primitives). The length
//               is capped at kMaxFrameBytes and the cap is enforced on the
//               header alone — a forged length rejects the connection
//               before any allocation happens.
//
// Decoding is strict and total, like every other format in this repo
// (store objects, journals, binary traces): decode_client_message() /
// decode_server_message() return nullopt on anything malformed — unknown
// type, short body, trailing bytes, oversized string — and never throw on
// content. The framing fuzzer in tests/serve_test.cpp holds them to that.
//
// The scenario ticket is the scenario fingerprint itself
// (pipeline::Fingerprint, spelled as 32 hex digits at the CLI): clients of
// the service and users of the batch tools name scenarios the same way,
// and two clients submitting the same work hold the same ticket — dedupe
// is an addressing property, not a server table.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <variant>

#include "pipeline/fingerprint.hpp"
#include "serve/job.hpp"

namespace osim::serve {

inline constexpr std::string_view kHandshakeMagic = "OSIMRPC1";
inline constexpr std::uint32_t kProtocolVersion = 1;
/// Hard cap on one frame's payload. Large enough for any run report the
/// pipeline emits (reports are tens of KB), small enough that a malicious
/// length field cannot balloon the server.
inline constexpr std::uint32_t kMaxFrameBytes = 16u << 20;

/// Handshake bytes each side sends on connect (magic + u32 version).
std::string handshake_bytes();
/// Validates a peer's 12 handshake bytes.
bool check_handshake(std::string_view bytes);
inline constexpr std::size_t kHandshakeBytes = 12;

// --- message types ----------------------------------------------------------

enum class MsgType : std::uint8_t {
  // client -> server
  kSubmitScenario = 1,
  kSubmitStudy = 2,
  kPollStatus = 3,
  kFetchReport = 4,
  kCancel = 5,
  kServerStats = 6,
  kShutdown = 7,
  // server -> client
  kSubmitted = 64,
  kStatus = 65,
  kReport = 66,
  kStats = 67,
  kOk = 68,
  kError = 69,
};

enum class RpcErrorCode : std::uint8_t {
  kBadRequest = 1,    // malformed spec, unreadable trace, unknown flag value
  kBusy = 2,          // admission control refused the submit; retry later
  kNotFound = 3,      // no such ticket
  kFailed = 4,        // the scenario replayed and failed (message says why)
  kShuttingDown = 5,  // server is draining; request was not accepted
};

const char* rpc_error_code_name(RpcErrorCode code);

/// Lifecycle of a submitted scenario, as reported by poll-status.
enum class JobState : std::uint8_t {
  kQueued = 0,
  kRunning = 1,
  kDone = 2,
  kFailed = 3,
  kCancelled = 4,
};

const char* job_state_name(JobState state);

/// How a submit was satisfied, per ticket (the dedupe telemetry clients
/// see — and what the concurrent-client test asserts on).
enum class SubmitDisposition : std::uint8_t {
  kFresh = 0,     // new job, will replay
  kShared = 1,    // joined an in-flight job with the same fingerprint
  kServed = 2,    // answered from a cached report, no replay
};

const char* submit_disposition_name(SubmitDisposition disposition);

// --- client -> server messages ----------------------------------------------

struct SubmitScenario {
  ScenarioSpec spec;
  friend bool operator==(const SubmitScenario&,
                         const SubmitScenario&) = default;
};

/// A bandwidth sweep over one trace — the batched form the controller
/// hands to a single worker as one Study-shaped unit of work.
struct SubmitStudy {
  ScenarioSpec base;
  std::vector<double> bandwidths;
  friend bool operator==(const SubmitStudy&, const SubmitStudy&) = default;
};

struct PollStatus {
  pipeline::Fingerprint ticket;
  /// true = stream-status: the server answers when the job reaches a
  /// terminal state instead of immediately.
  bool wait = false;
  friend bool operator==(const PollStatus&, const PollStatus&) = default;
};

struct FetchReport {
  pipeline::Fingerprint ticket;
  friend bool operator==(const FetchReport&, const FetchReport&) = default;
};

struct Cancel {
  pipeline::Fingerprint ticket;
  friend bool operator==(const Cancel&, const Cancel&) = default;
};

struct ServerStats {
  friend bool operator==(const ServerStats&, const ServerStats&) = default;
};

struct Shutdown {
  friend bool operator==(const Shutdown&, const Shutdown&) = default;
};

using ClientMessage = std::variant<SubmitScenario, SubmitStudy, PollStatus,
                                   FetchReport, Cancel, ServerStats, Shutdown>;

// --- server -> client messages ----------------------------------------------

struct TicketInfo {
  pipeline::Fingerprint ticket;
  SubmitDisposition disposition = SubmitDisposition::kFresh;
  friend bool operator==(const TicketInfo&, const TicketInfo&) = default;
};

struct Submitted {
  std::vector<TicketInfo> tickets;  // one per scenario, submit order
  friend bool operator==(const Submitted&, const Submitted&) = default;
};

struct StatusReply {
  pipeline::Fingerprint ticket;
  JobState state = JobState::kQueued;
  std::uint32_t attempts = 0;  // worker deaths survived so far
  std::string error;           // non-empty for kFailed
  friend bool operator==(const StatusReply&, const StatusReply&) = default;
};

struct ReportReply {
  pipeline::Fingerprint ticket;
  std::string report_json;
  friend bool operator==(const ReportReply&, const ReportReply&) = default;
};

struct StatsReply {
  std::string stats_json;
  friend bool operator==(const StatsReply&, const StatsReply&) = default;
};

struct OkReply {
  friend bool operator==(const OkReply&, const OkReply&) = default;
};

struct ErrorReply {
  RpcErrorCode code = RpcErrorCode::kBadRequest;
  std::string message;
  friend bool operator==(const ErrorReply&, const ErrorReply&) = default;
};

using ServerMessage = std::variant<Submitted, StatusReply, ReportReply,
                                   StatsReply, OkReply, ErrorReply>;

// --- frame (en|de)coding ----------------------------------------------------

/// Payload bytes (type tag + body) for one message; framed by the caller.
std::string encode_client_message(const ClientMessage& message);
std::string encode_server_message(const ServerMessage& message);

/// Strict total decode of one frame payload; nullopt on anything
/// malformed. Never throws on content.
std::optional<ClientMessage> decode_client_message(std::string_view payload);
std::optional<ServerMessage> decode_server_message(std::string_view payload);

/// Appends the u32 length header + payload to `out`.
void append_frame(std::string& out, std::string_view payload);

/// Incremental frame parser over a byte stream. feed() bytes as they
/// arrive, then drain next() until nullopt. A declared length above
/// kMaxFrameBytes poisons the reader (error() == true) without allocating
/// — the connection must be dropped.
class FrameReader {
 public:
  void feed(std::string_view bytes);
  /// The next complete frame payload, or nullopt when more bytes are
  /// needed (or the stream is poisoned).
  std::optional<std::string> next();
  bool error() const { return error_; }
  /// Bytes buffered but not yet returned (for backpressure accounting).
  std::size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::string buffer_;
  std::size_t consumed_ = 0;
  bool error_ = false;
};

}  // namespace osim::serve
