// The unit of work the analysis service schedules: one scenario spec,
// lowered to exactly the replay that `osim_replay --report` would run.
//
// Byte-identity is the contract here. A report fetched from the service
// must be bit-for-bit the document the batch tool writes for the same
// trace and flags (scripts/serve_test.sh cmp's the two), so ScenarioSpec
// carries the same fields as osim_replay's flag surface with the same
// defaults, and run_job() follows the same path: read_any_file →
// ReplayContext (validates once) → run_scenario → lint_with_cache →
// replay_report_json. Anything the controller computes (fingerprints,
// admission sizes) derives from the same spec, so the ticket a client
// holds is the fingerprint the batch tools print.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "dimemas/platform.hpp"
#include "dimemas/replay.hpp"
#include "pipeline/fingerprint.hpp"
#include "serve/wire.hpp"
#include "store/store.hpp"
#include "trace/trace.hpp"

namespace osim::serve {

/// One scenario, by value: the trace file plus the platform/option flags
/// of osim_replay, defaults matching that tool's flag defaults exactly.
struct ScenarioSpec {
  std::string trace_path;
  double bandwidth = 250.0;                   // --bandwidth, MB/s
  double latency = 4.0;                       // --latency, us
  std::int64_t buses = 0;                     // --buses (0 = unlimited)
  std::int64_t ports = 1;                     // --ports
  std::int64_t eager = 16 * 1024;             // --eager, bytes
  std::string collectives = "binomial-tree";  // --collectives
  std::string fault_spec;                     // --faults ('' = none)
  std::string progress_spec;                  // --progress ('' = offload)

  friend bool operator==(const ScenarioSpec&, const ScenarioSpec&) = default;
};

/// Wire body of a spec (serve/wire.hpp primitives); shared by the client
/// RPC messages and the controller->worker job frames.
void encode_spec(std::string& out, const ScenarioSpec& spec);
/// Strict decode via a wire::Reader the caller owns (so specs can embed in
/// larger messages); leaves the reader poisoned on malformed input.
ScenarioSpec decode_spec(wire::Reader& reader);

/// The platform `spec` describes for a trace of `num_ranks` ranks —
/// field-for-field what osim_replay builds from the same flags.
dimemas::Platform platform_for(const ScenarioSpec& spec,
                               std::int32_t num_ranks);

/// The replay options `spec` describes, with collect_metrics on (the
/// service always produces the full report). Throws osim::UsageError on an
/// unknown collectives/faults/progress spelling — callers map that to
/// kBadRequest before any replay happens.
dimemas::ReplayOptions options_for(const ScenarioSpec& spec);

/// What the controller needs to know about a trace file to fingerprint,
/// batch and admission-check jobs against it without re-reading the file
/// per request.
struct TraceInfo {
  pipeline::Fingerprint fingerprint;  // content fingerprint of the trace
  std::int32_t num_ranks = 0;
  std::uint64_t file_bytes = 0;  // on-disk size (admission accounting)
};

/// Reads and fingerprints `path` (either trace format). Throws osim::Error
/// when the file is unreadable or malformed.
TraceInfo probe_trace(const std::string& path);

/// The scenario fingerprint of `spec` against a trace already probed:
/// combined_fingerprint(trace, platform, options) — bit-identical to the
/// fingerprint a ReplayContext built from the same inputs carries, so
/// service tickets address the same store objects as batch runs.
pipeline::Fingerprint spec_fingerprint(const ScenarioSpec& spec,
                                       const TraceInfo& trace);

/// Outcome of one job, as the worker reports it.
struct JobOutcome {
  bool ok = false;
  std::string report_json;  // when ok
  std::string error;        // when !ok
};

/// Runs one scenario to its JSON run report, the osim_replay --report way.
/// `store`, when non-null, serves/fills the lint cache and receives the
/// replay artifact (write-behind, best effort). Never throws: failures
/// come back as JobOutcome::error. Crash point "serve.worker.job" fires at
/// entry (worker-death injection for the retry tests).
JobOutcome run_job(const ScenarioSpec& spec, store::ScenarioStore* store);

/// Same, against a caller-cached validated trace (the batching path: a
/// worker handed N scenarios over one trace validates it once).
JobOutcome run_job_on_trace(const ScenarioSpec& spec,
                            const std::shared_ptr<const trace::Trace>& trace,
                            store::ScenarioStore* store);

// --- controller <-> worker frames -------------------------------------------
//
// The worker socket speaks the same u32-length framing as the client
// protocol but its own two-message vocabulary; both ends are inside this
// process tree, yet decoding stays strict — a worker is a crash domain,
// not a trust domain.

struct JobRequest {
  pipeline::Fingerprint ticket;
  ScenarioSpec spec;
  friend bool operator==(const JobRequest&, const JobRequest&) = default;
};

struct JobResult {
  pipeline::Fingerprint ticket;
  bool ok = false;
  std::string report_json;
  std::string error;
  friend bool operator==(const JobResult&, const JobResult&) = default;
};

std::string encode_job_request(const JobRequest& request);
std::optional<JobRequest> decode_job_request(std::string_view payload);
std::string encode_job_result(const JobResult& result);
std::optional<JobResult> decode_job_result(std::string_view payload);

}  // namespace osim::serve
