#include "serve/protocol.hpp"

#include <cstring>

#include "serve/wire.hpp"

namespace osim::serve {

std::string handshake_bytes() {
  std::string out;
  out.append(kHandshakeMagic);
  wire::put_u32(out, kProtocolVersion);
  return out;
}

bool check_handshake(std::string_view bytes) {
  if (bytes.size() != kHandshakeBytes) return false;
  if (bytes.substr(0, kHandshakeMagic.size()) != kHandshakeMagic) return false;
  wire::Reader reader(bytes.substr(kHandshakeMagic.size()));
  return reader.get_u32() == kProtocolVersion && reader.done();
}

const char* rpc_error_code_name(RpcErrorCode code) {
  switch (code) {
    case RpcErrorCode::kBadRequest:
      return "bad-request";
    case RpcErrorCode::kBusy:
      return "busy";
    case RpcErrorCode::kNotFound:
      return "not-found";
    case RpcErrorCode::kFailed:
      return "failed";
    case RpcErrorCode::kShuttingDown:
      return "shutting-down";
  }
  return "unknown";
}

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

const char* submit_disposition_name(SubmitDisposition disposition) {
  switch (disposition) {
    case SubmitDisposition::kFresh:
      return "fresh";
    case SubmitDisposition::kShared:
      return "shared";
    case SubmitDisposition::kServed:
      return "served";
  }
  return "unknown";
}

namespace {

void put_fingerprint(std::string& out, const pipeline::Fingerprint& fp) {
  wire::put_u64(out, fp.hi);
  wire::put_u64(out, fp.lo);
}

pipeline::Fingerprint get_fingerprint(wire::Reader& reader) {
  pipeline::Fingerprint fp;
  fp.hi = reader.get_u64();
  fp.lo = reader.get_u64();
  return fp;
}

}  // namespace

std::string encode_client_message(const ClientMessage& message) {
  std::string out;
  if (const auto* m = std::get_if<SubmitScenario>(&message)) {
    wire::put_u8(out, static_cast<std::uint8_t>(MsgType::kSubmitScenario));
    encode_spec(out, m->spec);
  } else if (const auto* m = std::get_if<SubmitStudy>(&message)) {
    wire::put_u8(out, static_cast<std::uint8_t>(MsgType::kSubmitStudy));
    encode_spec(out, m->base);
    wire::put_u32(out, static_cast<std::uint32_t>(m->bandwidths.size()));
    for (const double bw : m->bandwidths) wire::put_f64(out, bw);
  } else if (const auto* m = std::get_if<PollStatus>(&message)) {
    wire::put_u8(out, static_cast<std::uint8_t>(MsgType::kPollStatus));
    put_fingerprint(out, m->ticket);
    wire::put_u8(out, m->wait ? 1 : 0);
  } else if (const auto* m = std::get_if<FetchReport>(&message)) {
    wire::put_u8(out, static_cast<std::uint8_t>(MsgType::kFetchReport));
    put_fingerprint(out, m->ticket);
  } else if (const auto* m = std::get_if<Cancel>(&message)) {
    wire::put_u8(out, static_cast<std::uint8_t>(MsgType::kCancel));
    put_fingerprint(out, m->ticket);
  } else if (std::get_if<ServerStats>(&message) != nullptr) {
    wire::put_u8(out, static_cast<std::uint8_t>(MsgType::kServerStats));
  } else {
    wire::put_u8(out, static_cast<std::uint8_t>(MsgType::kShutdown));
  }
  return out;
}

std::optional<ClientMessage> decode_client_message(std::string_view payload) {
  wire::Reader reader(payload);
  switch (static_cast<MsgType>(reader.get_u8())) {
    case MsgType::kSubmitScenario: {
      SubmitScenario m;
      m.spec = decode_spec(reader);
      if (!reader.done()) return std::nullopt;
      return ClientMessage(m);
    }
    case MsgType::kSubmitStudy: {
      SubmitStudy m;
      m.base = decode_spec(reader);
      const std::uint32_t count = reader.get_u32();
      // Each bandwidth is 8 bytes; bound the loop by what is actually
      // present so a forged count cannot drive a giant reserve.
      if (!reader.ok() || count > reader.remaining() / 8) return std::nullopt;
      m.bandwidths.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        m.bandwidths.push_back(reader.get_f64());
      }
      if (!reader.done()) return std::nullopt;
      return ClientMessage(m);
    }
    case MsgType::kPollStatus: {
      PollStatus m;
      m.ticket = get_fingerprint(reader);
      const std::uint8_t wait = reader.get_u8();
      if (!reader.done() || wait > 1) return std::nullopt;
      m.wait = wait == 1;
      return ClientMessage(m);
    }
    case MsgType::kFetchReport: {
      FetchReport m;
      m.ticket = get_fingerprint(reader);
      if (!reader.done()) return std::nullopt;
      return ClientMessage(m);
    }
    case MsgType::kCancel: {
      Cancel m;
      m.ticket = get_fingerprint(reader);
      if (!reader.done()) return std::nullopt;
      return ClientMessage(m);
    }
    case MsgType::kServerStats: {
      if (!reader.done()) return std::nullopt;
      return ClientMessage(ServerStats{});
    }
    case MsgType::kShutdown: {
      if (!reader.done()) return std::nullopt;
      return ClientMessage(Shutdown{});
    }
    default:
      return std::nullopt;
  }
}

std::string encode_server_message(const ServerMessage& message) {
  std::string out;
  if (const auto* m = std::get_if<Submitted>(&message)) {
    wire::put_u8(out, static_cast<std::uint8_t>(MsgType::kSubmitted));
    wire::put_u32(out, static_cast<std::uint32_t>(m->tickets.size()));
    for (const TicketInfo& t : m->tickets) {
      put_fingerprint(out, t.ticket);
      wire::put_u8(out, static_cast<std::uint8_t>(t.disposition));
    }
  } else if (const auto* m = std::get_if<StatusReply>(&message)) {
    wire::put_u8(out, static_cast<std::uint8_t>(MsgType::kStatus));
    put_fingerprint(out, m->ticket);
    wire::put_u8(out, static_cast<std::uint8_t>(m->state));
    wire::put_u32(out, m->attempts);
    wire::put_string(out, m->error);
  } else if (const auto* m = std::get_if<ReportReply>(&message)) {
    wire::put_u8(out, static_cast<std::uint8_t>(MsgType::kReport));
    put_fingerprint(out, m->ticket);
    wire::put_string(out, m->report_json);
  } else if (const auto* m = std::get_if<StatsReply>(&message)) {
    wire::put_u8(out, static_cast<std::uint8_t>(MsgType::kStats));
    wire::put_string(out, m->stats_json);
  } else if (std::get_if<OkReply>(&message) != nullptr) {
    wire::put_u8(out, static_cast<std::uint8_t>(MsgType::kOk));
  } else {
    const auto& m = std::get<ErrorReply>(message);
    wire::put_u8(out, static_cast<std::uint8_t>(MsgType::kError));
    wire::put_u8(out, static_cast<std::uint8_t>(m.code));
    wire::put_string(out, m.message);
  }
  return out;
}

std::optional<ServerMessage> decode_server_message(std::string_view payload) {
  wire::Reader reader(payload);
  switch (static_cast<MsgType>(reader.get_u8())) {
    case MsgType::kSubmitted: {
      Submitted m;
      const std::uint32_t count = reader.get_u32();
      // 17 bytes per ticket (fingerprint + disposition).
      if (!reader.ok() || count > reader.remaining() / 17) return std::nullopt;
      m.tickets.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        TicketInfo t;
        t.ticket = get_fingerprint(reader);
        const std::uint8_t d = reader.get_u8();
        if (d > static_cast<std::uint8_t>(SubmitDisposition::kServed)) {
          return std::nullopt;
        }
        t.disposition = static_cast<SubmitDisposition>(d);
        m.tickets.push_back(t);
      }
      if (!reader.done()) return std::nullopt;
      return ServerMessage(m);
    }
    case MsgType::kStatus: {
      StatusReply m;
      m.ticket = get_fingerprint(reader);
      const std::uint8_t state = reader.get_u8();
      m.attempts = reader.get_u32();
      m.error = reader.get_string();
      if (!reader.done() ||
          state > static_cast<std::uint8_t>(JobState::kCancelled)) {
        return std::nullopt;
      }
      m.state = static_cast<JobState>(state);
      return ServerMessage(m);
    }
    case MsgType::kReport: {
      ReportReply m;
      m.ticket = get_fingerprint(reader);
      m.report_json = reader.get_string();
      if (!reader.done()) return std::nullopt;
      return ServerMessage(m);
    }
    case MsgType::kStats: {
      StatsReply m;
      m.stats_json = reader.get_string();
      if (!reader.done()) return std::nullopt;
      return ServerMessage(m);
    }
    case MsgType::kOk: {
      if (!reader.done()) return std::nullopt;
      return ServerMessage(OkReply{});
    }
    case MsgType::kError: {
      ErrorReply m;
      const std::uint8_t code = reader.get_u8();
      m.message = reader.get_string();
      if (!reader.done() || code < 1 ||
          code > static_cast<std::uint8_t>(RpcErrorCode::kShuttingDown)) {
        return std::nullopt;
      }
      m.code = static_cast<RpcErrorCode>(code);
      return ServerMessage(m);
    }
    default:
      return std::nullopt;
  }
}

void append_frame(std::string& out, std::string_view payload) {
  wire::put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.append(payload.data(), payload.size());
}

void FrameReader::feed(std::string_view bytes) {
  if (error_) return;
  // Compact lazily: drop consumed bytes once they dominate the buffer so
  // a long-lived connection does not grow without bound.
  if (consumed_ > 4096 && consumed_ > buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(bytes.data(), bytes.size());
}

std::optional<std::string> FrameReader::next() {
  if (error_) return std::nullopt;
  const std::size_t available = buffer_.size() - consumed_;
  if (available < 4) return std::nullopt;
  wire::Reader header(
      std::string_view(buffer_.data() + consumed_, available));
  const std::uint32_t length = header.get_u32();
  if (length > kMaxFrameBytes) {
    // Poison before any payload allocation: the declared length is the
    // attack surface, and it is judged from the 4 header bytes alone.
    error_ = true;
    return std::nullopt;
  }
  if (available < 4 + static_cast<std::size_t>(length)) return std::nullopt;
  std::string payload = buffer_.substr(consumed_ + 4, length);
  consumed_ += 4 + static_cast<std::size_t>(length);
  return payload;
}

}  // namespace osim::serve
