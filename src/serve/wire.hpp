// Bounds-checked little-endian (de)serialization for the RPC layer.
//
// The store's object format (store/format.cpp) keeps equivalent helpers
// private because objects are decoded whole, off disk, by one reader. RPC
// payloads are different: they arrive from an untrusted peer, in pieces,
// and every message type decodes through the same primitives — so the
// primitives live here, public to src/serve, and are total by
// construction. A Reader never throws and never reads out of bounds: the
// first underrun or oversized string latches ok() == false, every
// subsequent get returns a zero value, and decoders check ok() && done()
// once at the end instead of guarding every field. This is what the
// framing fuzzer (tests/serve_test.cpp) leans on: any bit flip or
// truncation must land in "reject", never in UB.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace osim::serve::wire {

inline void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

inline void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

inline void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

inline void put_i64(std::string& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

inline void put_f64(std::string& out, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

/// u32 byte length + raw bytes.
inline void put_string(std::string& out, std::string_view s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s.data(), s.size());
}

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool ok() const { return ok_; }
  /// Every byte consumed and no error: the strict-decode success predicate.
  bool done() const { return ok_ && pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

  std::uint8_t get_u8() {
    if (!take(1)) return 0;
    return static_cast<std::uint8_t>(data_[pos_ - 1]);
  }

  std::uint32_t get_u32() {
    if (!take(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(data_[pos_ - 4 + i]))
           << (8 * i);
    }
    return v;
  }

  std::uint64_t get_u64() {
    if (!take(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(data_[pos_ - 8 + i]))
           << (8 * i);
    }
    return v;
  }

  std::int64_t get_i64() { return static_cast<std::int64_t>(get_u64()); }

  double get_f64() {
    const std::uint64_t bits = get_u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  /// Inverse of put_string. The declared length is validated against the
  /// bytes actually present BEFORE anything is copied, so a forged header
  /// claiming 4 GB cannot make the reader allocate 4 GB.
  std::string get_string() {
    const std::uint32_t n = get_u32();
    if (!ok_ || n > remaining()) {
      ok_ = false;
      return std::string();
    }
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }

 private:
  bool take(std::size_t n) {
    if (!ok_ || n > remaining()) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace osim::serve::wire
