#include "tracer/context.hpp"

#include <algorithm>

#include "common/expect.hpp"

namespace osim::tracer {

using trace::AnnEvent;
using trace::kNeverAccessed;

TraceContext::TraceContext(std::int32_t rank, const TracerOptions& options)
    : rank_(rank), options_(options) {
  OSIM_CHECK(rank >= 0);
  OSIM_CHECK(options.mips > 0.0);
}

std::int64_t TraceContext::register_buffer(std::size_t num_elements,
                                           std::uint32_t elem_bytes,
                                           std::string name) {
  OSIM_CHECK(num_elements > 0);
  OSIM_CHECK(elem_bytes > 0);
  BufferState state;
  state.elem_bytes = elem_bytes;
  state.num_elements = num_elements;
  state.name = std::move(name);
  state.last_store.assign(num_elements, kNeverAccessed);
  state.prod_interval_start = vclock_;
  buffers_.push_back(std::move(state));
  return static_cast<std::int64_t>(buffers_.size()) - 1;
}

TraceContext::BufferState& TraceContext::buffer(std::int64_t id) {
  OSIM_CHECK(id >= 0 && id < static_cast<std::int64_t>(buffers_.size()));
  return buffers_[static_cast<std::size_t>(id)];
}

void TraceContext::log_access(std::int64_t buf, std::size_t element,
                              std::uint32_t interval, bool is_store) {
  if (!options_.record_access_log ||
      access_log_.size() >= options_.access_log_limit) {
    return;
  }
  access_log_.push_back(AccessSample{buf, static_cast<std::uint32_t>(element),
                                     interval, vclock_, is_store});
}

void TraceContext::on_load(std::int64_t buf, std::size_t element) {
  vclock_ += options_.load_cost;
  BufferState& state = buffer(buf);
  OSIM_CHECK(element < state.num_elements);
  if (state.active_recv_event >= 0 && element >= state.recv_offset &&
      element < state.recv_offset + state.recv_count) {
    AnnEvent& ev = events_[static_cast<std::size_t>(state.active_recv_event)];
    std::uint64_t& first = ev.elem_first_load[element - state.recv_offset];
    if (first == kNeverAccessed) first = vclock_;
  }
  // Loads belong to the consumption interval of the most recent recv
  // (0-based ordinal); loads before any recv carry the ~0u sentinel.
  log_access(buf, element,
             state.cons_intervals == 0 ? ~std::uint32_t{0}
                                       : state.cons_intervals - 1,
             /*is_store=*/false);
}

void TraceContext::on_store(std::int64_t buf, std::size_t element) {
  vclock_ += options_.store_cost;
  BufferState& state = buffer(buf);
  OSIM_CHECK(element < state.num_elements);
  state.last_store[element] = vclock_;
  log_access(buf, element, state.prod_intervals, /*is_store=*/true);
}

void TraceContext::record_send(std::int64_t buf, std::size_t offset,
                               std::size_t count, std::uint32_t elem_bytes,
                               std::int32_t dest, std::int64_t tag,
                               bool immediate, trace::ReqId request) {
  OSIM_CHECK(!finalized_);
  OSIM_CHECK_MSG(tag >= 0, "application tags must be non-negative");
  AnnEvent ev;
  ev.kind = immediate ? AnnEvent::Kind::kIsend : AnnEvent::Kind::kSend;
  ev.vclock = vclock_;
  ev.peer = dest;
  ev.tag = tag;
  ev.elem_bytes = elem_bytes;
  ev.bytes = static_cast<std::uint64_t>(count) * elem_bytes;
  ev.buffer_id = buf;
  ev.request = request;
  if (buf >= 0) {
    BufferState& state = buffer(buf);
    OSIM_CHECK(offset + count <= state.num_elements);
    OSIM_CHECK(elem_bytes == state.elem_bytes);
    ev.interval_start = state.prod_interval_start;
    ev.elem_last_store.assign(state.last_store.begin() +
                                  static_cast<std::ptrdiff_t>(offset),
                              state.last_store.begin() +
                                  static_cast<std::ptrdiff_t>(offset + count));
    // Elements written before this production interval began keep their
    // final value from earlier; clamp their "last update" to the interval
    // start so they count as available immediately.
    for (std::uint64_t& t : ev.elem_last_store) {
      if (t != kNeverAccessed && t < ev.interval_start) {
        t = ev.interval_start;
      }
    }
    ev.chunkable = count > 1;
    // A new production interval begins at this send.
    std::fill(state.last_store.begin() +
                  static_cast<std::ptrdiff_t>(offset),
              state.last_store.begin() +
                  static_cast<std::ptrdiff_t>(offset + count),
              kNeverAccessed);
    state.prod_interval_start = vclock_;
    state.prod_intervals++;
  }
  events_.push_back(std::move(ev));
}

void TraceContext::close_consumption(BufferState& state) {
  if (state.active_recv_event < 0) return;
  AnnEvent& ev = events_[static_cast<std::size_t>(state.active_recv_event)];
  ev.interval_end = vclock_;
  state.active_recv_event = -1;
}

void TraceContext::record_recv(std::int64_t buf, std::size_t offset,
                               std::size_t count, std::uint32_t elem_bytes,
                               std::int32_t src, std::int64_t tag,
                               bool immediate, trace::ReqId request) {
  OSIM_CHECK(!finalized_);
  OSIM_CHECK_MSG(tag >= 0 || tag == trace::kAnyTag,
                 "application tags must be non-negative");
  AnnEvent ev;
  ev.kind = immediate ? AnnEvent::Kind::kIrecv : AnnEvent::Kind::kRecv;
  ev.vclock = vclock_;
  ev.peer = src;
  ev.tag = tag;
  ev.elem_bytes = elem_bytes;
  ev.bytes = static_cast<std::uint64_t>(count) * elem_bytes;
  ev.buffer_id = buf;
  ev.request = request;
  if (buf >= 0) {
    BufferState& state = buffer(buf);
    OSIM_CHECK(offset + count <= state.num_elements);
    OSIM_CHECK(elem_bytes == state.elem_bytes);
    close_consumption(state);
    ev.elem_first_load.assign(count, kNeverAccessed);
    ev.interval_end = vclock_;  // provisional; closed by the next recv
    ev.chunkable = count > 1 && src != trace::kAnyRank &&
                   tag != trace::kAnyTag;
    events_.push_back(std::move(ev));
    state.active_recv_event =
        static_cast<std::int64_t>(events_.size()) - 1;
    state.recv_offset = offset;
    state.recv_count = count;
    state.cons_intervals++;
  } else {
    events_.push_back(std::move(ev));
  }
  if (immediate) {
    irecv_event_[request] = events_.size() - 1;
  }
}

void TraceContext::record_wait(std::span<const trace::ReqId> requests) {
  OSIM_CHECK(!finalized_);
  OSIM_CHECK(!requests.empty());
  AnnEvent ev;
  ev.kind = AnnEvent::Kind::kWait;
  ev.vclock = vclock_;
  ev.wait_requests.assign(requests.begin(), requests.end());
  events_.push_back(std::move(ev));
  const std::int64_t wait_index =
      static_cast<std::int64_t>(events_.size()) - 1;
  for (const trace::ReqId req : requests) {
    const auto it = irecv_event_.find(req);
    if (it != irecv_event_.end()) {
      events_[it->second].wait_event_index = wait_index;
      irecv_event_.erase(it);
    }
  }
}

void TraceContext::record_global(trace::CollectiveKind kind,
                                 std::int32_t root, std::uint64_t bytes) {
  OSIM_CHECK(!finalized_);
  AnnEvent ev;
  ev.kind = AnnEvent::Kind::kGlobalOp;
  ev.vclock = vclock_;
  ev.coll = kind;
  ev.root = root;
  ev.bytes = bytes;
  ev.coll_sequence = collective_seq_++;
  events_.push_back(std::move(ev));
}

void TraceContext::finalize() {
  OSIM_CHECK(!finalized_);
  finalized_ = true;
  final_vclock_ = vclock_;
  for (BufferState& state : buffers_) close_consumption(state);
}

trace::AnnotatedRank TraceContext::take_rank() {
  OSIM_CHECK_MSG(finalized_, "take_rank before finalize");
  trace::AnnotatedRank out;
  out.events = std::move(events_);
  out.final_vclock = final_vclock_;
  return out;
}

std::vector<AccessSample> TraceContext::take_access_log() {
  return std::move(access_log_);
}

std::vector<std::string> TraceContext::buffer_names() const {
  std::vector<std::string> names;
  names.reserve(buffers_.size());
  for (const BufferState& state : buffers_) names.push_back(state.name);
  return names;
}

}  // namespace osim::tracer
