#include "tracer/tracer.hpp"

#include "common/expect.hpp"
#include "mpisim/mpisim.hpp"

namespace osim::tracer {

Tracer::Tracer(std::int32_t num_ranks, const TracerOptions& options,
               std::string app)
    : num_ranks_(num_ranks), options_(options), app_(std::move(app)) {
  OSIM_CHECK(num_ranks > 0);
  contexts_.reserve(static_cast<std::size_t>(num_ranks));
  for (std::int32_t r = 0; r < num_ranks; ++r) {
    contexts_.push_back(std::make_unique<TraceContext>(r, options));
  }
}

TraceContext& Tracer::context(std::int32_t rank) {
  OSIM_CHECK(rank >= 0 && rank < num_ranks_);
  return *contexts_[static_cast<std::size_t>(rank)];
}

TracedRun Tracer::finish() {
  TracedRun run;
  run.annotated =
      trace::AnnotatedTrace::make(num_ranks_, options_.mips, app_);
  run.access_logs.resize(static_cast<std::size_t>(num_ranks_));
  run.buffer_names.resize(static_cast<std::size_t>(num_ranks_));
  for (std::int32_t r = 0; r < num_ranks_; ++r) {
    TraceContext& ctx = *contexts_[static_cast<std::size_t>(r)];
    ctx.finalize();
    run.buffer_names[static_cast<std::size_t>(r)] = ctx.buffer_names();
    run.annotated.ranks[static_cast<std::size_t>(r)] = ctx.take_rank();
    run.access_logs[static_cast<std::size_t>(r)] = ctx.take_access_log();
  }
  trace::validate(run.annotated);
  return run;
}

std::int64_t TracedRun::find_buffer(std::int32_t rank,
                                    const std::string& name) const {
  if (rank < 0 ||
      static_cast<std::size_t>(rank) >= buffer_names.size()) {
    return -1;
  }
  const auto& names = buffer_names[static_cast<std::size_t>(rank)];
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return static_cast<std::int64_t>(i);
  }
  return -1;
}

TracedRun run_traced(std::int32_t num_ranks, const TracerOptions& options,
                     const std::string& app,
                     const std::function<void(Process&)>& body) {
  Tracer tracer(num_ranks, options, app);
  mpisim::Runtime::run(num_ranks, [&](mpisim::Comm& comm) {
    Process process(comm, tracer.context(comm.rank()));
    body(process);
  });
  return tracer.finish();
}

}  // namespace osim::tracer
