// TrackedBuffer<T>: an owning array whose element accesses are observed by
// the tracer, standing in for Valgrind's load/store interception.
//
// Every read or write through operator[] advances the rank's virtual clock
// and updates the production (last store) / consumption (first load)
// bookkeeping for the buffer. Applications do their real arithmetic through
// these accessors; initialization and other untimed work can use raw().
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/expect.hpp"
#include "tracer/context.hpp"

namespace osim::tracer {

template <typename T>
class TrackedBuffer {
 public:
  /// Created via Process::make_buffer().
  TrackedBuffer(TraceContext* context, std::int64_t id, std::size_t n)
      : context_(context), id_(id), data_(n) {}

  std::int64_t id() const { return id_; }
  std::size_t size() const { return data_.size(); }

  /// Tracked read of element i.
  T load(std::size_t i) const {
    OSIM_CHECK(i < data_.size());
    context_->on_load(id_, i);
    return data_[i];
  }

  /// Tracked write of element i.
  void store(std::size_t i, T value) {
    OSIM_CHECK(i < data_.size());
    context_->on_store(id_, i);
    data_[i] = value;
  }

  /// Proxy giving natural `buf[i]` syntax with tracking on both sides.
  class Proxy {
   public:
    Proxy(TrackedBuffer& buffer, std::size_t index)
        : buffer_(buffer), index_(index) {}
    operator T() const { return buffer_.load(index_); }
    Proxy& operator=(T value) {
      buffer_.store(index_, value);
      return *this;
    }
    Proxy& operator+=(T value) {
      buffer_.store(index_, buffer_.load(index_) + value);
      return *this;
    }
    Proxy& operator-=(T value) {
      buffer_.store(index_, buffer_.load(index_) - value);
      return *this;
    }
    Proxy& operator*=(T value) {
      buffer_.store(index_, buffer_.load(index_) * value);
      return *this;
    }

   private:
    TrackedBuffer& buffer_;
    std::size_t index_;
  };

  Proxy operator[](std::size_t i) { return Proxy(*this, i); }
  T operator[](std::size_t i) const { return load(i); }

  /// Untracked access to the storage (initialization, verification, and the
  /// MPI runtime's internal copies — Valgrind's tool likewise excludes
  /// MPI-internal activity from the application's access stream).
  std::span<T> raw() { return std::span<T>(data_); }
  std::span<const T> raw() const { return std::span<const T>(data_); }

  TrackedBuffer(TrackedBuffer&&) noexcept = default;
  TrackedBuffer& operator=(TrackedBuffer&&) noexcept = default;
  TrackedBuffer(const TrackedBuffer&) = delete;
  TrackedBuffer& operator=(const TrackedBuffer&) = delete;

 private:
  TraceContext* context_;
  std::int64_t id_;
  std::vector<T> data_;
};

}  // namespace osim::tracer
