// Per-rank tracing context: the core of the "Valgrind tool" the paper
// describes in §III-C. It maintains a virtual instruction clock, intercepts
// every tracked load/store ("the tool ... tracks each memory activity to
// monitor accesses to the transferred data"), and records every MPI call
// with production/consumption annotations, producing one AnnotatedRank per
// rank.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "trace/annotated.hpp"

namespace osim::tracer {

struct TracerOptions {
  /// MIPS rate used to convert instruction counts to seconds ("scaling the
  /// number of executed instructions by the average MIPS rate observed in a
  /// real run" — 2.3 GHz PPC970, about one instruction per cycle).
  double mips = 2300.0;
  /// Virtual instructions charged per tracked element load / store. The
  /// surrounding arithmetic is charged via Process::compute().
  std::uint64_t load_cost = 1;
  std::uint64_t store_cost = 1;
  /// Record every tracked access (for Figure 5 scatter plots). Costly;
  /// capped per rank by access_log_limit.
  bool record_access_log = false;
  std::uint64_t access_log_limit = 4u << 20;
};

/// One tracked memory access (only collected under record_access_log).
struct AccessSample {
  std::int64_t buffer = -1;
  std::uint32_t element = 0;
  /// Ordinal of the production interval (stores) or consumption interval
  /// (loads) this access falls into, counted per buffer.
  std::uint32_t interval = 0;
  std::uint64_t vclock = 0;
  bool is_store = false;
};

class TraceContext {
 public:
  TraceContext(std::int32_t rank, const TracerOptions& options);

  std::int32_t rank() const { return rank_; }
  std::uint64_t vclock() const { return vclock_; }

  /// Advances the virtual clock (explicit computation).
  void advance(std::uint64_t instructions) { vclock_ += instructions; }

  // --- tracked buffers ------------------------------------------------------
  std::int64_t register_buffer(std::size_t num_elements,
                               std::uint32_t elem_bytes, std::string name);
  void on_load(std::int64_t buffer, std::size_t element);
  void on_store(std::int64_t buffer, std::size_t element);

  // --- MPI event recording -------------------------------------------------
  /// `buffer` may be -1 for untracked transfers (annotations omitted,
  /// transfer not chunkable).
  void record_send(std::int64_t buffer, std::size_t offset,
                   std::size_t count, std::uint32_t elem_bytes,
                   std::int32_t dest, std::int64_t tag, bool immediate,
                   trace::ReqId request);
  void record_recv(std::int64_t buffer, std::size_t offset,
                   std::size_t count, std::uint32_t elem_bytes,
                   std::int32_t src, std::int64_t tag, bool immediate,
                   trace::ReqId request);
  void record_wait(std::span<const trace::ReqId> requests);
  void record_global(trace::CollectiveKind kind, std::int32_t root,
                     std::uint64_t bytes);

  trace::ReqId new_request() { return next_request_++; }

  /// Closes open consumption intervals and stamps final_vclock. Call once,
  /// after the rank function returns.
  void finalize();

  /// Moves the per-rank results out (post-finalize).
  trace::AnnotatedRank take_rank();
  std::vector<AccessSample> take_access_log();

  /// Registration-ordered names of the rank's tracked buffers (index =
  /// buffer id); used to locate a named buffer for pattern plots.
  std::vector<std::string> buffer_names() const;

  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

 private:
  struct BufferState {
    std::uint32_t elem_bytes = 0;
    std::size_t num_elements = 0;
    std::string name;
    std::vector<std::uint64_t> last_store;  // kNeverAccessed when untouched
    std::uint64_t prod_interval_start = 0;
    // Active consumption interval, if any.
    std::int64_t active_recv_event = -1;  // index into events_
    std::size_t recv_offset = 0;
    std::size_t recv_count = 0;
    std::uint32_t prod_intervals = 0;  // sends seen so far
    std::uint32_t cons_intervals = 0;  // recvs seen so far
  };

  BufferState& buffer(std::int64_t id);
  void close_consumption(BufferState& state);
  void log_access(std::int64_t buffer, std::size_t element,
                  std::uint32_t interval, bool is_store);

  const std::int32_t rank_;
  const TracerOptions options_;
  std::uint64_t vclock_ = 0;
  std::vector<BufferState> buffers_;
  std::vector<trace::AnnEvent> events_;
  trace::ReqId next_request_ = 0;
  std::int64_t collective_seq_ = 0;
  std::unordered_map<trace::ReqId, std::size_t> irecv_event_;  // req → event
  std::vector<AccessSample> access_log_;
  bool finalized_ = false;
  std::uint64_t final_vclock_ = 0;
};

}  // namespace osim::tracer
