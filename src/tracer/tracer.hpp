// Tracer: the whole-run coordinator. Owns one TraceContext per rank, runs
// the application on the in-process MPI runtime with each rank observed by
// its context ("each process running on its own Valgrind virtual machine"),
// and assembles the AnnotatedTrace.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tracer/context.hpp"
#include "tracer/process.hpp"
#include "trace/annotated.hpp"

namespace osim::tracer {

struct TracedRun {
  trace::AnnotatedTrace annotated;
  /// Per-rank access logs; empty unless TracerOptions::record_access_log.
  std::vector<std::vector<AccessSample>> access_logs;
  /// Per-rank tracked-buffer names, indexed by buffer id.
  std::vector<std::vector<std::string>> buffer_names;

  /// Buffer id of `name` on `rank`, or -1 if absent.
  std::int64_t find_buffer(std::int32_t rank, const std::string& name) const;
};

class Tracer {
 public:
  Tracer(std::int32_t num_ranks, const TracerOptions& options,
         std::string app);

  TraceContext& context(std::int32_t rank);

  /// Finalizes all contexts and assembles the results. Call once, after the
  /// application has finished running.
  TracedRun finish();

 private:
  const std::int32_t num_ranks_;
  const TracerOptions options_;
  const std::string app_;
  std::vector<std::unique_ptr<TraceContext>> contexts_;
};

/// Convenience wrapper: trace `body` over `num_ranks` ranks in one call.
/// This is the full "Valgrind stage" of the paper's pipeline.
TracedRun run_traced(std::int32_t num_ranks, const TracerOptions& options,
                     const std::string& app,
                     const std::function<void(Process&)>& body);

}  // namespace osim::tracer
