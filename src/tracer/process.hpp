// Process: the per-rank façade applications are written against. It
// forwards every MPI call to the in-process runtime (mpisim) while the
// tracer records it — the equivalent of the paper's "the tool wraps each
// MPI call to read the parameters of the transfer".
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/expect.hpp"
#include "mpisim/mpisim.hpp"
#include "tracer/context.hpp"
#include "tracer/tracked_buffer.hpp"

namespace osim::tracer {

/// Outstanding immediate operation: pairs the tracer-side request id with
/// the runtime-side handle.
struct Request {
  trace::ReqId id = trace::kNoRequest;
  mpisim::Request inner;
};

class Process {
 public:
  Process(mpisim::Comm& comm, TraceContext& context)
      : comm_(comm), context_(context) {
    OSIM_CHECK(comm.rank() == context.rank());
  }

  int rank() const { return comm_.rank(); }
  int size() const { return comm_.size(); }

  /// Explicit computation: advances the virtual clock by `instructions`
  /// (arithmetic not expressed through tracked-buffer accesses).
  void compute(std::uint64_t instructions) { context_.advance(instructions); }

  std::uint64_t vclock() const { return context_.vclock(); }

  template <typename T>
  TrackedBuffer<T> make_buffer(std::size_t n, std::string name) {
    const std::int64_t id = context_.register_buffer(
        n, static_cast<std::uint32_t>(sizeof(T)), std::move(name));
    return TrackedBuffer<T>(&context_, id, n);
  }

  // --- tracked point-to-point ---------------------------------------------
  template <typename T>
  void send(const TrackedBuffer<T>& buf, int dest, int tag) {
    send(buf, 0, buf.size(), dest, tag);
  }
  template <typename T>
  void send(const TrackedBuffer<T>& buf, std::size_t offset,
            std::size_t count, int dest, int tag) {
    context_.record_send(buf.id(), offset, count, sizeof(T), dest, tag,
                         /*immediate=*/false, trace::kNoRequest);
    comm_.send(buf.raw().subspan(offset, count), dest, tag);
  }
  template <typename T>
  Request isend(const TrackedBuffer<T>& buf, int dest, int tag) {
    const trace::ReqId id = context_.new_request();
    context_.record_send(buf.id(), 0, buf.size(), sizeof(T), dest, tag,
                         /*immediate=*/true, id);
    return Request{id, comm_.isend(buf.raw(), dest, tag)};
  }
  template <typename T>
  void recv(TrackedBuffer<T>& buf, int src, int tag) {
    recv(buf, 0, buf.size(), src, tag);
  }
  template <typename T>
  void recv(TrackedBuffer<T>& buf, std::size_t offset, std::size_t count,
            int src, int tag) {
    context_.record_recv(buf.id(), offset, count, sizeof(T), src, tag,
                         /*immediate=*/false, trace::kNoRequest);
    comm_.recv(buf.raw().subspan(offset, count), src, tag);
  }
  template <typename T>
  Request irecv(TrackedBuffer<T>& buf, int src, int tag) {
    const trace::ReqId id = context_.new_request();
    context_.record_recv(buf.id(), 0, buf.size(), sizeof(T), src, tag,
                         /*immediate=*/true, id);
    return Request{id, comm_.irecv(buf.raw(), src, tag)};
  }

  // --- untracked point-to-point (control data, small payloads) -------------
  template <typename T>
  void send_raw(std::span<const T> data, int dest, int tag) {
    context_.record_send(-1, 0, data.size(), sizeof(T), dest, tag,
                         /*immediate=*/false, trace::kNoRequest);
    comm_.send(data, dest, tag);
  }
  template <typename T>
  void recv_raw(std::span<T> data, int src, int tag) {
    context_.record_recv(-1, 0, data.size(), sizeof(T), src, tag,
                         /*immediate=*/false, trace::kNoRequest);
    comm_.recv(data, src, tag);
  }

  void wait(Request& request) {
    context_.record_wait(std::span<const trace::ReqId>(&request.id, 1));
    comm_.wait(request.inner);
  }
  void wait_all(std::span<Request> requests) {
    if (requests.empty()) return;
    std::vector<trace::ReqId> ids;
    ids.reserve(requests.size());
    for (const Request& r : requests) ids.push_back(r.id);
    context_.record_wait(ids);
    for (Request& r : requests) {
      if (r.inner.valid()) comm_.wait(r.inner);
    }
  }

  // --- collectives ----------------------------------------------------------
  void barrier() {
    context_.record_global(trace::CollectiveKind::kBarrier, 0, 0);
    comm_.barrier();
  }
  template <typename T>
  void bcast(std::span<T> data, int root) {
    context_.record_global(trace::CollectiveKind::kBcast, root,
                           data.size_bytes());
    comm_.bcast(data, root);
  }
  template <typename T>
  void allreduce(std::span<const T> in, std::span<T> out, mpisim::Op op) {
    context_.record_global(trace::CollectiveKind::kAllreduce, 0,
                           in.size_bytes());
    comm_.allreduce(in, out, op);
  }
  template <typename T>
  T allreduce_scalar(T value, mpisim::Op op) {
    T out{};
    allreduce(std::span<const T>(&value, 1), std::span<T>(&out, 1), op);
    return out;
  }
  template <typename T>
  void reduce(std::span<const T> in, std::span<T> out, mpisim::Op op,
              int root) {
    context_.record_global(trace::CollectiveKind::kReduce, root,
                           in.size_bytes());
    comm_.reduce(in, out, op, root);
  }
  template <typename T>
  void gather(std::span<const T> in, std::span<T> out, int root) {
    context_.record_global(trace::CollectiveKind::kGather, root,
                           in.size_bytes());
    comm_.gather(in, out, root);
  }
  template <typename T>
  void allgather(std::span<const T> in, std::span<T> out) {
    context_.record_global(trace::CollectiveKind::kAllgather, 0,
                           in.size_bytes());
    comm_.allgather(in, out);
  }
  template <typename T>
  void alltoall(std::span<const T> in, std::span<T> out, std::size_t block) {
    context_.record_global(trace::CollectiveKind::kAlltoall, 0,
                           block * sizeof(T));
    comm_.alltoall(in, out, block);
  }
  template <typename T>
  void scan(std::span<const T> in, std::span<T> out, mpisim::Op op) {
    context_.record_global(trace::CollectiveKind::kScan, 0,
                           in.size_bytes());
    comm_.scan(in, out, op);
  }

  mpisim::Comm& comm() { return comm_; }
  TraceContext& context() { return context_; }

 private:
  mpisim::Comm& comm_;
  TraceContext& context_;
};

}  // namespace osim::tracer
