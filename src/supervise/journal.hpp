// Write-ahead study journal: the durable record of a sweep's control
// state, living next to the scenario objects in the store root
// (<root>/journals/<study-fingerprint>.osimjrn). Where the store answers
// "what did this scenario compute", the journal answers "which scenarios
// of THIS study reached a terminal status" — the piece --resume needs to
// skip work after a kill -9 without trusting anything volatile.
//
// On-disk layout (fixed-width little-endian, like store/format.hpp):
//
//   header (32 bytes):
//     magic "OSIMJRN1" (8)
//     u32 journal version (kJournalVersion)
//     u64 study.hi, u64 study.lo       (the study fingerprint)
//     u32 CRC-32 over the 20 bytes after the magic
//   records, each:
//     u32 payload_bytes (P)
//     payload (P bytes):
//       u8 kind — 0 = scenario terminal status, 1 = study complete
//       kind 0: u64 fp.hi, u64 fp.lo, u8 status, f64 makespan,
//               f64 fault_wait_s, f64 progress_wait_s,
//               f64 partial_blocked_s, faults::Counts
//     u32 CRC-32 over the payload
//
// Reading is salvage-style and total: the longest valid prefix wins, and
// anything after it (a record torn by a crash mid-append) is truncated
// away on open. A bad or alien header means "fresh journal", never an
// error — the journal is an accelerator, exactly like the store.
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "faults/model.hpp"
#include "pipeline/fingerprint.hpp"

namespace osim::supervise {

inline constexpr std::string_view kJournalMagic = "OSIMJRN1";
inline constexpr std::uint32_t kJournalVersion = 1;

/// Terminal status of one scenario within a supervised study.
enum class ScenarioStatus : std::uint8_t {
  kOk = 0,             ///< replay completed; result is cached/cacheable
  kTimeout = 1,        ///< stopped by --scenario-timeout; partial result
  kCancelled = 2,      ///< stopped by SIGINT/SIGTERM or --study-deadline
  kFailed = 3,         ///< replay threw (bad trace, deadlock, ...)
  kSkippedResume = 4,  ///< served from a previous run's journal (--resume)
};

/// Stable wire/report names: ok|timeout|cancelled|failed|skipped-resume.
const char* scenario_status_name(ScenarioStatus status);

/// The journal key: a fingerprint of the caller-supplied study identity
/// string (bench name + the sweep-shaping flags). Uses the same two-lane
/// FNV-1a construction as scenario fingerprints so collisions need both
/// 64-bit lanes to collide at once.
pipeline::Fingerprint study_fingerprint(std::string_view study_id);

/// One journaled scenario outcome. For kOk the makespan/wait fields echo
/// the cached artifact (so --resume can serve results journal-only); for
/// kTimeout/kCancelled they hold the partial progress at the stop.
struct JournalEntry {
  pipeline::Fingerprint fingerprint;
  ScenarioStatus status = ScenarioStatus::kOk;
  double makespan = 0.0;
  double fault_wait_s = 0.0;
  double progress_wait_s = 0.0;
  /// Total per-rank blocked time at the stop (partial wait attribution);
  /// zero for completed scenarios.
  double partial_blocked_s = 0.0;
  faults::Counts fault_counts;

  friend bool operator==(const JournalEntry&, const JournalEntry&) = default;
};

/// An append-only journal for one study. Opening replays the existing file
/// (salvaging the longest valid prefix); append() is thread-safe and
/// flushes each record, so a SIGKILL between appends loses nothing and a
/// SIGKILL mid-append loses only the torn record.
class StudyJournal {
 public:
  /// Where the journal for `study` lives under store root `root`.
  static std::string path_for(const std::string& root,
                              const pipeline::Fingerprint& study);

  /// Opens (creating directories and the file as needed) the journal for
  /// `study` under store root `root`. Throws osim::Error when the file
  /// cannot be created or written.
  StudyJournal(const std::string& root, const pipeline::Fingerprint& study);
  ~StudyJournal();

  StudyJournal(const StudyJournal&) = delete;
  StudyJournal& operator=(const StudyJournal&) = delete;

  const pipeline::Fingerprint& study() const { return study_; }
  const std::string& path() const { return path_; }

  /// Entries salvaged from disk at open time, in append order. Not updated
  /// by append() — callers index what they replayed themselves.
  const std::vector<JournalEntry>& recovered() const { return recovered_; }

  /// True when a study-complete marker was recovered: the study this
  /// journal describes finished its sweep, so gc may evict the journal.
  bool recovered_complete() const { return recovered_complete_; }

  /// Appends one scenario outcome (thread-safe, flushed before returning).
  void append(const JournalEntry& entry);

  /// Appends the study-complete marker.
  void append_complete();

 private:
  void write_record(const std::string& payload);

  pipeline::Fingerprint study_;
  std::string path_;
  std::FILE* file_ = nullptr;
  std::mutex mutex_;
  std::vector<JournalEntry> recovered_;
  bool recovered_complete_ = false;
};

/// Summary of one journal file, as listed by `osim_cache stats --journals`.
struct JournalInfo {
  std::string path;
  pipeline::Fingerprint study;
  std::uint64_t bytes = 0;
  std::size_t entries = 0;     ///< valid scenario records
  std::size_t ok = 0;          ///< entries with status ok
  bool complete = false;       ///< study-complete marker present
  bool valid = false;          ///< header parsed (invalid files still list)
};

/// Lists every journal under `<root>/journals`, sorted by path.
std::vector<JournalInfo> list_journals(const std::string& root);

/// Removes journals of finished studies (complete marker present) and
/// unreadable journal files; in-progress journals are kept. Returns the
/// number of files removed.
std::size_t gc_journals(const std::string& root);

}  // namespace osim::supervise
