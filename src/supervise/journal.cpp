#include "supervise/journal.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/crash_point.hpp"
#include "common/crc32.hpp"
#include "common/expect.hpp"

namespace osim::supervise {

namespace fs = std::filesystem;

namespace {

// Little-endian fixed-width primitives, mirroring store/format.cpp (the
// journal shares the store root, so it pins byte order the same way).

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void put_f64(std::string& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

bool get_u32(std::string_view in, std::size_t& pos, std::uint32_t& v) {
  if (in.size() - pos < 4) return false;
  v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(in[pos + i]))
         << (8 * i);
  }
  pos += 4;
  return true;
}

bool get_u64(std::string_view in, std::size_t& pos, std::uint64_t& v) {
  if (in.size() - pos < 8) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(in[pos + i]))
         << (8 * i);
  }
  pos += 8;
  return true;
}

bool get_f64(std::string_view in, std::size_t& pos, double& v) {
  std::uint64_t bits = 0;
  if (!get_u64(in, pos, bits)) return false;
  std::memcpy(&v, &bits, sizeof(v));
  return true;
}

bool get_u8(std::string_view in, std::size_t& pos, std::uint8_t& v) {
  if (in.size() - pos < 1) return false;
  v = static_cast<std::uint8_t>(in[pos]);
  pos += 1;
  return true;
}

void put_counts(std::string& out, const faults::Counts& c) {
  put_u8(out, c.enabled ? 1 : 0);
  put_u64(out, c.seed);
  put_u64(out, c.messages_dropped);
  put_u64(out, c.retransmits);
  put_u64(out, c.handshake_reissues);
  put_u64(out, c.hard_stalls);
  put_u64(out, c.degraded_transfers);
  put_u64(out, c.perturbed_bursts);
  put_u64(out, c.straggled_bursts);
  put_f64(out, c.injected_delay_s);
  put_f64(out, c.injected_compute_s);
}

bool get_counts(std::string_view in, std::size_t& pos, faults::Counts& c) {
  std::uint8_t enabled = 0;
  if (!get_u8(in, pos, enabled)) return false;
  if (enabled > 1) return false;
  c.enabled = enabled == 1;
  return get_u64(in, pos, c.seed) && get_u64(in, pos, c.messages_dropped) &&
         get_u64(in, pos, c.retransmits) &&
         get_u64(in, pos, c.handshake_reissues) &&
         get_u64(in, pos, c.hard_stalls) &&
         get_u64(in, pos, c.degraded_transfers) &&
         get_u64(in, pos, c.perturbed_bursts) &&
         get_u64(in, pos, c.straggled_bursts) &&
         get_f64(in, pos, c.injected_delay_s) &&
         get_f64(in, pos, c.injected_compute_s);
}

std::uint32_t crc_of(std::string_view bytes) {
  Crc32 crc;
  crc.update(bytes.data(), bytes.size());
  return crc.value();
}

constexpr std::size_t kHeaderBytes = 8 + 4 + 8 + 8 + 4;
/// Records are tiny; anything claiming to be bigger is damage, and
/// rejecting it keeps a flipped length byte from swallowing the rest of
/// the file as one giant "record".
constexpr std::uint32_t kMaxPayloadBytes = 4096;

constexpr std::uint8_t kKindScenario = 0;
constexpr std::uint8_t kKindComplete = 1;

std::string encode_header(const pipeline::Fingerprint& study) {
  std::string out;
  out.append(kJournalMagic);
  put_u32(out, kJournalVersion);
  put_u64(out, study.hi);
  put_u64(out, study.lo);
  put_u32(out, crc_of(std::string_view(out).substr(kJournalMagic.size())));
  return out;
}

std::string encode_entry_payload(const JournalEntry& entry) {
  std::string payload;
  put_u8(payload, kKindScenario);
  put_u64(payload, entry.fingerprint.hi);
  put_u64(payload, entry.fingerprint.lo);
  put_u8(payload, static_cast<std::uint8_t>(entry.status));
  put_f64(payload, entry.makespan);
  put_f64(payload, entry.fault_wait_s);
  put_f64(payload, entry.progress_wait_s);
  put_f64(payload, entry.partial_blocked_s);
  put_counts(payload, entry.fault_counts);
  return payload;
}

bool decode_entry_payload(std::string_view payload, JournalEntry& entry) {
  std::size_t pos = 1;  // kind byte already consumed by the caller
  std::uint8_t status = 0;
  if (!get_u64(payload, pos, entry.fingerprint.hi) ||
      !get_u64(payload, pos, entry.fingerprint.lo) ||
      !get_u8(payload, pos, status) ||
      !get_f64(payload, pos, entry.makespan) ||
      !get_f64(payload, pos, entry.fault_wait_s) ||
      !get_f64(payload, pos, entry.progress_wait_s) ||
      !get_f64(payload, pos, entry.partial_blocked_s) ||
      !get_counts(payload, pos, entry.fault_counts)) {
    return false;
  }
  if (pos != payload.size()) return false;
  if (status > static_cast<std::uint8_t>(ScenarioStatus::kSkippedResume)) {
    return false;
  }
  entry.status = static_cast<ScenarioStatus>(status);
  return true;
}

struct ParsedJournal {
  bool valid_header = false;
  pipeline::Fingerprint study;
  std::vector<JournalEntry> entries;
  std::size_t ok = 0;
  bool complete = false;
  /// Bytes of the longest valid prefix; everything after it is torn.
  std::size_t valid_end = 0;
};

/// Salvage-style total parse: never throws, keeps the longest valid
/// prefix. A header that fails any check leaves valid_header == false.
ParsedJournal parse_journal(std::string_view bytes) {
  ParsedJournal parsed;
  if (bytes.size() < kHeaderBytes) return parsed;
  if (bytes.substr(0, kJournalMagic.size()) != kJournalMagic) return parsed;
  std::size_t pos = kJournalMagic.size();
  std::uint32_t version = 0;
  std::uint32_t header_crc = 0;
  const std::size_t crc_begin = pos;
  if (!get_u32(bytes, pos, version) || version != kJournalVersion) {
    return parsed;
  }
  if (!get_u64(bytes, pos, parsed.study.hi) ||
      !get_u64(bytes, pos, parsed.study.lo)) {
    return parsed;
  }
  const std::size_t crc_end = pos;
  if (!get_u32(bytes, pos, header_crc) ||
      header_crc != crc_of(bytes.substr(crc_begin, crc_end - crc_begin))) {
    return parsed;
  }
  parsed.valid_header = true;
  parsed.valid_end = pos;

  while (pos < bytes.size()) {
    std::size_t record_pos = pos;
    std::uint32_t payload_bytes = 0;
    if (!get_u32(bytes, record_pos, payload_bytes)) break;
    if (payload_bytes == 0 || payload_bytes > kMaxPayloadBytes) break;
    if (bytes.size() - record_pos < payload_bytes + 4u) break;
    const std::string_view payload = bytes.substr(record_pos, payload_bytes);
    record_pos += payload_bytes;
    std::uint32_t payload_crc = 0;
    if (!get_u32(bytes, record_pos, payload_crc)) break;
    if (payload_crc != crc_of(payload)) break;
    const auto kind = static_cast<std::uint8_t>(payload[0]);
    if (kind == kKindScenario) {
      JournalEntry entry;
      if (!decode_entry_payload(payload, entry)) break;
      if (entry.status == ScenarioStatus::kOk) ++parsed.ok;
      parsed.entries.push_back(entry);
    } else if (kind == kKindComplete) {
      if (payload.size() != 1) break;
      parsed.complete = true;
    } else {
      break;
    }
    pos = record_pos;
    parsed.valid_end = pos;
  }
  return parsed;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

}  // namespace

const char* scenario_status_name(ScenarioStatus status) {
  switch (status) {
    case ScenarioStatus::kOk: return "ok";
    case ScenarioStatus::kTimeout: return "timeout";
    case ScenarioStatus::kCancelled: return "cancelled";
    case ScenarioStatus::kFailed: return "failed";
    case ScenarioStatus::kSkippedResume: return "skipped-resume";
  }
  return "unknown";
}

pipeline::Fingerprint study_fingerprint(std::string_view study_id) {
  // Two-lane FNV-1a with the same constants as pipeline/context.cpp's
  // Hasher, over the identity string's length and bytes.
  constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  constexpr std::uint64_t kPrime2 = 0x9e3779b97f4a7c15ULL;
  std::uint64_t lo = 0xcbf29ce484222325ULL;
  std::uint64_t hi = 0x84222325cbf29ce4ULL;
  const auto feed = [&](unsigned char b) {
    lo = (lo ^ b) * kPrime;
    hi = (hi ^ b) * kPrime2;
  };
  std::uint64_t size = study_id.size();
  for (int i = 0; i < 8; ++i) {
    feed(static_cast<unsigned char>(size >> (8 * i)));
  }
  for (const char c : study_id) feed(static_cast<unsigned char>(c));
  return {lo, hi};
}

std::string StudyJournal::path_for(const std::string& root,
                                   const pipeline::Fingerprint& study) {
  return (fs::path(root) / "journals" /
          (pipeline::to_hex(study) + ".osimjrn"))
      .string();
}

StudyJournal::StudyJournal(const std::string& root,
                           const pipeline::Fingerprint& study)
    : study_(study), path_(path_for(root, study)) {
  std::error_code ec;
  fs::create_directories(fs::path(path_).parent_path(), ec);

  const std::string bytes = read_file(path_);
  ParsedJournal parsed = parse_journal(bytes);
  const bool fresh =
      !parsed.valid_header || !(parsed.study == study_);
  if (fresh) {
    // Missing, damaged, version-skewed or alien journal: start over. The
    // journal is an accelerator like the store — never an error source.
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    if (f == nullptr) throw Error("cannot create study journal: " + path_);
    const std::string header = encode_header(study_);
    std::fwrite(header.data(), 1, header.size(), f);
    std::fflush(f);
    file_ = f;
    return;
  }
  recovered_ = std::move(parsed.entries);
  recovered_complete_ = parsed.complete;
  if (parsed.valid_end < bytes.size()) {
    // A crash tore the last append; drop the torn tail before continuing
    // so our appends land on a valid prefix.
    fs::resize_file(path_, parsed.valid_end, ec);
    if (ec) throw Error("cannot truncate torn study journal: " + path_);
  }
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) throw Error("cannot open study journal: " + path_);
}

StudyJournal::~StudyJournal() {
  if (file_ != nullptr) std::fclose(file_);
}

void StudyJournal::write_record(const std::string& payload) {
  std::string record;
  put_u32(record, static_cast<std::uint32_t>(payload.size()));
  record += payload;
  put_u32(record, crc_of(payload));

  std::lock_guard<std::mutex> lock(mutex_);
  maybe_crash("journal.append");
  // Two-part write with a crash point between: OSIM_CRASH_POINT=
  // journal.append.torn leaves exactly the torn record the salvage
  // parser must truncate (supervise_test exercises this).
  const std::size_t half = record.size() / 2;
  std::fwrite(record.data(), 1, half, file_);
  std::fflush(file_);
  maybe_crash("journal.append.torn");
  std::fwrite(record.data() + half, 1, record.size() - half, file_);
  if (std::fflush(file_) != 0 || std::ferror(file_) != 0) {
    throw Error("cannot append to study journal: " + path_);
  }
}

void StudyJournal::append(const JournalEntry& entry) {
  write_record(encode_entry_payload(entry));
}

void StudyJournal::append_complete() {
  std::string payload;
  put_u8(payload, kKindComplete);
  write_record(payload);
}

std::vector<JournalInfo> list_journals(const std::string& root) {
  std::vector<JournalInfo> infos;
  const fs::path dir = fs::path(root) / "journals";
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return infos;
  for (const auto& file : fs::directory_iterator(dir, ec)) {
    if (!file.is_regular_file()) continue;
    if (file.path().extension() != ".osimjrn") continue;
    JournalInfo info;
    info.path = file.path().string();
    std::error_code size_ec;
    info.bytes = static_cast<std::uint64_t>(fs::file_size(file.path(),
                                                          size_ec));
    const ParsedJournal parsed = parse_journal(read_file(info.path));
    info.valid = parsed.valid_header;
    info.study = parsed.study;
    info.entries = parsed.entries.size();
    info.ok = parsed.ok;
    info.complete = parsed.complete;
    infos.push_back(std::move(info));
  }
  std::sort(infos.begin(), infos.end(),
            [](const JournalInfo& a, const JournalInfo& b) {
              return a.path < b.path;
            });
  return infos;
}

std::size_t gc_journals(const std::string& root) {
  std::size_t removed = 0;
  for (const JournalInfo& info : list_journals(root)) {
    if (info.valid && !info.complete) continue;  // study still in flight
    std::error_code ec;
    if (fs::remove(info.path, ec) && !ec) ++removed;
  }
  return removed;
}

}  // namespace osim::supervise
