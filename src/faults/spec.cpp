#include "faults/spec.hpp"

#include <cmath>
#include <limits>

#include "common/expect.hpp"
#include "common/strings.hpp"

namespace osim::faults {

namespace {

[[noreturn]] void bad(const std::string& clause, const std::string& why) {
  throw Error("fault spec: clause '" + clause + "': " + why);
}

/// Duration with optional s/ms/us suffix, returned in seconds.
double parse_duration_s(const std::string& clause, std::string_view text) {
  double unit = 1.0;
  std::string_view number = text;
  if (text.size() >= 2 && text.substr(text.size() - 2) == "us") {
    unit = 1e-6;
    number = text.substr(0, text.size() - 2);
  } else if (text.size() >= 2 && text.substr(text.size() - 2) == "ms") {
    unit = 1e-3;
    number = text.substr(0, text.size() - 2);
  } else if (!text.empty() && text.back() == 's') {
    number = text.substr(0, text.size() - 1);
  }
  // Infinity is a valid `until` (an open-ended window); NaN never is.
  const auto parsed = parse_f64(number);
  if (!parsed || std::isnan(*parsed) || *parsed < 0.0) {
    bad(clause, "bad duration '" + std::string(text) + "'");
  }
  return *parsed * unit;
}

/// Same grammar, returned in microseconds. Kept separate from
/// parse_duration_s so microsecond-denominated model fields (timeout, lat)
/// never round-trip through seconds — the double conversion is lossy and
/// would break to_spec() being a fixed point.
double parse_duration_us(const std::string& clause, std::string_view text) {
  double unit = 1e6;
  std::string_view number = text;
  if (text.size() >= 2 && text.substr(text.size() - 2) == "us") {
    unit = 1.0;
    number = text.substr(0, text.size() - 2);
  } else if (text.size() >= 2 && text.substr(text.size() - 2) == "ms") {
    unit = 1e3;
    number = text.substr(0, text.size() - 2);
  } else if (!text.empty() && text.back() == 's') {
    number = text.substr(0, text.size() - 1);
  }
  const auto parsed = parse_f64(number);
  if (!parsed || std::isnan(*parsed) || *parsed < 0.0) {
    bad(clause, "bad duration '" + std::string(text) + "'");
  }
  return *parsed * unit;
}

double parse_number(const std::string& clause, const std::string& key,
                    std::string_view text, double lo, double hi) {
  const auto parsed = parse_f64(text);
  if (!parsed || !(*parsed >= lo) || !(*parsed <= hi)) {
    bad(clause, strprintf("%s must be a number in [%g, %g], got '%s'",
                          key.c_str(), lo, hi, std::string(text).c_str()));
  }
  return *parsed;
}

trace::Rank parse_rank(const std::string& clause, std::string_view text) {
  if (text == "any") return -1;
  const auto parsed = parse_i64(text);
  if (!parsed || *parsed < 0 || *parsed > 1'000'000) {
    bad(clause, "bad rank '" + std::string(text) + "' (number or 'any')");
  }
  return static_cast<trace::Rank>(*parsed);
}

struct Pair {
  std::string key;
  std::string value;
};

std::vector<Pair> parse_pairs(const std::string& clause) {
  std::vector<Pair> pairs;
  for (const std::string& field : split(clause, ',')) {
    const std::string item(trim(field));
    if (item.empty()) bad(clause, "empty field");
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0) {
      bad(clause, "expected key=value, got '" + item + "'");
    }
    pairs.push_back(Pair{item.substr(0, eq), item.substr(eq + 1)});
  }
  return pairs;
}

void parse_loss(const std::string& clause, const std::vector<Pair>& pairs,
                MessageLoss* loss) {
  loss->probability = parse_number(clause, "loss", pairs[0].value, 0.0, 1.0);
  for (std::size_t i = 1; i < pairs.size(); ++i) {
    const Pair& p = pairs[i];
    if (p.key == "timeout") {
      loss->timeout_us = parse_duration_us(clause, p.value);
    } else if (p.key == "backoff") {
      loss->backoff = parse_number(clause, "backoff", p.value, 1.0, 64.0);
    } else if (p.key == "retries") {
      loss->max_retries = static_cast<std::int64_t>(
          parse_number(clause, "retries", p.value, 0.0, 64.0));
    } else {
      bad(clause, "unknown key '" + p.key + "'");
    }
  }
}

void parse_noise(const std::string& clause, const std::vector<Pair>& pairs,
                 ComputeNoise* noise) {
  noise->magnitude = parse_number(clause, "noise", pairs[0].value, 0.0, 1e3);
  for (std::size_t i = 1; i < pairs.size(); ++i) {
    const Pair& p = pairs[i];
    if (p.key == "prob") {
      noise->probability = parse_number(clause, "prob", p.value, 0.0, 1.0);
    } else {
      bad(clause, "unknown key '" + p.key + "'");
    }
  }
}

void parse_degrade(const std::string& clause, const std::vector<Pair>& pairs,
                   LinkDegradation* window) {
  const std::size_t dash = pairs[0].value.find('-');
  if (dash == std::string::npos) {
    bad(clause, "expected degrade=<src>-<dst>");
  }
  window->src = parse_rank(clause, pairs[0].value.substr(0, dash));
  window->dst = parse_rank(clause, pairs[0].value.substr(dash + 1));
  window->end_s = std::numeric_limits<double>::infinity();
  for (std::size_t i = 1; i < pairs.size(); ++i) {
    const Pair& p = pairs[i];
    if (p.key == "from") {
      window->begin_s = parse_duration_s(clause, p.value);
    } else if (p.key == "until") {
      window->end_s = parse_duration_s(clause, p.value);
    } else if (p.key == "bw") {
      window->bandwidth_scale = parse_number(clause, "bw", p.value, 1e-6, 1.0);
    } else if (p.key == "lat") {
      window->extra_latency_us = parse_duration_us(clause, p.value);
    } else {
      bad(clause, "unknown key '" + p.key + "'");
    }
  }
  if (!(window->end_s > window->begin_s)) {
    bad(clause, "window is empty (until <= from)");
  }
}

void parse_straggler(const std::string& clause, const std::vector<Pair>& pairs,
                     Straggler* window) {
  window->rank = parse_rank(clause, pairs[0].value);
  window->end_s = std::numeric_limits<double>::infinity();
  for (std::size_t i = 1; i < pairs.size(); ++i) {
    const Pair& p = pairs[i];
    if (p.key == "from") {
      window->begin_s = parse_duration_s(clause, p.value);
    } else if (p.key == "until") {
      window->end_s = parse_duration_s(clause, p.value);
    } else if (p.key == "cpu") {
      window->cpu_scale = parse_number(clause, "cpu", p.value, 1e-6, 1.0);
    } else {
      bad(clause, "unknown key '" + p.key + "'");
    }
  }
  if (!(window->end_s > window->begin_s)) {
    bad(clause, "window is empty (until <= from)");
  }
}

std::string rank_repr(trace::Rank rank) {
  return rank < 0 ? "any" : std::to_string(rank);
}

/// %.17g: shortest round-trippable form is unnecessary — exactness is, and
/// 17 significant digits round-trip every double.
std::string num_repr(double v) { return strprintf("%.17g", v); }

std::string duration_repr(double seconds) {
  return num_repr(seconds) + "s";
}

std::string duration_us_repr(double us) { return num_repr(us) + "us"; }

}  // namespace

FaultModel parse_spec(const std::string& spec) {
  FaultModel model;
  for (const std::string& raw : split(spec, ';')) {
    const std::string clause(trim(raw));
    if (clause.empty()) continue;
    const std::vector<Pair> pairs = parse_pairs(clause);
    const std::string& kind = pairs[0].key;
    if (kind == "seed") {
      const auto parsed = parse_u64(pairs[0].value);
      if (!parsed || pairs.size() != 1) bad(clause, "expected seed=<u64>");
      model.seed = *parsed;
    } else if (kind == "loss") {
      parse_loss(clause, pairs, &model.loss);
    } else if (kind == "noise") {
      parse_noise(clause, pairs, &model.noise);
    } else if (kind == "degrade") {
      LinkDegradation window;
      parse_degrade(clause, pairs, &window);
      model.degradations.push_back(window);
    } else if (kind == "straggler") {
      Straggler window;
      parse_straggler(clause, pairs, &window);
      model.stragglers.push_back(window);
    } else {
      bad(clause,
          "unknown mechanism (expected seed, loss, noise, degrade or "
          "straggler)");
    }
  }
  return model;
}

std::string to_spec(const FaultModel& model) {
  if (!model.enabled()) return "";
  std::vector<std::string> clauses;
  clauses.push_back("seed=" + std::to_string(model.seed));
  if (model.loss.probability > 0.0) {
    clauses.push_back(strprintf(
        "loss=%s,timeout=%s,backoff=%s,retries=%lld",
        num_repr(model.loss.probability).c_str(),
        duration_us_repr(model.loss.timeout_us).c_str(),
        num_repr(model.loss.backoff).c_str(),
        static_cast<long long>(model.loss.max_retries)));
  }
  if (model.noise.magnitude > 0.0) {
    clauses.push_back(strprintf("noise=%s,prob=%s",
                                num_repr(model.noise.magnitude).c_str(),
                                num_repr(model.noise.probability).c_str()));
  }
  for (const LinkDegradation& w : model.degradations) {
    clauses.push_back(strprintf(
        "degrade=%s-%s,from=%s,until=%s,bw=%s,lat=%s",
        rank_repr(w.src).c_str(), rank_repr(w.dst).c_str(),
        duration_repr(w.begin_s).c_str(), duration_repr(w.end_s).c_str(),
        num_repr(w.bandwidth_scale).c_str(),
        duration_us_repr(w.extra_latency_us).c_str()));
  }
  for (const Straggler& w : model.stragglers) {
    clauses.push_back(strprintf(
        "straggler=%s,from=%s,until=%s,cpu=%s", rank_repr(w.rank).c_str(),
        duration_repr(w.begin_s).c_str(), duration_repr(w.end_s).c_str(),
        num_repr(w.cpu_scale).c_str()));
  }
  return join(clauses, ";");
}

}  // namespace osim::faults
