// Fault & perturbation model for the replay engine.
//
// The paper evaluates overlap on an ideal, failure-free machine; this model
// lets a study ask how robust those conclusions are when the machine
// misbehaves. Four composable mechanism families, all derived from one
// seed (see injector.hpp for the reproducibility contract):
//
//   message loss      eager messages are dropped with probability p and
//                     retransmitted after a timeout with exponential
//                     backoff; rendezvous handshakes are re-issued the same
//                     way. After max_retries consecutive drops the message
//                     counts as a hard stall and is delivered after the
//                     full capped backoff, so the simulation always
//                     terminates.
//   link degradation  time windows during which a node pair's effective
//                     bandwidth is scaled and/or its latency inflated,
//                     applied inside the network models' transfer timing.
//   compute noise     per-burst multiplicative OS-noise perturbation,
//                     generalizing the ad-hoc whatif_straggler bench.
//   stragglers        a rank's effective MIPS rate scaled within a window
//                     (brownout).
//
// A default-constructed FaultModel is inert: enabled() is false, the replay
// engine never instantiates an injector, and results stay bit-identical to
// a build without this library.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/record.hpp"

namespace osim::faults {

/// Message loss + retransmission. probability == 0 disables the mechanism.
struct MessageLoss {
  double probability = 0.0;  // per-attempt drop probability in [0, 1]
  double timeout_us = 100.0;  // first retransmission timeout
  double backoff = 2.0;       // timeout multiplier per consecutive drop
  std::int64_t max_retries = 6;  // drops before the message hard-stalls
};

/// Per-burst multiplicative compute perturbation: with `probability`, a
/// burst is stretched by a factor uniform in [1, 1 + magnitude).
struct ComputeNoise {
  double magnitude = 0.0;  // 0 disables the mechanism
  double probability = 1.0;
};

/// Bandwidth/latency degradation window for a node pair. src/dst == -1
/// matches any rank (the spec grammar's "any").
struct LinkDegradation {
  trace::Rank src = -1;
  trace::Rank dst = -1;
  double begin_s = 0.0;
  double end_s = 0.0;          // exclusive; <= begin disables the window
  double bandwidth_scale = 1.0;  // effective bw = bw * scale, in (0, 1]
  double extra_latency_us = 0.0;
};

/// CPU brownout window: `rank`'s MIPS rate is multiplied by cpu_scale for
/// bursts starting inside [begin_s, end_s). rank == -1 matches any rank.
struct Straggler {
  trace::Rank rank = -1;
  double begin_s = 0.0;
  double end_s = 0.0;
  double cpu_scale = 1.0;  // in (0, 1]; < 1 slows the rank down
};

struct FaultModel {
  std::uint64_t seed = 1;
  MessageLoss loss;
  ComputeNoise noise;
  std::vector<LinkDegradation> degradations;
  std::vector<Straggler> stragglers;

  /// True when any mechanism can fire. Everything downstream (injector
  /// construction, fingerprint hashing, report sections) is gated on this,
  /// which is what keeps a faults-off replay bit-identical to pre-fault
  /// builds.
  bool enabled() const {
    return loss.probability > 0.0 || noise.magnitude > 0.0 ||
           !degradations.empty() || !stragglers.empty();
  }
};

/// Event counters accumulated by the injector during one replay. Carried on
/// every SimResult (enabled == false for fault-free runs) so studies can
/// report fault activity without turning on full metrics collection.
struct Counts {
  bool enabled = false;
  std::uint64_t seed = 0;
  std::uint64_t messages_dropped = 0;   // individual dropped attempts
  std::uint64_t retransmits = 0;        // eager re-sends after a drop
  std::uint64_t handshake_reissues = 0; // rendezvous re-handshakes
  std::uint64_t hard_stalls = 0;        // messages that exhausted retries
  std::uint64_t degraded_transfers = 0; // transfers inside a degradation window
  std::uint64_t perturbed_bursts = 0;   // compute bursts hit by noise
  std::uint64_t straggled_bursts = 0;   // bursts scaled by a straggler window
  double injected_delay_s = 0.0;        // total retransmission delay
  double injected_compute_s = 0.0;      // total extra compute time

  friend bool operator==(const Counts&, const Counts&) = default;
};

}  // namespace osim::faults
