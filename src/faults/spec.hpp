// Textual fault-model spec — the `osim_replay --faults <spec>` grammar.
//
// A spec is a ';'-separated list of clauses; each clause is a ','-separated
// list of key=value pairs whose first key names the mechanism:
//
//   seed=<u64>                              injector seed (default 1)
//   loss=<p>[,timeout=<t>][,backoff=<f>][,retries=<n>]
//   noise=<magnitude>[,prob=<p>]
//   degrade=<src>-<dst>[,from=<t>][,until=<t>][,bw=<f>][,lat=<t>]
//   straggler=<rank>[,from=<t>][,until=<t>][,cpu=<f>]
//
// <t> is a duration with an optional unit suffix: s, ms or us (default s).
// <src>/<dst>/<rank> are rank numbers or the keyword `any` (kept a word, not
// `*`, so specs survive unquoted shell use). `degrade` and `straggler` may
// repeat; windows that overlap compose multiplicatively. Example:
//
//   seed=7;loss=0.02,timeout=50us;degrade=any-any,until=0.5s,bw=0.25
//
// to_spec() renders the canonical form: parse_spec(to_spec(m)) == m, and the
// canonical string is what the ReplayContext fingerprint hashes, so two ways
// of writing the same model share a cache entry.
#pragma once

#include <string>

#include "faults/model.hpp"

namespace osim::faults {

/// Parses the grammar above. Throws osim::Error naming the offending clause
/// on malformed input.
FaultModel parse_spec(const std::string& spec);

/// Canonical textual form (stable across writes; empty for an inert model).
std::string to_spec(const FaultModel& model);

}  // namespace osim::faults
