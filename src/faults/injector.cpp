#include "faults/injector.hpp"

#include <utility>

#include "common/expect.hpp"
#include "common/rng.hpp"

namespace osim::faults {

namespace {

// Mechanism stream selectors for per-decision seeding. Distinct constants
// keep the loss draws of message k statistically independent from the noise
// draws of burst k on the same rank.
constexpr std::uint64_t kStreamLoss = 0x6c6f7373u;   // "loss"
constexpr std::uint64_t kStreamNoise = 0x6e6f6973u;  // "nois"

std::uint64_t mix(std::uint64_t x) {
  // SplitMix64 finalizer: full-avalanche, so consecutive sequence numbers
  // yield unrelated seeds.
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Decision-scoped Rng: seeded purely by the identity of the decision.
Rng decision_rng(std::uint64_t seed, std::uint64_t stream, std::uint64_t a,
                 std::uint64_t b) {
  std::uint64_t h = mix(seed ^ mix(stream));
  h = mix(h ^ mix(a));
  h = mix(h ^ mix(b));
  return Rng(h);
}

}  // namespace

FaultInjector::FaultInjector(FaultModel model) : model_(std::move(model)) {
  OSIM_CHECK_MSG(model_.loss.probability >= 0.0 &&
                     model_.loss.probability <= 1.0,
                 "loss probability must be in [0, 1]");
  OSIM_CHECK_MSG(model_.loss.backoff >= 1.0, "loss backoff must be >= 1");
  OSIM_CHECK_MSG(model_.loss.timeout_us >= 0.0,
                 "loss timeout must be non-negative");
  OSIM_CHECK_MSG(model_.loss.max_retries >= 0,
                 "loss max_retries must be non-negative");
  OSIM_CHECK_MSG(model_.noise.magnitude >= 0.0,
                 "noise magnitude must be non-negative");
  for (const LinkDegradation& w : model_.degradations) {
    OSIM_CHECK_MSG(w.bandwidth_scale > 0.0 && w.bandwidth_scale <= 1.0,
                   "degradation bandwidth scale must be in (0, 1]");
    OSIM_CHECK_MSG(w.extra_latency_us >= 0.0,
                   "degradation extra latency must be non-negative");
  }
  for (const Straggler& w : model_.stragglers) {
    OSIM_CHECK_MSG(w.cpu_scale > 0.0 && w.cpu_scale <= 1.0,
                   "straggler cpu scale must be in (0, 1]");
  }
  counts_.enabled = model_.enabled();
  counts_.seed = model_.seed;
}

double FaultInjector::perturb_compute(trace::Rank rank,
                                      std::uint64_t burst_seq, double begin_s,
                                      double duration_s) {
  double perturbed = duration_s;
  double cpu_scale = 1.0;
  for (const Straggler& w : model_.stragglers) {
    if ((w.rank < 0 || w.rank == rank) && begin_s >= w.begin_s &&
        begin_s < w.end_s) {
      cpu_scale *= w.cpu_scale;
    }
  }
  if (cpu_scale < 1.0) {
    perturbed /= cpu_scale;
    ++counts_.straggled_bursts;
  }
  if (model_.noise.magnitude > 0.0) {
    Rng rng = decision_rng(model_.seed, kStreamNoise,
                           static_cast<std::uint64_t>(rank), burst_seq);
    if (rng.uniform() < model_.noise.probability) {
      perturbed *= 1.0 + model_.noise.magnitude * rng.uniform();
      ++counts_.perturbed_bursts;
    }
  }
  counts_.injected_compute_s += perturbed - duration_s;
  return perturbed;
}

double FaultInjector::loss_delay_s(trace::Rank src, std::uint64_t msg_seq,
                                   bool eager) {
  if (model_.loss.probability <= 0.0) return 0.0;
  Rng rng = decision_rng(model_.seed, kStreamLoss,
                         static_cast<std::uint64_t>(src), msg_seq);
  double delay = 0.0;
  double timeout_s = model_.loss.timeout_us * 1e-6;
  std::int64_t drops = 0;
  while (drops <= model_.loss.max_retries) {
    if (rng.uniform() >= model_.loss.probability) break;  // attempt delivered
    ++drops;
    ++counts_.messages_dropped;
    delay += timeout_s;
    timeout_s *= model_.loss.backoff;
    if (drops <= model_.loss.max_retries) {
      // The next attempt is a re-send of the payload (eager) or a fresh
      // handshake (rendezvous).
      if (eager) {
        ++counts_.retransmits;
      } else {
        ++counts_.handshake_reissues;
      }
    }
  }
  if (drops > model_.loss.max_retries) {
    // Retries exhausted: record a hard stall and deliver after the full
    // capped backoff, so a lossy replay still terminates.
    ++counts_.hard_stalls;
  }
  counts_.injected_delay_s += delay;
  return delay;
}

FaultInjector::LinkEffect FaultInjector::link_effect(trace::Rank src,
                                                     trace::Rank dst,
                                                     double time_s,
                                                     bool count) {
  LinkEffect effect;
  for (const LinkDegradation& w : model_.degradations) {
    if ((w.src < 0 || w.src == src) && (w.dst < 0 || w.dst == dst) &&
        time_s >= w.begin_s && time_s < w.end_s) {
      effect.bandwidth_scale *= w.bandwidth_scale;
      effect.extra_latency_s += w.extra_latency_us * 1e-6;
    }
  }
  if (count && (effect.bandwidth_scale < 1.0 || effect.extra_latency_s > 0.0)) {
    ++counts_.degraded_transfers;
  }
  return effect;
}

}  // namespace osim::faults
