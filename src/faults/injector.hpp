// FaultInjector — the runtime side of the fault model.
//
// Reproducibility contract: every random decision is drawn from its own
// Rng seeded by hashing (model seed, mechanism stream, rank, per-rank
// sequence number). The draw therefore depends only on *which* decision is
// being made, never on simulated-time event order, on how many other
// mechanisms fired first, or on how many replays share a Study pool — so a
// given (trace, platform, options) replays bit-identically for a fixed
// seed, independent of --jobs, and two seeds give independent fault
// patterns.
//
// The injector accumulates Counts as it fires; the replay engine copies
// them onto the SimResult at the end of the run.
#pragma once

#include <cstdint>

#include "faults/model.hpp"

namespace osim::faults {

class FaultInjector {
 public:
  explicit FaultInjector(FaultModel model);

  const FaultModel& model() const { return model_; }
  const Counts& counts() const { return counts_; }

  /// Perturbed duration of one compute burst (straggler windows scale the
  /// rank's MIPS rate; noise stretches the burst multiplicatively). Both
  /// effects are sampled once, at the burst's start time. `burst_seq` is
  /// the rank's running burst counter.
  double perturb_compute(trace::Rank rank, std::uint64_t burst_seq,
                         double begin_s, double duration_s);

  /// Injected delay, in seconds, before message number `msg_seq` from `src`
  /// enters the network: the summed retransmission backoff over the
  /// message's consecutive dropped attempts (0 for an undropped message).
  /// `eager` selects which counter the re-sends land in (retransmits vs
  /// handshake reissues). A message that exhausts max_retries counts as a
  /// hard stall and is delivered after the full capped backoff — dropped
  /// attempts delay the message, they never occupy the wire.
  double loss_delay_s(trace::Rank src, std::uint64_t msg_seq, bool eager);

  /// Composed link degradation for a transfer between `src` and `dst`
  /// sampled at `time_s`. Overlapping windows compose: bandwidth scales
  /// multiply, extra latencies add. `count` guards double-counting when a
  /// network model samples the effect at more than one point.
  struct LinkEffect {
    double bandwidth_scale = 1.0;
    double extra_latency_s = 0.0;
  };
  LinkEffect link_effect(trace::Rank src, trace::Rank dst, double time_s,
                         bool count = true);

  /// True when any degradation window exists (lets the network models skip
  /// the sampling call entirely on undegraded configurations).
  bool has_link_faults() const { return !model_.degradations.empty(); }

 private:
  FaultModel model_;
  Counts counts_;
};

}  // namespace osim::faults
