// The analytical baseline the paper positions itself against: Sancho,
// Barker, Kerbyson & Davis, "Quantifying the Potential Benefit of
// Overlapping Communication and Computation in Large-Scale Scientific
// Applications" (SC'06) — the paper's reference [23].
//
// That work models an application as one iterative loop with a computation
// time and a communication time per iteration: the non-overlapped time is
// their sum, and perfect overlap can at best hide the smaller of the two
// under the larger:
//
//   T_original ≈ T_comp + T_comm
//   T_overlap  ≥ max(T_comp, T_comm)
//   speedup    ≤ (T_comp + T_comm) / max(T_comp, T_comm)  ≤ 2
//
// (the bound of 2 is the classical Leu/Agrawal/Mauney result the paper also
// cites). The simulation framework exists precisely because this model
// misses "more delicate application properties": bench/baseline_sancho
// shows Sweep3D's simulated ideal-pattern speedup exceeding the analytic
// bound — chunking creates cross-rank pipeline parallelism the single-loop
// model cannot express — while bandwidth-insensitive applications fall far
// short of it.
#pragma once

#include "dimemas/platform.hpp"
#include "pipeline/context.hpp"
#include "trace/trace.hpp"

namespace osim::analysis {

struct SanchoEstimate {
  /// Per the model, taken on the critical rank (max of comp + comm).
  double t_compute_s = 0.0;
  double t_comm_s = 0.0;
  double t_original_est = 0.0;   // T_comp + T_comm
  double t_overlap_bound = 0.0;  // max(T_comp, T_comm)

  /// The analytic upper bound on the overlap speedup (at most 2).
  double speedup_bound() const {
    return t_overlap_bound > 0.0 ? t_original_est / t_overlap_bound : 1.0;
  }
};

/// Computes the model parameters from a (non-overlapped) context: per-rank
/// computation time from the instruction counts, per-rank communication
/// time from the linear model (bytes/bandwidth + messages * latency) after
/// collective expansion. No contention, no dependencies — exactly the
/// level of detail of the analytic model. Purely analytic: no replay, so
/// no Study involved.
SanchoEstimate sancho_estimate(const pipeline::ReplayContext& original);

}  // namespace osim::analysis
