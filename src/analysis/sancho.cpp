#include "analysis/sancho.hpp"

#include <algorithm>

#include "common/expect.hpp"
#include "dimemas/collectives.hpp"
#include "trace/summary.hpp"

namespace osim::analysis {

namespace {

SanchoEstimate estimate_from(const trace::Trace& original,
                             const dimemas::Platform& platform) {
  // The analytic model sees collectives as their point-to-point volume.
  const trace::Trace expanded =
      dimemas::has_collectives(original)
          ? dimemas::expand_collectives(original)
          : original;
  const trace::TraceSummary summary = trace::summarize(expanded);

  SanchoEstimate estimate;
  double worst = 0.0;
  for (std::size_t r = 0; r < summary.ranks.size(); ++r) {
    const trace::RankSummary& rank = summary.ranks[r];
    const double comp =
        static_cast<double>(rank.instructions) /
        (summary.mips * 1.0e6 * platform.relative_cpu_speed);
    const double comm =
        static_cast<double>(rank.bytes_sent) / platform.bandwidth_Bps() +
        static_cast<double>(rank.sends) *
            (platform.latency_s() + platform.per_message_overhead_s());
    if (comp + comm > worst) {
      worst = comp + comm;
      estimate.t_compute_s = comp;
      estimate.t_comm_s = comm;
    }
  }
  estimate.t_original_est = estimate.t_compute_s + estimate.t_comm_s;
  estimate.t_overlap_bound =
      std::max(estimate.t_compute_s, estimate.t_comm_s);
  return estimate;
}

}  // namespace

SanchoEstimate sancho_estimate(const pipeline::ReplayContext& original) {
  // The context validated the trace at construction.
  return estimate_from(original.trace(), original.platform());
}

}  // namespace osim::analysis
