#include "analysis/critical_path.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "common/expect.hpp"
#include "common/strings.hpp"

namespace osim::analysis {

using dimemas::RankState;
using dimemas::SimResult;
using dimemas::StateInterval;

std::size_t CriticalPath::ranks_visited() const {
  std::set<trace::Rank> ranks;
  for (const CriticalSegment& segment : segments) ranks.insert(segment.rank);
  return ranks.size();
}

namespace {

/// Index of the last interval on `timeline` that begins strictly before
/// `t`, or npos.
std::size_t interval_before(const std::vector<StateInterval>& timeline,
                            double t) {
  // Timelines are chronological; binary search on begin.
  std::size_t lo = 0;
  std::size_t hi = timeline.size();
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (timeline[mid].begin < t) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo == 0 ? static_cast<std::size_t>(-1) : lo - 1;
}

}  // namespace

CriticalPath critical_path(const SimResult& result) {
  OSIM_CHECK_MSG(!result.timelines.empty(),
                 "critical_path requires recorded timelines");
  CriticalPath path;
  path.makespan = result.makespan;
  if (result.makespan <= 0.0) return path;

  // Start at the rank that finishes last.
  trace::Rank rank = 0;
  for (std::size_t r = 0; r < result.rank_stats.size(); ++r) {
    if (result.rank_stats[r].finish_time >
        result.rank_stats[static_cast<std::size_t>(rank)].finish_time) {
      rank = static_cast<trace::Rank>(r);
    }
  }

  double t = result.rank_stats[static_cast<std::size_t>(rank)].finish_time;
  constexpr double kEps = 1e-15;
  // Guard: strictly decreasing t terminates; cap iterations defensively.
  std::size_t guard = 0;
  const std::size_t max_segments = 1'000'000;

  while (t > kEps && ++guard < max_segments) {
    const auto& timeline = result.timelines[static_cast<std::size_t>(rank)];
    const std::size_t idx = interval_before(timeline, t);
    if (idx == static_cast<std::size_t>(-1)) {
      // Nothing before t on this rank: the head of the path (rank start).
      path.segments.push_back(CriticalSegment{rank, 0.0, t, false});
      path.compute_s += t;
      break;
    }
    const StateInterval& interval = timeline[idx];
    const double span_end = std::min(t, interval.end);
    if (span_end < t) {
      // Gap between intervals (instantaneous records or idle): attribute
      // to the local rank and continue from the gap's lower edge.
      path.segments.push_back(CriticalSegment{rank, span_end, t, false});
      path.compute_s += t - span_end;
      t = span_end;
      continue;
    }
    const bool is_blocked = interval.state != RankState::kCompute;
    if (is_blocked && interval.cause_rank >= 0 &&
        interval.cause_time < t) {
      // Communication segment: jump to the remote constraint.
      path.segments.push_back(
          CriticalSegment{rank, interval.cause_time, t, true});
      path.communication_s += t - interval.cause_time;
      rank = interval.cause_rank;
      t = interval.cause_time;
    } else {
      // Compute (or locally-resolved block, e.g. pure wire time).
      const double begin = std::min(interval.begin, t);
      path.segments.push_back(
          CriticalSegment{rank, begin, t, is_blocked});
      (is_blocked ? path.communication_s : path.compute_s) += t - begin;
      t = begin;
    }
  }

  std::reverse(path.segments.begin(), path.segments.end());
  return path;
}

std::string render(const CriticalPath& path) {
  std::ostringstream os;
  os << strprintf(
      "critical path: %s total = %s compute (%.1f%%) + %s communication "
      "(%.1f%%), %zu segments across %zu ranks\n",
      format_seconds(path.makespan).c_str(),
      format_seconds(path.compute_s).c_str(),
      100.0 * (path.makespan > 0 ? path.compute_s / path.makespan : 0.0),
      format_seconds(path.communication_s).c_str(),
      100.0 * path.communication_share(), path.segments.size(),
      path.ranks_visited());
  // Per-rank share of the path.
  std::map<trace::Rank, double> per_rank;
  for (const CriticalSegment& segment : path.segments) {
    per_rank[segment.rank] += segment.end - segment.begin;
  }
  os << "per-rank shares:";
  for (const auto& [rank, seconds] : per_rank) {
    os << strprintf(" r%d=%.1f%%", rank,
                    100.0 * seconds / path.makespan);
  }
  os << "\n";
  return os.str();
}

}  // namespace osim::analysis
