// Critical-path analysis of a replayed execution: the backward walk from
// the last-finishing rank through the causal chain of compute segments and
// communication constraints that determined the makespan.
//
// This is the quantitative version of what an analyst does by eye on the
// Figure 4 timelines: it answers *why* the run took as long as it did —
// how much of the critical path is computation, how much is waiting on
// transfers, and which ranks carry it. Comparing the original and
// overlapped executions shows overlap removing transfer segments from the
// path.
//
// Causality approximation: blocked intervals carry the remote constraint
// that released them (sender's send call / receiver's receive post); time
// a message spent queueing for network resources is attributed to the
// communication segment rather than chased through the network schedule.
#pragma once

#include <string>
#include <vector>

#include "dimemas/result.hpp"

namespace osim::analysis {

struct CriticalSegment {
  trace::Rank rank = 0;
  double begin = 0.0;
  double end = 0.0;
  /// True for blocked spans resolved by a remote constraint (communication
  /// on the critical path); false for compute / local spans.
  bool communication = false;
};

struct CriticalPath {
  std::vector<CriticalSegment> segments;  // in forward time order
  double makespan = 0.0;
  double compute_s = 0.0;        // critical-path time in computation
  double communication_s = 0.0;  // critical-path time in communication

  double communication_share() const {
    return makespan > 0.0 ? communication_s / makespan : 0.0;
  }
  /// Number of distinct ranks the path visits.
  std::size_t ranks_visited() const;
};

/// Walks the critical path. `result` must have been produced with
/// ReplayOptions::record_timeline. The segment spans telescope: they
/// partition [0, makespan] exactly.
CriticalPath critical_path(const dimemas::SimResult& result);

/// Short human-readable rendering (per-rank shares + composition).
std::string render(const CriticalPath& path);

}  // namespace osim::analysis
