#include "analysis/bandwidth.hpp"

#include <cmath>

#include "common/expect.hpp"

namespace osim::analysis {

double time_at_bandwidth(pipeline::Study& study,
                         const pipeline::ReplayContext& context, double mbps) {
  OSIM_CHECK(mbps > 0.0);
  return study.makespan(context.with_bandwidth(mbps));
}

std::optional<double> min_bandwidth_for(
    pipeline::Study& study, const pipeline::ReplayContext& context,
    double target_time_s, const BandwidthSearchOptions& options) {
  OSIM_CHECK(options.low_MBps > 0.0 &&
             options.high_MBps > options.low_MBps);
  if (time_at_bandwidth(study, context, options.high_MBps) > target_time_s) {
    return std::nullopt;  // not achievable at any bandwidth within the cap
  }
  if (time_at_bandwidth(study, context, options.low_MBps) <= target_time_s) {
    return options.low_MBps;  // already fast enough at the lower bracket
  }
  // Bisect on a log scale: replay time is non-increasing in bandwidth.
  double lo = options.low_MBps;   // too slow
  double hi = options.high_MBps;  // fast enough
  while (hi / lo > 1.0 + options.rel_tolerance) {
    const double mid = std::sqrt(lo * hi);
    if (time_at_bandwidth(study, context, mid) <= target_time_s) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

std::optional<double> relaxed_bandwidth(
    pipeline::Study& study, const pipeline::ReplayContext& original,
    const pipeline::ReplayContext& overlapped,
    const BandwidthSearchOptions& options) {
  const double nominal = original.platform().bandwidth_MBps;
  const double target = time_at_bandwidth(study, original, nominal);
  BandwidthSearchOptions search = options;
  // The overlapped run at nominal bandwidth is at least as fast as the
  // original, so the answer lies at or below the nominal bandwidth.
  search.high_MBps = overlapped.platform().bandwidth_MBps;
  return min_bandwidth_for(study, overlapped, target, search);
}

std::optional<double> equivalent_bandwidth(
    pipeline::Study& study, const pipeline::ReplayContext& original,
    const pipeline::ReplayContext& overlapped,
    const BandwidthSearchOptions& options) {
  const double nominal = overlapped.platform().bandwidth_MBps;
  const double target = time_at_bandwidth(study, overlapped, nominal);
  return min_bandwidth_for(study, original, target, options);
}

}  // namespace osim::analysis
