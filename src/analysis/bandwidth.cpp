#include "analysis/bandwidth.hpp"

#include <cmath>

#include "common/expect.hpp"
#include "dimemas/replay.hpp"

namespace osim::analysis {

double time_at_bandwidth(const trace::Trace& t,
                         const dimemas::Platform& platform, double mbps) {
  OSIM_CHECK(mbps > 0.0);
  dimemas::Platform p = platform;
  p.bandwidth_MBps = mbps;
  dimemas::ReplayOptions options;
  options.validate_input = false;  // caller validates once; searches re-replay
  return dimemas::replay(t, p, options).makespan;
}

std::optional<double> min_bandwidth_for(
    const trace::Trace& t, const dimemas::Platform& platform,
    double target_time_s, const BandwidthSearchOptions& options) {
  OSIM_CHECK(options.low_MBps > 0.0 &&
             options.high_MBps > options.low_MBps);
  trace::validate(t);
  if (time_at_bandwidth(t, platform, options.high_MBps) > target_time_s) {
    return std::nullopt;  // not achievable at any bandwidth within the cap
  }
  if (time_at_bandwidth(t, platform, options.low_MBps) <= target_time_s) {
    return options.low_MBps;  // already fast enough at the lower bracket
  }
  // Bisect on a log scale: replay time is non-increasing in bandwidth.
  double lo = options.low_MBps;   // too slow
  double hi = options.high_MBps;  // fast enough
  while (hi / lo > 1.0 + options.rel_tolerance) {
    const double mid = std::sqrt(lo * hi);
    if (time_at_bandwidth(t, platform, mid) <= target_time_s) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

std::optional<double> relaxed_bandwidth(
    const trace::Trace& original, const trace::Trace& overlapped,
    const dimemas::Platform& platform,
    const BandwidthSearchOptions& options) {
  const double target =
      time_at_bandwidth(original, platform, platform.bandwidth_MBps);
  BandwidthSearchOptions search = options;
  // The overlapped run at nominal bandwidth is at least as fast as the
  // original, so the answer lies at or below the nominal bandwidth.
  search.high_MBps = platform.bandwidth_MBps;
  return min_bandwidth_for(overlapped, platform, target, search);
}

std::optional<double> equivalent_bandwidth(
    const trace::Trace& original, const trace::Trace& overlapped,
    const dimemas::Platform& platform,
    const BandwidthSearchOptions& options) {
  const double target =
      time_at_bandwidth(overlapped, platform, platform.bandwidth_MBps);
  return min_bandwidth_for(original, platform, target, options);
}

}  // namespace osim::analysis
