#include "analysis/whatif.hpp"

#include "common/expect.hpp"
#include "dimemas/replay.hpp"

namespace osim::analysis {

namespace {

constexpr double kInfiniteBandwidthMBps = 1.0e9;  // 1 PB/s: effectively free

double run(const trace::Trace& t, const dimemas::Platform& p) {
  dimemas::ReplayOptions options;
  options.validate_input = false;
  return dimemas::replay(t, p, options).makespan;
}

}  // namespace

WhatIfBreakdown whatif_network(const trace::Trace& trace,
                               const dimemas::Platform& platform) {
  trace::validate(trace);
  WhatIfBreakdown breakdown;
  breakdown.t_nominal = run(trace, platform);

  dimemas::Platform zero_latency = platform;
  zero_latency.latency_us = 0.0;
  zero_latency.per_message_overhead_us = 0.0;
  breakdown.t_zero_latency = run(trace, zero_latency);

  dimemas::Platform infinite_bw = platform;
  infinite_bw.bandwidth_MBps = kInfiniteBandwidthMBps;
  breakdown.t_infinite_bandwidth = run(trace, infinite_bw);

  dimemas::Platform no_contention = platform;
  no_contention.num_buses = 0;
  no_contention.input_ports = trace.num_ranks;
  no_contention.output_ports = trace.num_ranks;
  no_contention.fabric_capacity_links = 0.0;
  breakdown.t_no_contention = run(trace, no_contention);

  dimemas::Platform ideal = no_contention;
  ideal.latency_us = 0.0;
  ideal.per_message_overhead_us = 0.0;
  ideal.bandwidth_MBps = kInfiniteBandwidthMBps;
  breakdown.t_ideal_network = run(trace, ideal);

  OSIM_CHECK(breakdown.t_nominal > 0.0);
  return breakdown;
}

}  // namespace osim::analysis
