#include "analysis/whatif.hpp"

#include <vector>

#include "common/expect.hpp"

namespace osim::analysis {

namespace {

constexpr double kInfiniteBandwidthMBps = 1.0e9;  // 1 PB/s: effectively free

}  // namespace

WhatIfBreakdown whatif_network(pipeline::Study& study,
                               const pipeline::ReplayContext& context) {
  const dimemas::Platform& platform = context.platform();
  const std::int32_t num_ranks = context.trace().num_ranks;

  dimemas::Platform zero_latency = platform;
  zero_latency.latency_us = 0.0;
  zero_latency.per_message_overhead_us = 0.0;

  dimemas::Platform infinite_bw = platform;
  infinite_bw.bandwidth_MBps = kInfiniteBandwidthMBps;

  dimemas::Platform no_contention = platform;
  no_contention.num_buses = 0;
  no_contention.input_ports = num_ranks;
  no_contention.output_ports = num_ranks;
  no_contention.fabric_capacity_links = 0.0;

  dimemas::Platform ideal = no_contention;
  ideal.latency_us = 0.0;
  ideal.per_message_overhead_us = 0.0;
  ideal.bandwidth_MBps = kInfiniteBandwidthMBps;

  const std::vector<pipeline::ReplayContext> variants = {
      context,
      context.with_platform(zero_latency),
      context.with_platform(infinite_bw),
      context.with_platform(no_contention),
      context.with_platform(ideal),
  };
  const std::vector<double> times = study.map(
      variants,
      [&study](const pipeline::ReplayContext& c) { return study.makespan(c); });

  WhatIfBreakdown breakdown;
  breakdown.t_nominal = times[0];
  breakdown.t_zero_latency = times[1];
  breakdown.t_infinite_bandwidth = times[2];
  breakdown.t_no_contention = times[3];
  breakdown.t_ideal_network = times[4];
  OSIM_CHECK(breakdown.t_nominal > 0.0);
  return breakdown;
}

}  // namespace osim::analysis
