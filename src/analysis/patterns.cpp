#include "analysis/patterns.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "common/expect.hpp"
#include "common/strings.hpp"

namespace osim::analysis {

using trace::AnnEvent;
using trace::kNeverAccessed;

namespace {

bool is_send(const AnnEvent& ev) {
  return ev.kind == AnnEvent::Kind::kSend ||
         ev.kind == AnnEvent::Kind::kIsend;
}

bool is_recv(const AnnEvent& ev) {
  return ev.kind == AnnEvent::Kind::kRecv ||
         ev.kind == AnnEvent::Kind::kIrecv;
}

}  // namespace

ProductionStats production_stats(const trace::AnnotatedTrace& trace) {
  ProductionStats stats;
  double first = 0.0;
  double quarter = 0.0;
  double half = 0.0;
  double whole = 0.0;
  double unchunkable_whole = 0.0;
  for (const auto& rank : trace.ranks) {
    for (const AnnEvent& ev : rank.events) {
      if (!is_send(ev) || ev.elem_last_store.empty()) continue;
      const std::uint64_t length = ev.vclock - ev.interval_start;
      if (length == 0) continue;  // degenerate: no computation in between
      if (!ev.chunkable) {
        // One-element (or otherwise unchunkable) message: record only when
        // its single final value appears.
        std::uint64_t last = ev.interval_start;
        for (const std::uint64_t t : ev.elem_last_store) {
          if (t != kNeverAccessed) last = std::max(last, t);
        }
        unchunkable_whole += static_cast<double>(last - ev.interval_start) /
                             static_cast<double>(length);
        stats.unchunkable_messages++;
        continue;
      }
      // Normalized last-store offsets; never-stored elements are final from
      // the interval start (offset 0).
      std::vector<double> offsets;
      offsets.reserve(ev.elem_last_store.size());
      for (const std::uint64_t t : ev.elem_last_store) {
        if (t == kNeverAccessed || t <= ev.interval_start) {
          offsets.push_back(0.0);
        } else {
          offsets.push_back(static_cast<double>(t - ev.interval_start) /
                            static_cast<double>(length));
        }
      }
      std::sort(offsets.begin(), offsets.end());
      const std::size_t n = offsets.size();
      auto kth = [&](double frac) {
        // Time when ceil(frac * n) elements carry their final value.
        std::size_t k = static_cast<std::size_t>(
            frac * static_cast<double>(n) + 0.999999);
        if (k == 0) k = 1;
        return offsets[std::min(k, n) - 1];
      };
      first += offsets.front();
      quarter += kth(0.25);
      half += kth(0.5);
      whole += offsets.back();
      stats.messages++;
    }
  }
  if (stats.messages > 0) {
    const double m = static_cast<double>(stats.messages);
    stats.first_element = first / m;
    stats.quarter = quarter / m;
    stats.half = half / m;
    stats.whole = whole / m;
  }
  if (stats.unchunkable_messages > 0) {
    stats.unchunkable_whole =
        unchunkable_whole / static_cast<double>(stats.unchunkable_messages);
  }
  return stats;
}

ConsumptionStats consumption_stats(const trace::AnnotatedTrace& trace) {
  ConsumptionStats stats;
  double nothing = 0.0;
  double quarter = 0.0;
  double half = 0.0;
  double unchunkable_nothing = 0.0;
  for (const auto& rank : trace.ranks) {
    for (const AnnEvent& ev : rank.events) {
      if (!is_recv(ev) || ev.elem_first_load.empty()) continue;
      const std::uint64_t length = ev.interval_end - ev.vclock;
      if (length == 0) continue;
      const std::size_t n = ev.elem_first_load.size();
      if (!ev.chunkable) {
        std::uint64_t earliest = ev.interval_end;
        for (const std::uint64_t t : ev.elem_first_load) {
          if (t != kNeverAccessed) earliest = std::min(earliest, t);
        }
        unchunkable_nothing += static_cast<double>(earliest - ev.vclock) /
                               static_cast<double>(length);
        stats.unchunkable_messages++;
        continue;
      }
      // Normalized first-load offset of element e (1.0 when never read).
      auto offset = [&](std::size_t e) {
        const std::uint64_t t = ev.elem_first_load[e];
        if (t == kNeverAccessed) return 1.0;
        return static_cast<double>(t - ev.vclock) /
               static_cast<double>(length);
      };
      // Progress possible having received the prefix [0, from): the first
      // moment any element at or beyond `from` is needed.
      auto passable = [&](std::size_t from) {
        double earliest = 1.0;
        for (std::size_t e = from; e < n; ++e) {
          earliest = std::min(earliest, offset(e));
        }
        return earliest;
      };
      nothing += passable(0);
      quarter += passable(n / 4);
      half += passable(n / 2);
      stats.messages++;
    }
  }
  if (stats.messages > 0) {
    const double m = static_cast<double>(stats.messages);
    stats.nothing = nothing / m;
    stats.quarter = quarter / m;
    stats.half = half / m;
  }
  if (stats.unchunkable_messages > 0) {
    stats.unchunkable_nothing =
        unchunkable_nothing /
        static_cast<double>(stats.unchunkable_messages);
  }
  return stats;
}

namespace {

struct Interval {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::uint64_t num_elements = 0;
};

/// The k-th production (or consumption) interval of `buffer` on `rank`.
std::vector<Interval> buffer_intervals(const trace::AnnotatedTrace& trace,
                                       std::int32_t rank,
                                       std::int64_t buffer, bool production) {
  std::vector<Interval> intervals;
  const auto& events =
      trace.ranks[static_cast<std::size_t>(rank)].events;
  for (const AnnEvent& ev : events) {
    if (ev.buffer_id != buffer) continue;
    if (production && is_send(ev)) {
      intervals.push_back(Interval{ev.interval_start, ev.vclock,
                                   ev.bytes / ev.elem_bytes});
    } else if (!production && is_recv(ev)) {
      intervals.push_back(
          Interval{ev.vclock, ev.interval_end, ev.bytes / ev.elem_bytes});
    }
  }
  return intervals;
}

std::vector<ScatterPoint> scatter(const trace::AnnotatedTrace& trace,
                                  const std::vector<tracer::AccessSample>& log,
                                  std::int32_t rank, std::int64_t buffer,
                                  bool production, std::size_t max_points) {
  OSIM_CHECK(rank >= 0 && rank < trace.num_ranks);
  const auto intervals = buffer_intervals(trace, rank, buffer, production);
  std::vector<ScatterPoint> points;
  for (const tracer::AccessSample& sample : log) {
    if (points.size() >= max_points) break;
    if (sample.buffer != buffer || sample.is_store != production) continue;
    if (sample.interval >= intervals.size()) continue;
    const Interval& interval = intervals[sample.interval];
    if (interval.end <= interval.begin || interval.num_elements == 0)
      continue;
    if (sample.vclock < interval.begin || sample.vclock > interval.end)
      continue;
    points.push_back(ScatterPoint{
        static_cast<double>(sample.vclock - interval.begin) /
            static_cast<double>(interval.end - interval.begin),
        static_cast<double>(sample.element) /
            static_cast<double>(interval.num_elements)});
  }
  return points;
}

}  // namespace

std::vector<ScatterPoint> production_scatter(
    const trace::AnnotatedTrace& trace,
    const std::vector<tracer::AccessSample>& rank_log, std::int32_t rank,
    std::int64_t buffer, std::size_t max_points) {
  return scatter(trace, rank_log, rank, buffer, /*production=*/true,
                 max_points);
}

std::vector<ScatterPoint> consumption_scatter(
    const trace::AnnotatedTrace& trace,
    const std::vector<tracer::AccessSample>& rank_log, std::int32_t rank,
    std::int64_t buffer, std::size_t max_points) {
  return scatter(trace, rank_log, rank, buffer, /*production=*/false,
                 max_points);
}

std::string render_scatter(const std::vector<ScatterPoint>& points,
                           const std::string& title, int width, int height) {
  OSIM_CHECK(width >= 10 && height >= 4);
  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width),
                                            ' '));
  for (const ScatterPoint& p : points) {
    int x = static_cast<int>(p.time_frac * (width - 1) + 0.5);
    int y = static_cast<int>(p.element_frac * (height - 1) + 0.5);
    x = std::clamp(x, 0, width - 1);
    y = std::clamp(y, 0, height - 1);
    // y axis grows upward (element offset 0 at the bottom).
    grid[static_cast<std::size_t>(height - 1 - y)]
        [static_cast<std::size_t>(x)] = '*';
  }
  std::ostringstream os;
  os << title << "  (" << points.size() << " accesses)\n";
  os << "element^\n";
  for (const std::string& row : grid) os << "       |" << row << "\n";
  os << "       +" << std::string(static_cast<std::size_t>(width), '-')
     << "> time in interval (0..100%)\n";
  return os.str();
}

namespace {

/// Accumulates one send event into per-buffer production sums.
struct ProductionAccum {
  double first = 0, quarter = 0, half = 0, whole = 0;
  std::size_t messages = 0;
  std::size_t unchunkable = 0;
  double unchunkable_whole = 0;
};

struct ConsumptionAccum {
  double nothing = 0, quarter = 0, half = 0;
  std::size_t messages = 0;
  std::size_t unchunkable = 0;
  double unchunkable_nothing = 0;
};

}  // namespace

std::vector<BufferPatternRow> buffer_pattern_report(
    const tracer::TracedRun& run) {
  std::map<std::string, ProductionAccum> prod;
  std::map<std::string, ConsumptionAccum> cons;

  const trace::AnnotatedTrace& t = run.annotated;
  for (std::int32_t rank = 0; rank < t.num_ranks; ++rank) {
    const auto& names = run.buffer_names[static_cast<std::size_t>(rank)];
    for (const AnnEvent& ev :
         t.ranks[static_cast<std::size_t>(rank)].events) {
      if (ev.buffer_id < 0 ||
          static_cast<std::size_t>(ev.buffer_id) >= names.size()) {
        continue;
      }
      const std::string& name = names[static_cast<std::size_t>(ev.buffer_id)];
      if (is_send(ev) && !ev.elem_last_store.empty()) {
        const std::uint64_t length = ev.vclock - ev.interval_start;
        if (length == 0) continue;
        ProductionAccum& acc = prod[name];
        if (!ev.chunkable) {
          std::uint64_t last = ev.interval_start;
          for (const std::uint64_t v : ev.elem_last_store) {
            if (v != kNeverAccessed) last = std::max(last, v);
          }
          acc.unchunkable_whole +=
              static_cast<double>(last - ev.interval_start) /
              static_cast<double>(length);
          acc.unchunkable++;
          continue;
        }
        std::vector<double> offsets;
        offsets.reserve(ev.elem_last_store.size());
        for (const std::uint64_t v : ev.elem_last_store) {
          offsets.push_back(v == kNeverAccessed || v <= ev.interval_start
                                ? 0.0
                                : static_cast<double>(v - ev.interval_start) /
                                      static_cast<double>(length));
        }
        std::sort(offsets.begin(), offsets.end());
        const std::size_t n = offsets.size();
        auto kth = [&](double frac) {
          std::size_t k = static_cast<std::size_t>(
              frac * static_cast<double>(n) + 0.999999);
          if (k == 0) k = 1;
          return offsets[std::min(k, n) - 1];
        };
        acc.first += offsets.front();
        acc.quarter += kth(0.25);
        acc.half += kth(0.5);
        acc.whole += offsets.back();
        acc.messages++;
      } else if (is_recv(ev) && !ev.elem_first_load.empty()) {
        const std::uint64_t length = ev.interval_end - ev.vclock;
        if (length == 0) continue;
        ConsumptionAccum& acc = cons[name];
        const std::size_t n = ev.elem_first_load.size();
        auto offset = [&](std::size_t e) {
          const std::uint64_t v = ev.elem_first_load[e];
          if (v == kNeverAccessed) return 1.0;
          return static_cast<double>(v - ev.vclock) /
                 static_cast<double>(length);
        };
        auto passable = [&](std::size_t from) {
          double earliest = 1.0;
          for (std::size_t e = from; e < n; ++e) {
            earliest = std::min(earliest, offset(e));
          }
          return earliest;
        };
        if (!ev.chunkable) {
          acc.unchunkable_nothing += passable(0);
          acc.unchunkable++;
          continue;
        }
        acc.nothing += passable(0);
        acc.quarter += passable(n / 4);
        acc.half += passable(n / 2);
        acc.messages++;
      }
    }
  }

  std::vector<BufferPatternRow> rows;
  std::set<std::string> names;
  for (const auto& [name, _] : prod) names.insert(name);
  for (const auto& [name, _] : cons) names.insert(name);
  for (const std::string& name : names) {
    BufferPatternRow row;
    row.buffer = name;
    if (const auto it = prod.find(name); it != prod.end()) {
      const ProductionAccum& acc = it->second;
      row.production.messages = acc.messages;
      row.production.unchunkable_messages = acc.unchunkable;
      if (acc.messages > 0) {
        const double m = static_cast<double>(acc.messages);
        row.production.first_element = acc.first / m;
        row.production.quarter = acc.quarter / m;
        row.production.half = acc.half / m;
        row.production.whole = acc.whole / m;
      }
      if (acc.unchunkable > 0) {
        row.production.unchunkable_whole =
            acc.unchunkable_whole / static_cast<double>(acc.unchunkable);
      }
    }
    if (const auto it = cons.find(name); it != cons.end()) {
      const ConsumptionAccum& acc = it->second;
      row.consumption.messages = acc.messages;
      row.consumption.unchunkable_messages = acc.unchunkable;
      if (acc.messages > 0) {
        const double m = static_cast<double>(acc.messages);
        row.consumption.nothing = acc.nothing / m;
        row.consumption.quarter = acc.quarter / m;
        row.consumption.half = acc.half / m;
      }
      if (acc.unchunkable > 0) {
        row.consumption.unchunkable_nothing =
            acc.unchunkable_nothing / static_cast<double>(acc.unchunkable);
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace osim::analysis
