#include "analysis/calibrate.hpp"

#include <cmath>

#include "common/expect.hpp"
#include "dimemas/replay.hpp"

namespace osim::analysis {

BusCalibration calibrate_buses(const trace::Trace& t,
                               const dimemas::Platform& bus_platform,
                               const dimemas::Platform& reference_platform,
                               const CalibrateOptions& options) {
  OSIM_CHECK(options.max_buses >= 1);
  OSIM_CHECK(reference_platform.model ==
             dimemas::NetworkModelKind::kFairShare);
  trace::validate(t);
  dimemas::ReplayOptions replay_options;
  replay_options.validate_input = false;

  BusCalibration best;
  best.reference_time =
      dimemas::replay(t, reference_platform, replay_options).makespan;
  OSIM_CHECK(best.reference_time > 0.0);

  double best_error = std::numeric_limits<double>::infinity();
  for (std::int32_t buses = 1; buses <= options.max_buses; ++buses) {
    dimemas::Platform p = bus_platform;
    p.model = dimemas::NetworkModelKind::kBus;
    p.num_buses = buses;
    const double sim = dimemas::replay(t, p, replay_options).makespan;
    const double error =
        std::fabs(sim - best.reference_time) / best.reference_time;
    if (error < best_error) {
      best_error = error;
      best.buses = buses;
      best.simulated_time = sim;
      best.relative_error = error;
    }
    // Simulated time is non-increasing in the bus count: once it dips below
    // the reference, adding buses only moves further away.
    if (sim <= best.reference_time) break;
  }
  return best;
}

}  // namespace osim::analysis
