#include "analysis/calibrate.hpp"

#include <cmath>
#include <limits>

#include "common/expect.hpp"

namespace osim::analysis {

BusCalibration calibrate_buses(pipeline::Study& study,
                               const pipeline::ReplayContext& bus_context,
                               const dimemas::Platform& reference_platform,
                               const CalibrateOptions& options) {
  OSIM_CHECK(options.max_buses >= 1);
  OSIM_CHECK(reference_platform.model ==
             dimemas::NetworkModelKind::kFairShare);

  BusCalibration best;
  best.reference_time =
      study.makespan(bus_context.with_platform(reference_platform));
  OSIM_CHECK(best.reference_time > 0.0);

  double best_error = std::numeric_limits<double>::infinity();
  for (std::int32_t buses = 1; buses <= options.max_buses; ++buses) {
    dimemas::Platform p = bus_context.platform();
    p.model = dimemas::NetworkModelKind::kBus;
    p.num_buses = buses;
    const double sim = study.makespan(bus_context.with_platform(p));
    const double error =
        std::fabs(sim - best.reference_time) / best.reference_time;
    if (error < best_error) {
      best_error = error;
      best.buses = buses;
      best.simulated_time = sim;
      best.relative_error = error;
    }
    // Simulated time is non-increasing in the bus count: once it dips below
    // the reference, adding buses only moves further away.
    if (sim <= best.reference_time) break;
  }
  return best;
}

}  // namespace osim::analysis
