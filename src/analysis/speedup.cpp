#include "analysis/speedup.hpp"

#include <vector>

#include "pipeline/scenario.hpp"

namespace osim::analysis {

OverlapOutcome evaluate_overlap(pipeline::Study& study,
                                const trace::AnnotatedTrace& annotated,
                                const dimemas::Platform& platform,
                                const overlap::OverlapOptions& options) {
  const std::vector<pipeline::ReplayContext> contexts = {
      pipeline::make_context(annotated, pipeline::TraceVariant::kOriginal,
                             options, platform),
      pipeline::make_context(annotated,
                             pipeline::TraceVariant::kOverlapMeasured, options,
                             platform),
      pipeline::make_context(annotated, pipeline::TraceVariant::kOverlapIdeal,
                             options, platform),
  };
  const std::vector<double> times = study.map(
      contexts,
      [&study](const pipeline::ReplayContext& c) { return study.makespan(c); });

  OverlapOutcome outcome;
  outcome.t_original = times[0];
  outcome.t_overlapped_real = times[1];
  outcome.t_overlapped_ideal = times[2];
  return outcome;
}

}  // namespace osim::analysis
