#include "analysis/speedup.hpp"

#include "overlap/transform.hpp"

namespace osim::analysis {

OverlapOutcome evaluate_overlap(const trace::AnnotatedTrace& annotated,
                                const dimemas::Platform& platform,
                                const overlap::OverlapOptions& options) {
  overlap::OverlapOptions real_options = options;
  real_options.pattern = overlap::PatternMode::kMeasured;
  overlap::OverlapOptions ideal_options = options;
  ideal_options.pattern = overlap::PatternMode::kIdeal;

  const trace::Trace original = overlap::lower_original(annotated);
  const trace::Trace real = overlap::transform(annotated, real_options);
  const trace::Trace ideal = overlap::transform(annotated, ideal_options);

  OverlapOutcome outcome;
  outcome.t_original = dimemas::replay(original, platform).makespan;
  outcome.t_overlapped_real = dimemas::replay(real, platform).makespan;
  outcome.t_overlapped_ideal = dimemas::replay(ideal, platform).makespan;
  return outcome;
}

}  // namespace osim::analysis
