// Table I: calibrating the Dimemas bus count against the "real machine".
//
// The paper: "The number of buses has to be properly setup in the Dimemas
// simulator in order to match the simulated results with the real results
// of the application obtained from a real run on the Marenostrum
// supercomputer." In this reproduction the "real run" is the replay on the
// detailed fair-share reference machine (see DESIGN.md substitutions); the
// calibration sweeps the bus count of the bus-model platform and picks the
// one whose makespan is closest to the reference.
#pragma once

#include <cstdint>

#include "dimemas/platform.hpp"
#include "pipeline/context.hpp"
#include "pipeline/study.hpp"
#include "trace/trace.hpp"

namespace osim::analysis {

struct BusCalibration {
  std::int32_t buses = 0;         // best-matching bus count
  double reference_time = 0.0;    // "real machine" makespan
  double simulated_time = 0.0;    // bus-model makespan at `buses`
  double relative_error = 0.0;    // |sim - ref| / ref
};

struct CalibrateOptions {
  std::int32_t max_buses = 64;
};

/// Sweeps buses in [1, max_buses] of `bus_context`'s platform; replay time
/// is non-increasing in the bus count, so the sweep stops at the first
/// crossing and compares neighbours. `reference_platform` must use the
/// fair-share model; all replays go through `study`'s cache.
BusCalibration calibrate_buses(pipeline::Study& study,
                               const pipeline::ReplayContext& bus_context,
                               const dimemas::Platform& reference_platform,
                               const CalibrateOptions& options = {});

}  // namespace osim::analysis
