// Bandwidth searches — Figures 6(b) and 6(c).
//
// 6(b) bandwidth relaxation: the minimum bandwidth at which the overlapped
// execution still matches the performance of the non-overlapped execution
// on the full-bandwidth network ("in order to achieve the performance of
// the non-overlapped execution on 250MB/s, the overlapped execution needs
// much less bandwidth").
//
// 6(c) equivalent bandwidth: the bandwidth the *non-overlapped* execution
// would need to match the overlapped execution at full bandwidth. May
// diverge: "for some applications the performance of the overlapped
// execution cannot be achieved with non-overlapped execution on any
// bandwidth" (Sweep3D).
//
// All searches take pipeline::ReplayContext (the trace is validated once,
// at context construction) and probe through a pipeline::Study, so probes
// shared between overlapping searches — e.g. the nominal-bandwidth
// endpoints of the 6(b) and 6(c) bisections — replay exactly once.
#pragma once

#include <optional>

#include "dimemas/platform.hpp"
#include "pipeline/context.hpp"
#include "pipeline/study.hpp"
#include "trace/trace.hpp"

namespace osim::analysis {

struct BandwidthSearchOptions {
  double low_MBps = 0.01;       // lower bracket for the bisection
  double high_MBps = 1.0e6;     // "any bandwidth" cap for divergence checks
  double rel_tolerance = 1e-3;  // bisection convergence on bandwidth
};

/// Replay time of `context` with its platform bandwidth overridden to
/// `mbps`; cached in `study`.
double time_at_bandwidth(pipeline::Study& study,
                         const pipeline::ReplayContext& context, double mbps);

/// Minimum bandwidth (MB/s) at which `context` finishes within
/// `target_time_s` on its platform; nullopt if not achievable even at
/// options.high_MBps. Replay time is non-increasing in bandwidth, so
/// bisection applies.
std::optional<double> min_bandwidth_for(
    pipeline::Study& study, const pipeline::ReplayContext& context,
    double target_time_s, const BandwidthSearchOptions& options = {});

/// Figure 6(b): bandwidth the overlapped trace needs to match the original
/// trace at the platform's nominal bandwidth. Both contexts are expected to
/// share a platform (the usual setup); the search runs on `overlapped`'s.
std::optional<double> relaxed_bandwidth(
    pipeline::Study& study, const pipeline::ReplayContext& original,
    const pipeline::ReplayContext& overlapped,
    const BandwidthSearchOptions& options = {});

/// Figure 6(c): bandwidth the original trace needs to match the overlapped
/// trace at the platform's nominal bandwidth; nullopt = tends to infinity.
std::optional<double> equivalent_bandwidth(
    pipeline::Study& study, const pipeline::ReplayContext& original,
    const pipeline::ReplayContext& overlapped,
    const BandwidthSearchOptions& options = {});

}  // namespace osim::analysis
