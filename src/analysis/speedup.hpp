// Figure 6(a): speedup of the overlapped execution (real and ideal
// production/consumption patterns) over the non-overlapped execution.
#pragma once

#include "dimemas/platform.hpp"
#include "overlap/options.hpp"
#include "pipeline/study.hpp"
#include "trace/annotated.hpp"

namespace osim::analysis {

struct OverlapOutcome {
  double t_original = 0.0;
  double t_overlapped_real = 0.0;
  double t_overlapped_ideal = 0.0;

  double speedup_real() const { return t_original / t_overlapped_real; }
  double speedup_ideal() const { return t_original / t_overlapped_ideal; }
};

/// Lowers the annotated trace three ways (original, overlapped with the
/// measured patterns, overlapped with ideal patterns — exactly the three
/// traces the paper's tracer emits per run) and replays each through
/// `study` (in parallel when the study has jobs > 1).
OverlapOutcome evaluate_overlap(pipeline::Study& study,
                                const trace::AnnotatedTrace& annotated,
                                const dimemas::Platform& platform,
                                const overlap::OverlapOptions& options = {});

}  // namespace osim::analysis
