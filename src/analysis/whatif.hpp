// What-if network analysis: replays one trace under idealized variants of
// the platform to attribute the communication cost to latency, bandwidth
// and contention — the classic Dimemas-style sensitivity study ("Dimemas
// allows us to simulate various network configurations", §V), packaged as
// a single breakdown.
//
//   T(nominal)          — the platform as configured
//   T(zero latency)     — latency and per-message overhead set to 0
//   T(infinite bw)      — bandwidth made effectively infinite
//   T(no contention)    — unlimited buses and ports
//   T(ideal network)    — all three at once (pure dependency structure +
//                         compute; the lower envelope of any network fix)
#pragma once

#include "dimemas/platform.hpp"
#include "pipeline/context.hpp"
#include "pipeline/study.hpp"
#include "trace/trace.hpp"

namespace osim::analysis {

struct WhatIfBreakdown {
  double t_nominal = 0.0;
  double t_zero_latency = 0.0;
  double t_infinite_bandwidth = 0.0;
  double t_no_contention = 0.0;
  double t_ideal_network = 0.0;

  /// Fraction of the nominal makespan that disappears under each variant.
  double latency_sensitivity() const {
    return 1.0 - t_zero_latency / t_nominal;
  }
  double bandwidth_sensitivity() const {
    return 1.0 - t_infinite_bandwidth / t_nominal;
  }
  double contention_sensitivity() const {
    return 1.0 - t_no_contention / t_nominal;
  }
  /// The irreducible share: compute + dependency structure.
  double network_bound_share() const {
    return 1.0 - t_ideal_network / t_nominal;
  }
};

/// Runs the five replays through `study` (in parallel when the study has
/// jobs > 1; the five variants are independent). The ideal-network variant
/// is a lower envelope of the others by construction (strictly fewer
/// constraints).
WhatIfBreakdown whatif_network(pipeline::Study& study,
                               const pipeline::ReplayContext& context);

}  // namespace osim::analysis
