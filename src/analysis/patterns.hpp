// Production / consumption pattern analysis — Table II and Figure 5 of the
// paper.
//
// Table II(a), "potential for advancing sends": the percent of the
// production phase needed to produce the first element / the first quarter
// / half / the whole message, averaged over all chunkable messages.
//
// Table II(b), "potential for post-postponing receptions": the percent of
// the consumption phase that can be passed upon reception of nothing / the
// first quarter / the first half of the message.
//
// Figure 5: scatter of every tracked access (element offset vs normalized
// time within its production or consumption interval).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "trace/annotated.hpp"
#include "tracer/context.hpp"
#include "tracer/tracer.hpp"

namespace osim::analysis {

struct ProductionStats {
  // All values are fractions of the production interval, in [0, 1].
  double first_element = 0.0;  // earliest element receives its final value
  double quarter = 0.0;        // 25% of the elements are final
  double half = 0.0;           // 50% of the elements are final
  double whole = 0.0;          // every element is final
  std::size_t messages = 0;    // chunkable sends aggregated

  // Unchunkable annotated messages (the paper's Alya case: one-element
  // reduction payloads "cannot be chunked into partial ones"); only the
  // whole-message statistic is meaningful for them.
  std::size_t unchunkable_messages = 0;
  double unchunkable_whole = 0.0;  // when the single element goes final
};

struct ConsumptionStats {
  // Fractions of the consumption interval that can be passed having
  // received the given prefix of the message.
  double nothing = 0.0;  // before any element of the message is needed
  double quarter = 0.0;  // with the first quarter received
  double half = 0.0;     // with the first half received
  std::size_t messages = 0;

  std::size_t unchunkable_messages = 0;
  double unchunkable_nothing = 0.0;  // progress before the element is needed
};

/// Aggregates over every chunkable send in the trace. Messages with an
/// empty production interval are skipped.
ProductionStats production_stats(const trace::AnnotatedTrace& trace);

/// Aggregates over every chunkable recv in the trace. Messages with an
/// empty consumption interval are skipped.
ConsumptionStats consumption_stats(const trace::AnnotatedTrace& trace);

/// Table II broken out per communication buffer (aggregated over ranks by
/// buffer name): which buffers drive the application's pattern profile.
struct BufferPatternRow {
  std::string buffer;
  ProductionStats production;
  ConsumptionStats consumption;
};

std::vector<BufferPatternRow> buffer_pattern_report(
    const tracer::TracedRun& run);

// --- Figure 5 scatter --------------------------------------------------

struct ScatterPoint {
  double time_frac = 0.0;     // position within the interval, [0, 1]
  double element_frac = 0.0;  // element offset within the buffer, [0, 1)
};

/// Store events of `buffer` on `rank`, normalized per production interval.
/// Requires the tracer's access log (TracerOptions::record_access_log).
std::vector<ScatterPoint> production_scatter(
    const trace::AnnotatedTrace& trace,
    const std::vector<tracer::AccessSample>& rank_log, std::int32_t rank,
    std::int64_t buffer, std::size_t max_points = 20000);

/// Load events of `buffer` on `rank`, normalized per consumption interval.
std::vector<ScatterPoint> consumption_scatter(
    const trace::AnnotatedTrace& trace,
    const std::vector<tracer::AccessSample>& rank_log, std::int32_t rank,
    std::int64_t buffer, std::size_t max_points = 20000);

/// Terminal scatter plot (the Figure 5 panels): x = normalized time within
/// the interval, y = element offset within the buffer.
std::string render_scatter(const std::vector<ScatterPoint>& points,
                           const std::string& title, int width = 64,
                           int height = 16);

}  // namespace osim::analysis
