// Content fingerprints — the cache key of the pipeline layer.
//
// Lives in its own header (below context.hpp) so lower layers that only
// need the key type — notably the persistent scenario store in src/store —
// can use it without pulling in the ReplayContext machinery.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <string_view>

namespace osim::pipeline {

/// 128-bit content fingerprint of a (trace, platform, options) triple.
/// Two independent 64-bit lanes make an accidental collision between the
/// handful of scenarios a study touches astronomically unlikely.
struct Fingerprint {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;
};

struct FingerprintHash {
  std::size_t operator()(const Fingerprint& f) const {
    return static_cast<std::size_t>(f.lo ^ (f.hi * 0x9e3779b97f4a7c15ULL));
  }
};

/// Canonical textual form: 32 lowercase hex digits, high lane first. This
/// is the spelling used by study reports, osim_inspect --fingerprint and
/// the scenario store's object file names, so the three can be correlated
/// by eye or by grep.
inline std::string to_hex(const Fingerprint& f) {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(f.hi),
                static_cast<unsigned long long>(f.lo));
  return std::string(buf, 32);
}

/// Inverse of to_hex(); nullopt unless `hex` is exactly 32 hex digits.
inline std::optional<Fingerprint> fingerprint_from_hex(std::string_view hex) {
  if (hex.size() != 32) return std::nullopt;
  std::uint64_t lanes[2] = {0, 0};
  for (int lane = 0; lane < 2; ++lane) {
    for (int i = 0; i < 16; ++i) {
      const char c = hex[static_cast<std::size_t>(lane * 16 + i)];
      std::uint64_t digit = 0;
      if (c >= '0' && c <= '9') {
        digit = static_cast<std::uint64_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<std::uint64_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        digit = static_cast<std::uint64_t>(c - 'A' + 10);
      } else {
        return std::nullopt;
      }
      lanes[lane] = (lanes[lane] << 4) | digit;
    }
  }
  return Fingerprint{lanes[1], lanes[0]};
}

}  // namespace osim::pipeline
