// Scenario lowering — the single app→trace→transform→replay entry point.
//
// Every bench and tool used to hand-roll the same glue: lower the annotated
// trace (original, or overlap-transformed with measured/ideal patterns),
// pick a platform, call dimemas::replay. make_context() owns the lowering
// and run_scenario() owns the replay call; nothing above the pipeline layer
// calls dimemas::replay directly (scripts/check.sh enforces this for bench/
// and src/analysis/).
#pragma once

#include <string>
#include <vector>

#include "faults/model.hpp"
#include "overlap/options.hpp"
#include "pipeline/context.hpp"
#include "trace/annotated.hpp"

namespace osim::pipeline {

/// Which of the paper's three traces to lower from an annotated run.
enum class TraceVariant {
  kOriginal,         // the non-overlapped execution
  kOverlapMeasured,  // overlapped, measured production/consumption patterns
  kOverlapIdeal,     // overlapped, ideal (uniform) patterns
};

const char* trace_variant_name(TraceVariant variant);

/// Lowers `annotated` per `variant` — forcing the matching PatternMode for
/// the overlapped variants — and wraps the result with `platform` and
/// `replay_options` into a validated ReplayContext.
ReplayContext make_context(const trace::AnnotatedTrace& annotated,
                           TraceVariant variant,
                           const overlap::OverlapOptions& overlap_options,
                           dimemas::Platform platform,
                           dimemas::ReplayOptions replay_options = {});

/// Replays the context's trace on its platform: the one place a simulation
/// result comes from above the dimemas layer.
dimemas::SimResult run_scenario(const ReplayContext& context);

/// One point on a fault-injection sweep axis: a labelled fault model. An
/// inert model (enabled() == false) represents the fault-free baseline and
/// leaves the derived context's fingerprint untouched.
struct FaultScenario {
  std::string label;
  faults::FaultModel model;
};

/// The fault axis of a sweep: `base` crossed with each scenario, in
/// scenario order. Derived contexts share the base's validated trace, so
/// the cross costs one options rehash per scenario; each result caches and
/// parallelizes in a Study like any other context.
std::vector<ReplayContext> cross_faults(
    const ReplayContext& base, const std::vector<FaultScenario>& scenarios);

/// One point on a progress-regime sweep axis: a labelled progress model.
/// An inert model (the offload default) represents the baseline and leaves
/// the derived context's fingerprint untouched.
struct ProgressScenario {
  std::string label;
  dimemas::ProgressModel model;
};

/// The progress axis of a sweep, shaped exactly like cross_faults: `base`
/// crossed with each regime, in scenario order, sharing the validated
/// trace.
std::vector<ReplayContext> cross_progress(
    const ReplayContext& base, const std::vector<ProgressScenario>& scenarios);

}  // namespace osim::pipeline
