#include "pipeline/scenario.hpp"

#include <utility>

#include "common/expect.hpp"
#include "dimemas/replay.hpp"
#include "overlap/transform.hpp"

namespace osim::pipeline {

const char* trace_variant_name(TraceVariant variant) {
  switch (variant) {
    case TraceVariant::kOriginal: return "original";
    case TraceVariant::kOverlapMeasured: return "overlap-measured";
    case TraceVariant::kOverlapIdeal: return "overlap-ideal";
  }
  OSIM_UNREACHABLE("unknown TraceVariant");
}

ReplayContext make_context(const trace::AnnotatedTrace& annotated,
                           TraceVariant variant,
                           const overlap::OverlapOptions& overlap_options,
                           dimemas::Platform platform,
                           dimemas::ReplayOptions replay_options) {
  if (variant == TraceVariant::kOriginal) {
    return ReplayContext(overlap::lower_original(annotated),
                         std::move(platform), replay_options);
  }
  overlap::OverlapOptions options = overlap_options;
  options.pattern = variant == TraceVariant::kOverlapIdeal
                        ? overlap::PatternMode::kIdeal
                        : overlap::PatternMode::kMeasured;
  return ReplayContext(overlap::transform(annotated, options),
                       std::move(platform), replay_options);
}

dimemas::SimResult run_scenario(const ReplayContext& context) {
  return dimemas::replay(context.trace(), context.platform(),
                         context.options());
}

std::vector<ReplayContext> cross_faults(
    const ReplayContext& base, const std::vector<FaultScenario>& scenarios) {
  std::vector<ReplayContext> contexts;
  contexts.reserve(scenarios.size());
  for (const FaultScenario& scenario : scenarios) {
    contexts.push_back(base.with_faults(scenario.model));
  }
  return contexts;
}

std::vector<ReplayContext> cross_progress(
    const ReplayContext& base,
    const std::vector<ProgressScenario>& scenarios) {
  std::vector<ReplayContext> contexts;
  contexts.reserve(scenarios.size());
  for (const ProgressScenario& scenario : scenarios) {
    contexts.push_back(base.with_progress(scenario.model));
  }
  return contexts;
}

}  // namespace osim::pipeline
