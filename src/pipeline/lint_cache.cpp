#include "pipeline/lint_cache.hpp"

#include "common/expect.hpp"
#include "pipeline/context.hpp"

namespace osim::pipeline {

Fingerprint lint_fingerprint(const trace::Trace& trace,
                             const lint::LintOptions& options) {
  const Fingerprint trace_fp = fingerprint_of(trace);
  // Same two-lane FNV-1a construction as the context fingerprints
  // (pipeline/context.cpp), folded over the lint-specific inputs.
  constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  constexpr std::uint64_t kPrime2 = 0x9e3779b97f4a7c15ULL;
  std::uint64_t lo = 0xcbf29ce484222325ULL;
  std::uint64_t hi = 0x84222325cbf29ce4ULL;
  const auto mix_u64 = [&](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      const auto b = static_cast<unsigned char>(v >> (8 * i));
      lo = (lo ^ b) * kPrime;
      hi = (hi ^ b) * kPrime2;
    }
  };
  mix_u64(0x4C494E54);  // domain tag "LINT": never collides with replay keys
  mix_u64(trace_fp.lo);
  mix_u64(trace_fp.hi);
  mix_u64(options.eager_threshold_bytes);
  mix_u64(kLintAnalysisVersion);
  mix_u64(static_cast<std::uint64_t>(lint::kLintReportVersion));
  return Fingerprint{lo, hi};
}

lint::Report lint_with_cache(const trace::Trace& trace,
                             const lint::LintOptions& options,
                             store::ScenarioStore* store, bool* cache_hit) {
  if (cache_hit != nullptr) *cache_hit = false;
  if (store == nullptr) return lint::lint_trace(trace, options);

  const Fingerprint fp = lint_fingerprint(trace, options);
  if (std::optional<lint::Report> cached = store->load_lint(fp)) {
    if (cache_hit != nullptr) *cache_hit = true;
    return *std::move(cached);
  }
  lint::Report report = lint::lint_trace(trace, options);
  try {
    store->save_lint(fp, report);
  } catch (const Error&) {
    // Write-behind is best effort: the report is already computed.
  }
  return report;
}

}  // namespace osim::pipeline
