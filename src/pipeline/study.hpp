// Study — the parallel sweep engine.
//
// A Study owns a fixed-size thread pool and a replay-result cache keyed by
// ReplayContext fingerprint. The paper's sweep experiments (bandwidth
// bisections, bus calibrations, what-if breakdowns) are dozens to hundreds
// of *independent* dimemas::replay calls; because replay() is a pure,
// deterministic function of (trace, platform, options), evaluating those
// calls on a pool is bit-identical to running them serially, and probes
// that repeat — the shared endpoints of overlapping bisections — are served
// from the cache instead of replayed.
//
// Concurrency model: Study::map fans a batch out on the pool while the
// calling thread drains work items itself. Since the caller always
// participates, a map() issued from inside a pool task (e.g. a what-if
// breakdown running inside a per-app task) makes progress even when every
// worker is busy — nested maps cannot deadlock. Exceptions thrown by a work
// item are captured and rethrown on the calling thread, lowest index first.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "common/cancel.hpp"
#include "dimemas/result.hpp"
#include "faults/model.hpp"
#include "pipeline/context.hpp"
#include "store/store.hpp"
#include "supervise/journal.hpp"

namespace osim::pipeline {

struct StudyOptions {
  /// Worker threads evaluating scenarios. 1 = fully serial (no threads are
  /// spawned); 0 = one per hardware thread.
  int jobs = 1;
  /// Serve repeated scenarios from the fingerprint-keyed makespan cache.
  bool cache_replays = true;
  /// Keep one ScenarioRecord per makespan() evaluation (see scenarios()),
  /// for structured study reports.
  bool record_scenarios = false;
  /// Root of the persistent scenario store (store::ScenarioStore), the
  /// disk tier behind the in-memory cache: makespan() reads through it and
  /// writes computed results behind, so identical scenarios are served
  /// across processes and sessions. Empty = $OSIM_CACHE_DIR, or no disk
  /// tier when that is unset too — in which case behavior and results are
  /// bit-identical to a store-less build.
  std::string cache_dir;

  // --- Supervision (all off by default; when every field below is at its
  // default the study behaves — and its report reads — byte-identically
  // to a pre-supervision build; perf_identity_test pins this) ---

  /// Wall-clock budget per scenario replay in seconds (0 = unbounded). A
  /// scenario over budget is recorded with status kTimeout plus its
  /// partial wait attribution; the sweep continues.
  double scenario_timeout_s = 0.0;
  /// Wall-clock budget for the whole study in seconds, measured from
  /// construction (0 = unbounded). Past the deadline every replay stops
  /// cooperatively and the study reports interrupted.
  double study_deadline_s = 0.0;
  /// Byte budget for the in-memory result cache (0 = unbounded). Under
  /// pressure the oldest entries are dropped; the disk store (which every
  /// computed result is written behind to) keeps serving them, so long
  /// sweeps degrade to warm-disk speed instead of growing the heap.
  std::int64_t memory_budget_bytes = 0;
  /// Maintain a write-ahead study journal (supervise::StudyJournal) under
  /// the store root, recording each scenario's terminal status. Requires
  /// a cache_dir (or $OSIM_CACHE_DIR).
  bool journal = false;
  /// Serve scenarios an earlier run's journal recorded as completed
  /// without replaying them (their journal entries carry the results).
  /// Implies journal.
  bool resume = false;
  /// Identity string naming this study for the journal key — the bench
  /// name plus every sweep-shaping parameter. Two runs that would evaluate
  /// the same scenario set must use the same id.
  std::string study_id;
  /// External stop flag (typically common/signals.hpp's shutdown_flag());
  /// when it goes true, in-flight replays stop cooperatively and pending
  /// scenarios are recorded as cancelled. Null = no external stop source.
  const std::atomic<bool>* stop_flag = nullptr;
};

/// Which tier answered a makespan() evaluation. kMiss means the scenario
/// was actually replayed (and written behind to the store when one is
/// configured); kJournal means a previous run's journal entry served it
/// (--resume) without touching the object store.
enum class CacheTier { kMiss, kMemory, kDisk, kJournal };

const char* cache_tier_name(CacheTier tier);

/// One evaluated sweep scenario: what was replayed, the result, and what it
/// cost. Records accumulate in completion order, which depends on thread
/// scheduling — study_report_json() sorts by (label, fingerprint); sort the
/// same way for any other stable output.
struct ScenarioRecord {
  Fingerprint fingerprint;
  double makespan = 0.0;
  double wall_s = 0.0;  // replay wall time; 0 for cache hits
  bool cache_hit = false;
  std::string label;
  /// Fault-injection activity (enabled == false for fault-free scenarios).
  /// Cached alongside the makespan, so cache hits keep their counters.
  faults::Counts fault_counts;
  /// Total fault-attributed wait time across ranks; populated only when the
  /// context collects metrics (0 otherwise).
  double fault_wait_s = 0.0;
  /// Total progress-engine-attributed wait time across ranks (see
  /// metrics::WaitComponents::progress_s); like fault_wait_s, populated
  /// only when the context collects metrics.
  double progress_wait_s = 0.0;
  /// Tier that served this evaluation; cache_hit == (tier != kMiss).
  CacheTier cache_tier = CacheTier::kMiss;
  /// Terminal status under supervision. Always kOk for unsupervised
  /// studies — and for resumed scenarios, which carry completed results
  /// (the skipped-resume marker lives only in the journal).
  supervise::ScenarioStatus status = supervise::ScenarioStatus::kOk;
  /// For kTimeout/kCancelled: total per-rank blocked time at the stop
  /// (partial wait attribution). 0 otherwise.
  double partial_blocked_s = 0.0;
};

class Study {
 public:
  explicit Study(StudyOptions options = {});
  ~Study();
  Study(const Study&) = delete;
  Study& operator=(const Study&) = delete;

  /// Replay makespan of `context`, served from the cache when this exact
  /// (trace, platform, options) fingerprint has been evaluated before.
  /// Thread-safe; callable from inside map() work items. `label` tags the
  /// ScenarioRecord when StudyOptions::record_scenarios is on.
  double makespan(const ReplayContext& context, std::string_view label = {});

  /// Full simulation result (timelines, comms, per-rank stats). Never
  /// cached — results with recording enabled are large and typically
  /// consumed once. Thread-safe.
  dimemas::SimResult run(const ReplayContext& context) const;

  /// Applies `fn` to every item, in parallel across the pool, and returns
  /// the results in item order. `fn`'s result type must be
  /// default-constructible. The first exception (by item index) is
  /// rethrown after all items finish. Safe to call from inside a work item.
  template <typename T, typename F>
  auto map(const std::vector<T>& items, F fn)
      -> std::vector<std::invoke_result_t<F&, const T&>>;

  int jobs() const { return jobs_; }
  /// In-memory tier hits (disk hits are counted separately).
  std::size_t cache_hits() const;
  std::size_t cache_misses() const;
  std::size_t cache_size() const;
  /// Scenarios served from the persistent store (0 without a cache_dir).
  std::size_t disk_hits() const;
  /// Scenarios served from a previous run's journal (--resume).
  std::size_t journal_hits() const;
  /// Memory-tier entries dropped under --memory-budget pressure.
  std::size_t cache_evictions() const;

  /// True when any supervision option is active. Reports key their status
  /// fields off this so unsupervised output stays byte-identical.
  bool supervised() const { return supervised_; }
  /// True once the study was stopped early (stop flag or study deadline).
  /// Supervised reports carry "status": "interrupted" and binaries exit
  /// kExitInterrupted.
  bool interrupted() const {
    return interrupted_.load(std::memory_order_relaxed);
  }
  /// The journal backing --journal/--resume, or nullptr.
  supervise::StudyJournal* journal() const { return journal_.get(); }

  /// Store writes queued for retry after a failed write-behind (retried
  /// with exponential backoff as the sweep progresses; flushed again at
  /// destruction). Non-zero only while the store is misbehaving.
  std::size_t pending_store_writes() const;
  /// Retries every queued write now, ignoring backoff; returns how many
  /// writes are still pending afterwards.
  std::size_t flush_store_writes();

  /// The persistent store backing the disk tier, or nullptr when no
  /// cache_dir was configured. Useful for maintenance surfaces and tests.
  store::ScenarioStore* store() const { return store_.get(); }

  /// Copy of the scenario records accumulated so far. Empty unless
  /// StudyOptions::record_scenarios is set. Thread-safe.
  std::vector<ScenarioRecord> scenarios() const;

 private:
  using Clock = std::chrono::steady_clock;

  void enqueue(std::function<void()> task);
  void worker_loop();
  void record_scenario(ScenarioRecord record);

  int jobs_ = 1;
  StudyOptions options_;

  /// What a makespan() evaluation caches: enough to replay a ScenarioRecord
  /// (including fault counters) without rerunning the simulation.
  struct CachedRun {
    double makespan = 0.0;
    faults::Counts fault_counts;
    double fault_wait_s = 0.0;
    double progress_wait_s = 0.0;
  };

  /// Inserts under the memory budget, evicting oldest-first when over
  /// (cache_mutex_ must be held).
  void cache_insert(const Fingerprint& key, const CachedRun& run);
  /// Journals `status` for `key` when a journal is configured.
  void journal_append(const Fingerprint& key, supervise::ScenarioStatus status,
                      const CachedRun& run, double partial_blocked_s);
  /// The stopped-replay tail of makespan(): records/journals the scenario
  /// with its partial progress and flags the study interrupted for
  /// non-timeout causes. Returns the partial simulated time.
  double record_stopped(const Fingerprint& key, std::string_view label,
                        StopCause cause, const PartialProgress& partial,
                        double wall_s);
  /// Write-behind with retry: tries the store now, queues for backoff
  /// retry on failure.
  void store_save(const Fingerprint& key,
                  const store::ScenarioArtifact& artifact);
  /// Retries queued writes. `force` ignores the backoff deadlines.
  /// Returns how many writes are still pending.
  std::size_t drain_pending_writes(bool force);

  mutable std::mutex cache_mutex_;
  std::unordered_map<Fingerprint, CachedRun, FingerprintHash> cache_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::size_t disk_hits_ = 0;
  std::size_t journal_hits_ = 0;
  std::size_t evictions_ = 0;
  /// Insertion order for budget eviction (tracked only under a budget).
  std::deque<Fingerprint> insertion_order_;

  /// Disk tier; nullptr when no cache_dir is configured.
  std::unique_ptr<store::ScenarioStore> store_;
  /// Warn at most once when write-behind fails (full disk, bad mount...):
  /// persisting is an optimization, never a reason to fail the study.
  std::atomic<bool> warned_store_write_ = false;

  /// Failed write-behinds waiting for retry, oldest first. Bounded: past
  /// kMaxPendingWrites the oldest entry is dropped (it is only a cache).
  struct PendingWrite {
    Fingerprint key;
    store::ScenarioArtifact artifact;
    int attempts = 0;
    Clock::time_point next_try;
  };
  static constexpr std::size_t kMaxPendingWrites = 1024;
  mutable std::mutex pending_mutex_;
  std::deque<PendingWrite> pending_writes_;

  // --- Supervision state ---
  bool supervised_ = false;
  /// Absolute study deadline (Clock::time_point::max() = unbounded).
  Clock::time_point study_deadline_ = Clock::time_point::max();
  std::atomic<bool> interrupted_ = false;
  std::unique_ptr<supervise::StudyJournal> journal_;
  /// Completed scenarios recovered from the journal, served on --resume.
  std::unordered_map<Fingerprint, supervise::JournalEntry, FingerprintHash>
      resume_map_;

  mutable std::mutex scenario_mutex_;
  std::vector<ScenarioRecord> scenarios_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

template <typename T, typename F>
auto Study::map(const std::vector<T>& items, F fn)
    -> std::vector<std::invoke_result_t<F&, const T&>> {
  using R = std::invoke_result_t<F&, const T&>;
  static_assert(!std::is_void_v<R>,
                "Study::map work items must return a value");
  // Shared between the caller and the pool helpers; kept alive by
  // shared_ptr so a helper that wakes up after completion (claims no index)
  // exits without touching freed state.
  struct State {
    const std::vector<T>* items = nullptr;
    F* fn = nullptr;
    std::size_t size = 0;
    std::vector<R> results;
    std::vector<std::exception_ptr> errors;
    std::atomic<std::size_t> next{0};
    std::mutex mutex;
    std::condition_variable done_cv;
    std::size_t completed = 0;
  };
  auto state = std::make_shared<State>();
  state->items = &items;
  state->fn = &fn;
  state->size = items.size();
  state->results.resize(items.size());
  state->errors.resize(items.size());

  auto drain = [state] {
    while (true) {
      const std::size_t i = state->next.fetch_add(1);
      if (i >= state->size) break;
      try {
        state->results[i] = (*state->fn)((*state->items)[i]);
      } catch (...) {
        state->errors[i] = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(state->mutex);
      if (++state->completed == state->size) state->done_cv.notify_all();
    }
  };

  for (std::size_t h = 1;
       h < static_cast<std::size_t>(jobs_) && h < items.size(); ++h) {
    enqueue(drain);
  }
  drain();  // the calling thread always participates
  {
    std::unique_lock<std::mutex> lock(state->mutex);
    state->done_cv.wait(lock,
                        [&] { return state->completed == state->size; });
  }
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (state->errors[i]) std::rethrow_exception(state->errors[i]);
  }
  return std::move(state->results);
}

}  // namespace osim::pipeline
