#include "pipeline/context.hpp"

#include <cstring>
#include <utility>

#include "common/expect.hpp"
#include "faults/spec.hpp"
#include "lint/lint.hpp"

namespace osim::pipeline {

namespace {

// Two-lane FNV-1a with distinct offset bases; both lanes see the same byte
// stream, so a collision requires both 64-bit hashes to collide at once.
class Hasher {
 public:
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      byte(static_cast<unsigned char>(v >> (8 * i)));
    }
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void boolean(bool v) { byte(v ? 1 : 0); }
  void str(const std::string& s) {
    u64(s.size());
    for (const char c : s) byte(static_cast<unsigned char>(c));
  }

  Fingerprint value() const { return {lo_, hi_}; }

 private:
  void byte(unsigned char b) {
    lo_ = (lo_ ^ b) * kPrime;
    hi_ = (hi_ ^ b) * kPrime2;
  }

  static constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  static constexpr std::uint64_t kPrime2 = 0x9e3779b97f4a7c15ULL;
  std::uint64_t lo_ = 0xcbf29ce484222325ULL;
  std::uint64_t hi_ = 0x84222325cbf29ce4ULL;
};

void hash_record(Hasher& h, const trace::Record& record) {
  h.u64(record.index());  // discriminate the alternatives
  std::visit(
      [&h](const auto& r) {
        using T = std::decay_t<decltype(r)>;
        if constexpr (std::is_same_v<T, trace::CpuBurst>) {
          h.u64(r.instructions);
        } else if constexpr (std::is_same_v<T, trace::Send>) {
          h.i64(r.dest);
          h.i64(r.tag);
          h.u64(r.bytes);
          h.boolean(r.immediate);
          h.i64(r.request);
          h.boolean(r.synchronous);
        } else if constexpr (std::is_same_v<T, trace::Recv>) {
          h.i64(r.src);
          h.i64(r.tag);
          h.u64(r.bytes);
          h.boolean(r.immediate);
          h.i64(r.request);
        } else if constexpr (std::is_same_v<T, trace::Wait>) {
          h.u64(r.requests.size());
          for (const trace::ReqId id : r.requests) h.i64(id);
        } else if constexpr (std::is_same_v<T, trace::GlobalOp>) {
          h.u64(static_cast<std::uint64_t>(r.kind));
          h.i64(r.root);
          h.u64(r.bytes);
          h.i64(r.sequence);
        }
      },
      record);
}

Fingerprint trace_fingerprint(const trace::Trace& t) {
  Hasher h;
  h.i64(t.num_ranks);
  h.f64(t.mips);
  h.str(t.app);
  for (const auto& stream : t.ranks) {
    h.u64(stream.size());
    for (const trace::Record& record : stream) hash_record(h, record);
  }
  return h.value();
}

void hash_platform(Hasher& h, const dimemas::Platform& p) {
  h.i64(p.num_nodes);
  h.f64(p.relative_cpu_speed);
  h.u64(p.per_node_cpu_speed.size());
  for (const double s : p.per_node_cpu_speed) h.f64(s);
  h.u64(static_cast<std::uint64_t>(p.model));
  h.f64(p.bandwidth_MBps);
  h.f64(p.latency_us);
  h.f64(p.per_message_overhead_us);
  h.i64(p.num_buses);
  h.i64(p.input_ports);
  h.i64(p.output_ports);
  h.f64(p.fabric_capacity_links);
  h.u64(p.eager_threshold_bytes);
}

void hash_options(Hasher& h, const dimemas::ReplayOptions& o) {
  h.boolean(o.record_timeline);
  h.boolean(o.record_comms);
  h.boolean(o.collect_metrics);
  h.boolean(o.auto_expand_collectives);
  h.u64(static_cast<std::uint64_t>(o.collective_algo));
  // validate_input is excluded: a sealed context always replays with it off.
  h.f64(o.max_sim_time_s);
  // Hashed only when enabled so faults-off fingerprints stay bit-identical
  // to pre-fault builds. The canonical spec covers every model field.
  if (o.faults.enabled()) h.str(faults::to_spec(o.faults));
  // Same inert-when-off rule for the progress axis: the offload default
  // contributes nothing to the byte stream.
  if (o.progress.enabled()) h.str(dimemas::to_spec(o.progress));
}

std::shared_ptr<const trace::Trace> validated(
    std::shared_ptr<const trace::Trace> trace) {
  OSIM_CHECK(trace != nullptr);
  try {
    trace::validate(*trace);
  } catch (const Error& e) {
    // Fail at construction with the full picture: the validator's first
    // finding plus the lint verifier's structured, record-anchored report.
    std::string message =
        std::string("ReplayContext: trace failed validation: ") + e.what();
    const lint::Report report = lint::lint_trace(*trace);
    if (!report.clean()) {
      message += "\n" + report.render_text();
    }
    throw Error(message);
  }
  return trace;
}

}  // namespace

Fingerprint fingerprint_of(const trace::Trace& trace) {
  return trace_fingerprint(trace);
}

Fingerprint combined_fingerprint(const Fingerprint& trace_fingerprint,
                                 const dimemas::Platform& platform,
                                 dimemas::ReplayOptions options) {
  options.validate_input = false;  // a sealed context always replays with
                                   // validation off; hash what replays
  Hasher h;
  h.u64(trace_fingerprint.lo);
  h.u64(trace_fingerprint.hi);
  hash_platform(h, platform);
  hash_options(h, options);
  return h.value();
}

ReplayContext::ReplayContext(trace::Trace trace, dimemas::Platform platform,
                             dimemas::ReplayOptions options)
    : ReplayContext(std::make_shared<const trace::Trace>(std::move(trace)),
                    std::move(platform), options) {}

ReplayContext::ReplayContext(std::shared_ptr<const trace::Trace> trace,
                             dimemas::Platform platform,
                             dimemas::ReplayOptions options)
    : trace_(validated(std::move(trace))),
      platform_(std::move(platform)),
      options_(options),
      trace_fingerprint_(trace_fingerprint(*trace_)) {
  seal();
}

ReplayContext::ReplayContext(std::shared_ptr<const trace::Trace> trace,
                             Fingerprint trace_fingerprint,
                             dimemas::Platform platform,
                             dimemas::ReplayOptions options)
    : trace_(std::move(trace)),
      platform_(std::move(platform)),
      options_(options),
      trace_fingerprint_(trace_fingerprint) {
  seal();
}

void ReplayContext::seal() {
  options_.validate_input = false;  // validated once, at construction
  fingerprint_ = combined_fingerprint(trace_fingerprint_, platform_, options_);
}

ReplayContext ReplayContext::with_platform(dimemas::Platform platform) const {
  return ReplayContext(trace_, trace_fingerprint_, std::move(platform),
                       options_);
}

ReplayContext ReplayContext::with_options(dimemas::ReplayOptions options) const {
  return ReplayContext(trace_, trace_fingerprint_, platform_, options);
}

ReplayContext ReplayContext::with_bandwidth(double mbps) const {
  OSIM_CHECK(mbps > 0.0);
  dimemas::Platform platform = platform_;
  platform.bandwidth_MBps = mbps;
  return with_platform(std::move(platform));
}

ReplayContext ReplayContext::with_faults(faults::FaultModel faults) const {
  dimemas::ReplayOptions options = options_;
  options.faults = std::move(faults);
  return with_options(std::move(options));
}

ReplayContext ReplayContext::with_progress(dimemas::ProgressModel progress) const {
  dimemas::ReplayOptions options = options_;
  options.progress = progress;
  return with_options(std::move(options));
}

}  // namespace osim::pipeline
