// Cached lint runs, keyed by trace content.
//
// lint_trace() is a pure function of (trace, eager threshold) — the jobs
// count changes the schedule, never the report — so its result can live in
// the content-addressed store next to replay artifacts. The cache key mixes
// the trace fingerprint with the eager threshold and an analysis version
// (bumped whenever any pass's behaviour changes), so stale reports are
// structurally unreachable rather than merely unlikely.
//
// The store keeps the *full* diagnostic list (store/format.hpp, object kind
// "OSIMLNT1"), which is what makes a warm run's rendered output
// byte-identical to a cold one.
#pragma once

#include "lint/lint.hpp"
#include "pipeline/fingerprint.hpp"
#include "store/store.hpp"
#include "trace/trace.hpp"

namespace osim::pipeline {

/// Bump whenever any lint pass changes what it reports (message wording,
/// new passes, severity changes): cached reports from older analyses must
/// miss, not resurface.
inline constexpr std::uint32_t kLintAnalysisVersion = 1;

/// Cache key for a lint run: trace content fingerprint + eager threshold +
/// analysis and schema versions. Deliberately excludes LintOptions::jobs.
Fingerprint lint_fingerprint(const trace::Trace& trace,
                             const lint::LintOptions& options);

/// Runs lint_trace() through the store: a decodable cached report is
/// returned as-is, otherwise the trace is analyzed and the result written
/// back (best effort — a failed write never fails the lint). `store` may
/// be null (cache off). `cache_hit`, when non-null, reports which path
/// served the result.
lint::Report lint_with_cache(const trace::Trace& trace,
                             const lint::LintOptions& options,
                             store::ScenarioStore* store,
                             bool* cache_hit = nullptr);

}  // namespace osim::pipeline
