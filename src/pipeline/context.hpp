// ReplayContext — the immutable unit of work of the pipeline layer.
//
// A context bundles everything one dimemas::replay call consumes: the trace,
// the platform and the replay options. The trace is validated exactly once,
// at construction (failing early, with lint diagnostics, instead of deep
// inside a bandwidth bisection), and is shared by reference between derived
// contexts, so sweeping a platform parameter across hundreds of scenarios
// copies no records.
//
// Every context carries a 128-bit content fingerprint over its three
// inputs. Because replay() is a pure, deterministic function of exactly
// these inputs, the fingerprint is a sound cache key: two contexts with
// equal fingerprints replay to bit-identical results (see pipeline::Study).
#pragma once

#include <cstdint>
#include <memory>

#include "dimemas/platform.hpp"
#include "dimemas/replay.hpp"
#include "pipeline/fingerprint.hpp"
#include "trace/trace.hpp"

namespace osim::pipeline {

/// Content fingerprint over a trace alone (the trace lane of a context's
/// combined fingerprint). Used as the cache key for per-trace artifacts
/// that do not depend on a platform — e.g. cached lint reports.
Fingerprint fingerprint_of(const trace::Trace& trace);

/// The combined (trace, platform, options) fingerprint a sealed
/// ReplayContext would carry — validate_input is forced off first, exactly
/// as seal() does, so the result matches ReplayContext::fingerprint() bit
/// for bit. This is the piece that lets a caller who already knows a
/// trace's fingerprint (the osim_serve controller deduping requests, a
/// store maintenance tool) address scenarios without re-validating or even
/// holding the trace.
Fingerprint combined_fingerprint(const Fingerprint& trace_fingerprint,
                                 const dimemas::Platform& platform,
                                 dimemas::ReplayOptions options);

class ReplayContext {
 public:
  /// Validates `trace` up front; throws osim::Error on a corrupt trace,
  /// with the lint verifier's diagnostics appended so the failure names the
  /// offending rank/record instead of surfacing mid-search. The stored
  /// options always have validate_input = false: validation has happened.
  ReplayContext(trace::Trace trace, dimemas::Platform platform,
                dimemas::ReplayOptions options = {});
  ReplayContext(std::shared_ptr<const trace::Trace> trace,
                dimemas::Platform platform,
                dimemas::ReplayOptions options = {});

  const trace::Trace& trace() const { return *trace_; }
  const std::shared_ptr<const trace::Trace>& trace_ptr() const {
    return trace_;
  }
  const dimemas::Platform& platform() const { return platform_; }
  const dimemas::ReplayOptions& options() const { return options_; }
  const Fingerprint& fingerprint() const { return fingerprint_; }

  /// Derived contexts share the validated trace (and its fingerprint), so
  /// they cost one platform/options rehash — no records are copied or
  /// re-validated.
  ReplayContext with_platform(dimemas::Platform platform) const;
  ReplayContext with_options(dimemas::ReplayOptions options) const;
  ReplayContext with_bandwidth(double mbps) const;
  /// Same scenario under fault injection. The fault model is hashed into
  /// the fingerprint (via its canonical spec) only when enabled, so a
  /// faults-off context keeps its pre-fault fingerprint bit for bit.
  ReplayContext with_faults(faults::FaultModel faults) const;
  /// Same scenario under another MPI progress regime. Like faults, the
  /// model only reaches the fingerprint when enabled, so an offload
  /// context keeps its pre-axis fingerprint bit for bit.
  ReplayContext with_progress(dimemas::ProgressModel progress) const;

 private:
  ReplayContext(std::shared_ptr<const trace::Trace> trace,
                Fingerprint trace_fingerprint, dimemas::Platform platform,
                dimemas::ReplayOptions options);

  /// Forces validate_input off and recomputes the combined fingerprint.
  void seal();

  std::shared_ptr<const trace::Trace> trace_;
  dimemas::Platform platform_;
  dimemas::ReplayOptions options_;
  Fingerprint trace_fingerprint_;  // over the trace content only
  Fingerprint fingerprint_;        // trace + platform + options
};

}  // namespace osim::pipeline
