#include "pipeline/study.hpp"

#include <chrono>

#include "common/expect.hpp"
#include "dimemas/replay.hpp"

namespace osim::pipeline {

namespace {

int resolve_jobs(int jobs) {
  if (jobs > 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace

Study::Study(StudyOptions options)
    : jobs_(resolve_jobs(options.jobs)), options_(options) {
  // jobs_ - 1 workers: in map(), the calling thread is the remaining lane.
  workers_.reserve(static_cast<std::size_t>(jobs_ > 1 ? jobs_ - 1 : 0));
  for (int i = 1; i < jobs_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Study::~Study() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void Study::enqueue(std::function<void()> task) {
  if (workers_.empty()) {
    task();  // serial study: run helpers inline
    return;
  }
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    queue_.push_back(std::move(task));
  }
  queue_cv_.notify_one();
}

void Study::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

double Study::makespan(const ReplayContext& context, std::string_view label) {
  const Fingerprint key = context.fingerprint();
  if (options_.cache_replays) {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    if (const auto it = cache_.find(key); it != cache_.end()) {
      ++hits_;
      record_scenario(ScenarioRecord{key, it->second.makespan, 0.0, true,
                                     std::string(label),
                                     it->second.fault_counts,
                                     it->second.fault_wait_s});
      return it->second.makespan;
    }
    ++misses_;
  }
  // Computed outside the lock; a concurrent miss on the same key computes
  // the identical value (replay is pure), so the duplicate insert is
  // harmless.
  const auto wall_begin = std::chrono::steady_clock::now();
  const dimemas::SimResult result = run(context);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_begin)
          .count();
  CachedRun cached;
  cached.makespan = result.makespan;
  cached.fault_counts = result.fault_counts;
  if (result.metrics != nullptr) {
    for (const metrics::RankWaitAttribution& waits :
         result.metrics->rank_waits) {
      cached.fault_wait_s += waits.total().fault_s;
    }
  }
  if (options_.cache_replays) {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    cache_.emplace(key, cached);
  }
  record_scenario(ScenarioRecord{key, cached.makespan, wall_s, false,
                                 std::string(label), cached.fault_counts,
                                 cached.fault_wait_s});
  return cached.makespan;
}

void Study::record_scenario(ScenarioRecord record) {
  if (!options_.record_scenarios) return;
  std::lock_guard<std::mutex> lock(scenario_mutex_);
  scenarios_.push_back(std::move(record));
}

dimemas::SimResult Study::run(const ReplayContext& context) const {
  return dimemas::replay(context.trace(), context.platform(),
                         context.options());
}

std::size_t Study::cache_hits() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return hits_;
}

std::size_t Study::cache_misses() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return misses_;
}

std::size_t Study::cache_size() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return cache_.size();
}

std::vector<ScenarioRecord> Study::scenarios() const {
  std::lock_guard<std::mutex> lock(scenario_mutex_);
  return scenarios_;
}

}  // namespace osim::pipeline
