#include "pipeline/study.hpp"

#include <chrono>
#include <cstdio>

#include "common/expect.hpp"
#include "dimemas/replay.hpp"
#include "store/format.hpp"

namespace osim::pipeline {

namespace {

int resolve_jobs(int jobs) {
  if (jobs > 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace

const char* cache_tier_name(CacheTier tier) {
  switch (tier) {
    case CacheTier::kMiss:
      return "miss";
    case CacheTier::kMemory:
      return "memory";
    case CacheTier::kDisk:
      return "disk";
  }
  OSIM_UNREACHABLE("bad CacheTier");
}

Study::Study(StudyOptions options)
    : jobs_(resolve_jobs(options.jobs)), options_(options) {
  const std::string cache_dir = store::resolve_cache_dir(options_.cache_dir);
  if (!cache_dir.empty()) {
    store_ = std::make_unique<store::ScenarioStore>(cache_dir);
  }
  // jobs_ - 1 workers: in map(), the calling thread is the remaining lane.
  workers_.reserve(static_cast<std::size_t>(jobs_ > 1 ? jobs_ - 1 : 0));
  for (int i = 1; i < jobs_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Study::~Study() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void Study::enqueue(std::function<void()> task) {
  if (workers_.empty()) {
    task();  // serial study: run helpers inline
    return;
  }
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    queue_.push_back(std::move(task));
  }
  queue_cv_.notify_one();
}

void Study::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

double Study::makespan(const ReplayContext& context, std::string_view label) {
  const Fingerprint key = context.fingerprint();
  if (options_.cache_replays) {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    if (const auto it = cache_.find(key); it != cache_.end()) {
      ++hits_;
      ScenarioRecord record{key,   it->second.makespan,
                            0.0,   true,
                            std::string(label), it->second.fault_counts,
                            it->second.fault_wait_s,
                            it->second.progress_wait_s, CacheTier::kMemory};
      record_scenario(std::move(record));
      return it->second.makespan;
    }
  }
  // Disk tier: read through the persistent store before paying for a
  // replay. Because the fingerprint covers the full (trace, platform,
  // options) content and replay is pure, a stored artifact is bit-identical
  // to what a cold evaluation would produce.
  if (store_ != nullptr && options_.cache_replays) {
    if (const std::optional<store::ScenarioArtifact> artifact =
            store_->load(key)) {
      CachedRun cached;
      cached.makespan = artifact->makespan;
      cached.fault_counts = artifact->fault_counts;
      cached.fault_wait_s = artifact->fault_wait_s;
      cached.progress_wait_s = artifact->progress_wait_s;
      {
        std::lock_guard<std::mutex> lock(cache_mutex_);
        ++disk_hits_;
        cache_.emplace(key, cached);  // promote into the memory tier
      }
      ScenarioRecord record{key,   cached.makespan,
                            0.0,   true,
                            std::string(label), cached.fault_counts,
                            cached.fault_wait_s,
                            cached.progress_wait_s, CacheTier::kDisk};
      record_scenario(std::move(record));
      return cached.makespan;
    }
  }
  if (options_.cache_replays) {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    ++misses_;
  }
  // Computed outside the lock; a concurrent miss on the same key computes
  // the identical value (replay is pure), so the duplicate insert is
  // harmless.
  const auto wall_begin = std::chrono::steady_clock::now();
  const dimemas::SimResult result = run(context);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_begin)
          .count();
  const store::ScenarioArtifact artifact = store::make_artifact(result);
  CachedRun cached;
  cached.makespan = artifact.makespan;
  cached.fault_counts = artifact.fault_counts;
  cached.fault_wait_s = artifact.fault_wait_s;
  cached.progress_wait_s = artifact.progress_wait_s;
  if (options_.cache_replays) {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    cache_.emplace(key, cached);
  }
  if (store_ != nullptr && options_.cache_replays) {
    try {
      store_->save(key, artifact);  // write-behind
    } catch (const Error& e) {
      if (!warned_store_write_.exchange(true)) {
        std::fprintf(stderr,
                     "warning: scenario store write failed (%s); "
                     "continuing without persistence\n",
                     e.what());
      }
    }
  }
  ScenarioRecord record{key,   cached.makespan,
                        wall_s, false,
                        std::string(label), cached.fault_counts,
                        cached.fault_wait_s,
                        cached.progress_wait_s, CacheTier::kMiss};
  record_scenario(std::move(record));
  return cached.makespan;
}

void Study::record_scenario(ScenarioRecord record) {
  if (!options_.record_scenarios) return;
  std::lock_guard<std::mutex> lock(scenario_mutex_);
  scenarios_.push_back(std::move(record));
}

dimemas::SimResult Study::run(const ReplayContext& context) const {
  return dimemas::replay(context.trace(), context.platform(),
                         context.options());
}

std::size_t Study::cache_hits() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return hits_;
}

std::size_t Study::cache_misses() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return misses_;
}

std::size_t Study::cache_size() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return cache_.size();
}

std::size_t Study::disk_hits() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return disk_hits_;
}

std::vector<ScenarioRecord> Study::scenarios() const {
  std::lock_guard<std::mutex> lock(scenario_mutex_);
  return scenarios_;
}

}  // namespace osim::pipeline
