#include "pipeline/study.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common/expect.hpp"
#include "dimemas/replay.hpp"
#include "store/format.hpp"

namespace osim::pipeline {

namespace {

int resolve_jobs(int jobs) {
  if (jobs > 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace

const char* cache_tier_name(CacheTier tier) {
  switch (tier) {
    case CacheTier::kMiss:
      return "miss";
    case CacheTier::kMemory:
      return "memory";
    case CacheTier::kDisk:
      return "disk";
    case CacheTier::kJournal:
      return "journal";
  }
  OSIM_UNREACHABLE("bad CacheTier");
}

Study::Study(StudyOptions options)
    : jobs_(resolve_jobs(options.jobs)), options_(options) {
  const std::string cache_dir = store::resolve_cache_dir(options_.cache_dir);
  if (!cache_dir.empty()) {
    store_ = std::make_unique<store::ScenarioStore>(cache_dir);
  }
  supervised_ = options_.scenario_timeout_s > 0.0 ||
                options_.study_deadline_s > 0.0 ||
                options_.memory_budget_bytes > 0 || options_.journal ||
                options_.resume || options_.stop_flag != nullptr;
  if (options_.study_deadline_s > 0.0) {
    study_deadline_ =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(
                               options_.study_deadline_s));
  }
  if (options_.journal || options_.resume) {
    if (cache_dir.empty()) {
      throw Error(
          "study journal requires a scenario store: pass --cache-dir or "
          "set $OSIM_CACHE_DIR");
    }
    journal_ = std::make_unique<supervise::StudyJournal>(
        cache_dir, supervise::study_fingerprint(options_.study_id));
    if (options_.resume) {
      // Completed entries (including ones an earlier resume itself served)
      // become the resume tier; timeout/cancelled/failed entries are NOT
      // resumable — a rerun should retry them.
      for (const supervise::JournalEntry& entry : journal_->recovered()) {
        if (entry.status == supervise::ScenarioStatus::kOk ||
            entry.status == supervise::ScenarioStatus::kSkippedResume) {
          resume_map_[entry.fingerprint] = entry;
        }
      }
    }
  }
  // jobs_ - 1 workers: in map(), the calling thread is the remaining lane.
  workers_.reserve(static_cast<std::size_t>(jobs_ > 1 ? jobs_ - 1 : 0));
  for (int i = 1; i < jobs_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Study::~Study() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  // Last chance for writes the store rejected earlier (transient full
  // disk, flaky mount): anything still failing is abandoned — the store
  // is a cache, never a correctness dependency.
  drain_pending_writes(/*force=*/true);
  if (journal_ != nullptr && !interrupted()) {
    // The sweep ran to its natural end (timeouts and failures included):
    // mark the journal finished so osim_cache gc may evict it. An
    // interrupted study keeps an open journal for --resume.
    try {
      journal_->append_complete();
    } catch (const Error&) {
      // Destructor: an unwritable journal only costs the gc eligibility.
    }
  }
}

void Study::enqueue(std::function<void()> task) {
  if (workers_.empty()) {
    task();  // serial study: run helpers inline
    return;
  }
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    queue_.push_back(std::move(task));
  }
  queue_cv_.notify_one();
}

void Study::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

double Study::makespan(const ReplayContext& context, std::string_view label) {
  const Fingerprint key = context.fingerprint();
  if (options_.cache_replays) {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    if (const auto it = cache_.find(key); it != cache_.end()) {
      ++hits_;
      ScenarioRecord record{key,   it->second.makespan,
                            0.0,   true,
                            std::string(label), it->second.fault_counts,
                            it->second.fault_wait_s,
                            it->second.progress_wait_s, CacheTier::kMemory};
      record_scenario(std::move(record));
      return it->second.makespan;
    }
  }
  // Resume tier: a previous (killed or interrupted) run of this study
  // journaled the scenario as completed, entry values included, so it is
  // served without replaying and without even needing the store object to
  // still exist. The journal gets a skipped-resume entry — the record
  // itself stays status ok, because the *result* is a completed one.
  if (!resume_map_.empty() && options_.cache_replays) {
    if (const auto it = resume_map_.find(key); it != resume_map_.end()) {
      CachedRun cached;
      cached.makespan = it->second.makespan;
      cached.fault_counts = it->second.fault_counts;
      cached.fault_wait_s = it->second.fault_wait_s;
      cached.progress_wait_s = it->second.progress_wait_s;
      {
        std::lock_guard<std::mutex> lock(cache_mutex_);
        ++journal_hits_;
        cache_insert(key, cached);
      }
      journal_append(key, supervise::ScenarioStatus::kSkippedResume, cached,
                     0.0);
      ScenarioRecord record{key,   cached.makespan,
                            0.0,   true,
                            std::string(label), cached.fault_counts,
                            cached.fault_wait_s,
                            cached.progress_wait_s, CacheTier::kJournal};
      record_scenario(std::move(record));
      return cached.makespan;
    }
  }
  // Disk tier: read through the persistent store before paying for a
  // replay. Because the fingerprint covers the full (trace, platform,
  // options) content and replay is pure, a stored artifact is bit-identical
  // to what a cold evaluation would produce.
  if (store_ != nullptr && options_.cache_replays) {
    if (const std::optional<store::ScenarioArtifact> artifact =
            store_->load(key)) {
      CachedRun cached;
      cached.makespan = artifact->makespan;
      cached.fault_counts = artifact->fault_counts;
      cached.fault_wait_s = artifact->fault_wait_s;
      cached.progress_wait_s = artifact->progress_wait_s;
      {
        std::lock_guard<std::mutex> lock(cache_mutex_);
        ++disk_hits_;
        cache_insert(key, cached);  // promote into the memory tier
      }
      if (supervised_) {
        journal_append(key, supervise::ScenarioStatus::kOk, cached, 0.0);
      }
      ScenarioRecord record{key,   cached.makespan,
                            0.0,   true,
                            std::string(label), cached.fault_counts,
                            cached.fault_wait_s,
                            cached.progress_wait_s, CacheTier::kDisk};
      record_scenario(std::move(record));
      return cached.makespan;
    }
  }
  if (options_.cache_replays) {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    ++misses_;
  }
  const auto wall_begin = Clock::now();
  // Supervised pre-flight: once the stop flag or study deadline has
  // fired, pending scenarios are recorded as cancelled without starting a
  // replay that would only be cancelled at its first poll anyway.
  CancelToken token(options_.stop_flag);
  if (supervised_) {
    token.set_study_deadline(study_deadline_);
    if (const StopCause pre = token.check(); pre != StopCause::kNone) {
      return record_stopped(key, label, pre, PartialProgress{}, 0.0);
    }
    if (options_.scenario_timeout_s > 0.0) {
      token.set_scenario_deadline(
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(
                                 options_.scenario_timeout_s)));
    }
  }
  // Computed outside the lock; a concurrent miss on the same key computes
  // the identical value (replay is pure), so the duplicate insert is
  // harmless.
  dimemas::SimResult result;
  if (supervised_) {
    dimemas::ReplayOptions replay_options = context.options();
    replay_options.cancel = &token;
    try {
      result = dimemas::replay(context.trace(), context.platform(),
                               replay_options);
    } catch (const CancelledError& e) {
      const double wall_s =
          std::chrono::duration<double>(Clock::now() - wall_begin).count();
      return record_stopped(key, label, e.cause(), e.partial(), wall_s);
    } catch (const Error& e) {
      // Under supervision a bad scenario (malformed trace, deadlock) is a
      // journaled terminal status, not a sweep abort.
      std::fprintf(stderr, "warning: scenario %s failed: %s\n",
                   to_hex(key).c_str(), e.what());
      journal_append(key, supervise::ScenarioStatus::kFailed, CachedRun{},
                     0.0);
      ScenarioRecord record;
      record.fingerprint = key;
      record.label = std::string(label);
      record.status = supervise::ScenarioStatus::kFailed;
      record_scenario(std::move(record));
      return 0.0;
    }
  } else {
    result = run(context);
  }
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - wall_begin).count();
  const store::ScenarioArtifact artifact = store::make_artifact(result);
  CachedRun cached;
  cached.makespan = artifact.makespan;
  cached.fault_counts = artifact.fault_counts;
  cached.fault_wait_s = artifact.fault_wait_s;
  cached.progress_wait_s = artifact.progress_wait_s;
  if (options_.cache_replays) {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    cache_insert(key, cached);
  }
  if (store_ != nullptr && options_.cache_replays) {
    store_save(key, artifact);  // write-behind, queued for retry on failure
  }
  journal_append(key, supervise::ScenarioStatus::kOk, cached, 0.0);
  ScenarioRecord record{key,   cached.makespan,
                        wall_s, false,
                        std::string(label), cached.fault_counts,
                        cached.fault_wait_s,
                        cached.progress_wait_s, CacheTier::kMiss};
  record_scenario(std::move(record));
  return cached.makespan;
}

void Study::cache_insert(const Fingerprint& key, const CachedRun& run) {
  const auto [it, inserted] = cache_.emplace(key, run);
  (void)it;
  if (!inserted || options_.memory_budget_bytes <= 0) return;
  insertion_order_.push_back(key);
  // Approximate per-entry footprint: the node itself plus hash-table and
  // bookkeeping overhead. The point is a stable, monotone bound, not an
  // exact heap accounting.
  constexpr std::size_t kEntryBytes =
      sizeof(std::pair<const Fingerprint, CachedRun>) + 64;
  const auto budget = static_cast<std::size_t>(options_.memory_budget_bytes);
  while (cache_.size() > 1 && cache_.size() * kEntryBytes > budget &&
         !insertion_order_.empty()) {
    const Fingerprint oldest = insertion_order_.front();
    insertion_order_.pop_front();
    if (oldest == key) {
      // Never evict what we just inserted — with a budget below one entry
      // the cache still holds the newest result.
      insertion_order_.push_back(oldest);
      if (insertion_order_.size() <= 1) break;
      continue;
    }
    if (cache_.erase(oldest) > 0) ++evictions_;
  }
}

void Study::journal_append(const Fingerprint& key,
                           supervise::ScenarioStatus status,
                           const CachedRun& run, double partial_blocked_s) {
  if (journal_ == nullptr) return;
  supervise::JournalEntry entry;
  entry.fingerprint = key;
  entry.status = status;
  entry.makespan = run.makespan;
  entry.fault_wait_s = run.fault_wait_s;
  entry.progress_wait_s = run.progress_wait_s;
  entry.partial_blocked_s = partial_blocked_s;
  entry.fault_counts = run.fault_counts;
  try {
    journal_->append(entry);
  } catch (const Error& e) {
    if (!warned_store_write_.exchange(true)) {
      std::fprintf(stderr,
                   "warning: study journal write failed (%s); resume "
                   "coverage will be incomplete\n",
                   e.what());
    }
  }
}

double Study::record_stopped(const Fingerprint& key, std::string_view label,
                             StopCause cause, const PartialProgress& partial,
                             double wall_s) {
  const supervise::ScenarioStatus status =
      cause == StopCause::kScenarioTimeout
          ? supervise::ScenarioStatus::kTimeout
          : supervise::ScenarioStatus::kCancelled;
  if (cause != StopCause::kScenarioTimeout) {
    interrupted_.store(true, std::memory_order_relaxed);
  }
  CachedRun partial_run;
  partial_run.makespan = partial.sim_time_s;
  journal_append(key, status, partial_run, partial.blocked_s);
  ScenarioRecord record;
  record.fingerprint = key;
  record.makespan = partial.sim_time_s;
  record.wall_s = wall_s;
  record.label = std::string(label);
  record.status = status;
  record.partial_blocked_s = partial.blocked_s;
  record_scenario(std::move(record));
  return partial.sim_time_s;
}

void Study::store_save(const Fingerprint& key,
                       const store::ScenarioArtifact& artifact) {
  try {
    store_->save(key, artifact);
    drain_pending_writes(/*force=*/false);
    return;
  } catch (const Error& e) {
    if (!warned_store_write_.exchange(true)) {
      std::fprintf(stderr,
                   "warning: scenario store write failed (%s); queued for "
                   "retry\n",
                   e.what());
    }
  }
  PendingWrite pending;
  pending.key = key;
  pending.artifact = artifact;
  pending.attempts = 1;
  pending.next_try = Clock::now() + std::chrono::milliseconds(100);
  std::lock_guard<std::mutex> lock(pending_mutex_);
  pending_writes_.push_back(std::move(pending));
  if (pending_writes_.size() > kMaxPendingWrites) {
    pending_writes_.pop_front();  // oldest result is the cheapest loss
  }
}

std::size_t Study::drain_pending_writes(bool force) {
  if (store_ == nullptr) return 0;
  std::deque<PendingWrite> due;
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    if (pending_writes_.empty()) return 0;
    const Clock::time_point now = Clock::now();
    std::deque<PendingWrite> remaining;
    for (PendingWrite& pending : pending_writes_) {
      if (force || pending.next_try <= now) {
        due.push_back(std::move(pending));
      } else {
        remaining.push_back(std::move(pending));
      }
    }
    pending_writes_ = std::move(remaining);
  }
  for (PendingWrite& pending : due) {
    try {
      store_->save(pending.key, pending.artifact);
    } catch (const Error&) {
      // Exponential backoff, capped: 0.1s * 2^attempts, at most ~30s
      // between retries. Attempts are unbounded — the destructor's forced
      // flush is the final word.
      ++pending.attempts;
      const double delay_s =
          std::min(0.1 * static_cast<double>(1ULL << std::min(
                                                 pending.attempts, 8)),
                   30.0);
      pending.next_try =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(delay_s));
      std::lock_guard<std::mutex> lock(pending_mutex_);
      pending_writes_.push_back(std::move(pending));
    }
  }
  std::lock_guard<std::mutex> lock(pending_mutex_);
  return pending_writes_.size();
}

std::size_t Study::pending_store_writes() const {
  std::lock_guard<std::mutex> lock(pending_mutex_);
  return pending_writes_.size();
}

std::size_t Study::flush_store_writes() {
  return drain_pending_writes(/*force=*/true);
}

void Study::record_scenario(ScenarioRecord record) {
  if (!options_.record_scenarios) return;
  std::lock_guard<std::mutex> lock(scenario_mutex_);
  scenarios_.push_back(std::move(record));
}

dimemas::SimResult Study::run(const ReplayContext& context) const {
  return dimemas::replay(context.trace(), context.platform(),
                         context.options());
}

std::size_t Study::cache_hits() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return hits_;
}

std::size_t Study::cache_misses() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return misses_;
}

std::size_t Study::cache_size() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return cache_.size();
}

std::size_t Study::disk_hits() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return disk_hits_;
}

std::size_t Study::journal_hits() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return journal_hits_;
}

std::size_t Study::cache_evictions() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return evictions_;
}

std::vector<ScenarioRecord> Study::scenarios() const {
  std::lock_guard<std::mutex> lock(scenario_mutex_);
  return scenarios_;
}

}  // namespace osim::pipeline
