// Structured run reports.
//
// Serializes one replay (summary, per-rank statistics, wait-time
// attribution, resource occupancy, protocol counters) or one study (cache
// behaviour, per-scenario makespans and wall times) as a versioned JSON
// document. The schema is documented in DESIGN.md ("JSON run reports");
// bump kReportVersion on any incompatible change.
#pragma once

#include <string>

#include "dimemas/platform.hpp"
#include "dimemas/result.hpp"
#include "lint/diagnostics.hpp"
#include "pipeline/study.hpp"

namespace osim::pipeline {

inline constexpr int kReportVersion = 1;

/// JSON report for one replay. `app` labels the document (typically
/// trace.app). The attribution/occupancy/protocol sections are emitted only
/// when `result.metrics` is populated (ReplayOptions::collect_metrics).
std::string replay_report_json(const dimemas::SimResult& result,
                               const dimemas::Platform& platform,
                               const std::string& app);

/// Same, with the trace's lint report embedded as a "lint" block (schema
/// "osim.lint_report" nested under the run). Passing nullptr emits a
/// document byte-identical to the three-argument overload.
std::string replay_report_json(const dimemas::SimResult& result,
                               const dimemas::Platform& platform,
                               const std::string& app,
                               const lint::Report* lint_report);

/// JSON report for a sweep: cache statistics plus one record per evaluated
/// scenario (requires StudyOptions::record_scenarios for the latter).
std::string study_report_json(const Study& study);

/// Same, with a "lint" block covering the study's input trace; nullptr is
/// byte-identical to the one-argument overload.
///
/// Supervised studies (Study::supervised()) additionally carry a
/// study-level "status" ("complete" or "interrupted") and a per-scenario
/// "status" (ok|timeout|cancelled|failed) with partial wait attribution
/// for stopped scenarios; unsupervised output is byte-identical to
/// pre-supervision builds.
std::string study_report_json(const Study& study,
                              const lint::Report* lint_report);

/// Canonical study report: only fields that are a pure function of the
/// scenario set — label, fingerprint, makespan, status, fault/progress
/// attribution — with wall times, cache tiers and hit counters omitted.
/// Two runs that evaluated the same scenarios to the same results render
/// byte-identically, regardless of --jobs, cache warmth, or how many
/// kill/--resume round trips it took; scripts/resilience_test.sh diffs
/// these documents with cmp.
std::string study_report_canonical_json(const Study& study);

/// Writes `json` to `path`; throws osim::Error on I/O failure.
void write_report(const std::string& path, const std::string& json);

}  // namespace osim::pipeline
