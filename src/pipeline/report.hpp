// Structured run reports.
//
// Serializes one replay (summary, per-rank statistics, wait-time
// attribution, resource occupancy, protocol counters) or one study (cache
// behaviour, per-scenario makespans and wall times) as a versioned JSON
// document. The schema is documented in DESIGN.md ("JSON run reports");
// bump kReportVersion on any incompatible change.
#pragma once

#include <string>

#include "dimemas/platform.hpp"
#include "dimemas/result.hpp"
#include "pipeline/study.hpp"

namespace osim::pipeline {

inline constexpr int kReportVersion = 1;

/// JSON report for one replay. `app` labels the document (typically
/// trace.app). The attribution/occupancy/protocol sections are emitted only
/// when `result.metrics` is populated (ReplayOptions::collect_metrics).
std::string replay_report_json(const dimemas::SimResult& result,
                               const dimemas::Platform& platform,
                               const std::string& app);

/// JSON report for a sweep: cache statistics plus one record per evaluated
/// scenario (requires StudyOptions::record_scenarios for the latter).
std::string study_report_json(const Study& study);

/// Writes `json` to `path`; throws osim::Error on I/O failure.
void write_report(const std::string& path, const std::string& json);

}  // namespace osim::pipeline
