#include "pipeline/report.hpp"

#include <algorithm>
#include <fstream>
#include <utility>
#include <vector>

#include "common/expect.hpp"
#include "common/strings.hpp"
#include "metrics/json.hpp"

namespace osim::pipeline {

namespace {

using metrics::JsonWriter;

const char* model_name(dimemas::NetworkModelKind model) {
  switch (model) {
    case dimemas::NetworkModelKind::kBus:
      return "bus";
    case dimemas::NetworkModelKind::kFairShare:
      return "fairshare";
  }
  OSIM_UNREACHABLE("bad NetworkModelKind");
}

void write_components(JsonWriter& w, const metrics::WaitComponents& c) {
  w.begin_object();
  w.key("dependency_s").value(c.dependency_s);
  // Present only when fault injection actually delayed something, so
  // fault-free reports stay byte-identical to pre-fault builds.
  if (c.fault_s != 0.0) w.key("fault_s").value(c.fault_s);
  // Same contract for the progress engine: only non-offload replays can
  // accrue progress_s, so offload reports stay byte-identical.
  if (c.progress_s != 0.0) w.key("progress_s").value(c.progress_s);
  w.key("bus_contention_s").value(c.bus_contention_s);
  w.key("port_contention_s").value(c.port_contention_s);
  w.key("wire_s").value(c.wire_s);
  w.key("latency_s").value(c.latency_s);
  w.key("total_s").value(c.total_s());
  w.end_object();
}

void write_occupancy(JsonWriter& w, const metrics::OccupancyStats& stats) {
  w.begin_object();
  w.key("tracked").value(stats.tracked);
  w.key("capacity").value(stats.capacity);
  w.key("peak").value(stats.peak);
  w.key("mean_level").value(stats.mean_level);
  w.key("busy_s").value(stats.busy_s);
  w.key("utilization").value(stats.utilization);
  w.key("histogram_s").begin_array();
  for (const double seconds : stats.histogram) w.value(seconds);
  w.end_array();
  w.end_object();
}

void write_platform(JsonWriter& w, const dimemas::Platform& p) {
  w.begin_object();
  w.key("num_nodes").value(p.num_nodes);
  w.key("model").value(model_name(p.model));
  w.key("relative_cpu_speed").value(p.relative_cpu_speed);
  w.key("bandwidth_MBps").value(p.bandwidth_MBps);
  w.key("latency_us").value(p.latency_us);
  w.key("per_message_overhead_us").value(p.per_message_overhead_us);
  w.key("num_buses").value(p.num_buses);
  w.key("input_ports").value(p.input_ports);
  w.key("output_ports").value(p.output_ports);
  w.key("fabric_capacity_links").value(p.fabric_capacity_links);
  w.key("eager_threshold_bytes").value(p.eager_threshold_bytes);
  w.end_object();
}


void write_fault_counts(JsonWriter& w, const faults::Counts& c) {
  w.begin_object();
  w.key("seed").value(c.seed);
  w.key("messages_dropped").value(c.messages_dropped);
  w.key("retransmits").value(c.retransmits);
  w.key("handshake_reissues").value(c.handshake_reissues);
  w.key("hard_stalls").value(c.hard_stalls);
  w.key("degraded_transfers").value(c.degraded_transfers);
  w.key("perturbed_bursts").value(c.perturbed_bursts);
  w.key("straggled_bursts").value(c.straggled_bursts);
  w.key("injected_delay_s").value(c.injected_delay_s);
  w.key("injected_compute_s").value(c.injected_compute_s);
  w.end_object();
}

/// The "lint" block: counts plus the full diagnostic list, mirroring
/// lint::Report::render_json() field for field (minus the outer schema
/// header, which the surrounding report document already carries).
void write_lint(JsonWriter& w, const lint::Report& report) {
  w.begin_object();
  w.key("schema").value("osim.lint_report");
  w.key("version").value(static_cast<std::int64_t>(lint::kLintReportVersion));
  w.key("clean").value(report.clean());
  w.key("errors").value(static_cast<std::uint64_t>(report.num_errors()));
  w.key("warnings").value(static_cast<std::uint64_t>(report.num_warnings()));
  w.key("infos").value(static_cast<std::uint64_t>(report.num_infos()));
  w.key("diagnostics").begin_array();
  for (const lint::Diagnostic& d : report.diagnostics()) {
    w.begin_object();
    w.key("severity").value(lint::severity_name(d.severity));
    w.key("pass").value(d.pass);
    if (!d.code.empty()) w.key("code").value(d.code);
    if (d.rank >= 0) w.key("rank").value(d.rank);
    if (d.record != lint::kNoRecord) {
      w.key("record").value(static_cast<std::int64_t>(d.record));
    }
    w.key("message").value(d.message);
    if (!d.evidence.empty()) w.key("evidence").value(d.evidence);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace

std::string replay_report_json(const dimemas::SimResult& result,
                               const dimemas::Platform& platform,
                               const std::string& app) {
  return replay_report_json(result, platform, app, nullptr);
}

std::string replay_report_json(const dimemas::SimResult& result,
                               const dimemas::Platform& platform,
                               const std::string& app,
                               const lint::Report* lint_report) {
  const metrics::ReplayMetrics* m = result.metrics.get();
  JsonWriter w;
  w.begin_object();
  w.key("schema").value("osim.replay_report");
  w.key("version").value(static_cast<std::int64_t>(kReportVersion));
  w.key("app").value(app);
  w.key("platform");
  write_platform(w, platform);

  w.key("summary").begin_object();
  w.key("makespan_s").value(result.makespan);
  w.key("efficiency").value(result.efficiency());
  w.key("total_compute_s").value(result.total_compute_s());
  w.key("total_blocked_s").value(result.total_blocked_s());
  w.key("des_events").value(result.des_events);
  w.end_object();

  w.key("ranks").begin_array();
  for (std::size_t r = 0; r < result.rank_stats.size(); ++r) {
    const dimemas::RankStats& stats = result.rank_stats[r];
    w.begin_object();
    w.key("rank").value(static_cast<std::int64_t>(r));
    w.key("compute_s").value(stats.compute_s);
    w.key("send_blocked_s").value(stats.send_blocked_s);
    w.key("recv_blocked_s").value(stats.recv_blocked_s);
    w.key("wait_blocked_s").value(stats.wait_blocked_s);
    w.key("blocked_s").value(stats.blocked_s());
    w.key("finish_time_s").value(stats.finish_time);
    w.key("messages_sent").value(stats.messages_sent);
    w.key("messages_received").value(stats.messages_received);
    w.key("bytes_sent").value(stats.bytes_sent);
    w.key("bytes_received").value(stats.bytes_received);
    if (m != nullptr && r < m->rank_waits.size()) {
      const metrics::RankWaitAttribution& attr = m->rank_waits[r];
      w.key("wait_attribution").begin_object();
      w.key("send");
      write_components(w, attr.send);
      w.key("recv");
      write_components(w, attr.recv);
      w.key("wait");
      write_components(w, attr.wait);
      w.key("total");
      write_components(w, attr.total());
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();

  if (m != nullptr) {
    w.key("peer_waits").begin_array();
    for (const metrics::PeerWait& pw : m->peer_waits) {
      w.begin_object();
      w.key("rank").value(pw.rank);
      w.key("peer").value(pw.peer);
      w.key("blocks").value(pw.blocks);
      w.key("components");
      write_components(w, pw.components);
      w.end_object();
    }
    w.end_array();

    w.key("occupancy").begin_object();
    w.key("bus");
    write_occupancy(w, m->bus);
    w.key("nodes").begin_array();
    const std::size_t nodes = m->node_in.size();
    for (std::size_t n = 0; n < nodes; ++n) {
      w.begin_object();
      w.key("node").value(static_cast<std::int64_t>(n));
      w.key("in");
      write_occupancy(w, m->node_in[n]);
      w.key("out");
      write_occupancy(w, m->node_out[n]);
      w.end_object();
    }
    w.end_array();
    w.end_object();

    w.key("protocol").begin_object();
    w.key("eager_messages").value(m->protocol.eager_messages);
    w.key("rendezvous_messages").value(m->protocol.rendezvous_messages);
    w.key("eager_bytes").value(m->protocol.eager_bytes);
    w.key("rendezvous_bytes").value(m->protocol.rendezvous_bytes);
    w.end_object();
  }

  // Emitted only for fault-injected runs: fault-free reports stay
  // byte-identical to pre-fault builds.
  if (result.fault_counts.enabled) {
    w.key("faults");
    write_fault_counts(w, result.fault_counts);
  }

  if (lint_report != nullptr) {
    w.key("lint");
    write_lint(w, *lint_report);
  }

  w.end_object();
  return w.str();
}

std::string study_report_json(const Study& study) {
  return study_report_json(study, nullptr);
}

namespace {

/// Study records sorted by (label, fingerprint): records accumulate in
/// completion order, which depends on thread scheduling, and the sort is
/// what makes every report deterministic across --jobs values.
std::vector<ScenarioRecord> sorted_scenarios(const Study& study) {
  std::vector<ScenarioRecord> records = study.scenarios();
  std::sort(records.begin(), records.end(),
            [](const ScenarioRecord& a, const ScenarioRecord& b) {
              if (a.label != b.label) return a.label < b.label;
              return std::make_pair(a.fingerprint.hi, a.fingerprint.lo) <
                     std::make_pair(b.fingerprint.hi, b.fingerprint.lo);
            });
  return records;
}

}  // namespace

std::string study_report_json(const Study& study,
                              const lint::Report* lint_report) {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value("osim.study_report");
  w.key("version").value(static_cast<std::int64_t>(kReportVersion));
  // Supervision fields are emitted only for supervised studies, so the
  // default path stays byte-identical (perf_identity_test pins it).
  if (study.supervised()) {
    w.key("status").value(study.interrupted() ? "interrupted" : "complete");
  }
  w.key("jobs").value(static_cast<std::int64_t>(study.jobs()));
  w.key("cache").begin_object();
  w.key("hits").value(static_cast<std::uint64_t>(study.cache_hits()));
  w.key("disk_hits").value(static_cast<std::uint64_t>(study.disk_hits()));
  if (study.supervised()) {
    w.key("journal_hits")
        .value(static_cast<std::uint64_t>(study.journal_hits()));
    w.key("evictions")
        .value(static_cast<std::uint64_t>(study.cache_evictions()));
  }
  w.key("misses").value(static_cast<std::uint64_t>(study.cache_misses()));
  w.key("size").value(static_cast<std::uint64_t>(study.cache_size()));
  w.end_object();
  w.key("scenarios").begin_array();
  for (const ScenarioRecord& record : sorted_scenarios(study)) {
    w.begin_object();
    w.key("label").value(record.label);
    w.key("fingerprint").value(to_hex(record.fingerprint));
    w.key("makespan_s").value(record.makespan);
    w.key("wall_s").value(record.wall_s);
    w.key("cache_hit").value(record.cache_hit);
    w.key("tier").value(cache_tier_name(record.cache_tier));
    if (study.supervised()) {
      w.key("status").value(supervise::scenario_status_name(record.status));
      if (record.partial_blocked_s != 0.0) {
        w.key("partial_blocked_s").value(record.partial_blocked_s);
      }
    }
    if (record.fault_counts.enabled) {
      w.key("faults");
      write_fault_counts(w, record.fault_counts);
      w.key("fault_wait_s").value(record.fault_wait_s);
    }
    if (record.progress_wait_s != 0.0) {
      w.key("progress_wait_s").value(record.progress_wait_s);
    }
    w.end_object();
  }
  w.end_array();
  if (lint_report != nullptr) {
    w.key("lint");
    write_lint(w, *lint_report);
  }
  w.end_object();
  return w.str();
}

std::string study_report_canonical_json(const Study& study) {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value("osim.study_report.canonical");
  w.key("version").value(static_cast<std::int64_t>(kReportVersion));
  w.key("status").value(study.interrupted() ? "interrupted" : "complete");
  w.key("scenarios").begin_array();
  for (const ScenarioRecord& record : sorted_scenarios(study)) {
    w.begin_object();
    w.key("label").value(record.label);
    w.key("fingerprint").value(to_hex(record.fingerprint));
    w.key("makespan_s").value(record.makespan);
    w.key("status").value(supervise::scenario_status_name(record.status));
    if (record.fault_counts.enabled) {
      w.key("faults");
      write_fault_counts(w, record.fault_counts);
      w.key("fault_wait_s").value(record.fault_wait_s);
    }
    if (record.progress_wait_s != 0.0) {
      w.key("progress_wait_s").value(record.progress_wait_s);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

void write_report(const std::string& path, const std::string& json) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("cannot open report file: " + path);
  out << json << '\n';
  out.flush();
  if (!out) throw Error("failed writing report file: " + path);
}

}  // namespace osim::pipeline
