#include "lint/hb.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <variant>

#include "common/expect.hpp"
#include "common/strings.hpp"
#include "dimemas/matching.hpp"

namespace osim::lint {

namespace {

using dimemas::RecvEnvelope;
using dimemas::SendEnvelope;
using dimemas::envelope_matches;
using trace::GlobalOp;
using trace::kAnyRank;
using trace::Rank;
using trace::Record;
using trace::Recv;
using trace::ReqId;
using trace::Send;
using trace::Wait;

/// True when every component of `a` is <= the matching component of `b`.
bool dominates(const VectorClock& a, const VectorClock& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
  }
  return true;
}

void join_into(VectorClock& dst, const VectorClock& src) {
  for (std::size_t i = 0; i < dst.size() && i < src.size(); ++i) {
    dst[i] = std::max(dst[i], src[i]);
  }
}

struct PendingRecv;

struct PendingSend {
  SendEnvelope env;
  bool rendezvous = false;
  bool matched = false;
  std::size_t record = 0;
  VectorClock post;
  const PendingRecv* partner = nullptr;
};

struct PendingRecv {
  RecvEnvelope env;
  bool matched = false;
  std::size_t record = 0;
  VectorClock post;
  const PendingSend* partner = nullptr;
};

struct ReqEntry {
  PendingSend* send = nullptr;  // isend: complete when eager or matched
  PendingRecv* recv = nullptr;  // irecv: complete when matched
  bool complete() const {
    if (send != nullptr) return !send->rendezvous || send->matched;
    if (recv != nullptr) return recv->matched;
    return true;
  }
};

enum class BlockKind { kNone, kSend, kRecv, kWait, kCollective };

struct RankMachine {
  std::size_t pc = 0;
  bool finished = false;
  VectorClock clock;
  BlockKind block = BlockKind::kNone;
  std::size_t block_record = 0;
  PendingSend* blocked_send = nullptr;
  PendingRecv* blocked_recv = nullptr;
  std::vector<ReqId> wait_pending;      // kWait: not-yet-complete requests
  std::vector<ReqId> wait_all;          // kWait: the full request list
  std::int64_t coll_ordinal = 0;        // kCollective: my arrival ordinal
  std::int64_t colls_arrived = 0;       // collectives this rank reached
  std::map<ReqId, ReqEntry> requests;
};

/// The deadlock pass's abstract machine (see deadlock.cpp) with a vector
/// clock threaded through every state transition. Matching order, blocking
/// conditions and the fixed-point schedule are identical, so the two passes
/// agree on which trace executions exist.
class ClockedMachine {
 public:
  ClockedMachine(const trace::Trace& trace, std::uint64_t eager_threshold)
      : trace_(trace), eager_threshold_(eager_threshold) {
    const std::size_t n = trace.ranks.size();
    machines_.resize(n);
    unmatched_sends_.resize(n);
    unmatched_recvs_.resize(n);
    coll_arrivals_.resize(n);
    analysis_.num_ranks = trace.num_ranks;
    analysis_.post_clocks.resize(n);
    analysis_.completion_clocks.resize(n);
    for (std::size_t r = 0; r < n; ++r) {
      machines_[r].clock.assign(n, 0);
      analysis_.post_clocks[r].resize(trace.ranks[r].size());
      analysis_.completion_clocks[r].resize(trace.ranks[r].size());
    }
  }

  HbAnalysis run() {
    bool progress = true;
    while (progress) {
      progress = false;
      for (Rank r = 0; r < trace_.num_ranks; ++r) {
        if (advance(r)) progress = true;
      }
    }
    analysis_.converged =
        std::all_of(machines_.begin(), machines_.end(),
                    [](const RankMachine& m) { return m.finished; });
    for (const PendingSend& send : sends_pool_) {
      if (!send.matched || send.partner == nullptr) continue;
      analysis_.matches.push_back(HbMatch{send.env.src, send.record,
                                          send.env.dst,
                                          send.partner->record});
    }
    return std::move(analysis_);
  }

 private:
  RankMachine& machine(Rank r) {
    return machines_[static_cast<std::size_t>(r)];
  }
  const std::vector<Record>& stream(Rank r) const {
    return trace_.ranks[static_cast<std::size_t>(r)];
  }

  bool in_range(Rank r) const { return r >= 0 && r < trace_.num_ranks; }

  bool block_resolved(const RankMachine& m) const {
    switch (m.block) {
      case BlockKind::kNone:
        return true;
      case BlockKind::kSend:
        return m.blocked_send->matched;
      case BlockKind::kRecv:
        return m.blocked_recv->matched;
      case BlockKind::kWait:
        return std::all_of(m.wait_pending.begin(), m.wait_pending.end(),
                           [&](ReqId req) {
                             const auto it = m.requests.find(req);
                             return it == m.requests.end() ||
                                    it->second.complete();
                           });
      case BlockKind::kCollective:
        return std::all_of(machines_.begin(), machines_.end(),
                           [&](const RankMachine& other) {
                             return other.colls_arrived > m.coll_ordinal;
                           });
    }
    OSIM_UNREACHABLE("bad block kind");
  }

  /// Applies the completion joins of the resolved blocking record and
  /// timestamps it.
  void resolve_block(Rank r, RankMachine& m) {
    switch (m.block) {
      case BlockKind::kSend:
        if (m.blocked_send->partner != nullptr) {
          join_into(m.clock, m.blocked_send->partner->post);
        }
        break;
      case BlockKind::kRecv:
        if (m.blocked_recv->partner != nullptr) {
          join_into(m.clock, m.blocked_recv->partner->post);
        }
        break;
      case BlockKind::kWait:
        for (const ReqId req : m.wait_all) {
          const auto it = m.requests.find(req);
          if (it == m.requests.end()) continue;
          const ReqEntry& entry = it->second;
          if (entry.recv != nullptr && entry.recv->partner != nullptr) {
            join_into(m.clock, entry.recv->partner->post);
          } else if (entry.send != nullptr && entry.send->rendezvous &&
                     entry.send->partner != nullptr) {
            join_into(m.clock, entry.send->partner->post);
          }
          // Eager isend: completes locally, no synchronization edge.
        }
        break;
      case BlockKind::kCollective: {
        const std::size_t k = static_cast<std::size_t>(m.coll_ordinal);
        for (const std::vector<VectorClock>& arrivals : coll_arrivals_) {
          if (k < arrivals.size()) join_into(m.clock, arrivals[k]);
        }
        break;
      }
      case BlockKind::kNone:
        break;
    }
    analysis_.completion_clocks[static_cast<std::size_t>(r)][m.block_record] =
        m.clock;
    m.block = BlockKind::kNone;
  }

  bool advance(Rank r) {
    RankMachine& m = machine(r);
    bool progressed = false;
    while (!m.finished) {
      if (m.block != BlockKind::kNone) {
        if (!block_resolved(m)) return progressed;
        resolve_block(r, m);
        progressed = true;
      }
      const auto& recs = stream(r);
      if (m.pc >= recs.size()) {
        m.finished = true;
        progressed = true;
        break;
      }
      const std::size_t i = m.pc++;
      progressed = true;
      execute(r, m, i, recs[i]);
    }
    return progressed;
  }

  void execute(Rank r, RankMachine& m, std::size_t i, const Record& rec) {
    const std::size_t idx = static_cast<std::size_t>(r);
    ++m.clock[idx];  // program-order tick: every record gets a unique clock
    analysis_.post_clocks[idx][i] = m.clock;
    // Until a blocking condition says otherwise, the record completes at
    // its post clock.
    analysis_.completion_clocks[idx][i] = m.clock;

    if (const auto* send = std::get_if<Send>(&rec)) {
      if (!in_range(send->dest) || send->dest == r) return;  // match pass
      sends_pool_.push_back(PendingSend{
          SendEnvelope{r, send->dest, send->tag, send->bytes},
          send->synchronous || send->bytes > eager_threshold_, false, i,
          m.clock, nullptr});
      PendingSend* ps = &sends_pool_.back();
      match_send(ps);
      if (send->immediate) {
        if (send->request != trace::kNoRequest) {
          m.requests[send->request] = ReqEntry{ps, nullptr};
        }
        return;
      }
      if (ps->rendezvous) {
        m.block = BlockKind::kSend;
        m.block_record = i;
        m.blocked_send = ps;  // resolved (maybe immediately) in advance()
      }
    } else if (const auto* recv = std::get_if<Recv>(&rec)) {
      if ((recv->src != kAnyRank && !in_range(recv->src)) ||
          recv->src == r) {
        return;  // reported by the match pass
      }
      recvs_pool_.push_back(PendingRecv{
          RecvEnvelope{recv->src, r, recv->tag, recv->bytes}, false, i,
          m.clock, nullptr});
      PendingRecv* pr = &recvs_pool_.back();
      match_recv(pr);
      if (recv->immediate) {
        if (recv->request != trace::kNoRequest) {
          m.requests[recv->request] = ReqEntry{nullptr, pr};
        }
        return;
      }
      m.block = BlockKind::kRecv;
      m.block_record = i;
      m.blocked_recv = pr;
    } else if (const auto* wait = std::get_if<Wait>(&rec)) {
      std::vector<ReqId> pending;
      for (const ReqId req : wait->requests) {
        const auto it = m.requests.find(req);
        // Unknown requests are the requests pass's finding; treat them as
        // complete so one defect does not cascade.
        if (it != m.requests.end() && !it->second.complete()) {
          pending.push_back(req);
        }
      }
      m.block = BlockKind::kWait;
      m.block_record = i;
      m.wait_pending = std::move(pending);
      m.wait_all = wait->requests;
    } else if (std::get_if<GlobalOp>(&rec) != nullptr) {
      coll_arrivals_[idx].push_back(m.clock);
      m.coll_ordinal = m.colls_arrived++;
      m.block = BlockKind::kCollective;
      m.block_record = i;
    }
    // CpuBurst: no dependency.
  }

  void match_send(PendingSend* send) {
    auto& recvs = unmatched_recvs_[static_cast<std::size_t>(send->env.dst)];
    for (auto it = recvs.begin(); it != recvs.end(); ++it) {
      if (envelope_matches((*it)->env, send->env)) {
        (*it)->matched = true;
        (*it)->partner = send;
        send->matched = true;
        send->partner = *it;
        recvs.erase(it);
        return;
      }
    }
    unmatched_sends_[static_cast<std::size_t>(send->env.dst)].push_back(send);
  }

  void match_recv(PendingRecv* recv) {
    auto& sends = unmatched_sends_[static_cast<std::size_t>(recv->env.dst)];
    for (auto it = sends.begin(); it != sends.end(); ++it) {
      if (envelope_matches(recv->env, (*it)->env)) {
        (*it)->matched = true;
        (*it)->partner = recv;
        recv->matched = true;
        recv->partner = *it;
        sends.erase(it);
        return;
      }
    }
    unmatched_recvs_[static_cast<std::size_t>(recv->env.dst)].push_back(recv);
  }

  const trace::Trace& trace_;
  const std::uint64_t eager_threshold_;
  std::vector<RankMachine> machines_;
  // Stable-address pools; inbox deques and partner pointers point into them.
  std::deque<PendingSend> sends_pool_;
  std::deque<PendingRecv> recvs_pool_;
  std::vector<std::deque<PendingSend*>> unmatched_sends_;
  std::vector<std::deque<PendingRecv*>> unmatched_recvs_;
  std::vector<std::vector<VectorClock>> coll_arrivals_;  // per rank, ordinal
  HbAnalysis analysis_;
};

}  // namespace

bool hb_before(const VectorClock& a, const VectorClock& b) {
  if (a.empty() || b.empty()) return false;
  return dominates(a, b) && a != b;
}

bool hb_concurrent(const VectorClock& a, const VectorClock& b) {
  if (a.empty() || b.empty()) return false;
  return !dominates(a, b) && !dominates(b, a);
}

std::string clock_to_string(const VectorClock& clock) {
  std::string out = "[";
  for (std::size_t i = 0; i < clock.size(); ++i) {
    if (i > 0) out += ',';
    out += strprintf("%llu", static_cast<unsigned long long>(clock[i]));
  }
  out += ']';
  return out;
}

HbAnalysis analyze_happens_before(const trace::Trace& trace,
                                  std::uint64_t eager_threshold_bytes) {
  return ClockedMachine(trace, eager_threshold_bytes).run();
}

}  // namespace osim::lint
