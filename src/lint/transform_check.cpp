#include "lint/transform_check.hpp"

#include <algorithm>
#include <cstddef>
#include <map>
#include <tuple>
#include <variant>
#include <vector>

#include "common/strings.hpp"
#include "overlap/pairing.hpp"

namespace osim::lint {

namespace {

using trace::Rank;
using trace::Record;
using trace::Recv;
using trace::Send;
using trace::Tag;

constexpr const char* kPass = "transform";

// (src, dst, application tag) — the unit of MPI ordering and of the
// transform's pairing discipline.
using TripleKey = std::tuple<Rank, Rank, Tag>;

struct Message {
  std::uint64_t bytes = 0;
  std::size_t record = 0;
};

struct ChunkGroup {
  std::int64_t pair_seq = 0;
  std::uint64_t total_bytes = 0;
  std::vector<int> indices;       // chunk indices in emission order
  std::size_t first_record = 0;
};

struct TripleTraffic {
  std::vector<Message> plain;          // unchunked messages, emission order
  std::vector<ChunkGroup> groups;      // chunk groups, first-chunk order
};

const char* side_name(bool send_side) { return send_side ? "send" : "recv"; }

/// Walks one side (sends of every rank, or recvs of every rank) and
/// returns per-triple traffic. For the transformed trace chunk tags are
/// decoded and grouped; duplicate derived tags are reported here.
std::map<TripleKey, TripleTraffic> collect(const trace::Trace& trace,
                                           bool send_side, bool decode_chunks,
                                           Report& report) {
  std::map<TripleKey, TripleTraffic> traffic;
  for (Rank rank = 0; rank < trace.num_ranks; ++rank) {
    const auto& stream = trace.ranks[static_cast<std::size_t>(rank)];
    for (std::size_t i = 0; i < stream.size(); ++i) {
      Rank src = -1, dst = -1;
      Tag tag = 0;
      std::uint64_t bytes = 0;
      if (send_side) {
        const auto* send = std::get_if<Send>(&stream[i]);
        if (send == nullptr) continue;
        src = rank;
        dst = send->dest;
        tag = send->tag;
        bytes = send->bytes;
      } else {
        const auto* recv = std::get_if<Recv>(&stream[i]);
        if (recv == nullptr) continue;
        src = recv->src;
        dst = rank;
        tag = recv->tag;
        bytes = recv->bytes;
      }
      const auto parts =
          decode_chunks ? overlap::decode_chunk_tag(tag) : std::nullopt;
      if (!parts.has_value()) {
        traffic[{src, dst, tag}].plain.push_back(Message{bytes, i});
        continue;
      }
      TripleTraffic& t = traffic[{src, dst, parts->tag}];
      auto it = std::find_if(t.groups.begin(), t.groups.end(),
                             [&](const ChunkGroup& g) {
                               return g.pair_seq == parts->pair_seq;
                             });
      if (it == t.groups.end()) {
        t.groups.push_back(ChunkGroup{parts->pair_seq, 0, {}, i});
        it = std::prev(t.groups.end());
      }
      if (std::find(it->indices.begin(), it->indices.end(),
                    parts->chunk_index) != it->indices.end()) {
        report.error(
            kPass, rank, static_cast<std::ptrdiff_t>(i),
            strprintf("chunk-tag collision on the %s side: chunk %d of "
                      "message pair_seq=%lld (src=%d dst=%d tag=%lld) is "
                      "issued twice",
                      side_name(send_side), parts->chunk_index,
                      static_cast<long long>(parts->pair_seq), src, dst,
                      static_cast<long long>(parts->tag)));
        continue;
      }
      it->indices.push_back(parts->chunk_index);
      it->total_bytes += bytes;
    }
  }
  return traffic;
}

std::string triple_desc(const TripleKey& key) {
  return strprintf("src=%d dst=%d tag=%lld", std::get<0>(key),
                   std::get<1>(key),
                   static_cast<long long>(std::get<2>(key)));
}

/// The rank a diagnostic for this triple/side is anchored to.
Rank anchor_rank(const TripleKey& key, bool send_side) {
  return send_side ? std::get<0>(key) : std::get<1>(key);
}

void check_side(const std::map<TripleKey, TripleTraffic>& original,
                const std::map<TripleKey, TripleTraffic>& transformed,
                bool send_side, Report& report) {
  for (const auto& [key, t] : transformed) {
    // Wildcard receives are never chunked; compare them verbatim below.
    const auto orig_it = original.find(key);
    const Rank rank = anchor_rank(key, send_side);

    // Chunk groups: indices must be 0..n-1 without gaps.
    for (const ChunkGroup& g : t.groups) {
      std::vector<int> sorted = g.indices;
      std::sort(sorted.begin(), sorted.end());
      for (std::size_t k = 0; k < sorted.size(); ++k) {
        if (sorted[k] != static_cast<int>(k)) {
          report.error(
              kPass, rank, static_cast<std::ptrdiff_t>(g.first_record),
              strprintf("%s-side chunk group pair_seq=%lld of %s is missing "
                        "chunk %zu (has %zu chunk(s), highest index %d)",
                        side_name(send_side),
                        static_cast<long long>(g.pair_seq),
                        triple_desc(key).c_str(), k, g.indices.size(),
                        sorted.back()));
          break;
        }
      }
    }

    if (orig_it == original.end()) {
      report.error(kPass, rank, kNoRecord,
                   strprintf("%s-side traffic on %s exists only in the "
                             "transformed trace (%zu message(s))",
                             side_name(send_side), triple_desc(key).c_str(),
                             t.plain.size() + t.groups.size()));
      continue;
    }
    const TripleTraffic& o = orig_it->second;

    // Message-count conservation.
    const std::size_t transformed_count = t.plain.size() + t.groups.size();
    if (transformed_count != o.plain.size()) {
      report.error(
          kPass, rank, kNoRecord,
          strprintf("%s-side %s: transform changed the message count from "
                    "%zu to %zu (%zu plain + %zu chunk group(s))",
                    side_name(send_side), triple_desc(key).c_str(),
                    o.plain.size(), transformed_count, t.plain.size(),
                    t.groups.size()));
      continue;
    }

    // Byte conservation and order. When every message of the triple was
    // chunked, pair_seq k must reproduce the k-th original message exactly
    // (the per-pair order guarantee); with a mix, fall back to multiset
    // equality of per-message totals.
    std::vector<ChunkGroup> groups = t.groups;
    std::sort(groups.begin(), groups.end(),
              [](const ChunkGroup& a, const ChunkGroup& b) {
                return a.pair_seq < b.pair_seq;
              });
    if (t.plain.empty()) {
      for (std::size_t k = 0; k < groups.size(); ++k) {
        if (groups[k].pair_seq != static_cast<std::int64_t>(k)) {
          report.error(
              kPass, rank,
              static_cast<std::ptrdiff_t>(groups[k].first_record),
              strprintf("%s-side %s: chunk groups carry pair_seq %lld "
                        "where %zu was expected — per-pair ordering is "
                        "broken",
                        side_name(send_side), triple_desc(key).c_str(),
                        static_cast<long long>(groups[k].pair_seq), k));
          break;
        }
        if (groups[k].total_bytes != o.plain[k].bytes) {
          report.error(
              kPass, rank,
              static_cast<std::ptrdiff_t>(groups[k].first_record),
              strprintf("%s-side %s: chunk group pair_seq=%lld sums to "
                        "%llu bytes but the original message %zu carries "
                        "%llu bytes",
                        side_name(send_side), triple_desc(key).c_str(),
                        static_cast<long long>(groups[k].pair_seq),
                        static_cast<unsigned long long>(
                            groups[k].total_bytes),
                        k,
                        static_cast<unsigned long long>(o.plain[k].bytes)));
        }
      }
    } else {
      std::vector<std::uint64_t> got, want;
      for (const Message& msg : t.plain) got.push_back(msg.bytes);
      for (const ChunkGroup& g : groups) got.push_back(g.total_bytes);
      for (const Message& msg : o.plain) want.push_back(msg.bytes);
      std::sort(got.begin(), got.end());
      std::sort(want.begin(), want.end());
      if (got != want) {
        report.error(
            kPass, rank, kNoRecord,
            strprintf("%s-side %s: per-message byte totals changed by the "
                      "transform (chunk sums do not reproduce the original "
                      "message sizes)",
                      side_name(send_side), triple_desc(key).c_str()));
      }
    }
  }

  // Traffic present only in the original trace.
  for (const auto& [key, o] : original) {
    if (transformed.find(key) == transformed.end()) {
      report.error(kPass, anchor_rank(key, send_side), kNoRecord,
                   strprintf("%s-side traffic on %s (%zu message(s)) "
                             "disappeared in the transformed trace",
                             side_name(send_side), triple_desc(key).c_str(),
                             o.plain.size()));
    }
  }
}

}  // namespace

void check_transform(const trace::Trace& original,
                     const trace::Trace& transformed, Report& report) {
  if (original.num_ranks != transformed.num_ranks) {
    report.error(kPass, -1, kNoRecord,
                 strprintf("rank count changed: original has %d, "
                           "transformed has %d",
                           original.num_ranks, transformed.num_ranks));
    return;
  }
  if (original.mips != transformed.mips) {
    report.warning(kPass, -1, kNoRecord,
                   strprintf("MIPS rate changed: %.6g vs %.6g",
                             original.mips, transformed.mips));
  }

  for (const bool send_side : {true, false}) {
    const auto orig =
        collect(original, send_side, /*decode_chunks=*/false, report);
    const auto trans =
        collect(transformed, send_side, /*decode_chunks=*/true, report);
    check_side(orig, trans, send_side, report);
  }
}

}  // namespace osim::lint
