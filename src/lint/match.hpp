// Lint pass 1: point-to-point matching.
//
// Mirrors the replayer's matching discipline (dimemas/matching.hpp) without
// replaying: per (src, dst, tag) the k-th send pairs with the k-th receive
// (MPI non-overtaking), a receive may offer a larger buffer but never a
// smaller one, and destinations receiving through ANY_SOURCE / ANY_TAG
// wildcards are checked for *feasibility* — there must exist a complete
// send↔recv assignment under the replayer's matching rule (maximum
// bipartite matching), otherwise some message can never be delivered no
// matter how the execution interleaves.
//
// Reported defects: out-of-range / self endpoints, unmatched (orphaned)
// sends and receives, size mismatches on paired messages, and infeasible
// wildcard assignments.
#pragma once

#include "lint/diagnostics.hpp"
#include "trace/trace.hpp"

namespace osim::lint {

void check_matching(const trace::Trace& trace, Report& report);

}  // namespace osim::lint
