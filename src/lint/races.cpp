#include "lint/races.hpp"

#include <cstddef>
#include <map>
#include <utility>
#include <variant>
#include <vector>

#include "common/strings.hpp"
#include "dimemas/matching.hpp"

namespace osim::lint {

namespace {

using dimemas::RecvEnvelope;
using dimemas::SendEnvelope;
using dimemas::envelope_matches;
using trace::Rank;
using trace::Record;
using trace::Recv;
using trace::ReqId;
using trace::Send;
using trace::Wait;

constexpr const char* kPass = "races";

struct SendSite {
  Rank src = -1;
  std::size_t record = 0;
  SendEnvelope env;
};

bool clocks_known(const VectorClock& a, const VectorClock& b) {
  return !a.empty() && !b.empty();
}

/// One warning per wildcard receive whose match could have gone to a
/// different source; the first alternative candidate is the witness.
void check_wildcard_races(const trace::Trace& trace, const HbAnalysis& hb,
                          Report& report) {
  std::vector<SendSite> sends;
  for (Rank r = 0; r < trace.num_ranks; ++r) {
    const auto& stream = trace.ranks[static_cast<std::size_t>(r)];
    for (std::size_t i = 0; i < stream.size(); ++i) {
      const auto* send = std::get_if<Send>(&stream[i]);
      if (send == nullptr) continue;
      if (send->dest < 0 || send->dest >= trace.num_ranks ||
          send->dest == r) {
        continue;  // the match pass reports malformed endpoints
      }
      sends.push_back(SendSite{
          r, i, SendEnvelope{r, send->dest, send->tag, send->bytes}});
    }
  }

  for (const HbMatch& match : hb.matches) {
    const auto& stream = trace.ranks[static_cast<std::size_t>(match.dst)];
    const auto* recv = std::get_if<Recv>(&stream[match.recv_record]);
    if (recv == nullptr || recv->src != trace::kAnyRank) continue;
    const RecvEnvelope recv_env{recv->src, match.dst, recv->tag,
                                recv->bytes};
    const VectorClock& matched_post = hb.post(match.src, match.send_record);
    const VectorClock& recv_done = hb.completion(match.dst,
                                                 match.recv_record);
    for (const SendSite& other : sends) {
      if (other.src == match.src) continue;  // non-overtaking: no race
      if (!envelope_matches(recv_env, other.env)) continue;
      const VectorClock& other_post = hb.post(other.src, other.record);
      if (!clocks_known(matched_post, other_post)) continue;
      if (!hb_concurrent(other_post, matched_post)) continue;
      // A candidate the receive's completion happens-before can never
      // reach this receive in any execution.
      if (hb_before(recv_done, other_post)) continue;
      report.add(Diagnostic{
          Severity::kWarning, kPass, "wildcard-race", match.dst,
          static_cast<std::ptrdiff_t>(match.recv_record),
          strprintf("wildcard receive matched the send from rank %d "
                    "(record %zu) but the concurrent send from rank %d "
                    "(record %zu) also matches: message order is "
                    "nondeterministic",
                    match.src, match.send_record, other.src, other.record),
          strprintf("recv post %s; matched send post %s; rival send post %s",
                    clock_to_string(hb.post(match.dst, match.recv_record))
                        .c_str(),
                    clock_to_string(matched_post).c_str(),
                    clock_to_string(other_post).c_str())});
      break;  // one finding per receive keeps the report readable
    }
  }
}

/// Per-rank scan for blocking operations that alias an in-flight immediate
/// operation's envelope before its wait retires the request.
void check_buffer_reuse(const trace::Trace& trace, const HbAnalysis& hb,
                        Report& report) {
  struct InFlight {
    std::size_t record = 0;
    bool is_send = false;
    Rank peer = -1;
    trace::Tag tag = 0;
  };
  for (Rank r = 0; r < trace.num_ranks; ++r) {
    const auto& stream = trace.ranks[static_cast<std::size_t>(r)];
    std::map<ReqId, InFlight> in_flight;
    for (std::size_t i = 0; i < stream.size(); ++i) {
      const Record& rec = stream[i];
      if (const auto* send = std::get_if<Send>(&rec)) {
        if (!send->immediate) {
          for (const auto& [req, op] : in_flight) {
            if (!op.is_send || op.peer != send->dest ||
                op.tag != send->tag) {
              continue;
            }
            report.add(Diagnostic{
                Severity::kWarning, kPass, "buffer-reuse", r,
                static_cast<std::ptrdiff_t>(i),
                strprintf("blocking send to rank %d tag %lld reuses the "
                          "envelope of the immediate send posted at record "
                          "%zu (request %lld) before its wait: the buffer "
                          "may still be in flight",
                          send->dest, static_cast<long long>(send->tag),
                          op.record, static_cast<long long>(req)),
                strprintf("post %s",
                          clock_to_string(hb.post(r, i)).c_str())});
            break;
          }
        } else if (send->request != trace::kNoRequest) {
          in_flight[send->request] =
              InFlight{i, true, send->dest, send->tag};
        }
      } else if (const auto* recv = std::get_if<Recv>(&rec)) {
        if (!recv->immediate) {
          for (const auto& [req, op] : in_flight) {
            if (op.is_send || op.peer != recv->src || op.tag != recv->tag) {
              continue;
            }
            report.add(Diagnostic{
                Severity::kWarning, kPass, "buffer-reuse", r,
                static_cast<std::ptrdiff_t>(i),
                strprintf("blocking receive from rank %d tag %lld reuses "
                          "the envelope of the immediate receive posted at "
                          "record %zu (request %lld) before its wait: the "
                          "buffer may still be in flight",
                          recv->src, static_cast<long long>(recv->tag),
                          op.record, static_cast<long long>(req)),
                strprintf("post %s",
                          clock_to_string(hb.post(r, i)).c_str())});
            break;
          }
        } else if (recv->request != trace::kNoRequest) {
          in_flight[recv->request] =
              InFlight{i, false, recv->src, recv->tag};
        }
      } else if (const auto* wait = std::get_if<Wait>(&rec)) {
        for (const ReqId req : wait->requests) in_flight.erase(req);
      }
    }
  }
}

}  // namespace

void check_races(const trace::Trace& trace, const HbAnalysis& hb,
                 Report& report) {
  check_wildcard_races(trace, hb, report);
  check_buffer_reuse(trace, hb, report);
}

}  // namespace osim::lint
