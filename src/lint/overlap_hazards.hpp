// Overlap-hazard pass: static prediction of communication-computation
// overlap potential, before any replay.
//
// Every immediate operation's *overlap window* is the compute time (CpuBurst
// instructions, converted to seconds at the trace MIPS rate) strictly
// between posting the operation and the wait that retires its request — an
// upper bound on how much transfer the replayer could hide behind
// computation. The pass reports, all at info severity (advisories, never
// failures):
//
//   zero-window     an immediate op whose wait follows with no intervening
//                   compute: the nonblocking call buys nothing and the
//                   paper's overlap mechanisms cannot engage. Anchored at
//                   the *posting* record.
//   postponed-wait  a wait retiring two or more requests that all carry a
//                   nonzero window — the postponed-wait chain the paper's
//                   transformation produces; listed so replay metrics can
//                   be compared against the static prediction.
//   summary         one whole-trace line (rank -1) with the immediate-op
//                   census: zero-window / overlapped / never-waited counts
//                   and the total predicted window. Emitted only when the
//                   trace contains at least one immediate operation.
//
// Request bookkeeping mirrors the requests pass (reuse overwrites, unknown
// requests are skipped) so misuse is reported exactly once, there.
#pragma once

#include "lint/diagnostics.hpp"
#include "lint/hb.hpp"
#include "trace/trace.hpp"

namespace osim::lint {

void check_overlap_hazards(const trace::Trace& trace, const HbAnalysis& hb,
                           Report& report);

}  // namespace osim::lint
