// Structured diagnostics for the trace semantic verifier.
//
// Every lint pass reports findings as Diagnostic values instead of throwing
// on the first problem (the contract trace::validate() has): a single run
// surfaces *all* defects, each anchored to the rank and record index that
// caused it, so a broken transform or tracer bug can be located without
// bisecting the trace by hand.
//
// Diagnostics carry an optional machine-stable `code` (a short slug such as
// "zero-window" or "wildcard-race" that tools may key on) and an optional
// `evidence` string (for the happens-before passes: the vector clocks that
// witness the finding). Both are empty for the classic passes.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "trace/record.hpp"

namespace osim::lint {

enum class Severity : std::uint8_t {
  kInfo,     // advisory only (e.g. a zero-width overlap window); never
             // fails a run and does not make a report un-clean
  kWarning,  // suspicious but replayable (e.g. differing collective sizes)
  kError,    // the trace is semantically broken; replay garbage or deadlock
};

const char* severity_name(Severity severity);

/// Record index value for diagnostics that are not tied to one record.
inline constexpr std::ptrdiff_t kNoRecord = -1;

/// Version of the JSON document emitted by Report::render_json(); bump on
/// any incompatible change to the schema below.
inline constexpr int kLintReportVersion = 1;

struct Diagnostic {
  Severity severity = Severity::kError;
  std::string pass;          // "match", "requests", "deadlock", ...
  std::string code;          // stable finding slug; "" for classic passes
  trace::Rank rank = -1;     // -1: cross-rank / whole-trace finding
  std::ptrdiff_t record = kNoRecord;  // index into the rank's record stream
  std::string message;
  std::string evidence;      // clock evidence for HB findings; may be ""
};

/// Accumulates diagnostics across passes; render as text, CSV or JSON.
class Report {
 public:
  void error(std::string pass, trace::Rank rank, std::ptrdiff_t record,
             std::string message);
  void warning(std::string pass, trace::Rank rank, std::ptrdiff_t record,
               std::string message);
  void info(std::string pass, trace::Rank rank, std::ptrdiff_t record,
            std::string message);
  /// Full-fat entry point for diagnostics with a code and/or evidence.
  void add(Diagnostic diagnostic);
  /// Appends every diagnostic of `other`, preserving order.
  void merge(const Report& other);

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  std::size_t num_errors() const { return num_errors_; }
  std::size_t num_warnings() const { return num_warnings_; }
  std::size_t num_infos() const { return num_infos_; }
  /// A report is clean when it holds nothing at warning severity or above;
  /// info-level advisories do not spoil cleanliness.
  bool clean() const { return num_errors_ + num_warnings_ == 0; }

  /// True when the report contains a diagnostic at or above `severity`.
  bool has_at_least(Severity severity) const;

  /// One line per diagnostic: "error [match] rank 2 record 14: ...",
  /// followed by a summary line.
  std::string render_text() const;

  /// CSV with header "severity,pass,rank,record,message"; rank/record are
  /// empty for whole-trace findings.
  std::string render_csv() const;

  /// Versioned JSON document (schema "osim.lint_report"): severity counts
  /// plus one object per diagnostic with pass id, stable code, rank, record
  /// index and clock evidence. rank/record/code/evidence are omitted when
  /// absent, so the document carries no placeholder values.
  std::string render_json() const;

 private:
  std::vector<Diagnostic> diagnostics_;
  std::size_t num_errors_ = 0;
  std::size_t num_warnings_ = 0;
  std::size_t num_infos_ = 0;
};

}  // namespace osim::lint
