// Structured diagnostics for the trace semantic verifier.
//
// Every lint pass reports findings as Diagnostic values instead of throwing
// on the first problem (the contract trace::validate() has): a single run
// surfaces *all* defects, each anchored to the rank and record index that
// caused it, so a broken transform or tracer bug can be located without
// bisecting the trace by hand.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "trace/record.hpp"

namespace osim::lint {

enum class Severity : std::uint8_t {
  kWarning,  // suspicious but replayable (e.g. differing collective sizes)
  kError,    // the trace is semantically broken; replay garbage or deadlock
};

const char* severity_name(Severity severity);

/// Record index value for diagnostics that are not tied to one record.
inline constexpr std::ptrdiff_t kNoRecord = -1;

struct Diagnostic {
  Severity severity = Severity::kError;
  std::string pass;          // "match", "requests", "deadlock", ...
  trace::Rank rank = -1;     // -1: cross-rank / whole-trace finding
  std::ptrdiff_t record = kNoRecord;  // index into the rank's record stream
  std::string message;
};

/// Accumulates diagnostics across passes; render as text or CSV.
class Report {
 public:
  void error(std::string pass, trace::Rank rank, std::ptrdiff_t record,
             std::string message);
  void warning(std::string pass, trace::Rank rank, std::ptrdiff_t record,
               std::string message);

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  std::size_t num_errors() const { return num_errors_; }
  std::size_t num_warnings() const { return num_warnings_; }
  bool clean() const { return diagnostics_.empty(); }

  /// True when the report contains a diagnostic at or above `severity`.
  bool has_at_least(Severity severity) const;

  /// One line per diagnostic: "error [match] rank 2 record 14: ...",
  /// followed by a summary line.
  std::string render_text() const;

  /// CSV with header "severity,pass,rank,record,message"; rank/record are
  /// empty for whole-trace findings.
  std::string render_csv() const;

 private:
  std::vector<Diagnostic> diagnostics_;
  std::size_t num_errors_ = 0;
  std::size_t num_warnings_ = 0;
};

}  // namespace osim::lint
