// osim_lint — the trace semantic verifier.
//
// A multi-pass static analyzer for replayable traces: it checks, without
// replaying, that a trace is a semantically valid MPI program — matched
// point-to-point traffic, well-formed immediate-request lifecycles, no
// cross-rank deadlock, consistent collectives — and, given an original /
// transformed pair, that the overlap transformation preserved the message
// structure it claims to. All findings are structured diagnostics
// (severity, pass, rank, record index, message); nothing throws on a bad
// trace.
//
// Passes (each also callable individually — see the per-pass headers):
//   1. match        — point-to-point matching (lint/match.hpp)
//   2. requests     — request lifecycle (lint/requests.hpp)
//   3. deadlock     — cross-rank wait-for cycles (lint/deadlock.hpp)
//   4. transform    — overlap-transform safety (lint/transform_check.hpp)
//   5. collectives  — collective consistency (lint/collectives.hpp)
#pragma once

#include <cstdint>

#include "lint/deadlock.hpp"
#include "lint/diagnostics.hpp"
#include "trace/trace.hpp"

namespace osim::lint {

struct LintOptions {
  /// Rendezvous cutoff for the deadlock pass; mirrors the default
  /// dimemas::Platform eager threshold.
  std::uint64_t eager_threshold_bytes = kDefaultEagerThresholdBytes;
};

/// Runs the single-trace passes (match, requests, collectives, deadlock).
Report lint_trace(const trace::Trace& trace, const LintOptions& options = {});

/// Runs the transform-safety pass on an original / transformed pair. The
/// transformed trace should additionally be checked with lint_trace().
Report lint_transform(const trace::Trace& original,
                      const trace::Trace& transformed,
                      const LintOptions& options = {});

}  // namespace osim::lint
