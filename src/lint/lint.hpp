// osim_lint — the trace semantic verifier.
//
// A multi-pass static analyzer for replayable traces: it checks, without
// replaying, that a trace is a semantically valid MPI program — matched
// point-to-point traffic, well-formed immediate-request lifecycles, no
// cross-rank deadlock, consistent collectives — and, given an original /
// transformed pair, that the overlap transformation preserved the message
// structure it claims to. On top of the classic passes sits a
// happens-before engine (lint/hb.hpp) powering a race detector and a
// static overlap-hazard classifier. All findings are structured
// diagnostics (severity, pass, stable code, rank, record index, message,
// clock evidence); nothing throws on a bad trace.
//
// Passes (each also callable individually — see the per-pass headers):
//   0. structure    — rank-stream shape sanity (inline below); when this
//                     fails the trace cannot be indexed per rank, so all
//                     other passes are skipped
//   1. match        — point-to-point matching (lint/match.hpp)
//   2. requests     — request lifecycle (lint/requests.hpp)
//   3. collectives  — collective consistency (lint/collectives.hpp)
//   4. deadlock     — cross-rank wait-for cycles (lint/deadlock.hpp)
//   5. races        — HB-based race detection (lint/races.hpp)
//   6. overlap      — overlap-window advisories (lint/overlap_hazards.hpp)
//   7. transform    — overlap-transform safety (lint/transform_check.hpp)
#pragma once

#include <cstdint>

#include "lint/deadlock.hpp"
#include "lint/diagnostics.hpp"
#include "trace/trace.hpp"

namespace osim::lint {

struct LintOptions {
  /// Rendezvous cutoff for the deadlock and happens-before passes; mirrors
  /// the default dimemas::Platform eager threshold. Plumb the platform's
  /// real value through here (osim_lint --platform).
  std::uint64_t eager_threshold_bytes = kDefaultEagerThresholdBytes;
  /// Worker threads for the pass schedule. Passes (and the rank-local
  /// requests pass per rank) are independent tasks written to fixed result
  /// slots and merged in canonical order, so any jobs value produces a
  /// byte-identical report; <= 1 runs everything inline.
  int jobs = 1;
};

/// Runs the single-trace passes (structure, match, requests, collectives,
/// deadlock, races, overlap).
Report lint_trace(const trace::Trace& trace, const LintOptions& options = {});

/// Runs the transform-safety pass on an original / transformed pair. The
/// transformed trace should additionally be checked with lint_trace().
Report lint_transform(const trace::Trace& original,
                      const trace::Trace& transformed,
                      const LintOptions& options = {});

}  // namespace osim::lint
