// Lint pass 2: immediate-request lifecycle.
//
// Every isend/irecv must carry a request id, every request must be waited
// exactly once, waits may only name requests that are issued and still in
// flight, and no request may be open when the rank's stream ends. These
// are the invariants the replayer aborts on (OSIM_CHECK in do_wait /
// complete_request); the pass reports all violations instead of dying on
// the first.
#pragma once

#include "lint/diagnostics.hpp"
#include "trace/trace.hpp"

namespace osim::lint {

void check_requests(const trace::Trace& trace, Report& report);

}  // namespace osim::lint
