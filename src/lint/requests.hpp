// Lint pass 2: immediate-request lifecycle.
//
// Every isend/irecv must carry a request id, every request must be waited
// exactly once, waits may only name requests that are issued and still in
// flight, and no request may be open when the rank's stream ends. These
// are the invariants the replayer aborts on (OSIM_CHECK in do_wait /
// complete_request); the pass reports all violations instead of dying on
// the first. A wait naming a request that is only issued *later* in the
// stream is distinguished from one naming a request that never exists:
// the former is almost always a reordering bug (code "wait-before-post").
#pragma once

#include "lint/diagnostics.hpp"
#include "trace/trace.hpp"

namespace osim::lint {

void check_requests(const trace::Trace& trace, Report& report);

/// Single-rank slice of check_requests; the pass is rank-local, so running
/// this per rank and concatenating reports in rank order is byte-identical
/// to check_requests. Used by the --jobs parallel driver.
void check_requests_rank(const trace::Trace& trace, trace::Rank rank,
                         Report& report);

}  // namespace osim::lint
