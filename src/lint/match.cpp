#include "lint/match.hpp"

#include <cstddef>
#include <map>
#include <tuple>
#include <variant>
#include <vector>

#include "common/strings.hpp"
#include "dimemas/matching.hpp"

namespace osim::lint {

namespace {

using dimemas::RecvEnvelope;
using dimemas::SendEnvelope;
using dimemas::envelope_matches;
using trace::kAnyRank;
using trace::kAnyTag;
using trace::Rank;
using trace::Record;
using trace::Recv;
using trace::Send;
using trace::Tag;

constexpr const char* kPass = "match";

struct SendSite {
  SendEnvelope env;
  std::size_t record = 0;  // index in the sender's stream
};

struct RecvSite {
  RecvEnvelope env;
  std::size_t record = 0;  // index in the receiver's stream
};

std::string send_desc(const SendSite& site) {
  return strprintf("send to rank %d tag %lld (%llu bytes)", site.env.dst,
                   static_cast<long long>(site.env.tag),
                   static_cast<unsigned long long>(site.env.bytes));
}

std::string recv_desc(const RecvSite& site) {
  std::string src = site.env.src == kAnyRank
                        ? "ANY_SOURCE"
                        : strprintf("rank %d", site.env.src);
  std::string tag = site.env.tag == kAnyTag
                        ? "ANY_TAG"
                        : strprintf("tag %lld",
                                    static_cast<long long>(site.env.tag));
  return strprintf("recv from %s %s (%llu bytes)", src.c_str(), tag.c_str(),
                   static_cast<unsigned long long>(site.env.bytes));
}

/// Kuhn's augmenting-path maximum bipartite matching: recv index assigned
/// to each send, -1 when unmatched. Used only for destinations with
/// wildcard receives, where FIFO pairing is not defined.
class BipartiteMatcher {
 public:
  BipartiteMatcher(const std::vector<SendSite>& sends,
                   const std::vector<RecvSite>& recvs)
      : sends_(sends), recvs_(recvs) {
    recv_of_send_.assign(sends.size(), -1);
    send_of_recv_.assign(recvs.size(), -1);
    for (std::size_t s = 0; s < sends.size(); ++s) {
      visited_.assign(recvs.size(), false);
      augment(s);
    }
  }

  const std::vector<std::ptrdiff_t>& recv_of_send() const {
    return recv_of_send_;
  }
  const std::vector<std::ptrdiff_t>& send_of_recv() const {
    return send_of_recv_;
  }

 private:
  bool augment(std::size_t s) {
    for (std::size_t r = 0; r < recvs_.size(); ++r) {
      if (visited_[r] || !envelope_matches(recvs_[r].env, sends_[s].env)) {
        continue;
      }
      visited_[r] = true;
      if (send_of_recv_[r] < 0 ||
          augment(static_cast<std::size_t>(send_of_recv_[r]))) {
        send_of_recv_[r] = static_cast<std::ptrdiff_t>(s);
        recv_of_send_[s] = static_cast<std::ptrdiff_t>(r);
        return true;
      }
    }
    return false;
  }

  const std::vector<SendSite>& sends_;
  const std::vector<RecvSite>& recvs_;
  std::vector<std::ptrdiff_t> recv_of_send_;
  std::vector<std::ptrdiff_t> send_of_recv_;
  std::vector<bool> visited_;
};

/// Deterministic FIFO pairing for a destination with no wildcard receives:
/// per (src, tag) the k-th send must pair with the k-th recv.
void check_fifo(const std::vector<SendSite>& sends,
                const std::vector<RecvSite>& recvs, Rank dst,
                Report& report) {
  std::map<std::tuple<Rank, Tag>, std::vector<const SendSite*>> send_q;
  std::map<std::tuple<Rank, Tag>, std::vector<const RecvSite*>> recv_q;
  for (const SendSite& s : sends) send_q[{s.env.src, s.env.tag}].push_back(&s);
  for (const RecvSite& r : recvs) recv_q[{r.env.src, r.env.tag}].push_back(&r);

  for (const auto& [key, sq] : send_q) {
    const auto it = recv_q.find(key);
    const std::vector<const RecvSite*> empty;
    const auto& rq = it == recv_q.end() ? empty : it->second;
    const std::size_t paired = std::min(sq.size(), rq.size());
    for (std::size_t k = 0; k < paired; ++k) {
      if (rq[k]->env.bytes < sq[k]->env.bytes) {
        report.error(
            kPass, dst, static_cast<std::ptrdiff_t>(rq[k]->record),
            strprintf("%s is smaller than its matching send (message %zu "
                      "from rank %d record %zu, %llu bytes): the pair can "
                      "never match",
                      recv_desc(*rq[k]).c_str(), k, sq[k]->env.src,
                      sq[k]->record,
                      static_cast<unsigned long long>(sq[k]->env.bytes)));
      }
    }
    for (std::size_t k = paired; k < sq.size(); ++k) {
      report.error(kPass, sq[k]->env.src,
                   static_cast<std::ptrdiff_t>(sq[k]->record),
                   strprintf("unmatched %s: rank %d posts only %zu matching "
                             "recv(s)",
                             send_desc(*sq[k]).c_str(), dst, rq.size()));
    }
    for (std::size_t k = paired; k < rq.size(); ++k) {
      report.error(kPass, dst, static_cast<std::ptrdiff_t>(rq[k]->record),
                   strprintf("unmatched %s: rank %d issues only %zu matching "
                             "send(s)",
                             recv_desc(*rq[k]).c_str(), std::get<0>(key),
                             sq.size()));
    }
  }
  for (const auto& [key, rq] : recv_q) {
    if (send_q.find(key) != send_q.end()) continue;
    for (const RecvSite* r : rq) {
      report.error(kPass, dst, static_cast<std::ptrdiff_t>(r->record),
                   strprintf("unmatched %s: no send with this envelope",
                             recv_desc(*r).c_str()));
    }
  }
}

/// Feasibility check for a destination with wildcard receives.
void check_feasibility(const std::vector<SendSite>& sends,
                       const std::vector<RecvSite>& recvs, Rank dst,
                       Report& report) {
  const BipartiteMatcher matcher(sends, recvs);
  for (std::size_t s = 0; s < sends.size(); ++s) {
    if (matcher.recv_of_send()[s] >= 0) continue;
    report.error(kPass, sends[s].env.src,
                 static_cast<std::ptrdiff_t>(sends[s].record),
                 strprintf("unmatched %s: no feasible assignment to rank "
                           "%d's recvs (wildcards present)",
                           send_desc(sends[s]).c_str(), dst));
  }
  for (std::size_t r = 0; r < recvs.size(); ++r) {
    if (matcher.send_of_recv()[r] >= 0) continue;
    report.error(kPass, dst, static_cast<std::ptrdiff_t>(recvs[r].record),
                 strprintf("unmatched %s: no feasible matching send "
                           "(wildcards present)",
                           recv_desc(recvs[r]).c_str()));
  }
}

}  // namespace

void check_matching(const trace::Trace& trace, Report& report) {
  const std::size_t n = trace.ranks.size();
  std::vector<std::vector<SendSite>> sends_to(n);   // indexed by destination
  std::vector<std::vector<RecvSite>> recvs_by(n);   // indexed by receiver
  std::vector<bool> has_wildcard(n, false);

  for (Rank rank = 0; rank < trace.num_ranks; ++rank) {
    const auto& stream = trace.ranks[static_cast<std::size_t>(rank)];
    for (std::size_t i = 0; i < stream.size(); ++i) {
      const Record& rec = stream[i];
      if (const auto* send = std::get_if<Send>(&rec)) {
        if (send->dest < 0 || send->dest >= trace.num_ranks) {
          report.error(kPass, rank, static_cast<std::ptrdiff_t>(i),
                       strprintf("send destination rank %d out of range "
                                 "[0, %d)",
                                 send->dest, trace.num_ranks));
          continue;
        }
        if (send->dest == rank) {
          report.error(kPass, rank, static_cast<std::ptrdiff_t>(i),
                       "self-send: source and destination are the same rank");
          continue;
        }
        sends_to[static_cast<std::size_t>(send->dest)].push_back(SendSite{
            SendEnvelope{rank, send->dest, send->tag, send->bytes}, i});
      } else if (const auto* recv = std::get_if<Recv>(&rec)) {
        if (recv->src != kAnyRank &&
            (recv->src < 0 || recv->src >= trace.num_ranks)) {
          report.error(kPass, rank, static_cast<std::ptrdiff_t>(i),
                       strprintf("recv source rank %d out of range [0, %d)",
                                 recv->src, trace.num_ranks));
          continue;
        }
        if (recv->src == rank) {
          report.error(kPass, rank, static_cast<std::ptrdiff_t>(i),
                       "self-receive: source and destination are the same "
                       "rank");
          continue;
        }
        if (recv->src == kAnyRank || recv->tag == kAnyTag) {
          has_wildcard[static_cast<std::size_t>(rank)] = true;
        }
        recvs_by[static_cast<std::size_t>(rank)].push_back(RecvSite{
            RecvEnvelope{recv->src, rank, recv->tag, recv->bytes}, i});
      }
    }
  }

  for (Rank dst = 0; dst < trace.num_ranks; ++dst) {
    const std::size_t d = static_cast<std::size_t>(dst);
    if (sends_to[d].empty() && recvs_by[d].empty()) continue;
    if (has_wildcard[d]) {
      check_feasibility(sends_to[d], recvs_by[d], dst, report);
    } else {
      check_fifo(sends_to[d], recvs_by[d], dst, report);
    }
  }
}

}  // namespace osim::lint
