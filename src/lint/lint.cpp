#include "lint/lint.hpp"

#include "lint/collectives.hpp"
#include "lint/match.hpp"
#include "lint/requests.hpp"
#include "lint/transform_check.hpp"

namespace osim::lint {

Report lint_trace(const trace::Trace& trace, const LintOptions& options) {
  Report report;
  check_matching(trace, report);
  check_requests(trace, report);
  check_collectives(trace, report);
  check_deadlock(trace, report, options.eager_threshold_bytes);
  return report;
}

Report lint_transform(const trace::Trace& original,
                      const trace::Trace& transformed,
                      const LintOptions& /*options*/) {
  Report report;
  check_transform(original, transformed, report);
  return report;
}

}  // namespace osim::lint
